(* Integration tests: the full pipeline — characterise, merge, tune,
   synthesise, measure — on designs small enough for the test suite. *)

module Ir = Vartune_rtl.Ir
module Word = Vartune_rtl.Word
module Mcu = Vartune_rtl.Microcontroller
module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Library = Vartune_liberty.Library
module Printer = Vartune_liberty.Printer
module Parser = Vartune_liberty.Parser
module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints
module Sizer = Vartune_synth.Sizer
module Path = Vartune_sta.Path
module Design_sigma = Vartune_stats.Design_sigma
module Dist = Vartune_stats.Dist
module Tuning_method = Vartune_tuning.Tuning_method
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold

let statlib = Lazy.force Helpers.small_statlib

(* a 16-bit datapath: two adds, a multiply, a compare, all registered *)
let datapath () =
  let g = Ir.create ~name:"datapath" in
  let a = Word.inputs g ~prefix:"a" ~width:16 in
  let b = Word.inputs g ~prefix:"b" ~width:16 in
  let sum, _ = Word.add_fast g a b in
  let prod = Word.multiply g (Array.sub a 0 8) (Array.sub b 0 8) in
  let lt = Word.less_than g a b in
  let sel = Word.mux g ~sel:lt sum (Array.sub prod 0 16) in
  let q = Word.reg g sel in
  Word.outputs g ~prefix:"q" q;
  Ir.output g "lt" (Ir.ff g ~d:lt ());
  g

let design_sigma_of (r : Synthesis.result) =
  let paths = Path.worst_per_endpoint r.Synthesis.timing r.Synthesis.netlist in
  (Design_sigma.of_paths paths).Design_sigma.dist.Dist.sigma

let test_full_pipeline_tuning_reduces_sigma () =
  let ir = datapath () in
  let period = 4.0 in
  let base = Synthesis.run (Constraints.make ~clock_period:period ()) statlib ir in
  Alcotest.(check bool) "baseline feasible" true base.Synthesis.feasible;
  let tuning =
    { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling 0.012 }
  in
  let table = Tuning_method.restrictions tuning statlib in
  let tuned =
    Synthesis.run (Constraints.make ~clock_period:period ~restrictions:table ()) statlib ir
  in
  Alcotest.(check bool) "tuned feasible" true tuned.Synthesis.feasible;
  Alcotest.(check int) "no window violations" 0 tuned.Synthesis.sizer.Sizer.window_violations;
  let bs = design_sigma_of base and ts = design_sigma_of tuned in
  Alcotest.(check bool)
    (Printf.sprintf "sigma reduced: %.4f -> %.4f" bs ts)
    true (ts < bs);
  Alcotest.(check bool) "area increased" true (tuned.Synthesis.area >= base.Synthesis.area)

let test_tuned_netlist_still_correct () =
  (* restriction must never change logic function *)
  let g = Ir.create ~name:"logic" in
  let a = Word.inputs g ~prefix:"a" ~width:8 in
  let b = Word.inputs g ~prefix:"b" ~width:8 in
  let s, _ = Word.add g a b in
  Word.outputs g ~prefix:"s" s;
  let tuning =
    { Tuning_method.population = Cluster.Per_drive_strength;
      criterion = Threshold.Sigma_ceiling 0.012 }
  in
  let table = Tuning_method.restrictions tuning statlib in
  let r = Synthesis.run (Constraints.make ~clock_period:6.0 ~restrictions:table ()) statlib g in
  let check_vector (x, y) =
    let bits_a = Helpers.bits_of_int ~width:8 x and bits_b = Helpers.bits_of_int ~width:8 y in
    let out =
      Helpers.eval_netlist r.Synthesis.netlist
        ~input_values:(Array.to_list bits_a @ Array.to_list bits_b)
    in
    let got = Helpers.int_of_bits (Array.of_list out) in
    Alcotest.(check int) (Printf.sprintf "%d+%d" x y) ((x + y) land 255) got
  in
  List.iter check_vector [ (0, 0); (1, 1); (255, 1); (200, 100); (37, 81) ]

let test_library_file_round_trip_full_catalog () =
  (* the whole 304-cell nominal catalog survives print -> parse *)
  let nominal = Characterize.nominal Characterize.default_config in
  let text = Printer.to_string nominal in
  let back = Parser.parse text in
  Alcotest.(check int) "304 cells" 304 (Library.size back);
  Alcotest.(check int) "families preserved" (List.length (Library.families nominal))
    (List.length (Library.families back))

let test_mcu_synthesis_smoke () =
  (* the evaluation design synthesises and validates at a relaxed clock *)
  let ir = Mcu.generate () in
  let lib =
    Statistical.build Characterize.default_config ~mismatch:Mismatch.default ~seed:1 ~n:5 ()
  in
  let r = Synthesis.run (Constraints.make ~clock_period:20.0 ()) lib ir in
  Alcotest.(check bool) "feasible" true r.Synthesis.feasible;
  Alcotest.(check bool) "validates" true (Check.validate r.Synthesis.netlist = Ok ());
  Alcotest.(check bool) "20k-gate class" true (r.Synthesis.instances > 5000);
  let paths = Path.worst_per_endpoint r.Synthesis.timing r.Synthesis.netlist in
  Alcotest.(check bool) "hundreds of endpoints" true (List.length paths > 500);
  let deep = List.exists (fun p -> Path.depth p > 25) paths in
  let shallow = List.exists (fun p -> Path.depth p <= 3) paths in
  Alcotest.(check bool) "depth profile has both tails" true (deep && shallow)

let test_mcu_verilog_roundtrip () =
  (* full-design interchange: ~9k instances out and back *)
  let module Verilog = Vartune_netlist.Verilog in
  let ir = Mcu.generate () in
  let lib = Characterize.nominal Characterize.default_config in
  let r = Synthesis.run (Constraints.make ~clock_period:20.0 ()) lib ir in
  let text = Verilog.to_string r.Synthesis.netlist in
  Alcotest.(check bool) "substantial output" true (String.length text > 100_000);
  let back = Verilog.parse ~library:lib text in
  Alcotest.(check int) "instances preserved" r.Synthesis.instances
    (Netlist.instance_count back);
  Alcotest.(check bool) "validates" true (Check.validate back = Ok ());
  Alcotest.(check (list (pair string int))) "cell usage preserved"
    (Netlist.cell_usage r.Synthesis.netlist)
    (Netlist.cell_usage back)

let test_mcu_hold_clean () =
  (* the synthesised core must be hold-clean: slow cells only get slower,
     so min-delay paths comfortably exceed the hold times *)
  let module Timing = Vartune_sta.Timing in
  let ir = Mcu.generate () in
  let lib = Characterize.nominal Characterize.default_config in
  let r = Synthesis.run (Constraints.make ~clock_period:20.0 ()) lib ir in
  let worst = Timing.worst_hold_slack r.Synthesis.timing in
  Alcotest.(check bool) "hold checks exist" true
    (Timing.hold_endpoints r.Synthesis.timing <> []);
  Alcotest.(check bool) (Printf.sprintf "worst hold slack %+.4f >= 0" worst) true
    (worst >= 0.0)

let test_statistical_library_drives_path_sigma () =
  (* a path through the statistical library must carry nonzero sigma,
     and deeper paths must have larger sigma (same cells, eq 10) *)
  let mk depth =
    let g = Ir.create ~name:"chain" in
    let x = ref (Ir.input g "x") in
    for i = 1 to depth do
      (* nand chain with distinct side inputs: nothing simplifies away *)
      x := Ir.nand2 g !x (Ir.input g (Printf.sprintf "k%d" i))
    done;
    Ir.output g "y" (Ir.ff g ~d:!x ());
    let r = Synthesis.run (Constraints.make ~clock_period:8.0 ()) statlib g in
    let paths = Path.worst_per_endpoint r.Synthesis.timing r.Synthesis.netlist in
    (Design_sigma.of_paths paths).Design_sigma.dist.Dist.sigma
  in
  let s4 = mk 4 and s16 = mk 16 in
  Alcotest.(check bool) "sigma positive" true (s4 > 0.0);
  Alcotest.(check bool) "deeper path more sigma" true (s16 > s4)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "tuning reduces sigma" `Slow test_full_pipeline_tuning_reduces_sigma;
          Alcotest.test_case "tuned netlist correct" `Slow test_tuned_netlist_still_correct;
          Alcotest.test_case "full catalog roundtrip" `Slow test_library_file_round_trip_full_catalog;
          Alcotest.test_case "mcu synthesis smoke" `Slow test_mcu_synthesis_smoke;
          Alcotest.test_case "mcu verilog roundtrip" `Slow test_mcu_verilog_roundtrip;
          Alcotest.test_case "mcu hold clean" `Slow test_mcu_hold_clean;
          Alcotest.test_case "path sigma scaling" `Quick test_statistical_library_drives_path_sigma;
        ] );
    ]
