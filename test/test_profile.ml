(* Tests for the profiling layer: log-bucket quantile edge cases,
   span-tree aggregation (synthetic event lists and real pool runs at
   1/2/7 jobs, where child-exclusive self times must sum back to the
   root totals), GC/allocation attribution, the OpenMetrics-style
   metrics_text rendering, bench-history diffing, and the report
   assembly entry points. *)

module Obs = Vartune_obs.Obs
module Json = Vartune_obs.Json
module Profile = Vartune_obs.Profile
module Bench_diff = Vartune_obs.Bench_diff
module Run_report = Vartune_flow.Run_report
module Pool = Vartune_util.Pool

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let ev ?(dom = 0) ?(gc = Obs.gc_zero) name ts dur =
  { Obs.name; dom; ts_us = ts; dur_us = dur; wall_start_ns = 0L; gc; attrs = [] }

(* ------------------------------------------------------------------ *)
(* Bucket quantiles                                                    *)
(* ------------------------------------------------------------------ *)

let test_quantile_empty () =
  let counts = Array.make Obs.Buckets.count 0 in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty histogram q=%g" q)
        0.0
        (Obs.Buckets.quantile ~counts ~total:0 ~min_v:infinity ~max_v:neg_infinity q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_quantile_single_observation () =
  List.iter
    (fun v ->
      let counts = Array.make Obs.Buckets.count 0 in
      counts.(Obs.Buckets.index v) <- 1;
      List.iter
        (fun q ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "n=1 v=%g q=%g answers exactly" v q)
            v
            (Obs.Buckets.quantile ~counts ~total:1 ~min_v:v ~max_v:v q))
        [ 0.0; 0.5; 0.9; 0.99 ])
    [ 1e-6; 0.4; 1.0; 37.0; 8192.0; 3.5e9 ]

let test_quantile_monotone_and_bounded () =
  let values = [ 1.0; 2.0; 4.0; 8.0; 100.0; 100.0; 3000.0 ] in
  let counts = Array.make Obs.Buckets.count 0 in
  List.iter (fun v -> counts.(Obs.Buckets.index v) <- counts.(Obs.Buckets.index v) + 1) values;
  let total = List.length values in
  let min_v = List.fold_left min infinity values
  and max_v = List.fold_left max neg_infinity values in
  let q p = Obs.Buckets.quantile ~counts ~total ~min_v ~max_v p in
  let p50 = q 0.5 and p90 = q 0.9 and p99 = q 0.99 in
  Alcotest.(check bool) "p50 <= p90" true (p50 <= p90);
  Alcotest.(check bool) "p90 <= p99" true (p90 <= p99);
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " within [min, max]") true (v >= min_v && v <= max_v))
    [ ("p50", p50); ("p90", p90); ("p99", p99) ]

let test_bucket_layout () =
  Alcotest.(check int) "non-positive values in bucket 0" 0 (Obs.Buckets.index (-3.0));
  Alcotest.(check int) "zero in bucket 0" 0 (Obs.Buckets.index 0.0);
  Alcotest.(check bool) "overflow edge is infinite" true
    (Obs.Buckets.upper (Obs.Buckets.count - 1) = infinity);
  (* every finite value lands strictly below its bucket's upper edge *)
  List.iter
    (fun v ->
      let i = Obs.Buckets.index v in
      Alcotest.(check bool)
        (Printf.sprintf "%g < upper(%d)" v i)
        true
        (v < Obs.Buckets.upper i))
    [ 1e-12; 0.3; 1.0; 7.0; 1e6; 1e300 ]

let test_histogram_quantile_via_observe () =
  with_obs (fun () ->
      List.iter (Obs.observe "q.histo") [ 1.0; 1.0; 1.0; 1.0; 1000.0 ];
      match List.assoc_opt "q.histo" (Obs.metrics ()) with
      | Some (Obs.Stats s) ->
        Alcotest.(check bool) "p50 near the cluster" true (Obs.histogram_quantile s 0.5 < 10.0);
        Alcotest.(check bool) "p99 pulled to the outlier" true
          (Obs.histogram_quantile s 0.99 > 100.0)
      | _ -> Alcotest.fail "histogram missing")

(* ------------------------------------------------------------------ *)
(* Aggregation on synthetic event lists                                *)
(* ------------------------------------------------------------------ *)

let test_synthetic_tree () =
  let p =
    Profile.of_events
      [
        (* shuffled on purpose: of_events must re-sort *)
        ev "child2" 4.0 3.0;
        ev "parent" 0.0 10.0;
        ev ~dom:1 "other" 0.0 5.0;
        ev "child1" 1.0 2.0;
      ]
  in
  Alcotest.(check int) "span count" 4 p.Profile.span_count;
  Alcotest.(check (float 1e-9)) "wall is the trace extent" 10.0 p.Profile.wall_us;
  (match List.find_opt (fun n -> n.Profile.label = "parent") p.Profile.roots with
  | Some parent ->
    Alcotest.(check (float 1e-9)) "parent self excludes children" 5.0 parent.Profile.self_us;
    Alcotest.(check (list string))
      "children sorted by total desc" [ "child2"; "child1" ]
      (List.map (fun n -> n.Profile.label) parent.Profile.children)
  | None -> Alcotest.fail "parent root missing");
  (match List.find_opt (fun n -> n.Profile.label = "other") p.Profile.roots with
  | Some other -> Alcotest.(check (float 1e-9)) "leaf self = total" 5.0 other.Profile.self_us
  | None -> Alcotest.fail "other-domain root missing");
  let self_sum = List.fold_left (fun a r -> a +. r.Profile.r_self_us) 0.0 p.Profile.rows in
  let root_total = List.fold_left (fun a n -> a +. n.Profile.total_us) 0.0 p.Profile.roots in
  Alcotest.(check (float 1e-9)) "self times sum to root totals" root_total self_sum;
  Alcotest.(check int) "two domain tracks" 2 (List.length p.Profile.domains)

let test_same_label_different_paths () =
  (* pool.task under two different parents must stay separate in the
     tree but merge in the flat table *)
  let p =
    Profile.of_events
      [
        ev "a" 0.0 10.0;
        ev "pool.task" 1.0 2.0;
        ev "b" 20.0 10.0;
        ev "pool.task" 21.0 4.0;
      ]
  in
  let tasks_in_tree =
    List.concat_map
      (fun root ->
        List.filter (fun n -> n.Profile.label = "pool.task") root.Profile.children)
      p.Profile.roots
  in
  Alcotest.(check int) "two tree nodes" 2 (List.length tasks_in_tree);
  match List.find_opt (fun r -> r.Profile.r_label = "pool.task") p.Profile.rows with
  | Some r ->
    Alcotest.(check int) "one merged row" 2 r.Profile.r_count;
    Alcotest.(check (float 1e-9)) "merged total" 6.0 r.Profile.r_total_us
  | None -> Alcotest.fail "pool.task row missing"

let test_self_time_sums_under_pool_sizes () =
  List.iter
    (fun jobs ->
      with_obs (fun () ->
          with_pool jobs (fun pool ->
              ignore
                (Pool.map pool
                   (fun i ->
                     Obs.span "outer" (fun () ->
                         Obs.span "inner" (fun () -> Sys.opaque_identity (i * i))))
                   (List.init 24 Fun.id)));
          let p = Profile.of_events (Obs.events ()) in
          let rec node_self acc n =
            List.fold_left node_self (acc +. n.Profile.self_us) n.Profile.children
          in
          let tree_self = List.fold_left node_self 0.0 p.Profile.roots in
          let root_total =
            List.fold_left (fun a n -> a +. n.Profile.total_us) 0.0 p.Profile.roots
          in
          Alcotest.(check bool)
            (Printf.sprintf "tree self sums to root totals at jobs=%d" jobs)
            true
            (abs_float (tree_self -. root_total) <= 1e-6 *. Float.max 1.0 root_total);
          let row_self =
            List.fold_left (fun a r -> a +. r.Profile.r_self_us) 0.0 p.Profile.rows
          in
          Alcotest.(check bool)
            (Printf.sprintf "row self agrees at jobs=%d" jobs)
            true
            (abs_float (row_self -. root_total) <= 1e-6 *. Float.max 1.0 root_total);
          (* flat table: 24 inner calls under 24 outer calls, whatever
             the domain layout *)
          (match List.find_opt (fun r -> r.Profile.r_label = "inner") p.Profile.rows with
          | Some r -> Alcotest.(check int) "inner calls" 24 r.Profile.r_count
          | None -> Alcotest.fail "inner row missing");
          if jobs > 1 then
            Alcotest.(check bool)
              (Printf.sprintf "pool.task utilization rows at jobs=%d" jobs)
              true
              (List.exists (fun d -> d.Profile.tasks > 0) p.Profile.domains)))
    [ 1; 2; 7 ]

let test_trace_round_trip () =
  with_obs (fun () ->
      with_pool 2 (fun pool ->
          ignore
            (Pool.map pool
               (fun i -> Obs.span "work" (fun () -> Sys.opaque_identity (i + 1)))
               (List.init 8 Fun.id)));
      let live = Profile.of_events (Obs.events ()) in
      let parsed =
        match Profile.of_trace_string (Obs.trace_json ()) with
        | Ok p -> p
        | Error e -> Alcotest.failf "trace did not round-trip: %s" e
      in
      Alcotest.(check int) "span count survives" live.Profile.span_count parsed.Profile.span_count;
      let labels p = List.map (fun r -> r.Profile.r_label) p.Profile.rows |> List.sort compare in
      Alcotest.(check (list string)) "row labels survive" (labels live) (labels parsed);
      let row label p = List.find (fun r -> r.Profile.r_label = label) p.Profile.rows in
      Alcotest.(check int) "work count survives" (row "work" live).Profile.r_count
        (row "work" parsed).Profile.r_count;
      (* timestamps go through the %.3f us export grid: totals agree to
         well under a microsecond per span *)
      Alcotest.(check bool) "work total survives the export grid" true
        (abs_float
           ((row "work" live).Profile.r_total_us -. (row "work" parsed).Profile.r_total_us)
        <= 0.002 *. 8.0))

let test_of_json_rejects_spanless () =
  (match Profile.of_trace_string {|{"traceEvents": []}|} with
  | Ok _ -> Alcotest.fail "empty trace should not profile"
  | Error _ -> ());
  match Profile.of_trace_string {|{"counters": {}}|} with
  | Ok _ -> Alcotest.fail "metrics file should not profile"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* GC attribution                                                      *)
(* ------------------------------------------------------------------ *)

let test_gc_attribution_positive () =
  with_obs (fun () ->
      let keep =
        Obs.span "alloc.heavy" (fun () -> Sys.opaque_identity (List.init 50_000 Fun.id))
      in
      ignore (Sys.opaque_identity keep);
      (match Obs.events () with
      | [ e ] ->
        if e.Obs.gc.Obs.minor_words < 100_000.0 then
          Alcotest.failf "minor words attributed: got %g" e.Obs.gc.Obs.minor_words
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
      let p = Profile.of_events (Obs.events ()) in
      match List.find_opt (fun r -> r.Profile.r_label = "alloc.heavy") p.Profile.rows with
      | Some r ->
        Alcotest.(check bool) "row carries the delta" true
          (r.Profile.r_gc.Obs.minor_words >= 100_000.0)
      | None -> Alcotest.fail "alloc.heavy row missing")

let test_gc_zero_when_disabled () =
  Obs.reset ();
  Obs.set_enabled false;
  let r = Obs.span "alloc.ghost" (fun () -> List.length (List.init 10_000 Fun.id)) in
  Alcotest.(check int) "span still runs f" 10_000 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.events ()))

(* ------------------------------------------------------------------ *)
(* OpenMetrics-style metrics_text                                      *)
(* ------------------------------------------------------------------ *)

let test_metrics_text_openmetrics () =
  with_obs (fun () ->
      Obs.incr ~by:2 "om.counter";
      List.iter (Obs.observe "om.histo") [ 1.0; 2.0; 4.0 ];
      let text = Obs.metrics_text () in
      let has needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "emits %S" needle) true (has needle))
        [
          "om.counter";
          "om.histo_bucket{le=\"+Inf\"} 3";
          "om.histo_count 3";
          "om.histo_sum 7";
          "om.histo{quantile=\"0.5\"}";
          "om.histo{quantile=\"0.99\"}";
        ];
      (* cumulative bucket counts must be monotone non-decreasing *)
      let counts =
        String.split_on_char '\n' text
        |> List.filter_map (fun line ->
               match String.index_opt line '}' with
               | Some i
                 when String.length line > 20
                      && String.sub line 0 16 = "om.histo_bucket{" ->
                 int_of_string_opt
                   (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
               | _ -> None)
      in
      Alcotest.(check bool) "bucket lines present" true (List.length counts >= 2);
      ignore
        (List.fold_left
           (fun prev c ->
             Alcotest.(check bool) "cumulative buckets monotone" true (c >= prev);
             c)
           0 counts))

(* ------------------------------------------------------------------ *)
(* Bench diffing                                                       *)
(* ------------------------------------------------------------------ *)

let parse s = match Json.parse s with Ok j -> j | Error e -> Alcotest.failf "bad json: %s" e

let base =
  {|{"full": {"seconds": 1.0, "node_evals": 1000, "sta_runs": 10},
     "speedup": 4.0, "eval_ratio": 0.2, "ocaml_version": "5.1.0"}|}

let test_bench_diff_identical () =
  let j = parse base in
  let findings = Bench_diff.diff ~old_json:j ~new_json:j () in
  Alcotest.(check int) "no regressions" 0 (List.length (Bench_diff.regressions findings));
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f.Bench_diff.path ^ " unchanged") true
        (f.Bench_diff.status = Bench_diff.Unchanged))
    findings

let test_bench_diff_tolerances () =
  let diff_against s =
    Bench_diff.regressions (Bench_diff.diff ~old_json:(parse base) ~new_json:(parse s) ())
  in
  (* +40% wall clock sits inside the default 50% time tolerance *)
  Alcotest.(check int) "time within tolerance" 0
    (List.length
       (diff_against
          {|{"full": {"seconds": 1.4, "node_evals": 1000, "sta_runs": 10},
             "speedup": 4.0, "eval_ratio": 0.2, "ocaml_version": "5.1.0"}|}));
  (* +60% wall clock does not *)
  let time_reg =
    diff_against
      {|{"full": {"seconds": 1.6, "node_evals": 1000, "sta_runs": 10},
         "speedup": 4.0, "eval_ratio": 0.2, "ocaml_version": "5.1.0"}|}
  in
  Alcotest.(check (list string))
    "time regression caught" [ "full.seconds" ]
    (List.map (fun f -> f.Bench_diff.path) time_reg);
  (* counts are deterministic: +5% is already a regression *)
  Alcotest.(check (list string))
    "count regression caught" [ "full.node_evals" ]
    (List.map
       (fun f -> f.Bench_diff.path)
       (diff_against
          {|{"full": {"seconds": 1.0, "node_evals": 1050, "sta_runs": 10},
             "speedup": 4.0, "eval_ratio": 0.2, "ocaml_version": "5.1.0"}|}));
  (* speedup is higher-is-better: a drop fails, a gain does not *)
  Alcotest.(check int) "speedup gain is fine" 0
    (List.length
       (diff_against
          {|{"full": {"seconds": 1.0, "node_evals": 1000, "sta_runs": 10},
             "speedup": 5.0, "eval_ratio": 0.2, "ocaml_version": "5.1.0"}|}));
  let speed_reg =
    diff_against
      {|{"full": {"seconds": 1.0, "node_evals": 1000, "sta_runs": 10},
         "speedup": 3.0, "eval_ratio": 0.2, "ocaml_version": "5.1.0"}|}
  in
  Alcotest.(check (list string))
    "speedup drop caught" [ "speedup" ]
    (List.map (fun f -> f.Bench_diff.path) speed_reg)

let test_bench_diff_missing_and_info () =
  (* a gated metric vanishing is a regression; an Info change is not *)
  let findings =
    Bench_diff.diff ~old_json:(parse base)
      ~new_json:
        (parse
           {|{"full": {"seconds": 1.0, "sta_runs": 10},
              "speedup": 4.0, "eval_ratio": 0.2, "ocaml_version": "5.2.0"}|})
      ()
  in
  Alcotest.(check (list string))
    "missing gated metric gates" [ "full.node_evals" ]
    (List.map (fun f -> f.Bench_diff.path) (Bench_diff.regressions findings));
  Alcotest.(check bool) "info change reported but not gating" true
    (List.exists
       (fun f ->
         f.Bench_diff.path = "ocaml_version" && f.Bench_diff.status = Bench_diff.Changed)
       findings)

let test_bench_diff_custom_tolerance () =
  let tol = { Bench_diff.default_tolerances with Bench_diff.time = 0.05 } in
  let findings =
    Bench_diff.diff ~tol ~old_json:(parse {|{"warm_s": 1.0}|})
      ~new_json:(parse {|{"warm_s": 1.1}|}) ()
  in
  Alcotest.(check int) "tightened tolerance trips" 1
    (List.length (Bench_diff.regressions findings))

(* ------------------------------------------------------------------ *)
(* Report assembly                                                     *)
(* ------------------------------------------------------------------ *)

let write_temp name contents =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_report_classify_and_build () =
  (match Run_report.build () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty report request should fail");
  let metrics_path =
    write_temp "vt_test_metrics.json" {|{"counters": {"x": 1}, "gauges": {}, "histograms": {}}|}
  in
  let trace_path =
    with_obs (fun () ->
        Obs.span "unit.work" (fun () -> ignore (Sys.opaque_identity (List.init 100 Fun.id)));
        write_temp "vt_test_trace.json" (Obs.trace_json ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove metrics_path;
      Sys.remove trace_path)
    (fun () ->
      (match Run_report.classify_file metrics_path with
      | Ok `Metrics -> ()
      | _ -> Alcotest.fail "metrics file misclassified");
      (match Run_report.classify_file trace_path with
      | Ok `Trace -> ()
      | _ -> Alcotest.fail "trace file misclassified");
      match Run_report.build ~trace:trace_path ~metrics:metrics_path () with
      | Error e -> Alcotest.failf "report build failed: %s" e
      | Ok r ->
        let text = Run_report.to_text r in
        List.iter
          (fun needle ->
            let nl = String.length needle and tl = String.length text in
            let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
            Alcotest.(check bool) (Printf.sprintf "report mentions %S" needle) true (go 0))
          [ "profile"; "unit.work"; "metrics" ];
        match Json.parse (Run_report.to_json r) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "report JSON invalid: %s" e)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* The metrics exporter stamps a schema version; the classifier accepts
   the current one (and legacy files without any), and rejects files
   from a future writer instead of misreading them. *)
let test_report_schema_version () =
  let live = write_temp "vt_test_metrics_live.json" (Obs.metrics_json ()) in
  let current =
    write_temp "vt_test_metrics_cur.json"
      (Printf.sprintf {|{"schema": %d, "counters": {"x": 1}}|} Obs.metrics_schema_version)
  in
  let legacy = write_temp "vt_test_metrics_old.json" {|{"counters": {"x": 1}}|} in
  let future =
    write_temp "vt_test_metrics_fut.json"
      (Printf.sprintf {|{"schema": %d, "counters": {"x": 1}}|}
         (Obs.metrics_schema_version + 1))
  in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ live; current; legacy; future ])
    (fun () ->
      Alcotest.(check bool)
        "exporter emits the version" true
        (contains ~needle:(Printf.sprintf "\"schema\":%d" Obs.metrics_schema_version)
           (Obs.metrics_json ()));
      List.iter
        (fun (name, path) ->
          match Run_report.classify_file path with
          | Ok `Metrics -> ()
          | Ok `Trace -> Alcotest.failf "%s metrics file classified as trace" name
          | Error e -> Alcotest.failf "%s metrics file rejected: %s" name e)
        [ ("live", live); ("current", current); ("legacy", legacy) ];
      match Run_report.classify_file future with
      | Ok _ -> Alcotest.fail "future schema version accepted"
      | Error msg ->
        Alcotest.(check bool) "error names the schema version" true
          (contains ~needle:"schema" msg))

let () =
  Alcotest.run "profile"
    [
      ( "quantiles",
        [
          Alcotest.test_case "empty histogram" `Quick test_quantile_empty;
          Alcotest.test_case "single observation exact" `Quick test_quantile_single_observation;
          Alcotest.test_case "monotone and bounded" `Quick test_quantile_monotone_and_bounded;
          Alcotest.test_case "bucket layout" `Quick test_bucket_layout;
          Alcotest.test_case "observe feeds quantiles" `Quick test_histogram_quantile_via_observe;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "synthetic tree" `Quick test_synthetic_tree;
          Alcotest.test_case "same label, different paths" `Quick
            test_same_label_different_paths;
          Alcotest.test_case "self sums at jobs 1/2/7" `Quick
            test_self_time_sums_under_pool_sizes;
          Alcotest.test_case "live vs exported trace" `Quick test_trace_round_trip;
          Alcotest.test_case "rejects spanless documents" `Quick test_of_json_rejects_spanless;
        ] );
      ( "gc",
        [
          Alcotest.test_case "attribution positive" `Quick test_gc_attribution_positive;
          Alcotest.test_case "nothing recorded when disabled" `Quick test_gc_zero_when_disabled;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "metrics_text is OpenMetrics-shaped" `Quick
            test_metrics_text_openmetrics;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "identical files" `Quick test_bench_diff_identical;
          Alcotest.test_case "per-class tolerances" `Quick test_bench_diff_tolerances;
          Alcotest.test_case "missing and info metrics" `Quick test_bench_diff_missing_and_info;
          Alcotest.test_case "custom tolerance" `Quick test_bench_diff_custom_tolerance;
        ] );
      ( "report",
        [
          Alcotest.test_case "classify and build" `Quick test_report_classify_and_build;
          Alcotest.test_case "metrics schema version" `Quick test_report_schema_version;
        ] );
    ]
