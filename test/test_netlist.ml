(* Tests for Vartune_netlist: Netlist and Check. *)

module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell

let lib = Lazy.force Helpers.nominal_small
let inv = Library.find lib "INV_1"
let nd2 = Library.find lib "ND2_1"
let dff = Library.find lib "DFF_1"

(* a -> INV -> ND2(b) -> out, plus a DFF capturing the ND2 output *)
let build_chain () =
  let nl = Netlist.create ~name:"chain" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let a = Netlist.add_net nl ~net_name:"a" () in
  let b = Netlist.add_net nl ~net_name:"b" () in
  Netlist.mark_primary_input nl a;
  Netlist.mark_primary_input nl b;
  let mid = Netlist.add_net nl () in
  let out = Netlist.add_net nl () in
  let q = Netlist.add_net nl () in
  let i_inv =
    Netlist.add_instance nl ~inst_name:"u_inv" ~cell:inv ~inputs:[ ("A", a) ]
      ~outputs:[ ("Z", mid) ]
  in
  let i_nd =
    Netlist.add_instance nl ~inst_name:"u_nd" ~cell:nd2
      ~inputs:[ ("A", mid); ("B", b) ]
      ~outputs:[ ("Z", out) ]
  in
  let i_ff =
    Netlist.add_instance nl ~inst_name:"u_ff" ~cell:dff
      ~inputs:[ ("D", out); ("CK", clk) ]
      ~outputs:[ ("Q", q) ]
  in
  Netlist.mark_primary_output nl out;
  (nl, a, b, mid, out, i_inv, i_nd, i_ff)

let test_wiring () =
  let nl, a, _, mid, _, i_inv, i_nd, _ = build_chain () in
  Alcotest.(check int) "instances" 3 (Netlist.instance_count nl);
  let net_a = Netlist.net nl a in
  Alcotest.(check bool) "PI undriven" true (net_a.Netlist.driver = None);
  Alcotest.(check int) "a sinks" 1 (List.length net_a.Netlist.sinks);
  let net_mid = Netlist.net nl mid in
  (match net_mid.Netlist.driver with
  | Some r -> Alcotest.(check int) "mid driver" i_inv r.Netlist.inst
  | None -> Alcotest.fail "mid should be driven");
  Alcotest.(check bool) "mid sink is nd2" true
    (List.exists (fun (r : Netlist.pin_ref) -> r.inst = i_nd && r.pin = "A")
       net_mid.Netlist.sinks)

let test_double_drive_rejected () =
  let nl = Netlist.create ~name:"x" in
  let n = Netlist.add_net nl () in
  ignore (Netlist.add_instance nl ~inst_name:"i1" ~cell:inv ~inputs:[] ~outputs:[ ("Z", n) ]);
  Alcotest.(check bool) "second driver rejected" true
    (try
       ignore (Netlist.add_instance nl ~inst_name:"i2" ~cell:inv ~inputs:[] ~outputs:[ ("Z", n) ]);
       false
     with Invalid_argument _ -> true)

let test_bad_pin_rejected () =
  let nl = Netlist.create ~name:"x" in
  let n = Netlist.add_net nl () in
  Alcotest.(check bool) "unknown pin" true
    (try
       ignore
         (Netlist.add_instance nl ~inst_name:"i" ~cell:inv ~inputs:[ ("NOPE", n) ]
            ~outputs:[]);
       false
     with Invalid_argument _ -> true)

let test_remove_instance () =
  let nl, a, _, mid, _, i_inv, _, _ = build_chain () in
  Netlist.remove_instance nl i_inv;
  Alcotest.(check int) "count" 2 (Netlist.instance_count nl);
  Alcotest.(check bool) "tombstone" true (Netlist.instance_opt nl i_inv = None);
  Alcotest.(check bool) "mid undriven" true ((Netlist.net nl mid).Netlist.driver = None);
  Alcotest.(check int) "a sinks cleared" 0 (List.length (Netlist.net nl a).Netlist.sinks)

let test_set_cell () =
  let nl, _, _, _, _, i_inv, _, _ = build_chain () in
  let inv4 = Library.find lib "INV_4" in
  Netlist.set_cell nl i_inv inv4;
  Alcotest.(check string) "resized" "INV_4" (Netlist.instance nl i_inv).Netlist.cell.Cell.name;
  (* a cell without the wired pins is rejected *)
  Alcotest.(check bool) "bad swap rejected" true
    (try
       Netlist.set_cell nl i_inv dff;
       false
     with Invalid_argument _ -> true)

let test_rewire_input () =
  let nl, a, b, _, _, _, i_nd, _ = build_chain () in
  Netlist.rewire_input nl ~inst:i_nd ~pin:"A" b;
  let inst = Netlist.instance nl i_nd in
  Alcotest.(check bool) "pin moved" true (List.assoc "A" inst.Netlist.inputs = b);
  Alcotest.(check int) "b has two sinks" 2 (List.length (Netlist.net nl b).Netlist.sinks);
  Alcotest.(check bool) "a sink gone" true
    (not
       (List.exists (fun (r : Netlist.pin_ref) -> r.inst = i_nd && r.pin = "A")
          (Netlist.net nl a).Netlist.sinks))

let test_usage_and_area () =
  let nl, _, _, _, _, _, _, _ = build_chain () in
  let usage = Netlist.cell_usage nl in
  Alcotest.(check int) "3 distinct cells" 3 (List.length usage);
  Alcotest.(check bool) "counts" true (List.for_all (fun (_, c) -> c = 1) usage);
  let expected = inv.Cell.area +. nd2.Cell.area +. dff.Cell.area in
  Helpers.check_float "area" expected (Netlist.total_area nl);
  let f1 = Netlist.fresh_name nl ~prefix:"buf" in
  let f2 = Netlist.fresh_name nl ~prefix:"buf" in
  Alcotest.(check bool) "fresh names distinct" true (f1 <> f2)

(* ------------------------------- Check ------------------------------ *)

let test_validate_ok () =
  let nl, _, _, _, _, _, _, _ = build_chain () in
  Alcotest.(check bool) "valid" true (Check.validate nl = Ok ())

let test_validate_undriven () =
  let nl = Netlist.create ~name:"x" in
  let n = Netlist.add_net nl () in
  ignore (Netlist.add_instance nl ~inst_name:"i" ~cell:inv ~inputs:[ ("A", n) ] ~outputs:[]);
  match Check.validate nl with
  | Error errors ->
    Alcotest.(check bool) "mentions driver" true
      (List.exists (fun e -> String.length e > 0) errors)
  | Ok () -> Alcotest.fail "undriven net accepted"

let test_validate_unconnected_pin () =
  let nl = Netlist.create ~name:"x" in
  let out = Netlist.add_net nl () in
  (* ND2 with only pin A connected *)
  let a = Netlist.add_net nl () in
  Netlist.mark_primary_input nl a;
  ignore
    (Netlist.add_instance nl ~inst_name:"i" ~cell:nd2 ~inputs:[ ("A", a) ]
       ~outputs:[ ("Z", out) ]);
  Alcotest.(check bool) "pin B unconnected" true (Result.is_error (Check.validate nl))

let test_validate_clock () =
  let nl = Netlist.create ~name:"x" in
  let d = Netlist.add_net nl () in
  let q = Netlist.add_net nl () in
  let not_clock = Netlist.add_net nl () in
  Netlist.mark_primary_input nl d;
  Netlist.mark_primary_input nl not_clock;
  ignore
    (Netlist.add_instance nl ~inst_name:"ff" ~cell:dff
       ~inputs:[ ("D", d); ("CK", not_clock) ]
       ~outputs:[ ("Q", q) ]);
  (* no clock declared at all *)
  Alcotest.(check bool) "no clock net" true (Result.is_error (Check.validate nl))

let test_topological_order () =
  let nl, _, _, _, _, i_inv, i_nd, i_ff = build_chain () in
  let order = Array.to_list (Check.topological_order nl) in
  Alcotest.(check int) "all ordered" 3 (List.length order);
  let pos x = Option.get (List.find_index (fun y -> y = x) order) in
  Alcotest.(check bool) "inv before nd2" true (pos i_inv < pos i_nd);
  Alcotest.(check bool) "ff anywhere before its D use (it has none)" true (pos i_ff >= 0)

let test_combinational_loop () =
  let nl = Netlist.create ~name:"loop" in
  let x = Netlist.add_net nl () in
  let y = Netlist.add_net nl () in
  ignore (Netlist.add_instance nl ~inst_name:"i1" ~cell:inv ~inputs:[ ("A", x) ] ~outputs:[ ("Z", y) ]);
  ignore (Netlist.add_instance nl ~inst_name:"i2" ~cell:inv ~inputs:[ ("A", y) ] ~outputs:[ ("Z", x) ]);
  Alcotest.(check bool) "loop detected" true
    (try
       ignore (Check.topological_order nl);
       false
     with Check.Combinational_loop _ -> true)

let test_logic_depths () =
  let nl, _, _, _, _, i_inv, i_nd, i_ff = build_chain () in
  let depths = Check.logic_depths nl in
  Alcotest.(check int) "inv depth" 1 (List.assoc i_inv depths);
  Alcotest.(check int) "nd2 depth" 2 (List.assoc i_nd depths);
  Alcotest.(check int) "ff depth" 0 (List.assoc i_ff depths)

(* ------------------------------ Verilog ------------------------------ *)

module Verilog = Vartune_netlist.Verilog

let test_verilog_writer () =
  let nl, _, _, _, _, _, _, _ = build_chain () in
  let text = Verilog.to_string nl in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module chain");
  Alcotest.(check bool) "instances" true (contains "INV_1 u_inv");
  Alcotest.(check bool) "named connections" true (contains ".A(");
  Alcotest.(check bool) "endmodule" true (contains "endmodule")

let test_verilog_roundtrip () =
  let nl, _, _, _, _, _, _, _ = build_chain () in
  let text = Verilog.to_string nl in
  let back = Verilog.parse ~library:lib text in
  Alcotest.(check int) "instances" (Netlist.instance_count nl) (Netlist.instance_count back);
  Alcotest.(check int) "pis" (List.length (Netlist.primary_inputs nl))
    (List.length (Netlist.primary_inputs back));
  Alcotest.(check int) "pos" (List.length (Netlist.primary_outputs nl))
    (List.length (Netlist.primary_outputs back));
  Alcotest.(check bool) "clock recovered" true (Netlist.clock back <> None);
  Alcotest.(check bool) "validates" true (Check.validate back = Ok ());
  Alcotest.(check (list (pair string int))) "same cell usage" (Netlist.cell_usage nl)
    (Netlist.cell_usage back)

let test_verilog_roundtrip_functional () =
  (* the round-tripped netlist computes the same function *)
  let nl, _, _, _, _, _, _, _ = build_chain () in
  let back = Verilog.parse ~library:lib (Verilog.to_string nl) in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (list bool))
        (Printf.sprintf "vector %b,%b" a b)
        (Helpers.eval_netlist nl ~input_values:[ a; b ])
        (Helpers.eval_netlist back ~input_values:[ a; b ]))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_verilog_escaped_identifiers () =
  (* net names with brackets survive via escaped identifiers *)
  let nl = Netlist.create ~name:"esc" in
  let a = Netlist.add_net nl ~net_name:"data[3]" () in
  Netlist.mark_primary_input nl a;
  let z = Netlist.add_net nl ~net_name:"out[0]" () in
  ignore
    (Netlist.add_instance nl ~inst_name:"u1" ~cell:inv ~inputs:[ ("A", a) ]
       ~outputs:[ ("Z", z) ]);
  Netlist.mark_primary_output nl z;
  let back = Verilog.parse ~library:lib (Verilog.to_string nl) in
  Alcotest.(check int) "instance" 1 (Netlist.instance_count back)

let test_verilog_parse_errors () =
  let expect_error src =
    Alcotest.(check bool) ("rejects " ^ src) true
      (try
         ignore (Verilog.parse ~library:lib src);
         false
       with Verilog.Parse_error _ -> true)
  in
  expect_error "";
  expect_error "module m (";
  expect_error "module m (input a); UNKNOWN_CELL u (.A(a)); endmodule";
  expect_error "module m (input a); INV_1 u (.NOPE(a)); endmodule"

(* ------------------------- export / import -------------------------- *)

(* Mutate a netlist the way the sizer does — resize, remove (leaving a
   tombstone), rewire, burn names — then check the snapshot reproduces
   the internal state exactly, including slot indices and sink order. *)
let test_export_import_faithful () =
  let nl, a, _b, _mid, _out, i_inv, i_nd, _i_ff = build_chain () in
  ignore (Netlist.fresh_name nl ~prefix:"buf");
  Netlist.remove_instance nl i_inv;
  Netlist.rewire_input nl ~inst:i_nd ~pin:"A" a;
  let repr = Netlist.export nl in
  let back = Netlist.import repr in
  Alcotest.(check string) "name" (Netlist.name nl) (Netlist.name back);
  Alcotest.(check int) "net count" (Netlist.net_count nl) (Netlist.net_count back);
  Alcotest.(check int) "live instances" (Netlist.instance_count nl)
    (Netlist.instance_count back);
  Alcotest.(check bool) "tombstone preserved" true
    (Netlist.instance_opt back i_inv = None);
  Alcotest.(check (list int)) "primary inputs" (Netlist.primary_inputs nl)
    (Netlist.primary_inputs back);
  Alcotest.(check (list int)) "primary outputs" (Netlist.primary_outputs nl)
    (Netlist.primary_outputs back);
  Alcotest.(check bool) "clock" true (Netlist.clock nl = Netlist.clock back);
  (* sink order fixes float summation order in net loads — exact match *)
  for nid = 0 to Netlist.net_count nl - 1 do
    let n = Netlist.net nl nid and n' = Netlist.net back nid in
    Alcotest.(check bool)
      (Printf.sprintf "net %d sinks" nid)
      true
      (n.Netlist.sinks = n'.Netlist.sinks && n.Netlist.driver = n'.Netlist.driver)
  done;
  (* a second snapshot of the rebuild is byte-for-byte the first *)
  Alcotest.(check bool) "repr fixpoint" true (Netlist.export back = repr);
  Alcotest.(check string) "name counter continues identically"
    (Netlist.fresh_name nl ~prefix:"x")
    (Netlist.fresh_name back ~prefix:"x")

let test_import_rejects_corrupt () =
  let nl, _, _, _, _, _, _, _ = build_chain () in
  let repr = Netlist.export nl in
  let expect_reject label repr =
    Alcotest.(check bool) label true
      (try
         ignore (Netlist.import repr);
         false
       with Invalid_argument _ -> true)
  in
  (* a sink pointing at a pin the cell does not have *)
  let bad_sinks =
    Array.map
      (fun (n, d, sinks) ->
        (n, d, List.map (fun r -> { r with Netlist.pin = "NOPE" }) sinks))
      repr.Netlist.repr_nets
  in
  expect_reject "bad sink pin" { repr with Netlist.repr_nets = bad_sinks };
  (* an instance input naming a net that does not exist *)
  let bad_inst =
    Array.map
      (Option.map (fun (n, c, inputs, outputs) ->
           (n, c, List.map (fun (p, _) -> (p, 9999)) inputs, outputs)))
      repr.Netlist.repr_instances
  in
  expect_reject "net out of range" { repr with Netlist.repr_instances = bad_inst }

let () =
  Alcotest.run "netlist"
    [
      ( "netlist",
        [
          Alcotest.test_case "wiring" `Quick test_wiring;
          Alcotest.test_case "double drive" `Quick test_double_drive_rejected;
          Alcotest.test_case "bad pin" `Quick test_bad_pin_rejected;
          Alcotest.test_case "remove instance" `Quick test_remove_instance;
          Alcotest.test_case "set cell" `Quick test_set_cell;
          Alcotest.test_case "rewire input" `Quick test_rewire_input;
          Alcotest.test_case "usage/area/names" `Quick test_usage_and_area;
          Alcotest.test_case "export/import faithful" `Quick test_export_import_faithful;
          Alcotest.test_case "import rejects corrupt" `Quick test_import_rejects_corrupt;
        ] );
      ( "check",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "undriven net" `Quick test_validate_undriven;
          Alcotest.test_case "unconnected pin" `Quick test_validate_unconnected_pin;
          Alcotest.test_case "clock discipline" `Quick test_validate_clock;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "combinational loop" `Quick test_combinational_loop;
          Alcotest.test_case "logic depths" `Quick test_logic_depths;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "writer" `Quick test_verilog_writer;
          Alcotest.test_case "roundtrip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "roundtrip functional" `Quick test_verilog_roundtrip_functional;
          Alcotest.test_case "escaped identifiers" `Quick test_verilog_escaped_identifiers;
          Alcotest.test_case "parse errors" `Quick test_verilog_parse_errors;
        ] );
    ]
