(* Tests for Vartune_rtl: Ir (hash-consing, simplification), Word
   (arithmetic semantics vs OCaml integers), Microcontroller. *)

module Ir = Vartune_rtl.Ir
module Word = Vartune_rtl.Word
module Mcu = Vartune_rtl.Microcontroller

let eval = Helpers.eval_ir
let bits_of_int = Helpers.bits_of_int
let word_inputs = Helpers.word_inputs
let eval_word = Helpers.eval_word

(* ------------------------------- Ir --------------------------------- *)

let test_hashcons_dedup () =
  let g = Ir.create ~name:"t" in
  let a = Ir.input g "a" and b = Ir.input g "b" in
  let x = Ir.and2 g a b in
  let y = Ir.and2 g b a in
  Alcotest.(check int) "commutative cse" x y;
  let n1 = Ir.not_ g a in
  let n2 = Ir.not_ g a in
  Alcotest.(check int) "not cse" n1 n2

let test_ff_not_hashconsed () =
  let g = Ir.create ~name:"t" in
  let a = Ir.input g "a" in
  let f1 = Ir.ff g ~d:a () in
  let f2 = Ir.ff g ~d:a () in
  Alcotest.(check bool) "distinct flops" true (f1 <> f2)

let test_simplifications () =
  let g = Ir.create ~name:"t" in
  let a = Ir.input g "a" in
  let c0 = Ir.const0 g and c1 = Ir.const1 g in
  Alcotest.(check int) "not not" a (Ir.not_ g (Ir.not_ g a));
  Alcotest.(check int) "and a a" a (Ir.and2 g a a);
  Alcotest.(check int) "and a 0" c0 (Ir.and2 g a c0);
  Alcotest.(check int) "and a 1" a (Ir.and2 g a c1);
  Alcotest.(check int) "or a 1" c1 (Ir.or2 g a c1);
  Alcotest.(check int) "xor a a" c0 (Ir.xor2 g a a);
  Alcotest.(check int) "xor a 0" a (Ir.xor2 g a c0);
  Alcotest.(check int) "xor a 1" (Ir.not_ g a) (Ir.xor2 g a c1);
  Alcotest.(check int) "xnor a a" c1 (Ir.xnor2 g a a);
  Alcotest.(check int) "mux s=0" a (Ir.mux2 g ~a ~b:c1 ~s:c0);
  Alcotest.(check int) "mux s=1" c1 (Ir.mux2 g ~a ~b:c1 ~s:c1);
  Alcotest.(check int) "mux same" a (Ir.mux2 g ~a ~b:a ~s:(Ir.input g "s"));
  Alcotest.(check int) "maj const0" a (Ir.maj3 g a a (Ir.input g "z"))

let test_mux_to_selector () =
  let g = Ir.create ~name:"t" in
  let s = Ir.input g "s" in
  Alcotest.(check int) "mux 0 1 s = s" s (Ir.mux2 g ~a:(Ir.const0 g) ~b:(Ir.const1 g) ~s);
  Alcotest.(check int) "mux 1 0 s = !s" (Ir.not_ g s)
    (Ir.mux2 g ~a:(Ir.const1 g) ~b:(Ir.const0 g) ~s)

let test_ff_forward () =
  let g = Ir.create ~name:"t" in
  let q = Ir.ff_forward g () in
  Alcotest.(check bool) "unconnected" false (Ir.ff_data_connected g q);
  let d = Ir.not_ g q in
  Ir.set_ff_data g q d;
  Alcotest.(check bool) "connected" true (Ir.ff_data_connected g q);
  Alcotest.(check bool) "double connect rejected" true
    (try
       Ir.set_ff_data g q d;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "set on non-ff rejected" true
    (try
       Ir.set_ff_data g d d;
       false
     with Invalid_argument _ -> true)

(* simplification preserves semantics on random 3-input expressions *)
let test_simplify_semantics =
  Helpers.qtest ~count:300 "random expression semantics"
    QCheck2.Gen.(pair (list_size (int_range 1 30) (int_range 0 6)) (int_range 0 7))
    (fun (ops, assignment) ->
      let g = Ir.create ~name:"q" in
      let a = Ir.input g "a" and b = Ir.input g "b" and c = Ir.input g "c" in
      let av = assignment land 1 = 1
      and bv = assignment land 2 = 2
      and cv = assignment land 4 = 4 in
      (* build a random dag over a stack discipline, keeping a shadow
         stack of directly-computed booleans — the unsimplified reference *)
      let stack = ref [ (a, av); (b, bv); (c, cv); (Ir.const0 g, false); (Ir.const1 g, true) ] in
      let pick k = List.nth !stack (k mod List.length !stack) in
      List.iteri
        (fun i op ->
          let x, xv = pick i and y, yv = pick (i + 1) and z, zv = pick (i + 2) in
          let node =
            match op with
            | 0 -> (Ir.and2 g x y, xv && yv)
            | 1 -> (Ir.or2 g x y, xv || yv)
            | 2 -> (Ir.xor2 g x y, xv <> yv)
            | 3 -> (Ir.not_ g x, not xv)
            | 4 -> (Ir.mux2 g ~a:x ~b:y ~s:z, if zv then yv else xv)
            | 5 -> (Ir.xor3 g x y z, xv <> yv <> zv)
            | _ -> (Ir.maj3 g x y z, (xv && yv) || (xv && zv) || (yv && zv))
          in
          stack := node :: !stack)
        ops;
      let top, expected = List.hd !stack in
      Ir.output g "out" top;
      let inputs = [ ("a", av); ("b", bv); ("c", cv) ] in
      (eval g ~inputs ()).(top) = expected)

(* ------------------------------- Word ------------------------------- *)

let width = 8
let mask = (1 lsl width) - 1

let binop_gen = QCheck2.Gen.(pair (int_range 0 mask) (int_range 0 mask))

let check_binop name build reference =
  Helpers.qtest ~count:200 name binop_gen (fun (x, y) ->
      let g = Ir.create ~name:"w" in
      let a = Word.inputs g ~prefix:"a" ~width in
      let b = Word.inputs g ~prefix:"b" ~width in
      let result = build g a b in
      let inputs = word_inputs "a" (bits_of_int ~width x) @ word_inputs "b" (bits_of_int ~width y) in
      let values = eval g ~inputs () in
      eval_word values result = reference x y land mask)

let test_word_add = check_binop "add" (fun g a b -> fst (Word.add g a b)) ( + )
let test_word_add_fast = check_binop "add_fast" (fun g a b -> fst (Word.add_fast g a b)) ( + )

let test_word_add_fast_group2 =
  check_binop "add_fast group 2" (fun g a b -> fst (Word.add_fast ~group:2 g a b)) ( + )

let test_word_sub = check_binop "sub" (fun g a b -> fst (Word.sub g a b)) ( - )
let test_word_and = check_binop "logand" Word.logand ( land )
let test_word_or = check_binop "logor" Word.logor ( lor )
let test_word_xor = check_binop "logxor" Word.logxor ( lxor )

let test_word_mul =
  Helpers.qtest ~count:100 "multiply" QCheck2.Gen.(pair (int_range 0 63) (int_range 0 63))
    (fun (x, y) ->
      let g = Ir.create ~name:"w" in
      let a = Word.inputs g ~prefix:"a" ~width:6 in
      let b = Word.inputs g ~prefix:"b" ~width:6 in
      let p = Word.multiply g a b in
      let inputs =
        word_inputs "a" (bits_of_int ~width:6 x) @ word_inputs "b" (bits_of_int ~width:6 y)
      in
      eval_word (eval g ~inputs ()) p = x * y)

let test_word_compare =
  Helpers.qtest ~count:200 "equal/less_than" binop_gen (fun (x, y) ->
      let g = Ir.create ~name:"w" in
      let a = Word.inputs g ~prefix:"a" ~width in
      let b = Word.inputs g ~prefix:"b" ~width in
      let eq = Word.equal g a b in
      let lt = Word.less_than g a b in
      let inputs =
        word_inputs "a" (bits_of_int ~width x) @ word_inputs "b" (bits_of_int ~width y)
      in
      let values = eval g ~inputs () in
      values.(eq) = (x = y) && values.(lt) = (x < y))

let test_word_shifts =
  Helpers.qtest ~count:200 "barrel shifts"
    QCheck2.Gen.(pair (int_range 0 mask) (int_range 0 (width - 1)))
    (fun (x, amount) ->
      let g = Ir.create ~name:"w" in
      let a = Word.inputs g ~prefix:"a" ~width in
      let amt = Word.inputs g ~prefix:"s" ~width:3 in
      let left = Word.barrel_shift_left g a ~amount:amt in
      let right = Word.barrel_shift_right g a ~amount:amt in
      let inputs =
        word_inputs "a" (bits_of_int ~width x) @ word_inputs "s" (bits_of_int ~width:3 amount)
      in
      let values = eval g ~inputs () in
      eval_word values left = (x lsl amount) land mask
      && eval_word values right = (x lsr amount) land mask)

let test_word_mux_tree =
  Helpers.qtest ~count:200 "mux_tree"
    QCheck2.Gen.(pair (int_range 0 3) (int_range 0 mask))
    (fun (sel, seed) ->
      let g = Ir.create ~name:"w" in
      let words = List.init 4 (fun k -> Word.const g ~width ((seed + (k * 37)) land mask)) in
      let s = Word.inputs g ~prefix:"s" ~width:2 in
      let out = Word.mux_tree g ~sel:s words in
      let inputs = word_inputs "s" (bits_of_int ~width:2 sel) in
      let values = eval g ~inputs () in
      eval_word values out = (seed + (sel * 37)) land mask)

let test_word_one_hot_mux =
  Helpers.qtest ~count:100 "one_hot_mux"
    QCheck2.Gen.(pair (int_range 0 3) (int_range 0 mask))
    (fun (sel, seed) ->
      let g = Ir.create ~name:"w" in
      let words = List.init 4 (fun k -> Word.const g ~width ((seed + (k * 91)) land mask)) in
      let s = Word.inputs g ~prefix:"s" ~width:2 in
      let onehot = Word.decoder g s in
      let out = Word.one_hot_mux g ~onehot words in
      let inputs = word_inputs "s" (bits_of_int ~width:2 sel) in
      let values = eval g ~inputs () in
      eval_word values out = (seed + (sel * 91)) land mask)

let test_word_decoder =
  Helpers.qtest ~count:64 "decoder one-hot" QCheck2.Gen.(int_range 0 7) (fun sel ->
      let g = Ir.create ~name:"w" in
      let s = Word.inputs g ~prefix:"s" ~width:3 in
      let lines = Word.decoder g s in
      let inputs = word_inputs "s" (bits_of_int ~width:3 sel) in
      let values = eval g ~inputs () in
      Array.for_all Fun.id (Array.mapi (fun k line -> values.(line) = (k = sel)) lines))

let test_word_priority_encode =
  Helpers.qtest ~count:200 "priority encoder" QCheck2.Gen.(int_range 0 255) (fun req ->
      let g = Ir.create ~name:"w" in
      let lines = Array.init 8 (fun i -> Ir.input g (Printf.sprintf "r[%d]" i)) in
      let index, valid = Word.priority_encode g lines in
      let inputs = word_inputs "r" (bits_of_int ~width:8 req) in
      let values = eval g ~inputs () in
      if req = 0 then values.(valid) = false
      else begin
        let rec lowest i = if (req lsr i) land 1 = 1 then i else lowest (i + 1) in
        values.(valid) && eval_word values index = lowest 0
      end)

let test_word_reg_enable () =
  let g = Ir.create ~name:"w" in
  let d = Word.inputs g ~prefix:"d" ~width:4 in
  let en = Ir.input g "en" in
  let q = Word.reg g ~enable:en d in
  (* every q bit is a connected flop whose D is a mux of q and d *)
  Array.iter
    (fun bit ->
      Alcotest.(check bool) "connected" true (Ir.ff_data_connected g bit);
      match Ir.op_of g bit with
      | Ir.Ff _ -> (
        let mux = (Ir.fanins g bit).(0) in
        match Ir.op_of g mux with
        | Ir.Mux2 -> ()
        | _ -> Alcotest.fail "expected recirculation mux")
      | _ -> Alcotest.fail "expected flop")
    q

(* --------------------------- Microcontroller ------------------------ *)

let test_mcu_generates () =
  let ir = Mcu.generate () in
  Alcotest.(check bool) "size plausible" true (Ir.node_count ir > 5000);
  let stats = Ir.stats ir in
  let count tag = Option.value (List.assoc_opt tag stats) ~default:0 in
  Alcotest.(check bool) "has flops" true (count "ff" > 1000);
  Alcotest.(check bool) "has adders" true (count "xor3" > 100 && count "maj3" > 100);
  Alcotest.(check bool) "has outputs" true (List.length (Ir.outputs ir) > 50)

let test_mcu_all_ffs_connected () =
  let ir = Mcu.generate () in
  let ok = ref true in
  Ir.iter_nodes ir ~f:(fun id op _ ->
      match op with
      | Ir.Ff _ -> if not (Ir.ff_data_connected ir id) then ok := false
      | _ -> ());
  Alcotest.(check bool) "all flops driven" true !ok

let test_mcu_deterministic () =
  let a = Mcu.generate () in
  let b = Mcu.generate () in
  Alcotest.(check int) "same node count" (Ir.node_count a) (Ir.node_count b)

let test_mcu_config_scales () =
  let small =
    Mcu.generate
      ~config:{ Mcu.default_config with reg_count = 8; mul_width = 8 }
      ()
  in
  let big = Mcu.generate () in
  Alcotest.(check bool) "smaller config smaller netlist" true
    (Ir.node_count small < Ir.node_count big)

let () =
  Alcotest.run "rtl"
    [
      ( "ir",
        [
          Alcotest.test_case "hashcons dedup" `Quick test_hashcons_dedup;
          Alcotest.test_case "ff not hashconsed" `Quick test_ff_not_hashconsed;
          Alcotest.test_case "simplifications" `Quick test_simplifications;
          Alcotest.test_case "mux to selector" `Quick test_mux_to_selector;
          Alcotest.test_case "ff forward" `Quick test_ff_forward;
          test_simplify_semantics;
        ] );
      ( "word",
        [
          test_word_add;
          test_word_add_fast;
          test_word_add_fast_group2;
          test_word_sub;
          test_word_and;
          test_word_or;
          test_word_xor;
          test_word_mul;
          test_word_compare;
          test_word_shifts;
          test_word_mux_tree;
          test_word_one_hot_mux;
          test_word_decoder;
          test_word_priority_encode;
          Alcotest.test_case "enabled register" `Quick test_word_reg_enable;
        ] );
      ( "microcontroller",
        [
          Alcotest.test_case "generates" `Quick test_mcu_generates;
          Alcotest.test_case "flops connected" `Quick test_mcu_all_ffs_connected;
          Alcotest.test_case "deterministic" `Quick test_mcu_deterministic;
          Alcotest.test_case "config scales" `Quick test_mcu_config_scales;
        ] );
    ]
