(* Tests for Vartune_util.Pool (ordered deterministic parallel map) and
   the pairwise Welford merge that underpins the parallel statistical
   library builder. *)

module Pool = Vartune_util.Pool
module Rng = Vartune_util.Rng
module Stat = Vartune_util.Stat

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_map_ordering () =
  let xs = List.init 500 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "ordered at jobs=%d" jobs)
            expected
            (Pool.map pool (fun x -> x * x) xs)))
    [ 1; 2; 7 ]

let test_map_empty_and_singleton () =
  with_pool 3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 4 ] (Pool.map pool (( * ) 2) [ 2 ]))

let test_exception_propagation () =
  (* the lowest-index failure wins, deterministically, and the pool
     survives for later use *)
  with_pool 4 (fun pool ->
      let boom x = if x = 17 || x = 42 then failwith (Printf.sprintf "boom%d" x) else x in
      let observed =
        try
          ignore (Pool.map pool boom (List.init 100 Fun.id));
          "no exception"
        with Failure m -> m
      in
      Alcotest.(check string) "lowest index re-raised" "boom17" observed;
      Alcotest.(check (list int)) "pool still usable" [ 0; 1; 2 ]
        (Pool.map pool Fun.id [ 0; 1; 2 ]))

let test_init_chunking () =
  let f i = (i * 31) mod 97 in
  let expected = Array.init 1000 f in
  List.iter
    (fun (jobs, chunk) ->
      with_pool jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "init jobs=%d chunk=%d" jobs chunk)
            expected
            (Pool.init pool ~chunk 1000 f)))
    [ (1, 1); (2, 16); (5, 7); (3, 1000); (4, 1500) ]

let test_map_reduce_ordered () =
  (* combine is non-commutative, so any reordering would change the
     result *)
  let xs = List.init 50 (fun i -> string_of_int i) in
  let expected = String.concat "," xs in
  with_pool 6 (fun pool ->
      let got =
        Pool.map_reduce pool ~map:Fun.id
          ~combine:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
          ~init:"" xs
      in
      Alcotest.(check string) "ordered reduction" expected got)

let test_jobs_accessor_and_serial_fallback () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      (* serial pool must run tasks in the calling domain *)
      let self = Domain.self () in
      let domains = Pool.map pool (fun _ -> Domain.self ()) (List.init 8 Fun.id) in
      Alcotest.(check bool) "all in caller" true (List.for_all (( = ) self) domains))

let test_create_rejects_bad_jobs () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d rejected" jobs)
        (Invalid_argument
           (Printf.sprintf "Pool.create: jobs must be a positive integer (got %d)" jobs))
        (fun () -> ignore (Pool.create ~jobs ())))
    [ 0; -1; -3 ];
  Alcotest.check_raises "zero stall timeout rejected"
    (Invalid_argument "Pool.create: stall timeout 0 must be > 0") (fun () ->
      ignore (Pool.create ~jobs:1 ~stall_timeout_s:0.0 ()));
  (* set_default_jobs validates before touching the existing default *)
  (match Pool.set_default_jobs 0 with
  | () -> Alcotest.fail "set_default_jobs 0 should raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (list int)) "default pool survives the rejection" [ 0; 1; 2 ]
    (Pool.map (Pool.default ()) Fun.id [ 0; 1; 2 ])

(* --------------------- pairwise Welford merge ----------------------- *)

let test_welford_merge_matches_streaming =
  (* partials over fixed blocks, merged left-to-right, must agree with
     the streaming oracle that saw every sample in order *)
  Helpers.qtest ~count:200 "pairwise merge = streaming oracle"
    QCheck2.Gen.(pair int (int_range 1 200))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let xs = Array.init n (fun _ -> 1.0 +. Rng.normal rng) in
      let streaming = Stat.Welford.create () in
      Array.iter (Stat.Welford.add streaming) xs;
      (* deterministic but irregular block sizes *)
      let block_rng = Rng.create (seed lxor 0x55) in
      let merged = ref (Stat.Welford.create ()) in
      let i = ref 0 in
      while !i < n do
        let len = min (n - !i) (1 + Rng.int block_rng 7) in
        let block = Stat.Welford.create () in
        for k = !i to !i + len - 1 do
          Stat.Welford.add block xs.(k)
        done;
        merged := Stat.Welford.merge !merged block;
        i := !i + len
      done;
      let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a) in
      Stat.Welford.count !merged = Stat.Welford.count streaming
      && close (Stat.Welford.mean !merged) (Stat.Welford.mean streaming)
      && close (Stat.Welford.variance !merged) (Stat.Welford.variance streaming))

let test_welford_merge_empty_sides () =
  let w = Stat.Welford.create () in
  List.iter (Stat.Welford.add w) [ 1.0; 2.0; 3.0 ];
  let e = Stat.Welford.create () in
  let le = Stat.Welford.merge e w and re = Stat.Welford.merge w e in
  Alcotest.(check int) "left empty count" 3 (Stat.Welford.count le);
  Helpers.check_float "left empty mean" 2.0 (Stat.Welford.mean le);
  Helpers.check_float "right empty mean" 2.0 (Stat.Welford.mean re);
  Helpers.check_float "variance survives" (Stat.Welford.variance w) (Stat.Welford.variance le)

let test_welford_empty_blocks () =
  (* merging two empty (count = 0) partials stays empty with finite
     moments — no NaN, no division by zero *)
  let e = Stat.Welford.merge (Stat.Welford.create ()) (Stat.Welford.create ()) in
  Alcotest.(check int) "empty+empty count" 0 (Stat.Welford.count e);
  Alcotest.(check bool) "empty variance finite" true
    (Float.is_finite (Stat.Welford.variance e));
  Helpers.check_float "empty variance is zero" 0.0 (Stat.Welford.variance e);
  Helpers.check_float "empty stddev is zero" 0.0 (Stat.Welford.stddev e);
  (* the merged-empty accumulator is a working identity: feeding it
     afterwards behaves exactly like a fresh accumulator *)
  List.iter (Stat.Welford.add e) [ 2.0; 4.0 ];
  Alcotest.(check int) "count after adds" 2 (Stat.Welford.count e);
  Helpers.check_float "mean after adds" 3.0 (Stat.Welford.mean e);
  Helpers.check_float "variance after adds" 2.0 (Stat.Welford.variance e);
  (* merge with an empty block is the identity in both directions,
     bit-for-bit *)
  let w = Stat.Welford.create () in
  List.iter (Stat.Welford.add w) [ 1.0; 2.0; 4.0 ];
  let bits = Int64.bits_of_float in
  List.iter
    (fun (side, m) ->
      Alcotest.(check int) (side ^ " count") (Stat.Welford.count w) (Stat.Welford.count m);
      Alcotest.(check int64) (side ^ " mean bits") (bits (Stat.Welford.mean w))
        (bits (Stat.Welford.mean m));
      Alcotest.(check int64) (side ^ " variance bits")
        (bits (Stat.Welford.variance w))
        (bits (Stat.Welford.variance m)))
    [
      ("left identity", Stat.Welford.merge (Stat.Welford.create ()) w);
      ("right identity", Stat.Welford.merge w (Stat.Welford.create ()));
    ]

let test_welford_against_stat () =
  let rng = Rng.create 77 in
  let xs = Array.init 500 (fun _ -> Rng.gaussian rng ~mean:4.0 ~sigma:0.3) in
  let w = Stat.Welford.create () in
  Array.iter (Stat.Welford.add w) xs;
  Helpers.check_float ~eps:1e-9 "mean" (Stat.mean xs) (Stat.Welford.mean w);
  Helpers.check_float ~eps:1e-9 "variance" (Stat.variance xs) (Stat.Welford.variance w);
  Helpers.check_float ~eps:1e-9 "stddev" (Stat.stddev xs) (Stat.Welford.stddev w)

(* VARTUNE_JOBS precedence: explicit ~jobs wins, a well-formed env value
   is honoured, and zero/negative/garbage values are rejected (with a
   Logs warning) in favour of the recommended domain count — never
   silently clamped to 1. *)
(* ------------------------- chunked submission ---------------------- *)

(* Chunking is granularity only: any chunk size, any job count, same
   ordered result as List.map. *)
let test_map_chunked_matches_map () =
  let xs = List.init 101 (fun i -> i - 7) in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          List.iter
            (fun chunk ->
              Alcotest.(check (list int))
                (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
                expect
                (Pool.map_chunked pool ~chunk (fun x -> x * x) xs))
            [ 1; 2; 7; 64; 1000 ];
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d auto chunk" jobs)
            expect
            (Pool.map_chunked pool (fun x -> x * x) xs);
          Alcotest.(check (list int)) "empty" []
            (Pool.map_chunked pool (fun x -> x * x) [])))
    [ 1; 2; 7 ]

exception Boom of int

(* The lowest-index exception contract survives batching: items inside a
   chunk run in ascending order, chunks settle in input order. *)
let test_map_chunked_exception () =
  with_pool 4 (fun pool ->
      let xs = List.init 50 Fun.id in
      List.iter
        (fun chunk ->
          match
            Pool.map_chunked pool ~chunk
              (fun x -> if x mod 7 = 3 then raise (Boom x) else x)
              xs
          with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom x ->
            Alcotest.(check int) (Printf.sprintf "chunk=%d lowest index" chunk) 3 x)
        [ 1; 8; 100 ])

let test_chunk_resolution () =
  let original = Sys.getenv_opt "VARTUNE_POOL_CHUNK" in
  let set v = Unix.putenv "VARTUNE_POOL_CHUNK" v in
  Fun.protect
    ~finally:(fun () ->
      set (Option.value original ~default:"");
      Pool.clear_default_chunk ())
    (fun () ->
      set "";
      with_pool 2 (fun pool ->
          (* automatic: ~8 tasks per worker, floored at 1 *)
          Alcotest.(check int) "auto" 10 (Pool.chunk_for pool ~items:160);
          Alcotest.(check int) "auto floor" 1 (Pool.chunk_for pool ~items:5);
          set "13";
          Alcotest.(check int) "env honoured" 13 (Pool.chunk_for pool ~items:160);
          Pool.set_default_chunk 5;
          Alcotest.(check int) "override beats env" 5 (Pool.chunk_for pool ~items:160);
          Pool.clear_default_chunk ();
          Alcotest.(check int) "cleared back to env" 13 (Pool.chunk_for pool ~items:160);
          set "nonsense";
          Alcotest.check_raises "malformed env raises"
            (Invalid_argument
               "VARTUNE_POOL_CHUNK: bad chunk size \"nonsense\": expected a positive \
                integer")
            (fun () -> ignore (Pool.chunk_for pool ~items:160))))

let test_parse_chunk () =
  (match Pool.parse_chunk " 16 " with
  | Ok 16 -> ()
  | _ -> Alcotest.fail "16 accepted");
  List.iter
    (fun bad ->
      match Pool.parse_chunk bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" bad))
    [ "0"; "-3"; "x"; "1.5"; "" ];
  Alcotest.check_raises "set_default_chunk rejects 0"
    (Invalid_argument "Pool.set_default_chunk: chunk must be positive (got 0)")
    (fun () -> Pool.set_default_chunk 0)

let test_env_jobs_precedence () =
  let original = Sys.getenv_opt "VARTUNE_JOBS" in
  let set v = Unix.putenv "VARTUNE_JOBS" v in
  Fun.protect
    ~finally:(fun () -> set (Option.value original ~default:""))
    (fun () ->
      set "3";
      with_pool 2 (fun pool ->
          Alcotest.(check int) "explicit ~jobs beats env" 2 (Pool.jobs pool));
      let pool = Pool.create () in
      Alcotest.(check int) "valid env honoured" 3 (Pool.jobs pool);
      Pool.shutdown pool;
      let recommended = Domain.recommended_domain_count () in
      List.iter
        (fun bad ->
          set bad;
          let pool = Pool.create () in
          Alcotest.(check int)
            (Printf.sprintf "VARTUNE_JOBS=%S rejected" bad)
            recommended (Pool.jobs pool);
          Pool.shutdown pool)
        [ "0"; "-2"; "garbage"; "" ])

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "env jobs precedence" `Quick test_env_jobs_precedence;
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "map empty/singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "init chunking" `Quick test_init_chunking;
          Alcotest.test_case "map_reduce ordered" `Quick test_map_reduce_ordered;
          Alcotest.test_case "serial fallback" `Quick test_jobs_accessor_and_serial_fallback;
          Alcotest.test_case "bad jobs rejected" `Quick test_create_rejects_bad_jobs;
          Alcotest.test_case "map_chunked ordering" `Quick test_map_chunked_matches_map;
          Alcotest.test_case "map_chunked exception" `Quick test_map_chunked_exception;
          Alcotest.test_case "chunk resolution" `Quick test_chunk_resolution;
          Alcotest.test_case "parse_chunk" `Quick test_parse_chunk;
        ] );
      ( "welford",
        [
          test_welford_merge_matches_streaming;
          Alcotest.test_case "merge with empty" `Quick test_welford_merge_empty_sides;
          Alcotest.test_case "empty blocks" `Quick test_welford_empty_blocks;
          Alcotest.test_case "matches Stat" `Quick test_welford_against_stat;
        ] );
    ]
