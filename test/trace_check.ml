(* CI checker for telemetry output files.

   Usage: trace_check TRACE.json [METRICS.json]

   Validates the Chrome-trace file structurally (see
   Vartune_obs.Trace_check) and, when given, checks the metrics file is
   well-formed JSON with the three expected sections.  Exits non-zero
   with a diagnostic on the first problem. *)

module Json = Vartune_obs.Json
module Trace_check = Vartune_obs.Trace_check

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("trace_check: " ^ m); exit 1) fmt

let check_metrics path =
  match Json.parse (read_file path) with
  | Error e -> fail "%s: invalid JSON: %s" path e
  | Ok json ->
    List.iter
      (fun section ->
        match Json.member section json with
        | Some (Json.Object _) -> ()
        | Some _ -> fail "%s: %S is not an object" path section
        | None -> fail "%s: missing %S section" path section)
      [ "counters"; "gauges"; "histograms" ];
    Printf.printf "%s: ok\n" path

let () =
  match Sys.argv with
  | [| _; trace |] | [| _; trace; _ |] -> (
    (match Trace_check.validate_file trace with
    | Error e -> fail "%s: %s" trace e
    | Ok s ->
      Printf.printf "%s: ok — %d events, %d spans over %d domain track(s)\n" trace s.total
        s.spans s.domains;
      Printf.printf "  span names: %s\n" (String.concat ", " s.names));
    match Sys.argv with
    | [| _; _; metrics |] -> check_metrics metrics
    | _ -> ())
  | _ ->
    prerr_endline "usage: trace_check TRACE.json [METRICS.json]";
    exit 2
