(* Wire-codec tests for the typed request/response vocabulary: QCheck
   round-trips (encode -> decode -> structurally equal, floats
   bit-exact), canonical-key/id separation, unknown-version rejection
   (exit 65 semantics: a reader never guesses) and malformed-line
   diagnostics. *)

module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Tuning_method = Vartune_tuning.Tuning_method
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let base_gen =
  QCheck2.Gen.map
    (fun (seed, samples) -> { Request.seed; samples })
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 500))

let method_gen =
  let open QCheck2.Gen in
  map
    (fun (population, (pick, p)) ->
      let criterion =
        match pick mod 3 with
        | 0 -> Threshold.Load_slope p
        | 1 -> Threshold.Slew_slope p
        | _ -> Threshold.Sigma_ceiling p
      in
      { Tuning_method.population; criterion })
    (pair
       (oneofl [ Cluster.Per_cell; Cluster.Per_drive_strength ])
       (pair (int_range 0 2) (float_range 1e-6 2.0)))

(* printable includes '"', '\\' and '\n', so these exercise the JSON
   string escaper and the one-line framing guarantee *)
let name_gen = QCheck2.Gen.(string_size ~gen:printable (int_range 0 15))

let request_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Request.Characterize;
      map (fun b -> Request.Statlib b) base_gen;
      map (fun b -> Request.Min_period b) base_gen;
      map (fun (base, tuning) -> Request.Tune { base; tuning }) (pair base_gen method_gen);
      map
        (fun ((base, tuning), (period, (parameters, mc_samples))) ->
          Request.Sweep { base; tuning; period; parameters; mc_samples })
        (pair (pair base_gen method_gen)
           (pair
              (option (float_range 0.1 100.0))
              (pair
                 (list_size (int_range 0 6) (float_range 1e-4 1.0))
                 (option (int_range 1 10_000)))));
      map
        (fun ((base, period), (tuning, (timing_report, (power, verilog)))) ->
          Request.Design_sigma { base; period; tuning; timing_report; power; verilog })
        (pair
           (pair base_gen (option (float_range 0.1 100.0)))
           (pair (option method_gen) (pair bool (pair bool bool))));
      map
        (fun ((trace, metrics), (run_dir, json)) ->
          Request.Report { trace; metrics; run_dir; json })
        (pair (pair (option name_gen) (option name_gen)) (pair (option name_gen) bool));
      map (fun file -> Request.Parse { file }) name_gen;
    ]

let with_id_gen = QCheck2.Gen.(pair (option (int_range 0 1_000_000)) request_gen)

let envelope_gen =
  let open QCheck2.Gen in
  map
    (fun ((id, priority), (deadline_s, req)) ->
      { Request.id; priority; deadline_s; req })
    (pair
       (pair
          (option (int_range 0 1_000_000))
          (option (oneofl [ Request.Interactive; Request.Batch ])))
       (pair (option (float_range 1e-3 3600.0)) request_gen))

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Request round-trips                                                 *)
(* ------------------------------------------------------------------ *)

let request_round_trip =
  qtest "request of_line inverts to_line (full envelope)"
    ~count:500 envelope_gen (fun env ->
      let line =
        Request.to_line ?id:env.Request.id ?priority:env.Request.priority
          ?deadline_s:env.Request.deadline_s env.Request.req
      in
      if String.contains line '\n' then
        QCheck2.Test.fail_reportf "embedded newline in %S" line;
      match Request.of_line line with
      | Ok env' -> env' = env
      | Error e ->
        QCheck2.Test.fail_reportf "decode of %S failed: %s" line
          (Request.error_message e))

let encoding_canonical =
  qtest "to_line is deterministic and key drops only the envelope" with_id_gen
    (fun (id, req) ->
      Request.to_line ?id req = Request.to_line ?id req
      && Request.key req = Request.to_line req
      && Request.of_line (Request.key req)
         = Ok { Request.id = None; priority = None; deadline_s = None; req })

(* Envelope fields steer scheduling only: they never reach the dedup
   key, and when absent the wire line is byte-identical to the
   pre-envelope protocol — pinned against literal bytes, so any codec
   change that would bump the wire format fails here first. *)
let test_envelope_bytes () =
  let req = Request.Statlib { Request.seed = 42; samples = 50 } in
  Alcotest.(check string)
    "pre-envelope statlib line is byte-identical"
    {|{"vartune":1,"kind":"statlib","seed":42,"samples":50}|}
    (Request.to_line req);
  Alcotest.(check string)
    "id sits between version and kind"
    {|{"vartune":1,"id":7,"kind":"statlib","seed":42,"samples":50}|}
    (Request.to_line ~id:7 req);
  Alcotest.(check string)
    "envelope fields sit between id and kind"
    {|{"vartune":1,"id":7,"priority":"batch","deadline_s":2.5,"kind":"statlib","seed":42,"samples":50}|}
    (Request.to_line ~id:7 ~priority:Request.Batch ~deadline_s:2.5 req);
  Alcotest.(check string)
    "key ignores the envelope" (Request.key req)
    (match
       Request.of_line
         (Request.to_line ~id:9 ~priority:Request.Interactive ~deadline_s:0.5 req)
     with
    | Ok env -> Request.key env.Request.req
    | Error e -> Alcotest.failf "decode failed: %s" (Request.error_message e));
  Alcotest.(check string)
    "parse kind round-trips"
    {|{"vartune":1,"kind":"parse","file":"lib.lib"}|}
    (Request.to_line (Request.Parse { file = "lib.lib" }))

let test_default_priorities () =
  let interactive =
    [
      Request.Characterize;
      Request.Parse { file = "x.lib" };
      Request.Report { trace = None; metrics = None; run_dir = None; json = false };
    ]
  and batch =
    [
      Request.Statlib { Request.seed = 1; samples = 2 };
      Request.Min_period { Request.seed = 1; samples = 2 };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Request.kind_string r) "interactive"
        (Request.priority_to_string (Request.default_priority r)))
    interactive;
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Request.kind_string r) "batch"
        (Request.priority_to_string (Request.default_priority r)))
    batch

let version_rejected =
  qtest "future wire versions are rejected, never guessed" request_gen (fun req ->
      let line = Request.to_line req in
      let prefix = Printf.sprintf "{\"vartune\":%d" Request.version in
      let plen = String.length prefix in
      if String.length line < plen || String.sub line 0 plen <> prefix then
        QCheck2.Test.fail_reportf "line does not lead with the version: %S" line;
      let bumped =
        Printf.sprintf "{\"vartune\":%d%s" (Request.version + 1)
          (String.sub line plen (String.length line - plen))
      in
      match Request.of_line bumped with
      | Error (Request.Unsupported_version v) -> v = Request.version + 1
      | Error (Request.Malformed e) ->
        QCheck2.Test.fail_reportf "version bump misread as malformed: %s" e
      | Ok _ -> QCheck2.Test.fail_reportf "future version accepted: %S" bumped)

let test_malformed () =
  List.iter
    (fun line ->
      match Request.of_line line with
      | Error (Request.Malformed _) -> ()
      | Error (Request.Unsupported_version _) ->
        Alcotest.failf "%S rejected as a version problem" line
      | Ok _ -> Alcotest.failf "%S accepted" line)
    [
      "";
      "not json";
      "{}";
      "[1,2]";
      {|{"vartune":"x","kind":"statlib","seed":1,"samples":2}|};
      Printf.sprintf {|{"vartune":%d}|} Request.version;
      Printf.sprintf {|{"vartune":%d,"kind":"frobnicate"}|} Request.version;
      Printf.sprintf {|{"vartune":%d,"kind":"statlib","seed":1}|} Request.version;
      Printf.sprintf {|{"vartune":%d,"kind":"tune","seed":1,"samples":2,"method":"bogus"}|}
        Request.version;
      Printf.sprintf {|{"vartune":%d,"priority":"urgent","kind":"characterize"}|}
        Request.version;
      Printf.sprintf {|{"vartune":%d,"deadline_s":0,"kind":"characterize"}|}
        Request.version;
      Printf.sprintf {|{"vartune":%d,"deadline_s":-1.5,"kind":"characterize"}|}
        Request.version;
      Printf.sprintf {|{"vartune":%d,"kind":"parse"}|} Request.version;
    ];
  match Request.of_line (Printf.sprintf {|{"vartune":%d,"kind":"statlib"}|} 99) with
  | Error (Request.Unsupported_version 99) ->
    let msg = Request.error_message (Request.Unsupported_version 99) in
    Alcotest.(check bool) "message names the version" true (contains ~needle:"99" msg)
  | _ -> Alcotest.fail "version 99 not rejected as unsupported"

(* ------------------------------------------------------------------ *)
(* Response round-trips                                                *)
(* ------------------------------------------------------------------ *)

let response_gen =
  let open QCheck2.Gen in
  let assoc = list_size (int_range 0 3) (pair name_gen name_gen) in
  map
    (fun ((((id, kind), (code, elapsed_s)), ((dedup, recipes), ((meta, output), (artifacts, error)))), retry_after_s) ->
      {
        Response.id;
        kind;
        code;
        elapsed_s;
        dedup;
        recipes;
        meta;
        output;
        artifacts;
        error;
        retry_after_s;
      })
    (pair
       (pair
          (pair
             (pair (option (int_range 0 1_000_000)) name_gen)
             (pair (oneofl [ 0; 65; 70; 74; 75 ]) (float_range 0.0 1e4)))
          (pair
             (pair bool (list_size (int_range 0 3) name_gen))
             (pair
                (pair assoc (string_size ~gen:printable (int_range 0 200)))
                (pair assoc (option name_gen)))))
       (option (float_range 1e-3 5.0)))

let response_round_trip =
  qtest "response of_line inverts to_line" ~count:500 response_gen (fun resp ->
      let line = Response.to_line resp in
      if String.contains line '\n' then
        QCheck2.Test.fail_reportf "embedded newline in %S" line;
      match Response.of_line line with
      | Ok resp' -> resp' = resp
      | Error e -> QCheck2.Test.fail_reportf "decode of %S failed: %s" line e)

let () =
  Alcotest.run "request"
    [
      ( "codec",
        [
          request_round_trip;
          encoding_canonical;
          version_rejected;
          Alcotest.test_case "malformed lines diagnosed" `Quick test_malformed;
          Alcotest.test_case "envelope bytes pinned" `Quick test_envelope_bytes;
          Alcotest.test_case "default priorities by kind" `Quick test_default_priorities;
          response_round_trip;
        ] );
    ]
