(* Bitwise-agreement tests for the flat numeric kernels: the flat
   statistical merge against the frozen boxed reference implementation,
   the fused bilinear LUT kernels against plain lookups and an
   independent naive evaluator, and flat-layout codec round-trips.
   Everything here checks exact IEEE-754 bit patterns — the kernels'
   contract is bit-identity, not closeness. *)

module Kernel = Vartune_util.Kernel
module Stat = Vartune_util.Stat
module Grid = Vartune_util.Grid
module Pool = Vartune_util.Pool
module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library
module Statistical = Vartune_statlib.Statistical
module Boxed_ref = Vartune_statlib.Boxed_ref
module Sampler = Vartune_charlib.Sampler
module Characterize = Vartune_charlib.Characterize
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch
module Codec = Vartune_store.Codec

let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
let array_beq a b = Array.length a = Array.length b && Array.for_all2 beq a b

let lut_bit_identical a b =
  array_beq (Lut.slews a) (Lut.slews b)
  && array_beq (Lut.loads a) (Lut.loads b)
  &&
  let ra, ca = Lut.dims a and rb, cb = Lut.dims b in
  ra = rb && ca = cb
  &&
  let ok = ref true in
  for i = 0 to ra - 1 do
    for j = 0 to ca - 1 do
      if not (beq (Lut.get a i j) (Lut.get b i j)) then ok := false
    done
  done;
  !ok

let opt_lut_bit_identical a b =
  match (a, b) with
  | None, None -> true
  | Some l, Some r -> lut_bit_identical l r
  | _ -> false

let libraries_bit_identical a b =
  List.length (Library.cells a) = List.length (Library.cells b)
  && List.for_all2
       (fun (x : Cell.t) (y : Cell.t) ->
         x.Cell.name = y.Cell.name
         && List.for_all2
              (fun (p : Arc.t) (q : Arc.t) ->
                lut_bit_identical p.Arc.rise_delay q.Arc.rise_delay
                && lut_bit_identical p.Arc.fall_delay q.Arc.fall_delay
                && lut_bit_identical p.Arc.rise_transition q.Arc.rise_transition
                && lut_bit_identical p.Arc.fall_transition q.Arc.fall_transition
                && opt_lut_bit_identical p.Arc.rise_delay_sigma q.Arc.rise_delay_sigma
                && opt_lut_bit_identical p.Arc.fall_delay_sigma q.Arc.fall_delay_sigma)
              (Cell.arcs x) (Cell.arcs y))
       (Library.cells a) (Library.cells b)

(* ------------------------------------------------------------------ *)
(* Flat Welford kernel vs the scalar reference accumulator             *)
(* ------------------------------------------------------------------ *)

let float_gen = QCheck2.Gen.float_range (-100.0) 100.0

let test_welford_update_matches_scalar =
  Helpers.qtest ~count:50 "flat Welford.update bit-matches scalar Stat.Welford"
    QCheck2.Gen.(list_size (int_range 1 20) (array_size (return 6) float_gen))
    (fun samples ->
      (* entry-wise flat accumulation over length-6 surfaces must equal
         one scalar accumulator per entry, bit for bit — mean and sigma *)
      let len = 6 in
      let mean = Array.make len 0.0 and m2 = Array.make len 0.0 in
      List.iteri (fun idx x -> Kernel.Welford.update ~n:(idx + 1) ~mean ~m2 x) samples;
      let sigma = Array.make len 0.0 in
      Kernel.Welford.sigma_into ~n:(List.length samples) ~m2 ~dst:sigma;
      let refs = Array.init len (fun _ -> Stat.Welford.create ()) in
      List.iter (fun x -> Array.iteri (fun k r -> Stat.Welford.add r x.(k)) refs) samples;
      Array.for_all2 (fun m r -> beq m (Stat.Welford.mean r)) mean refs
      && Array.for_all2 (fun s r -> beq s (Stat.Welford.stddev r)) sigma refs)

let test_welford_merge_matches_scalar =
  Helpers.qtest ~count:50 "flat Welford.merge bit-matches scalar Chan merge"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 10) float_gen)
        (list_size (int_range 1 10) float_gen))
    (fun (left, right) ->
      let mean_a = [| 0.0 |] and m2_a = [| 0.0 |] in
      let mean_b = [| 0.0 |] and m2_b = [| 0.0 |] in
      List.iteri (fun i x -> Kernel.Welford.update ~n:(i + 1) ~mean:mean_a ~m2:m2_a [| x |]) left;
      List.iteri (fun i x -> Kernel.Welford.update ~n:(i + 1) ~mean:mean_b ~m2:m2_b [| x |]) right;
      Kernel.Welford.merge ~na:(List.length left) ~nb:(List.length right) ~mean_a ~m2_a
        ~mean_b ~m2_b;
      let ra = Stat.Welford.create () and rb = Stat.Welford.create () in
      List.iter (Stat.Welford.add ra) left;
      List.iter (Stat.Welford.add rb) right;
      let merged = Stat.Welford.merge ra rb in
      let n = List.length left + List.length right in
      let sigma = Array.make 1 0.0 in
      Kernel.Welford.sigma_into ~n ~m2:m2_a ~dst:sigma;
      beq mean_a.(0) (Stat.Welford.mean merged) && beq sigma.(0) (Stat.Welford.stddev merged))

(* ------------------------------------------------------------------ *)
(* Flat statistical build vs the frozen boxed reference                *)
(* ------------------------------------------------------------------ *)

let inv_only = List.filter_map Catalog.find [ "INV" ]

let sample ~seed index =
  Sampler.sample_library Characterize.default_config ~mismatch:Mismatch.default ~seed ~index
    ~specs:inv_only ()

let with_jobs jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_flat_matches_boxed =
  (* the tentpole agreement property: the flat SoA merge is the boxed
     seed implementation, bit for bit, at any pool size — including an
     n that exercises a ragged final chunk *)
  Helpers.qtest ~count:3 "flat of_stream bit-matches boxed reference at jobs 1/2/7"
    QCheck2.Gen.(pair (int_range 0 10_000) (oneofl [ 1; 5; 9 ]))
    (fun (seed, n) ->
      List.for_all
        (fun jobs ->
          with_jobs jobs (fun pool ->
              let flat = Statistical.of_stream ~pool ~n (sample ~seed) in
              let boxed = Boxed_ref.of_stream ~pool ~n (sample ~seed) in
              libraries_bit_identical flat boxed))
        [ 1; 2; 7 ])

let test_of_libraries_matches_boxed () =
  let libs = List.init 7 (sample ~seed:77) in
  Alcotest.(check bool) "of_libraries agrees" true
    (libraries_bit_identical (Statistical.of_libraries libs) (Boxed_ref.of_libraries libs))

(* ------------------------------------------------------------------ *)
(* Bilinear kernel vs an independent naive evaluator                   *)
(* ------------------------------------------------------------------ *)

(* Strictly increasing axis of the given length, offset so queries in
   [-0.5, 6.0] hit both in-range and extrapolating cases. *)
let axis_gen =
  QCheck2.Gen.(
    int_range 1 4 >>= fun n ->
    array_size (return n) (float_range 0.05 1.0) >|= fun incs ->
    let acc = ref 0.3 in
    Array.map
      (fun d ->
        let v = !acc in
        acc := !acc +. d;
        v)
      incs)

let lut_gen =
  QCheck2.Gen.(
    pair axis_gen axis_gen >>= fun (slews, loads) ->
    array_size
      (return (Array.length slews * Array.length loads))
      (float_range (-5.0) 5.0)
    >|= fun data ->
    Lut.make ~slews ~loads
      ~values:(Grid.of_flat ~rows:(Array.length slews) ~cols:(Array.length loads) data))

let query_gen = QCheck2.Gen.float_range (-0.5) 6.0

(* Straight-line reference: linear-scan segment search and the paper's
   load-then-slew interpolation written with bounds-checked Lut.get —
   independent of the kernel's flat indexing and binary search, but the
   same float-op sequence, so agreement must be exact. *)
let naive_lookup lut ~slew ~load =
  let seg axis v =
    let n = Array.length axis in
    let k = ref 0 in
    while !k < n - 2 && axis.(!k + 1) <= v do
      incr k
    done;
    !k
  in
  let xs = Lut.slews lut and ys = Lut.loads lut in
  let n_x = Array.length xs and n_y = Array.length ys in
  let i = seg xs slew and j = seg ys load in
  if n_x = 1 && n_y = 1 then Lut.get lut 0 0
  else if n_x = 1 then begin
    let wy = (load -. ys.(j)) /. (ys.(j + 1) -. ys.(j)) in
    ((1.0 -. wy) *. Lut.get lut 0 j) +. (wy *. Lut.get lut 0 (j + 1))
  end
  else if n_y = 1 then begin
    let wx = (slew -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
    ((1.0 -. wx) *. Lut.get lut i 0) +. (wx *. Lut.get lut (i + 1) 0)
  end
  else begin
    let wy = (load -. ys.(j)) /. (ys.(j + 1) -. ys.(j)) in
    let p1 = ((1.0 -. wy) *. Lut.get lut i j) +. (wy *. Lut.get lut i (j + 1)) in
    let p2 = ((1.0 -. wy) *. Lut.get lut (i + 1) j) +. (wy *. Lut.get lut (i + 1) (j + 1)) in
    let wx = (slew -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
    ((1.0 -. wx) *. p1) +. (wx *. p2)
  end

let test_lookup_matches_naive =
  Helpers.qtest ~count:300 "kernel lookup bit-matches naive reference"
    QCheck2.Gen.(triple lut_gen query_gen query_gen)
    (fun (lut, slew, load) ->
      beq (Lut.lookup lut ~slew ~load) (naive_lookup lut ~slew ~load))

let test_fused_match_plain =
  (* the fused rise/fall and 4-table entry points must equal
     independent plain lookups bit-for-bit, on shared random axes —
     degenerate 1xN / Nx1 shapes and extrapolating queries included *)
  Helpers.qtest ~count:300 "fused lookups bit-match plain lookups"
    QCheck2.Gen.(
      pair lut_gen (pair query_gen query_gen) >>= fun (a, (slew, load)) ->
      let rows, cols = Lut.dims a in
      array_size (return (3 * rows * cols)) (float_range (-5.0) 5.0) >|= fun rest ->
      let table k =
        Lut.make ~slews:(Lut.slews a) ~loads:(Lut.loads a)
          ~values:
            (Grid.of_flat ~rows ~cols (Array.sub rest (k * rows * cols) (rows * cols)))
      in
      (a, table 0, table 1, table 2, slew, load))
    (fun (a, b, c, d, slew, load) ->
      let la = Lut.lookup a ~slew ~load
      and lb = Lut.lookup b ~slew ~load
      and lc = Lut.lookup c ~slew ~load
      and ld = Lut.lookup d ~slew ~load in
      let out = Array.make 4 nan in
      Lut.lookup4_into a b c d ~slew ~load ~out;
      beq (Lut.lookup_max2 a b ~slew ~load) (Float.max la lb)
      && beq (Lut.lookup_min2 a b ~slew ~load) (Float.min la lb)
      && beq out.(0) la && beq out.(1) lb && beq out.(2) lc && beq out.(3) ld)

let test_arc_eval_into_matches_scalar =
  Helpers.qtest ~count:100 "Arc.eval_into bit-matches scalar delay/min_delay/transition"
    QCheck2.Gen.(triple (int_range 0 10_000) query_gen query_gen)
    (fun (seed, slew, load) ->
      let lib = sample ~seed 0 in
      List.for_all
        (fun cell ->
          List.for_all
            (fun (arc : Arc.t) ->
              let out = Array.make 4 nan in
              Arc.eval_into arc ~slew ~load ~out;
              beq out.(0) (Arc.delay arc ~slew ~load)
              && beq out.(1) (Arc.min_delay arc ~slew ~load)
              && beq out.(2) (Arc.transition arc ~slew ~load))
            (Cell.arcs cell))
        (Library.cells lib))

(* ------------------------------------------------------------------ *)
(* Flat layouts through the store codec                                *)
(* ------------------------------------------------------------------ *)

let test_flat_library_codec_roundtrip () =
  (* a flat-built statistical library (Grid.of_flat surfaces, sigma
     tables from sigma_into) survives the store codec bit-for-bit *)
  let lib = Statistical.of_stream ~n:6 (sample ~seed:11) in
  let b = Buffer.create 4096 in
  Codec.w_library b lib;
  let back = Codec.r_library (Codec.reader (Buffer.contents b)) in
  Alcotest.(check bool) "bit-identical after round-trip" true
    (libraries_bit_identical lib back)

let test_float_codec_special_values () =
  (* the flat grid codec inherits w_float/r_float bit-exactness; pin it
     for the values bilinear weights can produce *)
  List.iter
    (fun f ->
      let b = Buffer.create 16 in
      Codec.w_float b f;
      let back = Codec.r_float (Codec.reader (Buffer.contents b)) in
      Alcotest.(check bool)
        (Printf.sprintf "bits of %h preserved" f)
        true
        (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float back)))
    [ 0.0; -0.0; nan; infinity; neg_infinity; 4.9e-324; 1.0 /. 3.0 ]

let test_grid_of_flat () =
  let data = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let g = Grid.of_flat ~rows:2 ~cols:3 data in
  Helpers.check_float "row-major (0,2)" 3.0 (Grid.get g 0 2);
  Helpers.check_float "row-major (1,0)" 4.0 (Grid.get g 1 0);
  Alcotest.(check bool) "unsafe_data is the backing array" true (Grid.unsafe_data g == data);
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Grid.of_flat ~rows:2 ~cols:2 data);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "kernel"
    [
      ( "welford",
        [
          test_welford_update_matches_scalar;
          test_welford_merge_matches_scalar;
          test_flat_matches_boxed;
          Alcotest.test_case "of_libraries agrees" `Quick test_of_libraries_matches_boxed;
        ] );
      ( "bilinear",
        [
          test_lookup_matches_naive;
          test_fused_match_plain;
          test_arc_eval_into_matches_scalar;
        ] );
      ( "codec",
        [
          Alcotest.test_case "flat library round-trip" `Quick
            test_flat_library_codec_roundtrip;
          Alcotest.test_case "float special values" `Quick test_float_codec_special_values;
          Alcotest.test_case "Grid.of_flat" `Quick test_grid_of_flat;
        ] );
    ]
