(* Tests for Vartune_tuning — the paper's core contribution: Slope,
   Binary_lut, Rectangle (Algorithm 1), Cluster, Threshold, Restrict,
   Tuning_method. *)

module Grid = Vartune_util.Grid
module Rng = Vartune_util.Rng
module Lut = Vartune_liberty.Lut
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Slope = Vartune_tuning.Slope
module Binary_lut = Vartune_tuning.Binary_lut
module Rectangle = Vartune_tuning.Rectangle
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold
module Restrict = Vartune_tuning.Restrict
module Tuning_method = Vartune_tuning.Tuning_method

let check_float = Helpers.check_float

let statlib = Lazy.force Helpers.small_statlib

(* ------------------------------- Slope ------------------------------- *)

let test_slope_manual () =
  (* Q = 10*load + 2*slew over known axes: slopes are exactly 10 and 2 *)
  let lut =
    Lut.of_fn ~slews:[| 0.0; 0.5; 1.0 |] ~loads:[| 0.0; 0.1; 0.3 |] (fun ~slew ~load ->
        (10.0 *. load) +. (2.0 *. slew))
  in
  let ls = Slope.load_slope lut in
  let ss = Slope.slew_slope lut in
  (* eq 12/13: first row / column zero *)
  for j = 0 to 2 do
    check_float "slew slope first row" 0.0 (Lut.get ss 0 j)
  done;
  for i = 0 to 2 do
    check_float "load slope first col" 0.0 (Lut.get ls i 0)
  done;
  check_float "load slope" 10.0 (Lut.get ls 1 1);
  check_float "load slope wide step" 10.0 (Lut.get ls 2 2);
  check_float "slew slope" 2.0 (Lut.get ss 1 1);
  check_float "slew slope 2" 2.0 (Lut.get ss 2 0)

let test_max_equivalent_by_index () =
  let a = Lut.of_fn ~slews:[| 0.0; 1.0 |] ~loads:[| 0.0; 1.0 |] (fun ~slew ~load -> slew +. load) in
  (* different axes but same dims: merged by index *)
  let b =
    Lut.of_fn ~slews:[| 0.0; 2.0 |] ~loads:[| 0.0; 2.0 |] (fun ~slew ~load ->
        (slew +. load) /. 4.0)
  in
  let m = Slope.max_equivalent_by_index [ a; b ] in
  check_float "corner entry" 2.0 (Lut.get m 1 1);
  check_float "origin" 0.0 (Lut.get m 0 0);
  Alcotest.(check bool) "keeps first axes" true (Lut.slews m = Lut.slews a);
  Alcotest.(check bool) "dims mismatch rejected" true
    (try
       let c = Lut.of_fn ~slews:[| 0.0; 1.0; 2.0 |] ~loads:[| 0.0; 1.0 |] (fun ~slew ~load -> slew +. load) in
       ignore (Slope.max_equivalent_by_index [ a; c ]);
       false
     with Invalid_argument _ -> true)

(* ----------------------------- Binary_lut ---------------------------- *)

let test_binary_thresholds () =
  let lut = Lut.of_fn ~slews:[| 0.0; 1.0 |] ~loads:[| 0.0; 1.0 |] (fun ~slew ~load -> slew +. load) in
  (* entries: 0, 1, 1, 2 *)
  let strict = Binary_lut.of_threshold lut ~threshold:1.0 in
  Alcotest.(check int) "strictly below" 1 (Binary_lut.count_true strict);
  let ceil = Binary_lut.of_ceiling lut ~ceiling:1.0 in
  Alcotest.(check int) "at-or-below" 3 (Binary_lut.count_true ceil);
  Alcotest.(check bool) "origin in" true (Binary_lut.get ceil 0 0);
  Alcotest.(check bool) "corner out" false (Binary_lut.get ceil 1 1)

let test_binary_and () =
  let a = Binary_lut.of_bool_rows [| [| true; true |]; [| false; true |] |] in
  let b = Binary_lut.of_bool_rows [| [| true; false |]; [| true; true |] |] in
  let c = Binary_lut.logical_and a b in
  Alcotest.(check bool) "0,0" true (Binary_lut.get c 0 0);
  Alcotest.(check bool) "0,1" false (Binary_lut.get c 0 1);
  Alcotest.(check bool) "1,0" false (Binary_lut.get c 1 0);
  Alcotest.(check bool) "1,1" true (Binary_lut.get c 1 1);
  Alcotest.(check int) "count" 2 (Binary_lut.count_true c)

let test_all_true_in () =
  let m = Binary_lut.of_bool_rows [| [| true; true; false |]; [| true; true; true |] |] in
  Alcotest.(check bool) "2x2 block" true
    (Binary_lut.all_true_in m ~row_lo:0 ~col_lo:0 ~row_hi:1 ~col_hi:1);
  Alcotest.(check bool) "with hole" false
    (Binary_lut.all_true_in m ~row_lo:0 ~col_lo:0 ~row_hi:1 ~col_hi:2)

(* ------------------------------ Rectangle ---------------------------- *)

let test_rectangle_known_cases () =
  (* full mask *)
  let full = Binary_lut.of_bool_rows (Array.make_matrix 3 4 true) in
  (match Rectangle.naive_largest full with
  | Some r ->
    Alcotest.(check int) "full area" 12 (Rectangle.area r);
    Alcotest.(check (pair int int)) "far corner" (2, 3) (Rectangle.far_corner r)
  | None -> Alcotest.fail "full mask");
  (* empty mask *)
  let empty = Binary_lut.of_bool_rows (Array.make_matrix 3 4 false) in
  Alcotest.(check bool) "empty none" true (Rectangle.naive_largest empty = None);
  Alcotest.(check bool) "empty none (opt)" true (Rectangle.largest empty = None);
  (* single one *)
  let single =
    Binary_lut.of_bool_rows [| [| false; false |]; [| false; true |] |]
  in
  (match Rectangle.naive_largest single with
  | Some r ->
    Alcotest.(check int) "area 1" 1 (Rectangle.area r);
    Alcotest.(check bool) "position" true (r.Rectangle.row_lo = 1 && r.Rectangle.col_lo = 1)
  | None -> Alcotest.fail "single")

let test_rectangle_l_shape () =
  (* L-shape: best rectangle is the 2x2 block, not the long arm *)
  let l =
    Binary_lut.of_bool_rows
      [|
        [| true; true; false; false |];
        [| true; true; false; false |];
        [| true; false; false; false |];
      |]
  in
  match Rectangle.naive_largest l with
  | Some r -> Alcotest.(check int) "area" 4 (Rectangle.area r)
  | None -> Alcotest.fail "l shape"

let test_rectangle_prefers_origin () =
  (* two maximal rectangles of equal area: Algorithm 1's loop order picks
     the one closest to the origin *)
  let m =
    Binary_lut.of_bool_rows
      [|
        [| true; true; false; false |];
        [| false; false; false; false |];
        [| false; false; true; true |];
      |]
  in
  match Rectangle.naive_largest m with
  | Some r ->
    Alcotest.(check int) "row origin" 0 r.Rectangle.row_lo;
    Alcotest.(check int) "col origin" 0 r.Rectangle.col_lo
  | None -> Alcotest.fail "tie"

let random_mask rng rows cols density =
  Binary_lut.of_bool_rows
    (Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.uniform rng < density)))

let rect_valid mask (r : Rectangle.t) =
  Binary_lut.all_true_in mask ~row_lo:r.Rectangle.row_lo ~col_lo:r.Rectangle.col_lo
    ~row_hi:r.Rectangle.row_hi ~col_hi:r.Rectangle.col_hi

let test_rectangle_naive_vs_optimised =
  (* full structural equality, not just equal areas: the optimised
     tie-break must reproduce Algorithm 1's loop-order winner exactly,
     coordinates included, so the extracted (slew, load) window never
     depends on which implementation ran *)
  Helpers.qtest ~count:200 "naive and optimised agree exactly"
    QCheck2.Gen.(pair int (float_range 0.2 0.9))
    (fun (seed, density) ->
      let rng = Rng.create seed in
      let mask = random_mask rng (1 + Rng.int rng 9) (1 + Rng.int rng 9) density in
      match (Rectangle.naive_largest mask, Rectangle.largest mask) with
      | None, None -> true
      | Some a, Some b -> a = b && rect_valid mask a
      | Some _, None | None, Some _ -> false)

let test_rectangle_naive_is_maximal =
  (* no valid rectangle can beat the naive result *)
  Helpers.qtest ~count:50 "naive is maximal" QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let rows = 1 + Rng.int rng 6 and cols = 1 + Rng.int rng 6 in
      let mask = random_mask rng rows cols 0.6 in
      match Rectangle.naive_largest mask with
      | None -> Binary_lut.count_true mask = 0
      | Some best ->
        let beaten = ref false in
        for rl = 0 to rows - 1 do
          for cl = 0 to cols - 1 do
            for rh = rl to rows - 1 do
              for ch = cl to cols - 1 do
                let area = (rh - rl + 1) * (ch - cl + 1) in
                if
                  area > Rectangle.area best
                  && Binary_lut.all_true_in mask ~row_lo:rl ~col_lo:cl ~row_hi:rh ~col_hi:ch
                then beaten := true
              done
            done
          done
        done;
        not !beaten)

(* ------------------------------ Cluster ------------------------------ *)

let sigma_bearing =
  List.filter
    (fun c -> Cluster.sigma_luts c <> [])
    (Library.cells statlib)

let test_cluster_per_cell () =
  let clusters = Cluster.clusters statlib Cluster.Per_cell in
  (* every cell with sigma arcs gets a cluster; tie cells are skipped *)
  Alcotest.(check bool) "one cell each" true
    (List.for_all (fun c -> List.length c.Cluster.cells = 1) clusters);
  let total = List.fold_left (fun acc c -> acc + List.length c.Cluster.cells) 0 clusters in
  Alcotest.(check int) "covers sigma-bearing cells" (List.length sigma_bearing) total

let test_cluster_per_strength () =
  let clusters = Cluster.clusters statlib Cluster.Per_drive_strength in
  List.iter
    (fun c ->
      match c.Cluster.cells with
      | [] -> Alcotest.fail "empty cluster"
      | first :: rest ->
        List.iter
          (fun (cell : Cell.t) ->
            Alcotest.(check int) "uniform drive" first.Cell.drive_strength
              cell.Cell.drive_strength)
          rest)
    clusters;
  let d1 = List.find (fun c -> c.Cluster.label = "drive_1") clusters in
  let expected =
    List.length
      (List.filter (fun (c : Cell.t) -> c.Cell.drive_strength = 1) sigma_bearing)
  in
  Alcotest.(check int) "drive 1 cluster size" expected (List.length d1.Cluster.cells)

let test_cluster_equivalent_lut () =
  let clusters = Cluster.clusters statlib Cluster.Per_drive_strength in
  let d1 = List.find (fun c -> c.Cluster.label = "drive_1") clusters in
  match Cluster.equivalent_lut d1 with
  | None -> Alcotest.fail "no envelope"
  | Some envelope ->
    (* envelope dominates each member's sigma tables entry-wise *)
    List.iter
      (fun cell ->
        List.iter
          (fun lut ->
            let rows, cols = Lut.dims lut in
            for i = 0 to rows - 1 do
              for j = 0 to cols - 1 do
                Alcotest.(check bool) "dominates" true
                  (Lut.get envelope i j >= Lut.get lut i j -. 1e-12)
              done
            done)
          (Cluster.sigma_luts cell))
      d1.Cluster.cells

(* ------------------------------ Threshold ---------------------------- *)

let monotone_sigma_lut =
  Lut.of_fn ~slews:[| 0.01; 0.1; 0.4; 1.0 |] ~loads:[| 0.001; 0.01; 0.04; 0.1 |]
    (fun ~slew ~load -> (0.2 *. load) +. (0.01 *. slew))

let test_threshold_ceiling_passthrough () =
  Alcotest.(check bool) "ceiling is its own threshold" true
    (Threshold.of_criterion (Threshold.Sigma_ceiling 0.025) ~cluster_lut:monotone_sigma_lut
    = Some 0.025)

let test_threshold_slope_extraction () =
  (* load slope is 0.2 everywhere: a bound above keeps all, below kills *)
  let loose = Threshold.extract_slope_threshold monotone_sigma_lut ~load_bound:0.3 ~slew_bound:0.06 in
  (match loose with
  | Some t ->
    (* far corner of the full table *)
    check_float "loose = max entry" (Lut.get monotone_sigma_lut 3 3) t
  | None -> Alcotest.fail "loose bound");
  let tight = Threshold.extract_slope_threshold monotone_sigma_lut ~load_bound:0.1 ~slew_bound:0.06 in
  match tight with
  | Some t ->
    (* only the first load column is flat (slope column zero); threshold
       comes from the bottom of that column *)
    check_float "tight = column max" (Lut.get monotone_sigma_lut 3 0) t
  | None -> Alcotest.fail "tight bound"

let test_threshold_no_flat_region () =
  (* make even the zero first row/col fail: impossible since eq 12/13
     zero-fill them, so the first column is always flat; a bound of 0
     excludes everything *)
  Alcotest.(check bool) "zero bound kills all" true
    (Threshold.extract_slope_threshold monotone_sigma_lut ~load_bound:0.0 ~slew_bound:0.0 = None)

let test_paper_defaults () =
  check_float "load default" 1.0 Threshold.paper_defaults.Threshold.load_bound;
  check_float "slew default" 0.06 Threshold.paper_defaults.Threshold.slew_bound

(* ------------------------------ Restrict ----------------------------- *)

let test_window_allows () =
  let w = { Restrict.slew_min = 0.01; slew_max = 0.3; load_min = 0.001; load_max = 0.02 } in
  Alcotest.(check bool) "inside" true (Restrict.window_allows w ~slew:0.1 ~load:0.01);
  Alcotest.(check bool) "boundary" true (Restrict.window_allows w ~slew:0.3 ~load:0.02);
  Alcotest.(check bool) "slew above" false (Restrict.window_allows w ~slew:0.31 ~load:0.01);
  Alcotest.(check bool) "load below" false (Restrict.window_allows w ~slew:0.1 ~load:0.0001)

let test_pin_window_extraction () =
  let cell = Library.find statlib "INV_1" in
  let pin = List.hd (Cell.output_pins cell) in
  (* a generous threshold keeps the whole table *)
  (match Restrict.pin_window pin ~threshold:10.0 with
  | Restrict.Window w ->
    let arc = List.hd pin.Pin.arcs in
    let slews = Lut.slews arc.Vartune_liberty.Arc.rise_delay in
    let loads = Lut.loads arc.Vartune_liberty.Arc.rise_delay in
    check_float "slew covers axis" slews.(Array.length slews - 1) w.Restrict.slew_max;
    check_float "load covers axis" loads.(Array.length loads - 1) w.Restrict.load_max
  | Restrict.Unusable | Restrict.Unrestricted -> Alcotest.fail "expected a window");
  (* an impossible threshold marks the pin unusable *)
  (match Restrict.pin_window pin ~threshold:(-1.0) with
  | Restrict.Unusable -> ()
  | Restrict.Window _ | Restrict.Unrestricted -> Alcotest.fail "expected unusable");
  (* a mid threshold shrinks the window *)
  match Restrict.pin_window pin ~threshold:0.01 with
  | Restrict.Window w ->
    let arc = List.hd pin.Pin.arcs in
    let loads = Lut.loads arc.Vartune_liberty.Arc.rise_delay in
    Alcotest.(check bool) "restricted below full range" true
      (w.Restrict.load_max < loads.(Array.length loads - 1)
      || w.Restrict.slew_max < 1.0)
  | Restrict.Unusable -> () (* acceptable if 0.01 is below the table floor *)
  | Restrict.Unrestricted -> Alcotest.fail "expected restriction"

let test_pin_window_conservative_across_arcs () =
  (* Section VI-C: the per-pin window uses the max-equivalent LUT over the
     pin's arcs, so it must be contained in the window any single arc
     would allow at the same threshold *)
  let cells_with_multi_arc_pins =
    List.filter
      (fun (c : Cell.t) ->
        List.exists (fun (p : Pin.t) -> List.length p.Pin.arcs >= 2) (Cell.output_pins c))
      (Library.cells statlib)
  in
  Alcotest.(check bool) "multi-arc cells exist" true (cells_with_multi_arc_pins <> []);
  List.iter
    (fun (cell : Cell.t) ->
      List.iter
        (fun (p : Pin.t) ->
          if List.length p.Pin.arcs >= 2 then begin
            let threshold = 0.02 in
            match Restrict.pin_window p ~threshold with
            | Restrict.Unrestricted | Restrict.Unusable -> ()
            | Restrict.Window pin_w ->
              List.iter
                (fun (arc : Vartune_liberty.Arc.t) ->
                  match Vartune_liberty.Arc.worst_sigma arc with
                  | None -> ()
                  | Some sigma ->
                    let mask = Binary_lut.of_ceiling sigma ~ceiling:threshold in
                    (match Rectangle.naive_largest mask with
                    | None -> Alcotest.fail "pin window exists but an arc admits nothing"
                    | Some rect ->
                      let slews = Lut.slews sigma and loads = Lut.loads sigma in
                      let arc_w =
                        { Restrict.slew_min = slews.(rect.Rectangle.row_lo);
                          slew_max = slews.(rect.Rectangle.row_hi);
                          load_min = loads.(rect.Rectangle.col_lo);
                          load_max = loads.(rect.Rectangle.col_hi) }
                      in
                      (* any point the pin window admits must be admitted by
                         a same-or-larger area per-arc region; conservative
                         means the pin rectangle is no larger *)
                      Alcotest.(check bool) "pin window area <= arc window area" true
                        ((pin_w.Restrict.slew_max -. pin_w.Restrict.slew_min)
                           *. (pin_w.Restrict.load_max -. pin_w.Restrict.load_min)
                        <= (arc_w.Restrict.slew_max -. arc_w.Restrict.slew_min)
                             *. (arc_w.Restrict.load_max -. arc_w.Restrict.load_min)
                           +. 1e-12)))
                p.Pin.arcs
          end)
        (Cell.output_pins cell))
    (List.filteri (fun i _ -> i < 6) cells_with_multi_arc_pins)

let test_slope_nonnegative_on_monotone =
  (* monotone sigma surfaces (ours are, by construction) have non-negative
     slope tables everywhere *)
  Helpers.qtest ~count:60 "slopes of monotone luts are non-negative"
    QCheck2.Gen.(pair (float_range 0.01 2.0) (float_range 0.001 0.2))
    (fun (a, b) ->
      let lut =
        Lut.of_fn ~slews:[| 0.01; 0.1; 0.5; 1.0 |] ~loads:[| 0.001; 0.01; 0.05; 0.1 |]
          (fun ~slew ~load -> (a *. load) +. (b *. slew) +. (0.3 *. slew *. load))
      in
      let ok = ref true in
      let check t =
        let rows, cols = Lut.dims t in
        for i = 0 to rows - 1 do
          for j = 0 to cols - 1 do
            if Lut.get t i j < -1e-12 then ok := false
          done
        done
      in
      check (Slope.load_slope lut);
      check (Slope.slew_slope lut);
      !ok)

let test_table_semantics () =
  let table = Restrict.empty_table () in
  Alcotest.(check bool) "absent is unrestricted" true
    (Restrict.find table ~cell:"X" ~pin:"Z" = Restrict.Unrestricted);
  Restrict.set table ~cell:"X" ~pin:"Z" Restrict.Unusable;
  Alcotest.(check bool) "set/get" true (Restrict.find table ~cell:"X" ~pin:"Z" = Restrict.Unusable);
  Alcotest.(check bool) "allows honours unusable" false
    (Restrict.allows table ~cell:"X" ~pin:"Z" ~slew:0.1 ~load:0.001)

let test_restriction_fraction_bounds () =
  let tuning =
    { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling 0.015 }
  in
  let table = Tuning_method.restrictions tuning statlib in
  let f = Restrict.restriction_fraction table statlib in
  Alcotest.(check bool) "fraction in (0,1)" true (f > 0.0 && f < 1.0);
  (* a huge ceiling removes nothing *)
  let loose = Tuning_method.restrictions (Tuning_method.with_parameter tuning 100.0) statlib in
  check_float "no removal" 0.0 (Restrict.restriction_fraction loose statlib)

let test_ceiling_monotone_removal () =
  let removal c =
    let tuning =
      { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling c }
    in
    Restrict.restriction_fraction (Tuning_method.restrictions tuning statlib) statlib
  in
  Alcotest.(check bool) "tighter ceiling removes more" true
    (removal 0.04 <= removal 0.02 && removal 0.02 <= removal 0.01)

(* ---------------------------- Tuning_method -------------------------- *)

let test_five_methods () =
  let methods = Tuning_method.paper_methods ~bound:0.05 ~ceiling:0.02 in
  Alcotest.(check int) "five" 5 (List.length methods);
  let names = List.map Tuning_method.short_name methods in
  List.iter
    (fun expected ->
      Alcotest.(check bool) expected true (List.mem expected names))
    [ "Cell strength slew"; "Cell strength load"; "Cell slew"; "Cell load"; "Sigma ceiling" ]

let test_with_parameter () =
  let m =
    { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Load_slope 1.0 }
  in
  check_float "read" 1.0 (Tuning_method.parameter m);
  let m' = Tuning_method.with_parameter m 0.05 in
  check_float "write" 0.05 (Tuning_method.parameter m');
  Alcotest.(check bool) "criterion kind kept" true
    (match m'.Tuning_method.criterion with Threshold.Load_slope _ -> true | _ -> false)

(* to_string/of_string is the single spelling shared by the CLI, store
   keys and report labels — it must round-trip every method exactly,
   including awkward parameters (tiny, huge, negative zero, nan). *)
let method_gen =
  let open QCheck2.Gen in
  let param =
    oneof
      [
        float;
        oneofl [ 0.0; -0.0; 0.02; 1e-300; Float.max_float; nan; infinity; neg_infinity ];
      ]
  in
  let* population = oneofl [ Cluster.Per_cell; Cluster.Per_drive_strength ] in
  let* kind = int_range 0 2 in
  let+ p = param in
  let criterion =
    match kind with
    | 0 -> Threshold.Load_slope p
    | 1 -> Threshold.Slew_slope p
    | _ -> Threshold.Sigma_ceiling p
  in
  { Tuning_method.population; criterion }

let criterion_equal a b =
  match (a, b) with
  | Threshold.Load_slope x, Threshold.Load_slope y
  | Threshold.Slew_slope x, Threshold.Slew_slope y
  | Threshold.Sigma_ceiling x, Threshold.Sigma_ceiling y ->
    Float.compare x y = 0 (* bit-level on nan; -0. = 0. is fine, both parse back *)
  | _ -> false

let test_method_string_roundtrip =
  Helpers.qtest ~count:500 "of_string (to_string m) = Some m" method_gen (fun m ->
      match Tuning_method.of_string (Tuning_method.to_string m) with
      | None -> false
      | Some m' ->
        m'.Tuning_method.population = m.Tuning_method.population
        && criterion_equal m'.Tuning_method.criterion m.Tuning_method.criterion)

let test_method_of_string_forms () =
  let check s expected =
    Alcotest.(check bool) (Printf.sprintf "parse %S" s) true
      (Tuning_method.of_string s = expected)
  in
  check "cell/ceiling=0.02"
    (Some { Tuning_method.population = Cluster.Per_cell;
            criterion = Threshold.Sigma_ceiling 0.02 });
  check "strength/load=0.05"
    (Some { Tuning_method.population = Cluster.Per_drive_strength;
            criterion = Threshold.Load_slope 0.05 });
  (* a missing population defaults to cell *)
  check "slew=0.03"
    (Some { Tuning_method.population = Cluster.Per_cell;
            criterion = Threshold.Slew_slope 0.03 });
  check "cell/bogus=1" None;
  check "tribe/load=1" None;
  check "cell/load=abc" None;
  check "cell/load" None

let test_restrictions_cover_output_pins () =
  let tuning =
    { Tuning_method.population = Cluster.Per_drive_strength;
      criterion = Threshold.Sigma_ceiling 0.02 }
  in
  let table = Tuning_method.restrictions tuning statlib in
  (* every sigma-bearing output pin received an entry *)
  List.iter
    (fun (cell : Cell.t) ->
      List.iter
        (fun (p : Pin.t) ->
          if List.exists Vartune_liberty.Arc.has_sigma p.Pin.arcs then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s restricted" cell.Cell.name p.Pin.name)
              true
              (Restrict.find table ~cell:cell.Cell.name ~pin:p.Pin.name <> Restrict.Unrestricted))
        (Cell.output_pins cell))
    (Library.cells statlib)

let () =
  Alcotest.run "tuning"
    [
      ( "slope",
        [
          Alcotest.test_case "eq 12/13 manual" `Quick test_slope_manual;
          Alcotest.test_case "max equivalent by index" `Quick test_max_equivalent_by_index;
        ] );
      ( "binary_lut",
        [
          Alcotest.test_case "thresholds" `Quick test_binary_thresholds;
          Alcotest.test_case "logical and" `Quick test_binary_and;
          Alcotest.test_case "all_true_in" `Quick test_all_true_in;
        ] );
      ( "rectangle",
        [
          Alcotest.test_case "known cases" `Quick test_rectangle_known_cases;
          Alcotest.test_case "l shape" `Quick test_rectangle_l_shape;
          Alcotest.test_case "origin preference" `Quick test_rectangle_prefers_origin;
          test_rectangle_naive_vs_optimised;
          test_rectangle_naive_is_maximal;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "per cell" `Quick test_cluster_per_cell;
          Alcotest.test_case "per strength" `Quick test_cluster_per_strength;
          Alcotest.test_case "equivalent lut" `Quick test_cluster_equivalent_lut;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "ceiling passthrough" `Quick test_threshold_ceiling_passthrough;
          Alcotest.test_case "slope extraction" `Quick test_threshold_slope_extraction;
          Alcotest.test_case "no flat region" `Quick test_threshold_no_flat_region;
          Alcotest.test_case "paper defaults" `Quick test_paper_defaults;
        ] );
      ( "restrict",
        [
          Alcotest.test_case "window allows" `Quick test_window_allows;
          Alcotest.test_case "pin window" `Quick test_pin_window_extraction;
          Alcotest.test_case "pin window conservative" `Quick
            test_pin_window_conservative_across_arcs;
          test_slope_nonnegative_on_monotone;
          Alcotest.test_case "table semantics" `Quick test_table_semantics;
          Alcotest.test_case "restriction fraction" `Quick test_restriction_fraction_bounds;
          Alcotest.test_case "ceiling monotone" `Quick test_ceiling_monotone_removal;
        ] );
      ( "method",
        [
          Alcotest.test_case "five methods" `Quick test_five_methods;
          Alcotest.test_case "with_parameter" `Quick test_with_parameter;
          test_method_string_roundtrip;
          Alcotest.test_case "of_string forms" `Quick test_method_of_string_forms;
          Alcotest.test_case "covers output pins" `Quick test_restrictions_cover_output_pins;
        ] );
    ]
