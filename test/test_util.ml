(* Tests for Vartune_util: Rng, Stat, Grid, Vec. *)

module Rng = Vartune_util.Rng
module Stat = Vartune_util.Stat
module Grid = Vartune_util.Grid
module Vec = Vartune_util.Vec
module Pool = Vartune_util.Pool

let check_float = Helpers.check_float

(* ------------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 17 and b = Rng.create 17 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 17 and b = Rng.create 18 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = Array.init 50 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 50 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_rng_stream_matches_split =
  (* the O(1) closed form must stay in lock-step with repeated split *)
  Helpers.qtest ~count:50 "stream k = k-th split"
    QCheck2.Gen.(pair int (int_range 0 200))
    (fun (seed, k) ->
      let by_split =
        let g = Rng.create seed in
        let rec go i = let s = Rng.split g in if i = k then s else go (i + 1) in
        go 0
      in
      let by_stream = Rng.stream (Rng.create seed) k in
      Array.init 20 (fun _ -> Rng.bits64 by_split)
      = Array.init 20 (fun _ -> Rng.bits64 by_stream))

let test_rng_stream_pure () =
  let a = Rng.create 11 in
  ignore (Rng.stream a 5);
  let b = Rng.create 11 in
  Alcotest.(check int64) "stream does not advance" (Rng.bits64 b) (Rng.bits64 a);
  Alcotest.(check bool) "negative index rejected" true
    (try ignore (Rng.stream a (-1)); false with Invalid_argument _ -> true)

let test_rng_uniform_range =
  Helpers.qtest "uniform in [0,1)" QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let u = Rng.uniform rng in
      u >= 0.0 && u < 1.0)

let test_rng_int_range =
  Helpers.qtest "int in [0,bound)" QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_normal_moments () =
  let rng = Rng.create 4 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Rng.normal rng) in
  let mean = Stat.mean samples in
  let sd = Stat.stddev samples in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (sd -. 1.0) < 0.03)

let test_rng_gaussian_scaling () =
  let rng = Rng.create 5 in
  let samples = Array.init 20000 (fun _ -> Rng.gaussian rng ~mean:3.0 ~sigma:0.5) in
  Alcotest.(check bool) "mean near 3" true (Float.abs (Stat.mean samples -. 3.0) < 0.02);
  Alcotest.(check bool) "sd near 0.5" true (Float.abs (Stat.stddev samples -. 0.5) < 0.02)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 6 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------- Stat ------------------------------ *)

let test_stat_mean () = check_float "mean" 2.5 (Stat.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stat_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stat.mean: empty array") (fun () ->
      ignore (Stat.mean [||]))

let test_stat_variance () =
  (* sample variance of 2,4,4,4,5,5,7,9 is 32/7 *)
  check_float "variance" (32.0 /. 7.0)
    (Stat.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]);
  check_float "population variance" 4.0
    (Stat.population_variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_stat_variance_singleton () = check_float "n<2 variance" 0.0 (Stat.variance [| 42.0 |])

let test_stat_cov_metric () =
  (* the paper's Fig 1: same variability, different sigma *)
  let rng = Rng.create 12 in
  let left = Array.init 4000 (fun _ -> Rng.gaussian rng ~mean:0.5 ~sigma:0.01) in
  let right = Array.init 4000 (fun _ -> Rng.gaussian rng ~mean:5.0 ~sigma:0.1) in
  let cv_l = Stat.coefficient_of_variation left in
  let cv_r = Stat.coefficient_of_variation right in
  Alcotest.(check bool) "equal variability" true (Float.abs (cv_l -. cv_r) < 0.002);
  Alcotest.(check bool) "different sigma" true
    (Stat.stddev right > 5.0 *. Stat.stddev left)

let test_stat_min_max () =
  Alcotest.(check (pair (float 0.0) (float 0.0))) "min max" (-3.0, 9.0)
    (Stat.min_max [| 1.0; -3.0; 9.0; 0.0 |])

let test_stat_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stat.percentile a 0.0);
  check_float "p50" 3.0 (Stat.percentile a 0.5);
  check_float "p100" 5.0 (Stat.percentile a 1.0);
  check_float "p25" 2.0 (Stat.percentile a 0.25)

let test_stat_percentile_unsorted () =
  check_float "median of unsorted" 3.0 (Stat.percentile [| 5.0; 1.0; 3.0; 2.0; 4.0 |] 0.5)

let test_stat_percentile_total_order () =
  (* the internal sort uses Float.compare (a total order), so -0.0 ranks
     strictly below 0.0; with 4 elements, p = 1/3 lands exactly on the
     second order statistic, and dividing exposes the zero's sign *)
  let a = [| 0.0; -0.0; -1.0; 1.0 |] in
  check_float "signed zero ordering" neg_infinity (1.0 /. Stat.percentile a (1.0 /. 3.0));
  check_float "min" (-1.0) (Stat.percentile a 0.0);
  check_float "max" 1.0 (Stat.percentile a 1.0)

let test_stat_percentile_monotone =
  Helpers.qtest "percentile monotone in p"
    QCheck2.Gen.(pair (array_size (int_range 1 40) (float_range (-100.) 100.))
                   (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (a, (p, q)) ->
      let lo = Float.min p q and hi = Float.max p q in
      Stat.percentile a lo <= Stat.percentile a hi +. 1e-9)

let test_stat_histogram () =
  let h = Stat.histogram ~bins:4 [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "bins" 4 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 5 total

let test_stat_histogram_conserves =
  Helpers.qtest "histogram conserves count"
    QCheck2.Gen.(array_size (int_range 1 200) (float_range (-5.) 5.))
    (fun a ->
      let h = Stat.histogram ~bins:7 a in
      Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h = Array.length a)

let test_stat_covariance () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 2.0; 4.0; 6.0 |] in
  check_float "cov" 2.0 (Stat.covariance a b);
  check_float "corr" 1.0 (Stat.correlation a b);
  check_float "anti corr" (-1.0) (Stat.correlation a [| 3.0; 2.0; 1.0 |]);
  check_float "constant corr" 0.0 (Stat.correlation a [| 7.0; 7.0; 7.0 |])

(* ------------------------------- Grid ------------------------------ *)

let test_grid_create_get_set () =
  let g = Grid.create ~rows:3 ~cols:4 1.5 in
  Alcotest.(check int) "rows" 3 (Grid.rows g);
  Alcotest.(check int) "cols" 4 (Grid.cols g);
  check_float "fill" 1.5 (Grid.get g 2 3);
  Grid.set g 1 2 9.0;
  check_float "set" 9.0 (Grid.get g 1 2)

let test_grid_bounds () =
  let g = Grid.create ~rows:2 ~cols:2 0.0 in
  Alcotest.check_raises "oob" (Invalid_argument "Grid: index out of bounds") (fun () ->
      ignore (Grid.get g 2 0))

let test_grid_init_layout () =
  let g = Grid.init ~rows:2 ~cols:3 (fun i j -> float_of_int ((10 * i) + j)) in
  check_float "0,0" 0.0 (Grid.get g 0 0);
  check_float "0,2" 2.0 (Grid.get g 0 2);
  check_float "1,1" 11.0 (Grid.get g 1 1)

let test_grid_of_arrays () =
  let g = Grid.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "roundtrip" true
    (Grid.to_arrays g = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |])

let test_grid_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Grid.of_arrays: ragged") (fun () ->
      ignore (Grid.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_grid_map_map2 () =
  let g = Grid.init ~rows:2 ~cols:2 (fun i j -> float_of_int (i + j)) in
  let doubled = Grid.map (fun v -> 2.0 *. v) g in
  check_float "map" 4.0 (Grid.get doubled 1 1);
  let sum = Grid.map2 ( +. ) g doubled in
  check_float "map2" 6.0 (Grid.get sum 1 1);
  let other = Grid.create ~rows:3 ~cols:2 0.0 in
  Alcotest.check_raises "map2 dims" (Invalid_argument "Grid.map2: dimension mismatch")
    (fun () -> ignore (Grid.map2 ( +. ) g other))

let test_grid_minmax_fold () =
  let g = Grid.of_arrays [| [| 1.0; -2.0 |]; [| 5.0; 0.0 |] |] in
  check_float "max" 5.0 (Grid.max_value g);
  check_float "min" (-2.0) (Grid.min_value g);
  check_float "fold sum" 4.0 (Grid.fold ( +. ) 0.0 g)

let test_grid_equal () =
  let g = Grid.create ~rows:2 ~cols:2 1.0 in
  let h = Grid.map (fun v -> v +. 1e-13) g in
  Alcotest.(check bool) "within eps" true (Grid.equal g h);
  Alcotest.(check bool) "beyond eps" false (Grid.equal ~eps:1e-14 g h)

(* The unsafe accessors must agree bit-for-bit with the checked ones on
   every in-bounds index — they may only ever differ by skipping the
   bounds check. *)
let test_grid_unsafe_agrees =
  Helpers.qtest ~count:200 "unsafe_get/unsafe_set agree with get/set"
    QCheck2.Gen.(
      let* rows = int_range 1 8 and* cols = int_range 1 8 in
      let* cells = list_size (return (rows * cols)) (float_range (-1e6) 1e6) in
      let* i = int_range 0 (rows - 1) and* j = int_range 0 (cols - 1) in
      let* v = float_range (-1e6) 1e6 in
      return (rows, cols, Array.of_list cells, i, j, v))
    (fun (rows, cols, cells, i, j, v) ->
      let g = Grid.init ~rows ~cols (fun i j -> cells.((i * cols) + j)) in
      let all_agree g =
        let ok = ref true in
        Grid.iteri
          (fun i j x ->
            if Int64.bits_of_float (Grid.unsafe_get g i j) <> Int64.bits_of_float x then
              ok := false)
          g;
        !ok
      in
      let reads_agree = all_agree g in
      Grid.unsafe_set g i j v;
      reads_agree
      && Int64.bits_of_float (Grid.get g i j) = Int64.bits_of_float v
      && all_agree g)

(* ------------------------------- Vec ------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "index" i (Vec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42)

let test_vec_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 20;
  Alcotest.(check (list int)) "after set" [ 1; 20; 3 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold" 10 (Vec.fold ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Alcotest.(check (array int)) "to_array" [| 1; 2; 3; 4 |] (Vec.to_array v)

(* ------------------------- Welford clamp --------------------------- *)

(* Streaming updates and pairwise merges over near-constant data can
   cancel to a tiny negative M2; sigma must come out 0.0, never NaN. *)
let welford_of array =
  let w = Stat.Welford.create () in
  Array.iter (Stat.Welford.add w) array;
  w

let test_welford_sigma_never_nan =
  QCheck.Test.make ~count:500 ~name:"welford sigma never NaN on near-constant data"
    QCheck.(
      triple (float_range 1e-9 1e9) (int_range 2 64) (int_range 0 1000))
    (fun (base, n, split) ->
      let data = Array.init n (fun i -> base *. (1.0 +. (float_of_int i *. 1e-16))) in
      let direct = welford_of data in
      (* also exercise the pairwise merge at an arbitrary split point *)
      let k = split mod n in
      let merged =
        Stat.Welford.merge
          (welford_of (Array.sub data 0 k))
          (welford_of (Array.sub data k (n - k)))
      in
      List.for_all
        (fun w ->
          let sigma = Stat.Welford.stddev w in
          Stat.Welford.variance w >= 0.0 && (not (Float.is_nan sigma)) && sigma >= 0.0)
        [ direct; merged ])

let test_welford_clamp_only_negatives () =
  (* clamping is for cancellation noise only: a genuine NaN input must
     still propagate rather than be laundered into 0 *)
  let w = welford_of [| 1.0; Float.nan; 2.0 |] in
  Alcotest.(check bool) "NaN data keeps NaN variance" true
    (Float.is_nan (Stat.Welford.variance w));
  let ok = welford_of [| 5.0; 5.0; 5.0 |] in
  Alcotest.(check (float 0.0)) "constant data has zero sigma" 0.0 (Stat.Welford.stddev ok)

(* ------------------------ Pool env parsing ------------------------- *)

let test_parse_stall_timeout () =
  let ok v = match Pool.parse_stall_timeout v with Ok s -> Some s | Error _ -> None in
  Alcotest.(check (option (float 0.0))) "plain seconds" (Some 2.5) (ok "2.5");
  Alcotest.(check (option (float 0.0))) "integer seconds" (Some 30.0) (ok "30");
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected with a named token" v)
        true
        (match Pool.parse_stall_timeout v with
        | Ok _ -> false
        | Error msg -> String.length msg > 0))
    [ "-3"; "0"; "nan"; "-nan"; "garbage"; "" ]

let test_stall_env_rejected () =
  (* OCaml cannot unset an env var; an empty value means unset, which
     lets this test restore the environment afterwards *)
  let set v = Unix.putenv "VARTUNE_POOL_STALL_S" v in
  Fun.protect ~finally:(fun () -> set "")
    (fun () ->
      set "-7";
      Alcotest.check_raises "negative stall timeout raises"
        (Invalid_argument
           "VARTUNE_POOL_STALL_S: stall timeout -7 is not a positive number of seconds")
        (fun () -> ignore (Pool.create ~jobs:1 ()));
      set "";
      let pool = Pool.create ~jobs:1 () in
      Alcotest.(check int) "empty value means unset" 1 (Pool.jobs pool);
      Pool.shutdown pool)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          test_rng_stream_matches_split;
          Alcotest.test_case "stream purity" `Quick test_rng_stream_pure;
          test_rng_uniform_range;
          test_rng_int_range;
          Alcotest.test_case "normal moments" `Slow test_rng_normal_moments;
          Alcotest.test_case "gaussian scaling" `Slow test_rng_gaussian_scaling;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stat",
        [
          Alcotest.test_case "mean" `Quick test_stat_mean;
          Alcotest.test_case "mean empty" `Quick test_stat_mean_empty;
          Alcotest.test_case "variance" `Quick test_stat_variance;
          Alcotest.test_case "variance singleton" `Quick test_stat_variance_singleton;
          Alcotest.test_case "variability metric (Fig 1)" `Slow test_stat_cov_metric;
          Alcotest.test_case "min max" `Quick test_stat_min_max;
          Alcotest.test_case "percentile" `Quick test_stat_percentile;
          Alcotest.test_case "percentile unsorted" `Quick test_stat_percentile_unsorted;
          Alcotest.test_case "percentile total order" `Quick test_stat_percentile_total_order;
          test_stat_percentile_monotone;
          Alcotest.test_case "histogram" `Quick test_stat_histogram;
          test_stat_histogram_conserves;
          Alcotest.test_case "covariance/correlation" `Quick test_stat_covariance;
        ] );
      ( "grid",
        [
          Alcotest.test_case "create/get/set" `Quick test_grid_create_get_set;
          Alcotest.test_case "bounds" `Quick test_grid_bounds;
          Alcotest.test_case "init layout" `Quick test_grid_init_layout;
          Alcotest.test_case "of_arrays" `Quick test_grid_of_arrays;
          Alcotest.test_case "of_arrays ragged" `Quick test_grid_of_arrays_ragged;
          Alcotest.test_case "map/map2" `Quick test_grid_map_map2;
          Alcotest.test_case "minmax/fold" `Quick test_grid_minmax_fold;
          Alcotest.test_case "equal" `Quick test_grid_equal;
          test_grid_unsafe_agrees;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
        ] );
      ( "welford",
        [
          QCheck_alcotest.to_alcotest test_welford_sigma_never_nan;
          Alcotest.test_case "clamp spares genuine NaN" `Quick
            test_welford_clamp_only_negatives;
        ] );
      ( "pool-env",
        [
          Alcotest.test_case "parse_stall_timeout" `Quick test_parse_stall_timeout;
          Alcotest.test_case "malformed env rejected" `Quick test_stall_env_rejected;
        ] );
    ]
