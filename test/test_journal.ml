(* Tests for Vartune_journal and the checkpoint/resume machinery it
   drives: step-record round-trips through the checksummed file format,
   corruption detection (truncation, bit flips, torn records), append
   degradation under injected faults, and interrupted-and-resumed
   statistical-library builds that must be bit-identical to
   uninterrupted ones at any pool size — with fewer samples recomputed,
   asserted via telemetry counters. *)

module Journal = Vartune_journal.Journal
module Fault = Vartune_fault.Fault
module Store = Vartune_store.Store
module Obs = Vartune_obs.Obs
module Pool = Vartune_util.Pool
module Statistical = Vartune_statlib.Statistical
module Characterize = Vartune_charlib.Characterize
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch
module Printer = Vartune_liberty.Printer

let temp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vartune_test_journal_%d" (Unix.getpid ()))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fresh_path name =
  mkdir_p temp_root;
  let path = Filename.concat temp_root name in
  if Sys.file_exists path then Sys.remove path;
  path

let all_steps =
  [
    Journal.Run_started
      {
        seed = 42;
        samples = 50;
        kind = "experiment";
        mc_samples = 2000;
        period = Some 4.08;
        tuning = "cell/ceiling=0.02";
        output = Some "out.lib";
      };
    Journal.Run_started
      {
        seed = 1;
        samples = 8;
        kind = "statlib";
        mc_samples = 0;
        period = None;
        tuning = "";
        output = None;
      };
    Journal.Block_done { statlib = "statlib(n=8)"; lo = 0; hi = 4 };
    Journal.Checkpoint
      { statlib = "statlib(n=8)"; blocks = 1; samples_done = 4; key = "partial(blocks=1)" };
    Journal.Statlib_built { key = "statlib(n=8)" };
    Journal.Min_period { key = "min_period(...)"; period = 4.08 };
    Journal.Synthesis_done { key = "synth_run(...)"; label = "baseline"; period = 4.08 };
    Journal.Sweep_done { tuning = "cell/ceiling=0.02"; period = 4.08; points = 3 };
    Journal.Resumed { replayed = 7 };
    Journal.Sealed { reason = "completed" };
  ]

let step = Alcotest.testable (fun ppf s -> Fmt.string ppf (Journal.step_to_string s)) ( = )

(* ------------------------------------------------------------------ *)
(* File format                                                         *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  let path = fresh_path "round_trip.vtj" in
  let j = Journal.create path in
  List.iter (Journal.append j) all_steps;
  Journal.close j;
  Alcotest.(check (list step)) "replay returns every step" all_steps (Journal.replay path)

let test_append_after_seal () =
  let path = fresh_path "sealed.vtj" in
  let j = Journal.create path in
  Journal.append j (Journal.Resumed { replayed = 0 });
  Journal.seal j ~reason:"completed";
  (* sealing closes the handle; later appends are silent no-ops *)
  Journal.append j (Journal.Resumed { replayed = 1 });
  Alcotest.(check (list step))
    "nothing lands after seal"
    [ Journal.Resumed { replayed = 0 }; Journal.Sealed { reason = "completed" } ]
    (Journal.replay path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let check_corrupt name path =
  match Journal.replay path with
  | _ -> Alcotest.failf "%s: replay accepted a damaged journal" name
  | exception Journal.Corrupt _ -> ()

let test_truncation_detected () =
  let path = fresh_path "truncated.vtj" in
  let j = Journal.create path in
  List.iter (Journal.append j) all_steps;
  Journal.close j;
  let contents = read_file path in
  (* chop a few bytes off the tail: the final record is torn *)
  write_file path (String.sub contents 0 (String.length contents - 3));
  check_corrupt "truncated tail" path;
  (* chop into the header *)
  write_file path (String.sub contents 0 4);
  check_corrupt "truncated header" path

let test_bit_flip_detected () =
  let path = fresh_path "bitflip.vtj" in
  let j = Journal.create path in
  List.iter (Journal.append j) all_steps;
  Journal.close j;
  let pristine = read_file path in
  (* flip one bit at several positions across the file: header damage,
     checksum damage and payload damage must all be caught *)
  List.iter
    (fun pos ->
      let damaged = Bytes.of_string pristine in
      Bytes.set damaged pos (Char.chr (Char.code (Bytes.get damaged pos) lxor 0x10));
      write_file path (Bytes.to_string damaged);
      check_corrupt (Printf.sprintf "bit flip at %d" pos) path)
    [ 0; 9; 30; String.length pristine / 2; String.length pristine - 2 ]

let test_write_fault_degrades () =
  let path = fresh_path "degrade.vtj" in
  let j = Journal.create path in
  Journal.append j (Journal.Resumed { replayed = 1 });
  Fault.with_spec "write=#1" (fun () ->
      Journal.append j (Journal.Resumed { replayed = 2 });
      Alcotest.(check bool) "handle degraded after write fault" true (Journal.degraded j);
      (* degraded handles swallow later appends instead of raising *)
      Journal.append j (Journal.Resumed { replayed = 3 }));
  Journal.close j;
  Alcotest.(check (list step))
    "the pre-fault prefix replays cleanly"
    [ Journal.Resumed { replayed = 1 } ]
    (Journal.replay path)

let test_partial_write_torn_record () =
  let path = fresh_path "torn.vtj" in
  let j = Journal.create path in
  Journal.append j (Journal.Resumed { replayed = 1 });
  Fault.with_spec "partial_write=#1" (fun () ->
      Journal.append j (Journal.Resumed { replayed = 2 }));
  Alcotest.(check bool) "handle degraded after torn write" true (Journal.degraded j);
  Journal.close j;
  (* the torn record is on disk; replay must refuse the whole file
     rather than hand back a guessed prefix *)
  check_corrupt "torn record" path

(* ------------------------------------------------------------------ *)
(* Checkpointed builds: interrupt, resume, bit-identity                *)
(* ------------------------------------------------------------------ *)

let config = Characterize.default_config
let mismatch = Mismatch.default
let inv_only = List.filter_map Catalog.find [ "INV" ]

let with_run name f =
  let dir = Filename.concat temp_root name in
  mkdir_p dir;
  let state = Store.open_dir (Filename.concat dir "state") in
  Store.wipe state;
  Fun.protect ~finally:(fun () -> Store.wipe state) (fun () -> f dir state)

(* A ctx built by hand so the stop-after-N-blocks hook is per-test
   state, not process environment. *)
let ctx ~journal ~state ?(replayed = []) ?stop_after () =
  {
    Journal.journal;
    state;
    stop = Atomic.make false;
    every_blocks = 1;
    replayed;
    stop_after_blocks = stop_after;
    blocks_recorded = Atomic.make 0;
  }

let counter name = Obs.counter_value name

let with_counters f =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) f

let build ?ckpt ~pool ~n () =
  Statistical.build ~pool ?ckpt config ~mismatch ~seed:7 ~n ~specs:inv_only ()

(* Interrupt a checkpointed build after its first block round, resume
   it from the journal, and require the resumed library to be
   byte-identical to an uninterrupted build — while recomputing
   strictly fewer samples, measured via the statlib.samples counter. *)
let test_interrupt_resume_bit_identical jobs () =
  with_counters @@ fun () ->
  with_run (Printf.sprintf "resume_j%d" jobs) @@ fun dir state ->
  let n = 24 in
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let reference = build ~pool ~n () in
  let jpath = Filename.concat dir "journal.vtj" in
  let j = Journal.create jpath in
  let c = ctx ~journal:j ~state ~stop_after:1 () in
  let checkpoints_before = counter "journal.checkpoints" in
  (match build ~ckpt:c ~pool ~n () with
  | _ -> Alcotest.fail "build ignored the stop request"
  | exception Journal.Interrupted _ -> ());
  Journal.seal j ~reason:"interrupted";
  Alcotest.(check bool)
    "at least one checkpoint journaled" true
    (counter "journal.checkpoints" > checkpoints_before);
  Alcotest.(check int) "no tasks in flight after the interrupt" 0 (Pool.in_flight pool);
  Alcotest.(check int) "no tasks queued after the interrupt" 0 (Pool.queued pool);
  let replayed = Journal.replay jpath in
  let j2 = Journal.open_append jpath in
  let c2 = ctx ~journal:j2 ~state ~replayed () in
  let samples_before = counter "statlib.samples" in
  let resumed = build ~ckpt:c2 ~pool ~n () in
  let recomputed = counter "statlib.samples" - samples_before in
  Journal.seal j2 ~reason:"completed";
  Alcotest.(check string)
    "resumed library bit-identical to uninterrupted"
    (Printer.to_string reference) (Printer.to_string resumed);
  Alcotest.(check bool)
    (Printf.sprintf "resume recomputed fewer samples (%d < %d)" recomputed n)
    true
    (recomputed > 0 && recomputed < n)

(* A corrupt checkpoint must never poison the result: the resuming
   build detects it (the store evicts the entry), falls back to a cold
   start, and still produces the uninterrupted bytes. *)
let test_corrupt_checkpoint_falls_back () =
  with_counters @@ fun () ->
  with_run "corrupt_ckpt" @@ fun dir state ->
  let n = 16 in
  let pool = Pool.create ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let reference = build ~pool ~n () in
  let jpath = Filename.concat dir "journal.vtj" in
  let j = Journal.create jpath in
  let c = ctx ~journal:j ~state ~stop_after:1 () in
  (match build ~ckpt:c ~pool ~n () with
  | _ -> Alcotest.fail "build ignored the stop request"
  | exception Journal.Interrupted _ -> ());
  Journal.close j;
  (* flip a byte inside every checkpointed partial on disk *)
  let replayed = Journal.replay jpath in
  let statlib_id, blocks =
    match
      List.find_map
        (function
          | Journal.Checkpoint { statlib; blocks; _ } -> Some (statlib, blocks) | _ -> None)
        replayed
    with
    | Some found -> found
    | None -> Alcotest.fail "interrupted build journaled no checkpoint"
  in
  let path = Store.entry_path state (Statistical.checkpoint_key ~id:statlib_id ~blocks) in
  let contents = read_file path in
  let damaged = Bytes.of_string contents in
  let pos = Bytes.length damaged / 2 in
  Bytes.set damaged pos (Char.chr (Char.code (Bytes.get damaged pos) lxor 0x20));
  write_file path (Bytes.to_string damaged);
  let j2 = Journal.open_append jpath in
  let c2 = ctx ~journal:j2 ~state ~replayed () in
  let samples_before = counter "statlib.samples" in
  let resumed = build ~ckpt:c2 ~pool ~n () in
  let recomputed = counter "statlib.samples" - samples_before in
  Journal.close j2;
  Alcotest.(check string)
    "fallback result bit-identical to uninterrupted"
    (Printer.to_string reference) (Printer.to_string resumed);
  Alcotest.(check int) "corrupt checkpoint forced a full recompute" n recomputed

let () =
  Alcotest.run "journal"
    [
      ( "format",
        [
          Alcotest.test_case "steps round-trip" `Quick test_round_trip;
          Alcotest.test_case "append after seal" `Quick test_append_after_seal;
          Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
          Alcotest.test_case "bit flips detected" `Quick test_bit_flip_detected;
          Alcotest.test_case "write fault degrades" `Quick test_write_fault_degrades;
          Alcotest.test_case "torn record refused" `Quick test_partial_write_torn_record;
        ] );
      ( "resume",
        [
          Alcotest.test_case "bit-identical at jobs=1" `Slow
            (test_interrupt_resume_bit_identical 1);
          Alcotest.test_case "bit-identical at jobs=2" `Slow
            (test_interrupt_resume_bit_identical 2);
          Alcotest.test_case "bit-identical at jobs=4" `Slow
            (test_interrupt_resume_bit_identical 4);
          Alcotest.test_case "corrupt checkpoint falls back" `Slow
            test_corrupt_checkpoint_falls_back;
        ] );
    ]
