(* Tests for Vartune_charlib: Delay_model, Characterize, Sampler. *)

module Delay_model = Vartune_charlib.Delay_model
module Characterize = Vartune_charlib.Characterize
module Sampler = Vartune_charlib.Sampler
module Catalog = Vartune_stdcell.Catalog
module Spec = Vartune_stdcell.Spec
module Corner = Vartune_process.Corner
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc
module Lut = Vartune_liberty.Lut

let check_float = Helpers.check_float
let params = Delay_model.default
let inv = Option.get (Catalog.find "INV")
let fa = Option.get (Catalog.find "FA1")
let zero = Mismatch.zero_sample

let nominal_delay ?(spec = inv) ?(drive = 1) ?(corner = 1.0) ~slew ~load () =
  Delay_model.delay params spec ~drive ~output:"Z" ~edge:Delay_model.Rise
    ~corner_factor:corner ~sample:zero ~slew ~load

(* --------------------------- Delay model ---------------------------- *)

let test_delay_monotone_in_load =
  Helpers.qtest "delay monotone in load"
    QCheck2.Gen.(pair (float_range 0.001 0.011) (float_range 0.01 1.0))
    (fun (load, slew) ->
      nominal_delay ~slew ~load () < nominal_delay ~slew ~load:(load +. 0.001) ())

let test_delay_monotone_in_slew =
  Helpers.qtest "delay monotone in slew"
    QCheck2.Gen.(pair (float_range 0.001 0.012) (float_range 0.01 0.9))
    (fun (load, slew) ->
      nominal_delay ~slew ~load () < nominal_delay ~slew:(slew +. 0.05) ~load ())

let test_delay_drive_speedup () =
  let d1 = nominal_delay ~drive:1 ~slew:0.05 ~load:0.008 () in
  let d8 = nominal_delay ~drive:8 ~slew:0.05 ~load:0.008 () in
  Alcotest.(check bool) "bigger drive faster at same load" true (d8 < d1)

let test_corner_scales_delay_and_sigma () =
  (* the Fig 15 property holds exactly in the model: corner multiplies
     both the mean and the sigma *)
  let slow = Corner.delay_factor Corner.slow in
  check_float "mean scales"
    (slow *. nominal_delay ~slew:0.1 ~load:0.005 ())
    (nominal_delay ~corner:slow ~slew:0.1 ~load:0.005 ());
  let sigma c =
    Delay_model.delay_sigma params inv ~mismatch:Mismatch.default ~drive:1 ~output:"Z"
      ~edge:Delay_model.Rise ~corner_factor:c ~slew:0.1 ~load:0.005
  in
  check_float "sigma scales" (slow *. sigma 1.0) (sigma slow)

let test_sigma_decreases_with_drive () =
  let sigma drive load =
    Delay_model.delay_sigma params inv ~mismatch:Mismatch.default ~drive ~output:"Z"
      ~edge:Delay_model.Rise ~corner_factor:1.0 ~slew:0.1 ~load
  in
  (* compare at proportional loads (each drive at half its max cap) *)
  Alcotest.(check bool) "Fig 4: high drive lower sigma" true
    (sigma 32 (0.5 *. Spec.max_capacitance inv ~drive:32)
    < sigma 1 (0.5 *. Spec.max_capacitance inv ~drive:1))

let test_sigma_monotone_in_operating_point =
  Helpers.qtest "sigma monotone"
    QCheck2.Gen.(pair (float_range 0.001 0.011) (float_range 0.01 0.9))
    (fun (load, slew) ->
      let sigma ~slew ~load =
        Delay_model.delay_sigma params inv ~mismatch:Mismatch.default ~drive:2 ~output:"Z"
          ~edge:Delay_model.Rise ~corner_factor:1.0 ~slew ~load
      in
      sigma ~slew ~load <= sigma ~slew:(slew +. 0.05) ~load:(load +. 0.001))

let test_stage_count_lowers_sigma () =
  (* multi-stage cells average mismatch: FA1 stage count > 1 *)
  Alcotest.(check bool) "fa stages" true (Delay_model.stage_count fa > 1);
  Alcotest.(check int) "inv single stage" 1 (Delay_model.stage_count inv)

let test_rise_fall_skew () =
  let rise =
    Delay_model.delay params inv ~drive:2 ~output:"Z" ~edge:Delay_model.Rise
      ~corner_factor:1.0 ~sample:zero ~slew:0.1 ~load:0.005
  in
  let fall =
    Delay_model.delay params inv ~drive:2 ~output:"Z" ~edge:Delay_model.Fall
      ~corner_factor:1.0 ~sample:zero ~slew:0.1 ~load:0.005
  in
  Alcotest.(check bool) "rise slower (positive skew)" true (rise > fall)

let test_transition_monotone () =
  let tr load =
    Delay_model.transition params inv ~drive:1 ~output:"Z" ~edge:Delay_model.Rise
      ~corner_factor:1.0 ~sample:zero ~slew:0.1 ~load
  in
  Alcotest.(check bool) "transition grows with load" true (tr 0.01 > tr 0.001)

let test_power_model () =
  let e slew drive = Delay_model.internal_energy params inv ~drive ~slew ~load:0.005 in
  Alcotest.(check bool) "energy grows with slew" true (e 0.5 1 > e 0.05 1);
  Alcotest.(check bool) "energy grows with drive" true (e 0.1 8 > e 0.1 1);
  Alcotest.(check bool) "leakage grows with drive" true
    (Delay_model.leakage inv ~drive:8 > Delay_model.leakage inv ~drive:1);
  Alcotest.(check bool) "complex cells leak more" true
    (Delay_model.leakage fa ~drive:1 > Delay_model.leakage inv ~drive:1)

(* --------------------------- Characterise --------------------------- *)

let nominal = Lazy.force Helpers.nominal_small

let test_characterize_structure () =
  let cell = Library.find nominal "ND2_1" in
  Alcotest.(check int) "two arcs" 2 (List.length (Cell.arcs cell));
  Alcotest.(check (list string)) "inputs" [ "A"; "B" ] (Cell.data_input_names cell);
  let arc = List.hd (Cell.arcs cell) in
  let rows, cols = Lut.dims arc.Arc.rise_delay in
  Alcotest.(check (pair int int)) "8x8 grids" (8, 8) (rows, cols)

let test_characterize_ff () =
  let ff = Library.find nominal "DFF_1" in
  Alcotest.(check bool) "sequential" true (Cell.is_sequential ff);
  Alcotest.(check bool) "clock pin" true (ff.Cell.clock_pin = Some "CK");
  (* the only arc launches from the clock *)
  (match Cell.arcs ff with
  | [ arc ] -> Alcotest.(check string) "arc from CK" "CK" arc.Arc.related_pin
  | _ -> Alcotest.fail "expected one arc");
  Alcotest.(check bool) "setup > 0" true (ff.Cell.setup_time > 0.0)

let test_characterize_tie () =
  let full = Characterize.library Characterize.default_config
      (List.filter_map Catalog.find [ "TIE0"; "TIE1" ]) in
  let tie = Library.find full "TIE0_1" in
  Alcotest.(check int) "no arcs" 0 (List.length (Cell.arcs tie))

let test_load_axis_scales_with_drive () =
  let config = Characterize.default_config in
  let axis1 = Characterize.load_axis config inv ~drive:1 in
  let axis8 = Characterize.load_axis config inv ~drive:8 in
  check_float "8x range" (8.0 *. axis1.(7)) axis8.(7);
  Alcotest.(check int) "8 points" 8 (Array.length axis1)

let test_characterize_power () =
  let cell = Library.find nominal "ND2_2" in
  let arc = List.hd (Cell.arcs cell) in
  Alcotest.(check bool) "power table present" true (Option.is_some arc.Arc.internal_power);
  Alcotest.(check bool) "energy positive" true (Arc.energy arc ~slew:0.1 ~load:0.005 > 0.0);
  Alcotest.(check bool) "cell leakage set" true (cell.Cell.leakage > 0.0)

let test_lut_values_match_model () =
  let cell = Library.find nominal "INV_2" in
  let arc = List.hd (Cell.arcs cell) in
  let slews = Lut.slews arc.Arc.rise_delay and loads = Lut.loads arc.Arc.rise_delay in
  let expected =
    Delay_model.delay params inv ~drive:2 ~output:"Z" ~edge:Delay_model.Rise
      ~corner_factor:(Corner.delay_factor Corner.typical)
      ~sample:zero ~slew:slews.(3) ~load:loads.(5)
  in
  check_float "table entry = model" expected (Lut.get arc.Arc.rise_delay 3 5)

(* ----------------------------- Sampler ------------------------------ *)

let specs = Helpers.small_specs

let test_sampler_deterministic () =
  let config = Characterize.default_config in
  let a = Sampler.sample_library config ~mismatch:Mismatch.default ~seed:9 ~index:3 ~specs () in
  let b = Sampler.sample_library config ~mismatch:Mismatch.default ~seed:9 ~index:3 ~specs () in
  let lut lib = (List.hd (Cell.arcs (Library.find lib "INV_1"))).Arc.rise_delay in
  Alcotest.(check bool) "identical" true (Lut.equal ~eps:0.0 (lut a) (lut b))

let test_sampler_index_sensitivity () =
  let config = Characterize.default_config in
  let a = Sampler.sample_library config ~mismatch:Mismatch.default ~seed:9 ~index:0 ~specs () in
  let b = Sampler.sample_library config ~mismatch:Mismatch.default ~seed:9 ~index:1 ~specs () in
  let lut lib = (List.hd (Cell.arcs (Library.find lib "INV_1"))).Arc.rise_delay in
  Alcotest.(check bool) "different" false (Lut.equal (lut a) (lut b))

let test_fold_matches_list () =
  let config = Characterize.default_config in
  let inv_only = List.filter_map Catalog.find [ "INV" ] in
  let names_from_fold =
    Sampler.fold_samples config ~mismatch:Mismatch.default ~seed:2 ~n:3 ~specs:inv_only
      ~init:[] ~f:(fun acc lib -> Library.name lib :: acc) ()
  in
  let names_from_list =
    List.map Library.name
      (Sampler.sample_libraries config ~mismatch:Mismatch.default ~seed:2 ~n:3 ~specs:inv_only ())
  in
  Alcotest.(check (list string)) "same stream" names_from_list (List.rev names_from_fold)

let () =
  Alcotest.run "charlib"
    [
      ( "delay_model",
        [
          test_delay_monotone_in_load;
          test_delay_monotone_in_slew;
          Alcotest.test_case "drive speedup" `Quick test_delay_drive_speedup;
          Alcotest.test_case "corner scales mean+sigma" `Quick test_corner_scales_delay_and_sigma;
          Alcotest.test_case "sigma vs drive (Fig 4)" `Quick test_sigma_decreases_with_drive;
          test_sigma_monotone_in_operating_point;
          Alcotest.test_case "stage counts" `Quick test_stage_count_lowers_sigma;
          Alcotest.test_case "rise/fall skew" `Quick test_rise_fall_skew;
          Alcotest.test_case "transition monotone" `Quick test_transition_monotone;
          Alcotest.test_case "power model" `Quick test_power_model;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "structure" `Quick test_characterize_structure;
          Alcotest.test_case "flip-flop" `Quick test_characterize_ff;
          Alcotest.test_case "tie cells" `Quick test_characterize_tie;
          Alcotest.test_case "load axis scaling" `Quick test_load_axis_scales_with_drive;
          Alcotest.test_case "power tables" `Quick test_characterize_power;
          Alcotest.test_case "table matches model" `Quick test_lut_values_match_model;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "deterministic" `Quick test_sampler_deterministic;
          Alcotest.test_case "index sensitivity" `Quick test_sampler_index_sensitivity;
          Alcotest.test_case "fold matches list" `Quick test_fold_matches_list;
        ] );
    ]
