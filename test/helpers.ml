(* Shared test helpers: reference evaluators for the generic IR and for
   mapped netlists, plus small builders used across suites. *)

module Ir = Vartune_rtl.Ir
module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library
module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs a +. Float.abs b)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Reference evaluation of the generic IR (combinational only).        *)
(* ------------------------------------------------------------------ *)

(* Evaluates every node given input values; flip-flops evaluate to their
   provided state (default false). *)
let eval_ir graph ~inputs ?(ff_state = fun _ -> false) () =
  let n = Ir.node_count graph in
  let values = Array.make n false in
  for id = 0 to n - 1 do
    let v node_id = values.(node_id) in
    let fanins = Ir.fanins graph id in
    values.(id) <-
      (match Ir.op_of graph id with
      | Ir.Input name -> (
        match List.assoc_opt name inputs with
        | Some b -> b
        | None -> false)
      | Ir.Const0 -> false
      | Ir.Const1 -> true
      | Ir.Not -> not (v fanins.(0))
      | Ir.Buf -> v fanins.(0)
      | Ir.And2 -> v fanins.(0) && v fanins.(1)
      | Ir.Or2 -> v fanins.(0) || v fanins.(1)
      | Ir.Xor2 -> v fanins.(0) <> v fanins.(1)
      | Ir.Xnor2 -> v fanins.(0) = v fanins.(1)
      | Ir.Mux2 -> if v fanins.(2) then v fanins.(1) else v fanins.(0)
      | Ir.Xor3 -> v fanins.(0) <> v fanins.(1) <> v fanins.(2)
      | Ir.Maj3 ->
        let a = v fanins.(0) and b = v fanins.(1) and c = v fanins.(2) in
        (a && b) || (a && c) || (b && c)
      | Ir.Ff name -> ff_state name)
  done;
  values

let eval_ir_outputs graph ~inputs =
  let values = eval_ir graph ~inputs () in
  List.map (fun (name, id) -> (name, values.(id))) (Ir.outputs graph)

(* word <-> int conversions for Word-level tests; bit 0 is the LSB *)
let int_of_bits bits =
  let acc = ref 0 in
  Array.iteri (fun i b -> if b then acc := !acc lor (1 lsl i)) bits;
  !acc

let bits_of_int ~width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let word_inputs prefix bits =
  Array.to_list (Array.mapi (fun i b -> (Printf.sprintf "%s[%d]" prefix i, b)) bits)

let eval_word values word = int_of_bits (Array.map (fun id -> values.(id)) word)

(* ------------------------------------------------------------------ *)
(* Reference evaluation of a mapped netlist (combinational only).       *)
(* ------------------------------------------------------------------ *)

(* Boolean function of each catalog family over its input pins. *)
let family_function family (pin : string -> bool) =
  let a () = pin "A" and b () = pin "B" and c () = pin "C" and d () = pin "D" in
  match family with
  | "INV" -> not (a ())
  | "BUF" | "DLY1" -> a ()
  | "ND2" -> not (a () && b ())
  | "ND3" -> not (a () && b () && c ())
  | "ND4" -> not (a () && b () && c () && d ())
  | "NR2" -> not (a () || b ())
  | "NR3" -> not (a () || b () || c ())
  | "NR4" -> not (a () || b () || c () || d ())
  | "AN2" -> a () && b ()
  | "AN3" -> a () && b () && c ()
  | "AN4" -> a () && b () && c () && d ()
  | "OR2" -> a () || b ()
  | "OR3" -> a () || b () || c ()
  | "OR4" -> a () || b () || c () || d ()
  | "ND2B" -> a () || not (b ())  (* !(!A.B) *)
  | "NR2B" -> a () && not (b ())  (* !(!A+B) *)
  | "ND3B" -> not (not (a ()) && b () && c ())
  | "NR3B" -> not (not (a ()) || b () || c ())
  | "ND4B" -> not (not (a ()) && b () && c () && d ())
  | "NR4B" -> not (not (a ()) || b () || c () || d ())
  | "XO2" -> a () <> b ()
  | "XN2" -> a () = b ()
  | "XO3" -> a () <> b () <> c ()
  | "XN3" -> not (a () <> b () <> c ())
  | "MU2" -> if pin "S" then b () else a ()
  | "MU2I" -> not (if pin "S" then b () else a ())
  | "MAJ3" ->
    let x = a () and y = b () and z = pin "CI" in
    (x && y) || (x && z) || (y && z)
  | "TIE0" -> false
  | "TIE1" -> true
  | other -> failwith ("family_function: unsupported family " ^ other)

(* FA1 has two outputs, handled specially. *)
let eval_netlist nl ~input_values =
  let order = Check.topological_order nl in
  let net_values = Hashtbl.create 256 in
  List.iteri
    (fun i nid -> Hashtbl.replace net_values nid (List.nth input_values i))
    (Netlist.primary_inputs nl);
  let net nid = Option.value (Hashtbl.find_opt net_values nid) ~default:false in
  Array.iter
    (fun inst_id ->
      let inst = Netlist.instance nl inst_id in
      let family = inst.Netlist.cell.Cell.family in
      if Cell.is_sequential inst.Netlist.cell then
        List.iter (fun (_, nid) -> Hashtbl.replace net_values nid false) inst.outputs
      else if family = "FA1" then begin
        let pin p = net (List.assoc p inst.Netlist.inputs) in
        let x = pin "A" and y = pin "B" and z = pin "CI" in
        List.iter
          (fun (pin_name, nid) ->
            let v =
              match pin_name with
              | "S" -> x <> y <> z
              | "CO" -> (x && y) || (x && z) || (y && z)
              | other -> failwith ("eval_netlist: FA1 pin " ^ other)
            in
            Hashtbl.replace net_values nid v)
          inst.outputs
      end
      else begin
        let pin p = net (List.assoc p inst.Netlist.inputs) in
        match inst.outputs with
        | [ (_, nid) ] -> Hashtbl.replace net_values nid (family_function family pin)
        | [] -> ()
        | _ -> failwith ("eval_netlist: unexpected multi-output " ^ family)
      end)
    order;
  List.map net (Netlist.primary_outputs nl)

(* ------------------------------------------------------------------ *)
(* Small shared fixtures                                                *)
(* ------------------------------------------------------------------ *)

(* every family the mapper can emit, so mapped tests never miss a cell *)
let small_specs =
  List.filter_map Catalog.find
    [ "INV"; "BUF"; "ND2"; "ND3"; "ND4"; "NR2"; "NR3"; "NR4"; "ND2B"; "NR2B"; "AN2";
      "AN3"; "AN4"; "OR2"; "OR3"; "OR4"; "XO2"; "XN2"; "XO3"; "MU2"; "MU2I"; "FA1";
      "MAJ3"; "DFF"; "TIE0"; "TIE1" ]

(* lazily-built small statistical library shared by suites *)
let small_statlib =
  lazy
    (Statistical.build Characterize.default_config ~mismatch:Mismatch.default ~seed:5
       ~n:12 ~specs:small_specs ())

let nominal_small = lazy (Characterize.library Characterize.default_config small_specs)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0
