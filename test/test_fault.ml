(* Tests for Vartune_fault.Fault and the failure paths it drives: the
   deterministic schedule engine, store retry/degradation, pool crash
   recovery and stall detection, CLI error classification, and
   end-to-end fault sweeps of the experiment flow at pool sizes 1/2/7
   asserting bit-identical completion or clean typed failure with an
   uncorrupted store. *)

module Fault = Vartune_fault.Fault
module Pool = Vartune_util.Pool
module Store = Vartune_store.Store
module Key = Vartune_store.Store.Key
module Codec = Vartune_store.Codec
module Experiment = Vartune_flow.Experiment
module Synthesis = Vartune_synth.Synthesis
module Design_sigma = Vartune_stats.Design_sigma
module Dist = Vartune_stats.Dist
module Tuning_method = Vartune_tuning.Tuning_method
module Mcu = Vartune_rtl.Microcontroller

let temp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vartune_test_fault_%d" (Unix.getpid ()))

let with_store name f =
  let t = Store.open_dir (Filename.concat temp_root name) in
  Store.wipe t;
  Fun.protect ~finally:(fun () -> Store.wipe t) (fun () -> f t)

let all_points =
  [
    Fault.Read; Fault.Write; Fault.Rename; Fault.Lock; Fault.Fsync;
    Fault.Worker_crash; Fault.Enospc; Fault.Partial_write; Fault.Delay;
  ]

(* ------------------------------------------------------------------ *)
(* Schedule engine                                                     *)
(* ------------------------------------------------------------------ *)

let decisions spec n =
  Fault.with_spec spec (fun () ->
      List.init n (fun _ -> Fault.fires Fault.Write ~site:"test"))

let test_determinism () =
  let a = decisions "write=0.5:42" 200 in
  let b = decisions "write=0.5:42" 200 in
  Alcotest.(check (list bool)) "same seed, same decisions" a b;
  let c = decisions "write=0.5:43" 200 in
  Alcotest.(check bool) "different seed, different decisions" true (a <> c);
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "rate 0.5 fires a plausible fraction" true
    (fired > 50 && fired < 150)

let test_rate_extremes () =
  Fault.with_spec "read=1.0,write=0.0:9" (fun () ->
      for _ = 1 to 50 do
        Alcotest.(check bool) "read always fires" true
          (Fault.fires Fault.Read ~site:"test");
        Alcotest.(check bool) "write never fires" false
          (Fault.fires Fault.Write ~site:"test")
      done;
      Alcotest.(check int) "injected read" 50 (Fault.injected Fault.Read);
      Alcotest.(check int) "injected write" 0 (Fault.injected Fault.Write);
      Alcotest.(check int) "occurrences write" 50 (Fault.occurrences Fault.Write);
      Alcotest.(check int) "total" 50 (Fault.total_injected ()))

let test_nth_occurrence () =
  Fault.with_spec "rename=#3:0" (fun () ->
      let hits = List.init 10 (fun _ -> Fault.fires Fault.Rename ~site:"test") in
      Alcotest.(check (list bool)) "only the 3rd occurrence"
        [ false; false; true; false; false; false; false; false; false; false ]
        hits;
      Alcotest.(check int) "exactly one injection" 1 (Fault.injected Fault.Rename))

let test_check_raises () =
  Fault.with_spec "fsync=#1:0" (fun () ->
      (match Fault.check Fault.Fsync ~site:"unit.check" with
      | () -> Alcotest.fail "expected Injected"
      | exception Fault.Injected { point; site; seq } ->
        Alcotest.(check string) "site" "unit.check" site;
        Alcotest.(check int) "seq" 1 seq;
        Alcotest.(check bool) "point" true (point = Fault.Fsync));
      (* points the schedule does not mention never fire *)
      Fault.check Fault.Read ~site:"unit.check")

let test_parse_errors () =
  Fault.clear ();
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Error _ -> ()
      | Ok () ->
        Fault.clear ();
        Alcotest.failf "spec %S should be rejected" spec)
    [
      ""; "bogus=0.5"; "write=1.5"; "write=-0.1"; "write=#0"; "write=#x"; "write";
      "write=0.5:notaseed";
    ];
  Alcotest.(check bool) "bad specs leave injection inactive" false (Fault.active ());
  (* a bad spec must not clobber an active schedule *)
  Fault.with_spec "write=1.0:1" (fun () ->
      (match Fault.configure "bogus=1" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "bogus spec parsed");
      Alcotest.(check bool) "previous schedule still active" true
        (Fault.fires Fault.Write ~site:"test"))

let test_point_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (Fault.point_to_string p) true
        (Fault.point_of_string (Fault.point_to_string p) = Some p))
    all_points;
  Alcotest.(check bool) "unknown name" true (Fault.point_of_string "nope" = None)

let test_with_spec_restores () =
  Fault.clear ();
  (match Fault.with_spec "read=1.0:0" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check bool) "cleared after exception" false (Fault.active ());
  (match Fault.with_spec "bogus=1" (fun () -> ()) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let minor_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_probe_allocates_nothing () =
  Fault.clear ();
  ignore (Fault.fires Fault.Read ~site:"warmup");
  let baseline = minor_delta (fun () -> for _ = 1 to 10_000 do () done) in
  let probes =
    minor_delta (fun () ->
        for _ = 1 to 10_000 do
          Fault.check Fault.Read ~site:"probe"
        done)
  in
  Alcotest.(check (float 0.0)) "no allocation per disabled probe" baseline probes

(* ------------------------------------------------------------------ *)
(* Pool crash recovery and stall detection                             *)
(* ------------------------------------------------------------------ *)

let test_worker_crash_restart () =
  let pool = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 8 Fun.id in
      let results =
        Fault.with_spec "worker_crash=#1:0" (fun () ->
            Pool.map pool
              (fun x ->
                Unix.sleepf 0.02;
                x * x)
              xs)
      in
      Alcotest.(check (list int)) "results intact after a crash"
        (List.map (fun x -> x * x) xs)
        results;
      Alcotest.(check int) "one restart" 1 (Pool.restarts pool))

let test_worker_crash_storm () =
  let pool = Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 24 Fun.id in
      let outcome =
        Fault.with_spec "worker_crash=1.0:13" (fun () ->
            match Pool.map pool (fun x -> Unix.sleepf 0.002; x + 1) xs with
            | ys -> Ok ys
            | exception Pool.Worker_failure _ -> Error ())
      in
      (match outcome with
      | Ok ys ->
        Alcotest.(check (list int)) "completed despite crashes" (List.map succ xs) ys
      | Error () -> (* clean typed failure is the other legal outcome *) ());
      Alcotest.(check bool) "restarts recorded" true (Pool.restarts pool > 0);
      Alcotest.(check (list int)) "pool usable afterwards" [ 1; 2; 3 ]
        (Pool.map pool Fun.id [ 1; 2; 3 ]))

let test_stall_watchdog () =
  let pool = Pool.create ~jobs:2 ~stall_timeout_s:0.3 () in
  let release = Atomic.make false in
  let caller = Domain.self () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Pool.shutdown pool)
    (fun () ->
      (* tasks landing on worker domains wedge until released; the
         caller's own share completes, so only the watchdog can end the
         wait *)
      let task _ =
        Unix.sleepf 0.02;
        if Domain.self () <> caller then
          while not (Atomic.get release) do
            Unix.sleepf 0.005
          done
      in
      match Pool.map pool task (List.init 8 Fun.id) with
      | _ -> Alcotest.fail "expected Worker_failure from the stall watchdog"
      | exception Pool.Worker_failure _ -> ())

(* ------------------------------------------------------------------ *)
(* Store hardening                                                     *)
(* ------------------------------------------------------------------ *)

let payload b =
  Codec.w_string b "payload";
  Codec.w_float b 1.5

let decode_payload r =
  let s = Codec.r_string r in
  let f = Codec.r_float r in
  (s, f)

let expect_hit what t key =
  match Store.load t key decode_payload with
  | Some ("payload", 1.5) -> ()
  | _ -> Alcotest.fail (what ^ ": expected a clean hit")

let test_store_retries_transients () =
  with_store "retry" (fun t ->
      let key = Key.(int (v "fault_retry") "x" 1) in
      Fault.with_spec "write=#1,read=#1:0" (fun () ->
          Store.save t key payload;
          expect_hit "save/load under faults" t key);
      expect_hit "fault-free reload" t key;
      let stats = Store.stats t in
      Alcotest.(check bool) "retries recorded" true (stats.Store.retries >= 2);
      Alcotest.(check int) "no exhausted failures" 0 stats.Store.errors;
      Alcotest.(check bool) "not degraded" false stats.Store.degraded)

let test_store_enospc_degrades () =
  with_store "enospc" (fun t ->
      let key = Key.(int (v "fault_enospc") "x" 2) in
      Fault.with_spec "enospc=1.0:0" (fun () ->
          Store.save t key payload;
          Alcotest.(check bool) "degraded after ENOSPC" true (Store.degraded t);
          (match Store.load_result t key decode_payload with
          | Error Store.Disabled -> ()
          | _ -> Alcotest.fail "expected Error Disabled");
          (* a degraded handle swallows saves and misses loads, never
             raises *)
          Store.save t key payload;
          Alcotest.(check bool) "load misses" true
            (Store.load t key decode_payload = None));
      Alcotest.(check int) "nothing landed" 0 (Store.entry_count t);
      Alcotest.(check bool) "degraded stat" true (Store.stats t).Store.degraded;
      (* a fresh handle on the same directory is healthy *)
      let fresh = Store.open_dir (Store.dir t) in
      Store.save fresh key payload;
      expect_hit "fresh handle works" fresh key)

let test_store_save_result_io_error () =
  with_store "exhaust" (fun t ->
      let key = Key.(int (v "fault_exhaust") "x" 3) in
      Fault.with_spec "rename=1.0:0" (fun () ->
          match Store.save_result t key payload with
          | Error (Store.Io _) -> ()
          | Ok () -> Alcotest.fail "expected Error Io"
          | Error e -> Alcotest.failf "unexpected error %s" (Store.error_to_string e));
      Alcotest.(check int) "no entry landed" 0 (Store.entry_count t);
      Alcotest.(check bool) "lock released" false
        (Sys.file_exists (Store.entry_path t key ^ ".lock"));
      (* plain save swallows the same failure, then recovers *)
      Fault.with_spec "rename=1.0:0" (fun () -> Store.save t key payload);
      Store.save t key payload;
      expect_hit "store recovers" t key)

let test_store_partial_write_evicted () =
  with_store "partial" (fun t ->
      let key = Key.(int (v "fault_partial") "x" 4) in
      Fault.with_spec "partial_write=1.0:0" (fun () -> Store.save t key payload);
      (* the truncated entry landed silently; the reader detects and
         evicts it rather than serving corrupt bytes *)
      Alcotest.(check int) "truncated entry landed" 1 (Store.entry_count t);
      Alcotest.(check bool) "truncated -> miss" true
        (Store.load t key decode_payload = None);
      Alcotest.(check bool) "evicted" false (Sys.file_exists (Store.entry_path t key));
      Alcotest.(check int) "eviction recorded" 1 (Store.stats t).Store.evictions;
      Store.save t key payload;
      expect_hit "recompute and land" t key)

let test_store_degrades_after_repeated_failures () =
  with_store "degrade" (fun t ->
      Fault.with_spec "write=1.0:0" (fun () ->
          for i = 1 to Store.retry_attempts * 10 do
            Store.save t Key.(int (v "fault_degrade") "i" i) payload
          done;
          Alcotest.(check bool) "degraded after repeated failures" true
            (Store.degraded t));
      Alcotest.(check int) "nothing landed" 0 (Store.entry_count t))

(* ------------------------------------------------------------------ *)
(* CLI error classification                                            *)
(* ------------------------------------------------------------------ *)

let test_classify_exn () =
  let check name expected exn =
    match Experiment.classify_exn exn with
    | Some f -> Alcotest.(check int) name expected (Experiment.exit_code f)
    | None -> Alcotest.fail (name ^ ": expected a classification")
  in
  check "lexer error" 65 (Vartune_liberty.Lexer.Error { line = 3; message = "bad" });
  check "sys error" 74 (Sys_error "disk gone");
  check "unix error" 74 (Unix.Unix_error (Unix.EIO, "read", "f"));
  check "worker failure" 75 (Pool.Worker_failure "stalled");
  check "escaped injection" 70
    (Fault.Injected { point = Fault.Read; site = "x"; seq = 1 });
  Alcotest.(check bool) "unrelated exceptions stay unclassified" true
    (Experiment.classify_exn (Failure "x") = None)

(* ------------------------------------------------------------------ *)
(* End-to-end fault schedule sweep                                     *)
(* ------------------------------------------------------------------ *)

(* smaller than test_store's tiny fixture: this suite re-runs the whole
   flow once per (schedule, pool-size) pair, so every run must be cheap *)
let tiny_config =
  { Mcu.xlen = 32; reg_count = 4; mul_width = 2; irq_lines = 2; bus_slaves = 2 }

let tuning =
  {
    Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
    criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02;
  }

let bits = Int64.bits_of_float

let run_scalars (r : Experiment.run) =
  ( r.Experiment.label,
    bits r.period,
    bits r.result.Synthesis.worst_slack,
    bits r.result.Synthesis.area,
    r.result.Synthesis.feasible,
    r.result.Synthesis.instances,
    List.length r.paths,
    bits r.design_sigma.Design_sigma.dist.Dist.mean,
    bits r.design_sigma.Design_sigma.dist.Dist.sigma,
    bits r.design_sigma.Design_sigma.worst_path_3sigma )

let observe ?store () =
  let setup =
    Experiment.prepare_request ~mcu_config:tiny_config ~specs:Helpers.small_specs
      ?store
      (Vartune_flow.Request.Min_period { seed = 7; samples = 2 })
  in
  let period = setup.Experiment.min_period *. 1.5 in
  let base = Experiment.baseline setup ~period in
  let points = Experiment.sweep setup ~period ~tuning ~parameters:[ 0.01 ] in
  ( bits setup.Experiment.min_period,
    run_scalars base,
    List.map
      (fun (p : Experiment.sweep_point) ->
        (bits p.parameter, run_scalars p.run, bits p.reduction, bits p.area_delta))
      points )

(* the fault-free, store-less run every schedule is measured against *)
let reference = lazy (observe ())

type expect = Must_complete | May_fail

(* Runs the whole flow under [spec] against a fresh store.  The run must
   either complete bit-identically to the fault-free reference or fail
   with an error the CLI maps to a typed exit code; either way, a
   fault-free warm run over the surviving store must reproduce the
   reference, proving no corrupt artifact survived. *)
let sweep_case ~jobs ~spec ~expect ~name ?(warm = true) () =
  Pool.set_default_jobs jobs;
  with_store name (fun t ->
      let outcome =
        match Fault.with_spec spec (fun () -> observe ~store:t ()) with
        | obs -> Ok obs
        | exception exn -> Error exn
      in
      (match (outcome, expect) with
      | Ok obs, _ ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d %s bit-identical" jobs spec)
          true
          (obs = Lazy.force reference)
      | Error exn, May_fail ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d %s failed cleanly (%s)" jobs spec
             (Printexc.to_string exn))
          true
          (Experiment.classify_exn exn <> None)
      | Error exn, Must_complete ->
        Alcotest.failf "jobs=%d %s: expected completion, got %s" jobs spec
          (Printexc.to_string exn));
      if warm then begin
        let fresh = Store.open_dir (Store.dir t) in
        let warm_obs = observe ~store:fresh () in
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d %s warm store intact" jobs spec)
          true
          (warm_obs = Lazy.force reference)
      end)

let test_schedule_sweep_at jobs () =
  sweep_case ~jobs ~spec:"write=0.6,fsync=0.4,rename=0.4,lock=0.5:7"
    ~expect:Must_complete
    ~name:(Printf.sprintf "e2e_mixed_%d" jobs)
    ();
  sweep_case ~jobs ~spec:"enospc=1.0:3" ~expect:Must_complete
    ~name:(Printf.sprintf "e2e_enospc_%d" jobs)
    ();
  sweep_case ~jobs ~spec:"worker_crash=0.4:9" ~expect:May_fail
    ~name:(Printf.sprintf "e2e_crash_%d" jobs)
    ~warm:false ();
  Pool.set_default_jobs 1

let test_schedule_sweep_deep () =
  sweep_case ~jobs:2 ~spec:"read=0.7,lock=0.5:11" ~expect:Must_complete
    ~name:"e2e_read" ();
  sweep_case ~jobs:2 ~spec:"partial_write=0.8:5" ~expect:Must_complete
    ~name:"e2e_partial" ();
  sweep_case ~jobs:2 ~spec:"write=#1,read=#2:0" ~expect:Must_complete ~name:"e2e_nth"
    ();
  sweep_case ~jobs:2 ~spec:"worker_crash=1.0:13" ~expect:May_fail
    ~name:"e2e_crash_storm" ~warm:false ();
  Pool.set_default_jobs 1

(* -------------------- spec print/parse round-trip ------------------ *)

(* Generator of structured schedules in canonical form: distinct points
   (spec order = the de-duplicated order parse_spec returns), rates kept
   exactly representable through %.17g (any float in [0,1] is), Nth
   indices >= 1, at least one item. *)
let spec_gen =
  let open QCheck.Gen in
  let trigger =
    oneof
      [
        map (fun r -> Fault.Rate r) (float_bound_inclusive 1.0);
        map (fun n -> Fault.Nth n) (int_range 1 1_000_000);
      ]
  in
  let* points = shuffle_l all_points in
  let* count = int_range 1 (List.length points) in
  let points = List.filteri (fun i _ -> i < count) points in
  let* triggers = flatten_l (List.map (fun _ -> trigger) points) in
  let* seed = map Int64.of_int int in
  return (List.combine points triggers, seed)

let spec_print s = Fault.print_spec s

let test_spec_round_trip =
  QCheck.Test.make ~count:500 ~name:"parse_spec inverts print_spec"
    (QCheck.make ~print:spec_print spec_gen)
    (fun spec ->
      match Fault.parse_spec (Fault.print_spec spec) with
      | Ok reparsed -> reparsed = spec
      | Error msg -> QCheck.Test.fail_reportf "round-trip failed to parse: %s" msg)

let () =
  Alcotest.run "fault"
    [
      ( "schedule",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          QCheck_alcotest.to_alcotest test_spec_round_trip;
          Alcotest.test_case "rate extremes" `Quick test_rate_extremes;
          Alcotest.test_case "nth occurrence" `Quick test_nth_occurrence;
          Alcotest.test_case "check raises" `Quick test_check_raises;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "point names roundtrip" `Quick test_point_string_roundtrip;
          Alcotest.test_case "with_spec restores" `Quick test_with_spec_restores;
          Alcotest.test_case "disabled probes allocate nothing" `Quick
            test_disabled_probe_allocates_nothing;
        ] );
      ( "pool",
        [
          Alcotest.test_case "crash restarts worker" `Quick test_worker_crash_restart;
          Alcotest.test_case "crash storm" `Quick test_worker_crash_storm;
          Alcotest.test_case "stall watchdog" `Quick test_stall_watchdog;
        ] );
      ( "store",
        [
          Alcotest.test_case "transients retried" `Quick test_store_retries_transients;
          Alcotest.test_case "enospc degrades" `Quick test_store_enospc_degrades;
          Alcotest.test_case "exhausted retries surface" `Quick
            test_store_save_result_io_error;
          Alcotest.test_case "partial write evicted" `Quick
            test_store_partial_write_evicted;
          Alcotest.test_case "repeated failures degrade" `Quick
            test_store_degrades_after_repeated_failures;
        ] );
      ( "cli", [ Alcotest.test_case "classify_exn" `Quick test_classify_exn ] );
      ( "e2e",
        [
          Alcotest.test_case "schedules at jobs=1" `Slow (test_schedule_sweep_at 1);
          Alcotest.test_case "schedules at jobs=2" `Slow (test_schedule_sweep_at 2);
          Alcotest.test_case "schedules at jobs=7" `Slow (test_schedule_sweep_at 7);
          Alcotest.test_case "deep schedules" `Slow test_schedule_sweep_deep;
        ] );
    ]
