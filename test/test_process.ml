(* Tests for Vartune_process: Corner, Mismatch, Variation. *)

module Corner = Vartune_process.Corner
module Mismatch = Vartune_process.Mismatch
module Variation = Vartune_process.Variation
module Rng = Vartune_util.Rng
module Stat = Vartune_util.Stat

let check_float = Helpers.check_float

let test_corner_ordering () =
  let f = Corner.delay_factor Corner.fast in
  let t = Corner.delay_factor Corner.typical in
  let s = Corner.delay_factor Corner.slow in
  Alcotest.(check bool) "fast < typical" true (f < t);
  Alcotest.(check bool) "typical < slow" true (t < s);
  check_float "typical is 1" 1.0 t

let test_corner_spread () =
  (* a 40 nm-class spread: fast ~0.75-0.9x, slow ~1.15-1.45x *)
  let f = Corner.delay_factor Corner.fast in
  let s = Corner.delay_factor Corner.slow in
  Alcotest.(check bool) "fast plausible" true (f > 0.7 && f < 0.92);
  Alcotest.(check bool) "slow plausible" true (s > 1.1 && s < 1.5)

let test_corner_names () =
  Alcotest.(check string) "typical tag" "TT1P1V25C" (Corner.name Corner.typical);
  Alcotest.(check string) "fast speed" "FF" (Corner.speed_to_string Corner.Fast);
  Alcotest.(check int) "all corners" 3 (List.length Corner.all)

let test_pelgrom_scaling () =
  let m = Mismatch.default in
  let s1 = Mismatch.resistance_sigma m ~drive:1 () in
  let s4 = Mismatch.resistance_sigma m ~drive:4 () in
  let s16 = Mismatch.resistance_sigma m ~drive:16 () in
  check_float "1/sqrt(4)" (s1 /. 2.0) s4;
  check_float "1/sqrt(16)" (s1 /. 4.0) s16

let test_stage_averaging () =
  let m = Mismatch.default in
  let one = Mismatch.intrinsic_sigma m ~stages:1 ~drive:1 () in
  let four = Mismatch.intrinsic_sigma m ~stages:4 ~drive:1 () in
  check_float "1/sqrt(stages)" (one /. 2.0) four;
  (* stage and drive scaling compose *)
  check_float "composed" (one /. 4.0) (Mismatch.intrinsic_sigma m ~stages:4 ~drive:4 ())

let test_mismatch_draw_moments () =
  let m = Mismatch.default in
  let rng = Rng.create 31 in
  let draws = Array.init 8000 (fun _ -> (Mismatch.draw m rng ~drive:2 ()).Mismatch.d_resistance) in
  let expected = Mismatch.resistance_sigma m ~drive:2 () in
  Alcotest.(check bool) "zero mean" true (Float.abs (Stat.mean draws) < 0.01);
  Alcotest.(check bool) "sigma matches model" true
    (Float.abs (Stat.stddev draws -. expected) < 0.01)

let test_zero_sample () =
  check_float "zero dR" 0.0 Mismatch.zero_sample.Mismatch.d_resistance;
  check_float "zero dI" 0.0 Mismatch.zero_sample.Mismatch.d_intrinsic

let test_global_variation () =
  let rng = Rng.create 77 in
  let v = Variation.default in
  let draws = Array.init 8000 (fun _ -> Variation.draw_factor v rng) in
  Alcotest.(check bool) "centred on 1" true (Float.abs (Stat.mean draws -. 1.0) < 0.01);
  Alcotest.(check bool) "sigma matches" true
    (Float.abs (Stat.stddev draws -. v.Variation.sigma_global) < 0.01)

let () =
  Alcotest.run "process"
    [
      ( "corner",
        [
          Alcotest.test_case "ordering" `Quick test_corner_ordering;
          Alcotest.test_case "spread" `Quick test_corner_spread;
          Alcotest.test_case "names" `Quick test_corner_names;
        ] );
      ( "mismatch",
        [
          Alcotest.test_case "pelgrom scaling" `Quick test_pelgrom_scaling;
          Alcotest.test_case "stage averaging" `Quick test_stage_averaging;
          Alcotest.test_case "draw moments" `Slow test_mismatch_draw_moments;
          Alcotest.test_case "zero sample" `Quick test_zero_sample;
        ] );
      ("variation", [ Alcotest.test_case "global factor" `Slow test_global_variation ]);
    ]
