(* Tests for Vartune_obs: span recording and nesting across pool sizes,
   Chrome-trace export validity, exact counter accounting against known
   workloads, and the bit-identity guarantee that enabling telemetry
   never changes pipeline output. *)

module Obs = Vartune_obs.Obs
module Json = Vartune_obs.Json
module Trace_check = Vartune_obs.Trace_check
module Pool = Vartune_util.Pool
module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Sampler = Vartune_charlib.Sampler
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc
module Lut = Vartune_liberty.Lut
module Printer = Vartune_liberty.Printer
module Path_mc = Vartune_monte.Path_mc
module Netlist = Vartune_netlist.Netlist
module Timing = Vartune_sta.Timing
module Path = Vartune_sta.Path

(* Every test leaves telemetry disabled and empty, whatever happens. *)
let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let small_specs = List.filter_map Catalog.find [ "INV"; "ND2" ]

let build_small ?pool () =
  Statistical.build ?pool Characterize.default_config ~mismatch:Mismatch.default ~seed:11
    ~n:6 ~specs:small_specs ()

let ok_stats = function
  | Ok (s : Trace_check.stats) -> s
  | Error e -> Alcotest.failf "trace rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_transparent () =
  Obs.reset ();
  Obs.set_enabled false;
  let r = Obs.span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "span returns f ()" 42 r;
  Obs.incr "ghost.counter";
  Obs.observe "ghost.histo" 1.0;
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.events ()));
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value "ghost.counter");
  (* registered counter handles stay visible at 0, but nothing may have
     accumulated and no gauge/histogram may exist *)
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Count 0 -> ()
      | Obs.Count n -> Alcotest.failf "counter %s accumulated %d while disabled" name n
      | Obs.Value _ | Obs.Stats _ ->
        Alcotest.failf "gauge/histogram %s recorded while disabled" name)
    (Obs.metrics ())

let test_span_records_on_exception () =
  with_obs (fun () ->
      (try Obs.span "exploding" (fun () -> failwith "boom") with Failure _ -> ());
      match Obs.events () with
      | [ e ] -> Alcotest.(check string) "event name" "exploding" e.Obs.name
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_span_nesting_under_pool_sizes () =
  List.iter
    (fun jobs ->
      with_obs (fun () ->
          with_pool jobs (fun pool ->
              let out =
                Pool.map pool
                  (fun i ->
                    Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> i * i)))
                  (List.init 20 Fun.id)
              in
              Alcotest.(check (list int))
                (Printf.sprintf "results at jobs=%d" jobs)
                (List.init 20 (fun i -> i * i))
                out);
          let stats = ok_stats (Trace_check.validate_string (Obs.trace_json ())) in
          Alcotest.(check bool)
            (Printf.sprintf "outer+inner spans at jobs=%d" jobs)
            true
            (List.mem "outer" stats.Trace_check.names
            && List.mem "inner" stats.Trace_check.names
            && List.mem "pool.map" stats.Trace_check.names);
          (* 20 outer + 20 inner + pool.map (+ pool.task when parallel) *)
          Alcotest.(check bool)
            (Printf.sprintf "span count at jobs=%d" jobs)
            true
            (stats.Trace_check.spans >= 41);
          if jobs = 1 then
            Alcotest.(check bool)
              "no pool.task spans on the serial path" false
              (List.mem "pool.task" stats.Trace_check.names)
          else
            Alcotest.(check int)
              (Printf.sprintf "every task wrapped at jobs=%d" jobs)
              20
              (Obs.counter_value "pool.tasks_run")))
    [ 1; 2; 7 ]

let test_pipeline_trace_is_valid () =
  with_obs (fun () ->
      with_pool 3 (fun pool -> ignore (build_small ~pool ()));
      let stats = ok_stats (Trace_check.validate_string (Obs.trace_json ())) in
      List.iter
        (fun required ->
          Alcotest.(check bool)
            (Printf.sprintf "trace contains %s" required)
            true
            (List.mem required stats.Trace_check.names))
        [ "statlib.build"; "statlib.chunk"; "statlib.merge"; "charlib.library"; "pool.map" ];
      Alcotest.(check bool) "at least one domain track" true (stats.Trace_check.domains >= 1))

(* ------------------------------------------------------------------ *)
(* Counters vs known workloads                                         *)
(* ------------------------------------------------------------------ *)

let entries_per_library lib =
  List.fold_left
    (fun acc cell ->
      List.fold_left
        (fun acc (a : Arc.t) ->
          let count lut =
            let r, c = Lut.dims lut in
            r * c
          in
          acc + count a.Arc.rise_delay + count a.Arc.fall_delay
          + count a.Arc.rise_transition + count a.Arc.fall_transition)
        acc (Cell.arcs cell))
    0 (Library.cells lib)

let test_statlib_counters_exact () =
  let one_sample =
    Sampler.sample_library Characterize.default_config ~mismatch:Mismatch.default ~seed:11
      ~index:0 ~specs:small_specs ()
  in
  with_obs (fun () ->
      with_pool 2 (fun pool -> ignore (build_small ~pool ()));
      Alcotest.(check int) "samples accumulated" 6 (Obs.counter_value "statlib.samples");
      Alcotest.(check int)
        "cells characterised" (6 * Library.size one_sample)
        (Obs.counter_value "charlib.cells");
      Alcotest.(check int)
        "LUT entries merged"
        (6 * entries_per_library one_sample)
        (Obs.counter_value "statlib.lut_entries_merged"))

(* an inverter-chain path extracted from a real timing run, as in
   test_monte, cheap enough for exact counter accounting *)
let chain_path depth =
  let lib = Lazy.force Helpers.small_statlib in
  let inv = Library.find lib "INV_2" in
  let dff = Library.find lib "DFF_1" in
  let nl = Netlist.create ~name:"obs_mc" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let a = Netlist.add_net nl () in
  Netlist.mark_primary_input nl a;
  let last =
    List.fold_left
      (fun prev i ->
        let out = Netlist.add_net nl () in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Printf.sprintf "i%d" i)
             ~cell:inv ~inputs:[ ("A", prev) ] ~outputs:[ ("Z", out) ]);
        out)
      a
      (List.init depth Fun.id)
  in
  let q = Netlist.add_net nl () in
  ignore
    (Netlist.add_instance nl ~inst_name:"ff" ~cell:dff
       ~inputs:[ ("D", last); ("CK", clk) ]
       ~outputs:[ ("Q", q) ]);
  let timing = Timing.run (Timing.default_config ~clock_period:5.0) nl in
  List.hd (Path.worst_per_endpoint timing nl)

let test_mc_counter_exact () =
  let path = chain_path 5 in
  with_obs (fun () ->
      with_pool 2 (fun pool ->
          ignore (Path_mc.simulate ~pool { Path_mc.default_config with n = 123 } ~seed:3 path));
      Alcotest.(check int) "mc samples drawn" 123 (Obs.counter_value "mc.samples");
      let stats = ok_stats (Trace_check.validate_string (Obs.trace_json ())) in
      Alcotest.(check bool)
        "mc.simulate span present" true
        (List.mem "mc.simulate" stats.Trace_check.names))

let test_sta_forward_span_and_gc () =
  with_obs (fun () ->
      ignore (chain_path 5);
      let forward =
        List.filter (fun e -> e.Obs.name = "sta.forward") (Obs.events ())
      in
      Alcotest.(check bool) "sta.forward span recorded" true (forward <> []);
      (* the forward sweep interpolates LUTs for every eval; its span
         must attribute that allocation *)
      Alcotest.(check bool) "LUT sweep allocation attributed" true
        (List.exists (fun e -> e.Obs.gc.Obs.minor_words > 0.0) forward);
      let stats = ok_stats (Trace_check.validate_string (Obs.trace_json ())) in
      Alcotest.(check bool) "trace still validates" true (stats.Trace_check.spans > 0))

let test_pool_counters_exact () =
  with_obs (fun () ->
      with_pool 3 (fun pool ->
          ignore (Pool.map pool (fun x -> x + 1) (List.init 10 Fun.id)));
      Alcotest.(check int) "tasks enqueued" 10 (Obs.counter_value "pool.tasks_enqueued");
      Alcotest.(check int) "tasks run" 10 (Obs.counter_value "pool.tasks_run");
      match List.assoc_opt "pool.queue_depth" (Obs.metrics ()) with
      | Some (Obs.Stats s) ->
        Alcotest.(check int) "one submit batch" 1 s.Obs.count;
        Alcotest.(check (float 0.0)) "depth equals batch size" 10.0 s.Obs.max_v
      | _ -> Alcotest.fail "pool.queue_depth histogram missing")

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_metrics_json_well_formed () =
  with_obs (fun () ->
      Obs.incr ~by:3 "unit.counter";
      Obs.gauge "unit.gauge" 2.5;
      Obs.observe "unit.histo" 1.0;
      Obs.observe "unit.histo" 3.0;
      let json =
        match Json.parse (Obs.metrics_json ()) with
        | Ok j -> j
        | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
      in
      let counter =
        Option.bind (Json.member "counters" json) (Json.member "unit.counter")
      in
      Alcotest.(check (option (float 0.0)))
        "counter exported" (Some 3.0)
        (Option.bind counter Json.to_float);
      let mean =
        Option.bind (Json.member "histograms" json) (fun h ->
            Option.bind (Json.member "unit.histo" h) (Json.member "mean"))
      in
      Alcotest.(check (option (float 1e-9)))
        "histogram mean" (Some 2.0)
        (Option.bind mean Json.to_float))

let test_trace_check_rejects_bad_traces () =
  let reject label s =
    match Trace_check.validate_string s with
    | Ok _ -> Alcotest.failf "%s: should have been rejected" label
    | Error _ -> ()
  in
  reject "no traceEvents" {|{"foo": []}|};
  reject "no spans" {|{"traceEvents": [{"ph":"M","pid":1,"tid":0,"name":"thread_name"}]}|};
  reject "missing dur"
    {|{"traceEvents": [{"ph":"X","pid":1,"tid":0,"name":"a","ts":1.0}]}|};
  reject "negative dur"
    {|{"traceEvents": [{"ph":"X","pid":1,"tid":0,"name":"a","ts":1.0,"dur":-2.0}]}|};
  reject "ts goes backwards"
    {|{"traceEvents": [
        {"ph":"X","pid":1,"tid":0,"name":"a","ts":10.0,"dur":1.0},
        {"ph":"X","pid":1,"tid":0,"name":"b","ts":5.0,"dur":1.0}]}|};
  reject "overlapping spans"
    {|{"traceEvents": [
        {"ph":"X","pid":1,"tid":0,"name":"a","ts":0.0,"dur":10.0},
        {"ph":"X","pid":1,"tid":0,"name":"b","ts":5.0,"dur":10.0}]}|};
  match
    Trace_check.validate_string
      {|{"traceEvents": [
          {"ph":"X","pid":1,"tid":0,"name":"parent","ts":0.0,"dur":10.0},
          {"ph":"X","pid":1,"tid":0,"name":"child","ts":2.0,"dur":3.0},
          {"ph":"X","pid":1,"tid":1,"name":"other","ts":1.0,"dur":50.0}]}|}
  with
  | Ok s ->
    Alcotest.(check int) "spans" 3 s.Trace_check.spans;
    Alcotest.(check int) "domains" 2 s.Trace_check.domains
  | Error e -> Alcotest.failf "valid nested trace rejected: %s" e

let test_json_parser_basics () =
  let ok s = match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  (match ok {| {"a": [1, 2.5, -3e2], "b": "x\n\"y", "c": true, "d": null} |} with
  | Json.Object kvs ->
    Alcotest.(check int) "four members" 4 (List.length kvs);
    Alcotest.(check (option (float 0.0)))
      "number" (Some 2.5)
      (match List.assoc "a" kvs with
      | Json.Array [ _; x; _ ] -> Json.to_float x
      | _ -> None);
    Alcotest.(check (option string))
      "escaped string" (Some "x\n\"y")
      (Json.to_string_opt (List.assoc "b" kvs))
  | _ -> Alcotest.fail "expected object");
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "{"; "[1,"; {|{"a" 1}|}; "tru"; ""; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Bit-identity: telemetry on/off, any pool size                       *)
(* ------------------------------------------------------------------ *)

let test_bit_identity_with_telemetry () =
  Obs.reset ();
  Obs.set_enabled false;
  let reference = with_pool 1 (fun pool -> Printer.to_string (build_small ~pool ())) in
  List.iter
    (fun (jobs, enabled) ->
      Obs.reset ();
      Obs.set_enabled enabled;
      let got =
        Fun.protect
          ~finally:(fun () ->
            Obs.set_enabled false;
            Obs.reset ())
          (fun () -> with_pool jobs (fun pool -> Printer.to_string (build_small ~pool ())))
      in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at jobs=%d telemetry=%b" jobs enabled)
        true (String.equal reference got))
    [ (1, true); (2, false); (2, true); (7, true) ]

(* the STA forward sweep gained a span (and GC bookkeeping): timing
   results must stay bit-identical whether or not it records *)
let test_timing_bit_identity () =
  Obs.reset ();
  Obs.set_enabled false;
  let signature () =
    let p = chain_path 7 in
    (Int64.bits_of_float p.Path.arrival, Int64.bits_of_float p.Path.slack,
     List.length p.Path.steps)
  in
  let reference = signature () in
  List.iter
    (fun enabled ->
      Obs.reset ();
      Obs.set_enabled enabled;
      let got =
        Fun.protect
          ~finally:(fun () ->
            Obs.set_enabled false;
            Obs.reset ())
          signature
      in
      Alcotest.(check bool)
        (Printf.sprintf "timing bit-identical with telemetry=%b" enabled)
        true (reference = got))
    [ false; true ]

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled is transparent" `Quick test_disabled_is_transparent;
          Alcotest.test_case "records on exception" `Quick test_span_records_on_exception;
          Alcotest.test_case "nesting under pool sizes 1/2/7" `Quick
            test_span_nesting_under_pool_sizes;
          Alcotest.test_case "pipeline trace is valid" `Quick test_pipeline_trace_is_valid;
        ] );
      ( "counters",
        [
          Alcotest.test_case "statlib counters exact" `Quick test_statlib_counters_exact;
          Alcotest.test_case "mc counter isolated" `Quick test_mc_counter_exact;
          Alcotest.test_case "sta.forward span and GC attribution" `Quick
            test_sta_forward_span_and_gc;
          Alcotest.test_case "pool counters exact" `Quick test_pool_counters_exact;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "metrics JSON well-formed" `Quick test_metrics_json_well_formed;
          Alcotest.test_case "trace checker rejects bad traces" `Quick
            test_trace_check_rejects_bad_traces;
          Alcotest.test_case "json parser basics" `Quick test_json_parser_basics;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "telemetry never changes output" `Quick
            test_bit_identity_with_telemetry;
          Alcotest.test_case "timing unchanged by telemetry" `Quick test_timing_bit_identity;
        ] );
    ]
