(* Tests for the serve layer: deterministic single-flight coalescing,
   the GET endpoints, serve-vs-exec-vs-CLI bit-identity of request
   outputs, N concurrent identical requests under the fault harness at
   pool jobs 1/2/7 (one computation via dedup + store, or clean typed
   failure, never divergent bytes), graceful in-process drain, and the
   real binary's SIGTERM -> exit 75 contract. *)

module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Run_request = Vartune_flow.Run_request
module Serve = Vartune_serve.Serve
module Client = Vartune_serve.Client
module Single_flight = Vartune_serve.Single_flight
module Store = Vartune_store.Store
module Fault = Vartune_fault.Fault
module Pool = Vartune_util.Pool
module Json = Vartune_obs.Json

let temp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vartune_test_serve_%d" (Unix.getpid ()))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let in_temp name =
  mkdir_p temp_root;
  Filename.concat temp_root name

let with_store name f =
  let t = Store.open_dir (in_temp name) in
  Store.wipe t;
  Fun.protect ~finally:(fun () -> Store.wipe t) (fun () -> f t)

let with_serve ?store name f =
  let socket = in_temp name in
  if Sys.file_exists socket then Sys.remove socket;
  let h = Serve.start { Serve.socket; store; backlog = 16 } in
  Fun.protect ~finally:(fun () -> Serve.stop h) (fun () -> f socket h)

(* ------------------------------------------------------------------ *)
(* Single-flight                                                       *)
(* ------------------------------------------------------------------ *)

(* The leader parks inside the computation on a gate, the test waits
   until it is in there, gives the followers time to coalesce, then
   opens the gate: exactly one computation, N-1 dedup answers. *)
let test_single_flight_dedup () =
  let sf = Single_flight.create () in
  let computes = Atomic.make 0 in
  let m = Mutex.create () and c = Condition.create () in
  let leader_running = ref false and released = ref false in
  let compute () =
    Atomic.incr computes;
    Mutex.lock m;
    leader_running := true;
    Condition.broadcast c;
    while not !released do
      Condition.wait c m
    done;
    Mutex.unlock m;
    "value"
  in
  let n = 5 in
  let results = Array.make n ("", false) in
  let threads =
    List.init n (fun i ->
        Thread.create (fun () -> results.(i) <- Single_flight.run sf ~key:"k" compute) ())
  in
  Mutex.lock m;
  while not !leader_running do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Thread.delay 0.2 (* let the remaining threads reach the flight *);
  Alcotest.(check int) "one key in flight" 1 (Single_flight.in_flight sf);
  Mutex.lock m;
  released := true;
  Condition.broadcast c;
  Mutex.unlock m;
  List.iter Thread.join threads;
  Alcotest.(check int) "one computation" 1 (Atomic.get computes);
  Alcotest.(check int) "flight empty afterwards" 0 (Single_flight.in_flight sf);
  Array.iter
    (fun (v, _) -> Alcotest.(check string) "every caller got the result" "value" v)
    results;
  let dedups =
    Array.fold_left (fun acc (_, dedup) -> if dedup then acc + 1 else acc) 0 results
  in
  Alcotest.(check int) "all but the leader coalesced" (n - 1) dedups

let test_single_flight_failure () =
  let sf = Single_flight.create () in
  (match Single_flight.run sf ~key:"k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "leader exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "exception propagates" "boom" msg);
  Alcotest.(check int) "failed flight leaves no trace" 0 (Single_flight.in_flight sf);
  let v, dedup = Single_flight.run sf ~key:"k" (fun () -> "fresh") in
  Alcotest.(check string) "next call computes afresh" "fresh" v;
  Alcotest.(check bool) "as a leader" false dedup

(* ------------------------------------------------------------------ *)
(* Bit-identity: serve = exec = CLI binary                             *)
(* ------------------------------------------------------------------ *)

let statlib_req = Request.Statlib { Request.seed = 7; samples = 2 }

(* fault-free, store-less reference bytes of the statlib request *)
let reference =
  lazy
    (let resp = Run_request.exec statlib_req in
     if resp.Response.code <> 0 then
       Alcotest.failf "reference exec failed: %s"
         (Option.value resp.Response.error ~default:"?");
     resp.Response.output)

let exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "vartune.exe")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_serve_matches_exec_and_cli () =
  let served =
    with_serve "bitid.sock" (fun socket _h ->
        let client = Client.connect socket in
        Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
        match Client.request ~id:1 client statlib_req with
        | Ok resp ->
          Alcotest.(check int) "served request succeeded" 0 resp.Response.code;
          Alcotest.(check bool) "correlation id echoed" true (resp.Response.id = Some 1);
          resp.Response.output
        | Error e -> Alcotest.failf "served response unreadable: %s" e)
  in
  Alcotest.(check bool) "serve output = Run_request.exec output" true
    (String.equal served (Lazy.force reference));
  let out = in_temp "statlib_cli.out" in
  let code =
    Sys.command
      (Printf.sprintf "%s statlib --seed 7 -n 2 > %s 2> /dev/null" (Filename.quote exe)
         (Filename.quote out))
  in
  Alcotest.(check int) "CLI statlib exits 0" 0 code;
  Alcotest.(check bool) "serve output = CLI stdout bytes" true
    (String.equal served (read_file out))

(* ------------------------------------------------------------------ *)
(* GET endpoints                                                       *)
(* ------------------------------------------------------------------ *)

let test_get_endpoints () =
  with_serve "get.sock" (fun socket h ->
      let client = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      List.iter
        (fun endpoint ->
          let line = Client.get client endpoint in
          match Json.parse line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "GET %s returned invalid JSON (%s): %s" endpoint e line)
        [ "metrics"; "profile"; "health" ];
      (match Json.parse (Client.get client "metrics") with
      | Ok json ->
        (match Json.member "schema" json with
        | Some (Json.Number _) -> ()
        | _ -> Alcotest.fail "GET metrics lacks the schema version")
      | Error e -> Alcotest.failf "GET metrics unparsable: %s" e);
      (match Json.parse (Client.get client "health") with
      | Ok json ->
        (match Json.member "status" json with
        | Some (Json.String "ok") -> ()
        | _ -> Alcotest.fail "GET health status not ok")
      | Error e -> Alcotest.failf "GET health unparsable: %s" e);
      let s = Serve.stats h in
      Alcotest.(check int) "GETs are not counted as requests" 0 s.Serve.requests)

let test_malformed_line_answered () =
  with_serve "mal.sock" (fun socket h ->
      let client = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      (match Client.request client statlib_req with
      | Ok resp -> Alcotest.(check int) "valid request still served" 0 resp.Response.code
      | Error e -> Alcotest.failf "valid response unreadable: %s" e);
      let reply = Client.get client "this is not a request" in
      (match Response.of_line reply with
      | Ok resp ->
        Alcotest.(check int) "malformed line answered with 65" 65 resp.Response.code;
        Alcotest.(check bool) "and an error message" true (resp.Response.error <> None)
      | Error e -> Alcotest.failf "error reply unreadable: %s" e);
      let s = Serve.stats h in
      Alcotest.(check int) "unparsable line counted as error" 1 s.Serve.errors)

(* ------------------------------------------------------------------ *)
(* Concurrent identical requests under the fault harness               *)
(* ------------------------------------------------------------------ *)

let concurrent_requests ~n socket req =
  let results = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let client = Client.connect socket in
            Fun.protect
              ~finally:(fun () -> Client.close client)
              (fun () -> results.(i) <- Some (Client.request ~id:i client req)))
          ())
  in
  List.iter Thread.join threads;
  Array.to_list results
  |> List.map (function
       | Some (Ok resp) -> resp
       | Some (Error e) -> Alcotest.failf "response unreadable: %s" e
       | None -> Alcotest.fail "client thread died without a response")

(* N identical concurrent requests against one daemon + store.  Always:
   every response carries the same bytes (coalesced or recomputed,
   never divergent).  Fault-free: exactly one computation — one store
   miss, everyone else answered by the flight or the store.  Faulty:
   either the bytes still match the fault-free reference (store
   degradation is invisible) or every response fails with one clean
   typed sysexits code.  Afterwards a fault-free run over the surviving
   store must reproduce the reference. *)
let dedup_case ~jobs ~spec () =
  let n = 5 in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) @@ fun () ->
  let name = Printf.sprintf "dedup_j%d_%s" jobs (match spec with None -> "clean" | Some s -> s) in
  with_store (name ^ ".store") @@ fun store ->
  with_serve ~store (name ^ ".sock") @@ fun socket h ->
  let responses =
    match spec with
    | None -> concurrent_requests ~n socket statlib_req
    | Some spec -> Fault.with_spec spec (fun () -> concurrent_requests ~n socket statlib_req)
  in
  let first = List.hd responses in
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check int) "uniform code across duplicates" first.Response.code r.Response.code;
      Alcotest.(check bool) "uniform bytes across duplicates" true
        (String.equal first.Response.output r.Response.output))
    responses;
  (match first.Response.code with
  | 0 ->
    Alcotest.(check bool) "bytes match the fault-free serial reference" true
      (String.equal first.Response.output (Lazy.force reference))
  | 65 | 70 | 74 | 75 -> Alcotest.(check bool) "typed failure carries a message" true (first.Response.error <> None)
  | code -> Alcotest.failf "unclassified failure code %d" code);
  (match spec with
  | None ->
    let stats = Store.stats store in
    Alcotest.(check int) "exactly one computation (one store miss)" 1 stats.Store.misses;
    let s = Serve.stats h in
    Alcotest.(check int) "flight + store answered the other callers" (n - 1)
      (s.Serve.dedup_hits + stats.Store.hits)
  | Some _ -> ());
  (* whatever the faults did, no corrupt artifact may survive them *)
  let warm = Run_request.exec ~store statlib_req in
  Alcotest.(check int) "fault-free run over the surviving store succeeds" 0
    warm.Response.code;
  Alcotest.(check bool) "and reproduces the reference bytes" true
    (String.equal warm.Response.output (Lazy.force reference))

let test_dedup_at jobs () =
  dedup_case ~jobs ~spec:None ();
  dedup_case ~jobs ~spec:(Some "worker_crash=1.0:13") ();
  dedup_case ~jobs ~spec:(Some "enospc=1.0:3") ()

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)
(* ------------------------------------------------------------------ *)

(* Stop while a request is executing: the drain must wait for it and
   answer it, not cut the connection. *)
let test_graceful_drain () =
  let socket = in_temp "drain.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let h = Serve.start { Serve.socket; store = None; backlog = 16 } in
  let result = ref None in
  let t =
    Thread.create
      (fun () ->
        let client = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () -> result := Some (Client.request client statlib_req)))
      ()
  in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while (Serve.stats h).Serve.active = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check bool) "request in flight before the drain" true
    ((Serve.stats h).Serve.active > 0);
  Serve.stop h;
  Thread.join t;
  (match !result with
  | Some (Ok resp) -> Alcotest.(check int) "in-flight request answered" 0 resp.Response.code
  | Some (Error e) -> Alcotest.failf "drained response unreadable: %s" e
  | None -> Alcotest.fail "in-flight request dropped by the drain");
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

(* The real binary: SIGTERM -> graceful drain -> exit 75. *)
let test_binary_sigterm_exit_75 () =
  let socket = in_temp "sigterm.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--socket"; socket |]
      Unix.stdin dev_null dev_null
  in
  Unix.close dev_null;
  let deadline = Unix.gettimeofday () +. 30.0 in
  while not (Sys.file_exists socket) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "daemon bound its socket" true (Sys.file_exists socket);
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> Alcotest.(check int) "SIGTERM drains to exit 75" 75 code
  | _, Unix.WSIGNALED s -> Alcotest.failf "daemon killed by signal %d instead of draining" s
  | _, Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped unexpectedly");
  Alcotest.(check bool) "socket file removed on drain" false (Sys.file_exists socket)

let () =
  Alcotest.run "serve"
    [
      ( "single-flight",
        [
          Alcotest.test_case "coalesces concurrent duplicates" `Quick
            test_single_flight_dedup;
          Alcotest.test_case "failed flight leaves no trace" `Quick
            test_single_flight_failure;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "GET endpoints return JSON" `Quick test_get_endpoints;
          Alcotest.test_case "malformed lines answered with 65" `Quick
            test_malformed_line_answered;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "serve = exec = CLI bytes" `Slow
            test_serve_matches_exec_and_cli;
        ] );
      ( "dedup-under-faults",
        [
          Alcotest.test_case "jobs=1" `Slow (test_dedup_at 1);
          Alcotest.test_case "jobs=2" `Slow (test_dedup_at 2);
          Alcotest.test_case "jobs=7" `Slow (test_dedup_at 7);
        ] );
      ( "drain",
        [
          Alcotest.test_case "in-flight request answered" `Slow test_graceful_drain;
          Alcotest.test_case "binary SIGTERM exits 75" `Slow test_binary_sigterm_exit_75;
        ] );
    ]
