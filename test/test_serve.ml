(* Tests for the serve layer: deterministic single-flight coalescing,
   the GET endpoints, serve-vs-exec-vs-CLI bit-identity of request
   outputs, N concurrent identical requests under the fault harness at
   pool jobs 1/2/7 (one computation via dedup + store, or clean typed
   failure, never divergent bytes), the bounded admission queue
   (priority ordering, queue-full sheds, deadline drops at admission
   and dequeue), connection hygiene (oversized request lines), graceful
   in-process drain — idle and under load — and the real binary's
   SIGTERM -> exit 75 contract. *)

module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Run_request = Vartune_flow.Run_request
module Serve = Vartune_serve.Serve
module Client = Vartune_serve.Client
module Single_flight = Vartune_serve.Single_flight
module Admission = Vartune_serve.Admission
module Store = Vartune_store.Store
module Fault = Vartune_fault.Fault
module Pool = Vartune_util.Pool
module Json = Vartune_obs.Json
module Obs = Vartune_obs.Obs

let temp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vartune_test_serve_%d" (Unix.getpid ()))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let in_temp name =
  mkdir_p temp_root;
  Filename.concat temp_root name

let with_store name f =
  let t = Store.open_dir (in_temp name) in
  Store.wipe t;
  Fun.protect ~finally:(fun () -> Store.wipe t) (fun () -> f t)

let with_serve ?store ?(workers = 4) ?(queue_cap = 64) ?(max_conns = 64) name f =
  let socket = in_temp name in
  if Sys.file_exists socket then Sys.remove socket;
  let h = Serve.start { Serve.socket; store; backlog = 16; workers; queue_cap; max_conns } in
  Fun.protect ~finally:(fun () -> Serve.stop h) (fun () -> f socket h)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let wait_until ?(timeout_s = 30.0) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Single-flight                                                       *)
(* ------------------------------------------------------------------ *)

(* The leader parks inside the computation on a gate, the test waits
   until it is in there, gives the followers time to coalesce, then
   opens the gate: exactly one computation, N-1 dedup answers. *)
let test_single_flight_dedup () =
  let sf = Single_flight.create () in
  let computes = Atomic.make 0 in
  let m = Mutex.create () and c = Condition.create () in
  let leader_running = ref false and released = ref false in
  let compute () =
    Atomic.incr computes;
    Mutex.lock m;
    leader_running := true;
    Condition.broadcast c;
    while not !released do
      Condition.wait c m
    done;
    Mutex.unlock m;
    "value"
  in
  let n = 5 in
  let results = Array.make n ("", false) in
  let threads =
    List.init n (fun i ->
        Thread.create (fun () -> results.(i) <- Single_flight.run sf ~key:"k" compute) ())
  in
  Mutex.lock m;
  while not !leader_running do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Thread.delay 0.2 (* let the remaining threads reach the flight *);
  Alcotest.(check int) "one key in flight" 1 (Single_flight.in_flight sf);
  Mutex.lock m;
  released := true;
  Condition.broadcast c;
  Mutex.unlock m;
  List.iter Thread.join threads;
  Alcotest.(check int) "one computation" 1 (Atomic.get computes);
  Alcotest.(check int) "flight empty afterwards" 0 (Single_flight.in_flight sf);
  Array.iter
    (fun (v, _) -> Alcotest.(check string) "every caller got the result" "value" v)
    results;
  let dedups =
    Array.fold_left (fun acc (_, dedup) -> if dedup then acc + 1 else acc) 0 results
  in
  Alcotest.(check int) "all but the leader coalesced" (n - 1) dedups

let test_single_flight_failure () =
  let sf = Single_flight.create () in
  (match Single_flight.run sf ~key:"k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "leader exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "exception propagates" "boom" msg);
  Alcotest.(check int) "failed flight leaves no trace" 0 (Single_flight.in_flight sf);
  let v, dedup = Single_flight.run sf ~key:"k" (fun () -> "fresh") in
  Alcotest.(check string) "next call computes afresh" "fresh" v;
  Alcotest.(check bool) "as a leader" false dedup

(* ------------------------------------------------------------------ *)
(* Bit-identity: serve = exec = CLI binary                             *)
(* ------------------------------------------------------------------ *)

let statlib_req = Request.Statlib { Request.seed = 7; samples = 2 }

(* fault-free, store-less reference bytes of the statlib request *)
let reference =
  lazy
    (let resp = Run_request.exec statlib_req in
     if resp.Response.code <> 0 then
       Alcotest.failf "reference exec failed: %s"
         (Option.value resp.Response.error ~default:"?");
     resp.Response.output)

let exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "vartune.exe")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_serve_matches_exec_and_cli () =
  let served =
    with_serve "bitid.sock" (fun socket _h ->
        let client = Client.connect socket in
        Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
        match Client.request ~id:1 client statlib_req with
        | Ok resp ->
          Alcotest.(check int) "served request succeeded" 0 resp.Response.code;
          Alcotest.(check bool) "correlation id echoed" true (resp.Response.id = Some 1);
          resp.Response.output
        | Error e -> Alcotest.failf "served response unreadable: %s" e)
  in
  Alcotest.(check bool) "serve output = Run_request.exec output" true
    (String.equal served (Lazy.force reference));
  let out = in_temp "statlib_cli.out" in
  let code =
    Sys.command
      (Printf.sprintf "%s statlib --seed 7 -n 2 > %s 2> /dev/null" (Filename.quote exe)
         (Filename.quote out))
  in
  Alcotest.(check int) "CLI statlib exits 0" 0 code;
  Alcotest.(check bool) "serve output = CLI stdout bytes" true
    (String.equal served (read_file out))

(* ------------------------------------------------------------------ *)
(* GET endpoints                                                       *)
(* ------------------------------------------------------------------ *)

let test_get_endpoints () =
  with_serve "get.sock" (fun socket h ->
      let client = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      List.iter
        (fun endpoint ->
          let line = Client.get client endpoint in
          match Json.parse line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "GET %s returned invalid JSON (%s): %s" endpoint e line)
        [ "metrics"; "profile"; "health" ];
      (match Json.parse (Client.get client "metrics") with
      | Ok json ->
        (match Json.member "schema" json with
        | Some (Json.Number _) -> ()
        | _ -> Alcotest.fail "GET metrics lacks the schema version")
      | Error e -> Alcotest.failf "GET metrics unparsable: %s" e);
      (match Json.parse (Client.get client "health") with
      | Ok json ->
        (match Json.member "status" json with
        | Some (Json.String "ok") -> ()
        | _ -> Alcotest.fail "GET health status not ok")
      | Error e -> Alcotest.failf "GET health unparsable: %s" e);
      let s = Serve.stats h in
      Alcotest.(check int) "GETs are not counted as requests" 0 s.Serve.requests)

let test_malformed_line_answered () =
  with_serve "mal.sock" (fun socket h ->
      let client = Client.connect socket in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      (match Client.request client statlib_req with
      | Ok resp -> Alcotest.(check int) "valid request still served" 0 resp.Response.code
      | Error e -> Alcotest.failf "valid response unreadable: %s" e);
      let reply = Client.get client "this is not a request" in
      (match Response.of_line reply with
      | Ok resp ->
        Alcotest.(check int) "malformed line answered with 65" 65 resp.Response.code;
        Alcotest.(check bool) "and an error message" true (resp.Response.error <> None)
      | Error e -> Alcotest.failf "error reply unreadable: %s" e);
      let s = Serve.stats h in
      Alcotest.(check int) "unparsable line counted as error" 1 s.Serve.errors)

(* ------------------------------------------------------------------ *)
(* Concurrent identical requests under the fault harness               *)
(* ------------------------------------------------------------------ *)

let concurrent_requests ~n socket req =
  let results = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let client = Client.connect socket in
            Fun.protect
              ~finally:(fun () -> Client.close client)
              (fun () -> results.(i) <- Some (Client.request ~id:i client req)))
          ())
  in
  List.iter Thread.join threads;
  Array.to_list results
  |> List.map (function
       | Some (Ok resp) -> resp
       | Some (Error e) -> Alcotest.failf "response unreadable: %s" e
       | None -> Alcotest.fail "client thread died without a response")

(* N identical concurrent requests against one daemon + store.  Always:
   every response carries the same bytes (coalesced or recomputed,
   never divergent).  Fault-free: exactly one computation — one store
   miss, everyone else answered by the flight or the store.  Faulty:
   either the bytes still match the fault-free reference (store
   degradation is invisible) or every response fails with one clean
   typed sysexits code.  Afterwards a fault-free run over the surviving
   store must reproduce the reference. *)
let dedup_case ~jobs ~spec () =
  let n = 5 in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) @@ fun () ->
  let name = Printf.sprintf "dedup_j%d_%s" jobs (match spec with None -> "clean" | Some s -> s) in
  with_store (name ^ ".store") @@ fun store ->
  with_serve ~store (name ^ ".sock") @@ fun socket h ->
  let responses =
    match spec with
    | None -> concurrent_requests ~n socket statlib_req
    | Some spec -> Fault.with_spec spec (fun () -> concurrent_requests ~n socket statlib_req)
  in
  let first = List.hd responses in
  List.iter
    (fun (r : Response.t) ->
      Alcotest.(check int) "uniform code across duplicates" first.Response.code r.Response.code;
      Alcotest.(check bool) "uniform bytes across duplicates" true
        (String.equal first.Response.output r.Response.output))
    responses;
  (match first.Response.code with
  | 0 ->
    Alcotest.(check bool) "bytes match the fault-free serial reference" true
      (String.equal first.Response.output (Lazy.force reference))
  | 65 | 70 | 74 | 75 -> Alcotest.(check bool) "typed failure carries a message" true (first.Response.error <> None)
  | code -> Alcotest.failf "unclassified failure code %d" code);
  (match spec with
  | None ->
    let stats = Store.stats store in
    Alcotest.(check int) "exactly one computation (one store miss)" 1 stats.Store.misses;
    let s = Serve.stats h in
    Alcotest.(check int) "flight + store answered the other callers" (n - 1)
      (s.Serve.dedup_hits + stats.Store.hits)
  | Some _ -> ());
  (* whatever the faults did, no corrupt artifact may survive them *)
  let warm = Run_request.exec ~store statlib_req in
  Alcotest.(check int) "fault-free run over the surviving store succeeds" 0
    warm.Response.code;
  Alcotest.(check bool) "and reproduces the reference bytes" true
    (String.equal warm.Response.output (Lazy.force reference))

let test_dedup_at jobs () =
  dedup_case ~jobs ~spec:None ();
  dedup_case ~jobs ~spec:(Some "worker_crash=1.0:13") ();
  dedup_case ~jobs ~spec:(Some "enospc=1.0:3") ()

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

(* A job that parks on a gate so the tests can hold the (single) worker
   busy while they shape the queue behind it. *)
type gate = {
  g_mu : Mutex.t;
  g_cond : Condition.t;
  mutable g_entered : bool;
  mutable g_open : bool;
}

let make_gate () =
  { g_mu = Mutex.create (); g_cond = Condition.create (); g_entered = false; g_open = false }

let gate_job g after () =
  Mutex.lock g.g_mu;
  g.g_entered <- true;
  Condition.broadcast g.g_cond;
  while not g.g_open do
    Condition.wait g.g_cond g.g_mu
  done;
  Mutex.unlock g.g_mu;
  after ()

let wait_gate_entered g =
  Mutex.lock g.g_mu;
  while not g.g_entered do
    Condition.wait g.g_cond g.g_mu
  done;
  Mutex.unlock g.g_mu

let open_gate g =
  Mutex.lock g.g_mu;
  g.g_open <- true;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_mu

let check_value job =
  match Admission.await job with
  | Admission.Value v -> v
  | Admission.Shed _ -> Alcotest.fail "admitted job was shed"
  | Admission.Failed exn -> raise exn

(* One worker, a gate holding it busy, then batch-batch-interactive
   queued behind it: the interactive job must overtake both queued
   batch jobs, and the batch pair must keep FIFO order. *)
let test_admission_priority () =
  let adm = Admission.create ~workers:1 ~queue_cap:10 in
  Fun.protect ~finally:(fun () -> Admission.stop adm) @@ fun () ->
  let g = make_gate () in
  let order_mu = Mutex.create () in
  let order = ref [] in
  let record tag () =
    Mutex.lock order_mu;
    order := tag :: !order;
    Mutex.unlock order_mu
  in
  let gate = Admission.submit adm ~priority:Request.Batch (gate_job g (record "gate")) in
  wait_gate_entered g;
  let b1 = Admission.submit adm ~priority:Request.Batch (record "b1") in
  let b2 = Admission.submit adm ~priority:Request.Batch (record "b2") in
  let i1 = Admission.submit adm ~priority:Request.Interactive (record "i1") in
  Alcotest.(check int) "three jobs queued behind the gate" 3 (Admission.depth adm);
  Alcotest.(check int) "one job active" 1 (Admission.active adm);
  open_gate g;
  List.iter check_value [ gate; b1; b2; i1 ];
  Alcotest.(check (list string)) "interactive overtakes queued batch, batch stays FIFO"
    [ "gate"; "i1"; "b1"; "b2" ]
    (List.rev !order);
  Alcotest.(check int) "nothing was shed" 0 (Admission.sheds adm)

(* Queue at capacity: the next submit is refused immediately with a
   typed shed carrying the deterministic pressure-scaled hint; the
   already-admitted work still runs. *)
let test_admission_queue_full () =
  let adm = Admission.create ~workers:1 ~queue_cap:1 in
  Fun.protect ~finally:(fun () -> Admission.stop adm) @@ fun () ->
  let g = make_gate () in
  let gate = Admission.submit adm ~priority:Request.Batch (gate_job g (fun () -> ())) in
  wait_gate_entered g;
  let queued = Admission.submit adm ~priority:Request.Batch (fun () -> ()) in
  let refused = Admission.submit adm ~priority:Request.Interactive (fun () -> ()) in
  (match Admission.await refused with
  | Admission.Shed { reason = Admission.Queue_full; retry_after_s } ->
    (* depth 1 + active 1 over 1 worker: 0.05 * 2 *)
    Alcotest.(check (float 1e-9)) "hint follows the published pressure formula" 0.1
      retry_after_s
  | Admission.Shed _ -> Alcotest.fail "refused with the wrong reason"
  | _ -> Alcotest.fail "over-capacity submit was not shed");
  Alcotest.(check int) "refusal counted as a shed" 1 (Admission.sheds adm);
  Alcotest.(check int) "but not as a deadline drop" 0 (Admission.deadline_drops adm);
  open_gate g;
  List.iter check_value [ gate; queued ]

(* Deadlines are enforced twice: an already-expired one is refused at
   admission without occupying a slot, and one that lapses while queued
   is dropped at dequeue without being executed. *)
let test_admission_deadlines () =
  let adm = Admission.create ~workers:1 ~queue_cap:10 in
  Fun.protect ~finally:(fun () -> Admission.stop adm) @@ fun () ->
  let expired =
    Admission.submit adm ~priority:Request.Interactive
      ~deadline_ns:(Int64.sub (Obs.now_ns ()) 1_000_000L)
      (fun () -> Alcotest.fail "expired job must never run")
  in
  (match Admission.await expired with
  | Admission.Shed { reason = Admission.Deadline_expired; _ } -> ()
  | _ -> Alcotest.fail "expired deadline not refused at admission");
  Alcotest.(check int) "admission-time drop counted" 1 (Admission.deadline_drops adm);
  let g = make_gate () in
  let gate = Admission.submit adm ~priority:Request.Batch (gate_job g (fun () -> ())) in
  wait_gate_entered g;
  let doomed =
    Admission.submit adm ~priority:Request.Batch
      ~deadline_ns:(Int64.add (Obs.now_ns ()) 50_000_000L)
      (fun () -> Alcotest.fail "lapsed job must never run")
  in
  Thread.delay 0.2 (* let the 50 ms deadline lapse while queued *);
  open_gate g;
  check_value gate;
  (match Admission.await doomed with
  | Admission.Shed { reason = Admission.Deadline_expired; retry_after_s } ->
    Alcotest.(check bool) "dequeue-time drop carries a hint" true (retry_after_s > 0.0)
  | _ -> Alcotest.fail "lapsed deadline not dropped at dequeue");
  Alcotest.(check int) "both drops counted" 2 (Admission.deadline_drops adm);
  Alcotest.(check int) "deadline drops are not sheds" 0 (Admission.sheds adm)

(* Drain with work in flight and work queued: the queued job is shed
   with [Draining] before stop returns, the in-flight one finishes. *)
let test_admission_drain () =
  let adm = Admission.create ~workers:1 ~queue_cap:10 in
  let g = make_gate () in
  let gate = Admission.submit adm ~priority:Request.Batch (gate_job g (fun () -> "done")) in
  wait_gate_entered g;
  let queued = Admission.submit adm ~priority:Request.Batch (fun () -> "ran") in
  let stopper = Thread.create (fun () -> Admission.stop adm) () in
  (match Admission.await queued with
  | Admission.Shed { reason = Admission.Draining; _ } -> ()
  | _ -> Alcotest.fail "queued job not shed by the drain");
  open_gate g;
  Thread.join stopper;
  Alcotest.(check string) "in-flight job finished through the drain" "done"
    (check_value gate);
  (match Admission.await
           (Admission.submit adm ~priority:Request.Interactive (fun () -> "late"))
   with
  | Admission.Shed { reason = Admission.Draining; _ } -> ()
  | _ -> Alcotest.fail "post-drain submit not refused");
  Admission.stop adm (* idempotent *)

(* ------------------------------------------------------------------ *)
(* Overload behaviour through the daemon                               *)
(* ------------------------------------------------------------------ *)

let statlib_seed seed = Request.Statlib { Request.seed; samples = 2 }

(* Fires one request from its own client thread and parks the result. *)
let async_request ?deadline_s socket req =
  let result = ref None in
  let t =
    Thread.create
      (fun () ->
        let client = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () -> result := Some (Client.request ?deadline_s client req)))
      ()
  in
  (t, result)

let response_of tag result =
  match !result with
  | Some (Ok resp) -> resp
  | Some (Error e) -> Alcotest.failf "%s response unreadable: %s" tag e
  | None -> Alcotest.failf "%s request got no reply" tag

(* One worker, queue cap 1, the delay fault stretching every execution:
   request A runs, B queues, C must be refused immediately with a total
   code-75 response carrying a retry hint — while A and B still succeed.
   Every request gets exactly one reply. *)
let test_serve_queue_full_shed () =
  with_serve ~workers:1 ~queue_cap:1 "shed.sock" @@ fun socket h ->
  Fault.with_spec "delay=1.0:3" @@ fun () ->
  let ta, ra = async_request socket (statlib_seed 100) in
  Alcotest.(check bool) "request A reached a worker" true
    (wait_until (fun () -> (Serve.stats h).Serve.active > 0));
  let tb, rb = async_request socket (statlib_seed 101) in
  Alcotest.(check bool) "request B queued behind it" true
    (wait_until (fun () -> (Serve.stats h).Serve.queued > 0));
  let client = Client.connect socket in
  let rc =
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.request client (statlib_seed 102))
  in
  (match rc with
  | Ok resp ->
    Alcotest.(check int) "over-capacity request shed with 75" 75 resp.Response.code;
    Alcotest.(check bool) "shed carries a retry_after_s hint" true
      (resp.Response.retry_after_s <> None);
    Alcotest.(check bool) "and a message" true (resp.Response.error <> None)
  | Error e -> Alcotest.failf "shed response unreadable: %s" e);
  Thread.join ta;
  Thread.join tb;
  Alcotest.(check int) "request A served" 0 (response_of "A" ra).Response.code;
  Alcotest.(check int) "request B served" 0 (response_of "B" rb).Response.code;
  Alcotest.(check bool) "daemon counted the shed" true ((Serve.stats h).Serve.sheds >= 1)

(* A deadline that lapses while queued behind slow work: the daemon
   answers 75 without executing, and counts a deadline drop (never a
   shed). *)
let test_serve_deadline_drop () =
  with_serve ~workers:1 ~queue_cap:8 "deadline.sock" @@ fun socket h ->
  Fault.with_spec "delay=1.0:3" @@ fun () ->
  let ta, ra = async_request socket (statlib_seed 110) in
  Alcotest.(check bool) "request A reached a worker" true
    (wait_until (fun () -> (Serve.stats h).Serve.active > 0));
  let client = Client.connect socket in
  let rd =
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () -> Client.request ~deadline_s:0.05 client (statlib_seed 111))
  in
  (match rd with
  | Ok resp ->
    Alcotest.(check int) "lapsed deadline answered with 75" 75 resp.Response.code;
    Alcotest.(check bool) "the message names the deadline" true
      (match resp.Response.error with Some e -> contains ~needle:"deadline" e | None -> false)
  | Error e -> Alcotest.failf "deadline response unreadable: %s" e);
  Thread.join ta;
  Alcotest.(check int) "request A served" 0 (response_of "A" ra).Response.code;
  let s = Serve.stats h in
  Alcotest.(check int) "counted as a deadline drop" 1 s.Serve.deadline_drops

(* ------------------------------------------------------------------ *)
(* Connection hygiene                                                  *)
(* ------------------------------------------------------------------ *)

(* A line just past the 1 MiB cap, no newline: the daemon must answer
   one typed 65 naming the cap and drop the connection instead of
   buffering without bound.  Exactly cap+1 bytes so the daemon consumes
   everything we send and the close is a clean EOF, not an RST. *)
let test_oversized_line () =
  with_serve "oversized.sock" @@ fun socket h ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let total = (1 lsl 20) + 1 in
  let chunk = Bytes.make 65536 'a' in
  let sent = ref 0 in
  (try
     while !sent < total do
       let n = min (Bytes.length chunk) (total - !sent) in
       sent := !sent + Unix.write fd chunk 0 n
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  let buf = Buffer.create 256 in
  let bytes = Bytes.create 4096 in
  (try
     let rec drain () =
       let n = Unix.read fd bytes 0 (Bytes.length bytes) in
       if n > 0 then begin
         Buffer.add_subbytes buf bytes 0 n;
         drain ()
       end
     in
     drain ()
   with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  let reply = Buffer.contents buf in
  let line =
    match String.index_opt reply '\n' with
    | Some i -> String.sub reply 0 i
    | None -> reply
  in
  (match Response.of_line line with
  | Ok resp ->
    Alcotest.(check int) "oversized line answered with 65" 65 resp.Response.code;
    Alcotest.(check bool) "the message names the cap" true
      (match resp.Response.error with Some e -> contains ~needle:"exceeds" e | None -> false)
  | Error e -> Alcotest.failf "oversized-line reply unreadable (%s): %S" e line);
  Alcotest.(check bool) "connection dropped after the refusal" true
    (String.length reply = String.length line + 1);
  Alcotest.(check bool) "counted as an error" true ((Serve.stats h).Serve.errors >= 1)

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)
(* ------------------------------------------------------------------ *)

(* Stop while a request is executing: the drain must wait for it and
   answer it, not cut the connection. *)
let test_graceful_drain () =
  let socket = in_temp "drain.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let h =
    Serve.start
      { Serve.socket; store = None; backlog = 16; workers = 4; queue_cap = 64; max_conns = 64 }
  in
  let result = ref None in
  let t =
    Thread.create
      (fun () ->
        let client = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () -> result := Some (Client.request client statlib_req)))
      ()
  in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while (Serve.stats h).Serve.active = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check bool) "request in flight before the drain" true
    ((Serve.stats h).Serve.active > 0);
  Serve.stop h;
  Thread.join t;
  (match !result with
  | Some (Ok resp) -> Alcotest.(check int) "in-flight request answered" 0 resp.Response.code
  | Some (Error e) -> Alcotest.failf "drained response unreadable: %s" e
  | None -> Alcotest.fail "in-flight request dropped by the drain");
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

(* Drain with a full pipeline: one request executing (stretched by the
   delay fault), two queued behind the single worker.  Stop must answer
   the in-flight request with its real result and shed both queued ones
   with typed 75s — every reply written before the socket file
   disappears, no client left hanging. *)
let test_drain_under_load () =
  let socket = in_temp "drainload.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let h =
    Serve.start
      { Serve.socket; store = None; backlog = 16; workers = 1; queue_cap = 8; max_conns = 64 }
  in
  Fault.with_spec "delay=1.0:3" @@ fun () ->
  let ta, ra = async_request socket (statlib_seed 120) in
  Alcotest.(check bool) "one request in flight" true
    (wait_until (fun () -> (Serve.stats h).Serve.active > 0));
  let tb, rb = async_request socket (statlib_seed 121) in
  let tc, rc = async_request socket (statlib_seed 122) in
  Alcotest.(check bool) "two requests queued behind it" true
    (wait_until (fun () -> (Serve.stats h).Serve.queued >= 2));
  Serve.stop h;
  Alcotest.(check bool) "socket file removed by the drain" false (Sys.file_exists socket);
  List.iter Thread.join [ ta; tb; tc ];
  Alcotest.(check int) "in-flight request answered with its result" 0
    (response_of "in-flight" ra).Response.code;
  List.iter
    (fun (tag, r) ->
      let resp = response_of tag r in
      Alcotest.(check int) (tag ^ " shed with 75") 75 resp.Response.code;
      Alcotest.(check bool) (tag ^ " carries a retry hint") true
        (resp.Response.retry_after_s <> None))
    [ ("queued B", rb); ("queued C", rc) ]

(* The real binary: SIGTERM -> graceful drain -> exit 75. *)
let test_binary_sigterm_exit_75 () =
  let socket = in_temp "sigterm.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--socket"; socket |]
      Unix.stdin dev_null dev_null
  in
  Unix.close dev_null;
  let deadline = Unix.gettimeofday () +. 30.0 in
  while not (Sys.file_exists socket) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "daemon bound its socket" true (Sys.file_exists socket);
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> Alcotest.(check int) "SIGTERM drains to exit 75" 75 code
  | _, Unix.WSIGNALED s -> Alcotest.failf "daemon killed by signal %d instead of draining" s
  | _, Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped unexpectedly");
  Alcotest.(check bool) "socket file removed on drain" false (Sys.file_exists socket)

let () =
  Alcotest.run "serve"
    [
      ( "single-flight",
        [
          Alcotest.test_case "coalesces concurrent duplicates" `Quick
            test_single_flight_dedup;
          Alcotest.test_case "failed flight leaves no trace" `Quick
            test_single_flight_failure;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "GET endpoints return JSON" `Quick test_get_endpoints;
          Alcotest.test_case "malformed lines answered with 65" `Quick
            test_malformed_line_answered;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "serve = exec = CLI bytes" `Slow
            test_serve_matches_exec_and_cli;
        ] );
      ( "dedup-under-faults",
        [
          Alcotest.test_case "jobs=1" `Slow (test_dedup_at 1);
          Alcotest.test_case "jobs=2" `Slow (test_dedup_at 2);
          Alcotest.test_case "jobs=7" `Slow (test_dedup_at 7);
        ] );
      ( "admission",
        [
          Alcotest.test_case "interactive overtakes queued batch" `Quick
            test_admission_priority;
          Alcotest.test_case "queue full sheds with a typed hint" `Quick
            test_admission_queue_full;
          Alcotest.test_case "deadlines enforced at admission and dequeue" `Quick
            test_admission_deadlines;
          Alcotest.test_case "drain sheds queued, finishes in-flight" `Quick
            test_admission_drain;
        ] );
      ( "overload",
        [
          Alcotest.test_case "over-capacity request shed with 75" `Slow
            test_serve_queue_full_shed;
          Alcotest.test_case "queued deadline lapse answered with 75" `Slow
            test_serve_deadline_drop;
          Alcotest.test_case "oversized line refused and dropped" `Slow
            test_oversized_line;
        ] );
      ( "drain",
        [
          Alcotest.test_case "in-flight request answered" `Slow test_graceful_drain;
          Alcotest.test_case "drain under load sheds queued with 75" `Slow
            test_drain_under_load;
          Alcotest.test_case "binary SIGTERM exits 75" `Slow test_binary_sigterm_exit_75;
        ] );
    ]
