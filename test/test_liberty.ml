(* Tests for Vartune_liberty: Lut, Arc, Pin, Cell, Library, and the text
   format (Lexer, Parser, Printer, Ast). *)

module Grid = Vartune_util.Grid
module Rng = Vartune_util.Rng
module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Pin = Vartune_liberty.Pin
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library
module Lexer = Vartune_liberty.Lexer
module Parser = Vartune_liberty.Parser
module Printer = Vartune_liberty.Printer
module Ast = Vartune_liberty.Ast

let check_float = Helpers.check_float

let simple_lut () =
  Lut.of_fn ~slews:[| 0.01; 0.1; 1.0 |] ~loads:[| 0.001; 0.01; 0.1 |]
    (fun ~slew ~load -> (10.0 *. load) +. slew)

(* -------------------------------- Lut ------------------------------- *)

let test_lut_make_validation () =
  let values = Grid.create ~rows:2 ~cols:2 0.0 in
  Alcotest.check_raises "bad slew axis"
    (Invalid_argument "Lut.make: slew axis not increasing") (fun () ->
      ignore (Lut.make ~slews:[| 0.2; 0.1 |] ~loads:[| 0.1; 0.2 |] ~values));
  Alcotest.check_raises "bad load axis"
    (Invalid_argument "Lut.make: load axis not increasing") (fun () ->
      ignore (Lut.make ~slews:[| 0.1; 0.2 |] ~loads:[| 0.2; 0.2 |] ~values));
  Alcotest.check_raises "dims" (Invalid_argument "Lut.make: grid does not match axes")
    (fun () -> ignore (Lut.make ~slews:[| 0.1; 0.2; 0.3 |] ~loads:[| 0.1; 0.2 |] ~values))

let test_lut_grid_points_exact () =
  let lut = simple_lut () in
  Array.iter
    (fun slew ->
      Array.iter
        (fun load ->
          check_float "grid point" ((10.0 *. load) +. slew) (Lut.lookup lut ~slew ~load))
        (Lut.loads lut))
    (Lut.slews lut)

let test_lut_bilinear_exact_on_bilinear =
  (* eqs (2)-(4) reproduce any bilinear function exactly inside the grid *)
  Helpers.qtest "bilinear exact"
    QCheck2.Gen.(
      tup4 (float_range 0.0 1.0) (float_range 0.0 1.0) (float_range (-5.0) 5.0)
        (float_range (-5.0) 5.0))
    (fun (u, v, a, b) ->
      let f ~slew ~load = a +. (b *. slew) +. (2.0 *. load) +. (0.7 *. slew *. load) in
      let lut = Lut.of_fn ~slews:[| 0.0; 0.3; 1.0 |] ~loads:[| 0.0; 0.5; 1.0 |] f in
      let slew = u and load = v in
      Helpers.feq ~eps:1e-9 (f ~slew ~load) (Lut.lookup lut ~slew ~load))

let test_lut_extrapolation () =
  let lut = simple_lut () in
  (* linear surface extrapolates exactly *)
  check_float "beyond load" ((10.0 *. 0.2) +. 0.1) (Lut.lookup lut ~slew:0.1 ~load:0.2);
  check_float "below slew" ((10.0 *. 0.01) +. 0.005) (Lut.lookup lut ~slew:0.005 ~load:0.01)

let test_lut_lookup_clamped () =
  let lut = simple_lut () in
  check_float "clamped high" ((10.0 *. 0.1) +. 1.0) (Lut.lookup_clamped lut ~slew:5.0 ~load:5.0);
  check_float "clamped low" ((10.0 *. 0.001) +. 0.01)
    (Lut.lookup_clamped lut ~slew:0.0 ~load:0.0)

let test_lut_single_row_col () =
  let one = Lut.make ~slews:[| 0.5 |] ~loads:[| 0.5 |] ~values:(Grid.create ~rows:1 ~cols:1 3.0) in
  check_float "1x1" 3.0 (Lut.lookup one ~slew:9.0 ~load:9.0);
  let row =
    Lut.make ~slews:[| 0.5 |] ~loads:[| 0.0; 1.0 |]
      ~values:(Grid.of_arrays [| [| 0.0; 2.0 |] |])
  in
  check_float "1xN interp" 1.0 (Lut.lookup row ~slew:0.1 ~load:0.5)

let test_lut_map_map2 () =
  let lut = simple_lut () in
  let doubled = Lut.map (fun v -> 2.0 *. v) lut in
  check_float "map" (2.0 *. Lut.get lut 1 1) (Lut.get doubled 1 1);
  let summed = Lut.map2 ( +. ) lut doubled in
  check_float "map2" (3.0 *. Lut.get lut 2 2) (Lut.get summed 2 2)

let test_lut_max_equivalent () =
  let a = simple_lut () in
  let b = Lut.map (fun v -> v -. 1.0) a in
  let c = Lut.map (fun v -> v +. 0.5) a in
  let m = Lut.max_equivalent [ a; b; c ] in
  Alcotest.(check bool) "max is c" true (Lut.equal m c)

let test_lut_merge_stats () =
  let base = simple_lut () in
  let samples = [ base; Lut.map (fun v -> v +. 1.0) base; Lut.map (fun v -> v +. 2.0) base ] in
  let mean = Lut.merge samples ~f:Vartune_util.Stat.mean in
  check_float "merged mean" (Lut.get base 0 0 +. 1.0) (Lut.get mean 0 0);
  let sd = Lut.merge samples ~f:Vartune_util.Stat.stddev in
  check_float "merged stddev" 1.0 (Lut.get sd 1 1)

let test_lut_merge_axis_mismatch () =
  let a = simple_lut () in
  let b =
    Lut.of_fn ~slews:[| 0.02; 0.2; 2.0 |] ~loads:[| 0.001; 0.01; 0.1 |]
      (fun ~slew ~load -> slew +. load)
  in
  Alcotest.check_raises "axis mismatch" (Invalid_argument "Lut.merge: axis mismatch")
    (fun () -> ignore (Lut.merge [ a; b ] ~f:Vartune_util.Stat.mean))

let test_lut_same_axes_bitwise () =
  (* same_axes is IEEE-754 bit equality, not structural (=) — which is
     false on any NaN-carrying axis — and not numeric (=), which would
     identify -0.0 with 0.0.  A single-element NaN axis passes the
     strictly-increasing check (no comparison to make), so such tables
     are constructible and must still compare equal to themselves. *)
  let values = Grid.create ~rows:1 ~cols:2 1.0 in
  let nan_axis () = Lut.make ~slews:[| nan |] ~loads:[| 0.1; 0.2 |] ~values in
  Alcotest.(check bool) "NaN axis equals itself" true
    (Lut.same_axes (nan_axis ()) (nan_axis ()));
  let zero sign = Lut.make ~slews:[| sign *. 0.0; 1.0 |] ~loads:[| 0.1 |] ~values:(Grid.create ~rows:2 ~cols:1 1.0) in
  Alcotest.(check bool) "-0.0 axis differs from 0.0" false
    (Lut.same_axes (zero 1.0) (zero (-1.0)));
  Alcotest.(check bool) "equal bits equal" true (Lut.same_axes (zero 1.0) (zero 1.0));
  let c = simple_lut () in
  Alcotest.(check bool) "ordinary axes equal" true (Lut.same_axes c (simple_lut ()))

let test_lut_pp_float_repr () =
  (* pp prints axes and values with the codec's round-trip convention
     (%.12g when exact, else %.17g) — 0.1 must come out as "0.1", and a
     17-digit value must survive a parse round-trip *)
  let tricky = 0.1 +. 0.2 in
  let lut =
    Lut.make ~slews:[| 0.1; tricky |] ~loads:[| 1.0 /. 3.0 |]
      ~values:(Grid.create ~rows:2 ~cols:1 0.30000000000000004)
  in
  let s = Format.asprintf "%a" Lut.pp lut in
  Alcotest.(check bool) "0.1 printed short" true (Helpers.contains s "0.1");
  Alcotest.(check bool) "0.30000000000000004 printed exactly" true
    (Helpers.contains s (Vartune_util.Floatfmt.repr tricky));
  Array.iter
    (fun f ->
      let r = Vartune_util.Floatfmt.repr f in
      Alcotest.(check bool)
        (Printf.sprintf "repr round-trips %h" f)
        true
        (Int64.equal (Int64.bits_of_float (float_of_string r)) (Int64.bits_of_float f)))
    [| 0.1; tricky; 1.0 /. 3.0; 1e-300; -0.0; 4.9e-324 |]

(* -------------------------------- Arc ------------------------------- *)

let make_arc ?rise_sigma () =
  let lut = simple_lut () in
  Arc.make ~related_pin:"A" ~sense:Arc.Negative_unate ~rise_delay:lut
    ~fall_delay:(Lut.map (fun v -> v *. 0.9) lut)
    ~rise_transition:(Lut.map (fun v -> v *. 2.0) lut)
    ~fall_transition:(Lut.map (fun v -> v *. 1.8) lut)
    ?rise_delay_sigma:rise_sigma ()

let test_arc_worst_delay () =
  let arc = make_arc () in
  let w = Arc.worst_delay arc in
  Alcotest.(check bool) "worst = rise" true (Lut.equal w arc.Arc.rise_delay);
  check_float "delay = rise" (Lut.lookup arc.Arc.rise_delay ~slew:0.1 ~load:0.01)
    (Arc.delay arc ~slew:0.1 ~load:0.01)

let test_arc_sigma_default () =
  let arc = make_arc () in
  Alcotest.(check bool) "no sigma" false (Arc.has_sigma arc);
  check_float "sigma 0" 0.0 (Arc.sigma arc ~slew:0.1 ~load:0.01)

let test_arc_sigma_present () =
  let sigma_lut = Lut.map (fun v -> v /. 100.0) (simple_lut ()) in
  let arc = make_arc ~rise_sigma:sigma_lut () in
  Alcotest.(check bool) "has sigma" true (Arc.has_sigma arc);
  check_float "sigma lookup" (Lut.lookup sigma_lut ~slew:0.1 ~load:0.01)
    (Arc.sigma arc ~slew:0.1 ~load:0.01)

let test_arc_sense_strings () =
  List.iter
    (fun sense ->
      Alcotest.(check bool) "roundtrip" true
        (Arc.sense_of_string (Arc.sense_to_string sense) = Some sense))
    [ Arc.Positive_unate; Arc.Negative_unate; Arc.Non_unate ];
  Alcotest.(check bool) "bad sense" true (Arc.sense_of_string "sideways" = None)

(* ----------------------------- Pin/Cell ----------------------------- *)

let make_cell () =
  let arc = make_arc () in
  Cell.make ~name:"ND2_4" ~family:"ND2" ~drive_strength:4 ~kind:Cell.Combinational
    ~area:2.5
    ~pins:
      [
        Pin.input ~name:"A" ~capacitance:0.002;
        Pin.input ~name:"B" ~capacitance:0.002;
        Pin.output ~name:"Z" ~max_capacitance:0.05 ~arcs:[ arc ] ();
      ]
    ()

let test_cell_pins () =
  let cell = make_cell () in
  Alcotest.(check int) "inputs" 2 (List.length (Cell.input_pins cell));
  Alcotest.(check int) "outputs" 1 (List.length (Cell.output_pins cell));
  Alcotest.(check (list string)) "input names" [ "A"; "B" ] (Cell.data_input_names cell);
  check_float "input cap" 0.002 (Cell.input_capacitance cell "A");
  check_float "max load" 0.05 (Cell.max_load cell);
  Alcotest.(check int) "arcs" 1 (List.length (Cell.arcs cell));
  Alcotest.(check bool) "not sequential" false (Cell.is_sequential cell)

let test_cell_clock_pin_excluded () =
  let ff =
    Cell.make ~name:"DFF_1" ~family:"DFF" ~drive_strength:1 ~kind:Cell.Flip_flop ~area:5.0
      ~pins:
        [
          Pin.input ~name:"D" ~capacitance:0.001;
          Pin.input ~name:"CK" ~capacitance:0.001;
          Pin.output ~name:"Q" ~arcs:[] ();
        ]
      ~setup_time:0.05 ~clock_pin:"CK" ()
  in
  Alcotest.(check (list string)) "data inputs exclude clock" [ "D" ]
    (Cell.data_input_names ff);
  Alcotest.(check bool) "sequential" true (Cell.is_sequential ff)

let test_cell_validation () =
  Alcotest.check_raises "bad drive"
    (Invalid_argument "Cell.make: drive strength must be positive") (fun () ->
      ignore
        (Cell.make ~name:"X" ~family:"X" ~drive_strength:0 ~kind:Cell.Combinational
           ~area:1.0 ~pins:[] ()))

(* ------------------------------ Library ----------------------------- *)

let small_library () =
  let cell name family drive =
    Cell.make ~name ~family ~drive_strength:drive ~kind:Cell.Combinational
      ~area:(float_of_int drive)
      ~pins:[ Pin.input ~name:"A" ~capacitance:0.001; Pin.output ~name:"Z" ~arcs:[] () ]
      ()
  in
  Library.make ~name:"lib" ~corner:"TT"
    ~cells:[ cell "INV_1" "INV" 1; cell "INV_4" "INV" 4; cell "ND2_4" "ND2" 4 ]

let test_library_lookup () =
  let lib = small_library () in
  Alcotest.(check int) "size" 3 (Library.size lib);
  Alcotest.(check bool) "mem" true (Library.mem lib "INV_4");
  Alcotest.(check bool) "find" true ((Library.find lib "ND2_4").Cell.name = "ND2_4");
  Alcotest.(check bool) "find_opt none" true (Library.find_opt lib "NOPE" = None);
  Alcotest.check_raises "find raises" Not_found (fun () -> ignore (Library.find lib "NOPE"))

let test_library_duplicates () =
  let cell =
    Cell.make ~name:"X_1" ~family:"X" ~drive_strength:1 ~kind:Cell.Combinational ~area:1.0
      ~pins:[] ()
  in
  Alcotest.check_raises "dup" (Invalid_argument "Library.make: duplicate cell X_1")
    (fun () -> ignore (Library.make ~name:"l" ~corner:"TT" ~cells:[ cell; cell ]))

let test_library_families () =
  let lib = small_library () in
  Alcotest.(check (list string)) "families" [ "INV"; "ND2" ] (Library.families lib);
  let ladder = Library.family_members lib "INV" in
  Alcotest.(check (list int)) "drive sorted" [ 1; 4 ]
    (List.map (fun (c : Cell.t) -> c.Cell.drive_strength) ladder);
  Alcotest.(check int) "drive cluster" 2 (List.length (Library.drive_cluster lib 4))

let test_library_filter_area () =
  let lib = small_library () in
  let only_inv = Library.filter lib ~f:(fun c -> c.Cell.family = "INV") in
  Alcotest.(check int) "filtered" 2 (Library.size only_inv);
  check_float "area" 9.0 (Library.total_area lib)

(* ----------------------------- Text format -------------------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "cell(ND2_1) { area : 1.5; /* c */ // line\n }" in
  (match toks with
  | Lexer.Ident "cell" :: Lexer.Lparen :: Lexer.Ident "ND2_1" :: Lexer.Rparen
    :: Lexer.Lbrace :: Lexer.Ident "area" :: Lexer.Colon :: Lexer.Number n
    :: Lexer.Semi :: Lexer.Rbrace :: [ Lexer.Eof ] ->
    check_float "number" 1.5 n
  | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.(check int) "token count" 11 (List.length toks)

let test_lexer_numbers () =
  (match Lexer.tokenize "1.5e-3" with
  | [ Lexer.Number f; Lexer.Eof ] -> check_float "sci" 0.0015 f
  | _ -> Alcotest.fail "sci notation");
  match Lexer.tokenize "-0.25" with
  | [ Lexer.Number f; Lexer.Eof ] -> check_float "negative" (-0.25) f
  | _ -> Alcotest.fail "negative number"

let test_lexer_sci_notation () =
  (* every exponent spelling commercial characterisers emit *)
  List.iter
    (fun (src, expected) ->
      match Lexer.tokenize src with
      | [ Lexer.Number f; Lexer.Eof ] -> check_float ("lexes " ^ src) expected f
      | _ -> Alcotest.fail ("single number expected for " ^ src))
    [
      ("1.2E+03", 1200.0);
      ("4.7e-12", 4.7e-12);
      ("1E3", 1000.0);
      ("+1.5", 1.5);
      ("-2.5E-1", -0.25);
      (".5e1", 5.0);
    ];
  (* an e/E not followed by digits is not an exponent: the number ends
     and an identifier begins *)
  (match Lexer.tokenize "3EFF" with
  | [ Lexer.Number f; Lexer.Ident "EFF"; Lexer.Eof ] -> check_float "3EFF" 3.0 f
  | _ -> Alcotest.fail "3EFF must lex as number then identifier");
  match Lexer.tokenize "1e5f" with
  | [ Lexer.Number f; Lexer.Ident "f"; Lexer.Eof ] -> check_float "1e5f" 1.0e5 f
  | _ -> Alcotest.fail "1e5f must lex as 1e5 then identifier f"

let test_parser_sci_notation_roundtrip () =
  (* exponent-form numbers survive in attribute and complex positions *)
  let g =
    Parser.parse_group
      "cell(X) { cap : 1.2E+03; leak : 4.7e-12; idx(\"1.0E+00, 2.5e-01\", 1E3); }"
  in
  Alcotest.(check bool) "attribute E+" true (Ast.attr_float g "cap" = Some 1200.0);
  Alcotest.(check bool) "attribute e-" true (Ast.attr_float g "leak" = Some 4.7e-12);
  (match Ast.complex_values g "idx" with
  | Some values ->
    Alcotest.(check (array (float 0.0))) "complex values" [| 1.0; 0.25; 1000.0 |]
      (Ast.float_list_of_values values)
  | None -> Alcotest.fail "complex group missing");
  (* a library whose table values print in exponent form parses back
     bit-identically *)
  let lut =
    Lut.make ~slews:[| 1.0e-3; 2.0e-2 |] ~loads:[| 5.0e-4; 1.0e-1 |]
      ~values:(Grid.of_arrays [| [| 1.25e-12; 3.5e3 |]; [| 7.5e-9; 0.5 |] |])
  in
  let arc =
    Arc.make ~related_pin:"A" ~sense:Arc.Negative_unate ~rise_delay:lut ~fall_delay:lut
      ~rise_transition:lut ~fall_transition:lut ()
  in
  let cell =
    Cell.make ~name:"E_1" ~family:"E" ~drive_strength:1 ~kind:Cell.Combinational
      ~area:1.0
      ~pins:
        [
          Pin.input ~name:"A" ~capacitance:3.2e-15;
          Pin.output ~name:"Z" ~arcs:[ arc ] ();
        ]
      ()
  in
  let lib = Library.make ~name:"sci" ~corner:"TT" ~cells:[ cell ] in
  let lib' = Parser.parse (Printer.to_string lib) in
  let c' = Library.find lib' "E_1" in
  let a' = List.hd (Cell.arcs c') in
  Alcotest.(check bool) "tables roundtrip exactly" true
    (Lut.equal ~eps:0.0 a'.Arc.rise_delay lut);
  check_float "input cap roundtrips" 3.2e-15 (Cell.input_capacitance c' "A")

let test_lexer_string_and_errors () =
  (match Lexer.tokenize "\"a, b\"" with
  | [ Lexer.String s; Lexer.Eof ] -> Alcotest.(check string) "string" "a, b" s
  | _ -> Alcotest.fail "string token");
  Alcotest.(check bool) "unterminated string raises" true
    (try
       ignore (Lexer.tokenize "\"oops");
       false
     with Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated comment raises" true
    (try
       ignore (Lexer.tokenize "/* oops");
       false
     with Lexer.Error _ -> true)

let test_ast_helpers () =
  let g = Parser.parse_group "top(x) { a : 1; b : \"s\"; idx(\"1, 2\", 3); child(y) { } }" in
  Alcotest.(check string) "gname" "top" g.Ast.gname;
  Alcotest.(check (list string)) "args" [ "x" ] g.Ast.args;
  Alcotest.(check bool) "attr float" true (Ast.attr_float g "a" = Some 1.0);
  Alcotest.(check bool) "attr string" true (Ast.attr_string g "b" = Some "s");
  Alcotest.(check bool) "missing" true (Ast.attr g "zzz" = None);
  (match Ast.complex_values g "idx" with
  | Some values ->
    Alcotest.(check (array (float 0.0))) "floats" [| 1.0; 2.0; 3.0 |]
      (Ast.float_list_of_values values)
  | None -> Alcotest.fail "complex");
  Alcotest.(check int) "children" 1 (List.length (Ast.child_groups g "child"))

let test_parser_errors () =
  let expect_error src =
    Alcotest.(check bool) ("rejects " ^ src) true
      (try
         ignore (Parser.parse src);
         false
       with Parser.Error _ | Lexer.Error _ -> true)
  in
  expect_error "";
  expect_error "library(l) {";
  expect_error "notalibrary(l) { }";
  expect_error "library(l) { cell() { } }";
  expect_error "library(l) { cell(C) { area : 1; } }" (* missing family *)

let test_roundtrip_library () =
  let lib = Lazy.force Helpers.small_statlib in
  let text = Printer.to_string lib in
  let lib' = Parser.parse text in
  Alcotest.(check int) "cell count" (Library.size lib) (Library.size lib');
  Alcotest.(check string) "name" (Library.name lib) (Library.name lib');
  List.iter2
    (fun (a : Cell.t) (b : Cell.t) ->
      Alcotest.(check string) "cell name" a.Cell.name b.Cell.name;
      check_float "area" a.Cell.area b.Cell.area;
      Alcotest.(check int) "drive" a.Cell.drive_strength b.Cell.drive_strength;
      List.iter2
        (fun (x : Arc.t) (y : Arc.t) ->
          Alcotest.(check bool) "rise" true (Lut.equal x.Arc.rise_delay y.Arc.rise_delay);
          Alcotest.(check bool) "fall" true (Lut.equal x.Arc.fall_delay y.Arc.fall_delay);
          Alcotest.(check bool) "sigma" true
            (match (x.Arc.rise_delay_sigma, y.Arc.rise_delay_sigma) with
            | Some s, Some t -> Lut.equal s t
            | None, None -> true
            | Some _, None | None, Some _ -> false))
        (Cell.arcs a) (Cell.arcs b))
    (Library.cells lib) (Library.cells lib')

let test_roundtrip_power_and_leakage () =
  (* power tables and leakage survive print -> parse *)
  let lib = Lazy.force Helpers.nominal_small in
  let lib' = Parser.parse (Printer.to_string lib) in
  List.iter2
    (fun (a : Cell.t) (b : Cell.t) ->
      Helpers.check_float "leakage" a.Cell.leakage b.Cell.leakage;
      List.iter2
        (fun (x : Arc.t) (y : Arc.t) ->
          match (x.Arc.internal_power, y.Arc.internal_power) with
          | Some p, Some q -> Alcotest.(check bool) "power table" true (Lut.equal ~eps:0.0 p q)
          | None, None -> ()
          | Some _, None | None, Some _ -> Alcotest.fail "power table lost")
        (Cell.arcs a) (Cell.arcs b))
    (Library.cells lib) (Library.cells lib')

let test_roundtrip_random_values =
  (* random table values survive print -> parse exactly *)
  Helpers.qtest ~count:20 "random table roundtrip" QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let lut =
        Lut.of_fn ~slews:[| 0.01; 0.5 |] ~loads:[| 0.001; 0.02 |] (fun ~slew ~load ->
            slew +. load +. Rng.float rng 10.0)
      in
      let arc =
        Arc.make ~related_pin:"A" ~sense:Arc.Negative_unate ~rise_delay:lut ~fall_delay:lut
          ~rise_transition:lut ~fall_transition:lut ()
      in
      let cell =
        Cell.make ~name:"T_1" ~family:"T" ~drive_strength:1 ~kind:Cell.Combinational
          ~area:(Rng.float rng 100.0)
          ~pins:
            [
              Pin.input ~name:"A" ~capacitance:(Rng.float rng 0.01);
              Pin.output ~name:"Z" ~arcs:[ arc ] ();
            ]
          ()
      in
      let lib = Library.make ~name:"r" ~corner:"TT" ~cells:[ cell ] in
      let lib' = Parser.parse (Printer.to_string lib) in
      let c' = Library.find lib' "T_1" in
      let a' = List.hd (Cell.arcs c') in
      c'.Cell.area = cell.Cell.area && Lut.equal ~eps:0.0 a'.Arc.rise_delay lut)

let () =
  Alcotest.run "liberty"
    [
      ( "lut",
        [
          Alcotest.test_case "make validation" `Quick test_lut_make_validation;
          Alcotest.test_case "grid points exact" `Quick test_lut_grid_points_exact;
          test_lut_bilinear_exact_on_bilinear;
          Alcotest.test_case "extrapolation" `Quick test_lut_extrapolation;
          Alcotest.test_case "clamped lookup" `Quick test_lut_lookup_clamped;
          Alcotest.test_case "degenerate axes" `Quick test_lut_single_row_col;
          Alcotest.test_case "map/map2" `Quick test_lut_map_map2;
          Alcotest.test_case "max equivalent" `Quick test_lut_max_equivalent;
          Alcotest.test_case "merge stats" `Quick test_lut_merge_stats;
          Alcotest.test_case "merge axis mismatch" `Quick test_lut_merge_axis_mismatch;
          Alcotest.test_case "same_axes bitwise" `Quick test_lut_same_axes_bitwise;
          Alcotest.test_case "pp float convention" `Quick test_lut_pp_float_repr;
        ] );
      ( "arc",
        [
          Alcotest.test_case "worst delay" `Quick test_arc_worst_delay;
          Alcotest.test_case "sigma default" `Quick test_arc_sigma_default;
          Alcotest.test_case "sigma present" `Quick test_arc_sigma_present;
          Alcotest.test_case "sense strings" `Quick test_arc_sense_strings;
        ] );
      ( "cell",
        [
          Alcotest.test_case "pins" `Quick test_cell_pins;
          Alcotest.test_case "clock pin excluded" `Quick test_cell_clock_pin_excluded;
          Alcotest.test_case "validation" `Quick test_cell_validation;
        ] );
      ( "library",
        [
          Alcotest.test_case "lookup" `Quick test_library_lookup;
          Alcotest.test_case "duplicates" `Quick test_library_duplicates;
          Alcotest.test_case "families" `Quick test_library_families;
          Alcotest.test_case "filter/area" `Quick test_library_filter_area;
        ] );
      ( "format",
        [
          Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "sci notation" `Quick test_lexer_sci_notation;
          Alcotest.test_case "sci notation roundtrip" `Quick
            test_parser_sci_notation_roundtrip;
          Alcotest.test_case "lexer strings/errors" `Quick test_lexer_string_and_errors;
          Alcotest.test_case "ast helpers" `Quick test_ast_helpers;
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
          Alcotest.test_case "statlib roundtrip" `Slow test_roundtrip_library;
          Alcotest.test_case "power roundtrip" `Quick test_roundtrip_power_and_leakage;
          test_roundtrip_random_values;
        ] );
    ]
