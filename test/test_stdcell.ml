(* Tests for Vartune_stdcell: Func, Spec, Catalog — including the paper's
   appendix census. *)

module Func = Vartune_stdcell.Func
module Spec = Vartune_stdcell.Spec
module Catalog = Vartune_stdcell.Catalog
module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc

let check_float = Helpers.check_float

(* ------------------------------- Func ------------------------------- *)

let test_func_pin_names () =
  Alcotest.(check (list string)) "inv" [ "A" ] (Func.input_names Func.Inv);
  Alcotest.(check (list string)) "nand3" [ "A"; "B"; "C" ] (Func.input_names (Func.Nand 3));
  Alcotest.(check (list string)) "mux2" [ "A"; "B"; "S" ] (Func.input_names Func.Mux2);
  Alcotest.(check (list string)) "fa in" [ "A"; "B"; "CI" ] (Func.input_names Func.Full_adder);
  Alcotest.(check (list string)) "fa out" [ "S"; "CO" ] (Func.output_names Func.Full_adder);
  Alcotest.(check (list string)) "tie" [] (Func.input_names Func.Tie_low)

let test_func_ff_pins () =
  let ff = Func.Dff { reset = true; set = false; enable = true; scan = false } in
  Alcotest.(check (list string)) "ff inputs" [ "D"; "E"; "RN" ] (Func.input_names ff);
  Alcotest.(check bool) "clock" true (Func.clock_name ff = Some "CK");
  Alcotest.(check bool) "sequential" true (Func.is_sequential ff);
  Alcotest.(check bool) "comb not" false (Func.is_sequential (Func.Nand 2))

let test_func_senses () =
  Alcotest.(check bool) "inv negative" true
    (Func.arc_sense Func.Inv ~input:"A" ~output:"Z" = Arc.Negative_unate);
  Alcotest.(check bool) "and positive" true
    (Func.arc_sense (Func.And 2) ~input:"A" ~output:"Z" = Arc.Positive_unate);
  Alcotest.(check bool) "xor non-unate" true
    (Func.arc_sense (Func.Xor 2) ~input:"A" ~output:"Z" = Arc.Non_unate);
  (* bubbled input of a B-variant flips the sense *)
  Alcotest.(check bool) "nand_b A positive" true
    (Func.arc_sense (Func.Nand_b 2) ~input:"A" ~output:"Z" = Arc.Positive_unate);
  Alcotest.(check bool) "nand_b B negative" true
    (Func.arc_sense (Func.Nand_b 2) ~input:"B" ~output:"Z" = Arc.Negative_unate)

let test_func_inversions () =
  Alcotest.(check int) "inv" 1 (Func.inversions Func.Inv);
  Alcotest.(check bool) "complex cells have more stages" true
    (Func.inversions Func.Full_adder > Func.inversions (Func.Nand 2))

(* ------------------------------- Spec ------------------------------- *)

let inv_spec = Option.get (Catalog.find "INV")

let test_spec_cell_name () =
  Alcotest.(check string) "name" "INV_4" (Spec.cell_name inv_spec ~drive:4)

let test_spec_area_monotone () =
  let areas = List.map (fun d -> Spec.area inv_spec ~drive:d) [ 1; 2; 4; 8; 16 ] in
  let rec increasing = function
    | a :: b :: rest -> a < b && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing areas)

let test_spec_caps () =
  let c1 = Spec.input_capacitance inv_spec ~drive:1 in
  let c4 = Spec.input_capacitance inv_spec ~drive:4 in
  check_float "cap scales with drive" (4.0 *. c1) c4;
  check_float "c_unit" Spec.c_unit c1;
  Alcotest.(check bool) "max cap scales" true
    (Spec.max_capacitance inv_spec ~drive:8 = 8.0 *. Spec.max_capacitance inv_spec ~drive:1)

let test_spec_validation () =
  Alcotest.(check bool) "bad drives rejected" true
    (try
       ignore (Spec.v ~family:"Z" ~func:Func.Inv ~drives:[ 2; 1 ] ~g:1.0 ~p:1.0 ~transistors:2 ());
       false
     with Invalid_argument _ -> true)

let test_spec_output_factor () =
  let fa = Option.get (Catalog.find "FA1") in
  Alcotest.(check bool) "S slower than CO" true
    (Spec.output_factor fa "S" > Spec.output_factor fa "CO");
  check_float "default is 1" 1.0 (Spec.output_factor inv_spec "Z")

(* ------------------------------ Catalog ----------------------------- *)

let test_census_totals () =
  (* the paper's appendix: 304 cells in ten groups *)
  Alcotest.(check int) "total" 304 Catalog.total_cells;
  let expected =
    [
      ("Inverter", 19); ("Or", 36); ("Nand", 46); ("Nor", 43); ("Xnor", 29); ("Adder", 34);
      ("Multiplexer", 27); ("Flip-flop", 51); ("Latch", 12); ("Other", 7);
    ]
  in
  List.iter
    (fun (group, n) ->
      Alcotest.(check int) group n (List.assoc group Catalog.census))
    expected

let test_catalog_find () =
  Alcotest.(check bool) "INV present" true (Catalog.find "INV" <> None);
  Alcotest.(check bool) "missing" true (Catalog.find "NOPE" = None);
  (match Catalog.find_func (Func.Nand 2) with
  | Some spec -> Alcotest.(check string) "nand2 family" "ND2" spec.Spec.family
  | None -> Alcotest.fail "no nand2");
  Alcotest.(check string) "group" "Nand" (Catalog.group_of_family "ND2B");
  Alcotest.(check string) "unknown group" "Unknown" (Catalog.group_of_family "NOPE")

let test_paper_cells_exist () =
  (* cells the paper names: NR4_6, NR2B_1..3, INV_1, INV_32 *)
  let exists family drive =
    match Catalog.find family with
    | Some spec -> List.mem drive spec.Spec.drives
    | None -> false
  in
  Alcotest.(check bool) "NR4_6" true (exists "NR4" 6);
  Alcotest.(check bool) "NR2B_1" true (exists "NR2B" 1);
  Alcotest.(check bool) "NR2B_3" true (exists "NR2B" 3);
  Alcotest.(check bool) "INV_1" true (exists "INV" 1);
  Alcotest.(check bool) "INV_32" true (exists "INV" 32)

let test_unique_families () =
  let names = List.map (fun (s : Spec.t) -> s.Spec.family) Catalog.specs in
  Alcotest.(check int) "no duplicate families" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_drive6_cluster_size () =
  (* Fig 5 needs a populated drive-6 cluster *)
  let with6 =
    List.filter (fun (s : Spec.t) -> List.mem 6 s.Spec.drives) Catalog.specs
  in
  Alcotest.(check bool) "many drive-6 families" true (List.length with6 > 20)

let () =
  Alcotest.run "stdcell"
    [
      ( "func",
        [
          Alcotest.test_case "pin names" `Quick test_func_pin_names;
          Alcotest.test_case "ff pins" `Quick test_func_ff_pins;
          Alcotest.test_case "senses" `Quick test_func_senses;
          Alcotest.test_case "inversions" `Quick test_func_inversions;
        ] );
      ( "spec",
        [
          Alcotest.test_case "cell name" `Quick test_spec_cell_name;
          Alcotest.test_case "area monotone" `Quick test_spec_area_monotone;
          Alcotest.test_case "capacitances" `Quick test_spec_caps;
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "output factor" `Quick test_spec_output_factor;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "census totals (appendix)" `Quick test_census_totals;
          Alcotest.test_case "find" `Quick test_catalog_find;
          Alcotest.test_case "paper cells exist" `Quick test_paper_cells_exist;
          Alcotest.test_case "unique families" `Quick test_unique_families;
          Alcotest.test_case "drive-6 cluster" `Quick test_drive6_cluster_size;
        ] );
    ]
