(* Tests for Vartune_sta: Timing and Path, on hand-built netlists where
   arrival times can be computed by hand from the library LUTs. *)

module Netlist = Vartune_netlist.Netlist
module Timing = Vartune_sta.Timing
module Path = Vartune_sta.Path
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc

let lib = Lazy.force Helpers.nominal_small
let inv = Library.find lib "INV_1"
let dff = Library.find lib "DFF_1"

let config = Timing.default_config ~clock_period:2.0

(* PI -> k inverters -> DFF.D *)
let inverter_chain k =
  let nl = Netlist.create ~name:"chain" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let a = Netlist.add_net nl ~net_name:"a" () in
  Netlist.mark_primary_input nl a;
  let last =
    List.fold_left
      (fun prev i ->
        let out = Netlist.add_net nl () in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Printf.sprintf "inv%d" i)
             ~cell:inv ~inputs:[ ("A", prev) ] ~outputs:[ ("Z", out) ]);
        out)
      a
      (List.init k Fun.id)
  in
  let q = Netlist.add_net nl () in
  ignore
    (Netlist.add_instance nl ~inst_name:"capture" ~cell:dff
       ~inputs:[ ("D", last); ("CK", clk) ]
       ~outputs:[ ("Q", q) ]);
  nl

let test_arrival_matches_manual () =
  let nl = inverter_chain 3 in
  let timing = Timing.run config nl in
  (* replay the propagation by hand *)
  let inv_arc = List.hd (Cell.arcs inv) in
  let dff_d_cap = Cell.input_capacitance dff "D" in
  let inv_a_cap = Cell.input_capacitance inv "A" in
  let wire = config.Timing.wire_cap_base +. config.Timing.wire_cap_per_sink in
  let mid_load = inv_a_cap +. wire in
  let last_load = dff_d_cap +. wire in
  let slew = ref config.Timing.input_slew in
  let arrival = ref 0.0 in
  List.iteri
    (fun i () ->
      let load = if i = 2 then last_load else mid_load in
      arrival := !arrival +. Arc.delay inv_arc ~slew:!slew ~load;
      slew := Arc.transition inv_arc ~slew:!slew ~load)
    [ (); (); () ];
  match Timing.endpoints timing with
  | [ ep ] ->
    Helpers.check_float ~eps:1e-9 "arrival" !arrival ep.Timing.arrival;
    Helpers.check_float ~eps:1e-9 "required"
      (config.Timing.clock_period -. config.Timing.guard_band -. dff.Cell.setup_time)
      ep.Timing.required;
    Helpers.check_float ~eps:1e-9 "slack" (ep.Timing.required -. ep.Timing.arrival)
      ep.Timing.slack
  | eps -> Alcotest.failf "expected 1 endpoint, got %d" (List.length eps)

let test_worst_slack_and_tns () =
  let nl = inverter_chain 2 in
  let timing = Timing.run config nl in
  let ws = Timing.worst_slack timing in
  Alcotest.(check bool) "positive at 2ns" true (ws > 0.0);
  Helpers.check_float "tns zero when met" 0.0 (Timing.total_negative_slack timing);
  (* impossibly tight clock: negative slack and negative tns *)
  let tight = Timing.run (Timing.default_config ~clock_period:0.31) nl in
  Alcotest.(check bool) "negative at 0.31ns" true (Timing.worst_slack tight < 0.0);
  Alcotest.(check bool) "tns negative" true (Timing.total_negative_slack tight < 0.0)

let test_path_backtrace () =
  let nl = inverter_chain 5 in
  let timing = Timing.run config nl in
  let paths = Path.worst_per_endpoint timing nl in
  match paths with
  | [ p ] ->
    Alcotest.(check int) "depth = chain length" 5 (Path.depth p);
    Helpers.check_float ~eps:1e-9 "mean = arrival (eq 5)" p.Path.arrival (Path.mean_delay p);
    (* steps come launch-to-capture: loads decrease only at the end *)
    let cells = List.map (fun (s : Path.step) -> s.Path.cell.Cell.name) p.Path.steps in
    Alcotest.(check (list string)) "all inverters"
      [ "INV_1"; "INV_1"; "INV_1"; "INV_1"; "INV_1" ]
      cells
  | other -> Alcotest.failf "expected 1 path, got %d" (List.length other)

let test_launch_from_register () =
  (* DFF -> INV -> DFF: the path starts with the launching flop's CK->Q *)
  let nl = Netlist.create ~name:"reg2reg" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let d0 = Netlist.add_net nl () in
  Netlist.mark_primary_input nl d0;
  let q0 = Netlist.add_net nl () in
  let z = Netlist.add_net nl () in
  let q1 = Netlist.add_net nl () in
  ignore
    (Netlist.add_instance nl ~inst_name:"launch" ~cell:dff
       ~inputs:[ ("D", d0); ("CK", clk) ]
       ~outputs:[ ("Q", q0) ]);
  ignore
    (Netlist.add_instance nl ~inst_name:"mid" ~cell:inv ~inputs:[ ("A", q0) ]
       ~outputs:[ ("Z", z) ]);
  ignore
    (Netlist.add_instance nl ~inst_name:"capture" ~cell:dff
       ~inputs:[ ("D", z); ("CK", clk) ]
       ~outputs:[ ("Q", q1) ]);
  let timing = Timing.run config nl in
  let capture_ep =
    List.find
      (fun (ep : Timing.endpoint_timing) ->
        match ep.Timing.endpoint with
        | Timing.Reg_data { pin = "D"; inst } ->
          (Netlist.instance nl inst).Netlist.inst_name = "capture"
        | _ -> false)
      (Timing.endpoints timing)
  in
  let p = Path.extract timing nl capture_ep in
  Alcotest.(check int) "depth includes launch flop" 2 (Path.depth p);
  (match p.Path.steps with
  | first :: _ ->
    Alcotest.(check string) "launches from DFF" "DFF" first.Path.cell.Cell.family;
    Helpers.check_float "launch slew is the clock slew" config.Timing.clock_slew
      first.Path.input_slew
  | [] -> Alcotest.fail "empty path");
  (* the launch flop's own D is also an endpoint: 2 endpoints total *)
  Alcotest.(check int) "endpoint count" 2 (List.length (Timing.endpoints timing))

let test_net_required_consistency () =
  let nl = inverter_chain 4 in
  let timing = Timing.run config nl in
  (* on a single path, net slack equals the endpoint slack everywhere *)
  let ws = Timing.worst_slack timing in
  Netlist.iter_nets nl ~f:(fun net ->
      let nid = net.Netlist.net_id in
      if net.Netlist.sinks <> [] && Some nid <> Netlist.clock nl then
        Helpers.check_float ~eps:1e-9 "uniform slack on a chain" ws (Timing.net_slack timing nid))

let test_out_of_range_net_defaults () =
  let nl = inverter_chain 1 in
  let timing = Timing.run config nl in
  let fresh = Netlist.add_net nl () in
  Helpers.check_float "load default" 0.0 (Timing.net_load timing fresh);
  Helpers.check_float "slew default" config.Timing.input_slew (Timing.net_slew timing fresh);
  Alcotest.(check bool) "required default" true (Timing.net_required timing fresh = infinity)

let test_fanout_raises_load () =
  (* one inverter driving 1 vs 4 sinks: load and delay grow *)
  let build sinks =
    let nl = Netlist.create ~name:"fan" in
    let a = Netlist.add_net nl () in
    Netlist.mark_primary_input nl a;
    let z = Netlist.add_net nl () in
    ignore
      (Netlist.add_instance nl ~inst_name:"drv" ~cell:inv ~inputs:[ ("A", a) ]
         ~outputs:[ ("Z", z) ]);
    for i = 0 to sinks - 1 do
      let out = Netlist.add_net nl () in
      ignore
        (Netlist.add_instance nl
           ~inst_name:(Printf.sprintf "sink%d" i)
           ~cell:inv ~inputs:[ ("A", z) ] ~outputs:[ ("Z", out) ]);
      Netlist.mark_primary_output nl out
    done;
    let timing = Timing.run config nl in
    (Timing.net_load timing z, Timing.net_arrival timing z)
  in
  let load1, arr1 = build 1 in
  let load4, arr4 = build 4 in
  Alcotest.(check bool) "load grows" true (load4 > load1);
  Alcotest.(check bool) "arrival grows" true (arr4 > arr1)

(* ------------------------------- Hold -------------------------------- *)

let test_hold_unconstrained_from_pi () =
  (* a D pin fed only from a primary input has no hold check *)
  let nl = inverter_chain 2 in
  let timing = Timing.run config nl in
  Alcotest.(check int) "no hold endpoints" 0 (List.length (Timing.hold_endpoints timing));
  Alcotest.(check bool) "worst hold n/a" true (Timing.worst_hold_slack timing = infinity)

let reg2reg k =
  (* DFF -> k inverters -> DFF *)
  let nl = Netlist.create ~name:"r2r" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let d0 = Netlist.add_net nl () in
  Netlist.mark_primary_input nl d0;
  let q0 = Netlist.add_net nl () in
  ignore
    (Netlist.add_instance nl ~inst_name:"launch" ~cell:dff
       ~inputs:[ ("D", d0); ("CK", clk) ]
       ~outputs:[ ("Q", q0) ]);
  let last =
    List.fold_left
      (fun prev i ->
        let out = Netlist.add_net nl () in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Printf.sprintf "i%d" i)
             ~cell:inv ~inputs:[ ("A", prev) ] ~outputs:[ ("Z", out) ]);
        out)
      q0
      (List.init k Fun.id)
  in
  let q1 = Netlist.add_net nl () in
  ignore
    (Netlist.add_instance nl ~inst_name:"capture" ~cell:dff
       ~inputs:[ ("D", last); ("CK", clk) ]
       ~outputs:[ ("Q", q1) ]);
  nl

let test_hold_register_launched () =
  let nl = reg2reg 1 in
  let timing = Timing.run config nl in
  (* only the capture flop's D has a register-launched fanin *)
  match Timing.hold_endpoints timing with
  | [ ep ] ->
    Alcotest.(check bool) "hold met (clk->q + inv > hold)" true (ep.Timing.slack > 0.0);
    Helpers.check_float "required is the hold time" dff.Cell.hold_time ep.Timing.required;
    Alcotest.(check bool) "min arrival below max arrival" true
      (ep.Timing.arrival
      <= (List.hd (List.filter
                     (fun (e : Timing.endpoint_timing) -> e.Timing.endpoint = ep.Timing.endpoint)
                     (Timing.endpoints timing))).Timing.arrival
         +. 1e-12)
  | eps -> Alcotest.failf "expected 1 hold endpoint, got %d" (List.length eps)

let test_hold_min_arrival_grows_with_depth () =
  let min_at k =
    let nl = reg2reg k in
    let timing = Timing.run config nl in
    match Timing.hold_endpoints timing with
    | [ ep ] -> ep.Timing.arrival
    | _ -> Alcotest.fail "one hold endpoint expected"
  in
  Alcotest.(check bool) "monotone" true (min_at 1 < min_at 4)

(* ------------------------------- Power ------------------------------- *)

let test_power_positive_and_composed () =
  let nl = reg2reg 3 in
  let timing = Timing.run config nl in
  let module Power = Vartune_sta.Power in
  let r = Power.estimate timing nl in
  Alcotest.(check bool) "switching > 0" true (r.Power.switching_mw > 0.0);
  Alcotest.(check bool) "internal > 0" true (r.Power.internal_mw > 0.0);
  Alcotest.(check bool) "leakage > 0" true (r.Power.leakage_mw > 0.0);
  Helpers.check_float ~eps:1e-9 "total is the sum"
    (r.Power.switching_mw +. r.Power.internal_mw +. r.Power.leakage_mw)
    r.Power.total_mw

let test_power_scales_with_frequency () =
  let nl = reg2reg 3 in
  let module Power = Vartune_sta.Power in
  let at period =
    Power.estimate (Timing.run (Timing.default_config ~clock_period:period) nl) nl
  in
  let fast = at 1.0 and slow = at 2.0 in
  (* dynamic power doubles at half the period; leakage is unchanged *)
  Helpers.check_float ~eps:1e-6 "switching x2" (2.0 *. slow.Power.switching_mw)
    fast.Power.switching_mw;
  Helpers.check_float ~eps:1e-9 "leakage constant" slow.Power.leakage_mw fast.Power.leakage_mw

let test_power_scales_with_activity () =
  let nl = reg2reg 3 in
  let module Power = Vartune_sta.Power in
  let timing = Timing.run config nl in
  let lo = Power.estimate ~activity:0.1 timing nl in
  let hi = Power.estimate ~activity:0.2 timing nl in
  Alcotest.(check bool) "more activity more power" true
    (hi.Power.total_mw > lo.Power.total_mw);
  Helpers.check_float ~eps:1e-9 "leakage unchanged" lo.Power.leakage_mw hi.Power.leakage_mw

(* --------------------------- Timing report --------------------------- *)

let test_timing_report () =
  let module TR = Vartune_sta.Timing_report in
  let nl = reg2reg 4 in
  let timing = Timing.run config nl in
  let text = TR.report ~max_paths:2 timing nl in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has summary" true (contains "worst setup slack");
  Alcotest.(check bool) "has path header" true (contains "Path 1:");
  Alcotest.(check bool) "has cells" true (contains "INV_1");
  Alcotest.(check bool) "states MET" true (contains "MET");
  Alcotest.(check bool) "summary mentions hold" true (contains "hold")

let test_depth_histogram () =
  let nl = inverter_chain 3 in
  let timing = Timing.run config nl in
  let paths = Path.worst_per_endpoint timing nl in
  Alcotest.(check (list (pair int int))) "histogram" [ (3, 1) ] (Path.depth_histogram paths)

(* --------------------------- incremental retime -------------------- *)

module Rng = Vartune_util.Rng

let bits = Int64.bits_of_float

(* Bitwise equality of two analyses over every observable: per-net
   values, winning arcs, and both endpoint lists. *)
let check_same_analysis msg nl a b =
  let check_net what got want nid =
    if bits got <> bits want then
      Alcotest.failf "%s: net %d %s: %h <> %h" msg nid what got want
  in
  for nid = 0 to Netlist.net_count nl - 1 do
    check_net "load" (Timing.net_load a nid) (Timing.net_load b nid) nid;
    check_net "arrival" (Timing.net_arrival a nid) (Timing.net_arrival b nid) nid;
    check_net "slew" (Timing.net_slew a nid) (Timing.net_slew b nid) nid;
    check_net "required" (Timing.net_required a nid) (Timing.net_required b nid) nid;
    check_net "min_arrival" (Timing.net_min_arrival a nid) (Timing.net_min_arrival b nid)
      nid
  done;
  Netlist.iter_instances nl ~f:(fun inst ->
      List.iter
        (fun (out_pin, _) ->
          let ca = Timing.critical_input a inst.Netlist.inst_id ~out_pin in
          let cb = Timing.critical_input b inst.inst_id ~out_pin in
          match (ca, cb) with
          | None, None -> ()
          | Some (pa, aa, da), Some (pb, ab, db) ->
            if pa <> pb || bits da <> bits db || aa.Arc.related_pin <> ab.Arc.related_pin
            then Alcotest.failf "%s: %s/%s winning arc differs" msg inst.inst_name out_pin
          | _ -> Alcotest.failf "%s: %s/%s crit presence differs" msg inst.inst_name out_pin)
        inst.outputs);
  let check_eps what ea eb =
    if List.length ea <> List.length eb then
      Alcotest.failf "%s: %s count differs" msg what;
    List.iter2
      (fun (x : Timing.endpoint_timing) (y : Timing.endpoint_timing) ->
        if
          x.endpoint <> y.endpoint
          || bits x.arrival <> bits y.arrival
          || bits x.required <> bits y.required
          || bits x.slack <> bits y.slack
        then Alcotest.failf "%s: %s entry differs" msg what)
      ea eb
  in
  check_eps "endpoints" (Timing.endpoints a) (Timing.endpoints b);
  check_eps "hold endpoints" (Timing.hold_endpoints a) (Timing.hold_endpoints b)

(* same-family ladder of a cell, excluding the cell itself *)
let ladder_of cell =
  List.filter
    (fun (c : Cell.t) ->
      c.Cell.family = cell.Cell.family && c.Cell.name <> cell.Cell.name)
    (Library.cells lib)

let test_retime_chain_resize () =
  let nl = inverter_chain 4 in
  let t = Timing.run config nl in
  (* resize the middle inverter up the ladder and retime *)
  let target = ref None in
  Netlist.iter_instances nl ~f:(fun inst ->
      if inst.Netlist.inst_name = "inv2" then target := Some inst.inst_id);
  let inst_id = Option.get !target in
  let bigger = Library.find lib "INV_4" in
  Netlist.set_cell nl inst_id bigger;
  let t = Timing.retime t ~changed:[ inst_id ] in
  check_same_analysis "chain resize" nl t (Timing.run config nl);
  (* a second move on the same analysis: back down the ladder *)
  Netlist.set_cell nl inst_id (Library.find lib "INV_1");
  let t = Timing.retime t ~changed:[ inst_id ] in
  check_same_analysis "chain resize back" nl t (Timing.run config nl)

let test_retime_empty_and_counters () =
  let nl = inverter_chain 3 in
  let t = Timing.run config nl in
  let evals_before = Vartune_obs.Obs.counter_value "sta.node_evals" in
  let t' = Timing.retime t ~changed:[] in
  check_same_analysis "empty retime" nl t' (Timing.run config nl);
  ignore evals_before

(* structural edits must fall back to a full rebuild, not corrupt state *)
let test_retime_structural_fallback () =
  let nl = inverter_chain 3 in
  let t = Timing.run config nl in
  let extra = Netlist.add_net nl () in
  Netlist.mark_primary_input nl extra;
  let out = Netlist.add_net nl () in
  ignore
    (Netlist.add_instance nl ~inst_name:"tap" ~cell:inv
       ~inputs:[ ("A", extra) ]
       ~outputs:[ ("Z", out) ]);
  let t = Timing.retime t ~changed:[] in
  check_same_analysis "structural fallback" nl t (Timing.run config nl)

(* Random DAG netlists under random same-family resize sequences: after
   every batch of moves, retime must equal a fresh run bit-for-bit. *)
let random_dag rng =
  let families = [ ("INV", [ "A" ]); ("ND2", [ "A"; "B" ]); ("XO2", [ "A"; "B" ]) ] in
  let cells_of fam =
    List.filter (fun (c : Cell.t) -> c.Cell.family = fam) (Library.cells lib)
  in
  let pick xs = List.nth xs (Rng.int rng (List.length xs)) in
  let nl = Netlist.create ~name:"rand" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let n_pi = 2 + Rng.int rng 3 in
  let avail =
    ref
      (List.init n_pi (fun i ->
           let n = Netlist.add_net nl ~net_name:(Printf.sprintf "pi%d" i) () in
           Netlist.mark_primary_input nl n;
           n))
  in
  let movable = ref [] in
  let n_gates = 5 + Rng.int rng 20 in
  for i = 0 to n_gates - 1 do
    let fam, pins = pick families in
    let cell = pick (cells_of fam) in
    let inputs = List.map (fun p -> (p, pick !avail)) pins in
    let out = Netlist.add_net nl () in
    let id =
      Netlist.add_instance nl
        ~inst_name:(Printf.sprintf "g%d" i)
        ~cell ~inputs ~outputs:[ ("Z", out) ]
    in
    movable := id :: !movable;
    avail := out :: !avail
  done;
  (* capture a few nets in registers; their Q nets feed nothing, which
     is fine for timing *)
  let n_regs = 1 + Rng.int rng 3 in
  for i = 0 to n_regs - 1 do
    let d = pick !avail in
    let q = Netlist.add_net nl () in
    let id =
      Netlist.add_instance nl
        ~inst_name:(Printf.sprintf "ff%d" i)
        ~cell:dff
        ~inputs:[ ("D", d); ("CK", clk) ]
        ~outputs:[ ("Q", q) ]
    in
    movable := id :: !movable;
    avail := q :: !avail
  done;
  Netlist.mark_primary_output nl (pick !avail);
  (nl, Array.of_list !movable)

let test_retime_random_sequences =
  Helpers.qtest ~count:30 "retime = fresh run under random move sequences"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nl, movable = random_dag rng in
      let t = ref (Timing.run config nl) in
      let steps = 1 + Rng.int rng 4 in
      for _ = 1 to steps do
        let n_moves = 1 + Rng.int rng 3 in
        let changed = ref [] in
        for _ = 1 to n_moves do
          let id = movable.(Rng.int rng (Array.length movable)) in
          match Netlist.instance_opt nl id with
          | None -> ()
          | Some inst -> (
            match ladder_of inst.Netlist.cell with
            | [] -> ()
            | ladder ->
              let cell = List.nth ladder (Rng.int rng (List.length ladder)) in
              Netlist.set_cell nl id cell;
              changed := id :: !changed)
        done;
        t := Timing.retime !t ~changed:!changed;
        check_same_analysis (Printf.sprintf "seed %d" seed) nl !t (Timing.run config nl)
      done;
      true)

(* Retime must touch fewer nodes than a full run on local moves — the
   point of the whole exercise — measured with the Obs eval counter. *)
let test_retime_fewer_evals () =
  Vartune_obs.Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Vartune_obs.Obs.set_enabled false)
    (fun () ->
      let nl = inverter_chain 16 in
      let t = Timing.run config nl in
      let target = ref None in
      Netlist.iter_instances nl ~f:(fun inst ->
          if inst.Netlist.inst_name = "inv14" then target := Some inst.inst_id);
      let inst_id = Option.get !target in
      Netlist.set_cell nl inst_id (Library.find lib "INV_4");
      let before = Vartune_obs.Obs.counter_value "sta.node_evals" in
      let t = Timing.retime t ~changed:[ inst_id ] in
      let retime_evals = Vartune_obs.Obs.counter_value "sta.node_evals" - before in
      check_same_analysis "late-chain resize" nl t (Timing.run config nl);
      (* the cone of a move near the chain's end is a handful of nodes;
         a full pass is 17 (16 inverters + the register) *)
      Alcotest.(check bool)
        (Printf.sprintf "cone is local (%d evals)" retime_evals)
        true
        (retime_evals > 0 && retime_evals <= 6))

let () =
  Alcotest.run "sta"
    [
      ( "timing",
        [
          Alcotest.test_case "arrival matches manual" `Quick test_arrival_matches_manual;
          Alcotest.test_case "worst slack / tns" `Quick test_worst_slack_and_tns;
          Alcotest.test_case "required consistency" `Quick test_net_required_consistency;
          Alcotest.test_case "fresh net defaults" `Quick test_out_of_range_net_defaults;
          Alcotest.test_case "fanout raises load" `Quick test_fanout_raises_load;
        ] );
      ( "path",
        [
          Alcotest.test_case "backtrace" `Quick test_path_backtrace;
          Alcotest.test_case "launch from register" `Quick test_launch_from_register;
          Alcotest.test_case "depth histogram" `Quick test_depth_histogram;
        ] );
      ( "hold",
        [
          Alcotest.test_case "pi fanin unconstrained" `Quick test_hold_unconstrained_from_pi;
          Alcotest.test_case "register launched" `Quick test_hold_register_launched;
          Alcotest.test_case "min arrival monotone" `Quick test_hold_min_arrival_grows_with_depth;
        ] );
      ( "power",
        [
          Alcotest.test_case "positive and composed" `Quick test_power_positive_and_composed;
          Alcotest.test_case "scales with frequency" `Quick test_power_scales_with_frequency;
          Alcotest.test_case "scales with activity" `Quick test_power_scales_with_activity;
        ] );
      ( "report",
        [ Alcotest.test_case "timing report" `Quick test_timing_report ] );
      ( "retime",
        [
          Alcotest.test_case "chain resize" `Quick test_retime_chain_resize;
          Alcotest.test_case "empty change set" `Quick test_retime_empty_and_counters;
          Alcotest.test_case "structural fallback" `Quick test_retime_structural_fallback;
          Alcotest.test_case "fewer evals on local move" `Quick test_retime_fewer_evals;
          test_retime_random_sequences;
        ] );
    ]
