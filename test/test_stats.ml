(* Tests for Vartune_stats: Dist, Convolve (eqs 5-11), Design_sigma. *)

module Dist = Vartune_stats.Dist
module Convolve = Vartune_stats.Convolve
module Design_sigma = Vartune_stats.Design_sigma

let check_float = Helpers.check_float

(* ------------------------------- Dist ------------------------------- *)

let test_dist_basics () =
  let d = Dist.make ~mean:2.0 ~sigma:0.5 in
  check_float "variability" 0.25 (Dist.variability d);
  check_float "3 sigma" 3.5 (Dist.quantile_3sigma d);
  Alcotest.(check bool) "negative sigma rejected" true
    (try
       ignore (Dist.make ~mean:1.0 ~sigma:(-0.1));
       false
     with Invalid_argument _ -> true)

let test_dist_pdf_cdf () =
  let d = Dist.make ~mean:0.0 ~sigma:1.0 in
  check_float ~eps:1e-6 "pdf peak" (1.0 /. sqrt (2.0 *. Float.pi)) (Dist.pdf d 0.0);
  check_float ~eps:1e-6 "cdf median" 0.5 (Dist.cdf d 0.0);
  Alcotest.(check bool) "cdf(1.96) ~ 0.975" true (Float.abs (Dist.cdf d 1.96 -. 0.975) < 1e-3);
  Alcotest.(check bool) "symmetric" true
    (Float.abs (Dist.cdf d (-1.0) +. Dist.cdf d 1.0 -. 1.0) < 1e-6)

let test_dist_cdf_monotone =
  Helpers.qtest "cdf monotone"
    QCheck2.Gen.(pair (float_range (-5.0) 5.0) (float_range 0.0 2.0))
    (fun (x, dx) ->
      let d = Dist.make ~mean:0.3 ~sigma:0.8 in
      Dist.cdf d x <= Dist.cdf d (x +. dx) +. 1e-9)

let test_dist_degenerate () =
  let d = Dist.make ~mean:1.0 ~sigma:0.0 in
  check_float "cdf below" 0.0 (Dist.cdf d 0.999);
  check_float "cdf above" 1.0 (Dist.cdf d 1.0);
  check_float "pdf off-mean" 0.0 (Dist.pdf d 0.5)

let test_dist_sum_scale () =
  let a = Dist.make ~mean:1.0 ~sigma:0.3 in
  let b = Dist.make ~mean:2.0 ~sigma:0.4 in
  let s = Dist.sum_independent [ a; b ] in
  check_float "sum mean" 3.0 s.Dist.mean;
  check_float "sum sigma" 0.5 s.Dist.sigma;
  let scaled = Dist.scale a 2.0 in
  check_float "scale mean" 2.0 scaled.Dist.mean;
  check_float "scale sigma" 0.6 scaled.Dist.sigma

(* ------------------------------ Convolve ----------------------------- *)

let cells = [ (1.0, 0.1); (2.0, 0.2); (0.5, 0.05) ]

let test_eq5_eq10 () =
  let d = Convolve.path_dist cells in
  (* eq 5: means add *)
  check_float "path mean" 3.5 d.Dist.mean;
  (* eq 10: rho = 0 -> rss of sigmas *)
  check_float "path sigma" (sqrt ((0.1 ** 2.0) +. (0.2 ** 2.0) +. (0.05 ** 2.0))) d.Dist.sigma

let test_eq8_eq9_consistency =
  (* summing the full covariance matrix (eq 8) equals the uniform-rho
     closed form (eq 9) *)
  Helpers.qtest "eq8 = eq9"
    QCheck2.Gen.(
      pair (float_range 0.0 1.0) (list_size (int_range 1 10) (float_range 0.001 0.3)))
    (fun (rho, sigmas) ->
      let sig_arr = Array.of_list sigmas in
      let var_cov = Convolve.path_variance_cov (Convolve.covariance_matrix ~sigmas:sig_arr ~rho) in
      let sum_sq = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 sig_arr in
      let cross = ref 0.0 in
      Array.iteri
        (fun i si ->
          Array.iteri (fun j sj -> if i <> j then cross := !cross +. (rho *. si *. sj)) sig_arr)
        sig_arr;
      Helpers.feq ~eps:1e-9 var_cov (sum_sq +. !cross))

let test_rho_zero_matches_path_dist =
  Helpers.qtest "rho=0 reduces to eq 10"
    QCheck2.Gen.(list_size (int_range 1 12) (pair (float_range 0.0 2.0) (float_range 0.0 0.3)))
    (fun cells ->
      let a = Convolve.path_dist cells in
      let b = Convolve.path_dist_rho ~rho:0.0 cells in
      Helpers.feq ~eps:1e-9 a.Dist.mean b.Dist.mean
      && Helpers.feq ~eps:1e-9 a.Dist.sigma b.Dist.sigma)

let test_rho_monotone () =
  let sigma rho = (Convolve.path_dist_rho ~rho cells).Dist.sigma in
  Alcotest.(check bool) "sigma grows with rho" true
    (sigma 0.0 < sigma 0.3 && sigma 0.3 < sigma 1.0);
  (* rho = 1: sigmas add linearly *)
  check_float ~eps:1e-9 "full correlation" 0.35 (sigma 1.0)

let test_rho_validation () =
  Alcotest.(check bool) "rho out of range" true
    (try
       ignore (Convolve.path_dist_rho ~rho:1.5 cells);
       false
     with Invalid_argument _ -> true)

let test_matrix_validation () =
  Alcotest.(check bool) "non-square rejected" true
    (try
       ignore (Convolve.path_variance_cov [| [| 1.0; 2.0 |]; [| 1.0 |] |]);
       false
     with Invalid_argument _ -> true)

(* --------------------------- Design sigma ---------------------------- *)

let test_eq11 () =
  let paths =
    [ Dist.make ~mean:1.0 ~sigma:0.1; Dist.make ~mean:2.0 ~sigma:0.2 ]
  in
  let d = Design_sigma.of_dists paths in
  check_float "design mean" 3.0 d.Dist.mean;
  check_float "design sigma" (sqrt 0.05) d.Dist.sigma

let test_design_sigma_on_netlist () =
  (* end-to-end through a real timing run over the small statistical lib *)
  let lib = Lazy.force Helpers.small_statlib in
  let module Netlist = Vartune_netlist.Netlist in
  let module Timing = Vartune_sta.Timing in
  let module Library = Vartune_liberty.Library in
  let nl = Netlist.create ~name:"t" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let a = Netlist.add_net nl () in
  Netlist.mark_primary_input nl a;
  let inv = Library.find lib "INV_1" in
  let dff = Library.find lib "DFF_1" in
  let z = Netlist.add_net nl () in
  let q = Netlist.add_net nl () in
  ignore (Netlist.add_instance nl ~inst_name:"u1" ~cell:inv ~inputs:[ ("A", a) ] ~outputs:[ ("Z", z) ]);
  ignore
    (Netlist.add_instance nl ~inst_name:"ff" ~cell:dff
       ~inputs:[ ("D", z); ("CK", clk) ]
       ~outputs:[ ("Q", q) ]);
  let timing = Timing.run (Timing.default_config ~clock_period:3.0) nl in
  let ds = Design_sigma.measure timing nl in
  Alcotest.(check int) "one path" 1 ds.Design_sigma.paths;
  Alcotest.(check bool) "sigma positive (statistical lib)" true
    (ds.Design_sigma.dist.Dist.sigma > 0.0);
  Alcotest.(check bool) "worst 3sigma > mean" true
    (ds.Design_sigma.worst_path_3sigma > ds.Design_sigma.dist.Dist.mean)

(* ------------------------------- Yield -------------------------------- *)

module Yield = Vartune_stats.Yield

let test_yield_basics () =
  let d = Dist.make ~mean:2.0 ~sigma:0.1 in
  check_float ~eps:1e-6 "median path" 0.5 (Yield.path_yield d ~period:2.0);
  Alcotest.(check bool) "slow clock ~1" true (Yield.path_yield d ~period:3.0 > 0.999);
  Alcotest.(check bool) "fast clock ~0" true (Yield.path_yield d ~period:1.0 < 0.001);
  check_float "empty design" 1.0 (Yield.parametric_yield [] ~period:1.0)

let test_yield_product () =
  let d = Dist.make ~mean:2.0 ~sigma:0.1 in
  let y1 = Yield.parametric_yield [ d ] ~period:2.05 in
  let y3 = Yield.parametric_yield [ d; d; d ] ~period:2.05 in
  check_float ~eps:1e-9 "independent product" (y1 ** 3.0) y3

let test_yield_monotone =
  Helpers.qtest "yield monotone in period"
    QCheck2.Gen.(pair (float_range 1.0 3.0) (float_range 0.0 1.0))
    (fun (period, dt) ->
      let dists =
        [ Dist.make ~mean:2.0 ~sigma:0.2; Dist.make ~mean:1.5 ~sigma:0.05 ]
      in
      Yield.parametric_yield dists ~period
      <= Yield.parametric_yield dists ~period:(period +. dt) +. 1e-12)

let test_yield_curve_and_inverse () =
  let dists = [ Dist.make ~mean:2.0 ~sigma:0.1; Dist.make ~mean:1.8 ~sigma:0.15 ] in
  let curve = Yield.yield_curve dists ~periods:[ 1.5; 2.0; 2.5; 3.0 ] in
  Alcotest.(check int) "points" 4 (List.length curve);
  let p = Yield.period_for_yield dists ~target:0.99 ~lo:1.0 ~hi:4.0 in
  Alcotest.(check bool) "achieves target" true
    (Yield.parametric_yield dists ~period:p >= 0.989);
  Alcotest.(check bool) "tight" true
    (Yield.parametric_yield dists ~period:(p -. 0.05) < 0.99);
  (* unreachable target returns hi *)
  check_float "unreachable" 1.7
    (Yield.period_for_yield [ Dist.make ~mean:2.0 ~sigma:0.01 ] ~target:0.9 ~lo:1.0 ~hi:1.7)

let test_yield_validation () =
  Alcotest.(check bool) "bad target" true
    (try
       ignore (Yield.period_for_yield [] ~target:1.5 ~lo:1.0 ~hi:2.0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "stats"
    [
      ( "dist",
        [
          Alcotest.test_case "basics" `Quick test_dist_basics;
          Alcotest.test_case "pdf/cdf" `Quick test_dist_pdf_cdf;
          test_dist_cdf_monotone;
          Alcotest.test_case "degenerate" `Quick test_dist_degenerate;
          Alcotest.test_case "sum/scale" `Quick test_dist_sum_scale;
        ] );
      ( "convolve",
        [
          Alcotest.test_case "eq5/eq10" `Quick test_eq5_eq10;
          test_eq8_eq9_consistency;
          test_rho_zero_matches_path_dist;
          Alcotest.test_case "rho monotone" `Quick test_rho_monotone;
          Alcotest.test_case "rho validation" `Quick test_rho_validation;
          Alcotest.test_case "matrix validation" `Quick test_matrix_validation;
        ] );
      ( "design_sigma",
        [
          Alcotest.test_case "eq 11" `Quick test_eq11;
          Alcotest.test_case "on netlist" `Quick test_design_sigma_on_netlist;
        ] );
      ( "yield",
        [
          Alcotest.test_case "basics" `Quick test_yield_basics;
          Alcotest.test_case "product" `Quick test_yield_product;
          test_yield_monotone;
          Alcotest.test_case "curve and inverse" `Quick test_yield_curve_and_inverse;
          Alcotest.test_case "validation" `Quick test_yield_validation;
        ] );
    ]
