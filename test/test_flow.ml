(* Tests for Vartune_flow: Report rendering and Experiment plumbing that
   doesn't need a full-size setup. *)

module Report = Vartune_flow.Report
module Experiment = Vartune_flow.Experiment
module Lut = Vartune_liberty.Lut
module Ir = Vartune_rtl.Ir
module Mcu = Vartune_rtl.Microcontroller
module Pool = Vartune_util.Pool

let check_float = Helpers.check_float

let capture f =
  (* Report prints to stdout; capture via a temp file redirect *)
  let path = Filename.temp_file "vartune_test" ".txt" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  s

let test_pct_ns () =
  Alcotest.(check string) "pct" "37.1%" (Report.pct 0.371);
  Alcotest.(check string) "negative pct" "-5.0%" (Report.pct (-0.05));
  Alcotest.(check string) "ns" "2.410 ns" (Report.ns 2.41)

let test_table_rendering () =
  let out =
    capture (fun () ->
        Report.table ~header:[ "name"; "value" ]
          ~rows:[ [ "alpha"; "1" ]; [ "longer-name"; "22" ] ])
  in
  Alcotest.(check bool) "header present" true
    (String.length out > 0
    && Option.is_some (String.index_opt out 'n')
    &&
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    contains out "alpha" && contains out "longer-name" && contains out "22")

let test_bar_chart () =
  let out =
    capture (fun () -> Report.bar_chart ~width:10 [ ("a", 10.0); ("b", 5.0); ("c", 0.0) ])
  in
  let lines = String.split_on_char '\n' out in
  let count_hash line = String.fold_left (fun acc ch -> if ch = '#' then acc + 1 else acc) 0 line in
  match List.filter (fun l -> String.length l > 0) lines with
  | [ la; lb; lc ] ->
    Alcotest.(check int) "full bar" 10 (count_hash la);
    Alcotest.(check int) "half bar" 5 (count_hash lb);
    Alcotest.(check int) "zero bar" 0 (count_hash lc)
  | _ -> Alcotest.fail "expected three lines"

let test_surface_rendering () =
  let lut =
    Lut.of_fn ~slews:[| 0.0; 1.0 |] ~loads:[| 0.0; 1.0 |] (fun ~slew ~load -> slew +. load)
  in
  let out = capture (fun () -> Report.surface lut) in
  Alcotest.(check bool) "low marker" true (String.contains out ' ');
  Alcotest.(check bool) "high marker" true (String.contains out '@')

let test_int_histogram () =
  let out = capture (fun () -> Report.int_histogram ~width:8 [ (1, 4); (2, 8) ]) in
  let lines = List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' out) in
  Alcotest.(check int) "two lines" 2 (List.length lines)

let test_binned_scatter () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> x *. 2.0) xs in
  let out =
    capture (fun () -> Report.binned_scatter ~bins:5 ~x_label:"x" ~y_label:"y" xs ys)
  in
  Alcotest.(check bool) "non-empty" true (String.length out > 40)

let test_paper_period_labels () =
  let ladder = Experiment.paper_period_labels 2.41 in
  check_float ~eps:1e-6 "high" 2.41 (List.assoc "high" ladder);
  check_float ~eps:0.01 "close" 2.5 (List.assoc "close" ladder);
  check_float ~eps:0.01 "medium" 4.0 (List.assoc "medium" ladder);
  check_float ~eps:0.01 "low" 10.0 (List.assoc "low" ladder);
  (* scales linearly with the measured minimum *)
  let scaled = Experiment.paper_period_labels 4.82 in
  check_float ~eps:0.02 "scaled medium" 8.0 (List.assoc "medium" scaled)

(* ------------------------- experiment cache ------------------------- *)

(* small config: the fixed 32-bit instruction encoding pins xlen, but a
   narrow multiplier and register file keep elaboration cheap *)
let tiny_config = { Mcu.xlen = 32; reg_count = 8; mul_width = 4; irq_lines = 2; bus_slaves = 2 }

let test_fingerprint_distinguishes_designs () =
  (* the memo key must separate designs the node count conflates *)
  let a = Mcu.generate ~config:tiny_config () in
  let a' = Mcu.generate ~config:tiny_config () in
  let b = Mcu.generate ~config:{ tiny_config with irq_lines = 4 } () in
  Alcotest.(check int) "same config same fingerprint" (Ir.fingerprint a) (Ir.fingerprint a');
  Alcotest.(check bool) "different config differs" false
    (Ir.fingerprint a = Ir.fingerprint b)

let tiny_setup =
  lazy
    (Experiment.prepare_request ~mcu_config:tiny_config
       (Vartune_flow.Request.Min_period { seed = 7; samples = 2 }))

let test_cache_scoped_to_setup () =
  let setup = Lazy.force tiny_setup in
  let period = setup.Experiment.min_period in
  let a = Experiment.baseline setup ~period in
  let b = Experiment.baseline setup ~period in
  Alcotest.(check bool) "memoised within a setup" true (a == b);
  let fresh = Experiment.fresh_memo setup in
  let c = Experiment.baseline fresh ~period in
  Alcotest.(check bool) "fresh cache recomputes" false (a == c);
  Helpers.check_float "recomputation deterministic"
    a.Experiment.design_sigma.Vartune_stats.Design_sigma.dist.Vartune_stats.Dist.sigma
    c.Experiment.design_sigma.Vartune_stats.Design_sigma.dist.Vartune_stats.Dist.sigma

let test_sweep_pool_invariant () =
  let setup = Lazy.force tiny_setup in
  let period = setup.Experiment.min_period *. 1.5 in
  let tuning =
    { Vartune_tuning.Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
      criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02 }
  in
  let parameters = [ 0.01; 0.02; 0.05 ] in
  let run pool setup = Experiment.sweep ~pool setup ~period ~tuning ~parameters in
  let with_jobs jobs f =
    let pool = Pool.create ~jobs () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)
  in
  let serial = with_jobs 1 (fun pool -> run pool (Experiment.fresh_memo setup)) in
  let parallel = with_jobs 4 (fun pool -> run pool (Experiment.fresh_memo setup)) in
  List.iter2
    (fun (s : Experiment.sweep_point) (p : Experiment.sweep_point) ->
      Helpers.check_float ~eps:0.0 "parameter" s.Experiment.parameter p.Experiment.parameter;
      Helpers.check_float ~eps:0.0 "reduction" s.Experiment.reduction p.Experiment.reduction;
      Helpers.check_float ~eps:0.0 "area delta" s.Experiment.area_delta p.Experiment.area_delta)
    serial parallel

(* ------------------- failure → exit-code mapping ------------------- *)

(* The CLI's sysexits vocabulary is load-bearing for CI and operators;
   pin the exact code of every classified exception, including the
   checkpoint/resume additions. *)
let test_exit_codes () =
  let check name expected exn =
    match Experiment.classify_exn exn with
    | Some f -> Alcotest.(check int) name expected (Experiment.exit_code f)
    | None -> Alcotest.fail (name ^ ": expected a classification")
  in
  check "liberty lexer error" 65 (Vartune_liberty.Lexer.Error { line = 1; message = "bad" });
  check "liberty parser error" 65 (Vartune_liberty.Parser.Error "bad");
  check "corrupt journal" 65 (Vartune_journal.Journal.Corrupt "checksum");
  check "sys error" 74 (Sys_error "pipe closed");
  check "unix error" 74 (Unix.Unix_error (Unix.ENOSPC, "write", "f"));
  check "escaped corrupt artifact" 74 (Vartune_store.Codec.Corrupt "short");
  check "worker failure" 75 (Pool.Worker_failure "stalled");
  check "interrupted run" 75 (Vartune_journal.Journal.Interrupted "checkpointed");
  check "escaped injected fault" 70
    (Vartune_fault.Fault.Injected { point = Vartune_fault.Fault.Read; site = "x"; seq = 1 });
  Alcotest.(check bool) "interrupted message mentions resume" true
    (match Experiment.classify_exn (Vartune_journal.Journal.Interrupted "at 8/24 samples") with
    | Some f ->
      let msg = Experiment.failure_message f in
      let has needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      has "resume" && has "at 8/24 samples"
    | None -> false)

let () =
  Alcotest.run "flow"
    [
      ( "report",
        [
          Alcotest.test_case "pct/ns" `Quick test_pct_ns;
          Alcotest.test_case "table" `Quick test_table_rendering;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "surface" `Quick test_surface_rendering;
          Alcotest.test_case "int histogram" `Quick test_int_histogram;
          Alcotest.test_case "binned scatter" `Quick test_binned_scatter;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "paper period ladder" `Quick test_paper_period_labels;
          Alcotest.test_case "design fingerprint" `Quick test_fingerprint_distinguishes_designs;
          Alcotest.test_case "cache scoped to setup" `Slow test_cache_scoped_to_setup;
          Alcotest.test_case "sweep pool invariant" `Slow test_sweep_pool_invariant;
        ] );
      ("failures", [ Alcotest.test_case "exit codes" `Quick test_exit_codes ]);
    ]
