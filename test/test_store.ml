(* Tests for Vartune_store — codec round-trips, key sensitivity,
   corruption recovery, concurrent writers and end-to-end cold/warm
   bit-identity of the experiment flow. *)

module Store = Vartune_store.Store
module Key = Vartune_store.Store.Key
module Codec = Vartune_store.Codec
module Printer = Vartune_liberty.Printer
module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Mismatch = Vartune_process.Mismatch
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints
module Netlist = Vartune_netlist.Netlist
module Design_sigma = Vartune_stats.Design_sigma
module Dist = Vartune_stats.Dist
module Experiment = Vartune_flow.Experiment
module Tuning_method = Vartune_tuning.Tuning_method
module Mcu = Vartune_rtl.Microcontroller
module Pool = Vartune_util.Pool

(* every store in this suite lives under one per-process temp root *)
let temp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vartune_test_store_%d" (Unix.getpid ()))

let with_store name f =
  let t = Store.open_dir (Filename.concat temp_root name) in
  Store.wipe t;
  Fun.protect ~finally:(fun () -> Store.wipe t) (fun () -> f t)

let encode w x =
  let b = Buffer.create 4096 in
  w b x;
  Buffer.contents b

let decode r s =
  let reader = Codec.reader s in
  let v = r reader in
  Alcotest.(check bool) "payload fully consumed" true (Codec.at_end reader);
  v

let bits = Int64.bits_of_float
let check_bits msg a b = Alcotest.(check int64) msg (bits a) (bits b)

(* ------------------------------------------------------------------ *)
(* Shared tiny flow fixture (no store attached)                        *)
(* ------------------------------------------------------------------ *)

let tiny_config =
  { Mcu.xlen = 32; reg_count = 8; mul_width = 4; irq_lines = 2; bus_slaves = 2 }

let tiny_setup =
  lazy
    (Experiment.prepare_request ~mcu_config:tiny_config
       (Vartune_flow.Request.Min_period { seed = 7; samples = 2 }))

let tiny_run =
  lazy
    (let setup = Lazy.force tiny_setup in
     Experiment.baseline setup ~period:(setup.Experiment.min_period *. 1.5))

let run_scalars (r : Experiment.run) =
  ( r.Experiment.label,
    bits r.period,
    bits r.result.Synthesis.worst_slack,
    bits r.result.Synthesis.area,
    r.result.Synthesis.feasible,
    r.result.Synthesis.instances,
    List.length r.paths,
    bits r.design_sigma.Design_sigma.dist.Dist.mean,
    bits r.design_sigma.Design_sigma.dist.Dist.sigma,
    bits r.design_sigma.Design_sigma.worst_path_3sigma )

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_library_roundtrip () =
  List.iter
    (fun (label, lib) ->
      let back = decode Codec.r_library (encode Codec.w_library lib) in
      Alcotest.(check string)
        (label ^ " prints identically")
        (Printer.to_string lib) (Printer.to_string back))
    [
      ("nominal", Lazy.force Helpers.nominal_small);
      ("statistical", Lazy.force Helpers.small_statlib);
    ]

let test_result_roundtrip () =
  let run = Lazy.force tiny_run in
  let cons = Constraints.make ~clock_period:run.Experiment.period () in
  let timing_config = Constraints.timing_config cons in
  let back =
    decode (Codec.r_result ~timing_config)
      (encode Codec.w_result run.Experiment.result)
  in
  let r = run.Experiment.result in
  check_bits "worst slack" r.Synthesis.worst_slack back.Synthesis.worst_slack;
  check_bits "area" r.Synthesis.area back.Synthesis.area;
  Alcotest.(check bool) "feasible" r.Synthesis.feasible back.Synthesis.feasible;
  Alcotest.(check int) "instances" r.Synthesis.instances back.Synthesis.instances;
  Alcotest.(check bool) "netlist image identical" true
    (Netlist.export r.Synthesis.netlist = Netlist.export back.Synthesis.netlist)

let test_paths_roundtrip () =
  let run = Lazy.force tiny_run in
  let back = decode Codec.r_paths (encode Codec.w_paths run.Experiment.paths) in
  Alcotest.(check bool) "paths identical" true (run.Experiment.paths = back)

let test_design_sigma_roundtrip () =
  let ds = (Lazy.force tiny_run).Experiment.design_sigma in
  let back = decode Codec.r_design_sigma (encode Codec.w_design_sigma ds) in
  check_bits "mean" ds.Design_sigma.dist.Dist.mean back.Design_sigma.dist.Dist.mean;
  check_bits "sigma" ds.Design_sigma.dist.Dist.sigma back.Design_sigma.dist.Dist.sigma;
  Alcotest.(check int) "paths" ds.Design_sigma.paths back.Design_sigma.paths;
  check_bits "worst 3-sigma" ds.Design_sigma.worst_path_3sigma
    back.Design_sigma.worst_path_3sigma

(* ------------------------------------------------------------------ *)
(* Key discipline                                                      *)
(* ------------------------------------------------------------------ *)

let test_key_sensitivity () =
  let hex ?(seed = 1) ?(n = 4) ?(mismatch = Mismatch.default) () =
    Key.hex
      (Statistical.store_key Characterize.default_config ~mismatch ~seed ~n
         ~specs:Helpers.small_specs ())
  in
  let base = hex () in
  let variants =
    [
      ("seed", hex ~seed:2 ());
      ("samples", hex ~n:5 ());
      ( "mismatch",
        hex
          ~mismatch:
            {
              Mismatch.default with
              sigma_resistance = Mismatch.default.sigma_resistance *. 2.0;
            }
          () );
    ]
  in
  List.iter
    (fun (what, h) ->
      Alcotest.(check bool) (what ^ " changes the key") true (h <> base))
    variants;
  Alcotest.(check string) "same recipe, same key" base (hex ())

let test_key_no_aliasing () =
  (* length-prefixed strings: concatenation cannot fabricate a recipe *)
  let a = Key.(hex (str (v "s") "l" "ab")) in
  let b = Key.(hex (str (str (v "s") "l" "a") "l" "b")) in
  Alcotest.(check bool) "split string differs" true (a <> b);
  (* float ingredients are bit-exact: -0.0 and 0.0 are different recipes *)
  let pz = Key.(hex (float (v "f") "x" 0.0)) in
  let nz = Key.(hex (float (v "f") "x" (-0.0))) in
  Alcotest.(check bool) "signed zero distinguished" true (pz <> nz)

(* ------------------------------------------------------------------ *)
(* Corruption recovery                                                 *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let test_corruption_recovery () =
  with_store "corrupt" (fun t ->
      let key = Key.(int (v "corrupt_probe") "x" 42) in
      let payload b =
        Codec.w_string b "hello";
        Codec.w_float b 3.25
      in
      let dec r =
        let s = Codec.r_string r in
        let f = Codec.r_float r in
        (s, f)
      in
      let expect_hit what =
        match Store.load t key dec with
        | Some ("hello", 3.25) -> ()
        | _ -> Alcotest.fail (what ^ ": expected a clean hit")
      in
      Store.save t key payload;
      expect_hit "initial";
      let path = Store.entry_path t key in
      let original = read_file path in
      (* truncation: the entry is evicted and reported as a miss *)
      write_file path (String.sub original 0 (String.length original - 4));
      Alcotest.(check bool) "truncated -> miss" true (Store.load t key dec = None);
      Alcotest.(check bool) "truncated entry evicted" false (Sys.file_exists path);
      (* recompute-and-save works after eviction *)
      Store.save t key payload;
      expect_hit "after truncation";
      (* bit flip in the payload: checksum rejects it *)
      let flipped = Bytes.of_string original in
      let last = Bytes.length flipped - 1 in
      Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 0x40));
      write_file path (Bytes.to_string flipped);
      Alcotest.(check bool) "bit flip -> miss" true (Store.load t key dec = None);
      Alcotest.(check bool) "flipped entry evicted" false (Sys.file_exists path);
      Store.save t key payload;
      expect_hit "after bit flip";
      let stats = Store.stats t in
      Alcotest.(check int) "two evictions recorded" 2 stats.Store.evictions;
      Alcotest.(check int) "two misses recorded" 2 stats.Store.misses;
      Alcotest.(check int) "three hits recorded" 3 stats.Store.hits)

let test_wrong_version_is_miss () =
  with_store "version" (fun t ->
      let key = Key.(int (v "corrupt_probe") "x" 7) in
      Store.save t key (fun b -> Codec.w_int b 123);
      (* rewrite the version byte right after the 8-byte magic *)
      let path = Store.entry_path t key in
      let raw = Bytes.of_string (read_file path) in
      Bytes.set raw 8 (Char.chr (Char.code (Bytes.get raw 8) lxor 0xFF));
      write_file path (Bytes.to_string raw);
      Alcotest.(check bool) "foreign version -> miss" true
        (Store.load t key Codec.r_int = None);
      Alcotest.(check bool) "foreign version evicted" false (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* Writer lock discipline                                              *)
(* ------------------------------------------------------------------ *)

exception Encoder_died

let test_lock_released_when_encoder_dies () =
  (* a writer killed mid-critical-section (here: its encoder raising
     inside the locked region) must not leave the entry lock behind *)
  with_store "lock_encoder" (fun t ->
      let key = Key.(int (v "lock_probe") "x" 1) in
      let lock = Store.entry_path t key ^ ".lock" in
      (match Store.save t key (fun _ -> raise Encoder_died) with
      | () -> Alcotest.fail "encoder exception must propagate"
      | exception Encoder_died -> ());
      Alcotest.(check bool) "lock released after encoder death" false
        (Sys.file_exists lock);
      Alcotest.(check int) "nothing landed" 0 (Store.entry_count t);
      (* the entry is immediately writable again *)
      Store.save t key (fun b -> Codec.w_int b 9);
      Alcotest.(check (option int)) "subsequent save lands" (Some 9)
        (Store.load t key Codec.r_int))

let test_stale_lock_broken_live_lock_respected () =
  with_store "lock_stale" (fun t ->
      let key = Key.(int (v "lock_probe") "x" 2) in
      let lock = Store.entry_path t key ^ ".lock" in
      (* a live writer's lock defers the save (content addressing makes
         that benign) *)
      let rec mkdir_p d =
        if not (Sys.file_exists d) then begin
          mkdir_p (Filename.dirname d);
          try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        end
      in
      mkdir_p (Filename.dirname lock);
      close_out (open_out lock);
      Store.save t key (fun b -> Codec.w_int b 1);
      Alcotest.(check bool) "live lock respected" true (Sys.file_exists lock);
      Alcotest.(check (option int)) "save deferred" None (Store.load t key Codec.r_int);
      (* the same lock left by a crashed writer (old mtime) is broken *)
      let ancient = Unix.time () -. 3600.0 in
      Unix.utimes lock ancient ancient;
      Store.save t key (fun b -> Codec.w_int b 2);
      Alcotest.(check (option int)) "stale lock broken, save lands" (Some 2)
        (Store.load t key Codec.r_int);
      Alcotest.(check bool) "stale lock removed" false (Sys.file_exists lock))

(* ------------------------------------------------------------------ *)
(* Concurrent writers                                                  *)
(* ------------------------------------------------------------------ *)

let test_concurrent_writers () =
  List.iter
    (fun jobs ->
      with_store (Printf.sprintf "conc%d" jobs) (fun t ->
          let pool = Pool.create ~jobs () in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () ->
              let tasks = 24 in
              let shared = Key.(int (v "conc_shared") "jobs" jobs) in
              let own i = Key.(int (int (v "conc_own") "jobs" jobs) "i" i) in
              (* all workers hammer the shared key with identical bytes and
                 land their own entry; own save-then-load must always hit *)
              let results =
                Pool.map pool
                  (fun i ->
                    Store.save t shared (fun b -> Codec.w_int b (-1));
                    Store.save t (own i) (fun b -> Codec.w_int b (i * i));
                    Store.load t (own i) Codec.r_int)
                  (List.init tasks Fun.id)
              in
              List.iteri
                (fun i r ->
                  Alcotest.(check (option int))
                    (Printf.sprintf "jobs=%d own entry %d" jobs i)
                    (Some (i * i))
                    r)
                results;
              Alcotest.(check (option int))
                (Printf.sprintf "jobs=%d shared entry" jobs)
                (Some (-1))
                (Store.load t shared Codec.r_int);
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d entry count" jobs)
                (tasks + 1) (Store.entry_count t);
              (* no writer litter survives the run *)
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d no evictions" jobs)
                0 (Store.stats t).Store.evictions)))
    [ 1; 2; 7 ]

(* ------------------------------------------------------------------ *)
(* End-to-end: cold, warm and store-less runs are bit-identical        *)
(* ------------------------------------------------------------------ *)

let test_flow_cold_warm_identical () =
  with_store "flow" (fun t ->
      let prepare ?store () =
        Experiment.prepare_request ~mcu_config:tiny_config ?store
          (Vartune_flow.Request.Min_period { seed = 7; samples = 2 })
      in
      let tuning =
        {
          Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
          criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02;
        }
      in
      let observe ?pool setup =
        let period = setup.Experiment.min_period *. 1.5 in
        let base = Experiment.baseline setup ~period in
        let points =
          Experiment.sweep ?pool setup ~period ~tuning ~parameters:[ 0.01; 0.05 ]
        in
        ( bits setup.Experiment.min_period,
          run_scalars base,
          List.map
            (fun (p : Experiment.sweep_point) ->
              (bits p.parameter, run_scalars p.run, bits p.reduction,
               bits p.area_delta))
            points )
      in
      let cold = observe (prepare ~store:t ()) in
      let after_cold = Store.stats t in
      Alcotest.(check bool) "cold run writes entries" true
        (after_cold.Store.writes > 0);
      let warm_setup = prepare ~store:t () in
      let pool = Pool.create ~jobs:4 () in
      let warm =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> observe ~pool warm_setup)
      in
      let after_warm = Store.stats t in
      Alcotest.(check bool) "warm run hits the store" true
        (after_warm.Store.hits > after_cold.Store.hits);
      Alcotest.(check bool) "warm == cold (bitwise)" true (warm = cold);
      (* the shared store-less fixture is the reference *)
      let bare =
        observe (Experiment.fresh_memo (Lazy.force tiny_setup))
      in
      Alcotest.(check bool) "store-less == cold (bitwise)" true (bare = cold))

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "library roundtrip" `Quick test_library_roundtrip;
          Alcotest.test_case "result roundtrip" `Slow test_result_roundtrip;
          Alcotest.test_case "paths roundtrip" `Slow test_paths_roundtrip;
          Alcotest.test_case "design sigma roundtrip" `Slow test_design_sigma_roundtrip;
        ] );
      ( "keys",
        [
          Alcotest.test_case "sensitivity" `Quick test_key_sensitivity;
          Alcotest.test_case "no aliasing" `Quick test_key_no_aliasing;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "evict and recompute" `Quick test_corruption_recovery;
          Alcotest.test_case "foreign version" `Quick test_wrong_version_is_miss;
        ] );
      ( "locking",
        [
          Alcotest.test_case "encoder death releases lock" `Quick
            test_lock_released_when_encoder_dies;
          Alcotest.test_case "stale vs live locks" `Quick
            test_stale_lock_broken_live_lock_respected;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "writers at 1/2/7" `Quick test_concurrent_writers ] );
      ( "flow",
        [
          Alcotest.test_case "cold/warm/no-store identical" `Slow
            test_flow_cold_warm_identical;
        ] );
    ]
