(* Tests for Vartune_monte: path Monte Carlo, corners, variance shares. *)

module Path_mc = Vartune_monte.Path_mc
module Corner = Vartune_process.Corner
module Timing = Vartune_sta.Timing
module Path = Vartune_sta.Path
module Netlist = Vartune_netlist.Netlist
module Library = Vartune_liberty.Library
module Convolve = Vartune_stats.Convolve
module Dist = Vartune_stats.Dist

(* an inverter-chain path extracted from a real timing run over the small
   statistical library *)
let chain_path depth =
  let lib = Lazy.force Helpers.small_statlib in
  let inv = Library.find lib "INV_2" in
  let dff = Library.find lib "DFF_1" in
  let nl = Netlist.create ~name:"mc" in
  let clk = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clk;
  let a = Netlist.add_net nl () in
  Netlist.mark_primary_input nl a;
  let last =
    List.fold_left
      (fun prev i ->
        let out = Netlist.add_net nl () in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Printf.sprintf "i%d" i)
             ~cell:inv ~inputs:[ ("A", prev) ] ~outputs:[ ("Z", out) ]);
        out)
      a
      (List.init depth Fun.id)
  in
  let q = Netlist.add_net nl () in
  ignore
    (Netlist.add_instance nl ~inst_name:"ff" ~cell:dff
       ~inputs:[ ("D", last); ("CK", clk) ]
       ~outputs:[ ("Q", q) ]);
  let timing = Timing.run (Timing.default_config ~clock_period:5.0) nl in
  List.hd (Path.worst_per_endpoint timing nl)

let cfg = { Path_mc.default_config with n = 400 }

let test_deterministic () =
  let path = chain_path 5 in
  let a = Path_mc.simulate cfg ~seed:4 path in
  let b = Path_mc.simulate cfg ~seed:4 path in
  Alcotest.(check bool) "same seed same delays" true (a.Path_mc.delays = b.Path_mc.delays);
  let c = Path_mc.simulate cfg ~seed:5 path in
  Alcotest.(check bool) "different seed differs" false (a.Path_mc.delays = c.Path_mc.delays)

let test_jobs_invariant () =
  (* per-sample split streams: the delays array is bit-identical at any
     pool size *)
  let path = chain_path 5 in
  let with_jobs jobs f =
    let pool = Vartune_util.Pool.create ~jobs () in
    Fun.protect ~finally:(fun () -> Vartune_util.Pool.shutdown pool) (fun () -> f pool)
  in
  let serial = with_jobs 1 (fun pool -> Path_mc.simulate ~pool cfg ~seed:4 path) in
  List.iter
    (fun jobs ->
      let parallel = with_jobs jobs (fun pool -> Path_mc.simulate ~pool cfg ~seed:4 path) in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        true
        (serial.Path_mc.delays = parallel.Path_mc.delays))
    [ 2; 7 ]

let test_mean_near_sta () =
  (* MC mean should land close to the STA mean (same model underneath) *)
  let path = chain_path 6 in
  let r = Path_mc.simulate cfg ~seed:11 path in
  let sta_mean = Path.mean_delay path in
  Alcotest.(check bool)
    (Printf.sprintf "MC mean %.4f vs STA %.4f" r.Path_mc.mean sta_mean)
    true
    (Float.abs (r.Path_mc.mean -. sta_mean) /. sta_mean < 0.08)

let test_sigma_near_convolution () =
  (* MC sigma should approximate the eq-10 convolution of library sigmas *)
  let path = chain_path 8 in
  let r = Path_mc.simulate cfg ~seed:13 path in
  let conv = (Convolve.of_path path).Dist.sigma in
  Alcotest.(check bool)
    (Printf.sprintf "MC sigma %.4f vs conv %.4f" r.Path_mc.sigma conv)
    true
    (Float.abs (r.Path_mc.sigma -. conv) /. conv < 0.35)

let test_no_variation_is_deterministic () =
  let path = chain_path 4 in
  let quiet = { cfg with include_local = false; include_global = false } in
  let r = Path_mc.simulate quiet ~seed:3 path in
  Alcotest.(check bool) "zero sigma" true (r.Path_mc.sigma < 1e-12)

let test_corner_sweep_scaling () =
  (* Fig 15: mean and sigma scale by (nearly) the same factor *)
  let path = chain_path 10 in
  let sweep = Path_mc.corner_sweep cfg ~seed:7 path in
  let typical = List.assoc Corner.typical sweep in
  List.iter
    (fun ((corner : Corner.t), (r : Path_mc.result)) ->
      let mean_ratio = r.Path_mc.mean /. typical.Path_mc.mean in
      let sigma_ratio = r.Path_mc.sigma /. typical.Path_mc.sigma in
      let expected = Corner.delay_factor corner in
      Alcotest.(check bool)
        (Printf.sprintf "%s mean ratio %.3f = factor %.3f" (Corner.name corner) mean_ratio
           expected)
        true
        (Float.abs (mean_ratio -. expected) < 0.02);
      Alcotest.(check bool)
        (Printf.sprintf "%s sigma tracks mean (%.3f vs %.3f)" (Corner.name corner)
           sigma_ratio mean_ratio)
        true
        (Float.abs (sigma_ratio -. mean_ratio) < 0.08))
    sweep

let test_local_share_bounds_and_decay () =
  (* Fig 16: the local share lies in (0,1] and decays with path depth *)
  let short = chain_path 3 in
  let long = chain_path 30 in
  let share_short = Path_mc.local_share cfg ~seed:19 short in
  let share_long = Path_mc.local_share cfg ~seed:19 long in
  Alcotest.(check bool) "short in range" true (share_short > 0.0 && share_short <= 1.05);
  Alcotest.(check bool) "long in range" true (share_long > 0.0 && share_long <= 1.05);
  Alcotest.(check bool)
    (Printf.sprintf "decays: %.2f (3 cells) > %.2f (30 cells)" share_short share_long)
    true (share_short > share_long)

let test_global_widens_distribution () =
  let path = chain_path 12 in
  let local_only = Path_mc.simulate { cfg with include_global = false } ~seed:23 path in
  let both = Path_mc.simulate { cfg with include_global = true } ~seed:23 path in
  Alcotest.(check bool) "global adds variance" true (both.Path_mc.sigma > local_only.Path_mc.sigma)

let test_unknown_family_rejected () =
  let path = chain_path 2 in
  (* forge a path step with a cell whose family is not in the catalog *)
  let module Cell = Vartune_liberty.Cell in
  let bogus_cell =
    Cell.make ~name:"ZZZ_1" ~family:"ZZZ" ~drive_strength:1 ~kind:Cell.Combinational
      ~area:1.0 ~pins:[] ()
  in
  let step = { (List.hd path.Path.steps) with Path.cell = bogus_cell } in
  let bogus = { path with Path.steps = [ step ] } in
  Alcotest.(check bool) "invalid family rejected" true
    (try
       ignore (Path_mc.simulate cfg ~seed:1 bogus);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "monte"
    [
      ( "path_mc",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "pool-size invariant" `Quick test_jobs_invariant;
          Alcotest.test_case "mean near STA" `Quick test_mean_near_sta;
          Alcotest.test_case "sigma near convolution" `Quick test_sigma_near_convolution;
          Alcotest.test_case "no variation" `Quick test_no_variation_is_deterministic;
          Alcotest.test_case "corner scaling (Fig 15)" `Quick test_corner_sweep_scaling;
          Alcotest.test_case "local share decay (Fig 16)" `Quick test_local_share_bounds_and_decay;
          Alcotest.test_case "global widens" `Quick test_global_widens_distribution;
          Alcotest.test_case "unknown family" `Quick test_unknown_family_rejected;
        ] );
    ]
