(* Tests for Vartune_statlib: the entry-wise statistical merge of
   Section IV / Fig 2. *)

module Statistical = Vartune_statlib.Statistical
module Characterize = Vartune_charlib.Characterize
module Sampler = Vartune_charlib.Sampler
module Delay_model = Vartune_charlib.Delay_model
module Catalog = Vartune_stdcell.Catalog
module Corner = Vartune_process.Corner
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc
module Lut = Vartune_liberty.Lut
module Stat = Vartune_util.Stat

let config = Characterize.default_config
let mismatch = Mismatch.default
let inv_only = List.filter_map Catalog.find [ "INV" ]

let sample index =
  Sampler.sample_library config ~mismatch ~seed:21 ~index ~specs:inv_only ()

let first_arc lib name = List.hd (Cell.arcs (Library.find lib name))

let test_merge_matches_manual () =
  (* Welford accumulation must equal a direct mean/stddev over samples *)
  let n = 8 in
  let libs = List.init n sample in
  let merged = Statistical.of_libraries libs in
  let samples_at i j =
    Array.of_list (List.map (fun lib -> Lut.get (first_arc lib "INV_2").Arc.rise_delay i j) libs)
  in
  let merged_arc = first_arc merged "INV_2" in
  let sigma_lut = Option.get merged_arc.Arc.rise_delay_sigma in
  for i = 0 to 7 do
    for j = 0 to 7 do
      let values = samples_at i j in
      Helpers.check_float ~eps:1e-9 "mean entry" (Stat.mean values)
        (Lut.get merged_arc.Arc.rise_delay i j);
      Helpers.check_float ~eps:1e-9 "sigma entry" (Stat.stddev values) (Lut.get sigma_lut i j)
    done
  done

let test_stream_equals_list () =
  let n = 6 in
  let by_list = Statistical.of_libraries (List.init n sample) in
  let by_stream = Statistical.of_stream ~n sample in
  List.iter2
    (fun (a : Cell.t) (b : Cell.t) ->
      List.iter2
        (fun (x : Arc.t) (y : Arc.t) ->
          Alcotest.(check bool) "mean tables" true
            (Lut.equal ~eps:1e-12 x.Arc.rise_delay y.Arc.rise_delay);
          Alcotest.(check bool) "sigma tables" true
            (Lut.equal ~eps:1e-12
               (Option.get x.Arc.rise_delay_sigma)
               (Option.get y.Arc.rise_delay_sigma)))
        (Cell.arcs a) (Cell.arcs b))
    (Library.cells by_list) (Library.cells by_stream)

let test_is_statistical () =
  let merged = Statistical.of_stream ~n:3 sample in
  Alcotest.(check bool) "statistical" true (Statistical.is_statistical merged);
  let nominal = Characterize.library config inv_only in
  Alcotest.(check bool) "nominal is not" false (Statistical.is_statistical nominal)

let test_merge_rejects_empty_and_mismatch () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Statistical.of_libraries []);
       false
     with Invalid_argument _ -> true);
  let a = sample 0 in
  let other =
    Characterize.library config (List.filter_map Catalog.find [ "ND2" ])
  in
  Alcotest.(check bool) "structure mismatch rejected" true
    (try
       ignore (Statistical.of_libraries [ a; other ]);
       false
     with Invalid_argument _ -> true)

let test_sigma_close_to_analytic () =
  (* the merged sigma approximates the closed-form model sigma; with
     N = 40 the sampling error of a stddev is ~11%, test at 4 sigma *)
  let n = 40 in
  let merged = Statistical.build config ~mismatch ~seed:3 ~n ~specs:inv_only () in
  let spec = Option.get (Catalog.find "INV") in
  let arc = first_arc merged "INV_4" in
  let sigma_lut = Option.get arc.Arc.rise_delay_sigma in
  let slews = Lut.slews sigma_lut and loads = Lut.loads sigma_lut in
  let total_err = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i slew ->
      Array.iteri
        (fun j load ->
          let analytic =
            Delay_model.delay_sigma config.Characterize.params spec ~mismatch ~drive:4
              ~output:"Z" ~edge:Delay_model.Rise
              ~corner_factor:(Corner.delay_factor Corner.typical)
              ~slew ~load
          in
          total_err := !total_err +. Float.abs ((Lut.get sigma_lut i j /. analytic) -. 1.0);
          incr count)
        loads)
    slews;
  let mean_err = !total_err /. float_of_int !count in
  Alcotest.(check bool)
    (Printf.sprintf "mean relative error %.3f < 0.4" mean_err)
    true (mean_err < 0.4)

let test_mean_close_to_nominal () =
  (* a mean of 40 draws lands within ~3 standard errors of nominal; the
     relative sigma at the small-load LUT corners is a few percent, so
     allow 10% *)
  let merged = Statistical.build config ~mismatch ~seed:3 ~n:40 ~specs:inv_only () in
  let nominal = Characterize.library config inv_only in
  let m = (first_arc merged "INV_4").Arc.rise_delay in
  let o = (first_arc nominal "INV_4").Arc.rise_delay in
  for i = 0 to 7 do
    for j = 0 to 7 do
      let rel = Float.abs ((Lut.get m i j /. Lut.get o i j) -. 1.0) in
      Alcotest.(check bool) "mean within 10%" true (rel < 0.10)
    done
  done

let libraries_bit_identical a b =
  List.for_all2
    (fun (x : Cell.t) (y : Cell.t) ->
      x.Cell.name = y.Cell.name
      && List.for_all2
           (fun (p : Arc.t) (q : Arc.t) ->
             let same_opt u v =
               match (u, v) with
               | None, None -> true
               | Some l, Some r -> Lut.equal ~eps:0.0 l r
               | _ -> false
             in
             Lut.equal ~eps:0.0 p.Arc.rise_delay q.Arc.rise_delay
             && Lut.equal ~eps:0.0 p.Arc.fall_delay q.Arc.fall_delay
             && Lut.equal ~eps:0.0 p.Arc.rise_transition q.Arc.rise_transition
             && Lut.equal ~eps:0.0 p.Arc.fall_transition q.Arc.fall_transition
             && same_opt p.Arc.rise_delay_sigma q.Arc.rise_delay_sigma
             && same_opt p.Arc.fall_delay_sigma q.Arc.fall_delay_sigma)
           (Cell.arcs x) (Cell.arcs y))
    (Library.cells a) (Library.cells b)

let test_build_jobs_invariant =
  (* the tentpole determinism guarantee: every mean and sigma LUT entry
     of the parallel build is bit-for-bit the serial build's, for any
     job count, seed and N *)
  Helpers.qtest ~count:5 "build identical for jobs 1/2/7"
    QCheck2.Gen.(pair (int_range 0 10_000) (oneofl [ 3; 13; 50 ]))
    (fun (seed, n) ->
      let build pool =
        Statistical.build ~pool config ~mismatch ~seed ~n ~specs:inv_only ()
      in
      let with_jobs jobs f =
        let pool = Vartune_util.Pool.create ~jobs () in
        Fun.protect ~finally:(fun () -> Vartune_util.Pool.shutdown pool) (fun () -> f pool)
      in
      let serial = with_jobs 1 build in
      List.for_all
        (fun jobs -> libraries_bit_identical serial (with_jobs jobs build))
        [ 2; 7 ])

let test_metadata_preserved () =
  let merged = Statistical.of_stream ~n:3 sample in
  let cell = Library.find merged "INV_8" in
  Alcotest.(check int) "drive" 8 cell.Cell.drive_strength;
  Alcotest.(check string) "family" "INV" cell.Cell.family;
  let nominal_cell = Library.find (Characterize.library config inv_only) "INV_8" in
  Helpers.check_float "area preserved" nominal_cell.Cell.area cell.Cell.area

let () =
  Alcotest.run "statlib"
    [
      ( "merge",
        [
          Alcotest.test_case "matches manual stats" `Quick test_merge_matches_manual;
          Alcotest.test_case "stream equals list" `Quick test_stream_equals_list;
          Alcotest.test_case "is_statistical" `Quick test_is_statistical;
          Alcotest.test_case "rejects bad input" `Quick test_merge_rejects_empty_and_mismatch;
          Alcotest.test_case "sigma near analytic" `Slow test_sigma_close_to_analytic;
          Alcotest.test_case "mean near nominal" `Slow test_mean_close_to_nominal;
          Alcotest.test_case "metadata preserved" `Quick test_metadata_preserved;
          test_build_jobs_invariant;
        ] );
    ]
