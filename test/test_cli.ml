(* Subprocess tests of the vartune CLI's typed exit codes and the
   journaled interrupt/resume cycle: usage errors (64) for malformed
   fault specs and tuning environment variables, data errors (65) for
   unparsable inputs and damaged journals, I/O errors (74) for a full
   stdout, and the checkpoint → exit 75 → resume → bit-identical-output
   contract end to end through the real binary. *)

module Library = Vartune_liberty.Library
module Printer = Vartune_liberty.Printer

(* The binary is a declared dune dep, built next to this test:
   _build/default/{test/test_cli.exe, bin/vartune.exe}.  Resolve it
   from the test's own path so the suite works from any cwd. *)
let exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "vartune.exe")

let temp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "vartune_test_cli_%d" (Unix.getpid ()))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let in_temp name =
  mkdir_p temp_root;
  Filename.concat temp_root name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Runs the vartune binary through the shell (for env assignments and
   redirections), returning the exit code; stdout+stderr land in
   [capture] when given, else /dev/null. *)
let vartune ?(env = []) ?capture ?(stdout_to = "") args =
  let out =
    match (capture, stdout_to) with
    | Some path, _ -> Printf.sprintf "> %s 2>&1" (Filename.quote path)
    | None, "" -> "> /dev/null 2>&1"
    | None, dest -> Printf.sprintf "> %s 2> /dev/null" dest
  in
  let assigns =
    String.concat " "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Filename.quote v)) env)
  in
  let cmd =
    Printf.sprintf "%s %s %s %s" assigns (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      out
  in
  Sys.command cmd

let check_exit name expected code = Alcotest.(check int) name expected code

(* ------------------------------------------------------------------ *)
(* Typed exit codes                                                    *)
(* ------------------------------------------------------------------ *)

let test_usage_errors () =
  check_exit "malformed --faults spec exits 64" 64
    (vartune [ "journal"; in_temp "none"; "--faults"; "bogus=1" ]);
  check_exit "unknown fault point exits 64" 64
    (vartune [ "journal"; in_temp "none"; "--faults"; "write=2.0" ]);
  check_exit "negative VARTUNE_POOL_STALL_S exits 64" 64
    (vartune ~env:[ ("VARTUNE_POOL_STALL_S", "-3") ] [ "journal"; in_temp "none" ]);
  check_exit "NaN VARTUNE_POOL_STALL_S exits 64" 64
    (vartune ~env:[ ("VARTUNE_POOL_STALL_S", "nan") ] [ "journal"; in_temp "none" ]);
  check_exit "malformed VARTUNE_CKPT_BLOCKS exits 64" 64
    (vartune ~env:[ ("VARTUNE_CKPT_BLOCKS", "zero") ] [ "journal"; in_temp "none" ]);
  check_exit "non-positive VARTUNE_STOP_AFTER_BLOCKS exits 64" 64
    (vartune ~env:[ ("VARTUNE_STOP_AFTER_BLOCKS", "0") ] [ "journal"; in_temp "none" ])

let test_data_error () =
  let bad = in_temp "garbage.lib" in
  write_file bad "this is not a liberty file {";
  check_exit "unparsable library exits 65" 65 (vartune [ "parse"; bad ])

let tiny_lib_path () =
  let path = in_temp "tiny.lib" in
  Printer.write_file path (Library.make ~name:"tiny" ~corner:"tc" ~cells:[]);
  path

let test_io_error_full_stdout () =
  if Sys.file_exists "/dev/full" then begin
    let tiny = tiny_lib_path () in
    check_exit "write to full stdout exits 74" 74
      (vartune ~stdout_to:"/dev/full" [ "parse"; tiny ])
  end

let test_parse_ok () =
  let tiny = tiny_lib_path () in
  check_exit "well-formed library parses" 0 (vartune [ "parse"; tiny ])

let test_resume_damaged_journal () =
  let no_journal = in_temp "empty_run" in
  mkdir_p no_journal;
  check_exit "resume without a journal exits 65" 65
    (vartune [ "resume"; no_journal; "--no-store" ]);
  let corrupt = in_temp "corrupt_run" in
  mkdir_p corrupt;
  write_file (Filename.concat corrupt "journal.vtj") "VTJRNL01 not really a journal";
  check_exit "resume of a corrupt journal exits 65" 65
    (vartune [ "resume"; corrupt; "--no-store" ]);
  check_exit "journal listing of a corrupt journal exits 65" 65
    (vartune [ "journal"; corrupt ])

(* ------------------------------------------------------------------ *)
(* Interrupt / resume through the real binary                          *)
(* ------------------------------------------------------------------ *)

let test_statlib_interrupt_resume () =
  let rd = in_temp "run" and rd_ref = in_temp "run_ref" in
  let common = [ "-n"; "8"; "--jobs"; "1"; "--no-store" ] in
  (* deterministic interrupt: stop after the first checkpointed block *)
  check_exit "interrupted run exits 75" 75
    (vartune
       ~env:[ ("VARTUNE_STOP_AFTER_BLOCKS", "1"); ("VARTUNE_CKPT_BLOCKS", "1") ]
       ([ "statlib"; "--run-dir"; rd ] @ common));
  let listing = in_temp "journal.txt" in
  check_exit "journal listing validates" 0 (vartune ~capture:listing [ "journal"; rd ]);
  let lines = String.split_on_char '\n' (read_file listing) in
  Alcotest.(check bool)
    "journal records a checkpoint" true
    (List.exists (fun l -> String.length l >= 10 && String.sub l 0 10 = "checkpoint") lines);
  check_exit "resume completes" 0 (vartune ([ "resume"; rd ] @ common));
  check_exit "uninterrupted reference run" 0
    (vartune ([ "statlib"; "--run-dir"; rd_ref ] @ common));
  Alcotest.(check string)
    "resumed statlib.lib bit-identical to uninterrupted"
    (read_file (Filename.concat rd_ref "statlib.lib"))
    (read_file (Filename.concat rd "statlib.lib"));
  Alcotest.(check string)
    "resumed report.txt identical to uninterrupted"
    (read_file (Filename.concat rd_ref "report.txt"))
    (read_file (Filename.concat rd "report.txt"))

(* ------------------------------------------------------------------ *)
(* Overload drain through the real binary                              *)
(* ------------------------------------------------------------------ *)

module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Client = Vartune_serve.Client
module Json = Vartune_obs.Json

(* SIGTERM with the pipeline full: one request executing (stretched by
   the pinned delay fault), two queued behind the single worker.  The
   daemon must answer the in-flight request with its real result, shed
   both queued ones with typed code-75 replies before the socket file
   disappears, and itself exit 75 — no client left hanging. *)
let test_serve_sigterm_drain_under_load () =
  let socket = in_temp "overload.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let env = Array.append (Unix.environment ()) [| "VARTUNE_FAULTS=delay=1.0:3" |] in
  let pid =
    Unix.create_process_env exe
      [| exe; "serve"; "--socket"; socket; "--serve-workers"; "1"; "--queue-cap"; "4" |]
      env Unix.stdin dev_null dev_null
  in
  Unix.close dev_null;
  let deadline = Unix.gettimeofday () +. 30.0 in
  while not (Sys.file_exists socket) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "daemon bound its socket" true (Sys.file_exists socket);
  let results = Array.make 3 None in
  let fire i seed =
    Thread.create
      (fun () ->
        let client = Client.connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            results.(i) <-
              Some (Client.request client (Request.Statlib { Request.seed; samples = 2 }))))
      ()
  in
  (* GET health is answered inline even under overload, so it is the
     probe for the daemon's internal queue state. *)
  let health_field field =
    let client = Client.connect socket in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    match Json.parse (Client.get client "health") with
    | Ok json -> (
      match Json.member field json with Some (Json.Number n) -> int_of_float n | _ -> 0)
    | Error _ -> 0
  in
  let wait_for field n =
    let deadline = Unix.gettimeofday () +. 30.0 in
    let rec go () =
      if health_field field >= n then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Unix.sleepf 0.02;
        go ()
      end
    in
    go ()
  in
  let ta = fire 0 300 in
  Alcotest.(check bool) "one request reached the worker" true (wait_for "active" 1);
  let tb = fire 1 301 in
  let tc = fire 2 302 in
  Alcotest.(check bool) "two requests queued behind it" true (wait_for "queued" 2);
  Unix.kill pid Sys.sigterm;
  List.iter Thread.join [ ta; tb; tc ];
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> check_exit "SIGTERM drains to exit 75" 75 code
  | _, Unix.WSIGNALED s -> Alcotest.failf "daemon killed by signal %d instead of draining" s
  | _, Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped unexpectedly");
  Alcotest.(check bool) "socket file removed on drain" false (Sys.file_exists socket);
  let resp tag i =
    match results.(i) with
    | Some (Ok r) -> r
    | Some (Error e) -> Alcotest.failf "%s response unreadable: %s" tag e
    | None -> Alcotest.failf "%s request got no reply" tag
  in
  Alcotest.(check int) "in-flight request answered with its result" 0
    (resp "in-flight" 0).Response.code;
  List.iter
    (fun (tag, i) ->
      let r = resp tag i in
      Alcotest.(check int) (tag ^ " shed with 75") 75 r.Response.code;
      Alcotest.(check bool)
        (tag ^ " carries a retry hint")
        true
        (r.Response.retry_after_s <> None))
    [ ("queued B", 1); ("queued C", 2) ]

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "usage errors (64)" `Quick test_usage_errors;
          Alcotest.test_case "data error (65)" `Quick test_data_error;
          Alcotest.test_case "full stdout (74)" `Quick test_io_error_full_stdout;
          Alcotest.test_case "parse ok (0)" `Quick test_parse_ok;
          Alcotest.test_case "damaged journal (65)" `Quick test_resume_damaged_journal;
        ] );
      ( "resume",
        [
          Alcotest.test_case "statlib interrupt/resume" `Slow test_statlib_interrupt_resume;
        ] );
      ( "serve",
        [
          Alcotest.test_case "SIGTERM drain under load" `Slow
            test_serve_sigterm_drain_under_load;
        ] );
    ]
