(* Tests for Vartune_synth: Constraints, Choice, Mapper (including
   functional equivalence against the IR), Sizer and Synthesis. *)

module Ir = Vartune_rtl.Ir
module Word = Vartune_rtl.Word
module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Constraints = Vartune_synth.Constraints
module Choice = Vartune_synth.Choice
module Mapper = Vartune_synth.Mapper
module Sizer = Vartune_synth.Sizer
module Synthesis = Vartune_synth.Synthesis
module Timing = Vartune_sta.Timing
module Restrict = Vartune_tuning.Restrict
module Characterize = Vartune_charlib.Characterize

(* mapping needs the full catalog (FA1, MU2I, B-variants, ...) *)
let full_lib = lazy (Characterize.nominal Characterize.default_config)

let cons = Constraints.make ~clock_period:5.0 ()

(* ----------------------------- Constraints -------------------------- *)

let test_constraints_no_restrictions () =
  let lib = Lazy.force full_lib in
  let inv = Library.find lib "INV_1" in
  Alcotest.(check bool) "allows" true (Constraints.allows cons ~cell:inv ~slew:0.5 ~load:0.01);
  Alcotest.(check bool) "usable" true (Constraints.usable cons inv);
  Alcotest.(check bool) "load max" true (Constraints.window_load_max cons inv = infinity)

let test_constraints_with_window () =
  let lib = Lazy.force full_lib in
  let inv = Library.find lib "INV_1" in
  let table = Restrict.empty_table () in
  Restrict.set table ~cell:"INV_1" ~pin:"Z"
    (Restrict.Window { Restrict.slew_min = 0.0; slew_max = 0.2; load_min = 0.0; load_max = 0.005 });
  let rcons = Constraints.make ~clock_period:5.0 ~restrictions:table () in
  Alcotest.(check bool) "inside" true (Constraints.allows rcons ~cell:inv ~slew:0.1 ~load:0.004);
  Alcotest.(check bool) "slew out" false (Constraints.allows rcons ~cell:inv ~slew:0.3 ~load:0.004);
  Alcotest.(check bool) "load out" false (Constraints.allows rcons ~cell:inv ~slew:0.1 ~load:0.006);
  Helpers.check_float "window load max" 0.005 (Constraints.window_load_max rcons inv);
  Restrict.set table ~cell:"INV_1" ~pin:"Z" Restrict.Unusable;
  Alcotest.(check bool) "unusable" false (Constraints.usable rcons inv)

(* ------------------------------- Choice ------------------------------ *)

let test_choice_pick_smallest_fitting () =
  let lib = Lazy.force full_lib in
  let c = Choice.pick cons lib ~family:"INV" ~load:0.001 ~slew:0.1 in
  Alcotest.(check string) "smallest" "INV_1" c.Cell.name;
  let big = Choice.pick cons lib ~family:"INV" ~load:0.1 ~slew:0.1 in
  Alcotest.(check bool) "bigger drive for big load" true (big.Cell.drive_strength >= 9)

let test_choice_up_down () =
  let lib = Lazy.force full_lib in
  let inv2 = Library.find lib "INV_2" in
  (match Choice.upsize cons lib inv2 ~load:0.002 ~slew:0.1 with
  | Some c -> Alcotest.(check string) "next up" "INV_3" c.Cell.name
  | None -> Alcotest.fail "upsize");
  (match Choice.downsize cons lib inv2 ~load:0.002 ~slew:0.1 with
  | Some c -> Alcotest.(check string) "next down" "INV_1" c.Cell.name
  | None -> Alcotest.fail "downsize");
  let inv32 = Library.find lib "INV_32" in
  Alcotest.(check bool) "top of ladder" true
    (Choice.upsize cons lib inv32 ~load:0.002 ~slew:0.1 = None);
  let inv1 = Library.find lib "INV_1" in
  Alcotest.(check bool) "bottom of ladder" true
    (Choice.downsize cons lib inv1 ~load:0.002 ~slew:0.1 = None)

let test_choice_respects_window () =
  let lib = Lazy.force full_lib in
  let table = Restrict.empty_table () in
  (* forbid INV_1 entirely: picking must skip to INV_2 *)
  Restrict.set table ~cell:"INV_1" ~pin:"Z" Restrict.Unusable;
  let rcons = Constraints.make ~clock_period:5.0 ~restrictions:table () in
  let c = Choice.pick rcons lib ~family:"INV" ~load:0.001 ~slew:0.1 in
  Alcotest.(check string) "skips unusable" "INV_2" c.Cell.name

(* ------------------------------- Mapper ------------------------------ *)

(* random combinational IR + evaluation-based equivalence *)
let random_ir seed =
  let module Rng = Vartune_util.Rng in
  let rng = Rng.create seed in
  let g = Ir.create ~name:"rand" in
  let a = Word.inputs g ~prefix:"a" ~width:4 in
  let b = Word.inputs g ~prefix:"b" ~width:4 in
  let sum, carry = Word.add g a b in
  let prod = Word.multiply g (Array.sub a 0 2) (Array.sub b 0 2) in
  let cmp = Word.less_than g a b in
  let sel = Word.mux g ~sel:cmp sum (Word.logxor g a b) in
  Word.outputs g ~prefix:"sum" sel;
  Word.outputs g ~prefix:"prod" prod;
  Ir.output g "carry" carry;
  Ir.output g "nz" (Word.reduce_or g a);
  (* a few random extra gates for pattern variety *)
  for _ = 1 to 10 do
    let x = a.(Rng.int rng 4) and y = b.(Rng.int rng 4) in
    Ir.output g (Printf.sprintf "r%d" (Rng.int rng 100000))
      (Ir.not_ g (Ir.and2 g x (Ir.or2 g y (Ir.xor2 g x y))))
  done;
  g

let test_mapper_validates () =
  let lib = Lazy.force full_lib in
  let nl = Mapper.map cons lib (random_ir 1) in
  Alcotest.(check bool) "valid netlist" true (Check.validate nl = Ok ())

let test_mapper_equivalence =
  Helpers.qtest ~count:60 "mapped netlist == IR semantics"
    QCheck2.Gen.(pair (int_range 0 10) (int_range 0 65535))
    (fun (seed, vector) ->
      let lib = Lazy.force full_lib in
      let g = random_ir seed in
      let nl = Mapper.map cons lib g in
      (* primary input order in the netlist follows Ir.inputs order *)
      let input_names = List.map fst (Ir.inputs g) in
      let assignment =
        List.mapi (fun i name -> (name, (vector lsr i) land 1 = 1)) input_names
      in
      let ir_out = Helpers.eval_ir_outputs g ~inputs:assignment in
      let nl_out = Helpers.eval_netlist nl ~input_values:(List.map snd assignment) in
      (* netlist POs are marked in Ir.outputs order *)
      List.for_all2 (fun (_, expect) got -> expect = got) ir_out nl_out)

let test_mapper_equivalence_delay_style =
  Helpers.qtest ~count:30 "delay-style mapping equivalence"
    QCheck2.Gen.(pair (int_range 0 5) (int_range 0 65535))
    (fun (seed, vector) ->
      let lib = Lazy.force full_lib in
      let g = random_ir seed in
      let nl = Mapper.map ~style:Mapper.Delay cons lib g in
      let input_names = List.map fst (Ir.inputs g) in
      let assignment =
        List.mapi (fun i name -> (name, (vector lsr i) land 1 = 1)) input_names
      in
      let ir_out = Helpers.eval_ir_outputs g ~inputs:assignment in
      let nl_out = Helpers.eval_netlist nl ~input_values:(List.map snd assignment) in
      List.for_all2 (fun (_, expect) got -> expect = got) ir_out nl_out)

let family_used nl family =
  List.exists (fun (name, _) -> name = family) (Netlist.family_usage nl)

let test_mapper_patterns () =
  let lib = Lazy.force full_lib in
  (* NAND absorption: out = !(a & b) must become a single ND2 *)
  let g = Ir.create ~name:"pat" in
  let a = Ir.input g "a" and b = Ir.input g "b" in
  Ir.output g "nand" (Ir.not_ g (Ir.and2 g a b));
  let nl = Mapper.map cons lib g in
  Alcotest.(check bool) "ND2 used" true (family_used nl "ND2");
  Alcotest.(check bool) "no AN2" false (family_used nl "AN2");
  Alcotest.(check int) "single cell" 1 (Netlist.instance_count nl)

let test_mapper_demorgan () =
  let lib = Lazy.force full_lib in
  (* !a & !b = NR2(a,b) when the inverters are single-use *)
  let g = Ir.create ~name:"dm" in
  let a = Ir.input g "a" and b = Ir.input g "b" in
  Ir.output g "nor" (Ir.and2 g (Ir.not_ g a) (Ir.not_ g b));
  let nl = Mapper.map cons lib g in
  Alcotest.(check bool) "NR2 used" true (family_used nl "NR2");
  Alcotest.(check int) "single cell" 1 (Netlist.instance_count nl)

let test_mapper_bubble () =
  let lib = Lazy.force full_lib in
  (* a & !b = NR2B *)
  let g = Ir.create ~name:"bub" in
  let a = Ir.input g "a" and b = Ir.input g "b" in
  Ir.output g "z" (Ir.and2 g a (Ir.not_ g b));
  let nl = Mapper.map cons lib g in
  Alcotest.(check bool) "NR2B used" true (family_used nl "NR2B");
  Alcotest.(check int) "single cell" 1 (Netlist.instance_count nl)

let test_mapper_fa_fusion () =
  let lib = Lazy.force full_lib in
  let g = Ir.create ~name:"fa" in
  let a = Ir.input g "a" and b = Ir.input g "b" and c = Ir.input g "c" in
  Ir.output g "s" (Ir.xor3 g a b c);
  Ir.output g "co" (Ir.maj3 g a b c);
  let area_nl = Mapper.map ~style:Mapper.Area cons lib g in
  Alcotest.(check bool) "FA1 fused" true (family_used area_nl "FA1");
  Alcotest.(check int) "one cell" 1 (Netlist.instance_count area_nl);
  let delay_nl = Mapper.map ~style:Mapper.Delay cons lib g in
  Alcotest.(check bool) "no fusion in delay style" false (family_used delay_nl "FA1");
  Alcotest.(check bool) "XO3+MAJ3 instead" true
    (family_used delay_nl "XO3" && family_used delay_nl "MAJ3")

let test_mapper_tree_collapse () =
  let lib = Lazy.force full_lib in
  (* !(a&b&c&d) should become one ND4 *)
  let g = Ir.create ~name:"tree" in
  let a = Ir.input g "a" and b = Ir.input g "b" in
  let c = Ir.input g "c" and d = Ir.input g "d" in
  Ir.output g "z" (Ir.not_ g (Ir.and2 g (Ir.and2 g a b) (Ir.and2 g c d)));
  let nl = Mapper.map cons lib g in
  Alcotest.(check bool) "ND4 used" true (family_used nl "ND4");
  Alcotest.(check int) "one cell" 1 (Netlist.instance_count nl)

let test_mapper_dead_logic_dropped () =
  let lib = Lazy.force full_lib in
  let g = Ir.create ~name:"dead" in
  let a = Ir.input g "a" and b = Ir.input g "b" in
  ignore (Ir.xor2 g a b) (* dead *);
  Ir.output g "z" (Ir.and2 g a b);
  let nl = Mapper.map cons lib g in
  Alcotest.(check bool) "no XO2" false (family_used nl "XO2");
  Alcotest.(check int) "one live cell" 1 (Netlist.instance_count nl)

let test_mapper_sequential () =
  let lib = Lazy.force full_lib in
  let g = Ir.create ~name:"seq" in
  let a = Ir.input g "a" in
  let q = Ir.ff g ~d:(Ir.not_ g a) () in
  Ir.output g "q" q;
  let nl = Mapper.map cons lib g in
  Alcotest.(check bool) "DFF used" true (family_used nl "DFF");
  Alcotest.(check bool) "clock set" true (Netlist.clock nl <> None);
  Alcotest.(check bool) "valid" true (Check.validate nl = Ok ())

(* ----------------------------- Sizer/Synthesis ----------------------- *)

let small_design () =
  let g = Ir.create ~name:"small" in
  let a = Word.inputs g ~prefix:"a" ~width:8 in
  let b = Word.inputs g ~prefix:"b" ~width:8 in
  let sum, _ = Word.add g a b in
  let regged = Word.reg g sum in
  Word.outputs g ~prefix:"s" regged;
  g

let test_synthesis_meets_relaxed_timing () =
  let lib = Lazy.force full_lib in
  let r = Synthesis.run (Constraints.make ~clock_period:8.0 ()) lib (small_design ()) in
  Alcotest.(check bool) "feasible" true r.Synthesis.feasible;
  Alcotest.(check bool) "area positive" true (r.Synthesis.area > 0.0);
  Alcotest.(check bool) "netlist valid" true (Check.validate r.Synthesis.netlist = Ok ())

let test_synthesis_tighter_clock_not_larger_slack () =
  let lib = Lazy.force full_lib in
  let relaxed = Synthesis.run (Constraints.make ~clock_period:8.0 ()) lib (small_design ()) in
  let tight = Synthesis.run (Constraints.make ~clock_period:1.0 ()) lib (small_design ()) in
  Alcotest.(check bool) "tight slack smaller" true
    (tight.Synthesis.worst_slack < relaxed.Synthesis.worst_slack)

let test_synthesis_infeasible_reported () =
  let lib = Lazy.force full_lib in
  let r = Synthesis.run (Constraints.make ~clock_period:0.35 ()) lib (small_design ()) in
  Alcotest.(check bool) "infeasible" false r.Synthesis.feasible

let test_fanout_limit_enforced () =
  (* one signal driving 64 sinks must get buffered below max_fanout *)
  let lib = Lazy.force full_lib in
  let g = Ir.create ~name:"fan" in
  let a = Ir.input g "a" and b = Ir.input g "b" in
  let x = Ir.and2 g a b in
  for i = 0 to 63 do
    Ir.output g (Printf.sprintf "o%d" i) (Ir.ff g ~d:(Ir.xor2 g x (if i mod 2 = 0 then a else b)) ())
  done;
  let max_fanout = 16 in
  let c = Constraints.make ~clock_period:6.0 ~max_fanout () in
  let r = Synthesis.run c lib g in
  let ok = ref true in
  Netlist.iter_nets r.Synthesis.netlist ~f:(fun net ->
      if Some net.Netlist.net_id <> Netlist.clock r.Synthesis.netlist then
        if List.length net.Netlist.sinks > max_fanout then ok := false);
  Alcotest.(check bool) "all fanouts within limit" true !ok;
  Alcotest.(check bool) "buffers inserted" true (r.Synthesis.sizer.Sizer.buffered > 0)

let test_restrictions_honoured () =
  let lib = Lazy.force Helpers.small_statlib in
  (* build restrictions with a moderate ceiling over the small library *)
  let tuning =
    { Vartune_tuning.Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
      criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02 }
  in
  let table = Vartune_tuning.Tuning_method.restrictions tuning lib in
  let c = Constraints.make ~clock_period:8.0 ~restrictions:table () in
  let r = Synthesis.run c lib (small_design ()) in
  Alcotest.(check bool) "feasible" true r.Synthesis.feasible;
  Alcotest.(check int) "no window violations" 0 r.Synthesis.sizer.Sizer.window_violations

(* Optimisation (resizing, buffering, decomposition) must preserve the
   logic function.  A tight clock forces the sizer through all of its
   moves; we then re-check the synthesised netlist against IR semantics. *)
let test_synthesis_preserves_function =
  Helpers.qtest ~count:25 "optimised netlist == IR semantics"
    QCheck2.Gen.(pair (int_range 0 6) (int_range 0 65535))
    (fun (seed, vector) ->
      let lib = Lazy.force full_lib in
      let g = random_ir seed in
      (* clock tight enough to trigger upsizing + decomposition *)
      let r = Synthesis.run (Constraints.make ~clock_period:0.8 ()) lib g in
      let input_names = List.map fst (Ir.inputs g) in
      let assignment =
        List.mapi (fun i name -> (name, (vector lsr i) land 1 = 1)) input_names
      in
      let ir_out = Helpers.eval_ir_outputs g ~inputs:assignment in
      let nl_out =
        Helpers.eval_netlist r.Synthesis.netlist ~input_values:(List.map snd assignment)
      in
      List.for_all2 (fun (_, expect) got -> expect = got) ir_out nl_out)

let test_synthesis_with_windows_preserves_function =
  Helpers.qtest ~count:15 "window-restricted netlist == IR semantics"
    QCheck2.Gen.(pair (int_range 0 4) (int_range 0 65535))
    (fun (seed, vector) ->
      let lib = Lazy.force Helpers.small_statlib in
      let tuning =
        { Vartune_tuning.Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
          criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02 }
      in
      let table = Vartune_tuning.Tuning_method.restrictions tuning lib in
      let g = random_ir seed in
      let r =
        Synthesis.run (Constraints.make ~clock_period:4.0 ~restrictions:table ()) lib g
      in
      let input_names = List.map fst (Ir.inputs g) in
      let assignment =
        List.mapi (fun i name -> (name, (vector lsr i) land 1 = 1)) input_names
      in
      let ir_out = Helpers.eval_ir_outputs g ~inputs:assignment in
      let nl_out =
        Helpers.eval_netlist r.Synthesis.netlist ~input_values:(List.map snd assignment)
      in
      List.for_all2 (fun (_, expect) got -> expect = got) ir_out nl_out)

let test_verilog_of_synthesised_roundtrip =
  Helpers.qtest ~count:10 "verilog roundtrip of synthesised netlists"
    QCheck2.Gen.(int_range 0 8)
    (fun seed ->
      let module Verilog = Vartune_netlist.Verilog in
      let lib = Lazy.force full_lib in
      let g = random_ir seed in
      let r = Synthesis.run (Constraints.make ~clock_period:3.0 ()) lib g in
      let back = Verilog.parse ~library:lib (Verilog.to_string r.Synthesis.netlist) in
      Check.validate back = Ok ()
      && Netlist.instance_count back = Netlist.instance_count r.Synthesis.netlist
      && Netlist.cell_usage back = Netlist.cell_usage r.Synthesis.netlist)

(* Incremental retiming inside the sizer is an optimisation of the
   analysis only: the optimisation trajectory — every move, and with it
   the final netlist, timing and report — must be identical with it on
   and off. *)
let test_incremental_sizing_identical () =
  let lib = Lazy.force full_lib in
  let bits = Int64.bits_of_float in
  List.iter
    (fun period ->
      let cons = Constraints.make ~clock_period:period ~area_recovery:true () in
      let full = Synthesis.run ~incremental:false cons lib (small_design ()) in
      let inc = Synthesis.run ~incremental:true cons lib (small_design ()) in
      let name what = Printf.sprintf "period %.1f: %s" period what in
      Alcotest.(check bool)
        (name "worst slack bits") true
        (bits full.Synthesis.worst_slack = bits inc.Synthesis.worst_slack);
      Alcotest.(check bool)
        (name "area bits") true
        (bits full.Synthesis.area = bits inc.Synthesis.area);
      Alcotest.(check int) (name "instances") full.Synthesis.instances
        inc.Synthesis.instances;
      Alcotest.(check bool)
        (name "sizer report") true
        (full.Synthesis.sizer = inc.Synthesis.sizer);
      Alcotest.(check bool)
        (name "cell usage") true
        (Netlist.cell_usage full.Synthesis.netlist
        = Netlist.cell_usage inc.Synthesis.netlist))
    [ 8.0; 1.2 ]

let test_min_period_bisection () =
  let lib = Lazy.force full_lib in
  let p = Synthesis.min_period ~lo:0.2 ~hi:8.0 ~tolerance:0.1 lib (small_design ()) in
  Alcotest.(check bool) "in range" true (p > 0.2 && p < 8.0);
  (* feasible at the found period *)
  let r = Synthesis.run (Constraints.make ~clock_period:p ~area_recovery:false ()) lib (small_design ()) in
  Alcotest.(check bool) "feasible at min period" true r.Synthesis.feasible

let () =
  Alcotest.run "synth"
    [
      ( "constraints",
        [
          Alcotest.test_case "no restrictions" `Quick test_constraints_no_restrictions;
          Alcotest.test_case "with window" `Quick test_constraints_with_window;
        ] );
      ( "choice",
        [
          Alcotest.test_case "pick smallest" `Quick test_choice_pick_smallest_fitting;
          Alcotest.test_case "upsize/downsize" `Quick test_choice_up_down;
          Alcotest.test_case "respects windows" `Quick test_choice_respects_window;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "validates" `Quick test_mapper_validates;
          test_mapper_equivalence;
          test_mapper_equivalence_delay_style;
          Alcotest.test_case "nand absorption" `Quick test_mapper_patterns;
          Alcotest.test_case "de morgan" `Quick test_mapper_demorgan;
          Alcotest.test_case "bubble absorption" `Quick test_mapper_bubble;
          Alcotest.test_case "fa fusion" `Quick test_mapper_fa_fusion;
          Alcotest.test_case "tree collapse" `Quick test_mapper_tree_collapse;
          Alcotest.test_case "dead logic dropped" `Quick test_mapper_dead_logic_dropped;
          Alcotest.test_case "sequential" `Quick test_mapper_sequential;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "meets relaxed timing" `Quick test_synthesis_meets_relaxed_timing;
          Alcotest.test_case "clock pressure" `Quick test_synthesis_tighter_clock_not_larger_slack;
          Alcotest.test_case "infeasible reported" `Quick test_synthesis_infeasible_reported;
          Alcotest.test_case "fanout limit" `Quick test_fanout_limit_enforced;
          Alcotest.test_case "restrictions honoured" `Quick test_restrictions_honoured;
          test_synthesis_preserves_function;
          test_synthesis_with_windows_preserves_function;
          test_verilog_of_synthesised_roundtrip;
          Alcotest.test_case "incremental = full sizing" `Quick
            test_incremental_sizing_identical;
          Alcotest.test_case "min period bisection" `Slow test_min_period_bisection;
        ] );
    ]
