(* Tests for Vartune_place: Placement and Cts — the paper's future-work
   substrate. *)

module Netlist = Vartune_netlist.Netlist
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Placement = Vartune_place.Placement
module Cts = Vartune_place.Cts
module Timing = Vartune_sta.Timing
module Ir = Vartune_rtl.Ir
module Word = Vartune_rtl.Word
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints

let lib = lazy (Vartune_charlib.Characterize.nominal Vartune_charlib.Characterize.default_config)

let small_design () =
  let g = Ir.create ~name:"pl" in
  let a = Word.inputs g ~prefix:"a" ~width:8 in
  let b = Word.inputs g ~prefix:"b" ~width:8 in
  let sum, _ = Word.add g a b in
  Word.outputs g ~prefix:"s" (Word.reg g (Word.logxor g sum (Word.logand g a b)));
  g

let synthesized = lazy (Synthesis.run (Constraints.make ~clock_period:5.0 ()) (Lazy.force lib) (small_design ()))

let test_all_instances_placed () =
  let r = Lazy.force synthesized in
  let p = Placement.place r.Synthesis.netlist in
  Netlist.iter_instances r.Synthesis.netlist ~f:(fun inst ->
      let x, y = Placement.position p inst.Netlist.inst_id in
      let w, h = Placement.die p in
      Alcotest.(check bool) "inside die" true (x >= 0.0 && x <= w && y >= 0.0 && y <= h))

let test_legal_placement () =
  let r = Lazy.force synthesized in
  let p = Placement.place r.Synthesis.netlist in
  Alcotest.(check bool) "no overlaps" true (Placement.overlap_free p r.Synthesis.netlist)

let test_die_respects_utilization () =
  let r = Lazy.force synthesized in
  let nl = r.Synthesis.netlist in
  let p = Placement.place ~utilization:0.5 nl in
  let w, h = Placement.die p in
  Alcotest.(check bool) "die area >= cells/util" true
    (w *. h >= Netlist.total_area nl /. 0.5 -. 1e-6)

let test_deterministic () =
  let r = Lazy.force synthesized in
  let p1 = Placement.place r.Synthesis.netlist in
  let p2 = Placement.place r.Synthesis.netlist in
  Netlist.iter_instances r.Synthesis.netlist ~f:(fun inst ->
      Alcotest.(check bool) "same position" true
        (Placement.position p1 inst.Netlist.inst_id
        = Placement.position p2 inst.Netlist.inst_id))

let test_refinement_reduces_wirelength () =
  let r = Lazy.force synthesized in
  let rough = Placement.place ~passes:0 r.Synthesis.netlist in
  let refined = Placement.place ~passes:4 r.Synthesis.netlist in
  let w0 = Placement.total_wirelength rough r.Synthesis.netlist in
  let w4 = Placement.total_wirelength refined r.Synthesis.netlist in
  Alcotest.(check bool)
    (Printf.sprintf "refined %.0f <= rough %.0f um" w4 w0)
    true (w4 <= w0)

let test_hpwl_and_wire_caps () =
  let r = Lazy.force synthesized in
  let nl = r.Synthesis.netlist in
  let p = Placement.place nl in
  let some_net = ref (-1) in
  Netlist.iter_nets nl ~f:(fun net ->
      if !some_net < 0 && net.Netlist.driver <> None && net.Netlist.sinks <> [] then
        some_net := net.Netlist.net_id);
  let wl = Placement.hpwl p nl !some_net in
  Alcotest.(check bool) "hpwl >= 0" true (wl >= 0.0);
  Helpers.check_float ~eps:1e-9 "cap = hpwl * c"
    (0.00018 *. wl)
    (Placement.wire_caps p nl !some_net)

let test_placed_timing_runs () =
  let r = Lazy.force synthesized in
  let nl = r.Synthesis.netlist in
  let p = Placement.place nl in
  let cfg =
    { (Timing.default_config ~clock_period:5.0) with
      Timing.wire_caps = Some (Placement.wire_caps p nl) }
  in
  let placed = Timing.run cfg nl in
  let unplaced = Timing.run (Timing.default_config ~clock_period:5.0) nl in
  Alcotest.(check bool) "placed analysis completes with endpoints" true
    (List.length (Timing.endpoints placed) = List.length (Timing.endpoints unplaced))

(* -------------------------------- CTS -------------------------------- *)

let test_cts_covers_all_flops () =
  let r = Lazy.force synthesized in
  let nl = r.Synthesis.netlist in
  let p = Placement.place nl in
  let cts = Cts.synthesize p nl ~library:(Lazy.force lib) in
  let flops =
    Netlist.fold_instances nl ~init:0 ~f:(fun acc inst ->
        if Cell.is_sequential inst.Netlist.cell then acc + 1 else acc)
  in
  Alcotest.(check int) "every flop is a sink" flops cts.Cts.sinks;
  Alcotest.(check int) "insertion list covers sinks" flops
    (List.length (Cts.insertion_delays cts))

let test_cts_structure () =
  let r = Lazy.force synthesized in
  let nl = r.Synthesis.netlist in
  let p = Placement.place nl in
  let cts = Cts.synthesize ~fanout:4 p nl ~library:(Lazy.force lib) in
  Alcotest.(check bool) "buffers >= leaves" true (cts.Cts.buffers >= cts.Cts.sinks / 4);
  Alcotest.(check bool) "levels >= 1" true (cts.Cts.levels >= 1);
  Alcotest.(check bool) "skew = max - min" true
    (Float.abs (cts.Cts.skew -. (cts.Cts.max_insertion -. cts.Cts.min_insertion)) < 1e-12);
  Alcotest.(check bool) "skew non-negative" true (cts.Cts.skew >= 0.0);
  Alcotest.(check bool) "insertion positive" true (cts.Cts.min_insertion > 0.0)

let test_cts_skew_small_relative_to_insertion () =
  (* a balanced tree's skew should be a small fraction of its depth *)
  let r = Lazy.force synthesized in
  let nl = r.Synthesis.netlist in
  let p = Placement.place nl in
  let cts = Cts.synthesize p nl ~library:(Lazy.force lib) in
  Alcotest.(check bool)
    (Printf.sprintf "skew %.4f < insertion %.4f" cts.Cts.skew cts.Cts.max_insertion)
    true
    (cts.Cts.skew < cts.Cts.max_insertion)

let test_cts_requires_sequential () =
  let g = Ir.create ~name:"comb" in
  let a = Ir.input g "a" in
  Ir.output g "z" (Ir.not_ g a);
  let r = Synthesis.run (Constraints.make ~clock_period:5.0 ()) (Lazy.force lib) g in
  let p = Placement.place r.Synthesis.netlist in
  Alcotest.(check bool) "no flops rejected" true
    (try
       ignore (Cts.synthesize p r.Synthesis.netlist ~library:(Lazy.force lib));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "place"
    [
      ( "placement",
        [
          Alcotest.test_case "all placed in die" `Quick test_all_instances_placed;
          Alcotest.test_case "legal (no overlap)" `Quick test_legal_placement;
          Alcotest.test_case "utilization" `Quick test_die_respects_utilization;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "refinement helps" `Quick test_refinement_reduces_wirelength;
          Alcotest.test_case "hpwl / wire caps" `Quick test_hpwl_and_wire_caps;
          Alcotest.test_case "placed timing" `Quick test_placed_timing_runs;
        ] );
      ( "cts",
        [
          Alcotest.test_case "covers all flops" `Quick test_cts_covers_all_flops;
          Alcotest.test_case "structure" `Quick test_cts_structure;
          Alcotest.test_case "skew < insertion" `Quick test_cts_skew_small_relative_to_insertion;
          Alcotest.test_case "requires sequential" `Quick test_cts_requires_sequential;
        ] );
    ]
