(* Shared cmdliner terms for every vartune subcommand.

   One [term] carries the flags every pipeline stage understands —
   logging, worker pool, telemetry, randomness, fault injection, and
   the persistent artifact store — so a new common flag added here
   appears on all subcommands at once.  Precedence everywhere:
   command-line flag > environment variable > built-in default. *)

open Cmdliner
module Obs = Vartune_obs.Obs
module Pool = Vartune_util.Pool
module Store = Vartune_store.Store
module Fault = Vartune_fault.Fault
module Experiment = Vartune_flow.Experiment
module Request = Vartune_flow.Request
module Response = Vartune_flow.Response

let src = Logs.Src.create "vartune.cli" ~doc:"vartune command line"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  verbose : bool;
  jobs : int option;
  chunk : int option;
  trace : string option;
  metrics_out : string option;
  seed : int;
  samples : int;
  store_dir : string option;
  no_store : bool;
  faults : string option;
}

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

(* A worker pool of zero or negative size has no meaning; reject it at
   parse time with a usage error instead of letting Pool.create raise
   Invalid_argument deep in the run. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "expected a positive integer, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker-pool size for the parallel stages (default: $(b,VARTUNE_JOBS), else the \
           recommended domain count; 1 forces serial execution; 0 or negative values are \
           rejected). Output is bit-identical at any value.")

let chunk_arg =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Items batched per worker-pool task in the chunked parallel stages (default: \
           $(b,VARTUNE_POOL_CHUNK), else an automatic size of about eight tasks per \
           worker). Chunking changes dispatch granularity only; output is bit-identical \
           at any value.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace-event JSON file of the run (spans per pipeline stage, one \
           track per worker domain). Load it in Perfetto or chrome://tracing. Telemetry \
           never changes pipeline outputs.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSON summary of telemetry counters, gauges and histograms (cells \
           characterised, LUT entries merged, synthesis-cache and store hits/misses, pool \
           utilisation, ...).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let samples_arg =
  Arg.(
    value & opt int 50
    & info [ "n"; "samples" ] ~docv:"N" ~doc:"Monte-Carlo sample libraries (paper: 50).")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent artifact store directory (default: $(b,VARTUNE_STORE), else \
           \\$XDG_CACHE_HOME/vartune, else ~/.cache/vartune). Warm runs reuse stored \
           statistical libraries and synthesis results bit-identically.")

let no_store_arg =
  Arg.(
    value & flag
    & info [ "no-store" ]
        ~doc:"Disable the persistent artifact store: nothing is read or written.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject deterministic faults at the pipeline's syscall-shaped boundaries \
           (default: $(b,VARTUNE_FAULTS)). SPEC is comma-separated $(i,point=trigger) \
           items with an optional $(i,:seed) suffix, e.g. \
           $(b,write=0.25,rename=#2,worker_crash=0.1:42). Points: read, write, rename, \
           lock, fsync, worker_crash, enospc, partial_write, delay; triggers: a \
           probability in [0,1] or $(b,#N) for the N-th occurrence. Runs either complete \
           bit-identically to the fault-free run or exit non-zero with a typed error \
           ($(b,delay) only stretches service time, for overload chaos testing).")

let term =
  let make verbose jobs chunk trace metrics_out seed samples store_dir no_store faults =
    { verbose; jobs; chunk; trace; metrics_out; seed; samples; store_dir; no_store; faults }
  in
  Term.(
    const make $ verbose_arg $ jobs_arg $ chunk_arg $ trace_arg $ metrics_arg $ seed_arg
    $ samples_arg $ store_arg $ no_store_arg $ faults_arg)

(* The one flag -> Request.t bridge every subcommand shares: the common
   seed/samples flags become the request's base record, so no shim
   re-reads those flags on its own. *)
let request_term =
  Term.(
    const (fun t -> (t, { Request.seed = t.seed; samples = t.samples })) $ term)

(* Telemetry is enabled the moment either output file is requested, and
   the exporters run from at_exit so every subcommand — and every exit
   path — flushes its trace. *)
let setup_obs t =
  if t.trace <> None || t.metrics_out <> None then begin
    Obs.set_enabled true;
    (* An exception escaping at_exit aborts the remaining exit work and
       clobbers the exit status the guard chose; a telemetry file that
       cannot be written (ENOSPC, bad path) must only cost the file. *)
    let write what writer path =
      try
        writer path;
        Log.info (fun m -> m "wrote %s to %s" what path)
      with Sys_error reason | Unix.Unix_error (_, _, reason) ->
        Log.err (fun m -> m "could not write %s to %s: %s" what path reason)
    in
    at_exit (fun () ->
        Option.iter (write "Chrome trace" Obs.write_trace) t.trace;
        Option.iter (write "metrics" Obs.write_metrics) t.metrics_out)
  end

let setup_faults t =
  let spec =
    match t.faults with
    | Some s -> Some s
    | None -> (
      match Sys.getenv_opt "VARTUNE_FAULTS" with Some s when s <> "" -> Some s | _ -> None)
  in
  Option.iter
    (fun s ->
      match Fault.configure s with
      | Ok () -> ()
      | Error msg ->
        Log.err (fun m -> m "bad fault spec %S: %s" s msg);
        exit 64 (* EX_USAGE *))
    spec

(* Tuning environment variables are validated up front so a typo exits
   64 naming the offending token before any work starts, instead of an
   Invalid_argument mid-pipeline (or, worse, a silently disarmed
   knob). *)
let validate_env () =
  let fail name value msg =
    Log.err (fun m -> m "bad %s=%S: %s" name value msg);
    exit 64 (* EX_USAGE *)
  in
  (match Sys.getenv_opt "VARTUNE_POOL_STALL_S" with
  | Some v when v <> "" -> (
    match Pool.parse_stall_timeout v with
    | Ok _ -> ()
    | Error msg -> fail "VARTUNE_POOL_STALL_S" v msg)
  | _ -> ());
  (match Sys.getenv_opt "VARTUNE_POOL_CHUNK" with
  | Some v when v <> "" -> (
    match Pool.parse_chunk v with
    | Ok _ -> ()
    | Error msg -> fail "VARTUNE_POOL_CHUNK" v msg)
  | _ -> ());
  List.iter
    (fun name ->
      match Sys.getenv_opt name with
      | Some v when v <> "" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> ()
        | _ -> fail name v "expected a positive integer")
      | _ -> ())
    [ "VARTUNE_CKPT_BLOCKS"; "VARTUNE_STOP_AFTER_BLOCKS" ]

(* Logging + telemetry + fault injection + worker-pool size in one step
   so every subcommand applies --jobs before its first parallel stage. *)
let setup t =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if t.verbose then Logs.Debug else Logs.Info));
  (* With SIGPIPE at its default disposition a closed stdout (vartune
     ... | head) kills the process with a signal; ignored, the write
     fails with EPIPE, surfaces as Sys_error and exits 74 through the
     guard like any other unrecoverable I/O error. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  validate_env ();
  setup_obs t;
  setup_faults t;
  Option.iter Pool.set_default_jobs t.jobs;
  Option.iter Pool.set_default_chunk t.chunk

let store t =
  if t.no_store then None
  else begin
    let dir = Option.value t.store_dir ~default:(Store.default_dir ()) in
    let store = Store.open_dir dir in
    Log.debug (fun m -> m "artifact store at %s" dir);
    at_exit (fun () ->
        let s = Store.stats store in
        if s.Store.hits + s.Store.misses + s.Store.writes + s.Store.errors > 0 then
          Log.info (fun m ->
              m "store %s: %d hits, %d misses, %d writes, %d evictions, %d retries, %d \
                 errors%s"
                dir s.Store.hits s.Store.misses s.Store.writes s.Store.evictions
                s.Store.retries s.Store.errors
                (if s.Store.degraded then " (degraded to no-store)" else "")));
    Some store
  end

(* Every subcommand body runs under this guard: pipeline failures that
   escape the hardened layers exit with a stable, typed status an
   operator (or CI) can branch on, instead of cmdliner's generic
   backtrace-and-exit-2. *)
(* Once stdout has failed (EPIPE, ENOSPC) its buffer cannot drain, and
   every later flush — including the runtime's and Format's at_exit
   hooks — would re-raise, clobbering the typed exit status the guard
   chose.  Point fd 1 at /dev/null so those flushes succeed by
   discarding; the data was already lost. *)
let neutralise_stdout () =
  try
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.close devnull
  with Unix.Unix_error _ | Sys_error _ -> ()

let guard f =
  try
    f ();
    (* Flush inside the guard: stdout buffered against a closed or full
       pipe fails here, as a typed I/O error (74), not in the runtime's
       silent at_exit flush. *)
    flush stdout
  with exn -> (
    (try flush stdout with Sys_error _ -> neutralise_stdout ());
    match Experiment.classify_exn exn with
    | Some failure ->
      Log.err (fun m -> m "%s" (Experiment.failure_message failure));
      exit (Experiment.exit_code failure)
    | None -> raise exn)

let write_text path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

(* Lands one Response.t the way the pre-request subcommands did: a
   failure is logged and exits with its sysexits code; success prints
   the response's output bytes — unless [output] (the -o flag)
   redirects them to a file, leaving only the "wrote" line on stdout.
   [artifact_files] maps response artifact names to destination paths
   (synth's --verilog flag). *)
let deliver ?output ?(artifact_files = []) (resp : Response.t) =
  match resp.Response.error with
  | Some msg ->
    Log.err (fun m -> m "%s" msg);
    exit resp.Response.code
  | None ->
    (match output with
    | Some path ->
      write_text path resp.Response.output;
      Printf.printf "wrote %s (%s cells)\n" path
        (Option.value
           (List.assoc_opt "cells" resp.Response.meta)
           ~default:"?")
    | None -> print_string resp.Response.output);
    List.iter
      (fun (name, path) ->
        match List.assoc_opt name resp.Response.artifacts with
        | Some contents ->
          write_text path contents;
          Printf.printf "wrote %s\n" path
        | None -> ())
      artifact_files

let man =
  [
    `S "COMMON OPTIONS";
    `P
      "Options shared by every subcommand resolve with the precedence $(i,flag) > \
       $(i,environment variable) > $(i,default):";
    `I
      ( "$(b,--jobs)",
        "falls back to $(b,VARTUNE_JOBS), then the recommended domain count. Results are \
         bit-identical at any value." );
    `I
      ( "$(b,--chunk)",
        "falls back to $(b,VARTUNE_POOL_CHUNK), then an automatic size of about eight \
         tasks per worker. Batches pool-task dispatch in the chunked stages; results are \
         bit-identical at any value." );
    `I
      ( "$(b,--store)",
        "falls back to $(b,VARTUNE_STORE), then \\$XDG_CACHE_HOME/vartune, then \
         ~/.cache/vartune. $(b,--no-store) disables persistence entirely; stored and \
         store-less runs produce byte-identical reports." );
    `I ("$(b,--faults)", "falls back to $(b,VARTUNE_FAULTS); no injection by default.");
    `I ("$(b,--seed), $(b,--samples)", "built-in defaults 42 and 50 (the paper's values).");
    `I
      ( "$(b,--run-dir)",
        "makes the run journaled and resumable: progress is checkpointed to \
         $(i,DIR)/journal.vtj and $(i,DIR)/state/, SIGINT/SIGTERM stop it gracefully \
         (exit 75) and $(b,vartune resume) $(i,DIR) continues to bit-identical output. \
         $(b,VARTUNE_CKPT_BLOCKS) sets the checkpoint cadence in sample blocks \
         (default 4)." );
    `S "PROTOCOL";
    `P
      "Every subcommand constructs a typed request and runs it through the same entry \
       point the $(b,serve) daemon uses, so batch and served execution are bit-identical \
       by construction. On the wire (a unix socket, see $(b,vartune serve)) each request \
       and response is one line of JSON, newline-terminated, no embedded newlines:";
    `Pre
      "  {\"vartune\":1,\"id\":7,\"kind\":\"statlib\",\"seed\":42,\"samples\":50}\n\
      \  {\"vartune\":1,\"id\":7,\"kind\":\"statlib\",\"code\":0,\"elapsed_s\":0.61,\
       \"dedup\":false,...}";
    `P
      "$(b,vartune) is the protocol version. A reader that sees a version it does not \
       speak rejects the line with exit-65 (EX_DATAERR) semantics — an error response \
       with code 65, never a guess. The version is bumped on any change that could make \
       an old reader misinterpret a new line (field renames or semantic changes); adding \
       a new request $(i,kind) is not a bump, because unknown kinds are already rejected \
       as malformed. $(b,id) is an optional caller-chosen correlation id echoed back in \
       the response. Field order is canonical and floats render shortest-round-trip, so \
       the encoded request line doubles as the serve layer's deduplication key. \
       Responses carry the sysexits $(b,code) (see EXIT STATUS), the exact stdout bytes \
       of the equivalent subcommand in $(b,output), the content-addressed store recipe \
       ids in $(b,recipes), and named deliverables (e.g. a Verilog netlist) in \
       $(b,artifacts). The daemon also answers the plain-text lines $(b,GET metrics), \
       $(b,GET profile) and $(b,GET health) with one line of JSON each.";
    `P
      "Requests may carry two optional scheduling fields in the envelope, between \
       $(b,id) and $(b,kind): $(b,priority) ($(i,\"interactive\") or $(i,\"batch\"); \
       default by kind — report/parse/characterize are interactive, the \
       statistical-library kinds batch) and $(b,deadline_s) (a positive number of \
       seconds from receipt after which the answer is worthless; checked at admission \
       and again at dequeue). Both steer the daemon's bounded admission queue only — \
       they never change the computation, are excluded from the deduplication key, and \
       encode nothing when absent, so pre-envelope request lines are byte-identical and \
       the version is not bumped. Under overload (queue full, connection cap, expired \
       deadline, drain) the daemon sheds the request with a code-75 response whose \
       $(b,retry_after_s) field is a deterministic back-off hint; clients should wait \
       at least that long before retrying, as $(b,vartune loadgen) and the bundled \
       client's retry ladder do.";
    `S "EXIT STATUS";
    `P "Pipeline failures map to sysexits.h-style codes:";
    `I
      ( "64",
        "usage error (bad flag value, malformed $(b,--faults) spec, malformed \
         $(b,VARTUNE_POOL_STALL_S)/$(b,VARTUNE_POOL_CHUNK)/$(b,VARTUNE_CKPT_BLOCKS) \
         value)." );
    `I
      ( "65",
        "data error: a Liberty file failed to lex or parse, or a run journal is \
         truncated or corrupt." );
    `I ("70", "internal error (a bug; includes an injected fault escaping its layer).");
    `I ("74", "unrecoverable I/O error (including a closed or full stdout).");
    `I
      ( "75",
        "temporary failure: worker domains kept crashing or stalled — retrying may \
         succeed — or a journaled run was interrupted after a checkpoint; \
         $(b,vartune resume) continues it." );
  ]
