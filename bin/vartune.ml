(* vartune — library tuning for variability tolerant designs.

   Command-line front end over the vartune libraries: characterise the
   catalog, build statistical libraries, extract tuning restrictions,
   synthesise the evaluation design and regenerate the paper's
   tables/figures.

   Flags shared by all subcommands (logging, pool, telemetry, seed,
   samples, artifact store) live in Common_opts; each subcommand only
   declares what is specific to it. *)

open Cmdliner

module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Printer = Vartune_liberty.Printer
module Parser = Vartune_liberty.Parser
module Library = Vartune_liberty.Library
module Mismatch = Vartune_process.Mismatch
module Synthesis = Vartune_synth.Synthesis
module Path = Vartune_sta.Path
module Design_sigma = Vartune_stats.Design_sigma
module Tuning_method = Vartune_tuning.Tuning_method
module Restrict = Vartune_tuning.Restrict
module Timing_report = Vartune_sta.Timing_report
module Power = Vartune_sta.Power
module Verilog = Vartune_netlist.Verilog
module Experiment = Vartune_flow.Experiment
module Figures = Vartune_flow.Figures
module Report = Vartune_flow.Report
module Request = Vartune_flow.Request
module Run = Vartune_flow.Run
module Run_request = Vartune_flow.Run_request
module Run_report = Vartune_flow.Run_report
module Serve = Vartune_serve.Serve
module Client = Vartune_serve.Client
module Loadgen = Vartune_serve.Loadgen
module Bench_diff = Vartune_obs.Bench_diff
module Journal = Vartune_journal.Journal
module Log = Common_opts.Log

let default_method =
  { Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
    criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02 }

let output_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the library to $(docv) instead of stdout.")

let run_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "run-dir" ] ~docv:"DIR"
        ~doc:
          "Journal the run under $(docv): progress is checkpointed so SIGINT/SIGTERM \
           stop it gracefully (exit 75) and $(b,vartune resume) $(docv) continues to \
           bit-identical output.")

let cmd_info name ~doc = Cmd.info name ~doc ~man:Common_opts.man

(* Every subcommand below is a thin shim: construct a Request.t from
   the flags and run it through the same Run_request.exec entry point
   the serve daemon uses, so batch and served execution cannot drift.
   Unclassified exceptions re-raise into the guard, exactly as before
   the request layer existed. *)
let exec_and_deliver ?output ?artifact_files (common : Common_opts.t) req =
  let store = Common_opts.store common in
  Common_opts.deliver ?output ?artifact_files
    (Run_request.exec ?store ~reraise_unclassified:true req)

(* ------------------------------------------------------------------ *)

let characterize_cmd =
  let run (common, _base) output =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    exec_and_deliver ?output common Request.Characterize
  in
  Cmd.v
    (cmd_info "characterize" ~doc:"Characterise the 304-cell catalog into a nominal library.")
    Term.(const run $ Common_opts.request_term $ output_arg)

let statlib_cmd =
  let run ((common : Common_opts.t), base) output run_dir =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let req = Request.Statlib base in
    match run_dir with
    | Some run_dir ->
      let store = Common_opts.store common in
      Run.execute_request ~run_dir ?store ?output req
    | None -> exec_and_deliver ?output common req
  in
  Cmd.v
    (cmd_info "statlib"
       ~doc:"Build the statistical library (entry-wise mean/sigma over N samples).")
    Term.(const run $ Common_opts.request_term $ output_arg $ run_dir_arg)

(* ------------------------------------------------------------------ *)

(* The single spelling of tuning methods: Tuning_method.to_string /
   of_string round-trip, shared with store keys and report labels. *)
let method_conv =
  let parse s =
    match Tuning_method.of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid method %S: expected [cell/|strength/](load|slew|ceiling)=VALUE" s))
  in
  let print ppf m = Format.pp_print_string ppf (Tuning_method.to_string m) in
  Arg.conv (parse, print)

let method_arg =
  Arg.(
    value
    & opt (some method_conv) None
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:
          "Tuning method, e.g. cell/ceiling=0.02, strength/load=0.05, cell/slew=0.03. \
           Population is cell or strength (default: cell).")

let period_arg =
  Arg.(
    value & opt (some float) None
    & info [ "p"; "period" ] ~docv:"NS" ~doc:"Clock period in ns (default: measured minimum).")

let tune_cmd =
  let run (common, base) tuning =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let tuning = Option.value tuning ~default:default_method in
    exec_and_deliver common (Request.Tune { base; tuning })
  in
  Cmd.v
    (cmd_info "tune" ~doc:"Extract per-pin slew/load restrictions from a tuning method.")
    Term.(const run $ Common_opts.request_term $ method_arg)

let timing_report_arg =
  Arg.(value & flag & info [ "timing-report" ] ~doc:"Print the worst-path timing report.")

let power_arg =
  Arg.(value & flag & info [ "power" ] ~doc:"Print the average power report.")

let verilog_arg =
  Arg.(
    value & opt (some string) None
    & info [ "verilog" ] ~docv:"FILE" ~doc:"Export the synthesised netlist as structural Verilog.")

let synth_cmd =
  let run (common, base) period tuning timing_report power verilog =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let req =
      Request.Design_sigma
        { base; period; tuning; timing_report; power; verilog = verilog <> None }
    in
    let artifact_files =
      match verilog with Some path -> [ ("verilog", path) ] | None -> []
    in
    exec_and_deliver ~artifact_files common req
  in
  Cmd.v
    (cmd_info "synth" ~doc:"Synthesise the evaluation design, optionally with tuning.")
    Term.(
      const run $ Common_opts.request_term $ period_arg $ method_arg $ timing_report_arg
      $ power_arg $ verilog_arg)

let min_period_cmd =
  let run (common, base) =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    exec_and_deliver common (Request.Min_period base)
  in
  Cmd.v
    (cmd_info "min-period" ~doc:"Measure the minimum feasible clock period (Table 1).")
    Term.(const run $ Common_opts.request_term)

let figure_names =
  [
    ("fig1", `Fig1); ("fig2", `Fig2); ("fig3", `Fig3); ("fig4", `Fig4); ("fig5", `Fig5);
    ("fig6", `Fig6); ("fig7", `Fig7); ("fig8", `Fig8); ("fig9", `Fig9); ("fig10", `Fig10);
    ("fig11", `Fig11); ("fig12", `Fig12); ("fig13", `Fig13); ("fig14", `Fig14);
    ("fig15", `Fig15); ("fig16", `Fig16); ("table1", `Table1); ("table2", `Table2);
    ("table3", `Table3); ("ext-power", `Power); ("ext-yield", `Yield); ("ext-hold", `Hold);
    ("futurework-layout", `Layout); ("ablation-mapping", `Mapping);
    ("ablation-guard-band", `Guard); ("ablation-rho", `Rho); ("ablation-variability", `Variability);
    ("all", `All);
  ]

(* figures drives Experiment directly (it renders many exhibits from
   one setup); the setup is still requested through the shared base. *)
let prepare_setup (common : Common_opts.t) =
  let store = Common_opts.store common in
  Experiment.prepare_request ?store
    (Request.Min_period { Request.seed = common.seed; samples = common.samples })

let figures_cmd =
  let figure_arg =
    Arg.(
      value
      & pos 0 (enum figure_names) `All
      & info [] ~docv:"FIGURE" ~doc:"Exhibit to regenerate (fig1..fig16, table1..table3, all).")
  in
  let run common figure =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let setup = prepare_setup common in
    match figure with
    | `All -> Figures.run_all setup
    | `Fig1 -> Figures.fig1_metric ()
    | `Fig2 -> Figures.fig2_statlib setup
    | `Fig3 -> Figures.fig3_bilinear ()
    | `Fig4 -> Figures.fig4_inv_surfaces setup
    | `Fig5 -> Figures.fig5_drive6 setup
    | `Fig6 -> Figures.fig6_rectangle setup
    | `Fig7 -> Figures.fig7_all_luts setup
    | `Fig8 -> Figures.fig8_period_area setup
    | `Fig9 -> Figures.fig9_cell_use setup
    | `Fig10 | `Table3 -> Figures.table3_winners (Figures.fig10_method_sweep setup)
    | `Fig11 -> Figures.fig11_tradeoff setup
    | `Fig12 -> Figures.fig12_depths setup
    | `Fig13 -> Figures.fig13_sigma_depth setup
    | `Fig14 -> Figures.fig14_mean3sigma setup
    | `Fig15 -> Figures.fig15_corners setup
    | `Fig16 -> Figures.fig16_local_share setup
    | `Table1 -> Figures.table1_periods setup
    | `Table2 -> Figures.table2_parameters ()
    | `Power -> Figures.extension_power setup
    | `Yield -> Figures.extension_yield setup
    | `Hold -> Figures.extension_hold setup
    | `Layout -> Figures.futurework_layout setup
    | `Mapping -> Figures.ablation_mapping_style setup
    | `Guard -> Figures.ablation_guard_band setup
    | `Rho -> Figures.ablation_rho setup
    | `Variability -> Figures.ablation_variability_metric setup
  in
  Cmd.v
    (cmd_info "figures" ~doc:"Regenerate a table or figure from the paper's evaluation.")
    Term.(const run $ Common_opts.term $ figure_arg)

(* ------------------------------------------------------------------ *)
(* Profiling / run reports                                             *)
(* ------------------------------------------------------------------ *)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")

(* `vartune report` reads telemetry; the shared --trace flag *records*
   it.  Positional files avoid the clash: each is sniffed by content
   (traceEvents -> trace, counters -> metrics). *)
let report_cmd =
  let files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Telemetry files to report on: a Chrome trace (as written by $(b,--trace)) \
             and/or a metrics JSON file (as written by $(b,--metrics-out)); each is \
             recognised by its content.")
  in
  let report_run_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run-dir" ] ~docv:"DIR"
          ~doc:
            "Journaled run directory (see the $(b,--run-dir) flag of $(b,statlib) and \
             $(b,experiment)): adds the step timeline, checkpoint count, progress and \
             ETA to the report.")
  in
  let run ((common : Common_opts.t), _base) files run_dir json =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let fail msg =
      Log.err (fun m -> m "%s" msg);
      exit 65 (* EX_DATAERR *)
    in
    let trace, metrics =
      List.fold_left
        (fun (trace, metrics) path ->
          match Run_report.classify_file path with
          | Ok `Trace -> (Some path, metrics)
          | Ok `Metrics -> (trace, Some path)
          | Error msg -> fail msg)
        (None, None) files
    in
    (* a source-less Report request means "this process's live
       telemetry" to the serve daemon; from the CLI it stays the usage
       error it always was *)
    if trace = None && metrics = None && run_dir = None then
      fail "nothing to report on: give a trace, a metrics file or --run-dir";
    exec_and_deliver common (Request.Report { trace; metrics; run_dir; json })
  in
  Cmd.v
    (cmd_info "report"
       ~doc:
         "Summarise a run's telemetry: span profile with child-exclusive self times and \
          p50/p90/p99 duration quantiles, per-domain utilization, GC/allocation \
          attribution, metrics counters, and the journal timeline of a $(b,--run-dir) \
          run (blocks, checkpoints, ETA).")
    Term.(const run $ Common_opts.request_term $ files_arg $ report_run_dir_arg $ json_flag)

let bench_diff_cmd =
  let old_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline BENCH_*.json (the committed history).")
  in
  let new_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Freshly measured BENCH_*.json to compare against OLD.")
  in
  let tol_conv =
    let parse s =
      match float_of_string_opt s with
      | Some f when f >= 0.0 -> Ok f
      | _ -> Error (`Msg (Printf.sprintf "expected a non-negative tolerance, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_float)
  in
  let tol_arg name ~default ~doc =
    Arg.(value & opt tol_conv default & info [ name ] ~docv:"FRACTION" ~doc)
  in
  let informational_arg =
    Arg.(
      value & flag
      & info [ "informational" ]
          ~doc:
            "Report regressions but exit 0 anyway — for single-core or otherwise \
             noisy environments where the gate should not fail the build.")
  in
  let run (common : Common_opts.t) old_path new_path tol_time tol_speedup tol_count
      informational json =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let load path =
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Vartune_obs.Json.parse s with
      | Ok j -> j
      | Error e ->
        Log.err (fun m -> m "%s: %s" path e);
        exit 65 (* EX_DATAERR *)
    in
    let old_json = load old_path and new_json = load new_path in
    let tol = { Bench_diff.time = tol_time; speedup = tol_speedup; count = tol_count } in
    let findings = Bench_diff.diff ~tol ~old_json ~new_json () in
    print_string
      ((if json then Bench_diff.to_json else Bench_diff.to_text) findings);
    match Bench_diff.regressions findings with
    | [] -> ()
    | regs ->
      Log.err (fun m ->
          m "%d bench regression%s against %s%s" (List.length regs)
            (if List.length regs = 1 then "" else "s")
            old_path
            (if informational then " (informational: not failing)" else ""));
      if not informational then exit 1
  in
  Cmd.v
    (cmd_info "bench-diff"
       ~doc:
         "Compare two BENCH_*.json files with per-metric tolerances: wall-clock seconds \
          (default $(b,--tol-time) 0.5), speedup ratios ($(b,--tol-speedup) 0.1) and \
          deterministic work counts ($(b,--tol-count) 0.02). Exits 0 when clean, 1 on a \
          regression, 65 on malformed JSON.")
    Term.(
      const run $ Common_opts.term $ old_arg $ new_arg
      $ tol_arg "tol-time" ~default:Bench_diff.default_tolerances.Bench_diff.time
          ~doc:"Relative tolerance for wall-clock metrics (seconds, *_s)."
      $ tol_arg "tol-speedup" ~default:Bench_diff.default_tolerances.Bench_diff.speedup
          ~doc:"Relative tolerance for higher-is-better ratios (speedup)."
      $ tol_arg "tol-count" ~default:Bench_diff.default_tolerances.Bench_diff.count
          ~doc:"Relative tolerance for deterministic work counts (node_evals, sta_runs, eval_ratio)."
      $ informational_arg $ json_flag)

(* One subcommand that touches every instrumented stage — characterise,
   statistical merge, synthesis + STA (baseline and tuned), a tuning
   parameter sweep and a path-level Monte Carlo — so a single
   `vartune experiment --trace t.json` yields a trace with the complete
   span vocabulary, and a shared $(b,--store) demonstrates warm-run
   reuse end to end. *)
let experiment_cmd =
  let mc_samples_arg =
    Arg.(
      value & opt int 2000
      & info [ "mc-samples" ] ~docv:"N"
          ~doc:"Monte-Carlo samples for the path-level validation stage.")
  in
  let run ((common : Common_opts.t), base) period tuning mc_samples run_dir =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let tuning = Option.value tuning ~default:default_method in
    let req =
      Request.Sweep
        { base; tuning; period; parameters = Run.std_parameters;
          mc_samples = Some mc_samples }
    in
    match run_dir with
    | Some run_dir ->
      let store = Common_opts.store common in
      Run.execute_request ~run_dir ?store req
    | None -> exec_and_deliver common req
  in
  Cmd.v
    (cmd_info "experiment"
       ~doc:
         "Run the full characterise/merge/tune/synthesise/STA/Monte-Carlo pipeline once — \
          the natural target for $(b,--trace), $(b,--metrics-out), a warm $(b,--store) \
          and a resumable $(b,--run-dir).")
    Term.(
      const run $ Common_opts.request_term $ period_arg $ method_arg $ mc_samples_arg
      $ run_dir_arg)

let run_dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"RUNDIR" ~doc:"Run directory of a journaled run (see --run-dir).")

let resume_cmd =
  let run (common : Common_opts.t) run_dir =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let store = Common_opts.store common in
    Run.resume ~run_dir ?store ()
  in
  Cmd.v
    (cmd_info "resume"
       ~doc:
         "Resume an interrupted journaled run to bit-identical output. Validates the \
          journal and every checkpointed artifact; corrupt entries are evicted and \
          recomputed, a corrupt journal is a clean data error (exit 65).")
    Term.(const run $ Common_opts.term $ run_dir_pos)

let journal_cmd =
  let run (common : Common_opts.t) run_dir =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    let steps = Journal.replay (Run.journal_path run_dir) in
    List.iter (fun step -> print_endline (Journal.step_to_string step)) steps
  in
  Cmd.v
    (cmd_info "journal"
       ~doc:"List a journaled run's recorded steps (validating every checksum).")
    Term.(const run $ Common_opts.term $ run_dir_pos)

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/vartune.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-socket path of the daemon.")

let serve_cmd =
  let backlog_arg =
    Arg.(
      value & opt int 16
      & info [ "backlog" ] ~docv:"N" ~doc:"listen(2) backlog of the daemon's socket.")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "serve-workers" ] ~docv:"N"
          ~doc:"Worker threads executing admitted requests.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bound on queued-but-unstarted requests (both priority classes combined); \
             requests beyond it are shed with a typed code-75 reply carrying a \
             $(b,retry_after_s) hint.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Bound on concurrent client connections; connections beyond it are \
             answered with one typed code-75 refusal and closed.")
  in
  let run (common : Common_opts.t) socket backlog workers queue_cap max_conns =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    if workers < 1 || queue_cap < 1 || max_conns < 1 then begin
      Log.err (fun m -> m "--serve-workers, --queue-cap and --max-conns must be >= 1");
      exit 64 (* EX_USAGE *)
    end;
    let store = Common_opts.store common in
    Serve.run { Serve.socket; store; backlog; workers; queue_cap; max_conns };
    (* a graceful drain is the same "stopped cleanly, retry later"
       status an interrupted journaled run reports *)
    exit 75
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:
         "Serve tuning requests on a unix socket: newline-JSON requests (see PROTOCOL) \
          evaluated through the same entry point as the batch subcommands, with \
          single-flight deduplication of identical in-flight requests, the $(b,--store) \
          shared as a cross-request cache, and live $(b,GET metrics) / $(b,GET profile) \
          / $(b,GET health) endpoints. Execution is admission-controlled: a bounded \
          two-class priority queue (interactive report/parse/characterize ahead of \
          batch work) feeds $(b,--serve-workers) worker threads; overload beyond \
          $(b,--queue-cap) or $(b,--max-conns), and requests whose $(b,deadline_s) has \
          passed, are shed immediately with typed code-75 replies. SIGINT/SIGTERM \
          drains gracefully — in-flight requests finish, queued ones are shed with 75 \
          — and exits 75.")
    Term.(
      const run $ Common_opts.term $ socket_arg $ backlog_arg $ workers_arg
      $ queue_cap_arg $ max_conns_arg)

let loadgen_cmd =
  let requests_arg =
    Arg.(
      value & opt int 48
      & info [ "requests" ] ~docv:"N" ~doc:"Total requests to send across all connections.")
  in
  let concurrency_arg =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"N" ~doc:"Parallel client connections.")
  in
  let overload_arg =
    Arg.(
      value & flag
      & info [ "overload" ]
          ~doc:
            "Overload mode: send the $(b,--requests) burst (every 4th request \
             interactive, the rest batch statlib builds with per-index seeds so \
             nothing deduplicates) through the client's retry/backoff loop and report \
             per-class latency quantiles, sheds, deadline drops and retries. Exits 1 \
             on any lost reply or code-70 response; sheds are expected, not failures.")
  in
  let retries_arg =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Overload mode: retry budget of the client backoff loop per request.")
  in
  let run ((common : Common_opts.t), base) socket requests concurrency json overload
      retries =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    if overload then begin
      let r =
        Loadgen.run_overload
          {
            Loadgen.o_socket = socket;
            burst = requests;
            o_concurrency = concurrency;
            o_seed = base.Request.seed;
            o_samples = base.Request.samples;
            retry = { Client.default_policy with attempts = retries };
          }
      in
      if json then print_endline (Loadgen.overload_result_to_json r)
      else begin
        let line label (c : Loadgen.class_stats) =
          Printf.printf
            "%-12s sent %d  ok %d  shed %d  deadline %d  failed %d  retries %d  p99 \
             %.2f ms\n"
            label c.Loadgen.c_sent c.Loadgen.c_ok c.Loadgen.c_shed
            c.Loadgen.c_deadline_dropped c.Loadgen.c_failed c.Loadgen.c_retries
            c.Loadgen.c_p99_ms
        in
        line "interactive" r.Loadgen.interactive;
        line "batch" r.Loadgen.batch;
        Printf.printf "elapsed %.2f s  replies %d  code70 %d\n" r.Loadgen.o_elapsed_s
          r.Loadgen.replies r.Loadgen.code70
      end;
      let lost =
        r.Loadgen.interactive.Loadgen.c_failed + r.Loadgen.batch.Loadgen.c_failed
      in
      if lost > 0 || r.Loadgen.code70 > 0 then exit 1
    end
    else begin
      let mix =
        Loadgen.default_mix ~seed:base.Request.seed ~samples:base.Request.samples
      in
      let r = Loadgen.run { Loadgen.socket; requests; concurrency; mix } in
      if json then print_endline (Loadgen.result_to_json r)
      else begin
        Printf.printf "sent %d  ok %d  failed %d  dedup hits %d (%.1f%%)\n"
          r.Loadgen.sent r.Loadgen.ok r.Loadgen.failed r.Loadgen.dedup_hits
          (100.0 *. Loadgen.dedup_hit_rate r);
        Printf.printf "elapsed %.2f s  throughput %.1f req/s\n" r.Loadgen.elapsed_s
          r.Loadgen.throughput_rps;
        Printf.printf "latency ms: p50 %.2f  p90 %.2f  p99 %.2f  min %.2f  max %.2f\n"
          r.Loadgen.p50_ms r.Loadgen.p90_ms r.Loadgen.p99_ms r.Loadgen.min_ms
          r.Loadgen.max_ms
      end;
      if r.Loadgen.failed > 0 then exit 1
    end
  in
  Cmd.v
    (cmd_info "loadgen"
       ~doc:
         "Drive a request mix (statlib / characterize / tune / live report, using the \
          shared $(b,--seed) and $(b,--samples)) at the given concurrency against a \
          running $(b,vartune serve) daemon and report throughput, latency quantiles \
          and the dedup hit rate. With $(b,--overload), drive a seeded burst past the \
          daemon's queue capacity instead and report per-class shed/retry accounting. \
          Exits 1 if any request failed.")
    Term.(
      const run $ Common_opts.request_term $ socket_arg $ requests_arg $ concurrency_arg
      $ json_flag $ overload_arg $ retries_arg)

let parse_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Library file.")
  in
  let run common file =
    Common_opts.setup common;
    Common_opts.guard @@ fun () ->
    (* a request shim like every other subcommand, so [parse] is also
       servable (and classed interactive by the daemon's admission) *)
    exec_and_deliver common (Request.Parse { file })
  in
  Cmd.v
    (cmd_info "parse" ~doc:"Parse a liberty-format library file and summarise it.")
    Term.(const run $ Common_opts.term $ file_arg)

let main_cmd =
  let doc = "standard cell library tuning for variability tolerant designs" in
  Cmd.group (Cmd.info "vartune" ~version:"1.0.0" ~doc ~man:Common_opts.man)
    [
      characterize_cmd; statlib_cmd; tune_cmd; synth_cmd; min_period_cmd; experiment_cmd;
      resume_cmd; journal_cmd; figures_cmd; report_cmd; bench_diff_cmd; serve_cmd;
      loadgen_cmd; parse_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
