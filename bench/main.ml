(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (DESIGN.md maps each exhibit to its modules).  Part 2 runs Bechamel
   micro-benchmarks over the hot kernels, including the naive-vs-
   optimised largest-rectangle ablation.

   Part 3 times the domain-parallel pipeline stages (statistical library
   build, tuning-parameter sweep, path Monte Carlo) serially and at
   jobs = {2, 4}, records the chunk size each stage dispatched with,
   and writes the measurements to BENCH_parallel.json so the perf
   trajectory is tracked across PRs.  With VARTUNE_BENCH_GATE set the
   harness exits non-zero if any gated stage is slower than 0.9x serial
   at 2 jobs — skipped (with a warning) on single-core machines, where
   two domains genuinely time-share one core.

   Environment:
     VARTUNE_SAMPLES        Monte-Carlo sample libraries (default 50, paper's N)
     VARTUNE_SEED           random seed (default 42)
     VARTUNE_JOBS           single pool size to measure instead of {2, 4}
     VARTUNE_BENCH_GATE     set to fail the run on parallel regressions
     VARTUNE_TRACE          write a Chrome trace-event JSON of the run here
     VARTUNE_METRICS_OUT    write the telemetry metrics JSON here
     VARTUNE_SKIP_MICRO     set to skip the Bechamel section
     VARTUNE_SKIP_PARALLEL  set to skip the parallel-scaling section
     VARTUNE_SKIP_STA       set to skip the incremental-STA section
     VARTUNE_SKIP_STORE     set to skip the cold-vs-warm store section
     VARTUNE_SKIP_SERVE     set to skip the serve/loadgen section
     VARTUNE_SKIP_KERNELS   set to skip the numeric-kernel section
     VARTUNE_SKIP_FIGURES   set to skip the table/figure regeneration

   Part 4 measures the persistent artifact store: the same experiment
   workload is run cold (empty store) and warm (populated store), the
   results are asserted identical, and the speedup is recorded in
   BENCH_store.json.

   Part 5 runs the same min-period search twice on the microcontroller
   design — full re-analysis per sizing move vs incremental cone
   retiming — asserts the periods are bit-identical, and writes the
   wall-clock and node-evaluation comparison to BENCH_sta.json.

   Part 6 starts an in-process serve daemon on a temp socket, drives
   the loadgen default mix against it (deliberately overlapping
   identical requests), and writes throughput, latency quantiles and
   the single-flight dedup hit rate to BENCH_serve.json.

   Part 8 drives a seeded overload burst (4x the admission queue's
   capacity, service times stretched by a pinned delay fault) through
   the client's retry/backoff loop and writes per-class shed/retry
   accounting to BENCH_overload.json, asserting every request gets
   exactly one typed reply and admitted interactive p99 stays bounded.

   Part 7 times the flattened numeric kernels: the statistical-library
   Welford merge over pre-generated sample libraries is run through
   both the live flat path and the frozen boxed reference
   (Boxed_ref), asserted bit-identical, and the speedup plus
   allocation words/sample recorded together with bilinear LUT-lookup
   throughput in BENCH_kernels.json. *)

module Experiment = Vartune_flow.Experiment
module Figures = Vartune_flow.Figures
module Report = Vartune_flow.Report
module Characterize = Vartune_charlib.Characterize
module Statistical = Vartune_statlib.Statistical
module Sampler = Vartune_charlib.Sampler
module Catalog = Vartune_stdcell.Catalog
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Arc = Vartune_liberty.Arc
module Lut = Vartune_liberty.Lut
module Rng = Vartune_util.Rng
module Pool = Vartune_util.Pool
module Path_mc = Vartune_monte.Path_mc
module Tuning_method = Vartune_tuning.Tuning_method
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold
module Binary_lut = Vartune_tuning.Binary_lut
module Rectangle = Vartune_tuning.Rectangle
module Timing = Vartune_sta.Timing
module Path = Vartune_sta.Path
module Convolve = Vartune_stats.Convolve
module Mapper = Vartune_synth.Mapper
module Constraints = Vartune_synth.Constraints
module Synthesis = Vartune_synth.Synthesis
module Store = Vartune_store.Store
module Obs = Vartune_obs.Obs
module Serve = Vartune_serve.Serve
module Client = Vartune_serve.Client
module Loadgen = Vartune_serve.Loadgen
module Fault = Vartune_fault.Fault

let src = Logs.Src.create "vartune.bench" ~doc:"benchmark harness"

module Log = (val Logs.src_log src : Logs.LOG)

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

(* ------------------------------------------------------------------ *)
(* Part 2: micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let random_mask rng rows cols density =
  Binary_lut.of_bool_rows
    (Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.uniform rng < density)))

(* Runs before the experiment phase so the measurements see a small,
   clean heap; builds its own nominal library and mapped design. *)
let micro_benchmarks () =
  let open Bechamel in
  Report.heading "Micro-benchmarks (Bechamel)";
  let library = Characterize.nominal Characterize.default_config in
  let inv = Library.find library "INV_4" in
  let arc = List.hd (Cell.arcs inv) in
  let rng = Rng.create 2024 in
  let mask8 = random_mask rng 8 8 0.7 in
  let mask24 = random_mask rng 24 24 0.7 in
  let specs = List.filter_map Catalog.find [ "INV"; "ND2" ] in
  let cons = Constraints.make ~clock_period:16.0 () in
  let netlist = Mapper.map cons library (Vartune_rtl.Microcontroller.generate ()) in
  let tconfig = Constraints.timing_config cons in
  let timing = Timing.run tconfig netlist in
  let paths = Path.worst_per_endpoint timing netlist in
  let a_path = List.nth paths (List.length paths / 2) in
  let tests =
    [
      Test.make ~name:"lut_bilinear_lookup"
        (Staged.stage (fun () -> Lut.lookup arc.Arc.rise_delay ~slew:0.21 ~load:0.0123));
      Test.make ~name:"rectangle_naive_8x8"
        (Staged.stage (fun () -> Rectangle.naive_largest mask8));
      Test.make ~name:"rectangle_opt_8x8" (Staged.stage (fun () -> Rectangle.largest mask8));
      Test.make ~name:"rectangle_naive_24x24"
        (Staged.stage (fun () -> Rectangle.naive_largest mask24));
      Test.make ~name:"rectangle_opt_24x24"
        (Staged.stage (fun () -> Rectangle.largest mask24));
      Test.make ~name:"characterize_2_families"
        (Staged.stage (fun () ->
             Characterize.library Characterize.default_config ~name:"bench" specs));
      Test.make ~name:"statistical_merge_n10"
        (Staged.stage (fun () ->
             Statistical.of_stream ~n:10 (fun index ->
                 Sampler.sample_library Characterize.default_config
                   ~mismatch:Mismatch.default ~seed:1 ~index ~specs ())));
      Test.make ~name:"sta_full_design"
        (Staged.stage (fun () -> Timing.run tconfig netlist));
      Test.make ~name:"path_convolution"
        (Staged.stage (fun () -> Convolve.of_path a_path));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:3000 ~stabilize:true ~quota:(Time.second 1.0) ~kde:None () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            let time, unit_label =
              if est > 1e9 then (est /. 1e9, "s")
              else if est > 1e6 then (est /. 1e6, "ms")
              else if est > 1e3 then (est /. 1e3, "us")
              else (est, "ns")
            in
            Printf.printf "  %-28s %10.2f %s/run\n%!" name time unit_label
          | Some [] | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Part 3: parallel scaling                                            *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Serial vs pool wall-clock per pipeline stage at each job count.  Each
   measurement runs the same deterministic workload (same seeds, fresh
   caches), so the only variables are the pool size and the chunk
   granularity it implies; results are asserted bit-identical to the
   serial reference before being reported. *)
let parallel_benchmarks (setup : Experiment.setup) ~samples ~seed =
  Report.heading "Parallel scaling (serial vs worker pool)";
  let cores = Domain.recommended_domain_count () in
  let jobs_list =
    match Sys.getenv_opt "VARTUNE_JOBS" with
    | Some v -> (try [ max 2 (int_of_string (String.trim v)) ] with _ -> [ 2; 4 ])
    | None -> [ 2; 4 ]
  in
  let serial = Pool.create ~jobs:1 () in
  let pools = List.map (fun jobs -> (jobs, Pool.create ~jobs ())) jobs_list in
  Log.app (fun m ->
      m "pool sizes: {%s} domains (serial reference = 1 job; %d core%s)"
        (String.concat ", " (List.map string_of_int jobs_list))
        cores
        (if cores = 1 then "" else "s"));
  let stages = ref [] in
  (* Sub-microsecond timings are clock noise: a near-zero serial
     measurement would turn the ratio into garbage (or a division by
     zero), so such pairs report a neutral 1.0x. *)
  let min_meaningful_s = 1e-6 in
  let stage name ~items ~check run =
    let a, t_serial = time (fun () -> run serial) in
    let runs =
      List.map
        (fun (jobs, pool) ->
          let b, t_par = time (fun () -> run pool) in
          if not (check a b) then
            failwith
              (Printf.sprintf "parallel stage %s diverged from serial output at %d jobs" name
                 jobs);
          let speedup =
            if t_serial > min_meaningful_s && t_par > min_meaningful_s then t_serial /. t_par
            else begin
              Log.warn (fun m ->
                  m "stage %s: timings too small to ratio (serial %.3g s, parallel %.3g s)"
                    name t_serial t_par);
              1.0
            end
          in
          let chunk = Pool.chunk_for pool ~items in
          Printf.printf
            "  %-20s serial %7.2f s   %d jobs %7.2f s   chunk %4d   speedup %.2fx\n%!" name
            t_serial jobs t_par chunk speedup;
          (jobs, chunk, t_par, speedup))
        pools
    in
    stages := (name, t_serial, runs) :: !stages
  in
  let statlib_equal a b =
    List.for_all2
      (fun (x : Cell.t) (y : Cell.t) ->
        List.for_all2
          (fun (p : Arc.t) (q : Arc.t) ->
            Lut.equal ~eps:0.0 p.Arc.rise_delay q.Arc.rise_delay
            && Lut.equal ~eps:0.0
                 (Option.get p.Arc.rise_delay_sigma)
                 (Option.get q.Arc.rise_delay_sigma))
          (Cell.arcs x) (Cell.arcs y))
      (Library.cells a) (Library.cells b)
  in
  (* Items per stage = what each stage actually hands the pool, so the
     reported chunk matches the dispatch granularity: Welford merge
     blocks of 4 samples, one sweep point per parameter, one Monte
     Carlo sample per index. *)
  stage "statlib_build" ~items:((samples + 3) / 4) ~check:statlib_equal (fun pool ->
      Statistical.build ~pool Characterize.default_config ~mismatch:Mismatch.default ~seed
        ~n:samples ());
  let tuning =
    { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling 0.02 }
  in
  let parameters = [ 0.005; 0.01; 0.02; 0.03; 0.05; 0.08 ] in
  let period = setup.Experiment.min_period *. 1.5 in
  stage "experiment_sweep" ~items:(List.length parameters)
    ~check:(fun a b ->
      List.for_all2
        (fun (x : Experiment.sweep_point) (y : Experiment.sweep_point) ->
          x.Experiment.reduction = y.Experiment.reduction
          && x.Experiment.area_delta = y.Experiment.area_delta)
        a b)
    (fun pool ->
      Experiment.sweep ~pool (Experiment.fresh_memo setup) ~period ~tuning ~parameters);
  let base = Experiment.baseline setup ~period:setup.Experiment.min_period in
  let mc_path =
    let paths = base.Experiment.paths in
    List.nth paths (List.length paths / 2)
  in
  let mc_config = { Path_mc.default_config with n = 20_000 } in
  stage "path_mc" ~items:mc_config.Path_mc.n
    ~check:(fun (a : Path_mc.result) (b : Path_mc.result) ->
      a.Path_mc.delays = b.Path_mc.delays)
    (fun pool -> Path_mc.simulate ~pool mc_config ~seed:7 mc_path);
  Pool.shutdown serial;
  List.iter (fun (_, pool) -> Pool.shutdown pool) pools;
  let rows = List.rev !stages in
  let oc = open_out "BENCH_parallel.json" in
  (* Run metadata rides along so trajectory comparisons across PRs know
     what produced each measurement. *)
  Printf.fprintf oc
    "{\n\
    \  \"jobs\": [%s],\n\
    \  \"cores\": %d,\n\
    \  \"samples\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"ocaml_version\": \"%s\",\n\
    \  \"word_size\": %d,\n\
    \  \"stages\": [\n"
    (String.concat ", " (List.map string_of_int jobs_list))
    cores samples seed Sys.ocaml_version Sys.word_size;
  List.iteri
    (fun i (name, t_serial, runs) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"serial_s\": %.6f, \"runs\": [" name t_serial;
      List.iteri
        (fun j (jobs, chunk, t_par, speedup) ->
          Printf.fprintf oc
            "%s{\"jobs\": %d, \"chunk\": %d, \"parallel_s\": %.6f, \"speedup\": %.3f}"
            (if j = 0 then "" else ", ")
            jobs chunk t_par speedup)
        runs;
      Printf.fprintf oc "]}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Log.app (fun m -> m "wrote BENCH_parallel.json");
  (* CI regression gate: at 2 jobs every gated stage must reach at least
     0.9x serial throughput — i.e. chunked dispatch may cost at most 10%
     even if the machine can't actually parallelise.  On a single
     hardware core two domains time-share the CPU and the ratio
     measures the scheduler, not the pool, so the gate only arms when
     cores >= 2 (it records the skip loudly instead). *)
  if Sys.getenv_opt "VARTUNE_BENCH_GATE" <> None then
    if cores < 2 then
      Log.warn (fun m ->
          m "bench gate skipped: %d hardware core(s); speedup at 2 jobs is not meaningful"
            cores)
    else begin
      let floor = 0.9 in
      let gated = [ "statlib_build"; "experiment_sweep"; "path_mc" ] in
      let failures =
        List.concat_map
          (fun (name, _, runs) ->
            if not (List.mem name gated) then []
            else
              List.filter_map
                (fun (jobs, _, _, speedup) ->
                  if jobs = 2 && speedup < floor then Some (name, speedup) else None)
                runs)
          rows
      in
      match failures with
      | [] -> Log.app (fun m -> m "bench gate passed: all gated stages >= %.1fx at 2 jobs" floor)
      | _ ->
        List.iter
          (fun (name, speedup) ->
            Log.err (fun m ->
                m "bench gate: stage %s speedup %.2fx at 2 jobs is below the %.1fx floor" name
                  speedup floor))
          failures;
        exit 1
    end

(* ------------------------------------------------------------------ *)
(* Part 4: persistent store, cold vs warm                               *)
(* ------------------------------------------------------------------ *)

(* The experiment workload the store accelerates: build the statistical
   library, measure the minimum period, synthesise a baseline and a
   three-point tuning sweep.  Returns a pure-scalar fingerprint so cold
   and warm runs can be compared exactly. *)
let store_workload ~samples ~seed ~store () =
  let setup =
    Experiment.prepare_request ~store
      (Vartune_flow.Request.Min_period { seed; samples })
  in
  let period = setup.Experiment.min_period *. 1.5 in
  let tuning =
    { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling 0.02 }
  in
  let base = Experiment.baseline setup ~period in
  let points = Experiment.sweep setup ~period ~tuning ~parameters:[ 0.01; 0.02; 0.05 ] in
  ( setup.Experiment.min_period,
    base.Experiment.result.Synthesis.worst_slack,
    base.Experiment.result.Synthesis.area,
    List.map
      (fun (p : Experiment.sweep_point) -> (p.Experiment.reduction, p.Experiment.area_delta))
      points )

let store_benchmarks ~samples ~seed =
  Report.heading "Persistent store (cold vs warm)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vartune_bench_store_%d" (Unix.getpid ()))
  in
  let store = Store.open_dir dir in
  Store.wipe store;
  let cold_result, cold_s = time (store_workload ~samples ~seed ~store) in
  let warm_result, warm_s = time (store_workload ~samples ~seed ~store) in
  if cold_result <> warm_result then
    failwith "store benchmark: warm run diverged from cold run";
  let stats = Store.stats store in
  let speedup = if warm_s > 0.0 then cold_s /. warm_s else 0.0 in
  Printf.printf "  %-24s cold %7.2f s   warm %7.2f s   speedup %.2fx\n%!" "experiment" cold_s
    warm_s speedup;
  Printf.printf "  store: %d hits, %d misses, %d writes, %d entries, %d bytes\n%!"
    stats.Store.hits stats.Store.misses stats.Store.writes (Store.entry_count store)
    (Store.total_bytes store);
  if speedup < 3.0 then
    Log.warn (fun m -> m "warm-run speedup %.2fx below the 3x target" speedup);
  let oc = open_out "BENCH_store.json" in
  Printf.fprintf oc
    "{\n\
    \  \"samples\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"cold_s\": %.6f,\n\
    \  \"warm_s\": %.6f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"hits\": %d,\n\
    \  \"misses\": %d,\n\
    \  \"writes\": %d,\n\
    \  \"entries\": %d,\n\
    \  \"bytes\": %d,\n\
    \  \"ocaml_version\": \"%s\"\n\
     }\n"
    samples seed cold_s warm_s speedup stats.Store.hits stats.Store.misses stats.Store.writes
    (Store.entry_count store) (Store.total_bytes store) Sys.ocaml_version;
  close_out oc;
  Log.app (fun m -> m "wrote BENCH_store.json");
  Store.wipe store

(* ------------------------------------------------------------------ *)
(* Part 5: incremental STA                                             *)
(* ------------------------------------------------------------------ *)

(* The same min-period bisection on the microcontroller design, run
   twice: full timing re-analysis after every sizing move, then
   incremental cone retiming.  Incremental mode is a cost optimisation
   only, so the two searches must land on the bit-identical period; the
   Obs node-evaluation counters quantify how much propagation work the
   levelized graph's cone retiming avoids. *)
let sta_benchmarks () =
  Report.heading "Incremental STA (full re-analysis vs cone retiming)";
  let was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was_enabled) @@ fun () ->
  let library = Characterize.nominal Characterize.default_config in
  let ir = Vartune_rtl.Microcontroller.generate () in
  let measure ~incremental =
    let evals0 = Obs.counter_value "sta.node_evals" in
    let runs0 = Obs.counter_value "sta.runs" in
    let retimes0 = Obs.counter_value "sta.retimes" in
    let period, seconds = time (fun () -> Synthesis.min_period ~incremental library ir) in
    ( period,
      seconds,
      Obs.counter_value "sta.node_evals" - evals0,
      Obs.counter_value "sta.runs" - runs0,
      Obs.counter_value "sta.retimes" - retimes0 )
  in
  let p_full, full_s, full_evals, full_runs, _ = measure ~incremental:false in
  let p_inc, inc_s, inc_evals, inc_runs, inc_retimes = measure ~incremental:true in
  if Int64.bits_of_float p_full <> Int64.bits_of_float p_inc then
    failwith
      (Printf.sprintf "incremental min-period search diverged: full %.9f vs incremental %.9f"
         p_full p_inc);
  let speedup = if inc_s > 0.0 then full_s /. inc_s else 0.0 in
  let eval_ratio = if full_evals > 0 then float_of_int inc_evals /. float_of_int full_evals else 0.0 in
  Printf.printf "  %-24s %7.2f s   %9d node evals   %4d full runs\n%!" "full re-analysis"
    full_s full_evals full_runs;
  Printf.printf "  %-24s %7.2f s   %9d node evals   %4d full runs, %d retimes\n%!"
    "incremental retime" inc_s inc_evals inc_runs inc_retimes;
  Printf.printf "  min period %.4f ns (bit-identical)   speedup %.2fx   eval ratio %.3f\n%!"
    p_inc speedup eval_ratio;
  let oc = open_out "BENCH_sta.json" in
  (* cores disambiguates cross-host comparisons (BENCH_parallel.json
     already records it); jobs/chunk document that this benchmark
     dispatches serially — the search itself is single-domain. *)
  Printf.fprintf oc
    "{\n\
    \  \"design\": \"microcontroller\",\n\
    \  \"cores\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"chunk\": 1,\n\
    \  \"min_period_ns\": %.9f,\n\
    \  \"full\": {\"seconds\": %.6f, \"node_evals\": %d, \"sta_runs\": %d},\n\
    \  \"incremental\": {\"seconds\": %.6f, \"node_evals\": %d, \"sta_runs\": %d, \"retimes\": \
     %d},\n\
    \  \"speedup\": %.3f,\n\
    \  \"eval_ratio\": %.4f,\n\
    \  \"ocaml_version\": \"%s\"\n\
     }\n"
    (Domain.recommended_domain_count ())
    p_inc full_s full_evals full_runs inc_s inc_evals inc_runs inc_retimes speedup eval_ratio
    Sys.ocaml_version;
  close_out oc;
  Log.app (fun m -> m "wrote BENCH_sta.json")

(* ------------------------------------------------------------------ *)
(* Part 6: serving                                                     *)
(* ------------------------------------------------------------------ *)

(* An in-process daemon on a temp socket driven by the loadgen default
   mix.  The loadgen hands [concurrency] consecutive indices the same
   request template, so parallel workers overlap on identical requests
   and the measured dedup hit rate exercises the single-flight path,
   not just the warm store. *)
let serve_benchmarks ~samples ~seed =
  Report.heading "Serving (loadgen against an in-process daemon)";
  let requests = env_int "VARTUNE_SERVE_REQUESTS" 48 in
  let concurrency = env_int "VARTUNE_SERVE_CONCURRENCY" 4 in
  let tag = Printf.sprintf "vartune_bench_serve_%d" (Unix.getpid ()) in
  let socket = Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".sock") in
  let store = Store.open_dir (Filename.concat (Filename.get_temp_dir_name ()) tag) in
  Store.wipe store;
  let h =
    Serve.start
      { Serve.socket; store = Some store; backlog = 16; workers = 4; queue_cap = 64;
        max_conns = 64 }
  in
  let r =
    Fun.protect ~finally:(fun () -> Serve.stop h) @@ fun () ->
    Loadgen.run
      { Loadgen.socket; requests; concurrency;
        mix = Loadgen.default_mix ~seed ~samples }
  in
  if r.Loadgen.failed > 0 then
    failwith (Printf.sprintf "serve benchmark: %d requests failed" r.Loadgen.failed);
  let hit_rate = Loadgen.dedup_hit_rate r in
  if hit_rate <= 0.0 then
    Log.warn (fun m -> m "no dedup hits under the overlapping mix");
  Printf.printf "  %-24s %d requests, %d connections, %d dedup hits (%.1f%%)\n%!" "loadgen"
    r.Loadgen.sent concurrency r.Loadgen.dedup_hits (100.0 *. hit_rate);
  Printf.printf "  %-24s %7.2f s   %.1f req/s\n%!" "wall / throughput" r.Loadgen.elapsed_s
    r.Loadgen.throughput_rps;
  Printf.printf "  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  min %.2f  max %.2f\n%!"
    r.Loadgen.p50_ms r.Loadgen.p90_ms r.Loadgen.p99_ms r.Loadgen.min_ms r.Loadgen.max_ms;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"samples\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"concurrency\": %d,\n\
    \  \"ok\": %d,\n\
    \  \"failed\": %d,\n\
    \  \"dedup_hits\": %d,\n\
    \  \"dedup_hit_rate\": %.4f,\n\
    \  \"elapsed_s\": %.6f,\n\
    \  \"throughput_rps\": %.3f,\n\
    \  \"p50_ms\": %.3f,\n\
    \  \"p90_ms\": %.3f,\n\
    \  \"p99_ms\": %.3f,\n\
    \  \"min_ms\": %.3f,\n\
    \  \"max_ms\": %.3f,\n\
    \  \"ocaml_version\": \"%s\"\n\
     }\n"
    samples seed r.Loadgen.sent concurrency r.Loadgen.ok r.Loadgen.failed r.Loadgen.dedup_hits
    hit_rate r.Loadgen.elapsed_s r.Loadgen.throughput_rps r.Loadgen.p50_ms r.Loadgen.p90_ms
    r.Loadgen.p99_ms r.Loadgen.min_ms r.Loadgen.max_ms Sys.ocaml_version;
  close_out oc;
  Log.app (fun m -> m "wrote BENCH_serve.json");
  Store.wipe store

(* ------------------------------------------------------------------ *)
(* Part 7: numeric kernels                                             *)
(* ------------------------------------------------------------------ *)

(* The statistical merge over pre-generated sample libraries — so the
   characterisation cost is out of the loop and the measurement is the
   entry-wise Welford kernel itself — run through the live flat path
   and the frozen boxed reference, plus the fused bilinear LUT lookup.
   The two merge paths must agree bit-for-bit before any number is
   reported: the speedup is only meaningful between equal outputs. *)
let kernel_benchmarks ~samples ~seed =
  Report.heading "Numeric kernels (flat vs boxed reference)";
  let pool = Pool.create ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let libs =
    Array.init samples (fun index ->
        Sampler.sample_library Characterize.default_config ~mismatch:Mismatch.default ~seed
          ~index ())
  in
  let gen i = libs.(i) in
  (* Best-of-3 wall clock (the workload is deterministic, so variance is
     scheduler noise); allocation from the first rep — identical every
     rep because the work is identical. *)
  let reps = 3 in
  let measure run =
    let mw0 = Gc.minor_words () in
    let r, t0 = time run in
    let alloc = (Gc.minor_words () -. mw0) /. float_of_int samples in
    let best = ref t0 in
    for _ = 2 to reps do
      let _, t = time run in
      if t < !best then best := t
    done;
    (r, !best, alloc)
  in
  let flat_lib, flat_s, flat_alloc =
    measure (fun () -> Statistical.of_stream ~pool ~n:samples gen)
  in
  let boxed_lib, boxed_s, boxed_alloc =
    measure (fun () -> Vartune_statlib.Boxed_ref.of_stream ~pool ~n:samples gen)
  in
  let luts_identical a b =
    Lut.equal ~eps:0.0 a b
    && Lut.slews a = Lut.slews b
    && Lut.loads a = Lut.loads b
  in
  let agree =
    List.for_all2
      (fun (x : Cell.t) (y : Cell.t) ->
        List.for_all2
          (fun (p : Arc.t) (q : Arc.t) ->
            luts_identical p.Arc.rise_delay q.Arc.rise_delay
            && luts_identical p.Arc.fall_delay q.Arc.fall_delay
            && luts_identical p.Arc.rise_transition q.Arc.rise_transition
            && luts_identical p.Arc.fall_transition q.Arc.fall_transition
            && luts_identical
                 (Option.get p.Arc.rise_delay_sigma)
                 (Option.get q.Arc.rise_delay_sigma)
            && luts_identical
                 (Option.get p.Arc.fall_delay_sigma)
                 (Option.get q.Arc.fall_delay_sigma))
          (Cell.arcs x) (Cell.arcs y))
      (Library.cells flat_lib) (Library.cells boxed_lib)
  in
  if not agree then failwith "kernel benchmark: flat merge diverged from the boxed reference";
  let speedup = if flat_s > 0.0 then boxed_s /. flat_s else 0.0 in
  let throughput = if flat_s > 0.0 then float_of_int samples /. flat_s else 0.0 in
  let alloc_ratio = if boxed_alloc > 0.0 then flat_alloc /. boxed_alloc else 0.0 in
  Printf.printf "  %-24s flat %7.3f s   boxed %7.3f s   speedup %.2fx\n%!" "statlib merge"
    flat_s boxed_s speedup;
  Printf.printf "  %-24s flat %10.0f   boxed %10.0f   ratio %.3f\n%!" "alloc words/sample"
    flat_alloc boxed_alloc alloc_ratio;
  (* Bilinear lookup throughput on a production 8x8 delay surface; the
     1.3 range factor pushes ~a quarter of the points past the last
     axis breakpoint, so extrapolation stays on the measured path. *)
  let lut =
    let inv = Library.find (Characterize.nominal Characterize.default_config) "INV_4" in
    (List.hd (Cell.arcs inv)).Arc.rise_delay
  in
  let slews = Lut.slews lut and loads = Lut.loads lut in
  let smin = slews.(0) and smax = slews.(Array.length slews - 1) in
  let lmin = loads.(0) and lmax = loads.(Array.length loads - 1) in
  let iters = 2_000_000 in
  let sink = ref 0.0 in
  let _, lut_s =
    time (fun () ->
        for i = 0 to iters - 1 do
          let fi = float_of_int i in
          let s = smin +. (Float.rem (fi *. 0.618) 1.3 *. (smax -. smin)) in
          let l = lmin +. (Float.rem (fi *. 0.382) 1.3 *. (lmax -. lmin)) in
          sink := !sink +. Lut.lookup lut ~slew:s ~load:l
        done)
  in
  let ns_per_lookup = lut_s *. 1e9 /. float_of_int iters in
  Printf.printf "  %-24s %d lookups in %.3f s   %.1f ns/lookup (sink %.3f)\n%!" "lut bilinear"
    iters lut_s ns_per_lookup !sink;
  let oc = open_out "BENCH_kernels.json" in
  Printf.fprintf oc
    "{\n\
    \  \"samples\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": 1,\n\
    \  \"statlib\": {\n\
    \    \"flat\": {\"seconds\": %.6f, \"alloc_words_per_sample\": %.0f},\n\
    \    \"boxed\": {\"seconds\": %.6f, \"alloc_words_per_sample\": %.0f},\n\
    \    \"speedup\": %.3f,\n\
    \    \"throughput_per_sec\": %.2f,\n\
    \    \"alloc_ratio\": %.4f\n\
    \  },\n\
    \  \"lut_lookup\": {\"iters\": %d, \"seconds\": %.6f, \"ns_per_lookup\": %.2f},\n\
    \  \"ocaml_version\": \"%s\"\n\
     }\n"
    samples seed flat_s flat_alloc boxed_s boxed_alloc speedup throughput alloc_ratio iters
    lut_s ns_per_lookup Sys.ocaml_version;
  close_out oc;
  Log.app (fun m -> m "wrote BENCH_kernels.json");
  (* Unlike the parallel gate this ratio compares two code paths on the
     same core in the same process, so it is meaningful even on a
     single-hardware-core runner.  The floor sits below the locally
     demonstrated speedup to absorb runner noise while still catching a
     real regression to boxed-era throughput. *)
  if Sys.getenv_opt "VARTUNE_BENCH_GATE" <> None then
    if speedup < 1.2 then begin
      Log.err (fun m ->
          m "bench gate: flat/boxed merge speedup %.2fx is below the 1.2x floor" speedup);
      exit 1
    end
    else if alloc_ratio >= 1.0 then begin
      Log.err (fun m ->
          m "bench gate: flat path allocates %.2fx the boxed reference per sample" alloc_ratio);
      exit 1
    end
    else
      Log.app (fun m ->
          m "bench gate passed: kernel speedup %.2fx, alloc ratio %.3f" speedup alloc_ratio)

(* ------------------------------------------------------------------ *)
(* Part 8: overload                                                    *)
(* ------------------------------------------------------------------ *)

(* A seeded burst of 4x the admission queue's capacity, against a
   daemon whose service times are stretched by a pinned [delay] fault
   schedule, driven through the client's retry/backoff loop.  The
   contract being measured: every request gets exactly one final reply
   (success or typed 75), zero code-70s, batch overload is shed rather
   than absorbed, and p99 of the {e admitted} interactive requests
   stays bounded. *)
let overload_benchmarks ~seed =
  Report.heading "Overload (burst past the bounded admission queue)";
  let queue_cap = env_int "VARTUNE_OVERLOAD_QUEUE_CAP" 8 in
  let burst = env_int "VARTUNE_OVERLOAD_BURST" (4 * queue_cap) in
  (* more concurrent clients than queue slots + workers, otherwise the
     queue can never fill and nothing sheds *)
  let concurrency = env_int "VARTUNE_OVERLOAD_CONCURRENCY" (2 * queue_cap) in
  let workers = env_int "VARTUNE_OVERLOAD_WORKERS" 2 in
  let p99_bound_ms = float_of_int (env_int "VARTUNE_OVERLOAD_P99_MS" 30_000) in
  let tag = Printf.sprintf "vartune_bench_overload_%d" (Unix.getpid ()) in
  let socket = Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".sock") in
  let store = Store.open_dir (Filename.concat (Filename.get_temp_dir_name ()) tag) in
  Store.wipe store;
  (* every request's service time stretches, so the queue genuinely
     fills; the schedule is pinned for replayability *)
  (match Fault.configure "delay=1.0:7" with
  | Ok () -> ()
  | Error msg -> failwith ("overload benchmark: bad fault spec: " ^ msg));
  let h =
    Serve.start
      { Serve.socket; store = Some store; backlog = 64; workers; queue_cap;
        max_conns = 64 }
  in
  let r, server =
    Fun.protect
      ~finally:(fun () ->
        Serve.stop h;
        Fault.clear ())
      (fun () ->
        let r =
          Loadgen.run_overload
            {
              Loadgen.o_socket = socket;
              burst;
              o_concurrency = concurrency;
              o_seed = seed;
              o_samples = 2;
              retry = { Client.default_policy with attempts = 2; seed };
            }
        in
        (r, Serve.stats h))
  in
  Store.wipe store;
  let line label (c : Loadgen.class_stats) =
    Printf.printf
      "  %-24s sent %d  ok %d  shed %d  deadline %d  failed %d  retries %d  p99 %.1f \
       ms\n\
       %!"
      label c.Loadgen.c_sent c.Loadgen.c_ok c.Loadgen.c_shed c.Loadgen.c_deadline_dropped
      c.Loadgen.c_failed c.Loadgen.c_retries c.Loadgen.c_p99_ms
  in
  line "interactive" r.Loadgen.interactive;
  line "batch" r.Loadgen.batch;
  Printf.printf "  %-24s sheds %d  deadline drops %d  slow-client drops %d\n%!" "daemon"
    server.Serve.sheds server.Serve.deadline_drops server.Serve.slow_client_drops;
  let i = r.Loadgen.interactive and b = r.Loadgen.batch in
  let lost = i.Loadgen.c_failed + b.Loadgen.c_failed in
  let oc = open_out "BENCH_overload.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"burst\": %d,\n\
    \  \"queue_cap\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"concurrency\": %d,\n\
    \  \"interactive_sent\": %d,\n\
    \  \"interactive_ok\": %d,\n\
    \  \"interactive_shed\": %d,\n\
    \  \"interactive_p99_ms\": %.3f,\n\
    \  \"batch_sent\": %d,\n\
    \  \"batch_ok\": %d,\n\
    \  \"batch_shed\": %d,\n\
    \  \"batch_deadline_dropped\": %d,\n\
    \  \"batch_p99_ms\": %.3f,\n\
    \  \"retries\": %d,\n\
    \  \"replies\": %d,\n\
    \  \"lost\": %d,\n\
    \  \"code70\": %d,\n\
    \  \"server_sheds\": %d,\n\
    \  \"server_deadline_drops\": %d,\n\
    \  \"elapsed_s\": %.6f,\n\
    \  \"ocaml_version\": \"%s\"\n\
     }\n"
    seed burst queue_cap workers concurrency i.Loadgen.c_sent i.Loadgen.c_ok
    i.Loadgen.c_shed i.Loadgen.c_p99_ms b.Loadgen.c_sent b.Loadgen.c_ok b.Loadgen.c_shed
    b.Loadgen.c_deadline_dropped b.Loadgen.c_p99_ms
    (i.Loadgen.c_retries + b.Loadgen.c_retries)
    r.Loadgen.replies lost r.Loadgen.code70 server.Serve.sheds
    server.Serve.deadline_drops r.Loadgen.o_elapsed_s Sys.ocaml_version;
  close_out oc;
  Log.app (fun m -> m "wrote BENCH_overload.json");
  (* the typed-degradation contract is load-bearing: fail the bench,
     don't just report *)
  if r.Loadgen.code70 > 0 then
    failwith (Printf.sprintf "overload benchmark: %d code-70 replies" r.Loadgen.code70);
  if lost > 0 then
    failwith (Printf.sprintf "overload benchmark: %d requests got no reply" lost);
  if server.Serve.sheds + server.Serve.deadline_drops = 0 then
    failwith "overload benchmark: burst past capacity shed nothing";
  if i.Loadgen.c_ok > 0 && i.Loadgen.c_p99_ms > p99_bound_ms then
    failwith
      (Printf.sprintf
         "overload benchmark: admitted interactive p99 %.1f ms exceeds the %.0f ms bound"
         i.Loadgen.c_p99_ms p99_bound_ms)

(* ------------------------------------------------------------------ *)

(* Same telemetry outputs as the CLI's --trace / --metrics-out, driven
   by environment variables so `dune exec bench/main.exe` stays
   flag-free. *)
let setup_telemetry () =
  let trace = Sys.getenv_opt "VARTUNE_TRACE" in
  let metrics = Sys.getenv_opt "VARTUNE_METRICS_OUT" in
  if trace <> None || metrics <> None then begin
    Obs.set_enabled true;
    at_exit (fun () ->
        Option.iter
          (fun path ->
            Obs.write_trace path;
            Log.app (fun m -> m "wrote Chrome trace to %s (load in Perfetto)" path))
          trace;
        Option.iter
          (fun path ->
            Obs.write_metrics path;
            Log.app (fun m -> m "wrote metrics to %s" path))
          metrics)
  end

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  setup_telemetry ();
  let samples = env_int "VARTUNE_SAMPLES" 50 in
  let seed = env_int "VARTUNE_SEED" 42 in
  let t0 = Unix.gettimeofday () in
  Log.app (fun m -> m "vartune reproduction harness — N=%d samples, seed %d" samples seed);
  if Sys.getenv_opt "VARTUNE_SKIP_MICRO" = None then micro_benchmarks ();
  let setup = Experiment.prepare_request (Vartune_flow.Request.Min_period { seed; samples }) in
  if Sys.getenv_opt "VARTUNE_SKIP_PARALLEL" = None then
    parallel_benchmarks setup ~samples ~seed;
  if Sys.getenv_opt "VARTUNE_SKIP_STA" = None then sta_benchmarks ();
  if Sys.getenv_opt "VARTUNE_SKIP_STORE" = None then store_benchmarks ~samples ~seed;
  if Sys.getenv_opt "VARTUNE_SKIP_SERVE" = None then serve_benchmarks ~samples ~seed;
  if Sys.getenv_opt "VARTUNE_SKIP_KERNELS" = None then kernel_benchmarks ~samples ~seed;
  if Sys.getenv_opt "VARTUNE_SKIP_OVERLOAD" = None then overload_benchmarks ~seed;
  if Sys.getenv_opt "VARTUNE_SKIP_FIGURES" = None then Figures.run_all setup;
  Log.app (fun m -> m "total wall time: %.1f s" (Unix.gettimeofday () -. t0))
