(** Mutable gate-level netlists.

    The synthesis flow builds a netlist once and then mutates it in place:
    resizing swaps an instance's library cell within its family, buffering
    inserts instances and rewires sinks, decomposition replaces one
    instance with several.  Instances and nets are addressed by dense
    integer ids; removed instances leave tombstones so ids stay stable. *)

type net_id = int
type inst_id = int

type pin_ref = { inst : inst_id; pin : string }

type net = {
  net_id : net_id;
  net_name : string;
  mutable driver : pin_ref option;  (** [None] for primary inputs *)
  mutable sinks : pin_ref list;
}

type instance = {
  inst_id : inst_id;
  inst_name : string;
  mutable cell : Vartune_liberty.Cell.t;
  mutable inputs : (string * net_id) list;  (** pin name → driven-by net *)
  mutable outputs : (string * net_id) list;  (** pin name → driven net *)
}

type t

val create : name:string -> t
val name : t -> string

val add_net : t -> ?net_name:string -> unit -> net_id
val net : t -> net_id -> net
val net_count : t -> int

val add_instance :
  t ->
  inst_name:string ->
  cell:Vartune_liberty.Cell.t ->
  inputs:(string * net_id) list ->
  outputs:(string * net_id) list ->
  inst_id
(** Creates an instance and hooks its pins onto the nets.  Raises
    [Invalid_argument] if an output net already has a driver. *)

val remove_instance : t -> inst_id -> unit
(** Detaches the instance from all nets and tombstones it. *)

val instance : t -> inst_id -> instance
(** Raises [Invalid_argument] for removed or out-of-range ids. *)

val instance_opt : t -> inst_id -> instance option

val set_cell : t -> inst_id -> Vartune_liberty.Cell.t -> unit
(** Swaps the library cell of an instance (resizing).  The new cell must
    expose the pin names the instance uses. *)

val rewire_input : t -> inst:inst_id -> pin:string -> net_id -> unit
(** Moves one input pin of an instance onto a different net. *)

val iter_instances : t -> f:(instance -> unit) -> unit
(** Live instances only, in id order. *)

val fold_instances : t -> init:'a -> f:('a -> instance -> 'a) -> 'a
val iter_nets : t -> f:(net -> unit) -> unit

val instance_count : t -> int
(** Live instances. *)

val mark_primary_input : t -> net_id -> unit
val mark_primary_output : t -> net_id -> unit
val set_clock : t -> net_id -> unit
val primary_inputs : t -> net_id list
val primary_outputs : t -> net_id list
val clock : t -> net_id option

val total_area : t -> float
val cell_usage : t -> (string * int) list
(** Instance count per cell name, sorted descending then by name. *)

val family_usage : t -> (string * int) list

val fresh_name : t -> prefix:string -> string
(** A fresh, design-unique instance name. *)

(** {1 Faithful snapshots}

    [export]/[import] capture the {e exact} internal state — tombstone
    slots, sink-list order (which fixes the float summation order of net
    loads, hence last-ulp timing bits) and the name counter — so a
    round-tripped netlist is indistinguishable from the original to
    every downstream analysis.  Rebuilding through {!add_instance} could
    not guarantee that.  Used by the persistent artifact store. *)

type repr = {
  repr_name : string;
  repr_nets : (string * pin_ref option * pin_ref list) array;
      (** per net: name, driver, sinks in live order *)
  repr_instances :
    (string * Vartune_liberty.Cell.t * (string * net_id) list * (string * net_id) list)
    option
    array;  (** per slot: name, cell, inputs, outputs; [None] = tombstone *)
  repr_pis : net_id list;  (** in {!primary_inputs} order *)
  repr_pos : net_id list;
  repr_clock : net_id option;
  repr_name_counter : int;
}

val export : t -> repr

val import : repr -> t
(** Rebuilds a netlist from a snapshot, re-validating structural
    consistency (pins exist on their cells, net endpoints agree with
    instance connections).  Raises [Invalid_argument] on any
    inconsistency — malformed snapshots are rejected, not repaired. *)
