module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin

exception Combinational_loop of string

let validate nl =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let pi_set = Hashtbl.create 16 in
  List.iter (fun nid -> Hashtbl.replace pi_set nid ()) (Netlist.primary_inputs nl);
  Option.iter (fun c -> Hashtbl.replace pi_set c ()) (Netlist.clock nl);
  Netlist.iter_nets nl ~f:(fun n ->
      if n.Netlist.sinks <> [] && n.driver = None && not (Hashtbl.mem pi_set n.net_id) then
        err "net %s has sinks but no driver" n.net_name);
  Netlist.iter_instances nl ~f:(fun inst ->
      let cell = inst.Netlist.cell in
      List.iter
        (fun (p : Pin.t) ->
          let connected =
            if Pin.is_input p then List.mem_assoc p.name inst.inputs
            else List.mem_assoc p.name inst.outputs
          in
          if not connected then
            err "instance %s: pin %s of %s unconnected" inst.inst_name p.name cell.Cell.name)
        cell.pins;
      match (Cell.is_sequential cell, cell.clock_pin, Netlist.clock nl) with
      | true, Some ck, Some clock_net ->
        if List.assoc_opt ck inst.inputs <> Some clock_net then
          err "instance %s: clock pin %s not on the clock net" inst.inst_name ck
      | true, Some _, None -> err "design has sequential cells but no clock net"
      | true, None, _ -> err "sequential cell %s lacks a clock pin" cell.Cell.name
      | false, _, _ -> ());
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let validate_exn nl =
  match validate nl with
  | Ok () -> ()
  | Error es -> failwith (String.concat "\n" es)

(* Kahn's algorithm.  Edges run from a net's driver to its combinational
   sinks; sequential sinks take data without constraining order. *)
let topological_order nl =
  let n_insts =
    Netlist.fold_instances nl ~init:0 ~f:(fun acc inst -> max acc (inst.Netlist.inst_id + 1))
  in
  let indegree = Array.make n_insts 0 in
  let live = Array.make n_insts false in
  Netlist.iter_instances nl ~f:(fun inst -> live.(inst.inst_id) <- true);
  let comb inst_id =
    match Netlist.instance_opt nl inst_id with
    | Some inst -> not (Cell.is_sequential inst.cell)
    | None -> false
  in
  Netlist.iter_nets nl ~f:(fun net ->
      match net.Netlist.driver with
      | None -> ()
      | Some _ ->
        List.iter
          (fun (r : Netlist.pin_ref) -> if comb r.inst then indegree.(r.inst) <- indegree.(r.inst) + 1)
          net.sinks);
  let queue = Queue.create () in
  for i = 0 to n_insts - 1 do
    if live.(i) && indegree.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr seen;
    let inst = Netlist.instance nl id in
    List.iter
      (fun (_, nid) ->
        List.iter
          (fun (r : Netlist.pin_ref) ->
            if comb r.inst then begin
              indegree.(r.inst) <- indegree.(r.inst) - 1;
              if indegree.(r.inst) = 0 then Queue.add r.inst queue
            end)
          (Netlist.net nl nid).sinks)
      inst.outputs
  done;
  if !seen <> Netlist.instance_count nl then
    raise (Combinational_loop (Printf.sprintf "%d instances unreached" (Netlist.instance_count nl - !seen)));
  Array.of_list (List.rev !order)

let logic_depths nl =
  let order = topological_order nl in
  let depth = Hashtbl.create 256 in
  Array.iter
    (fun id ->
      let inst = Netlist.instance nl id in
      let d =
        if Cell.is_sequential inst.Netlist.cell then 0
        else begin
          let input_depth =
            List.fold_left
              (fun acc (_, nid) ->
                match (Netlist.net nl nid).driver with
                | None -> acc
                | Some (r : Netlist.pin_ref) ->
                  max acc (Option.value (Hashtbl.find_opt depth r.inst) ~default:0))
              0 inst.inputs
          in
          input_depth + 1
        end
      in
      Hashtbl.replace depth id d)
    order;
  Array.to_list (Array.map (fun id -> (id, Hashtbl.find depth id)) order)
