(** Structural validation and ordering of netlists. *)

exception Combinational_loop of string

val validate : Netlist.t -> (unit, string list) result
(** Structural checks: every sunk net is driven (or is a primary input),
    every cell pin of every instance is connected, sequential instances
    see the clock net on their clock pin. *)

val validate_exn : Netlist.t -> unit
(** Raises [Failure] with the concatenated error report. *)

val topological_order : Netlist.t -> Netlist.inst_id array
(** All live instances ordered so that every combinational instance
    appears after every instance driving one of its inputs.  Sequential
    and source-only instances come first.  Raises {!Combinational_loop}
    if combinational logic is cyclic. *)

val logic_depths : Netlist.t -> (Netlist.inst_id * int) list
(** Combinational depth (in cells) of each instance: 1 for instances fed
    only by sources, growing along combinational paths. *)
