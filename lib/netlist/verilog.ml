module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Net names may contain characters Verilog identifiers forbid ('[', ']');
   escaped identifiers (backslash ... space) cover them. *)
let is_simple_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

let mangle s = if is_simple_ident s then s else "\\" ^ s ^ " "

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let to_string nl =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let net_name nid = mangle (Netlist.net nl nid).Netlist.net_name in
  let pis = Netlist.primary_inputs nl in
  let pos = Netlist.primary_outputs nl in
  let clock = Netlist.clock nl in
  let ports =
    (match clock with Some c -> [ ("input", c) ] | None -> [])
    @ List.map (fun nid -> ("input", nid)) pis
    @ List.map (fun nid -> ("output", nid)) pos
  in
  add "module %s (\n" (mangle (Netlist.name nl));
  List.iteri
    (fun i (dir, nid) ->
      add "  %s %s%s\n" dir (net_name nid) (if i = List.length ports - 1 then "" else ","))
    ports;
  add ");\n";
  let port_set = Hashtbl.create 64 in
  List.iter (fun (_, nid) -> Hashtbl.replace port_set nid ()) ports;
  Netlist.iter_nets nl ~f:(fun net ->
      let nid = net.Netlist.net_id in
      if (not (Hashtbl.mem port_set nid)) && (net.Netlist.driver <> None || net.sinks <> [])
      then add "  wire %s;\n" (net_name nid));
  Netlist.iter_instances nl ~f:(fun inst ->
      let conns =
        List.map
          (fun (pin, nid) -> Printf.sprintf ".%s(%s)" pin (net_name nid))
          (inst.Netlist.inputs @ inst.Netlist.outputs)
      in
      add "  %s %s (%s);\n" inst.Netlist.cell.Cell.name
        (mangle inst.Netlist.inst_name)
        (String.concat ", " conns));
  add "endmodule\n";
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  output_string oc (to_string nl);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type token = Ident of string | Sym of char

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '\\' ->
        (* escaped identifier: up to whitespace *)
        let rec stop j = if j < n && src.[j] <> ' ' && src.[j] <> '\n' then stop (j + 1) else j in
        let j = stop (i + 1) in
        toks := Ident (String.sub src (i + 1) (j - i - 1)) :: !toks;
        go j
      | '(' | ')' | ';' | ',' | '.' ->
        toks := Sym src.[i] :: !toks;
        go (i + 1)
      | _ ->
        let is_id c =
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' | '[' | ']' -> true
          | _ -> false
        in
        if is_id src.[i] then begin
          let rec stop j = if j < n && is_id src.[j] then stop (j + 1) else j in
          let j = stop i in
          toks := Ident (String.sub src i (j - i)) :: !toks;
          go j
        end
        else fail "unexpected character %C" src.[i]
  in
  go 0;
  List.rev !toks

let parse ~library src =
  let toks = ref (tokenize src) in
  let next () =
    match !toks with
    | t :: rest ->
      toks := rest;
      t
    | [] -> fail "unexpected end of input"
  in
  let expect_sym c =
    match next () with
    | Sym s when s = c -> ()
    | Sym s -> fail "expected %C, found %C" c s
    | Ident s -> fail "expected %C, found %s" c s
  in
  let expect_ident () =
    match next () with Ident s -> s | Sym c -> fail "expected identifier, found %C" c
  in
  let expect_keyword kw =
    let s = expect_ident () in
    if s <> kw then fail "expected %s, found %s" kw s
  in
  expect_keyword "module";
  let name = expect_ident () in
  let nl = Netlist.create ~name in
  let nets = Hashtbl.create 256 in
  let net_of net_name =
    match Hashtbl.find_opt nets net_name with
    | Some nid -> nid
    | None ->
      let nid = Netlist.add_net nl ~net_name () in
      Hashtbl.replace nets net_name nid;
      nid
  in
  (* port list *)
  expect_sym '(';
  let rec ports () =
    match next () with
    | Sym ')' -> ()
    | Ident dir when dir = "input" || dir = "output" -> begin
      let port = expect_ident () in
      let nid = net_of port in
      (if dir = "input" then
         if port = "clk" then Netlist.set_clock nl nid else Netlist.mark_primary_input nl nid
       else Netlist.mark_primary_output nl nid);
      match next () with
      | Sym ',' -> ports ()
      | Sym ')' -> ()
      | t -> fail "bad port list near %s" (match t with Ident s -> s | Sym c -> String.make 1 c)
    end
    | Ident s -> fail "expected port direction, found %s" s
    | Sym c -> fail "expected port direction, found %C" c
  in
  ports ();
  expect_sym ';';
  (* body: wire declarations and instances until endmodule *)
  let rec body () =
    match next () with
    | Ident "endmodule" -> ()
    | Ident "wire" ->
      let rec wires () =
        ignore (net_of (expect_ident ()));
        match next () with
        | Sym ';' -> ()
        | Sym ',' -> wires ()
        | t -> fail "bad wire decl near %s" (match t with Ident s -> s | Sym c -> String.make 1 c)
      in
      wires ();
      body ()
    | Ident cell_name ->
      let inst_name = expect_ident () in
      let cell =
        match Library.find_opt library cell_name with
        | Some c -> c
        | None -> fail "unknown cell %s" cell_name
      in
      expect_sym '(';
      let inputs = ref [] and outputs = ref [] in
      let rec conns () =
        match next () with
        | Sym ')' -> ()
        | Sym '.' -> begin
          let pin = expect_ident () in
          expect_sym '(';
          let net = expect_ident () in
          expect_sym ')';
          let nid = net_of net in
          (match Cell.find_pin cell pin with
          | Some p when Vartune_liberty.Pin.is_output p -> outputs := (pin, nid) :: !outputs
          | Some _ -> inputs := (pin, nid) :: !inputs
          | None -> fail "cell %s has no pin %s" cell_name pin);
          match next () with
          | Sym ',' -> conns ()
          | Sym ')' -> ()
          | t ->
            fail "bad connection near %s" (match t with Ident s -> s | Sym c -> String.make 1 c)
        end
        | t -> fail "bad connection near %s" (match t with Ident s -> s | Sym c -> String.make 1 c)
      in
      conns ();
      expect_sym ';';
      ignore
        (Netlist.add_instance nl ~inst_name ~cell ~inputs:(List.rev !inputs)
           ~outputs:(List.rev !outputs));
      body ()
    | Sym c -> fail "unexpected %C in module body" c
  in
  body ();
  nl

let parse_file ~library path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse ~library src
