module Vec = Vartune_util.Vec
module Cell = Vartune_liberty.Cell

type net_id = int
type inst_id = int
type pin_ref = { inst : inst_id; pin : string }

type net = {
  net_id : net_id;
  net_name : string;
  mutable driver : pin_ref option;
  mutable sinks : pin_ref list;
}

type instance = {
  inst_id : inst_id;
  inst_name : string;
  mutable cell : Cell.t;
  mutable inputs : (string * net_id) list;
  mutable outputs : (string * net_id) list;
}

type t = {
  design_name : string;
  nets : net Vec.t;
  instances : instance option Vec.t;
  mutable live_instances : int;
  mutable pis : net_id list;
  mutable pos : net_id list;
  mutable clock_net : net_id option;
  mutable name_counter : int;
}

let create ~name =
  {
    design_name = name;
    nets = Vec.create ();
    instances = Vec.create ();
    live_instances = 0;
    pis = [];
    pos = [];
    clock_net = None;
    name_counter = 0;
  }

let name t = t.design_name

let add_net t ?net_name () =
  let net_id = Vec.length t.nets in
  let net_name = Option.value net_name ~default:(Printf.sprintf "n%d" net_id) in
  ignore (Vec.push t.nets { net_id; net_name; driver = None; sinks = [] });
  net_id

let net t id = Vec.get t.nets id
let net_count t = Vec.length t.nets

let check_pin_exists cell pin_name context =
  match Cell.find_pin cell pin_name with
  | Some _ -> ()
  | None ->
    invalid_arg
      (Printf.sprintf "Netlist: cell %s has no pin %s (%s)" cell.Cell.name pin_name context)

let add_instance t ~inst_name ~cell ~inputs ~outputs =
  let inst_id = Vec.length t.instances in
  List.iter (fun (p, _) -> check_pin_exists cell p "input") inputs;
  List.iter (fun (p, _) -> check_pin_exists cell p "output") outputs;
  let inst = { inst_id; inst_name; cell; inputs; outputs } in
  List.iter
    (fun (pin, nid) ->
      let n = net t nid in
      n.sinks <- { inst = inst_id; pin } :: n.sinks)
    inputs;
  List.iter
    (fun (pin, nid) ->
      let n = net t nid in
      if n.driver <> None then
        invalid_arg (Printf.sprintf "Netlist: net %s already driven" n.net_name);
      n.driver <- Some { inst = inst_id; pin })
    outputs;
  ignore (Vec.push t.instances (Some inst));
  t.live_instances <- t.live_instances + 1;
  inst_id

let instance_opt t id =
  if id < 0 || id >= Vec.length t.instances then None else Vec.get t.instances id

let instance t id =
  match instance_opt t id with
  | Some inst -> inst
  | None -> invalid_arg (Printf.sprintf "Netlist: no instance %d" id)

let remove_instance t id =
  let inst = instance t id in
  List.iter
    (fun (pin, nid) ->
      let n = net t nid in
      n.sinks <- List.filter (fun r -> not (r.inst = id && r.pin = pin)) n.sinks)
    inst.inputs;
  List.iter
    (fun (_, nid) ->
      let n = net t nid in
      n.driver <- None)
    inst.outputs;
  Vec.set t.instances id None;
  t.live_instances <- t.live_instances - 1

let set_cell t id cell =
  let inst = instance t id in
  List.iter (fun (p, _) -> check_pin_exists cell p "input") inst.inputs;
  List.iter (fun (p, _) -> check_pin_exists cell p "output") inst.outputs;
  inst.cell <- cell

let rewire_input t ~inst:id ~pin nid =
  let inst = instance t id in
  match List.assoc_opt pin inst.inputs with
  | None -> invalid_arg (Printf.sprintf "Netlist: instance %s has no input %s" inst.inst_name pin)
  | Some old_nid ->
    let old_net = net t old_nid in
    old_net.sinks <- List.filter (fun r -> not (r.inst = id && r.pin = pin)) old_net.sinks;
    let new_net = net t nid in
    new_net.sinks <- { inst = id; pin } :: new_net.sinks;
    inst.inputs <- List.map (fun (p, n) -> if p = pin then (p, nid) else (p, n)) inst.inputs

let iter_instances t ~f = Vec.iter (function Some inst -> f inst | None -> ()) t.instances

let fold_instances t ~init ~f =
  Vec.fold (fun acc -> function Some inst -> f acc inst | None -> acc) init t.instances

let iter_nets t ~f = Vec.iter f t.nets
let instance_count t = t.live_instances
let mark_primary_input t nid = t.pis <- nid :: t.pis
let mark_primary_output t nid = t.pos <- nid :: t.pos
let set_clock t nid = t.clock_net <- Some nid
let primary_inputs t = List.rev t.pis
let primary_outputs t = List.rev t.pos
let clock t = t.clock_net

let total_area t = fold_instances t ~init:0.0 ~f:(fun acc inst -> acc +. inst.cell.Cell.area)

let usage key_of t =
  let counts = Hashtbl.create 64 in
  iter_instances t ~f:(fun inst ->
      let key = key_of inst.cell in
      Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (na, ca) (nb, cb) ->
         if ca <> cb then compare cb ca else String.compare na nb)

let cell_usage t = usage (fun (c : Cell.t) -> c.name) t
let family_usage t = usage (fun (c : Cell.t) -> c.family) t

let fresh_name t ~prefix =
  t.name_counter <- t.name_counter + 1;
  Printf.sprintf "%s_%d" prefix t.name_counter

(* -------------------------------------------------------------------- *)
(* Faithful snapshots                                                    *)
(* -------------------------------------------------------------------- *)

type repr = {
  repr_name : string;
  repr_nets : (string * pin_ref option * pin_ref list) array;
  repr_instances :
    (string * Cell.t * (string * net_id) list * (string * net_id) list) option array;
  repr_pis : net_id list;
  repr_pos : net_id list;
  repr_clock : net_id option;
  repr_name_counter : int;
}

let export t =
  {
    repr_name = t.design_name;
    repr_nets =
      Array.map (fun n -> (n.net_name, n.driver, n.sinks)) (Vec.to_array t.nets);
    repr_instances =
      Array.map
        (Option.map (fun i -> (i.inst_name, i.cell, i.inputs, i.outputs)))
        (Vec.to_array t.instances);
    (* internal pi/po lists are reversed; snapshots use user order *)
    repr_pis = List.rev t.pis;
    repr_pos = List.rev t.pos;
    repr_clock = t.clock_net;
    repr_name_counter = t.name_counter;
  }

let import repr =
  let bad fmt = Printf.ksprintf invalid_arg ("Netlist.import: " ^^ fmt) in
  let n_nets = Array.length repr.repr_nets in
  let n_slots = Array.length repr.repr_instances in
  let check_net nid ctx = if nid < 0 || nid >= n_nets then bad "net %d out of range (%s)" nid ctx in
  let inst_of nid { inst; pin } ctx =
    if inst < 0 || inst >= n_slots then bad "instance %d out of range (%s of net %d)" inst ctx nid;
    match repr.repr_instances.(inst) with
    | None -> bad "net %d %s references tombstoned instance %d" nid ctx inst
    | Some (_, cell, inputs, outputs) ->
      let conns = if ctx = "driver" then outputs else inputs in
      (match Cell.find_pin cell pin with
      | Some _ -> ()
      | None -> bad "instance %d cell %s has no pin %s" inst cell.Cell.name pin);
      if List.assoc_opt pin conns <> Some nid then
        bad "net %d %s disagrees with instance %d pin %s" nid ctx inst pin
  in
  Array.iteri
    (fun nid (_, driver, sinks) ->
      Option.iter (fun r -> inst_of nid r "driver") driver;
      List.iter (fun r -> inst_of nid r "sink") sinks)
    repr.repr_nets;
  let live = ref 0 in
  Array.iter
    (Option.iter (fun (_, _, inputs, outputs) ->
         incr live;
         List.iter (fun (_, nid) -> check_net nid "instance input") inputs;
         List.iter (fun (_, nid) -> check_net nid "instance output") outputs))
    repr.repr_instances;
  List.iter (fun nid -> check_net nid "primary input") repr.repr_pis;
  List.iter (fun nid -> check_net nid "primary output") repr.repr_pos;
  Option.iter (fun nid -> check_net nid "clock") repr.repr_clock;
  let nets = Vec.create () in
  Array.iteri
    (fun net_id (net_name, driver, sinks) ->
      ignore (Vec.push nets { net_id; net_name; driver; sinks }))
    repr.repr_nets;
  let instances = Vec.create () in
  Array.iteri
    (fun inst_id slot ->
      ignore
        (Vec.push instances
           (Option.map
              (fun (inst_name, cell, inputs, outputs) ->
                { inst_id; inst_name; cell; inputs; outputs })
              slot)))
    repr.repr_instances;
  {
    design_name = repr.repr_name;
    nets;
    instances;
    live_instances = !live;
    pis = List.rev repr.repr_pis;
    pos = List.rev repr.repr_pos;
    clock_net = repr.repr_clock;
    name_counter = repr.repr_name_counter;
  }
