(** Structural Verilog interchange for mapped netlists.

    Writes a gate-level module with named port connections — the form
    every EDA tool exchanges — and reads the same subset back, resolving
    cell names against a library.  [parse (to_string nl)] reconstructs
    the netlist up to net/instance ids. *)

val to_string : Netlist.t -> string

val write_file : string -> Netlist.t -> unit

exception Parse_error of string

val parse : library:Vartune_liberty.Library.t -> string -> Netlist.t
(** Parses a gate-level module.  Primary inputs/outputs come from the
    port list; the clock is recognised as the input named [clk] (when
    present).  Raises {!Parse_error} on malformed input and
    [Not_found]-style errors when an instance references a cell absent
    from [library]. *)

val parse_file : library:Vartune_liberty.Library.t -> string -> Netlist.t
