module Arc = Vartune_liberty.Arc

type ff_features = { reset : bool; set : bool; enable : bool; scan : bool }

type t =
  | Inv
  | Buf
  | Nand of int
  | Nor of int
  | And of int
  | Or of int
  | Nand_b of int
  | Nor_b of int
  | Xor of int
  | Xnor of int
  | Mux2
  | Mux2_inv
  | Mux4
  | Full_adder
  | Half_adder
  | Maj3
  | Dff of ff_features
  | Dlat of { reset : bool }
  | Tie_low
  | Tie_high
  | Delay_buf

let letters = [| "A"; "B"; "C"; "D"; "E"; "F" |]
let first_letters n = List.init n (fun i -> letters.(i))

let input_names = function
  | Inv | Buf | Delay_buf -> [ "A" ]
  | Nand n | Nor n | And n | Or n | Nand_b n | Nor_b n | Xor n | Xnor n -> first_letters n
  | Mux2 | Mux2_inv -> [ "A"; "B"; "S" ]
  | Mux4 -> [ "A"; "B"; "C"; "D"; "S0"; "S1" ]
  | Full_adder | Maj3 -> [ "A"; "B"; "CI" ]
  | Half_adder -> [ "A"; "B" ]
  | Dff f ->
    let base = [ "D" ] in
    let base = if f.enable then base @ [ "E" ] else base in
    let base = if f.reset then base @ [ "RN" ] else base in
    let base = if f.set then base @ [ "SN" ] else base in
    if f.scan then base @ [ "SI"; "SE" ] else base
  | Dlat { reset } -> if reset then [ "D"; "RN" ] else [ "D" ]
  | Tie_low | Tie_high -> []

let output_names = function
  | Inv | Buf | Delay_buf | Nand _ | Nor _ | And _ | Or _ | Nand_b _ | Nor_b _
  | Xor _ | Xnor _ | Mux2 | Mux2_inv | Mux4 | Tie_low | Tie_high ->
    [ "Z" ]
  | Maj3 -> [ "CO" ]
  | Full_adder -> [ "S"; "CO" ]
  | Half_adder -> [ "S"; "CO" ]
  | Dff _ -> [ "Q" ]
  | Dlat _ -> [ "Q" ]

let clock_name = function
  | Dff _ -> Some "CK"
  | Dlat _ -> Some "G"
  | Inv | Buf | Delay_buf | Nand _ | Nor _ | And _ | Or _ | Nand_b _ | Nor_b _
  | Xor _ | Xnor _ | Mux2 | Mux2_inv | Mux4 | Full_adder | Half_adder | Maj3
  | Tie_low | Tie_high ->
    None

let is_sequential = function
  | Dff _ | Dlat _ -> true
  | Inv | Buf | Delay_buf | Nand _ | Nor _ | And _ | Or _ | Nand_b _ | Nor_b _
  | Xor _ | Xnor _ | Mux2 | Mux2_inv | Mux4 | Full_adder | Half_adder | Maj3
  | Tie_low | Tie_high ->
    false

let arc_sense t ~input ~output =
  ignore output;
  match t with
  | Inv | Nand _ | Nor _ | Mux2_inv -> Arc.Negative_unate
  | Nand_b n | Nor_b n ->
    (* the bubbled first input sees a non-inverting path *)
    ignore n;
    if input = "A" then Arc.Positive_unate else Arc.Negative_unate
  | Buf | Delay_buf | And _ | Or _ | Maj3 -> Arc.Positive_unate
  | Xor _ | Xnor _ | Mux2 | Mux4 | Full_adder | Half_adder -> Arc.Non_unate
  | Dff _ | Dlat _ -> Arc.Positive_unate
  | Tie_low | Tie_high -> Arc.Positive_unate

let inversions = function
  | Inv | Nand _ | Nor _ | Nand_b _ | Nor_b _ | Mux2_inv -> 1
  | Buf | And _ | Or _ | Mux2 | Half_adder | Maj3 -> 2
  | Xor _ | Xnor _ | Dlat _ -> 2
  | Mux4 | Full_adder -> 3
  | Dff _ -> 3
  | Delay_buf -> 4
  | Tie_low | Tie_high -> 1

let to_string = function
  | Inv -> "inv"
  | Buf -> "buf"
  | Nand n -> Printf.sprintf "nand%d" n
  | Nor n -> Printf.sprintf "nor%d" n
  | And n -> Printf.sprintf "and%d" n
  | Or n -> Printf.sprintf "or%d" n
  | Nand_b n -> Printf.sprintf "nand%db" n
  | Nor_b n -> Printf.sprintf "nor%db" n
  | Xor n -> Printf.sprintf "xor%d" n
  | Xnor n -> Printf.sprintf "xnor%d" n
  | Mux2 -> "mux2"
  | Mux2_inv -> "mux2i"
  | Mux4 -> "mux4"
  | Full_adder -> "fulladder"
  | Half_adder -> "halfadder"
  | Maj3 -> "maj3"
  | Dff f ->
    Printf.sprintf "dff%s%s%s%s"
      (if f.reset then "r" else "")
      (if f.set then "s" else "")
      (if f.enable then "e" else "")
      (if f.scan then "_scan" else "")
  | Dlat { reset } -> if reset then "dlatr" else "dlat"
  | Tie_low -> "tielo"
  | Tie_high -> "tiehi"
  | Delay_buf -> "dly"

let equal a b = a = b
