(** Electrical and physical specification of a cell family.

    A family (e.g. [ND2]) is one logic function with one topology, offered
    at several drive strengths.  The characteriser expands a spec into one
    liberty cell per drive strength.

    Units: time ns, capacitance pF, area µm². *)

type t = {
  family : string;  (** catalog name, e.g. ["ND2B"] *)
  func : Func.t;
  drives : int list;  (** available drive strengths, increasing *)
  logical_effort : float;
  (** input capacitance per drive unit, in units of the INV_1 input cap *)
  parasitic : float;  (** intrinsic delay in units of the technology tau *)
  rise_skew : float;
  (** rise/fall asymmetry: rise delay scales by [1 + rise_skew], fall by
      [1 - rise_skew] *)
  transistors : int;  (** device count at drive 1, drives the area model *)
  output_factors : (string * float) list;
  (** per-output delay factor for multi-output cells (e.g. an adder's sum
      output is slower than its carry); defaults to 1 *)
  setup_time : float;  (** ns; sequential families only *)
  hold_time : float;
}

val v :
  family:string ->
  func:Func.t ->
  drives:int list ->
  g:float ->
  p:float ->
  ?rise_skew:float ->
  transistors:int ->
  ?output_factors:(string * float) list ->
  ?setup_time:float ->
  ?hold_time:float ->
  unit ->
  t
(** Smart constructor; validates drives are positive and increasing. *)

val cell_name : t -> drive:int -> string
(** Paper-convention instance name, e.g. [cell_name nd2b ~drive:4 = "ND2B_4"]. *)

val area : t -> drive:int -> float
(** Layout area of one drive strength, µm². *)

val input_capacitance : t -> drive:int -> float
(** Input pin capacitance, pF. *)

val max_capacitance : t -> drive:int -> float
(** Output drive limit, pF. *)

val output_factor : t -> string -> float

val c_unit : float
(** Input capacitance of INV_1, pF. *)
