(** The 304-cell catalog.

    Matches the census of the paper's appendix:
    19 inverters, 36 OR-type, 46 NAND, 43 NOR, 29 XNOR-type, 34 adders,
    27 multiplexers, 51 flip-flops, 12 latches and 7 other cells. *)

val specs : Spec.t list
(** All cell-family specifications. *)

val find : string -> Spec.t option
(** Family by name. *)

val find_func : Func.t -> Spec.t option
(** First family implementing the given function. *)

val total_cells : int
(** Number of (family, drive) pairs — 304. *)

val census : (string * int) list
(** Cells per paper appendix group, e.g. [("Inverter", 19)]. *)

val group_of_family : string -> string
(** Appendix group of a family name, e.g. [group_of_family "ND2B" =
    "Nand"]. *)
