type t = {
  family : string;
  func : Func.t;
  drives : int list;
  logical_effort : float;
  parasitic : float;
  rise_skew : float;
  transistors : int;
  output_factors : (string * float) list;
  setup_time : float;
  hold_time : float;
}

let c_unit = 0.001 (* pF: 1 fF, the INV_1 input capacitance *)

let increasing_positive drives =
  let rec check prev = function
    | [] -> true
    | d :: rest -> d > prev && check d rest
  in
  check 0 drives

let v ~family ~func ~drives ~g ~p ?(rise_skew = 0.05) ~transistors ?(output_factors = [])
    ?(setup_time = 0.0) ?(hold_time = 0.0) () =
  if drives = [] || not (increasing_positive drives) then
    invalid_arg (Printf.sprintf "Spec.v %s: drives must be positive and increasing" family);
  if g <= 0.0 || p < 0.0 then invalid_arg (Printf.sprintf "Spec.v %s: bad effort" family);
  { family; func; drives; logical_effort = g; parasitic = p; rise_skew; transistors;
    output_factors; setup_time; hold_time }

let cell_name t ~drive = Printf.sprintf "%s_%d" t.family drive

(* Cell height is fixed by the row architecture; width grows with device
   count and with drive strength.  Shared diffusion and folded fingers
   make the per-drive increment well below proportional. *)
let area t ~drive =
  float_of_int t.transistors *. (0.21 +. (0.075 *. float_of_int drive))

let input_capacitance t ~drive = c_unit *. t.logical_effort *. float_of_int drive

(* A cell can drive roughly 12x its own drive-1 input load per drive unit
   before its output edge degrades beyond characterisation range. *)
let max_capacitance _t ~drive = c_unit *. 12.0 *. float_of_int drive

let output_factor t name = Option.value (List.assoc_opt name t.output_factors) ~default:1.0
