let v = Spec.v

(* Drive-strength ladders.  Denser ladders for the workhorse families. *)
let ladder19 = [ 1; 2; 3; 4; 5; 6; 7; 8; 10; 12; 14; 16; 18; 20; 22; 24; 26; 28; 32 ]
let ladder12 = [ 1; 2; 3; 4; 5; 6; 7; 8; 10; 12; 14; 16 ]
let ladder10 = [ 1; 2; 3; 4; 5; 6; 7; 8; 10; 12 ]
let ladder9 = [ 1; 2; 3; 4; 5; 6; 7; 8; 10 ]
let ladder8 = [ 1; 2; 3; 4; 5; 6; 8; 12 ]
let ladder8c = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let ladder7 = [ 1; 2; 3; 4; 5; 6; 8 ]
let ladder6 = [ 1; 2; 3; 4; 6; 8 ]

let inverters = [ v ~family:"INV" ~func:Func.Inv ~drives:ladder19 ~g:1.0 ~p:1.0 ~transistors:2 () ]

let or_group =
  [
    v ~family:"OR2" ~func:(Func.Or 2) ~drives:ladder6 ~g:1.8 ~p:2.8 ~transistors:6 ();
    v ~family:"OR3" ~func:(Func.Or 3) ~drives:ladder6 ~g:2.2 ~p:3.6 ~transistors:8 ();
    v ~family:"OR4" ~func:(Func.Or 4) ~drives:ladder6 ~g:2.6 ~p:4.4 ~transistors:10 ();
    v ~family:"AN2" ~func:(Func.And 2) ~drives:ladder6 ~g:1.5 ~p:2.6 ~transistors:6 ();
    v ~family:"AN3" ~func:(Func.And 3) ~drives:ladder6 ~g:1.9 ~p:3.3 ~transistors:8 ();
    v ~family:"AN4" ~func:(Func.And 4) ~drives:ladder6 ~g:2.3 ~p:4.0 ~transistors:10 ();
  ]

let nand_group =
  [
    v ~family:"ND2" ~func:(Func.Nand 2) ~drives:ladder10 ~g:1.33 ~p:1.7 ~transistors:4 ();
    v ~family:"ND2B" ~func:(Func.Nand_b 2) ~drives:ladder8 ~g:1.48 ~p:2.2 ~transistors:6 ();
    v ~family:"ND3" ~func:(Func.Nand 3) ~drives:ladder8 ~g:1.67 ~p:2.4 ~transistors:6 ();
    v ~family:"ND3B" ~func:(Func.Nand_b 3) ~drives:ladder6 ~g:1.82 ~p:2.9 ~transistors:8 ();
    v ~family:"ND4" ~func:(Func.Nand 4) ~drives:ladder8 ~g:2.0 ~p:3.1 ~transistors:8 ();
    v ~family:"ND4B" ~func:(Func.Nand_b 4) ~drives:ladder6 ~g:2.15 ~p:3.6 ~transistors:10 ();
  ]

let nor_group =
  [
    v ~family:"NR2" ~func:(Func.Nor 2) ~drives:ladder9 ~g:1.67 ~p:1.9 ~transistors:4 ();
    v ~family:"NR2B" ~func:(Func.Nor_b 2) ~drives:ladder8 ~g:1.82 ~p:2.4 ~transistors:6 ();
    v ~family:"NR3" ~func:(Func.Nor 3) ~drives:ladder7 ~g:2.33 ~p:2.8 ~transistors:6 ();
    v ~family:"NR3B" ~func:(Func.Nor_b 3) ~drives:ladder6 ~g:2.48 ~p:3.3 ~transistors:8 ();
    v ~family:"NR4" ~func:(Func.Nor 4) ~drives:ladder7 ~g:3.0 ~p:3.7 ~transistors:8 ();
    v ~family:"NR4B" ~func:(Func.Nor_b 4) ~drives:ladder6 ~g:3.15 ~p:4.2 ~transistors:10 ();
  ]

let xnor_group =
  [
    v ~family:"XN2" ~func:(Func.Xnor 2) ~drives:ladder8 ~g:3.0 ~p:3.9 ~rise_skew:0.02
      ~transistors:10 ();
    v ~family:"XN3" ~func:(Func.Xnor 3) ~drives:ladder6 ~g:4.5 ~p:5.7 ~rise_skew:0.02
      ~transistors:16 ();
    v ~family:"XO2" ~func:(Func.Xor 2) ~drives:ladder9 ~g:3.0 ~p:3.7 ~rise_skew:0.02
      ~transistors:10 ();
    v ~family:"XO3" ~func:(Func.Xor 3) ~drives:ladder6 ~g:4.5 ~p:5.5 ~rise_skew:0.02
      ~transistors:16 ();
  ]

let adder_group =
  [
    v ~family:"FA1" ~func:Func.Full_adder ~drives:ladder12 ~g:4.0 ~p:6.5 ~rise_skew:0.02
      ~transistors:28
      ~output_factors:[ ("S", 1.3); ("CO", 1.0) ]
      ();
    v ~family:"HA1" ~func:Func.Half_adder ~drives:ladder10 ~g:2.5 ~p:4.0 ~rise_skew:0.02
      ~transistors:14
      ~output_factors:[ ("S", 1.2); ("CO", 1.0) ]
      ();
    v ~family:"MAJ3" ~func:Func.Maj3 ~drives:ladder12 ~g:2.0 ~p:3.0 ~transistors:12 ();
  ]

let mux_group =
  [
    v ~family:"MU2" ~func:Func.Mux2 ~drives:ladder10 ~g:2.2 ~p:3.4 ~transistors:10 ();
    v ~family:"MU2I" ~func:Func.Mux2_inv ~drives:ladder9 ~g:2.0 ~p:2.9 ~transistors:8 ();
    v ~family:"MU4" ~func:Func.Mux4 ~drives:ladder8c ~g:3.2 ~p:5.8 ~transistors:22 ();
  ]

let ff ?(reset = false) ?(set = false) ?(enable = false) ?(scan = false) () =
  Func.Dff { reset; set; enable; scan }

let flip_flop_group =
  [
    v ~family:"DFF" ~func:(ff ()) ~drives:ladder10 ~g:1.2 ~p:6.0 ~transistors:22
      ~setup_time:0.055 ~hold_time:0.02 ();
    v ~family:"DFFR" ~func:(ff ~reset:true ()) ~drives:ladder9 ~g:1.25 ~p:6.3 ~transistors:24
      ~setup_time:0.06 ~hold_time:0.02 ();
    v ~family:"DFFS" ~func:(ff ~set:true ()) ~drives:ladder8c ~g:1.25 ~p:6.3 ~transistors:24
      ~setup_time:0.06 ~hold_time:0.02 ();
    v ~family:"DFFRS" ~func:(ff ~reset:true ~set:true ()) ~drives:ladder8c ~g:1.3 ~p:6.6
      ~transistors:26 ~setup_time:0.065 ~hold_time:0.022 ();
    v ~family:"DFFE" ~func:(ff ~enable:true ()) ~drives:ladder8c ~g:1.3 ~p:6.6 ~transistors:26
      ~setup_time:0.065 ~hold_time:0.022 ();
    v ~family:"SDFFR" ~func:(ff ~reset:true ~scan:true ()) ~drives:ladder8c ~g:1.35 ~p:6.9
      ~transistors:30 ~setup_time:0.07 ~hold_time:0.024 ();
  ]

let latch_group =
  [
    v ~family:"LAT" ~func:(Func.Dlat { reset = false }) ~drives:ladder6 ~g:1.2 ~p:3.6
      ~transistors:12 ~setup_time:0.04 ~hold_time:0.03 ();
    v ~family:"LATR" ~func:(Func.Dlat { reset = true }) ~drives:ladder6 ~g:1.25 ~p:3.9
      ~transistors:14 ~setup_time:0.045 ~hold_time:0.03 ();
  ]

let other_group =
  [
    v ~family:"BUF" ~func:Func.Buf ~drives:[ 2; 4; 8; 16 ] ~g:1.1 ~p:2.2 ~transistors:4 ();
    v ~family:"DLY1" ~func:Func.Delay_buf ~drives:[ 1 ] ~g:1.4 ~p:9.0 ~transistors:8 ();
    v ~family:"TIE0" ~func:Func.Tie_low ~drives:[ 1 ] ~g:1.0 ~p:0.0 ~transistors:2 ();
    v ~family:"TIE1" ~func:Func.Tie_high ~drives:[ 1 ] ~g:1.0 ~p:0.0 ~transistors:2 ();
  ]

let groups =
  [
    ("Inverter", inverters);
    ("Or", or_group);
    ("Nand", nand_group);
    ("Nor", nor_group);
    ("Xnor", xnor_group);
    ("Adder", adder_group);
    ("Multiplexer", mux_group);
    ("Flip-flop", flip_flop_group);
    ("Latch", latch_group);
    ("Other", other_group);
  ]

let specs = List.concat_map snd groups

let find family = List.find_opt (fun (s : Spec.t) -> s.family = family) specs

let find_func func = List.find_opt (fun (s : Spec.t) -> Func.equal s.func func) specs

let count_cells spec_list =
  List.fold_left (fun acc (s : Spec.t) -> acc + List.length s.drives) 0 spec_list

let total_cells = count_cells specs

let census = List.map (fun (group_name, group) -> (group_name, count_cells group)) groups

let group_of_family family =
  match
    List.find_opt (fun (_, group) -> List.exists (fun (s : Spec.t) -> s.family = family) group) groups
  with
  | Some (group_name, _) -> group_name
  | None -> "Unknown"
