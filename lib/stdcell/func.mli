(** Logic functions implemented by the standard cell catalog.

    The technology mapper matches generic netlist nodes against these
    functions; the characteriser uses them to derive pin lists and timing
    senses. *)

type ff_features = { reset : bool; set : bool; enable : bool; scan : bool }

type t =
  | Inv
  | Buf
  | Nand of int  (** n-input NAND, 2 <= n <= 4 *)
  | Nor of int
  | And of int
  | Or of int
  | Nand_b of int  (** NAND with the first input inverted (bubble) *)
  | Nor_b of int
  | Xor of int  (** 2 or 3 inputs *)
  | Xnor of int
  | Mux2  (** output = S ? B : A *)
  | Mux2_inv  (** inverting 2:1 mux *)
  | Mux4
  | Full_adder  (** outputs S and CO *)
  | Half_adder  (** outputs S and CO *)
  | Maj3  (** majority-of-3 (a carry gate) *)
  | Dff of ff_features
  | Dlat of { reset : bool }
  | Tie_low
  | Tie_high
  | Delay_buf  (** delay element; treated as a slow buffer *)

val input_names : t -> string list
(** Data-input pin names, e.g. [["A"; "B"]].  Excludes the clock. *)

val output_names : t -> string list
(** Output pin names, e.g. [["Z"]] or [["S"; "CO"]]. *)

val clock_name : t -> string option
(** [Some "CK"] for flip-flops, [Some "EN"]-less latches use ["G"]. *)

val is_sequential : t -> bool

val arc_sense : t -> input:string -> output:string -> Vartune_liberty.Arc.sense
(** Unateness of the input→output arc. *)

val inversions : t -> int
(** Number of logic inversion stages between input and output — drives the
    intrinsic-delay estimate in the characteriser. *)

val to_string : t -> string
(** Stable descriptive tag, e.g. ["nand3"]. *)

val equal : t -> t -> bool
