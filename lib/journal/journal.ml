module Store = Vartune_store.Store
module Codec = Vartune_store.Codec
module Fault = Vartune_fault.Fault
module Obs = Vartune_obs.Obs

let src = Logs.Src.create "vartune.journal" ~doc:"run journal"

module Log = (val Logs.src_log src : Logs.LOG)

(* Version 2 added a wall-clock timestamp to every record (the report's
   journal timeline and ETA); version-1 journals are refused cleanly. *)
let version = 2
let magic = "VTJRNL01"

exception Corrupt of string
exception Interrupted of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Vartune_journal.Journal.Corrupt(%s)" msg)
    | Interrupted msg -> Some (Printf.sprintf "Vartune_journal.Journal.Interrupted(%s)" msg)
    | _ -> None)

let c_appends = Obs.Counter.make "journal.appends"
let c_checkpoints = Obs.Counter.make "journal.checkpoints"
let c_replayed = Obs.Counter.make "journal.replayed_steps"

(* ------------------------------------------------------------------ *)
(* Steps                                                               *)
(* ------------------------------------------------------------------ *)

type step =
  | Run_started of {
      seed : int;
      samples : int;
      kind : string;
      mc_samples : int;
      period : float option;
      tuning : string;
      output : string option;
    }
  | Block_done of { statlib : string; lo : int; hi : int }
  | Checkpoint of { statlib : string; blocks : int; samples_done : int; key : string }
  | Statlib_built of { key : string }
  | Min_period of { key : string; period : float }
  | Synthesis_done of { key : string; label : string; period : float }
  | Sweep_done of { tuning : string; period : float; points : int }
  | Resumed of { replayed : int }
  | Sealed of { reason : string }

let step_to_string = function
  | Run_started { seed; samples; kind; mc_samples; period; tuning; output } ->
    Printf.sprintf "run-started kind=%s seed=%d samples=%d mc_samples=%d period=%s tuning=%s%s"
      kind seed samples mc_samples
      (match period with None -> "auto" | Some p -> Printf.sprintf "%.17g" p)
      (if tuning = "" then "-" else tuning)
      (match output with None -> "" | Some o -> " output=" ^ o)
  | Block_done { statlib = _; lo; hi } -> Printf.sprintf "block-done lo=%d hi=%d" lo hi
  | Checkpoint { statlib = _; blocks; samples_done; key = _ } ->
    Printf.sprintf "checkpoint blocks=%d samples=%d" blocks samples_done
  | Statlib_built _ -> "statlib-built"
  | Min_period { key = _; period } -> Printf.sprintf "min-period %.17g" period
  | Synthesis_done { key = _; label; period } ->
    Printf.sprintf "synthesis-done label=%s period=%.17g" label period
  | Sweep_done { tuning; period; points } ->
    Printf.sprintf "sweep-done tuning=%s period=%.17g points=%d" tuning period points
  | Resumed { replayed } -> Printf.sprintf "resumed replayed=%d" replayed
  | Sealed { reason } -> Printf.sprintf "sealed reason=%s" reason

let w_opt_float b = function
  | None -> Codec.w_bool b false
  | Some v ->
    Codec.w_bool b true;
    Codec.w_float b v

let r_opt_float r = if Codec.r_bool r then Some (Codec.r_float r) else None

let w_opt_string b = function
  | None -> Codec.w_bool b false
  | Some v ->
    Codec.w_bool b true;
    Codec.w_string b v

let r_opt_string r = if Codec.r_bool r then Some (Codec.r_string r) else None

let encode_step step =
  let b = Buffer.create 128 in
  (match step with
  | Run_started { seed; samples; kind; mc_samples; period; tuning; output } ->
    Codec.w_int b 0;
    Codec.w_int b seed;
    Codec.w_int b samples;
    Codec.w_string b kind;
    Codec.w_int b mc_samples;
    w_opt_float b period;
    Codec.w_string b tuning;
    w_opt_string b output
  | Block_done { statlib; lo; hi } ->
    Codec.w_int b 1;
    Codec.w_string b statlib;
    Codec.w_int b lo;
    Codec.w_int b hi
  | Checkpoint { statlib; blocks; samples_done; key } ->
    Codec.w_int b 2;
    Codec.w_string b statlib;
    Codec.w_int b blocks;
    Codec.w_int b samples_done;
    Codec.w_string b key
  | Statlib_built { key } ->
    Codec.w_int b 3;
    Codec.w_string b key
  | Min_period { key; period } ->
    Codec.w_int b 4;
    Codec.w_string b key;
    Codec.w_float b period
  | Synthesis_done { key; label; period } ->
    Codec.w_int b 5;
    Codec.w_string b key;
    Codec.w_string b label;
    Codec.w_float b period
  | Sweep_done { tuning; period; points } ->
    Codec.w_int b 6;
    Codec.w_string b tuning;
    Codec.w_float b period;
    Codec.w_int b points
  | Resumed { replayed } ->
    Codec.w_int b 7;
    Codec.w_int b replayed
  | Sealed { reason } ->
    Codec.w_int b 8;
    Codec.w_string b reason);
  Buffer.contents b

let decode_step r =
  match Codec.r_int r with
  | 0 ->
    let seed = Codec.r_int r in
    let samples = Codec.r_int r in
    let kind = Codec.r_string r in
    let mc_samples = Codec.r_int r in
    let period = r_opt_float r in
    let tuning = Codec.r_string r in
    let output = r_opt_string r in
    Run_started { seed; samples; kind; mc_samples; period; tuning; output }
  | 1 ->
    let statlib = Codec.r_string r in
    let lo = Codec.r_int r in
    let hi = Codec.r_int r in
    Block_done { statlib; lo; hi }
  | 2 ->
    let statlib = Codec.r_string r in
    let blocks = Codec.r_int r in
    let samples_done = Codec.r_int r in
    let key = Codec.r_string r in
    Checkpoint { statlib; blocks; samples_done; key }
  | 3 -> Statlib_built { key = Codec.r_string r }
  | 4 ->
    let key = Codec.r_string r in
    let period = Codec.r_float r in
    Min_period { key; period }
  | 5 ->
    let key = Codec.r_string r in
    let label = Codec.r_string r in
    let period = Codec.r_float r in
    Synthesis_done { key; label; period }
  | 6 ->
    let tuning = Codec.r_string r in
    let period = Codec.r_float r in
    let points = Codec.r_int r in
    Sweep_done { tuning; period; points }
  | 7 -> Resumed { replayed = Codec.r_int r }
  | 8 -> Sealed { reason = Codec.r_string r }
  | tag -> raise (Corrupt (Printf.sprintf "unknown step tag %d" tag))

(* 62-bit FNV-1a digest: truncated so the value survives the codec's
   int64 <-> OCaml-int round trip exactly on 63-bit systems. *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)

(* ------------------------------------------------------------------ *)
(* Journal files                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  mutable fd : Unix.file_descr option;
  lock : Mutex.t;
  mutable is_degraded : bool;
}

let header () =
  let b = Buffer.create 24 in
  Buffer.add_string b magic;
  Codec.w_int b version;
  Codec.w_int b Codec.version;
  Buffer.contents b

let write_fully fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
    end
  in
  go 0

let create path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_fully fd (header ());
  Unix.fsync fd;
  { path; fd = Some fd; lock = Mutex.create (); is_degraded = false }

let open_append path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  { path; fd = Some fd; lock = Mutex.create (); is_degraded = false }

let degraded t = Mutex.protect t.lock (fun () -> t.is_degraded)

let degrade_locked t reason =
  Log.warn (fun m ->
      m "journal %s disabled (%s): the run continues correctly but may not be resumable"
        t.path reason);
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  t.is_degraded <- true

let append t step =
  Mutex.protect t.lock (fun () ->
      match t.fd with
      | None -> ()
      | Some fd -> (
        try
          Fault.check Fault.Write ~site:"journal.append.write";
          (* Wall-clock ns since the epoch fits OCaml's 63-bit int; the
             timestamp rides inside the checksummed payload so a
             bit-flipped time is caught like any other damage. *)
          let payload =
            let b = Buffer.create 136 in
            Codec.w_int b (Int64.to_int (Obs.wall_ns ()));
            Buffer.add_string b (encode_step step);
            Buffer.contents b
          in
          let b = Buffer.create (String.length payload + 16) in
          Codec.w_int b (checksum payload);
          Codec.w_string b payload;
          let bytes = Buffer.contents b in
          (* An injected partial write lands a truncated record and then
             degrades — exactly what a crash mid-append leaves behind, so
             replay's corruption detection is exercised end to end. *)
          if Fault.fires Fault.Partial_write ~site:"journal.append.write" then begin
            write_fully fd (String.sub bytes 0 (String.length bytes / 2));
            (try Unix.fsync fd with Unix.Unix_error _ -> ());
            degrade_locked t "partial append"
          end
          else begin
            write_fully fd bytes;
            Fault.check Fault.Fsync ~site:"journal.append.fsync";
            Unix.fsync fd;
            Obs.Counter.incr c_appends
          end
        with
        | Unix.Unix_error (err, _, _) -> degrade_locked t (Unix.error_message err)
        | Sys_error reason -> degrade_locked t reason
        | Fault.Injected { point; _ } ->
          degrade_locked t
            (Printf.sprintf "injected %s fault" (Fault.point_to_string point))))

let close t =
  Mutex.protect t.lock (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.fd <- None)

let seal t ~reason =
  append t (Sealed { reason });
  close t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type timed = { at_ns : int64; step : step }

let replay_timed path =
  Fault.check Fault.Read ~site:"journal.replay.read";
  let contents = read_file path in
  let hlen = String.length (header ()) in
  if String.length contents < hlen then raise (Corrupt "truncated header");
  if String.sub contents 0 (String.length magic) <> magic then
    raise (Corrupt "bad magic: not a vartune journal");
  let steps =
    try
      let hdr = Codec.reader (String.sub contents (String.length magic) (hlen - String.length magic)) in
      let jver = Codec.r_int hdr in
      if jver <> version then
        raise (Corrupt (Printf.sprintf "journal version %d (supported: %d)" jver version));
      let cver = Codec.r_int hdr in
      if cver <> Codec.version then
        raise
          (Corrupt
             (Printf.sprintf
                "recorded under codec version %d but this build uses %d — cannot resume"
                cver Codec.version));
      let body = Codec.reader (String.sub contents hlen (String.length contents - hlen)) in
      let steps = ref [] in
      while not (Codec.at_end body) do
        let sum = Codec.r_int body in
        let payload = Codec.r_string body in
        if checksum payload <> sum then
          raise (Corrupt (Printf.sprintf "record %d failed its checksum" (List.length !steps)));
        let sr = Codec.reader payload in
        let at_ns = Int64.of_int (Codec.r_int sr) in
        let step = decode_step sr in
        if not (Codec.at_end sr) then
          raise (Corrupt (Printf.sprintf "record %d has trailing bytes" (List.length !steps)));
        steps := { at_ns; step } :: !steps
      done;
      List.rev !steps
    with Codec.Corrupt reason -> raise (Corrupt ("truncated or corrupt record: " ^ reason))
  in
  Obs.Counter.add c_replayed (List.length steps);
  steps

let replay path = List.map (fun t -> t.step) (replay_timed path)

(* ------------------------------------------------------------------ *)
(* Checkpoint context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  journal : t;
  state : Store.t;
  stop : bool Atomic.t;
  every_blocks : int;
  replayed : step list;
  stop_after_blocks : int option;
  blocks_recorded : int Atomic.t;
}

let env_positive_int name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v when String.trim v = "" -> default
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "%s=%S: expected a positive integer" name v))

let env_stop_after () =
  match Sys.getenv_opt "VARTUNE_STOP_AFTER_BLOCKS" with
  | None -> None
  | Some v when String.trim v = "" -> None
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> Some n
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "VARTUNE_STOP_AFTER_BLOCKS=%S: expected a positive integer" v))

let make_ctx ~journal ~state ?(replayed = []) ?every_blocks () =
  let every_blocks =
    match every_blocks with
    | Some k when k >= 1 -> k
    | Some k -> invalid_arg (Printf.sprintf "Journal.make_ctx: every_blocks %d must be >= 1" k)
    | None -> env_positive_int "VARTUNE_CKPT_BLOCKS" ~default:4
  in
  {
    journal;
    state;
    stop = Atomic.make false;
    every_blocks;
    replayed;
    stop_after_blocks = env_stop_after ();
    blocks_recorded = Atomic.make 0;
  }

let request_stop ctx = Atomic.set ctx.stop true
let stop_requested ctx = Atomic.get ctx.stop

let check_stop ctx =
  if Atomic.get ctx.stop then
    raise (Interrupted "stop requested at a stage boundary; progress so far is journaled")

let record ctx step =
  append ctx.journal step;
  (match step with
  | Block_done _ -> (
    let n = Atomic.fetch_and_add ctx.blocks_recorded 1 + 1 in
    match ctx.stop_after_blocks with
    | Some limit when n >= limit && not (stop_requested ctx) ->
      Log.info (fun m -> m "VARTUNE_STOP_AFTER_BLOCKS=%d reached: requesting stop" limit);
      request_stop ctx
    | _ -> ())
  | Checkpoint _ -> Obs.Counter.incr c_checkpoints
  | _ -> ())

let checkpoints_for ctx ~statlib =
  List.fold_left
    (fun acc step ->
      match step with
      | Checkpoint { statlib = id; blocks; samples_done; key = _ } when id = statlib ->
        (blocks, samples_done) :: acc
      | _ -> acc)
    [] ctx.replayed
