(** Append-only, checksummed run journal for crash-safe checkpoint/resume.

    A run directory holds a [journal.vtj] file recording pipeline
    progress as typed {!step}s, plus a [state/] artifact store (a
    regular {!Vartune_store.Store}) holding the checkpointed artifacts
    the steps refer to.  Steps are keyed by the same recipe fingerprints
    the store uses, so replaying the journal and probing the store by
    key is enough to decide what is already done — the journal never has
    to be trusted about artifact {e contents}.

    {2 File format}

    {v
    "VTJRNL01"  journal_version  codec_version     (header)
    checksum  payload                              (record, repeated)
    v}

    All integers are {!Vartune_store.Codec} fixed-width little-endian;
    [payload] is a length-prefixed string holding a wall-clock
    timestamp (ns since the epoch, covered by the checksum — journal
    version 2) followed by one encoded step, and [checksum] is a 62-bit
    FNV-1a digest of it.  Appends are serialised
    through a mutex, written with a single [write] and [fsync]ed, so a
    reader never observes a torn record from a graceful writer.  Replay
    verifies the header and every record checksum; a truncated or
    bit-flipped journal raises {!Corrupt} — resumption degrades to a
    clean typed error, never to a wrong result.

    {2 Failure policy}

    The journal is load-bearing for {e resumability}, not for results:
    if an append fails (real I/O error, or an injected
    [write]/[fsync]/[partial_write] fault), the handle degrades — one
    warning is logged, the file is closed, later appends become no-ops —
    and the run continues to a correct completion that simply may not be
    resumable.

    {2 Telemetry}

    [journal.appends], [journal.checkpoints] and
    [journal.replayed_steps] counters tick when {!Vartune_obs.Obs} is
    enabled, so checkpoint overhead and resume savings are measurable. *)

val version : int
(** Journal layout version (independent of the store codec version,
    which is recorded alongside it: artifacts checkpointed under one
    codec version cannot seed a pipeline running another). *)

exception Corrupt of string
(** The journal failed header, checksum or structural validation. *)

exception Interrupted of string
(** Raised by checkpoint-aware stages once a stop request has been
    honoured and the current progress is safely checkpointed.  Maps to
    the temporary-failure exit code (75): [vartune resume] continues
    the run. *)

(** {1 Steps} *)

type step =
  | Run_started of {
      seed : int;
      samples : int;
      kind : string;  (** ["statlib"] or ["experiment"] *)
      mc_samples : int;
      period : float option;
      tuning : string;  (** {!Vartune_tuning.Tuning_method.to_string} spelling *)
      output : string option;
    }  (** The run's full parameter set — what [resume] reconstructs. *)
  | Block_done of { statlib : string; lo : int; hi : int }
      (** Sample indices [\[lo, hi)] of the statistical library whose
          store-recipe id is [statlib] have been accumulated. *)
  | Checkpoint of { statlib : string; blocks : int; samples_done : int; key : string }
      (** A partial Welford state covering the first [blocks] sample
          blocks was saved to the run's state store under [key]. *)
  | Statlib_built of { key : string }
  | Min_period of { key : string; period : float }
  | Synthesis_done of { key : string; label : string; period : float }
  | Sweep_done of { tuning : string; period : float; points : int }
  | Resumed of { replayed : int }
  | Sealed of { reason : string }
      (** Last step of a graceful exit: ["completed"], ["interrupted"]
          or ["failed: ..."]. *)

val step_to_string : step -> string
(** One-line human-readable rendering (the [vartune journal] listing). *)

(** {1 Journal files} *)

type t
(** An open journal handle.  Appends are domain-safe. *)

val create : string -> t
(** Creates (truncating any previous file) and writes the header. *)

val open_append : string -> t
(** Opens an existing journal for appending.  Validate it first with
    {!replay}; this does not re-read the file. *)

val append : t -> step -> unit
(** Appends one checksummed, fsync'd record.  Never raises: an I/O
    failure degrades the handle (see above). *)

val seal : t -> reason:string -> unit
(** Appends {!Sealed} and closes the handle. *)

val close : t -> unit

val degraded : t -> bool
(** Whether an append failure has disabled this handle. *)

type timed = { at_ns : int64; step : step }
(** A replayed step with the wall clock at which it was appended. *)

val replay_timed : string -> timed list
(** Reads and validates the whole journal.  Raises {!Corrupt} on any
    header, checksum, truncation or decoding failure; raises the
    underlying [Unix_error]/[Sys_error] if the file cannot be read. *)

val replay : string -> step list
(** {!replay_timed} without the timestamps. *)

(** {1 Checkpoint context}

    The [ctx] threads everything checkpoint-aware stages need — the
    journal, the run's state store, the cooperative stop flag — through
    [Statistical.build] and [Experiment].  Stages call {!record} at
    progress boundaries and {!stop_requested} at safe points; the run
    supervisor's signal handlers call {!request_stop}. *)

type ctx = {
  journal : t;
  state : Vartune_store.Store.t;  (** the run's [state/] artifact store *)
  stop : bool Atomic.t;
  every_blocks : int;
      (** checkpoint cadence, in sample blocks ([VARTUNE_CKPT_BLOCKS],
          default 4); parallel stages round it up to the pool width *)
  replayed : step list;  (** steps recovered by [replay]; [[]] on a fresh run *)
  stop_after_blocks : int option;
      (** test hook ([VARTUNE_STOP_AFTER_BLOCKS]): request a stop after
          this many {!Block_done} records, as if a signal had arrived *)
  blocks_recorded : int Atomic.t;
}

val make_ctx :
  journal:t ->
  state:Vartune_store.Store.t ->
  ?replayed:step list ->
  ?every_blocks:int ->
  unit ->
  ctx
(** [every_blocks] defaults to [VARTUNE_CKPT_BLOCKS], else 4; a
    malformed or non-positive value raises [Invalid_argument] naming
    the offending token (the CLI pre-validates and exits 64).  The
    [VARTUNE_STOP_AFTER_BLOCKS] hook is read the same way. *)

val record : ctx -> step -> unit
(** {!append} plus bookkeeping: counts {!Block_done} records (feeding
    the [stop_after_blocks] hook) and the [journal.checkpoints]
    counter. *)

val request_stop : ctx -> unit
(** Asynchronously ask the pipeline to stop at the next safe point.
    Signal-handler safe: only flips an atomic. *)

val stop_requested : ctx -> bool

val check_stop : ctx -> unit
(** Raises {!Interrupted} if a stop has been requested.  For stage
    boundaries, where everything before is already journaled and
    everything after has not started — no checkpoint needs to be
    written first. *)

val checkpoints_for : ctx -> statlib:string -> (int * int) list
(** [(blocks, samples_done)] of every replayed {!Checkpoint} step for
    the given statistical-library recipe id, newest first — the order a
    resuming build should try (falling back on corrupt entries). *)
