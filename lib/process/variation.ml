module Rng = Vartune_util.Rng

type t = { sigma_global : float }

let default = { sigma_global = 0.045 }
let draw_factor t rng = 1.0 +. Rng.gaussian rng ~mean:0.0 ~sigma:t.sigma_global
