module Rng = Vartune_util.Rng

type t = { sigma_resistance : float; sigma_intrinsic : float }

(* Minimum-size devices at 40 nm: A_Vt ~ 2.5 mV.um over W.L ~ 0.12 x
   0.04 um gives sigma(Vt) ~ 36 mV, i.e. ~25-35 % drive-current spread at
   logic overdrive.  These defaults put the library's sigma surfaces in
   the range the paper's Table-2 parameter grid was designed for. *)
let default = { sigma_resistance = 0.36; sigma_intrinsic = 0.25 }

let pelgrom base ~stages ~drive =
  assert (drive > 0 && stages > 0);
  base /. sqrt (float_of_int (drive * stages))

let resistance_sigma t ?(stages = 1) ~drive () = pelgrom t.sigma_resistance ~stages ~drive
let intrinsic_sigma t ?(stages = 1) ~drive () = pelgrom t.sigma_intrinsic ~stages ~drive

(* All-float record: OCaml stores it as a flat float block, so a sample
   is unboxed storage whether or not the fields are mutable.  The
   mutable fields let [draw_into] refresh a caller-owned scratch sample
   in hot Monte-Carlo loops instead of allocating one per draw. *)
type sample = { mutable d_resistance : float; mutable d_intrinsic : float }

(* Shared constant — never pass it to [draw_into]. *)
let zero_sample = { d_resistance = 0.0; d_intrinsic = 0.0 }

let draw t rng ?(stages = 1) ~drive () =
  {
    d_resistance = Rng.gaussian rng ~mean:0.0 ~sigma:(resistance_sigma t ~stages ~drive ());
    d_intrinsic = Rng.gaussian rng ~mean:0.0 ~sigma:(intrinsic_sigma t ~stages ~drive ());
  }

(* Same draw order (resistance first) as [draw], with the Pelgrom
   sigmas precomputed by the caller — bit-identical when the sigmas
   were produced by [resistance_sigma]/[intrinsic_sigma] at the same
   stages/drive. *)
let draw_into rng ~resistance_sigma ~intrinsic_sigma dst =
  dst.d_resistance <- Rng.gaussian rng ~mean:0.0 ~sigma:resistance_sigma;
  dst.d_intrinsic <- Rng.gaussian rng ~mean:0.0 ~sigma:intrinsic_sigma
