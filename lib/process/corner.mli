(** Process–voltage–temperature corners.

    The paper characterises at the typical corner (TT, 1.1 V, 25 °C) and
    validates on fast and slow corners (Section VII-C).  A corner acts on
    the delay model as a single multiplicative factor on drive resistance
    and intrinsic delay, which is exactly why the paper observes mean and
    sigma scaling by the same factor across corners. *)

type speed = Fast | Typical | Slow

type t = {
  speed : speed;
  supply_voltage : float;  (** volts *)
  temperature : float;  (** °C *)
}

val fast : t
(** FF, 1.21 V, -40 °C. *)

val typical : t
(** TT, 1.1 V, 25 °C — the paper's TT1P1V25C. *)

val slow : t
(** SS, 0.99 V, 125 °C. *)

val all : t list

val delay_factor : t -> float
(** Multiplier on nominal (typical) delay: < 1 for fast, 1 for typical,
    > 1 for slow.  Derived from the supply/temperature point with a simple
    alpha-power-law style model. *)

val name : t -> string
(** Liberty-style corner tag, e.g. ["TT1P1V25C"]. *)

val speed_to_string : speed -> string
