type speed = Fast | Typical | Slow

type t = { speed : speed; supply_voltage : float; temperature : float }

let fast = { speed = Fast; supply_voltage = 1.21; temperature = -40.0 }
let typical = { speed = Typical; supply_voltage = 1.1; temperature = 25.0 }
let slow = { speed = Slow; supply_voltage = 0.99; temperature = 125.0 }
let all = [ fast; typical; slow ]

(* Alpha-power-law flavoured delay scaling: drive current grows like
   (V - Vt)^alpha and degrades with temperature.  The final exponent is
   an empirical fit compressing the raw V/T sensitivity to the corner
   spread of a 40 nm-class logic process: fast ~ 0.80x, slow ~ 1.31x of
   typical (gate delay is less V-sensitive than raw drive current because
   the swing shrinks with the supply). *)
let delay_factor t =
  let vt = 0.45 and alpha = 1.3 in
  let current v = v *. ((v -. vt) ** alpha) in
  let temperature_factor = 1.0 +. (0.0009 *. (t.temperature -. typical.temperature)) in
  let raw = current typical.supply_voltage /. current t.supply_voltage *. temperature_factor in
  raw ** 0.62

let speed_to_string = function Fast -> "FF" | Typical -> "TT" | Slow -> "SS"

let name t =
  let volts_tenths = int_of_float (Float.round (t.supply_voltage *. 10.0)) in
  Format.sprintf "%s%dP%dV%dC" (speed_to_string t.speed) (volts_tenths / 10)
    (volts_tenths mod 10)
    (int_of_float t.temperature)
