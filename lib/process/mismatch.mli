(** Local (intra-die) mismatch model.

    Follows Pelgrom's law: the standard deviation of a matched device
    parameter scales as [A / sqrt (W * L)].  In this project's cell-level
    abstraction the device area grows linearly with drive strength, so the
    relative sigma of a cell's electrical parameters scales as
    [1 / sqrt drive].  Two independent parameters are perturbed per cell
    sample: drive resistance (current factor) and threshold/intrinsic
    delay. *)

type t = {
  sigma_resistance : float;
  (** relative sigma of the drive resistance at drive strength 1 *)
  sigma_intrinsic : float;
  (** relative sigma of the intrinsic/threshold-linked delay at drive 1 *)
}

val default : t
(** 40 nm-class figures for minimum-size devices: 36 % resistance, 25 %
    intrinsic at drive 1 (single stage); large multi-stage cells see far
    less through drive and stage averaging. *)

val resistance_sigma : t -> ?stages:int -> drive:int -> unit -> float
(** Pelgrom-scaled relative resistance sigma.  Device area grows with
    [drive]; a cell built from [stages] series inversion stages averages
    independent per-stage mismatch, so the relative sigma scales as
    [1 / sqrt (drive * stages)]. *)

val intrinsic_sigma : t -> ?stages:int -> drive:int -> unit -> float

type sample = {
  mutable d_resistance : float;  (** relative deviation of drive resistance *)
  mutable d_intrinsic : float;  (** relative deviation of intrinsic delay *)
}
(** All-float record, stored flat and unboxed.  The fields are mutable
    so hot loops can reuse one scratch sample via [draw_into]; treat
    samples you did not allocate yourself as read-only. *)

val zero_sample : sample
(** Shared constant — never mutate it or pass it to [draw_into]. *)

val draw : t -> Vartune_util.Rng.t -> ?stages:int -> drive:int -> unit -> sample
(** One local-variation sample for one cell instance. *)

val draw_into :
  Vartune_util.Rng.t -> resistance_sigma:float -> intrinsic_sigma:float -> sample -> unit
(** Allocation-free [draw] with caller-precomputed Pelgrom sigmas:
    overwrites [sample] with fresh gaussian deviates, consuming the RNG
    in the same order as [draw] (resistance first) — bit-identical to
    [draw] when the sigmas come from [resistance_sigma] and
    [intrinsic_sigma] at the same stages/drive. *)
