(** Global (inter-die) variation model.

    Global variation shifts all cells on a die together; it is modelled as
    one normally-distributed multiplicative delay factor shared by every
    cell of a sample (Section VII-C, Fig. 16). *)

type t = { sigma_global : float  (** relative sigma of the shared factor *) }

val default : t
(** 4.5 % — a typical inter-die delay spread for a 40 nm-class process. *)

val draw_factor : t -> Vartune_util.Rng.t -> float
(** One die-level delay factor, centred on 1. *)
