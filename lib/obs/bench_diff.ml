(* Structural diff of two BENCH_*.json files with per-metric-class
   tolerance thresholds — the bench-history regression detector behind
   `vartune bench-diff`.

   Metrics are classified by their leaf key: [speedup] is
   higher-is-better, wall-clock seconds (keys ending in [_s] or named
   [seconds]) and work counts ([node_evals], [sta_runs], [eval_ratio],
   [retimes]) are lower-is-better, and everything else (seeds, sample
   counts, versions, cache statistics, ...) is informational — a change
   is reported but never gates.  Wall-clock gets a generous default
   tolerance because CI runners are noisy; counts are deterministic for
   a given design, so their tolerance is tight. *)

type cls = Time | Higher | Lower | Info

type status = Unchanged | Within | Regressed | Improved | Changed | Missing | Added

type finding = {
  path : string;
  cls : cls;
  old_v : string;  (* rendered old value, "-" when absent *)
  new_v : string;
  delta_pct : float option;  (* (new - old) / old, numeric leaves only *)
  status : status;
}

type tolerances = { time : float; speedup : float; count : float }

let default_tolerances = { time = 0.50; speedup = 0.10; count = 0.02 }

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let classify key =
  match key with
  | "speedup" -> Higher
  | "seconds" -> Time
  | "node_evals" | "sta_runs" | "retimes" | "eval_ratio" -> Lower
  | k when ends_with ~suffix:"_s" k -> Time
  | _ -> Info

let tolerance tol = function
  | Time -> tol.time
  | Higher -> tol.speedup
  | Lower -> tol.count
  | Info -> infinity

let render = function
  | Json.Number v -> Obs.float_json v
  | Json.String s -> s
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "null"
  | Json.Array _ -> "[...]"
  | Json.Object _ -> "{...}"

let leaf_key path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let numeric_status cls ~tol ~old_v ~new_v =
  if old_v = new_v then Unchanged
  else
    match cls with
    | Info -> Changed
    | Time | Higher | Lower ->
      let base = Float.max (Float.abs old_v) 1e-12 in
      let worse =
        match cls with
        | Higher -> new_v < old_v *. (1.0 -. tol) || (old_v = 0.0 && new_v < 0.0)
        | Time | Lower -> new_v > old_v +. (base *. tol)
        | Info -> false
      in
      let better =
        match cls with
        | Higher -> new_v > old_v +. (base *. tol)
        | Time | Lower -> new_v < old_v -. (base *. tol)
        | Info -> false
      in
      if worse then Regressed else if better then Improved else Within

let rec walk ~tol path old_j new_j acc =
  match (old_j, new_j) with
  | Json.Object old_kvs, Json.Object new_kvs ->
    let keys =
      List.sort_uniq compare (List.map fst old_kvs @ List.map fst new_kvs)
    in
    List.fold_left
      (fun acc key ->
        let sub = if path = "" then key else path ^ "." ^ key in
        match (List.assoc_opt key old_kvs, List.assoc_opt key new_kvs) with
        | Some o, Some n -> walk ~tol sub o n acc
        | Some o, None ->
          {
            path = sub;
            cls = classify key;
            old_v = render o;
            new_v = "-";
            delta_pct = None;
            status = Missing;
          }
          :: acc
        | None, Some n ->
          {
            path = sub;
            cls = classify key;
            old_v = "-";
            new_v = render n;
            delta_pct = None;
            status = Added;
          }
          :: acc
        | None, None -> acc)
      acc keys
  | Json.Array old_l, Json.Array new_l ->
    let rec go i acc = function
      | [], [] -> acc
      | o :: os, n :: ns -> go (i + 1) (walk ~tol (Printf.sprintf "%s[%d]" path i) o n acc) (os, ns)
      | o :: os, [] ->
        go (i + 1)
          ({
             path = Printf.sprintf "%s[%d]" path i;
             cls = Info;
             old_v = render o;
             new_v = "-";
             delta_pct = None;
             status = Missing;
           }
          :: acc)
          (os, [])
      | [], n :: ns ->
        go (i + 1)
          ({
             path = Printf.sprintf "%s[%d]" path i;
             cls = Info;
             old_v = "-";
             new_v = render n;
             delta_pct = None;
             status = Added;
           }
          :: acc)
          ([], ns)
    in
    go 0 acc (old_l, new_l)
  | Json.Number o, Json.Number n ->
    let cls = classify (leaf_key path) in
    let status = numeric_status cls ~tol:(tolerance tol cls) ~old_v:o ~new_v:n in
    let delta_pct = if o <> 0.0 then Some (100.0 *. (n -. o) /. Float.abs o) else None in
    { path; cls; old_v = render old_j; new_v = render new_j; delta_pct; status } :: acc
  | o, n ->
    let same = o = n in
    {
      path;
      cls = Info;
      old_v = render o;
      new_v = render n;
      delta_pct = None;
      status = (if same then Unchanged else Changed);
    }
    :: acc

let diff ?(tol = default_tolerances) ~old_json ~new_json () =
  List.rev (walk ~tol "" old_json new_json [])

(* A removed gated metric is a regression too: silently dropping
   node_evals from the bench output must not pass the gate. *)
let regressions findings =
  List.filter
    (fun f ->
      match (f.status, f.cls) with
      | Regressed, _ -> true
      | Missing, (Time | Higher | Lower) -> true
      | _ -> false)
    findings

let status_to_string = function
  | Unchanged -> "unchanged"
  | Within -> "within tolerance"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Changed -> "changed"
  | Missing -> "missing"
  | Added -> "added"

let cls_to_string = function
  | Time -> "time"
  | Higher -> "higher-better"
  | Lower -> "lower-better"
  | Info -> "info"

let to_text findings =
  let buf = Buffer.create 1024 in
  let interesting =
    List.filter (fun f -> f.status <> Unchanged && f.status <> Within) findings
  in
  let regs = regressions findings in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %-44s %s -> %s%s\n" (status_to_string f.status) f.path
           f.old_v f.new_v
           (match f.delta_pct with
           | Some d -> Printf.sprintf "  (%+.1f%%, %s)" d (cls_to_string f.cls)
           | None -> "")))
    interesting;
  Buffer.add_string buf
    (Printf.sprintf "%d metrics compared, %d changed, %d regression%s\n"
       (List.length findings) (List.length interesting) (List.length regs)
       (if List.length regs = 1 then "" else "s"));
  Buffer.contents buf

let to_json findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"findings\": [\n";
  let shown = List.filter (fun f -> f.status <> Unchanged) findings in
  List.iteri
    (fun i f ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"path\": %S, \"class\": %S, \"status\": %S, \"old\": %S, \"new\": %S%s}%s\n"
           f.path (cls_to_string f.cls) (status_to_string f.status) f.old_v f.new_v
           (match f.delta_pct with
           | Some d -> Printf.sprintf ", \"delta_pct\": %s" (Obs.float_json d)
           | None -> "")
           (if i = List.length shown - 1 then "" else ",")))
    shown;
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"compared\": %d,\n  \"regressions\": %d\n}\n"
       (List.length findings)
       (List.length (regressions findings)));
  Buffer.contents buf
