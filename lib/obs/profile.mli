(** Span-stream aggregation: the {!Obs} event stream (live, or read
    back from an exported Chrome trace) folded into a per-label call
    tree with child-exclusive self times, log-bucketed duration
    quantiles, GC/allocation attribution and a per-domain busy/idle
    utilization table.

    Nesting is rebuilt per domain track with the same stack algorithm
    {!Trace_check} uses.  Aggregation is keyed by the full label path —
    the tree keeps [pool.task] under [statlib.build] separate from
    [pool.task] under [sweep.run] — while the flat {!row} table merges
    by label. *)

type gc = Obs.gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type node = {
  label : string;
  path : string list;  (** label path from a root span *)
  count : int;
  total_us : float;
  self_us : float;  (** total minus direct children, clamped at 0 *)
  min_us : float;
  max_us : float;
  buckets : int array;  (** duration histogram, {!Obs.Buckets} layout *)
  gc : gc;  (** summed deltas, children included *)
  children : node list;  (** sorted by [total_us], descending *)
}

type row = {
  r_label : string;
  r_count : int;
  r_total_us : float;
  r_self_us : float;
  r_min_us : float;
  r_max_us : float;
  r_buckets : int array;
  r_gc : gc;
}

type domain_util = {
  dom : int;
  spans : int;  (** all spans recorded on this domain *)
  tasks : int;  (** [pool.task] spans *)
  busy_us : float;  (** total [pool.task] time *)
  util : float;  (** [busy_us] over the whole trace extent *)
}

type t = {
  span_count : int;
  wall_us : float;  (** trace extent: latest span end minus earliest start *)
  roots : node list;
  rows : row list;  (** flat per-label table, sorted by self time desc *)
  domains : domain_util list;
}

val of_events : Obs.event list -> t
(** Aggregates a span list (any order; it is re-sorted). *)

val of_json : Json.t -> (t, string) result
(** Aggregates a parsed Chrome trace (as written by {!Obs.trace_json});
    [Error] when the document has no complete span events. *)

val of_trace_string : string -> (t, string) result
val of_trace_file : string -> (t, string) result

val to_text : t -> string
(** Sorted text profile: flat table (self-time order, with p50/p90/p99
    and minor words per call), indented span tree, domain utilization
    and GC attribution tables. *)

val to_json : t -> string
(** Machine-readable profile artifact. *)
