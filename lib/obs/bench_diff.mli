(** Bench-history regression detection: structural diff of two
    BENCH_*.json documents with per-metric-class tolerances.

    Leaf keys classify metrics: [speedup] is higher-is-better,
    wall-clock seconds ([seconds], [*_s]) and deterministic work counts
    ([node_evals], [sta_runs], [retimes], [eval_ratio]) are
    lower-is-better, anything else is informational (reported when
    changed, never gating).  A gated metric {e missing} from the new
    document is a regression too. *)

type cls = Time | Higher | Lower | Info

type status = Unchanged | Within | Regressed | Improved | Changed | Missing | Added

type finding = {
  path : string;  (** dotted path, array indices as [stages\[2\]] *)
  cls : cls;
  old_v : string;
  new_v : string;
  delta_pct : float option;
  status : status;
}

type tolerances = {
  time : float;  (** relative, wall-clock metrics (default 0.50) *)
  speedup : float;  (** relative, higher-is-better ratios (default 0.10) *)
  count : float;  (** relative, deterministic counts (default 0.02) *)
}

val default_tolerances : tolerances

val diff : ?tol:tolerances -> old_json:Json.t -> new_json:Json.t -> unit -> finding list
(** Every compared path, in document order. *)

val regressions : finding list -> finding list
(** The findings that should fail a gate: [Regressed], plus gated
    metrics that went [Missing]. *)

val status_to_string : status -> string
val cls_to_string : cls -> string

val to_text : finding list -> string
(** Changed findings one per line plus a summary count line. *)

val to_json : finding list -> string
