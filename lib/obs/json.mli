(** Minimal JSON reader for validating the telemetry exporters.

    Recursive-descent parser over the full JSON grammar minus exotic
    number forms; enough to round-trip everything {!Obs} emits and the
    bench harness writes.  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parses a complete JSON document; the error string carries a byte
    offset. *)

val member : string -> t -> t option
(** [member key (Object _)] looks up [key]; [None] on missing key or
    non-object. *)

val to_float : t -> float option
val to_string_opt : t -> string option
val to_list : t -> t list option
