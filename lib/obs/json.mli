(** Minimal JSON reader for validating the telemetry exporters.

    Recursive-descent parser over the full JSON grammar minus exotic
    number forms; enough to round-trip everything {!Obs} emits and the
    bench harness writes.  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parses a complete JSON document; the error string carries a byte
    offset. *)

val member : string -> t -> t option
(** [member key (Object _)] looks up [key]; [None] on missing key or
    non-object. *)

val to_float : t -> float option
val to_string_opt : t -> string option
val to_list : t -> t list option

val float_string : float -> string
(** Shortest decimal rendering of a finite float that parses back to
    the identical bit pattern (tries ["%.15g"] then ["%.17g"]).
    Integers within 2^53 render without a fractional part.  Non-finite
    values render as [null] tokens are not representable in JSON, so
    [nan]/[inf] map to ["null"]. *)

val escape_string : string -> string
(** JSON string escaping (quotes included) for the ASCII control set;
    bytes >= 0x80 are passed through verbatim (UTF-8 assumed). *)

val to_string : t -> string
(** Compact one-line serialization.  [parse (to_string v)] yields a
    value structurally equal to [v] (object key order preserved,
    finite floats bit-exact). *)
