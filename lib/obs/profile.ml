(* Span-stream aggregation: fold the flat Obs event stream into a
   per-label-path call tree (count, total, child-exclusive self,
   log-bucketed duration quantiles, GC attribution) plus a per-domain
   busy/idle utilization table derived from pool.task spans.

   Nesting is rebuilt per domain track with the same stack algorithm
   Trace_check uses: events sorted by (dom, ts, -dur) put parents before
   their children, so a span's parent is the innermost span still open
   at its start.  Aggregation is keyed by the full label *path*, which
   keeps "pool.task under statlib.build" separate from "pool.task under
   sweep.run" in the tree while the flat table merges them by label. *)

(* Timestamps survive a %.3f-µs export round trip, so endpoints can be
   off by half an ulp of that grid (same tolerance as Trace_check). *)
let eps = 0.002

type gc = Obs.gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
  }

type node = {
  label : string;
  path : string list;
  count : int;
  total_us : float;
  self_us : float;
  min_us : float;
  max_us : float;
  buckets : int array;
  gc : gc;
  children : node list;
}

type row = {
  r_label : string;
  r_count : int;
  r_total_us : float;
  r_self_us : float;
  r_min_us : float;
  r_max_us : float;
  r_buckets : int array;
  r_gc : gc;
}

type domain_util = { dom : int; spans : int; tasks : int; busy_us : float; util : float }

type t = {
  span_count : int;
  wall_us : float;
  roots : node list;
  rows : row list;
  domains : domain_util list;
}

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_child : float;  (* total time of direct children *)
  mutable a_min : float;
  mutable a_max : float;
  a_buckets : int array;
  mutable a_gc : gc;
}

let fresh_acc () =
  {
    a_count = 0;
    a_total = 0.0;
    a_child = 0.0;
    a_min = Float.infinity;
    a_max = Float.neg_infinity;
    a_buckets = Array.make Obs.Buckets.count 0;
    a_gc = Obs.gc_zero;
  }

let key_of_path path = String.concat "\x1f" path

let of_events evs =
  (* dom asc, then start asc, then duration desc (parents before their
     children at equal start) — explicit Int/Float comparisons, not a
     polymorphic tuple compare that would box every float. *)
  let evs =
    List.sort
      (fun (a : Obs.event) (b : Obs.event) ->
        let c = Int.compare a.dom b.dom in
        if c <> 0 then c
        else
          let c = Float.compare a.ts_us b.ts_us in
          if c <> 0 then c else Float.compare b.dur_us a.dur_us)
      evs
  in
  let table : (string, string list * acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_for path =
    let key = key_of_path path in
    match Hashtbl.find_opt table key with
    | Some (_, a) -> a
    | None ->
      let a = fresh_acc () in
      Hashtbl.replace table key (path, a);
      a
  in
  let doms : (int, int * int * float) Hashtbl.t = Hashtbl.create 8 in
  let wall_lo = ref Float.infinity and wall_hi = ref Float.neg_infinity in
  let span_count = ref 0 in
  (* stack frames: (path, end time) for the open ancestors of the
     current event within one domain track *)
  let stack = ref [] in
  let current_dom = ref min_int in
  List.iter
    (fun (e : Obs.event) ->
      incr span_count;
      if e.Obs.dom <> !current_dom then begin
        current_dom := e.Obs.dom;
        stack := []
      end;
      let fin = e.Obs.ts_us +. e.Obs.dur_us in
      wall_lo := Float.min !wall_lo e.Obs.ts_us;
      wall_hi := Float.max !wall_hi fin;
      stack := List.filter (fun (_, open_end) -> open_end > e.Obs.ts_us +. eps) !stack;
      let parent_path = match !stack with [] -> [] | (p, _) :: _ -> p in
      (match !stack with
      | (p, _) :: _ -> (acc_for p).a_child <- (acc_for p).a_child +. e.Obs.dur_us
      | [] -> ());
      let path = parent_path @ [ e.Obs.name ] in
      let a = acc_for path in
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total +. e.Obs.dur_us;
      a.a_min <- Float.min a.a_min e.Obs.dur_us;
      a.a_max <- Float.max a.a_max e.Obs.dur_us;
      let bi = Obs.Buckets.index e.Obs.dur_us in
      a.a_buckets.(bi) <- a.a_buckets.(bi) + 1;
      a.a_gc <- gc_add a.a_gc e.Obs.gc;
      stack := (path, fin) :: !stack;
      let spans, tasks, busy =
        Option.value (Hashtbl.find_opt doms e.Obs.dom) ~default:(0, 0, 0.0)
      in
      let tasks, busy =
        if e.Obs.name = "pool.task" then (tasks + 1, busy +. e.Obs.dur_us) else (tasks, busy)
      in
      Hashtbl.replace doms e.Obs.dom (spans + 1, tasks, busy))
    evs;
  let wall_us = if !span_count = 0 then 0.0 else !wall_hi -. !wall_lo in
  (* tree: children of a path are exactly the table keys one level
     deeper with that path as prefix *)
  let entries = Hashtbl.fold (fun _ pa acc -> pa :: acc) table [] in
  let rec build_node (path, (a : acc)) =
    let children =
      List.filter_map
        (fun (p, a') ->
          if List.length p = List.length path + 1
             && List.for_all2 String.equal path (List.filteri (fun i _ -> i < List.length path) p)
          then Some (build_node (p, a'))
          else None)
        entries
    in
    let children = List.sort (fun x y -> Float.compare y.total_us x.total_us) children in
    {
      label = List.nth path (List.length path - 1);
      path;
      count = a.a_count;
      total_us = a.a_total;
      self_us = Float.max 0.0 (a.a_total -. a.a_child);
      min_us = a.a_min;
      max_us = a.a_max;
      buckets = a.a_buckets;
      gc = a.a_gc;
      children;
    }
  in
  let roots =
    entries
    |> List.filter (fun (p, _) -> List.length p = 1)
    |> List.map build_node
    |> List.sort (fun x y -> Float.compare y.total_us x.total_us)
  in
  (* flat rows: merge by label across every path *)
  let flat : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (path, (a : acc)) ->
      let label = List.nth path (List.length path - 1) in
      let f =
        match Hashtbl.find_opt flat label with
        | Some f -> f
        | None ->
          let f = fresh_acc () in
          Hashtbl.replace flat label f;
          f
      in
      f.a_count <- f.a_count + a.a_count;
      f.a_total <- f.a_total +. a.a_total;
      f.a_child <- f.a_child +. a.a_child;
      f.a_min <- Float.min f.a_min a.a_min;
      f.a_max <- Float.max f.a_max a.a_max;
      Array.iteri (fun i c -> f.a_buckets.(i) <- f.a_buckets.(i) + c) a.a_buckets;
      f.a_gc <- gc_add f.a_gc a.a_gc)
    entries;
  let rows =
    Hashtbl.fold
      (fun label (a : acc) acc ->
        {
          r_label = label;
          r_count = a.a_count;
          r_total_us = a.a_total;
          r_self_us = Float.max 0.0 (a.a_total -. a.a_child);
          r_min_us = a.a_min;
          r_max_us = a.a_max;
          r_buckets = a.a_buckets;
          r_gc = a.a_gc;
        }
        :: acc)
      flat []
    |> List.sort (fun x y ->
           let c = Float.compare y.r_self_us x.r_self_us in
           if c <> 0 then c else compare x.r_label y.r_label)
  in
  let domains =
    Hashtbl.fold
      (fun dom (spans, tasks, busy) acc ->
        {
          dom;
          spans;
          tasks;
          busy_us = busy;
          util = (if wall_us > 0.0 then busy /. wall_us else 0.0);
        }
        :: acc)
      doms []
    |> List.sort (fun a b -> compare a.dom b.dom)
  in
  { span_count = !span_count; wall_us; roots; rows; domains }

(* ------------------------------------------------------------------ *)
(* Trace-file input                                                    *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* Inverse of Obs.trace_json for the fields the profile uses: "X"
   events back into Obs.event records.  Unknown args stay as string
   attrs; gc_* args and wall_start_ns are recognised. *)
let events_of_trace json =
  match Json.member "traceEvents" json with
  | None -> Error "root object has no traceEvents"
  | Some evs -> (
    match Json.to_list evs with
    | None -> Error "traceEvents is not an array"
    | Some evs ->
      let parse_event ev =
        let str key = Option.bind (Json.member key ev) Json.to_string_opt in
        let num key = Option.bind (Json.member key ev) Json.to_float in
        match str "ph" with
        | Some "X" -> (
          match (str "name", num "tid", num "ts", num "dur") with
          | Some name, Some tid, Some ts, Some dur ->
            let args = Option.value (Json.member "args" ev) ~default:(Json.Object []) in
            let anum key = Option.bind (Json.member key args) Json.to_float in
            let gc =
              {
                minor_words = Option.value (anum "gc_minor_words") ~default:0.0;
                major_words = Option.value (anum "gc_major_words") ~default:0.0;
                minor_collections =
                  int_of_float (Option.value (anum "gc_minor_collections") ~default:0.0);
                major_collections =
                  int_of_float (Option.value (anum "gc_major_collections") ~default:0.0);
              }
            in
            let wall =
              match Option.bind (Json.member "wall_start_ns" args) Json.to_string_opt with
              | Some s -> Option.value (Int64.of_string_opt s) ~default:0L
              | None -> 0L
            in
            let attrs =
              match args with
              | Json.Object kvs ->
                List.filter_map
                  (fun (k, v) ->
                    match v with
                    | Json.String s when k <> "wall_start_ns" -> Some (k, s)
                    | _ -> None)
                  kvs
              | _ -> []
            in
            Ok
              (Some
                 {
                   Obs.name;
                   dom = int_of_float tid;
                   ts_us = ts;
                   dur_us = dur;
                   wall_start_ns = wall;
                   gc;
                   attrs;
                 })
          | _ -> Error "X event missing name/tid/ts/dur")
        | Some _ -> Ok None
        | None -> Error "event missing ph"
      in
      let* evs =
        List.fold_left
          (fun acc ev ->
            let* parsed = acc in
            let* one = parse_event ev in
            Ok (match one with Some e -> e :: parsed | None -> parsed))
          (Ok []) evs
      in
      Ok (List.rev evs))

let of_json json =
  let* evs = events_of_trace json in
  if evs = [] then Error "trace contains no complete (X) span events"
  else Ok (of_events evs)

let of_trace_string s =
  let* json = Json.parse s in
  of_json json

let of_trace_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_trace_string s

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let q_of_row r q =
  Obs.Buckets.quantile ~counts:r.r_buckets ~total:r.r_count ~min_v:r.r_min_us
    ~max_v:r.r_max_us q

let s_of_us us = us /. 1e6

let to_text t =
  let buf = Buffer.create 2048 in
  let self_sum = List.fold_left (fun acc r -> acc +. r.r_self_us) 0.0 t.rows in
  Buffer.add_string buf
    (Printf.sprintf "span profile: %d spans, wall %.3f s, accounted self %.3f s\n"
       t.span_count (s_of_us t.wall_us) (s_of_us self_sum));
  Buffer.add_string buf
    (Printf.sprintf "%10s %10s %6s %8s %12s %12s %12s %14s  %s\n" "total s" "self s" "self%"
       "calls" "p50 us" "p90 us" "p99 us" "minor w/call" "label");
  List.iter
    (fun r ->
      let pct = if self_sum > 0.0 then 100.0 *. r.r_self_us /. self_sum else 0.0 in
      Buffer.add_string buf
        (Printf.sprintf "%10.3f %10.3f %5.1f%% %8d %12.1f %12.1f %12.1f %14.0f  %s\n"
           (s_of_us r.r_total_us) (s_of_us r.r_self_us) pct r.r_count (q_of_row r 0.5)
           (q_of_row r 0.9) (q_of_row r 0.99)
           (r.r_gc.minor_words /. float_of_int (max 1 r.r_count))
           r.r_label))
    t.rows;
  Buffer.add_string buf "\nspan tree (total s / self s / calls):\n";
  let rec tree depth n =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %9.3f %9.3f %7d\n"
         (String.make (2 * depth) ' ')
         (max 1 (40 - (2 * depth)))
         n.label (s_of_us n.total_us) (s_of_us n.self_us) n.count);
    List.iter (tree (depth + 1)) n.children
  in
  List.iter (tree 1) t.roots;
  Buffer.add_string buf "\ndomain utilization (pool.task busy / trace wall):\n";
  Buffer.add_string buf
    (Printf.sprintf "  %6s %8s %8s %10s %7s\n" "domain" "spans" "tasks" "busy s" "util");
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %6d %8d %8d %10.3f %6.1f%%\n" d.dom d.spans d.tasks
           (s_of_us d.busy_us) (100.0 *. d.util)))
    t.domains;
  let gc_rows =
    List.filter (fun r -> r.r_gc.minor_words > 0.0 || r.r_gc.major_words > 0.0) t.rows
    |> List.sort (fun a b -> Float.compare b.r_gc.minor_words a.r_gc.minor_words)
  in
  if gc_rows <> [] then begin
    Buffer.add_string buf "\nGC attribution (per span, children included):\n";
    Buffer.add_string buf
      (Printf.sprintf "  %14s %14s %8s %8s %8s  %s\n" "minor words" "major words" "min gc"
         "maj gc" "calls" "label");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %14.0f %14.0f %8d %8d %8d  %s\n" r.r_gc.minor_words
             r.r_gc.major_words r.r_gc.minor_collections r.r_gc.major_collections r.r_count
             r.r_label))
      gc_rows
  end;
  Buffer.contents buf

let esc = Obs.float_json

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"spans\": %d,\n  \"wall_us\": %s,\n  \"rows\": [\n" t.span_count
       (esc t.wall_us));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"label\": %S, \"count\": %d, \"total_us\": %s, \"self_us\": %s, \
            \"p50_us\": %s, \"p90_us\": %s, \"p99_us\": %s, \"gc_minor_words\": %s, \
            \"gc_major_words\": %s, \"gc_minor_collections\": %d, \
            \"gc_major_collections\": %d}%s\n"
           r.r_label r.r_count (esc r.r_total_us) (esc r.r_self_us) (esc (q_of_row r 0.5))
           (esc (q_of_row r 0.9))
           (esc (q_of_row r 0.99))
           (esc r.r_gc.minor_words) (esc r.r_gc.major_words) r.r_gc.minor_collections
           r.r_gc.major_collections
           (if i = List.length t.rows - 1 then "" else ",")))
    t.rows;
  Buffer.add_string buf "  ],\n  \"tree\": [";
  let rec tree n =
    Printf.sprintf
      "{\"label\": %S, \"count\": %d, \"total_us\": %s, \"self_us\": %s, \"children\": [%s]}"
      n.label n.count (esc n.total_us) (esc n.self_us)
      (String.concat ", " (List.map tree n.children))
  in
  Buffer.add_string buf (String.concat ", " (List.map tree t.roots));
  Buffer.add_string buf "],\n  \"domains\": [\n";
  List.iteri
    (fun i d ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domain\": %d, \"spans\": %d, \"tasks\": %d, \"busy_us\": %s, \"util\": \
            %s}%s\n"
           d.dom d.spans d.tasks (esc d.busy_us) (esc d.util)
           (if i = List.length t.domains - 1 then "" else ",")))
    t.domains;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
