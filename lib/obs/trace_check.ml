type stats = { total : int; spans : int; domains : int; names : string list }

(* Timestamps are exported with %.3f (nanosecond) precision, so parent
   and child endpoints can each be off by half an ulp of that grid. *)
let eps = 0.002

type span = { sname : string; tid : int; ts : float; dur : float }

let ( let* ) = Result.bind

let event_fields idx ev =
  let fail msg = Error (Printf.sprintf "event %d: %s" idx msg) in
  match Json.member "ph" ev with
  | None -> fail "missing ph"
  | Some ph -> (
    match Json.to_string_opt ph with
    | None -> fail "ph is not a string"
    | Some ph ->
      let str key = Option.bind (Json.member key ev) Json.to_string_opt in
      let num key = Option.bind (Json.member key ev) Json.to_float in
      if str "name" = None then fail "missing string name"
      else if num "pid" = None then fail "missing numeric pid"
      else if num "tid" = None then fail "missing numeric tid"
      else (
        match ph with
        | "M" | "C" -> Ok None
        | "X" -> (
          match (num "ts", num "dur") with
          | Some ts, Some dur when dur >= 0.0 ->
            Ok
              (Some
                 {
                   sname = Option.get (str "name");
                   tid = int_of_float (Option.get (num "tid"));
                   ts;
                   dur;
                 })
          | Some _, Some _ -> fail "negative dur"
          | _ -> fail "X event missing numeric ts/dur")
        | other -> fail (Printf.sprintf "unsupported phase %S" other)))

(* File order within a track must already be monotone in ts. *)
let check_monotone spans =
  let tracks = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok ()
    | s :: rest -> (
      match Hashtbl.find_opt tracks s.tid with
      | Some prev when s.ts < prev -. eps ->
        Error
          (Printf.sprintf "track %d: ts %.3f goes backwards (previous %.3f)" s.tid s.ts prev)
      | _ ->
        Hashtbl.replace tracks s.tid s.ts;
        go rest)
  in
  go spans

(* Within a track, spans sorted by (start, -dur) must nest: each span
   ends no later than the innermost span still open at its start. *)
let check_nesting spans =
  let by_track = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let cur = Option.value (Hashtbl.find_opt by_track s.tid) ~default:[] in
      Hashtbl.replace by_track s.tid (s :: cur))
    spans;
  Hashtbl.fold
    (fun tid track acc ->
      let* () = acc in
      let sorted =
        List.sort
          (fun a b ->
            let c = compare a.ts b.ts in
            if c <> 0 then c else compare b.dur a.dur)
          track
      in
      let rec go stack = function
        | [] -> Ok ()
        | s :: rest ->
          let fin = s.ts +. s.dur in
          let stack = List.filter (fun open_end -> open_end > s.ts +. eps) stack in
          (match stack with
          | open_end :: _ when fin > open_end +. eps ->
            Error
              (Printf.sprintf
                 "track %d: span %s [%.3f, %.3f] overlaps its enclosing span ending at %.3f"
                 tid s.sname s.ts fin open_end)
          | _ -> go (fin :: stack) rest)
      in
      go [] sorted)
    by_track (Ok ())

let validate json =
  match Json.member "traceEvents" json with
  | None -> Error "root object has no traceEvents"
  | Some evs -> (
    match Json.to_list evs with
    | None -> Error "traceEvents is not an array"
    | Some evs ->
      let* spans =
        List.fold_left
          (fun acc (idx, ev) ->
            let* spans = acc in
            let* parsed = event_fields idx ev in
            Ok (match parsed with Some s -> s :: spans | None -> spans))
          (Ok [])
          (List.mapi (fun i e -> (i, e)) evs)
      in
      let spans = List.rev spans in
      if spans = [] then Error "trace contains no complete (X) span events"
      else
        let* () = check_monotone spans in
        let* () = check_nesting spans in
        Ok
          {
            total = List.length evs;
            spans = List.length spans;
            domains = List.length (List.sort_uniq compare (List.map (fun s -> s.tid) spans));
            names = List.sort_uniq compare (List.map (fun s -> s.sname) spans);
          })

let validate_string s =
  let* json = Json.parse s in
  validate json

let validate_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string s
