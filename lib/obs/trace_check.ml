type stats = { total : int; spans : int; domains : int; names : string list }

(* Timestamps are exported with %.3f (nanosecond) precision, so parent
   and child endpoints can each be off by half an ulp of that grid. *)
let eps = 0.002

type span = { sname : string; tid : int; ts : float; dur : float }

(* "X" spans take the full monotonicity + nesting treatment; "C"
   counter samples still carry a per-track timestamp that must be
   monotone even though they have no extent. *)
type parsed = Span of span | Sample of span | Meta

let ( let* ) = Result.bind

let event_fields idx ev =
  let fail msg = Error (Printf.sprintf "event %d: %s" idx msg) in
  match Json.member "ph" ev with
  | None -> fail "missing ph"
  | Some ph -> (
    match Json.to_string_opt ph with
    | None -> fail "ph is not a string"
    | Some ph ->
      let str key = Option.bind (Json.member key ev) Json.to_string_opt in
      let num key = Option.bind (Json.member key ev) Json.to_float in
      (* exported wall_start_ns is an integer rendered as a string
         (JSON has no 64-bit integers); anything unparseable means the
         exporter (or a hand-edited trace) is corrupt *)
      let* () =
        match Option.bind (Json.member "args" ev) (Json.member "wall_start_ns") with
        | None -> Ok ()
        | Some w -> (
          match Option.bind (Json.to_string_opt w) Int64.of_string_opt with
          | Some _ -> Ok ()
          | None -> fail "args.wall_start_ns is not an integer string")
      in
      if str "name" = None then fail "missing string name"
      else if num "pid" = None then fail "missing numeric pid"
      else if num "tid" = None then fail "missing numeric tid"
      else (
        match ph with
        | "M" -> Ok Meta
        | "C" -> (
          match num "ts" with
          | Some ts when Float.is_finite ts && ts >= 0.0 ->
            Ok
              (Sample
                 {
                   sname = Option.get (str "name");
                   tid = int_of_float (Option.get (num "tid"));
                   ts;
                   dur = 0.0;
                 })
          | Some _ -> fail "C event with non-finite or negative ts"
          | None -> fail "C event missing numeric ts")
        | "X" -> (
          match (num "ts", num "dur") with
          | Some ts, Some dur
            when Float.is_finite ts && ts >= 0.0 && Float.is_finite dur && dur >= 0.0 ->
            Ok
              (Span
                 {
                   sname = Option.get (str "name");
                   tid = int_of_float (Option.get (num "tid"));
                   ts;
                   dur;
                 })
          | Some ts, Some dur ->
            if not (Float.is_finite ts) || ts < 0.0 then
              fail "non-finite or negative ts"
            else if not (Float.is_finite dur) then fail "non-finite dur"
            else fail "negative dur"
          | _ -> fail "X event missing numeric ts/dur")
        | other -> fail (Printf.sprintf "unsupported phase %S" other)))

(* File order within a track must already be monotone in ts. *)
let check_monotone spans =
  let tracks = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok ()
    | s :: rest -> (
      match Hashtbl.find_opt tracks s.tid with
      | Some prev when s.ts < prev -. eps ->
        Error
          (Printf.sprintf "track %d: ts %.3f goes backwards (previous %.3f)" s.tid s.ts prev)
      | _ ->
        Hashtbl.replace tracks s.tid s.ts;
        go rest)
  in
  go spans

(* Within a track, spans sorted by (start, -dur) must nest: each span
   ends no later than the innermost span still open at its start. *)
let check_nesting spans =
  let by_track = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let cur = Option.value (Hashtbl.find_opt by_track s.tid) ~default:[] in
      Hashtbl.replace by_track s.tid (s :: cur))
    spans;
  Hashtbl.fold
    (fun tid track acc ->
      let* () = acc in
      let sorted =
        List.sort
          (fun a b ->
            let c = compare a.ts b.ts in
            if c <> 0 then c else compare b.dur a.dur)
          track
      in
      let rec go stack = function
        | [] -> Ok ()
        | s :: rest ->
          let fin = s.ts +. s.dur in
          let stack = List.filter (fun open_end -> open_end > s.ts +. eps) stack in
          (match stack with
          | open_end :: _ when fin > open_end +. eps ->
            Error
              (Printf.sprintf
                 "track %d: span %s [%.3f, %.3f] overlaps its enclosing span ending at %.3f"
                 tid s.sname s.ts fin open_end)
          | _ -> go (fin :: stack) rest)
      in
      go [] sorted)
    by_track (Ok ())

let validate json =
  match Json.member "traceEvents" json with
  | None -> Error "root object has no traceEvents"
  | Some evs -> (
    match Json.to_list evs with
    | None -> Error "traceEvents is not an array"
    | Some evs ->
      let* spans, samples =
        List.fold_left
          (fun acc (idx, ev) ->
            let* spans, samples = acc in
            let* parsed = event_fields idx ev in
            Ok
              (match parsed with
              | Span s -> (s :: spans, samples)
              | Sample s -> (spans, s :: samples)
              | Meta -> (spans, samples)))
          (Ok ([], []))
          (List.mapi (fun i e -> (i, e)) evs)
      in
      let spans = List.rev spans and samples = List.rev samples in
      if spans = [] then Error "trace contains no complete (X) span events"
      else
        let* () = check_monotone spans in
        let* () = check_monotone samples in
        let* () = check_nesting spans in
        Ok
          {
            total = List.length evs;
            spans = List.length spans;
            domains = List.length (List.sort_uniq compare (List.map (fun s -> s.tid) spans));
            names = List.sort_uniq compare (List.map (fun s -> s.sname) spans);
          })

let validate_string s =
  let* json = Json.parse s in
  validate json

let validate_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string s
