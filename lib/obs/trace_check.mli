(** Structural validator for the Chrome-trace files {!Obs} exports.

    Used by the test suite and by the [test/trace_check.exe] CI checker.
    A trace is valid when:

    - the root is an object with a [traceEvents] array;
    - every event has a string [name], numeric [pid]/[tid], and a phase
      of ["X"] (complete span, with finite non-negative [ts] and
      [dur]), ["M"] (metadata) or ["C"] (counter, with a finite
      non-negative [ts]);
    - any [args.wall_start_ns] parses as an integer string;
    - within each [tid] track, ["X"] events — and, separately, ["C"]
      samples — appear with monotone non-decreasing [ts]; and
    - within each track the spans nest properly: sorted by start (ties
      longest-first), every span lies entirely inside the enclosing
      span still open at its start. *)

type stats = {
  total : int;  (** all events, including metadata *)
  spans : int;  (** complete ["X"] events *)
  domains : int;  (** distinct [tid]s carrying spans *)
  names : string list;  (** distinct span names, sorted *)
}

val validate : Json.t -> (stats, string) result

val validate_string : string -> (stats, string) result
(** Parse then {!validate}. *)

val validate_file : string -> (stats, string) result
