/* Clock sources for Vartune_obs.

   CLOCK_MONOTONIC orders span begin/end pairs within and across
   domains; CLOCK_REALTIME stamps each span with wall-clock time so
   traces from different runs can be correlated with external logs. */

#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

static value ns_of(clockid_t clock)
{
  struct timespec ts;
  clock_gettime(clock, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

CAMLprim value vartune_obs_monotonic_ns(value unit)
{
  (void)unit;
  return ns_of(CLOCK_MONOTONIC);
}

CAMLprim value vartune_obs_realtime_ns(value unit)
{
  (void)unit;
  return ns_of(CLOCK_REALTIME);
}
