type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

let parse_string_body s pos =
  let buf = Buffer.create 16 in
  let n = String.length s in
  let rec go i =
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> (Buffer.contents buf, i + 1)
      | '\\' ->
        if i + 1 >= n then fail i "dangling escape"
        else (
          (match s.[i + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if i + 5 >= n then fail i "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub s (i + 2) 4) in
            (* BMP only; good enough for ASCII telemetry output *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
          | c -> fail i (Printf.sprintf "bad escape \\%c" c));
          if s.[i + 1] = 'u' then go (i + 6) else go (i + 2))
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go pos

let parse src =
  let n = String.length src in
  let rec skip_ws i =
    if i < n && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r') then
      skip_ws (i + 1)
    else i
  in
  let expect c i =
    if i < n && src.[i] = c then i + 1
    else fail i (Printf.sprintf "expected %c" c)
  in
  let rec value i =
    let i = skip_ws i in
    if i >= n then fail i "unexpected end of input"
    else
      match src.[i] with
      | '{' -> obj (i + 1) []
      | '[' -> arr (i + 1) []
      | '"' ->
        let s, j = parse_string_body src (i + 1) in
        (String s, j)
      | 't' ->
        if i + 4 <= n && String.sub src i 4 = "true" then (Bool true, i + 4)
        else fail i "bad literal"
      | 'f' ->
        if i + 5 <= n && String.sub src i 5 = "false" then (Bool false, i + 5)
        else fail i "bad literal"
      | 'n' ->
        if i + 4 <= n && String.sub src i 4 = "null" then (Null, i + 4)
        else fail i "bad literal"
      | _ ->
        let j = ref i in
        let numchar c =
          (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while !j < n && numchar src.[!j] do incr j done;
        if !j = i then fail i "unexpected character";
        (match float_of_string_opt (String.sub src i (!j - i)) with
        | Some f -> (Number f, !j)
        | None -> fail i "bad number")
  and obj i acc =
    let i = skip_ws i in
    if i < n && src.[i] = '}' then (Object (List.rev acc), i + 1)
    else begin
      let i = expect '"' (skip_ws i) in
      let key, i = parse_string_body src i in
      let i = expect ':' (skip_ws i) in
      let v, i = value i in
      let i = skip_ws i in
      if i < n && src.[i] = ',' then obj (i + 1) ((key, v) :: acc)
      else (Object (List.rev ((key, v) :: acc)), expect '}' i)
    end
  and arr i acc =
    let i = skip_ws i in
    if i < n && src.[i] = ']' then (Array (List.rev acc), i + 1)
    else begin
      let v, i = value i in
      let i = skip_ws i in
      if i < n && src.[i] = ',' then arr (i + 1) (v :: acc)
      else (Array (List.rev (v :: acc)), expect ']' i)
    end
  in
  try
    let v, i = value 0 in
    let i = skip_ws i in
    if i <> n then Error (Printf.sprintf "trailing garbage at byte %d" i) else Ok v
  with
  | Fail (pos, msg) -> Error (Printf.sprintf "%s at byte %d" msg pos)
  | Failure msg -> Error msg

let member key = function
  | Object kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function Number f -> Some f | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list = function Array l -> Some l | _ -> None

let float_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 9.007199254740992e15 then
    Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (float_string f)
    | String s -> Buffer.add_string buf (escape_string s)
    | Array l ->
      Buffer.add_char buf '[';
      List.iteri (fun i v -> if i > 0 then Buffer.add_char buf ','; go v) l;
      Buffer.add_char buf ']'
    | Object kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          go v)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf
