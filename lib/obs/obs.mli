(** Vartune_obs.Obs — spans, counters and trace export for the pipeline.

    A process-global, domain-safe telemetry sink.  Instrumentation sites
    throughout the pipeline record {e spans} (named wall-clock intervals,
    one track per domain) and {e metrics} (counters, gauges, histograms);
    two exporters turn the recorded data into a Chrome trace-event JSON
    file (loadable in Perfetto / [chrome://tracing]) and a flat metrics
    summary.

    Telemetry is {b disabled by default}.  While disabled every entry
    point is a cheap flag check — [span name f] is exactly [f ()], and
    counter/gauge/histogram updates return without taking a timestamp,
    allocating, or touching any lock — so the instrumented pipeline keeps
    PR 1's determinism and bit-identity guarantees and its serial
    performance.  Enabling telemetry changes only timing side-channels,
    never any pipeline output.

    All recording operations may be called concurrently from any domain.
    Span events carry the recording domain's id, which becomes the
    Chrome-trace [tid], so the exported trace shows one lane per worker
    domain. *)

val enabled : unit -> bool
(** Whether telemetry is currently recording. *)

val set_enabled : bool -> unit
(** Turns recording on or off.  Enable before the instrumented work
    starts; spans already in flight when the flag flips may be dropped
    (never corrupted). *)

val reset : unit -> unit
(** Discards all recorded events and zeroes every metric (registered
    {!Counter.t} handles survive with value 0).  Also re-anchors the
    trace time origin.  Intended for tests and long-lived processes. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds from an arbitrary origin. *)

val wall_ns : unit -> int64
(** Wall clock (CLOCK_REALTIME), nanoseconds since the Unix epoch. *)

(** {1 Spans} *)

val span : ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] and, when enabled, records a complete
    Chrome-trace ["X"] event covering the call: monotonic start/duration,
    wall-clock start, recording domain, {!gc_delta} attribution, and
    [attrs] (evaluated once, at span end, and only when enabled — pass a
    closure over cheap data).  Spans nest naturally; the event is
    recorded even if [f] raises.  When disabled, [span name f] is
    exactly [f ()] — no clock read, no [Gc.quick_stat], no allocation. *)

(** {1 Metrics}

    Counters are lock-free atomics behind pre-registered handles, cheap
    enough for per-LUT-entry accounting on hot paths.  Gauges and
    histograms use a mutex-protected registry and are meant for cold or
    chunk-level call sites. *)

module Counter : sig
  type t

  val make : string -> t
  (** Registers (or looks up) the counter [name].  Call at module
      initialisation; handles are process-global and survive {!reset}
      with their value zeroed. *)

  val add : t -> int -> unit
  (** Atomic add; no-op while telemetry is disabled. *)

  val incr : t -> unit

  val value : t -> int
end

val incr : ?by:int -> string -> unit
(** Name-based counter update for cold call sites ([Counter.make] +
    [Counter.add] under the hood, memoised per name). *)

val counter_value : string -> int
(** Current value of a counter, 0 if it was never registered. *)

val gauge : string -> float -> unit
(** Sets the gauge [name] to the given value (last write wins). *)

val observe : string -> float -> unit
(** Adds one observation to the histogram [name] (tracks count, sum,
    min, max and log-bucketed counts for quantile estimation). *)

(** Power-of-two log buckets shared by the metrics histograms and
    {!Profile}'s per-label duration histograms.  Bucket [0] catches
    non-positive values, the last bucket is the overflow; in between,
    bucket [i] covers [\[2^(i-offset-1), 2^(i-offset))]. *)
module Buckets : sig
  val count : int
  (** Number of buckets (64). *)

  val index : float -> int
  (** Bucket index for a value; total for any float. *)

  val upper : int -> float
  (** Exclusive upper edge of a bucket; [+infinity] for the overflow. *)

  val quantile :
    counts:int array -> total:int -> min_v:float -> max_v:float -> float -> float
  (** Deterministic quantile estimate: linear interpolation inside the
      target bucket, clamped to the observed [\[min_v, max_v\]] (so a
      single-observation histogram answers that observation exactly).
      Returns [0.0] when [total <= 0]. *)
end

type histogram_stats = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  buckets : int array;  (** log-bucketed counts, {!Buckets.count} wide *)
}

val histogram_quantile : histogram_stats -> float -> float
(** {!Buckets.quantile} over a snapshot's buckets. *)

type metric_value =
  | Count of int
  | Value of float  (** gauge *)
  | Stats of histogram_stats

val metrics : unit -> (string * metric_value) list
(** Snapshot of every metric, sorted by name. *)

(** {1 Recorded events} *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}
(** [Gc.quick_stat] deltas between span entry and exit, on the span's
    own domain (OCaml 5 keeps the word counters domain-local, so the
    delta is the span's allocation, children included — like total
    time, and unlike {!Profile}'s child-exclusive self numbers). *)

val gc_zero : gc_delta

type event = {
  name : string;
  dom : int;  (** recording domain id — the Chrome-trace [tid] *)
  ts_us : float;  (** monotonic start, microseconds from the trace origin *)
  dur_us : float;
  wall_start_ns : int64;
  gc : gc_delta;
  attrs : (string * string) list;
}

val events : unit -> event list
(** Snapshot of all recorded span events, sorted by [(dom, ts_us)] with
    ties broken longest-duration-first so parents precede their
    children. *)

(** {1 Exporters} *)

val trace_json : unit -> string
(** Chrome trace-event JSON: one [thread_name] metadata event per domain
    seen, then every span as a complete ["X"] event with per-domain
    monotone timestamps.  Loadable in Perfetto. *)

val metrics_schema_version : int
(** Version of the {!metrics_json} top-level schema; bumped on any
    incompatible change to the document shape. *)

val metrics_json : unit -> string
(** [{"schema": 1, "counters": {...}, "gauges": {...}, "histograms":
    {...}}].  Each histogram carries [count/sum/min/max/mean],
    [p50/p90/p99] quantile estimates and its non-empty log buckets as
    [\[upper_edge, count\]] pairs.  The [schema] field lets consumers
    (the serve metrics endpoint, [vartune report]) sniff
    compatibility. *)

val metrics_text : unit -> string
(** Human-readable summary: one line per counter/gauge; histograms as
    OpenMetrics-style cumulative [_bucket{le="..."}] lines plus
    [_count], [_sum] and [{quantile="..."}] lines. *)

val float_json : float -> string
(** Compact, round-trippable float rendering shared by the JSON
    exporters. *)

val write_trace : string -> unit
(** Writes {!trace_json} to the given path. *)

val write_metrics : string -> unit
(** Writes {!metrics_json} to the given path. *)
