external now_ns : unit -> int64 = "vartune_obs_monotonic_ns"
external wall_ns : unit -> int64 = "vartune_obs_realtime_ns"

(* ------------------------------------------------------------------ *)
(* Recording state                                                     *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type event = {
  name : string;
  dom : int;
  ts_us : float;
  dur_us : float;
  wall_start_ns : int64;
  attrs : (string * string) list;
}

(* One global event sink.  Span events are recorded once per span (at
   exit), so contention on this mutex is bounded by span frequency —
   coarse stage/chunk granularity by design, never per inner iteration. *)
let state_lock = Mutex.create ()
let recorded : event list ref = ref []
let origin_ns = ref (now_ns ())

let to_us t0 t = Int64.to_float (Int64.sub t t0) /. 1_000.0

let record ev =
  Mutex.lock state_lock;
  recorded := ev :: !recorded;
  Mutex.unlock state_lock

let span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_ns () in
    let w0 = wall_ns () in
    Fun.protect f ~finally:(fun () ->
        let t1 = now_ns () in
        (* origin_ns only moves on [reset]; a plain read is safe. *)
        let origin = !origin_ns in
        record
          {
            name;
            dom = (Domain.self () :> int);
            ts_us = to_us origin t0;
            dur_us = to_us t0 t1;
            wall_start_ns = w0;
            attrs = (match attrs with None -> [] | Some g -> g ());
          })
  end

(* Sort key: per-domain tracks, monotone start times, and at equal start
   the longer (enclosing) span first so stack-based nesting checks and
   trace viewers see parents before children. *)
let event_order a b =
  let c = compare a.dom b.dom in
  if c <> 0 then c
  else
    let c = compare a.ts_us b.ts_us in
    if c <> 0 then c else compare b.dur_us a.dur_us

let events () =
  Mutex.lock state_lock;
  let evs = !recorded in
  Mutex.unlock state_lock;
  List.sort event_order evs

(* ------------------------------------------------------------------ *)
(* Counters (lock-free handles)                                        *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { cname : string; cell : int Atomic.t }

  let registry_lock = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
          let c = { cname = name; cell = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          c)

  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)
  let incr c = add c 1
  let value c = Atomic.get c.cell

  let snapshot () =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) registry [])

  let reset () =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry)
end

let incr ?(by = 1) name = Counter.add (Counter.make name) by

let counter_value name =
  Mutex.protect Counter.registry_lock (fun () ->
      match Hashtbl.find_opt Counter.registry name with
      | Some c -> Atomic.get c.cell
      | None -> 0)

(* ------------------------------------------------------------------ *)
(* Gauges and histograms (mutex registry, cold paths)                  *)
(* ------------------------------------------------------------------ *)

type histogram_stats = { count : int; sum : float; min_v : float; max_v : float }

type mutable_metric =
  | Mgauge of { mutable v : float }
  | Mhisto of {
      mutable count : int;
      mutable sum : float;
      mutable min_v : float;
      mutable max_v : float;
    }

type metric_value = Count of int | Value of float | Stats of histogram_stats

let metrics_lock = Mutex.create ()
let metrics_tbl : (string, mutable_metric) Hashtbl.t = Hashtbl.create 32

let gauge name v =
  if Atomic.get enabled_flag then
    Mutex.protect metrics_lock (fun () ->
        match Hashtbl.find_opt metrics_tbl name with
        | Some (Mgauge g) -> g.v <- v
        | Some (Mhisto _) -> invalid_arg ("Obs.gauge: " ^ name ^ " is a histogram")
        | None -> Hashtbl.replace metrics_tbl name (Mgauge { v }))

let observe name v =
  if Atomic.get enabled_flag then
    Mutex.protect metrics_lock (fun () ->
        match Hashtbl.find_opt metrics_tbl name with
        | Some (Mhisto h) ->
          h.count <- h.count + 1;
          h.sum <- h.sum +. v;
          h.min_v <- Float.min h.min_v v;
          h.max_v <- Float.max h.max_v v
        | Some (Mgauge _) -> invalid_arg ("Obs.observe: " ^ name ^ " is a gauge")
        | None ->
          Hashtbl.replace metrics_tbl name
            (Mhisto { count = 1; sum = v; min_v = v; max_v = v }))

let metrics () =
  let counters = List.map (fun (n, v) -> (n, Count v)) (Counter.snapshot ()) in
  let others =
    Mutex.protect metrics_lock (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            let v =
              match m with
              | Mgauge g -> Value g.v
              | Mhisto h ->
                Stats { count = h.count; sum = h.sum; min_v = h.min_v; max_v = h.max_v }
            in
            (name, v) :: acc)
          metrics_tbl [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (counters @ others)

let reset () =
  Mutex.protect state_lock (fun () ->
      recorded := [];
      origin_ns := now_ns ());
  Counter.reset ();
  Mutex.protect metrics_lock (fun () -> Hashtbl.reset metrics_tbl)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape_json buf s;
  Buffer.add_char buf '"'

(* JSON has no 64-bit integers; wall-clock ns go out as strings. *)
let add_args buf ~wall attrs =
  Buffer.add_string buf "{\"wall_start_ns\":";
  add_str buf (Int64.to_string wall);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      add_str buf k;
      Buffer.add_char buf ':';
      add_str buf v)
    attrs;
  Buffer.add_char buf '}'

let trace_json () =
  let evs = events () in
  let doms = List.sort_uniq compare (List.map (fun e -> e.dom) evs) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  "
  in
  List.iter
    (fun dom ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain-%d\"}}"
           dom dom))
    doms;
  List.iter
    (fun e ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      Buffer.add_string buf (string_of_int e.dom);
      Buffer.add_string buf ",\"name\":";
      add_str buf e.name;
      Buffer.add_string buf ",\"cat\":\"vartune\",\"ts\":";
      Buffer.add_string buf (Printf.sprintf "%.3f" e.ts_us);
      Buffer.add_string buf ",\"dur\":";
      Buffer.add_string buf (Printf.sprintf "%.3f" e.dur_us);
      Buffer.add_string buf ",\"args\":";
      add_args buf ~wall:e.wall_start_ns e.attrs;
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let float_json v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let metrics_json () =
  let all = metrics () in
  let section buf label filter render =
    Buffer.add_string buf (Printf.sprintf "\"%s\":{" label);
    let first = ref true in
    List.iter
      (fun (name, v) ->
        match filter v with
        | None -> ()
        | Some payload ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf "\n    ";
          add_str buf name;
          Buffer.add_char buf ':';
          Buffer.add_string buf (render payload))
      all;
    Buffer.add_string buf "\n  }"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  ";
  section buf "counters"
    (function Count c -> Some c | _ -> None)
    string_of_int;
  Buffer.add_string buf ",\n  ";
  section buf "gauges" (function Value v -> Some v | _ -> None) float_json;
  Buffer.add_string buf ",\n  ";
  section buf "histograms"
    (function Stats s -> Some s | _ -> None)
    (fun s ->
      Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s}" s.count
        (float_json s.sum) (float_json s.min_v) (float_json s.max_v)
        (float_json (if s.count = 0 then 0.0 else s.sum /. float_of_int s.count)));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let metrics_text () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Count c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name c)
      | Value v -> Buffer.add_string buf (Printf.sprintf "%-40s %g\n" name v)
      | Stats s ->
        Buffer.add_string buf
          (Printf.sprintf "%-40s count=%d sum=%g min=%g max=%g mean=%g\n" name s.count s.sum
             s.min_v s.max_v
             (if s.count = 0 then 0.0 else s.sum /. float_of_int s.count)))
    (metrics ());
  Buffer.contents buf

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_trace path = write_string path (trace_json ())
let write_metrics path = write_string path (metrics_json ())
