external now_ns : unit -> int64 = "vartune_obs_monotonic_ns"
external wall_ns : unit -> int64 = "vartune_obs_realtime_ns"

(* ------------------------------------------------------------------ *)
(* Recording state                                                     *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* GC work attributed to one span: Gc.quick_stat deltas between span
   entry and exit.  In OCaml 5 the word counters are domain-local and a
   span runs entirely on its recording domain, so the delta measures the
   span's own allocation plus whatever its callees allocated — exactly
   the attribution the flattening work needs.  Nested spans double-count
   by design (a parent's delta includes its children), mirroring how
   total time works; Profile reports child-exclusive self numbers. *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_zero =
  { minor_words = 0.0; major_words = 0.0; minor_collections = 0; major_collections = 0 }

type event = {
  name : string;
  dom : int;
  ts_us : float;
  dur_us : float;
  wall_start_ns : int64;
  gc : gc_delta;
  attrs : (string * string) list;
}

(* One global event sink.  Span events are recorded once per span (at
   exit), so contention on this mutex is bounded by span frequency —
   coarse stage/chunk granularity by design, never per inner iteration. *)
let state_lock = Mutex.create ()
let recorded : event list ref = ref []
let origin_ns = ref (now_ns ())

let to_us t0 t = Int64.to_float (Int64.sub t t0) /. 1_000.0

let record ev =
  Mutex.lock state_lock;
  recorded := ev :: !recorded;
  Mutex.unlock state_lock

let span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_ns () in
    let w0 = wall_ns () in
    (* [quick_stat]'s minor_words only advances at minor collections on
       OCaml 5, so a short span would read 0; [Gc.minor_words] reads the
       allocation pointer and is precise (and cheaper). *)
    let m0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    Fun.protect f ~finally:(fun () ->
        let t1 = now_ns () in
        let m1 = Gc.minor_words () in
        let g1 = Gc.quick_stat () in
        (* origin_ns only moves on [reset]; a plain read is safe. *)
        let origin = !origin_ns in
        record
          {
            name;
            dom = (Domain.self () :> int);
            ts_us = to_us origin t0;
            dur_us = to_us t0 t1;
            wall_start_ns = w0;
            gc =
              {
                minor_words = m1 -. m0;
                major_words = g1.Gc.major_words -. g0.Gc.major_words;
                minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
                major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
              };
            attrs = (match attrs with None -> [] | Some g -> g ());
          })
  end

(* Sort key: per-domain tracks, monotone start times, and at equal start
   the longer (enclosing) span first so stack-based nesting checks and
   trace viewers see parents before children. *)
let event_order a b =
  let c = compare a.dom b.dom in
  if c <> 0 then c
  else
    let c = compare a.ts_us b.ts_us in
    if c <> 0 then c else compare b.dur_us a.dur_us

let events () =
  Mutex.lock state_lock;
  let evs = !recorded in
  Mutex.unlock state_lock;
  List.sort event_order evs

(* ------------------------------------------------------------------ *)
(* Counters (lock-free handles)                                        *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { cname : string; cell : int Atomic.t }

  let registry_lock = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
          let c = { cname = name; cell = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          c)

  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)
  let incr c = add c 1
  let value c = Atomic.get c.cell

  let snapshot () =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) registry [])

  let reset () =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry)
end

let incr ?(by = 1) name = Counter.add (Counter.make name) by

let counter_value name =
  Mutex.protect Counter.registry_lock (fun () ->
      match Hashtbl.find_opt Counter.registry name with
      | Some c -> Atomic.get c.cell
      | None -> 0)

(* ------------------------------------------------------------------ *)
(* Gauges and histograms (mutex registry, cold paths)                  *)
(* ------------------------------------------------------------------ *)

(* Power-of-two log buckets shared by the metrics histograms and the
   profile's per-label duration histograms.  Bucket 0 catches
   non-positive values, the last bucket is the overflow; in between,
   bucket [i] covers [2^(i-offset-1), 2^(i-offset)).  With 64 buckets
   and offset 33 the covered range is [2^-33, 2^30) — nine decades each
   side of 1.0, enough for nanosecond-scale seconds and gigaword
   allocation counts alike. *)
module Buckets = struct
  let count = 64
  let offset = 33

  let index v =
    if not (v > 0.0) then 0
    else
      let raw = int_of_float (Float.floor (Float.log2 v)) + offset + 1 in
      if raw < 1 then 1 else if raw > count - 1 then count - 1 else raw

  (* Exclusive upper edge of bucket [i]; +infinity for the overflow. *)
  let upper i = if i >= count - 1 then Float.infinity else 2.0 ** float_of_int (i - offset)

  (* Deterministic quantile estimate: walk the cumulative counts to the
     target rank, interpolate linearly inside the bucket, and clamp to
     the observed [min_v, max_v] so degenerate histograms (n = 1, or
     every value in one bucket) answer exactly. *)
  let quantile ~counts ~total ~min_v ~max_v q =
    if total <= 0 then 0.0
    else begin
      let rank = q *. float_of_int total in
      let result = ref max_v in
      (try
         let cum = ref 0 in
         for i = 0 to Array.length counts - 1 do
           let c = counts.(i) in
           if c > 0 then begin
             let cum' = !cum + c in
             if float_of_int cum' >= rank then begin
               let lo = if i = 0 then 0.0 else 2.0 ** float_of_int (i - 1 - offset) in
               let hi = if Float.is_finite (upper i) then upper i else max_v in
               let frac = (rank -. float_of_int !cum) /. float_of_int c in
               result := lo +. ((hi -. lo) *. frac);
               raise Exit
             end;
             cum := cum'
           end
         done
       with Exit -> ());
      Float.max min_v (Float.min max_v !result)
    end
end

type histogram_stats = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  buckets : int array;  (** log-bucketed counts, [Buckets.count] wide *)
}

let histogram_quantile s q =
  Buckets.quantile ~counts:s.buckets ~total:s.count ~min_v:s.min_v ~max_v:s.max_v q

type mutable_metric =
  | Mgauge of { mutable v : float }
  | Mhisto of {
      mutable count : int;
      mutable sum : float;
      mutable min_v : float;
      mutable max_v : float;
      hbuckets : int array;
    }

type metric_value = Count of int | Value of float | Stats of histogram_stats

let metrics_lock = Mutex.create ()
let metrics_tbl : (string, mutable_metric) Hashtbl.t = Hashtbl.create 32

let gauge name v =
  if Atomic.get enabled_flag then
    Mutex.protect metrics_lock (fun () ->
        match Hashtbl.find_opt metrics_tbl name with
        | Some (Mgauge g) -> g.v <- v
        | Some (Mhisto _) -> invalid_arg ("Obs.gauge: " ^ name ^ " is a histogram")
        | None -> Hashtbl.replace metrics_tbl name (Mgauge { v }))

let observe name v =
  if Atomic.get enabled_flag then
    Mutex.protect metrics_lock (fun () ->
        match Hashtbl.find_opt metrics_tbl name with
        | Some (Mhisto h) ->
          h.count <- h.count + 1;
          h.sum <- h.sum +. v;
          h.min_v <- Float.min h.min_v v;
          h.max_v <- Float.max h.max_v v;
          let i = Buckets.index v in
          h.hbuckets.(i) <- h.hbuckets.(i) + 1
        | Some (Mgauge _) -> invalid_arg ("Obs.observe: " ^ name ^ " is a gauge")
        | None ->
          let hbuckets = Array.make Buckets.count 0 in
          hbuckets.(Buckets.index v) <- 1;
          Hashtbl.replace metrics_tbl name
            (Mhisto { count = 1; sum = v; min_v = v; max_v = v; hbuckets }))

let metrics () =
  let counters = List.map (fun (n, v) -> (n, Count v)) (Counter.snapshot ()) in
  let others =
    Mutex.protect metrics_lock (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            let v =
              match m with
              | Mgauge g -> Value g.v
              | Mhisto h ->
                Stats
                  {
                    count = h.count;
                    sum = h.sum;
                    min_v = h.min_v;
                    max_v = h.max_v;
                    buckets = Array.copy h.hbuckets;
                  }
            in
            (name, v) :: acc)
          metrics_tbl [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (counters @ others)

let reset () =
  Mutex.protect state_lock (fun () ->
      recorded := [];
      origin_ns := now_ns ());
  Counter.reset ();
  Mutex.protect metrics_lock (fun () -> Hashtbl.reset metrics_tbl)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape_json buf s;
  Buffer.add_char buf '"'

let float_json v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* JSON has no 64-bit integers; wall-clock ns go out as strings. *)
let add_args buf ~wall ~gc attrs =
  Buffer.add_string buf "{\"wall_start_ns\":";
  add_str buf (Int64.to_string wall);
  Buffer.add_string buf
    (Printf.sprintf
       ",\"gc_minor_words\":%s,\"gc_major_words\":%s,\"gc_minor_collections\":%d,\"gc_major_collections\":%d"
       (float_json gc.minor_words) (float_json gc.major_words) gc.minor_collections
       gc.major_collections);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      add_str buf k;
      Buffer.add_char buf ':';
      add_str buf v)
    attrs;
  Buffer.add_char buf '}'

let trace_json () =
  let evs = events () in
  let doms = List.sort_uniq compare (List.map (fun e -> e.dom) evs) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  "
  in
  List.iter
    (fun dom ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain-%d\"}}"
           dom dom))
    doms;
  List.iter
    (fun e ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      Buffer.add_string buf (string_of_int e.dom);
      Buffer.add_string buf ",\"name\":";
      add_str buf e.name;
      Buffer.add_string buf ",\"cat\":\"vartune\",\"ts\":";
      Buffer.add_string buf (Printf.sprintf "%.3f" e.ts_us);
      Buffer.add_string buf ",\"dur\":";
      Buffer.add_string buf (Printf.sprintf "%.3f" e.dur_us);
      Buffer.add_string buf ",\"args\":";
      add_args buf ~wall:e.wall_start_ns ~gc:e.gc e.attrs;
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let metrics_schema_version = 1

let metrics_json () =
  let all = metrics () in
  let section buf label filter render =
    Buffer.add_string buf (Printf.sprintf "\"%s\":{" label);
    let first = ref true in
    List.iter
      (fun (name, v) ->
        match filter v with
        | None -> ()
        | Some payload ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf "\n    ";
          add_str buf name;
          Buffer.add_char buf ':';
          Buffer.add_string buf (render payload))
      all;
    Buffer.add_string buf "\n  }"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\":%d,\n  " metrics_schema_version);
  section buf "counters"
    (function Count c -> Some c | _ -> None)
    string_of_int;
  Buffer.add_string buf ",\n  ";
  section buf "gauges" (function Value v -> Some v | _ -> None) float_json;
  Buffer.add_string buf ",\n  ";
  section buf "histograms"
    (function Stats s -> Some s | _ -> None)
    (fun s ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s" s.count
           (float_json s.sum) (float_json s.min_v) (float_json s.max_v)
           (float_json (if s.count = 0 then 0.0 else s.sum /. float_of_int s.count)));
      List.iter
        (fun (label, q) ->
          Buffer.add_string b
            (Printf.sprintf ",\"%s\":%s" label (float_json (histogram_quantile s q))))
        [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ];
      (* non-empty buckets as [upper_edge, count] pairs; the overflow
         bucket's infinite edge is reported as the observed max *)
      Buffer.add_string b ",\"buckets\":[";
      let first = ref true in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            if !first then first := false else Buffer.add_char b ',';
            let u = Buckets.upper i in
            let u = if Float.is_finite u then u else s.max_v in
            Buffer.add_string b (Printf.sprintf "[%s,%d]" (float_json u) c)
          end)
        s.buckets;
      Buffer.add_string b "]}";
      Buffer.contents b);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* Histograms render OpenMetrics-style: cumulative [_bucket{le=...}]
   lines over the non-empty log buckets plus the mandatory [+Inf]
   bucket, [_count]/[_sum], and explicit quantile lines — instead of
   collapsing every distribution to count/sum/min/max. *)
let metrics_text () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Count c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name c)
      | Value v -> Buffer.add_string buf (Printf.sprintf "%-40s %g\n" name v)
      | Stats s ->
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            if c > 0 && Float.is_finite (Buckets.upper i) then begin
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                   (float_json (Buckets.upper i))
                   !cum)
            end)
          s.buckets;
        Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name s.count);
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name s.count);
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (float_json s.sum));
        List.iter
          (fun (label, q) ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" name label
                 (float_json (histogram_quantile s q))))
          [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ])
    (metrics ());
  Buffer.contents buf

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_trace path = write_string path (trace_json ())
let write_metrics path = write_string path (metrics_json ())
