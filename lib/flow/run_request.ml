module Obs = Vartune_obs.Obs
module Profile = Vartune_obs.Profile
module Json = Vartune_obs.Json

(* A report request with no sources reports on this process's own live
   telemetry — the serve daemon's full-report endpoint.  File-backed
   sources go through the same Run_report builder the CLI always
   used. *)
let eval_report ~trace ~metrics ~run_dir ~json =
  let report =
    match (trace, metrics, run_dir) with
    | None, None, None ->
      Ok
        {
          Run_report.profile = Some (Profile.of_events (Obs.events ()));
          metrics_raw = Some (Obs.metrics_json ());
          metrics = Result.to_option (Json.parse (Obs.metrics_json ()));
          timeline = None;
        }
    | _ -> Run_report.build ?trace ?metrics ?run_dir ()
  in
  match report with
  | Ok r -> Ok ((if json then Run_report.to_json else Run_report.to_text) r)
  | Error msg -> Error msg

(* How long a fired [delay] fault stretches a request.  Long enough to
   pile a seeded burst up behind the worker pool, short enough that the
   chaos suites stay fast. *)
let delay_fault_s = 0.25

let exec ?store ?(reraise_unclassified = false) req =
  let kind = Request.kind_string req in
  let t0 = Obs.now_ns () in
  let elapsed () = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
  if Vartune_fault.Fault.fires Vartune_fault.Fault.Delay ~site:"request.exec.delay" then
    Unix.sleepf delay_fault_s;
  match
    Obs.span "request.exec" ~attrs:(fun () -> [ ("kind", kind) ]) @@ fun () ->
    match req with
    | Request.Report { trace; metrics; run_dir; json } ->
      (match eval_report ~trace ~metrics ~run_dir ~json with
      | Ok output -> Response.ok ~kind ~elapsed_s:0.0 output
      | Error msg -> Response.fail ~kind ~elapsed_s:0.0 ~code:65 msg)
    | _ ->
      let e = Run.eval ?store req in
      Response.ok ~recipes:e.Run.recipes ~meta:e.Run.meta ~artifacts:e.Run.artifacts
        ~kind ~elapsed_s:0.0 e.Run.out
  with
  | resp -> { resp with Response.elapsed_s = elapsed () }
  | exception exn -> (
    match Experiment.classify_exn exn with
    | Some failure ->
      Response.fail ~kind ~elapsed_s:(elapsed ())
        ~code:(Experiment.exit_code failure)
        (Experiment.failure_message failure)
    | None ->
      if reraise_unclassified then raise exn
      else
        Response.fail ~kind ~elapsed_s:(elapsed ()) ~code:70
          (Printf.sprintf "internal error: %s" (Printexc.to_string exn)))
