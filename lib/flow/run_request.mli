(** The one entry point every request runs through.

    Both the CLI subcommand shims and the [vartune serve] daemon hand
    their {!Request.t} to {!exec}, which is what makes batch and served
    execution bit-identical by construction: there is no second
    pipeline to drift. *)

val exec :
  ?store:Vartune_store.Store.t ->
  ?reraise_unclassified:bool ->
  Request.t ->
  Response.t
(** Evaluates the request and wraps the outcome in a total
    {!Response.t}: on success [code = 0] and [output] carries the exact
    CLI stdout bytes; on a typed pipeline failure
    ({!Experiment.classify_exn}) the response carries its sysexits code
    and operator message; anything unclassified becomes code 70
    (EX_SOFTWARE) — unless [reraise_unclassified] (default [false]) is
    set, which re-raises it for callers with their own top-level
    handler (the CLI guard, which turns it into cmdliner's generic
    exit).  [elapsed_s] is the wall time of the evaluation; the
    [request.exec] span makes every request visible in traces.

    {!Request.Report} requests are evaluated here (not in {!Run.eval}):
    with all sources absent they report on the executing process's own
    live telemetry, otherwise on the given trace/metrics/run-dir
    sources; a bad source is a data error (code 65). *)
