(** The [vartune report] back end: one run report assembled from any
    combination of an exported Chrome trace (span profile, domain
    utilization, GC attribution), a metrics JSON file, and a journaled
    run directory (step timeline, progress, ETA). *)

type timeline = {
  steps : Vartune_journal.Journal.timed list;
  samples : int;  (** target sample count from [Run_started]; 0 if absent *)
  samples_done : int;  (** highest [Block_done] upper bound *)
  blocks : int;
  checkpoints : int;
  sealed : string option;
  elapsed_s : float;  (** wall time between first and last record *)
}

type t = {
  profile : Vartune_obs.Profile.t option;
  metrics_raw : string option;
  metrics : Vartune_obs.Json.t option;
  timeline : timeline option;
}

val build :
  ?trace:string -> ?metrics:string -> ?run_dir:string -> unit -> (t, string) result
(** At least one source must be given.  Raises
    {!Vartune_journal.Journal.Corrupt} on a damaged journal (the CLI
    guard maps it to exit 65); unreadable or malformed trace/metrics
    files come back as [Error]. *)

val classify_file : string -> ([ `Trace | `Metrics ], string) result
(** Sniffs a JSON file: [traceEvents] at the root makes it a trace,
    [counters] a metrics file. *)

val to_text : t -> string
val to_json : t -> string
