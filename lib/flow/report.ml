module Lut = Vartune_liberty.Lut

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub_heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let pct v = Printf.sprintf "%.1f%%" (v *. 100.0)
let ns v = Printf.sprintf "%.3f ns" v

let table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        Printf.printf "%s%-*s" (if i = 0 then "  " else "  | ") widths.(i) cell)
      row;
    print_newline ()
  in
  print_row header;
  let rule =
    String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Printf.printf "  %s\n" rule;
  List.iter print_row rows

let bar_chart ?(width = 48) ?(unit_label = "") entries =
  let max_v = List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 1e-30 entries in
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries in
  List.iter
    (fun (label, v) ->
      let n = int_of_float (Float.abs v /. max_v *. float_of_int width) in
      Printf.printf "  %-*s | %s %g%s\n" label_w label (String.make n '#') v unit_label)
    entries

let shade_chars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let surface lut =
  let rows, cols = Lut.dims lut in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Lut.get lut i j in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done
  done;
  let span = if !hi > !lo then !hi -. !lo else 1.0 in
  Printf.printf "  (slew rows ↓, load cols →; ' '=%.4g .. '@'=%.4g)\n" !lo !hi;
  for i = 0 to rows - 1 do
    print_string "  ";
    for j = 0 to cols - 1 do
      let v = Lut.get lut i j in
      let k = int_of_float ((v -. !lo) /. span *. 9.0) in
      let k = if k < 0 then 0 else if k > 9 then 9 else k in
      print_char shade_chars.(k);
      print_char shade_chars.(k)
    done;
    print_newline ()
  done

let int_histogram ?(width = 48) buckets =
  let max_c = List.fold_left (fun acc (_, c) -> max acc c) 1 buckets in
  List.iter
    (fun (bucket, count) ->
      let n = count * width / max_c in
      Printf.printf "  %4d | %s %d\n" bucket (String.make n '#') count)
    buckets

let binned_scatter ?(bins = 12) ~x_label ~y_label xs ys =
  let n = Array.length xs in
  if n = 0 || n <> Array.length ys then invalid_arg "Report.binned_scatter";
  let x_lo, x_hi = Vartune_util.Stat.min_max xs in
  let span = if x_hi > x_lo then x_hi -. x_lo else 1.0 in
  let sums = Array.make bins 0.0 in
  let maxs = Array.make bins neg_infinity in
  let counts = Array.make bins 0 in
  Array.iteri
    (fun i x ->
      let b = min (bins - 1) (int_of_float ((x -. x_lo) /. span *. float_of_int bins)) in
      sums.(b) <- sums.(b) +. ys.(i);
      maxs.(b) <- Float.max maxs.(b) ys.(i);
      counts.(b) <- counts.(b) + 1)
    xs;
  let rows = ref [] in
  for b = bins - 1 downto 0 do
    if counts.(b) > 0 then
      rows :=
        [
          Printf.sprintf "%.1f-%.1f"
            (x_lo +. (float_of_int b *. span /. float_of_int bins))
            (x_lo +. (float_of_int (b + 1) *. span /. float_of_int bins));
          string_of_int counts.(b);
          Printf.sprintf "%.4f" (sums.(b) /. float_of_int counts.(b));
          Printf.sprintf "%.4f" maxs.(b);
        ]
        :: !rows
  done;
  table
    ~header:[ x_label; "paths"; "mean " ^ y_label; "max " ^ y_label ]
    ~rows:!rows
