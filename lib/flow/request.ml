module Tuning_method = Vartune_tuning.Tuning_method
module Json = Vartune_obs.Json

let version = 1

type base = { seed : int; samples : int }

type t =
  | Characterize
  | Statlib of base
  | Min_period of base
  | Tune of { base : base; tuning : Tuning_method.t }
  | Sweep of {
      base : base;
      tuning : Tuning_method.t;
      period : float option;
      parameters : float list;
      mc_samples : int option;
    }
  | Design_sigma of {
      base : base;
      period : float option;
      tuning : Tuning_method.t option;
      timing_report : bool;
      power : bool;
      verilog : bool;
    }
  | Report of {
      trace : string option;
      metrics : string option;
      run_dir : string option;
      json : bool;
    }
  | Parse of { file : string }

let kind_string = function
  | Characterize -> "characterize"
  | Statlib _ -> "statlib"
  | Min_period _ -> "min_period"
  | Tune _ -> "tune"
  | Sweep _ -> "sweep"
  | Design_sigma _ -> "design_sigma"
  | Report _ -> "report"
  | Parse _ -> "parse"

let base_of = function
  | Characterize | Report _ | Parse _ -> None
  | Statlib b | Min_period b -> Some b
  | Tune { base; _ } | Sweep { base; _ } | Design_sigma { base; _ } -> Some base

(* ------------------------------------------------------------------ *)
(* Priorities                                                          *)
(* ------------------------------------------------------------------ *)

type priority = Interactive | Batch

let priority_to_string = function Interactive -> "interactive" | Batch -> "batch"

let priority_of_string = function
  | "interactive" -> Some Interactive
  | "batch" -> Some Batch
  | _ -> None

(* Short requests an operator sits on ahead of the pipeline-heavy batch
   kinds.  Tune builds a full statistical library, so it is batch. *)
let default_priority = function
  | Characterize | Report _ | Parse _ -> Interactive
  | Statlib _ | Min_period _ | Tune _ | Sweep _ | Design_sigma _ -> Batch

type envelope = {
  id : int option;
  priority : priority option;
  deadline_s : float option;
  req : t;
}

type error = Unsupported_version of int | Malformed of string

let error_message = function
  | Unsupported_version v ->
    Printf.sprintf "unsupported request version %d (this build speaks version %d)" v
      version
  | Malformed msg -> Printf.sprintf "malformed request: %s" msg

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Fields are emitted in one canonical order and optional fields are
   omitted when absent, so [to_line] is a stable identity for the
   computation (see [key]). *)

let num f = Json.Number f
let int_ i = num (float_of_int i)
let str s = Json.String s

let opt name conv = function None -> [] | Some v -> [ (name, conv v) ]

let base_fields { seed; samples } =
  [ ("seed", int_ seed); ("samples", int_ samples) ]

let method_field m = ("method", str (Tuning_method.to_string m))

let fields = function
  | Characterize -> []
  | Statlib b | Min_period b -> base_fields b
  | Tune { base; tuning } -> base_fields base @ [ method_field tuning ]
  | Sweep { base; tuning; period; parameters; mc_samples } ->
    base_fields base
    @ [ method_field tuning ]
    @ opt "period" num period
    @ [ ("parameters", Json.Array (List.map num parameters)) ]
    @ opt "mc_samples" int_ mc_samples
  | Design_sigma { base; period; tuning; timing_report; power; verilog } ->
    base_fields base
    @ opt "period" num period
    @ opt "method" (fun m -> str (Tuning_method.to_string m)) tuning
    @ [
        ("timing_report", Json.Bool timing_report);
        ("power", Json.Bool power);
        ("verilog", Json.Bool verilog);
      ]
  | Report { trace; metrics; run_dir; json } ->
    opt "trace" str trace @ opt "metrics" str metrics @ opt "run_dir" str run_dir
    @ [ ("json", Json.Bool json) ]
  | Parse { file } -> [ ("file", str file) ]

(* [priority] and [deadline_s] are envelope fields: they steer scheduling
   but do not change the computation, so they sit between [id] and
   [kind] and — like [id] — are excluded from [key].  When absent they
   encode nothing, keeping pre-existing request lines byte-identical. *)
let to_line ?id ?priority ?deadline_s t =
  Json.to_string
    (Json.Object
       (("vartune", int_ version)
       :: (opt "id" int_ id
          @ opt "priority" (fun p -> str (priority_to_string p)) priority
          @ opt "deadline_s" num deadline_s
          @ (("kind", str (kind_string t)) :: fields t))))

let key t = to_line t

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string
exception Wrong_version of int

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let get_int name json =
  match Json.member name json with
  | Some (Json.Number f) when Float.is_integer f -> int_of_float f
  | Some _ -> bad "field %S must be an integer" name
  | None -> bad "missing field %S" name

let get_int_opt name json =
  match Json.member name json with
  | None -> None
  | Some (Json.Number f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> bad "field %S must be an integer" name

let get_float_opt name json =
  match Json.member name json with
  | None -> None
  | Some (Json.Number f) -> Some f
  | Some _ -> bad "field %S must be a number" name

let get_string_opt name json =
  match Json.member name json with
  | None -> None
  | Some (Json.String s) -> Some s
  | Some _ -> bad "field %S must be a string" name

let get_bool ?(default = false) name json =
  match Json.member name json with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name

let get_method name json =
  match get_string_opt name json with
  | None -> bad "missing field %S" name
  | Some s -> (
    match Tuning_method.of_string s with
    | Some m -> m
    | None -> bad "field %S: unknown tuning method %S" name s)

let get_method_opt name json =
  match get_string_opt name json with
  | None -> None
  | Some s -> (
    match Tuning_method.of_string s with
    | Some m -> Some m
    | None -> bad "field %S: unknown tuning method %S" name s)

let get_base json = { seed = get_int "seed" json; samples = get_int "samples" json }

let get_parameters json =
  match Json.member "parameters" json with
  | None -> bad "missing field \"parameters\""
  | Some (Json.Array l) ->
    List.map
      (function Json.Number f -> f | _ -> bad "field \"parameters\" must be numbers")
      l
  | Some _ -> bad "field \"parameters\" must be an array"

let of_line line =
  match Json.parse line with
  | Error e -> Error (Malformed e)
  | Ok json -> (
    try
      (match Json.member "vartune" json with
      | Some (Json.Number f) when Float.is_integer f ->
        if int_of_float f <> version then raise (Wrong_version (int_of_float f))
      | Some _ -> bad "field \"vartune\" must be an integer"
      | None -> bad "missing field \"vartune\" (protocol version)");
      let id = get_int_opt "id" json in
      let priority =
        match get_string_opt "priority" json with
        | None -> None
        | Some s -> (
          match priority_of_string s with
          | Some p -> Some p
          | None ->
            bad "field \"priority\": unknown priority %S (want interactive or batch)" s)
      in
      let deadline_s =
        match get_float_opt "deadline_s" json with
        | None -> None
        | Some d when d > 0.0 && Float.is_finite d -> Some d
        | Some d -> bad "field \"deadline_s\": %g is not a positive finite number" d
      in
      let t =
        match get_string_opt "kind" json with
        | None -> bad "missing field \"kind\""
        | Some "characterize" -> Characterize
        | Some "statlib" -> Statlib (get_base json)
        | Some "min_period" -> Min_period (get_base json)
        | Some "tune" -> Tune { base = get_base json; tuning = get_method "method" json }
        | Some "sweep" ->
          Sweep
            {
              base = get_base json;
              tuning = get_method "method" json;
              period = get_float_opt "period" json;
              parameters = get_parameters json;
              mc_samples = get_int_opt "mc_samples" json;
            }
        | Some "design_sigma" ->
          Design_sigma
            {
              base = get_base json;
              period = get_float_opt "period" json;
              tuning = get_method_opt "method" json;
              timing_report = get_bool "timing_report" json;
              power = get_bool "power" json;
              verilog = get_bool "verilog" json;
            }
        | Some "report" ->
          Report
            {
              trace = get_string_opt "trace" json;
              metrics = get_string_opt "metrics" json;
              run_dir = get_string_opt "run_dir" json;
              json = get_bool "json" json;
            }
        | Some "parse" -> (
          match get_string_opt "file" json with
          | Some file -> Parse { file }
          | None -> bad "missing field \"file\"")
        | Some other -> bad "unknown request kind %S" other
      in
      Ok { id; priority; deadline_s; req = t }
    with
    | Bad s -> Error (Malformed s)
    | Wrong_version v -> Error (Unsupported_version v))
