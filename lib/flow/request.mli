(** The single typed request vocabulary of the flow layer.

    Every way of asking vartune for work — the CLI subcommands, the
    [vartune serve] daemon, the bench harness — constructs a {!t} and
    hands it to {!Run_request.exec}, so batch and served execution are
    bit-identical by construction.

    A request is a pure computation spec: no output paths, no run
    directories.  Delivery (writing [-o] files, journaling under
    [--run-dir]) stays with the caller, which is what makes {!key} a
    sound deduplication key for the serve layer's single-flight cache.

    {2 Wire format}

    One request per line, JSON, no embedded newlines:

    {v
    {"vartune":1,"id":7,"kind":"statlib","seed":42,"samples":50}
    v}

    [vartune] is the protocol version ({!version}); a reader that sees
    a version it does not know rejects the line with
    {!error.Unsupported_version} — exit 65 (EX_DATAERR) semantics —
    rather than guessing.  The version is bumped on any change that
    could make an old reader misinterpret a new line (field renames,
    semantic changes); adding a new [kind] is not a bump, since old
    readers reject unknown kinds as malformed.  [id] is an optional
    caller-chosen correlation id echoed back in the response.  Field
    order is canonical ({!to_line} always emits the same bytes for the
    same request), floats render shortest-round-trip, and absent
    optional fields are omitted. *)

type base = { seed : int; samples : int }
(** The knobs every statistical-library-building request shares. *)

type t =
  | Characterize  (** nominal characterisation of the catalog *)
  | Statlib of base  (** build the statistical library *)
  | Min_period of base  (** measure the minimum period ladder (Table 1) *)
  | Tune of { base : base; tuning : Vartune_tuning.Tuning_method.t }
      (** per-pin slew/load restrictions for one tuning method *)
  | Sweep of {
      base : base;
      tuning : Vartune_tuning.Tuning_method.t;
      period : float option;  (** [None]: the measured minimum *)
      parameters : float list;
      mc_samples : int option;
          (** [Some n]: finish with a path-level Monte Carlo of [n]
              samples (the [experiment] subcommand's validation stage) *)
    }  (** baseline + constraint-parameter sweep, the pipeline body *)
  | Design_sigma of {
      base : base;
      period : float option;
      tuning : Vartune_tuning.Tuning_method.t option;
      timing_report : bool;
      power : bool;
      verilog : bool;  (** ship the netlist as a [verilog] artifact *)
    }  (** one synthesis run (the [synth] subcommand) *)
  | Report of {
      trace : string option;
      metrics : string option;
      run_dir : string option;
      json : bool;
    }
      (** run report; with all three sources [None] it reports on the
          executing process's own live telemetry (the serve daemon's
          full-report endpoint) *)
  | Parse of { file : string }
      (** parse and summarise one liberty file (the [parse]
          subcommand); the path is resolved by the executing process *)

val version : int
(** Current wire protocol version (1). *)

val kind_string : t -> string
(** ["statlib"], ["sweep"], ... — the wire [kind] field, also used as
    span and response labels. *)

val base_of : t -> base option
(** The seed/samples knobs of the request, if it has any. *)

(** {2 Scheduling envelope}

    [priority] and [deadline_s] are optional envelope fields: they
    steer the serve layer's admission control but do not change the
    computation, so — like [id] — they are excluded from {!key} and
    omitted from the wire line when absent (existing lines stay
    byte-identical; no version bump). *)

type priority =
  | Interactive  (** answered ahead of any queued batch work *)
  | Batch  (** pipeline-heavy work, shed first under overload *)

val priority_to_string : priority -> string
(** ["interactive"] / ["batch"] — the wire spelling. *)

val priority_of_string : string -> priority option

val default_priority : t -> priority
(** The class used when a request carries no explicit [priority]:
    [Report]/[Parse]/[Characterize] are interactive, the
    statistical-library kinds are batch. *)

type envelope = {
  id : int option;  (** caller correlation id, echoed in the response *)
  priority : priority option;  (** [None]: {!default_priority} applies *)
  deadline_s : float option;
      (** seconds from receipt after which the answer is worthless;
          checked at admission and again at dequeue *)
  req : t;
}
(** A decoded wire line: the computation plus its scheduling fields. *)

(** {2 Codec} *)

type error =
  | Unsupported_version of int
      (** the line declared a [vartune] version this reader does not
          speak — exit 65 semantics, never a guess *)
  | Malformed of string  (** not JSON / missing or ill-typed fields *)

val error_message : error -> string

val to_line : ?id:int -> ?priority:priority -> ?deadline_s:float -> t -> string
(** Canonical one-line JSON encoding, no trailing newline.  Omitted
    optional arguments encode nothing. *)

val of_line : string -> (envelope, error) result
(** Parses one wire line; inverse of {!to_line} (structurally equal,
    floats bit-exact).  An unknown [priority] spelling or a
    non-positive [deadline_s] is {!error.Malformed}. *)

val key : t -> string
(** Canonical identity of the computation ({!to_line} without [id]) —
    the serve layer's single-flight deduplication key.  Two requests
    with equal [key] produce byte-identical responses. *)
