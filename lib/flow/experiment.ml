module Characterize = Vartune_charlib.Characterize
module Pool = Vartune_util.Pool
module Statistical = Vartune_statlib.Statistical
module Mismatch = Vartune_process.Mismatch
module Mcu = Vartune_rtl.Microcontroller
module Ir = Vartune_rtl.Ir
module Library = Vartune_liberty.Library
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints
module Path = Vartune_sta.Path
module Design_sigma = Vartune_stats.Design_sigma
module Tuning_method = Vartune_tuning.Tuning_method
module Obs = Vartune_obs.Obs

let src = Logs.Src.create "vartune.flow" ~doc:"experiment flow"

module Log = (val Logs.src_log src : Logs.LOG)

let c_cache_hits = Obs.Counter.make "synth.cache.hits"
let c_cache_misses = Obs.Counter.make "synth.cache.misses"
let c_sweep_points = Obs.Counter.make "sweep.points"

type run = {
  label : string;
  period : float;
  result : Synthesis.result;
  paths : Path.t list;
  design_sigma : Design_sigma.t;
}

type cache_key = int * float * string

type setup = {
  char_config : Characterize.config;
  mismatch : Mismatch.t;
  seed : int;
  samples : int;
  design : Ir.t;
  design_fp : int;
  statlib : Library.t;
  min_period : float;
  periods : (string * float) list;
  cache : (cache_key, run) Hashtbl.t;
  cache_lock : Mutex.t;
}

let paper_period_labels min_period =
  (* Table 1 scaled: 2.41 (high), 2.5 (close to maximum check),
     4 (medium), 10 (low) *)
  let scale = min_period /. 2.41 in
  [
    ("high", min_period);
    ("close", Float.round (2.5 *. scale *. 100.0) /. 100.0);
    ("medium", Float.round (4.0 *. scale *. 100.0) /. 100.0);
    ("low", Float.round (10.0 *. scale *. 100.0) /. 100.0);
  ]

let prepare ?(samples = 50) ?(seed = 42) ?(mcu_config = Mcu.default_config) () =
  Obs.span "flow.prepare" ~attrs:(fun () -> [ ("samples", string_of_int samples) ])
  @@ fun () ->
  let char_config = Characterize.default_config in
  let mismatch = Mismatch.default in
  Log.info (fun m -> m "building statistical library (N=%d)" samples);
  let statlib = Statistical.build char_config ~mismatch ~seed ~n:samples () in
  let design = Mcu.generate ~config:mcu_config () in
  Log.info (fun m -> m "design %s: %d IR nodes" (Ir.name design) (Ir.node_count design));
  let min_period = Synthesis.min_period statlib design in
  Log.info (fun m -> m "minimum period: %.2f ns" min_period);
  {
    char_config;
    mismatch;
    seed;
    samples;
    design;
    design_fp = Ir.fingerprint design;
    statlib;
    min_period;
    periods = paper_period_labels min_period;
    cache = Hashtbl.create 64;
    cache_lock = Mutex.create ();
  }

let fresh_cache setup = { setup with cache = Hashtbl.create 64; cache_lock = Mutex.create () }

(* Synthesis runs are deterministic in (setup identity, period, label);
   the experiments re-visit baselines constantly, so memoise.  The cache
   lives in the setup — so two setups never share entries — and is keyed
   on the structural design fingerprint, so two mcu_configs that happen
   to elaborate to the same node count still cannot collide.  The mutex
   makes the memo table safe under Pool.map; a miss is synthesised
   outside the lock (concurrent first requests may duplicate the work,
   but the result is deterministic so either insert is correct). *)
let run_with setup ~period ~label ~restrictions =
  let key = (setup.design_fp, period, label) in
  let cached =
    Mutex.protect setup.cache_lock (fun () -> Hashtbl.find_opt setup.cache key)
  in
  match cached with
  | Some r ->
    Obs.Counter.incr c_cache_hits;
    r
  | None ->
    Obs.Counter.incr c_cache_misses;
    let cons = Constraints.make ~clock_period:period ?restrictions () in
    let result = Synthesis.run cons setup.statlib setup.design in
    let paths = Path.worst_per_endpoint result.Synthesis.timing result.Synthesis.netlist in
    let design_sigma = Design_sigma.of_paths paths in
    let r = { label; period; result; paths; design_sigma } in
    Mutex.protect setup.cache_lock (fun () ->
        match Hashtbl.find_opt setup.cache key with
        | Some earlier -> earlier
        | None ->
          Hashtbl.replace setup.cache key r;
          r)

let baseline setup ~period = run_with setup ~period ~label:"baseline" ~restrictions:None

let tuned setup ~period ~tuning =
  let label = Tuning_method.name tuning in
  let restrictions = Tuning_method.restrictions tuning setup.statlib in
  run_with setup ~period ~label ~restrictions:(Some restrictions)

let sigma_reduction ~baseline ~tuned =
  let b = baseline.design_sigma.Design_sigma.dist.Vartune_stats.Dist.sigma in
  let t = tuned.design_sigma.Design_sigma.dist.Vartune_stats.Dist.sigma in
  if b = 0.0 then 0.0 else (b -. t) /. b

let area_increase ~baseline ~tuned =
  let b = baseline.result.Synthesis.area in
  let t = tuned.result.Synthesis.area in
  if b = 0.0 then 0.0 else (t -. b) /. b

type sweep_point = { parameter : float; run : run; reduction : float; area_delta : float }

let sweep ?pool setup ~period ~tuning ~parameters =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Obs.span "sweep.run"
    ~attrs:(fun () ->
      [
        ("method", Tuning_method.name tuning);
        ("points", string_of_int (List.length parameters));
      ])
  @@ fun () ->
  let base = baseline setup ~period in
  Pool.map pool
    (fun parameter ->
      Obs.span "sweep.point" ~attrs:(fun () -> [ ("parameter", string_of_float parameter) ])
      @@ fun () ->
      Obs.Counter.incr c_sweep_points;
      let tuning = Tuning_method.with_parameter tuning parameter in
      let run = tuned setup ~period ~tuning in
      {
        parameter;
        run;
        reduction = sigma_reduction ~baseline:base ~tuned:run;
        area_delta = area_increase ~baseline:base ~tuned:run;
      })
    parameters

let best_under_area_cap ?(cap = 0.10) points =
  (* the paper's Fig 10 rule is a hard filter: feasible and under the
     area cap; a method with no qualifying point shows no bar *)
  points
  |> List.filter (fun p -> p.run.result.Synthesis.feasible && p.area_delta < cap)
  |> List.fold_left
       (fun acc p ->
         match acc with
         | None -> Some p
         | Some best -> if p.reduction > best.reduction then Some p else acc)
       None

let find_path_of_depth run ~depth =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some best ->
        if abs (Path.depth p - depth) < abs (Path.depth best - depth) then Some p else acc)
    None run.paths
