module Characterize = Vartune_charlib.Characterize
module Pool = Vartune_util.Pool
module Statistical = Vartune_statlib.Statistical
module Mismatch = Vartune_process.Mismatch
module Mcu = Vartune_rtl.Microcontroller
module Ir = Vartune_rtl.Ir
module Library = Vartune_liberty.Library
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints
module Path = Vartune_sta.Path
module Design_sigma = Vartune_stats.Design_sigma
module Tuning_method = Vartune_tuning.Tuning_method
module Store = Vartune_store.Store
module Codec = Vartune_store.Codec
module Obs = Vartune_obs.Obs
module Journal = Vartune_journal.Journal

let src = Logs.Src.create "vartune.flow" ~doc:"experiment flow"

module Log = (val Logs.src_log src : Logs.LOG)

let c_cache_hits = Obs.Counter.make "synth.cache.hits"
let c_cache_misses = Obs.Counter.make "synth.cache.misses"
let c_sweep_points = Obs.Counter.make "sweep.points"

type run = {
  label : string;
  period : float;
  result : Synthesis.result;
  paths : Path.t list;
  design_sigma : Design_sigma.t;
}

type memo_key = int * float * string
(** (structural design fingerprint, period, label) *)

type memo = {
  table : (memo_key, run) Hashtbl.t;
  (** guarded by [lock] so sweep points may run on pool workers *)
  lock : Mutex.t;
  store : Store.t option;
  ckpt : Journal.ctx option;
      (** checkpoint context of a journaled run: its state store is an
          extra cache layer and every landed artifact is journaled *)
  statlib_id : string;
      (** full recipe id of the statistical-library store key; chained
          into every run key so a different library invalidates runs *)
}

type setup = {
  char_config : Characterize.config;
  mismatch : Mismatch.t;
  seed : int;
  samples : int;
  design : Ir.t;
  design_fp : int;
  statlib : Library.t;
  min_period : float;
  periods : (string * float) list;
  memo : memo;
}

let paper_period_labels min_period =
  (* Table 1 scaled: 2.41 (high), 2.5 (close to maximum check),
     4 (medium), 10 (low) *)
  let scale = min_period /. 2.41 in
  [
    ("high", min_period);
    ("close", Float.round (2.5 *. scale *. 100.0) /. 100.0);
    ("medium", Float.round (4.0 *. scale *. 100.0) /. 100.0);
    ("low", Float.round (10.0 *. scale *. 100.0) /. 100.0);
  ]

let make_memo ?store ?ckpt ~statlib_id () =
  { table = Hashtbl.create 64; lock = Mutex.create (); store; ckpt; statlib_id }

(* Cache layers of a journaled run, probe order: the shared artifact
   store first, then the run's private state store.  Artifacts land in
   both so a later resume finds them even when the shared store is
   disabled or wiped. *)
let cache_stores ?store ?ckpt () =
  (match store with Some s -> [ s ] | None -> [])
  @ match ckpt with Some c -> [ c.Journal.state ] | None -> []

let rec first_load stores key decode =
  match stores with
  | [] -> None
  | s :: rest -> (
    match Store.load s key decode with
    | Some _ as hit -> hit
    | None -> first_load rest key decode)

let save_all stores key encode = List.iter (fun s -> Store.save s key encode) stores

let prepare ?(samples = 50) ?(seed = 42) ?(mcu_config = Mcu.default_config) ?store ?ckpt
    ?(reuse = true) ?specs () =
  Obs.span "flow.prepare" ~attrs:(fun () -> [ ("samples", string_of_int samples) ])
  @@ fun () ->
  let store = if reuse then store else None in
  let char_config = Characterize.default_config in
  let mismatch = Mismatch.default in
  let statlib_key = Statistical.store_key char_config ~mismatch ~seed ~n:samples ?specs () in
  let statlib_id = Store.Key.id statlib_key in
  Log.info (fun m -> m "building statistical library (N=%d)" samples);
  let statlib = Statistical.build ?store ?ckpt char_config ~mismatch ~seed ~n:samples ?specs () in
  let design = Mcu.generate ~config:mcu_config () in
  Log.info (fun m -> m "design %s: %d IR nodes" (Ir.name design) (Ir.node_count design));
  let design_fp = Ir.fingerprint design in
  Option.iter Journal.check_stop ckpt;
  let min_period =
    let measure () = Synthesis.min_period statlib design in
    let key =
      Store.Key.(int (str (v "min_period") "statlib" statlib_id) "design" design_fp)
    in
    let stores = cache_stores ?store ?ckpt () in
    let p =
      match first_load stores key Codec.r_float with
      | Some p -> p
      | None ->
        let p = measure () in
        save_all stores key (fun b -> Codec.w_float b p);
        p
    in
    Option.iter
      (fun c -> Journal.record c (Journal.Min_period { key = Store.Key.id key; period = p }))
      ckpt;
    p
  in
  Log.info (fun m -> m "minimum period: %.2f ns" min_period);
  {
    char_config;
    mismatch;
    seed;
    samples;
    design;
    design_fp;
    statlib;
    min_period;
    periods = paper_period_labels min_period;
    memo = make_memo ?store ?ckpt ~statlib_id ();
  }

let prepare_request ?mcu_config ?store ?ckpt ?reuse ?specs req =
  let { Request.seed; samples } =
    Option.value (Request.base_of req) ~default:{ Request.seed = 42; samples = 50 }
  in
  prepare ~samples ~seed ?mcu_config ?store ?ckpt ?reuse ?specs ()

let min_period_key setup =
  Store.Key.(
    int (str (v "min_period") "statlib" setup.memo.statlib_id) "design" setup.design_fp)

let recipe_ids setup =
  [ setup.memo.statlib_id; Store.Key.id (min_period_key setup) ]

let fresh_memo setup =
  { setup with memo = make_memo ~statlib_id:setup.memo.statlib_id () }

(* The persistent key of one synthesis run.  The restrictions table is
   not an ingredient of its own: it is a deterministic function of
   (method label, statistical library), and both are in the key.  The
   remaining constraint scalars are included explicitly so a future
   change of defaults invalidates entries. *)
let run_key setup ~period ~label ~(cons : Constraints.t) =
  Store.Key.(
    v "synth_run"
    |> fun k ->
    str k "statlib" setup.memo.statlib_id |> fun k ->
    int k "design" setup.design_fp |> fun k ->
    float k "period" period |> fun k ->
    str k "label" label |> fun k ->
    float k "guard_band" cons.guard_band |> fun k ->
    float k "input_slew" cons.input_slew |> fun k ->
    float k "clock_slew" cons.clock_slew |> fun k ->
    float k "output_load" cons.output_load |> fun k ->
    int k "max_fanout" cons.max_fanout |> fun k ->
    float k "max_transition" cons.max_transition |> fun k ->
    int k "max_iterations" cons.max_iterations |> fun k ->
    bool k "area_recovery" cons.area_recovery)

let encode_run b r =
  Codec.w_string b r.label;
  Codec.w_float b r.period;
  Codec.w_result b r.result;
  Codec.w_paths b r.paths;
  Codec.w_design_sigma b r.design_sigma

let decode_run ~(cons : Constraints.t) r =
  let label = Codec.r_string r in
  let period = Codec.r_float r in
  let result = Codec.r_result ~timing_config:(Constraints.timing_config cons) r in
  let paths = Codec.r_paths r in
  let design_sigma = Codec.r_design_sigma r in
  { label; period; result; paths; design_sigma }

(* Synthesis runs are deterministic in (setup identity, period, label);
   the experiments re-visit baselines constantly, so memoise.  Lookups
   go memo table → store → compute; either cache layer returns runs
   bit-identical to a fresh synthesis.  The memo table lives in the
   setup — so two setups never share entries — and is keyed on the
   structural design fingerprint, so two mcu_configs that happen to
   elaborate to the same node count still cannot collide.  The mutex
   makes the memo table safe under Pool.map; a miss is resolved outside
   the lock (concurrent first requests may duplicate the work, but the
   result is deterministic so either insert is correct). *)
let run_with setup ~period ~label ~restrictions =
  let memo = setup.memo in
  let key = (setup.design_fp, period, label) in
  let cached = Mutex.protect memo.lock (fun () -> Hashtbl.find_opt memo.table key) in
  match cached with
  | Some r ->
    Obs.Counter.incr c_cache_hits;
    r
  | None ->
    let insert r =
      Mutex.protect memo.lock (fun () ->
          match Hashtbl.find_opt memo.table key with
          | Some earlier -> earlier
          | None ->
            Hashtbl.replace memo.table key r;
            r)
    in
    let cons = Constraints.make ~clock_period:period ?restrictions () in
    let skey = run_key setup ~period ~label ~cons in
    let stores = cache_stores ?store:memo.store ?ckpt:memo.ckpt () in
    let record_done () =
      Option.iter
        (fun c ->
          Journal.record c
            (Journal.Synthesis_done { key = Store.Key.id skey; label; period }))
        memo.ckpt
    in
    (match first_load stores skey (decode_run ~cons) with
    | Some r ->
      Obs.Counter.incr c_cache_hits;
      record_done ();
      insert r
    | None ->
      Obs.Counter.incr c_cache_misses;
      let result = Synthesis.run cons setup.statlib setup.design in
      let paths = Path.worst_per_endpoint result.Synthesis.timing result.Synthesis.netlist in
      let design_sigma = Design_sigma.of_paths paths in
      let r = { label; period; result; paths; design_sigma } in
      save_all stores skey (fun b -> encode_run b r);
      record_done ();
      insert r)

let baseline setup ~period = run_with setup ~period ~label:"baseline" ~restrictions:None

let tuned setup ~period ~tuning =
  let label = Tuning_method.to_string tuning in
  let restrictions = Tuning_method.restrictions tuning setup.statlib in
  run_with setup ~period ~label ~restrictions:(Some restrictions)

let sigma_reduction ~baseline ~tuned =
  let b = baseline.design_sigma.Design_sigma.dist.Vartune_stats.Dist.sigma in
  let t = tuned.design_sigma.Design_sigma.dist.Vartune_stats.Dist.sigma in
  if b = 0.0 then 0.0 else (b -. t) /. b

let area_increase ~baseline ~tuned =
  let b = baseline.result.Synthesis.area in
  let t = tuned.result.Synthesis.area in
  if b = 0.0 then 0.0 else (t -. b) /. b

type sweep_point = { parameter : float; run : run; reduction : float; area_delta : float }

let sweep ?pool setup ~period ~tuning ~parameters =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Obs.span "sweep.run"
    ~attrs:(fun () ->
      [
        ("method", Tuning_method.to_string tuning);
        ("points", string_of_int (List.length parameters));
      ])
  @@ fun () ->
  let base = baseline setup ~period in
  Pool.map_chunked pool
    (fun parameter ->
      Obs.span "sweep.point" ~attrs:(fun () -> [ ("parameter", string_of_float parameter) ])
      @@ fun () ->
      Obs.Counter.incr c_sweep_points;
      let tuning = Tuning_method.with_parameter tuning parameter in
      let run = tuned setup ~period ~tuning in
      {
        parameter;
        run;
        reduction = sigma_reduction ~baseline:base ~tuned:run;
        area_delta = area_increase ~baseline:base ~tuned:run;
      })
    parameters

let best_under_area_cap ?(cap = 0.10) points =
  (* the paper's Fig 10 rule is a hard filter: feasible and under the
     area cap; a method with no qualifying point shows no bar *)
  points
  |> List.filter (fun p -> p.run.result.Synthesis.feasible && p.area_delta < cap)
  |> List.fold_left
       (fun acc p ->
         match acc with
         | None -> Some p
         | Some best -> if p.reduction > best.reduction then Some p else acc)
       None

(* ------------------------------------------------------------------ *)
(* Failure classification                                              *)
(* ------------------------------------------------------------------ *)

(* The hardened layers (store, pool) convert most faults into degraded
   service instead of exceptions, so anything that still escapes to the
   CLI deserves a typed, actionable exit code in the sysexits.h
   vocabulary rather than a backtrace and exit 2. *)
type failure =
  | Data_error of string  (** malformed input data, e.g. a Liberty file *)
  | Io_error of string  (** an I/O failure that was not recoverable *)
  | Worker_error of string  (** worker domains kept dying or stalled *)
  | Interrupted of string
      (** a graceful stop: progress is checkpointed, resume continues *)
  | Internal_error of string
      (** a bug: e.g. an injected fault escaped its hardened layer *)

let exit_code = function
  | Data_error _ -> 65 (* EX_DATAERR *)
  | Io_error _ -> 74 (* EX_IOERR *)
  | Worker_error _ | Interrupted _ -> 75 (* EX_TEMPFAIL *)
  | Internal_error _ -> 70 (* EX_SOFTWARE *)

let failure_message = function
  | Data_error m -> Printf.sprintf "data error: %s" m
  | Io_error m -> Printf.sprintf "I/O error: %s" m
  | Worker_error m -> Printf.sprintf "worker failure: %s" m
  | Interrupted m -> Printf.sprintf "interrupted: %s (resume with `vartune resume`)" m
  | Internal_error m -> Printf.sprintf "internal error: %s" m

let classify_exn = function
  | Vartune_liberty.Lexer.Error { line; message } ->
    Some (Data_error (Printf.sprintf "liberty lexer, line %d: %s" line message))
  | Vartune_liberty.Parser.Error message ->
    Some (Data_error (Printf.sprintf "liberty parser: %s" message))
  | Journal.Interrupted message -> Some (Interrupted message)
  | Journal.Corrupt reason -> Some (Data_error (Printf.sprintf "journal: %s" reason))
  | Codec.Corrupt reason ->
    Some (Io_error (Printf.sprintf "corrupt artifact escaped the store: %s" reason))
  | Sys_error reason -> Some (Io_error reason)
  | Unix.Unix_error (err, fn, arg) ->
    Some
      (Io_error
         (Printf.sprintf "%s in %s%s" (Unix.error_message err) fn
            (if arg = "" then "" else Printf.sprintf " (%s)" arg)))
  | Pool.Worker_failure message -> Some (Worker_error message)
  | Vartune_fault.Fault.Injected { point; site; seq } ->
    (* a fault reaching here means some layer failed to harden its
       boundary — report it as the bug it is, with a typed exit *)
    Some
      (Internal_error
         (Printf.sprintf "injected %s fault escaped at %s (occurrence %d)"
            (Vartune_fault.Fault.point_to_string point) site seq))
  | _ -> None

let find_path_of_depth run ~depth =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some best ->
        if abs (Path.depth p - depth) < abs (Path.depth best - depth) then Some p else acc)
    None run.paths
