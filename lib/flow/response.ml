module Json = Vartune_obs.Json

type t = {
  id : int option;
  kind : string;
  code : int;
  elapsed_s : float;
  dedup : bool;
  recipes : string list;
  meta : (string * string) list;
  output : string;
  artifacts : (string * string) list;
  error : string option;
  retry_after_s : float option;
}

let ok ?id ?(recipes = []) ?(meta = []) ?(artifacts = []) ~kind ~elapsed_s output =
  { id; kind; code = 0; elapsed_s; dedup = false; recipes; meta; output; artifacts;
    error = None; retry_after_s = None }

let fail ?id ?retry_after_s ~kind ~elapsed_s ~code msg =
  { id; kind; code; elapsed_s; dedup = false; recipes = []; meta = []; output = "";
    artifacts = []; error = Some msg; retry_after_s }

let num f = Json.Number f
let int_ i = num (float_of_int i)
let str s = Json.String s
let opt name conv = function None -> [] | Some v -> [ (name, conv v) ]
let str_obj kvs = Json.Object (List.map (fun (k, v) -> (k, str v)) kvs)

let to_line t =
  Json.to_string
    (Json.Object
       (("vartune", int_ Request.version)
       :: (opt "id" int_ t.id
          @ [
              ("kind", str t.kind);
              ("code", int_ t.code);
              ("elapsed_s", num t.elapsed_s);
              ("dedup", Json.Bool t.dedup);
              ("recipes", Json.Array (List.map str t.recipes));
              ("meta", str_obj t.meta);
              ("output", str t.output);
              ("artifacts", str_obj t.artifacts);
            ]
          @ opt "error" str t.error
          @ opt "retry_after_s" num t.retry_after_s)))

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let get name json conv =
  match Json.member name json with
  | None -> bad "missing field %S" name
  | Some v -> (
    match conv v with Some x -> x | None -> bad "ill-typed field %S" name)

let as_int = function
  | Json.Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let as_str_pairs = function
  | Json.Object kvs ->
    Some
      (List.map
         (fun (k, v) ->
           match v with Json.String s -> (k, s) | _ -> bad "non-string value for %S" k)
         kvs)
  | _ -> None

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> (
    try
      (match Json.member "vartune" json with
      | Some (Json.Number f) when int_of_float f = Request.version -> ()
      | Some (Json.Number f) ->
        bad "unsupported response version %d (this build speaks version %d)"
          (int_of_float f) Request.version
      | _ -> bad "missing field \"vartune\" (protocol version)");
      Ok
        {
          id =
            (match Json.member "id" json with
            | None -> None
            | Some v -> (
              match as_int v with Some i -> Some i | None -> bad "ill-typed field \"id\""));
          kind = get "kind" json Json.to_string_opt;
          code = get "code" json as_int;
          elapsed_s = get "elapsed_s" json Json.to_float;
          dedup =
            get "dedup" json (function Json.Bool b -> Some b | _ -> None);
          recipes =
            get "recipes" json Json.to_list
            |> List.map (function
                 | Json.String s -> s
                 | _ -> bad "non-string entry in \"recipes\"");
          meta = get "meta" json as_str_pairs;
          output = get "output" json Json.to_string_opt;
          artifacts = get "artifacts" json as_str_pairs;
          error =
            (match Json.member "error" json with
            | None -> None
            | Some (Json.String s) -> Some s
            | Some _ -> bad "ill-typed field \"error\"");
          retry_after_s =
            (match Json.member "retry_after_s" json with
            | None -> None
            | Some (Json.Number f) -> Some f
            | Some _ -> bad "ill-typed field \"retry_after_s\"");
        }
    with Bad s -> Error s)
