(** One generator per table and figure of the paper's evaluation.

    Each function prints a self-contained plain-text reproduction of the
    corresponding exhibit, annotated with the paper's reported values
    where the paper gives any.  Generators share synthesis results
    through {!Experiment}'s memoisation, so calling them in sequence
    (as [bench/main.exe] does) costs each synthesis only once. *)

val paper_bounds : float list
(** Table 2 slope-bound sweep: 1, 0.05, 0.03, 0.01. *)

val paper_ceilings : float list
(** Table 2 sigma-ceiling sweep: 0.04, 0.03, 0.02, 0.01. *)

val fig1_metric : unit -> unit
(** Variability vs sigma as a selection metric. *)

val fig2_statlib : Experiment.setup -> unit
(** Statistical library construction: Monte-Carlo sigma vs the analytic
    closed form for a sample of cells. *)

val fig3_bilinear : unit -> unit
(** Bilinear interpolation (eqs. 2–4) against a closed-form surface. *)

val fig4_inv_surfaces : Experiment.setup -> unit
(** Sigma surfaces across the inverter drive ladder. *)

val fig5_drive6 : Experiment.setup -> unit
(** Sigma surfaces of the drive-6 cluster. *)

val fig6_rectangle : Experiment.setup -> unit
(** Largest-rectangle extraction on a real binary LUT. *)

val fig7_all_luts : Experiment.setup -> unit
(** Library-wide sigma envelope surface. *)

val fig8_period_area : Experiment.setup -> unit
(** Clock period vs area of baseline synthesis. *)

val table1_periods : Experiment.setup -> unit
(** The clock-period ladder, paper values alongside. *)

val table2_parameters : unit -> unit
(** The constraint-parameter grid used during threshold extraction. *)

val fig9_cell_use : Experiment.setup -> unit
(** Cell-use histograms: baseline vs sigma-ceiling tuned, at the high
    and low performance clocks. *)

type winner = {
  period_label : string;
  period : float;
  method_name : string;
  parameter : float;
  reduction : float;
  area_delta : float;
  sigma : float;
  area : float;
}

val fig10_method_sweep : Experiment.setup -> winner list
(** The headline experiment: per period, the best (area < +10 %) point
    of each of the five methods.  Prints the figure and returns the
    winners for {!table3_winners}. *)

val table3_winners : winner list -> unit

val fig11_tradeoff : Experiment.setup -> unit
(** Sigma-reduction vs area-increase across the sigma-ceiling sweep at
    the high-performance clock. *)

val fig12_depths : Experiment.setup -> unit
(** Path-depth histograms, baseline vs sigma ceiling. *)

val fig13_sigma_depth : Experiment.setup -> unit
(** Path sigma vs path depth. *)

val fig14_mean3sigma : Experiment.setup -> unit
(** Mean + 3 sigma per path against the effective clock period. *)

val fig15_corners : Experiment.setup -> unit
(** Path Monte Carlo across corners: mean and sigma scale together. *)

val fig16_local_share : Experiment.setup -> unit
(** Local vs global+local MC: local dominates short paths. *)

val extension_power : Experiment.setup -> unit
(** Beyond the paper: the power cost of robustness.  Average-power report
    (switching / internal / leakage) for the baseline and the winning
    sigma-ceiling design at the high-performance clock. *)

val extension_yield : Experiment.setup -> unit
(** Beyond the paper: parametric timing yield vs clock period for the
    baseline and tuned designs — the quantity the guard band protects. *)

val extension_hold : Experiment.setup -> unit
(** Beyond the paper: hold (min-delay) checks are unaffected by the
    restriction, since tuning only forbids slow operating points. *)

val futurework_layout : Experiment.setup -> unit
(** The paper's future work, implemented: re-measure the design sigma
    after row-based placement (HPWL wire loads replacing the synthesis
    fanout model) and synthesise a clock tree to report the skew the
    paper wonders about.  Shows whether the tuning reduction survives
    layout within this model. *)

val ablation_guard_band : Experiment.setup -> unit
(** Section III's motivation quantified: local variation is budgeted as
    clock uncertainty, so a sigma reduction converts into a smaller guard
    band and hence a faster usable clock.  Compares the 3-sigma guard
    band implied by the worst path of the baseline vs the tuned design. *)

val ablation_mapping_style : Experiment.setup -> unit
(** Mapper design choice: Area-style initial covering (complex cells,
    full-adder fusion) vs Delay-style (NAND/NOR + inverter networks),
    compared on area, sigma and worst slack at the medium clock. *)

val ablation_rho : Experiment.setup -> unit
(** Design sigma under correlation assumptions ρ ∈ {0, 0.1, 0.3}
    (eqs. 8–10). *)

val ablation_variability_metric : Experiment.setup -> unit
(** Section III's rejected metric: tuning on a coefficient-of-variation
    ceiling instead of a sigma ceiling. *)

val run_all : Experiment.setup -> unit
(** Every exhibit in paper order. *)
