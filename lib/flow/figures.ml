module Lut = Vartune_liberty.Lut
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc
module Library = Vartune_liberty.Library
module Grid = Vartune_util.Grid
module Stat = Vartune_util.Stat
module Rng = Vartune_util.Rng
module Corner = Vartune_process.Corner
module Mismatch = Vartune_process.Mismatch
module Delay_model = Vartune_charlib.Delay_model
module Characterize = Vartune_charlib.Characterize
module Catalog = Vartune_stdcell.Catalog
module Spec = Vartune_stdcell.Spec
module Netlist = Vartune_netlist.Netlist
module Synthesis = Vartune_synth.Synthesis
module Constraints = Vartune_synth.Constraints
module Path = Vartune_sta.Path
module Dist = Vartune_stats.Dist
module Convolve = Vartune_stats.Convolve
module Design_sigma = Vartune_stats.Design_sigma
module Cluster = Vartune_tuning.Cluster
module Threshold = Vartune_tuning.Threshold
module Restrict = Vartune_tuning.Restrict
module Rectangle = Vartune_tuning.Rectangle
module Binary_lut = Vartune_tuning.Binary_lut
module Slope = Vartune_tuning.Slope
module Tuning_method = Vartune_tuning.Tuning_method
module Path_mc = Vartune_monte.Path_mc

let paper_bounds = [ 1.0; 0.05; 0.03; 0.01 ]
let paper_ceilings = [ 0.04; 0.03; 0.02; 0.01 ]

let design_sigma_of (run : Experiment.run) =
  run.Experiment.design_sigma.Design_sigma.dist.Dist.sigma

(* ------------------------------------------------------------------ *)

let fig1_metric () =
  Report.heading "Fig 1 — variability is not the right selection metric";
  let left = Dist.make ~mean:0.5 ~sigma:0.01 in
  let right = Dist.make ~mean:5.0 ~sigma:0.1 in
  Report.table
    ~header:[ "distribution"; "mean"; "sigma"; "variability (eq 1)" ]
    ~rows:
      [
        [ "left"; "0.5"; "0.01"; Printf.sprintf "%.3f" (Dist.variability left) ];
        [ "right"; "5.0"; "0.10"; Printf.sprintf "%.3f" (Dist.variability right) ];
      ];
  Printf.printf
    "  identical variability %.3f, but sigma differs 10x -> selection must use sigma.\n"
    (Dist.variability left)

let worst_sigma_lut cell =
  match List.concat_map (fun (p : Pin.t) -> List.filter_map Arc.worst_sigma p.arcs)
          (Cell.output_pins cell)
  with
  | [] -> None
  | luts -> Some (Slope.max_equivalent_by_index luts)

let fig2_statlib (setup : Experiment.setup) =
  Report.heading "Fig 2 — statistical library construction (MC sigma vs closed form)";
  Printf.printf "  %d sample libraries merged entry-wise (Welford), N=%d\n"
    setup.Experiment.samples setup.Experiment.samples;
  let probe_cells = [ "INV_1"; "INV_32"; "ND2_4"; "NR4_6"; "FA1_8"; "DFF_1" ] in
  let rows =
    List.filter_map
      (fun name ->
        match Library.find_opt setup.Experiment.statlib name with
        | None -> None
        | Some cell ->
          let spec = Option.get (Catalog.find cell.Cell.family) in
          let errs = ref [] in
          List.iter
            (fun (p : Pin.t) ->
              List.iter
                (fun (arc : Arc.t) ->
                  Option.iter
                    (fun sigma_lut ->
                      let slews = Lut.slews sigma_lut and loads = Lut.loads sigma_lut in
                      Array.iter
                        (fun slew ->
                          Array.iter
                            (fun load ->
                              let mc = Lut.lookup sigma_lut ~slew ~load in
                              let cf =
                                Delay_model.delay_sigma setup.Experiment.char_config.Characterize.params
                                  spec ~mismatch:setup.Experiment.mismatch
                                  ~drive:cell.Cell.drive_strength ~output:p.Pin.name
                                  ~edge:Delay_model.Rise
                                  ~corner_factor:(Corner.delay_factor Corner.typical)
                                  ~slew ~load
                              in
                              if cf > 1e-9 then errs := Float.abs (mc -. cf) /. cf :: !errs)
                            loads)
                        slews)
                    arc.Arc.rise_delay_sigma)
                p.Pin.arcs)
            (Cell.output_pins cell);
          let errors = Array.of_list !errs in
          if Array.length errors = 0 then None
          else
            Some
              [
                name;
                Report.pct (Stat.mean errors);
                Report.pct (snd (Stat.min_max errors));
              ])
      probe_cells
  in
  Report.table ~header:[ "cell"; "mean |MC-analytic|/analytic"; "max" ] ~rows;
  Printf.printf "  (sampling error of a stddev over N=%d is ~%s, so agreement at this level\n"
    setup.Experiment.samples
    (Report.pct (1.0 /. sqrt (2.0 *. float_of_int (setup.Experiment.samples - 1))));
  Printf.printf "   validates the entry-wise merge; the paper saw up to 2x at N=50.)\n"

let fig3_bilinear () =
  Report.heading "Fig 3 — bilinear interpolation (eqs 2-4)";
  let f ~slew ~load = 0.01 +. (0.3 *. slew) +. (2.0 *. load) +. (0.5 *. slew *. load) in
  let lut =
    Lut.of_fn ~slews:[| 0.01; 0.1; 0.4; 1.0 |] ~loads:[| 0.001; 0.01; 0.05; 0.1 |] f
  in
  let rng = Rng.create 7 in
  let max_err = ref 0.0 in
  for _ = 1 to 1000 do
    let slew = 0.01 +. Rng.float rng 0.99 in
    let load = 0.001 +. Rng.float rng 0.099 in
    let exact = f ~slew ~load in
    let interp = Lut.lookup lut ~slew ~load in
    max_err := Float.max !max_err (Float.abs (interp -. exact) /. exact)
  done;
  Printf.printf
    "  1000 random probes of a bilinear surface: max relative error %.2e (exact up to fp).\n"
    !max_err

let fig4_inv_surfaces (setup : Experiment.setup) =
  Report.heading "Fig 4 — INV sigma surfaces across drive strengths";
  List.iter
    (fun name ->
      match Library.find_opt setup.Experiment.statlib name with
      | None -> ()
      | Some cell ->
        Option.iter
          (fun lut ->
            Report.sub_heading name;
            Report.surface lut)
          (worst_sigma_lut cell))
    [ "INV_1"; "INV_4"; "INV_12"; "INV_32" ];
  print_endline
    "  Higher drives: lower sigma overall and flatter gradient (bigger devices match better)."

let fig5_drive6 (setup : Experiment.setup) =
  Report.heading "Fig 5 — sigma envelope of every drive-6 cell";
  let cluster =
    Cluster.clusters setup.Experiment.statlib Cluster.Per_drive_strength
    |> List.find_opt (fun c -> c.Cluster.label = "drive_6")
  in
  match cluster with
  | None -> print_endline "  (no drive-6 cells)"
  | Some c ->
    Printf.printf "  cluster of %d cells: " (List.length c.Cluster.cells);
    List.iteri
      (fun i (cell : Cell.t) -> if i < 12 then Printf.printf "%s " cell.Cell.name)
      c.Cluster.cells;
    print_newline ();
    (match Cluster.equivalent_lut c with
    | Some lut -> Report.surface lut
    | None -> ());
    (* per-cell sigma ranges, like the stacked surfaces of the figure *)
    let rows =
      List.filter_map
        (fun (cell : Cell.t) ->
          Option.map
            (fun lut ->
              let g = Lut.values lut in
              [ cell.Cell.name;
                Printf.sprintf "%.4f" (Grid.min_value g);
                Printf.sprintf "%.4f" (Grid.max_value g) ])
            (worst_sigma_lut cell))
        c.Cluster.cells
    in
    Report.table ~header:[ "cell"; "min sigma (ns)"; "max sigma (ns)" ]
      ~rows:(List.filteri (fun i _ -> i < 14) rows)

let fig6_rectangle (setup : Experiment.setup) =
  Report.heading "Fig 6 — largest rectangle on a binary LUT (Algorithm 1)";
  let cell = Library.find setup.Experiment.statlib "ND2_2" in
  match worst_sigma_lut cell with
  | None -> ()
  | Some lut ->
    let g = Lut.values lut in
    let threshold = (Grid.min_value g +. Grid.max_value g) /. 2.0 in
    let mask = Binary_lut.of_ceiling lut ~ceiling:threshold in
    (match Rectangle.naive_largest mask with
    | None -> print_endline "  no all-ones rectangle"
    | Some rect ->
      Printf.printf "  cell ND2_2, threshold %.4f ns; R marks the extracted rectangle:\n"
        threshold;
      for i = 0 to Binary_lut.rows mask - 1 do
        print_string "  ";
        for j = 0 to Binary_lut.cols mask - 1 do
          let c =
            if Rectangle.contains rect ~row:i ~col:j then 'R'
            else if Binary_lut.get mask i j then '1'
            else '.'
          in
          print_char c;
          print_char c
        done;
        print_newline ()
      done;
      let row, col = Rectangle.far_corner rect in
      Printf.printf "  far corner (%d,%d): extracted sigma threshold = %.4f ns\n" row col
        (Lut.get lut row col);
      (* cross-check the optimised algorithm *)
      let optimised = Rectangle.largest mask in
      let naive_area = Rectangle.area rect in
      let opt_area = Option.fold ~none:0 ~some:Rectangle.area optimised in
      Printf.printf "  optimised max-rectangle agrees on area: %d = %d\n" naive_area opt_area)

let fig7_all_luts (setup : Experiment.setup) =
  Report.heading "Fig 7 — all cell delay-sigma LUTs of the statistical library";
  let luts =
    List.filter_map worst_sigma_lut (Library.cells setup.Experiment.statlib)
  in
  let envelope = Slope.max_equivalent_by_index luts in
  Printf.printf "  %d sigma tables; library-wide envelope surface:\n" (List.length luts);
  Report.surface envelope;
  let sigmas =
    List.concat_map (fun lut -> Array.to_list (Array.concat (Array.to_list (Grid.to_arrays (Lut.values lut))))) luts
  in
  let arr = Array.of_list sigmas in
  Printf.printf "  sigma entries: min %.4f  median %.4f  p95 %.4f  max %.4f (ns)\n"
    (fst (Stat.min_max arr)) (Stat.percentile arr 0.5) (Stat.percentile arr 0.95)
    (snd (Stat.min_max arr))

let fig8_period_area (setup : Experiment.setup) =
  Report.heading "Fig 8 — clock period vs area (baseline synthesis)";
  let tmin = setup.Experiment.min_period in
  (* the sub-minimum points show the hockey stick: synthesis burns area
     chasing an unreachable clock, then fails *)
  let factors = [ 0.85; 0.92; 0.97; 1.0; 1.05; 1.15; 1.3; 1.5; 1.8; 2.2; 2.8; 3.5; 4.2 ] in
  let rows =
    List.map
      (fun f ->
        let period = Float.round (tmin *. f *. 100.0) /. 100.0 in
        let run = Experiment.baseline setup ~period in
        [
          Printf.sprintf "%.2f" period;
          Printf.sprintf "%.0f" run.Experiment.result.Synthesis.area;
          string_of_int run.Experiment.result.Synthesis.instances;
          (if run.Experiment.result.Synthesis.feasible then "yes" else "NO");
        ])
      factors
  in
  Report.table ~header:[ "period (ns)"; "area (um^2)"; "cells"; "feasible" ] ~rows;
  print_endline
    "  Shape check: area decays as the clock relaxes and flattens at the 'relaxed knee'\n\
    \  (the paper's 10 ns point); the knee defines the low-performance constraint."

let table1_periods (setup : Experiment.setup) =
  Report.heading "Table 1 — clock periods for the constraint ladder";
  let paper = [ ("high", 2.41); ("close", 2.5); ("medium", 4.0); ("low", 10.0) ] in
  let rows =
    List.map
      (fun (label, period) ->
        [ label; Printf.sprintf "%.2f" (List.assoc label paper); Printf.sprintf "%.2f" period ])
      setup.Experiment.periods
  in
  Report.table ~header:[ "constraint"; "paper (ns)"; "measured (ns)" ] ~rows;
  Printf.printf
    "  Our technology closes at %.2f ns; the ladder keeps the paper's ratios to 2.41 ns.\n"
    setup.Experiment.min_period

let table2_parameters () =
  Report.heading "Table 2 — constraint parameters for threshold extraction";
  Report.table
    ~header:[ "parameter"; "sweep values"; "default" ]
    ~rows:
      [
        [ "load slope bound"; String.concat ", " (List.map string_of_float paper_bounds); "1." ];
        [ "slew slope bound"; String.concat ", " (List.map string_of_float paper_bounds); "0.06" ];
        [ "sigma ceiling"; String.concat ", " (List.map string_of_float paper_ceilings); "100." ];
      ]

(* the sigma-ceiling method instance used by several figures *)
let ceiling_method c =
  { Tuning_method.population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling c }

(* the ceiling the Fig 10 selection rule would pick at this period; the
   downstream figures (9, 12-14) study that winning configuration *)
let best_ceiling setup ~period =
  let points =
    Experiment.sweep setup ~period ~tuning:(ceiling_method 0.02) ~parameters:paper_ceilings
  in
  match Experiment.best_under_area_cap points with
  | Some best -> best.Experiment.parameter
  | None -> 0.02

let fig9_cell_use (setup : Experiment.setup) =
  Report.heading "Fig 9 — cell use, baseline vs sigma-ceiling tuned";
  let show label period ceiling =
    Report.sub_heading
      (Printf.sprintf "(%s) clock %.2f ns, ceiling %.3g" label period ceiling);
    let base = Experiment.baseline setup ~period in
    let tuned = Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling) in
    let base_use = Netlist.cell_usage base.Experiment.result.Synthesis.netlist in
    let tuned_use = Netlist.cell_usage tuned.Experiment.result.Synthesis.netlist in
    let threshold_count = 50 in
    let interesting =
      List.sort_uniq String.compare
        (List.filter_map (fun (n, c) -> if c > threshold_count then Some n else None)
           (base_use @ tuned_use))
    in
    let count l n = Option.value (List.assoc_opt n l) ~default:0 in
    let rows =
      interesting
      |> List.map (fun n -> (n, count base_use n, count tuned_use n))
      |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
      |> List.map (fun (n, b, t) -> [ n; string_of_int b; string_of_int t ])
    in
    Report.table ~header:[ Printf.sprintf "cell (used > %d)" threshold_count; "baseline"; "tuned" ] ~rows;
    let inv_count usage =
      List.fold_left (fun acc (n, c) ->
          if String.length n >= 4 && String.sub n 0 4 = "INV_" then acc + c else acc) 0 usage
    in
    Printf.printf "  total inverters: baseline %d -> tuned %d\n" (inv_count base_use)
      (inv_count tuned_use)
  in
  let high = List.assoc "high" setup.Experiment.periods in
  let low = List.assoc "low" setup.Experiment.periods in
  show "a: high performance" high (best_ceiling setup ~period:high);
  show "b: low performance" low (best_ceiling setup ~period:low)

type winner = {
  period_label : string;
  period : float;
  method_name : string;
  parameter : float;
  reduction : float;
  area_delta : float;
  sigma : float;
  area : float;
}

let methods_with_sweeps =
  let open Tuning_method in
  [
    ( { population = Cluster.Per_drive_strength; criterion = Threshold.Load_slope 1.0 },
      paper_bounds );
    ( { population = Cluster.Per_drive_strength; criterion = Threshold.Slew_slope 1.0 },
      paper_bounds );
    ({ population = Cluster.Per_cell; criterion = Threshold.Load_slope 1.0 }, paper_bounds);
    ({ population = Cluster.Per_cell; criterion = Threshold.Slew_slope 1.0 }, paper_bounds);
    ( { population = Cluster.Per_cell; criterion = Threshold.Sigma_ceiling 0.02 },
      paper_ceilings );
  ]

let fig10_method_sweep (setup : Experiment.setup) =
  Report.heading
    "Fig 10 — best sigma decrease (area < +10%) per tuning method and clock period";
  let winners = ref [] in
  List.iter
    (fun (label, period) ->
      let base = Experiment.baseline setup ~period in
      Report.sub_heading
        (Printf.sprintf "clock %.2f ns (%s): baseline sigma %.4f ns, area %.2fe4 um^2" period
           label (design_sigma_of base)
           (base.Experiment.result.Synthesis.area /. 1e4));
      let all_rows = ref [] in
      let entries =
        List.map
          (fun (tuning, parameters) ->
            let points = Experiment.sweep setup ~period ~tuning ~parameters in
            List.iter
              (fun (p : Experiment.sweep_point) ->
                all_rows :=
                  [
                    Tuning_method.short_name tuning;
                    Printf.sprintf "%g" p.Experiment.parameter;
                    Report.pct p.Experiment.reduction;
                    Report.pct p.Experiment.area_delta;
                    (if p.Experiment.run.Experiment.result.Synthesis.feasible then "yes"
                     else "NO");
                  ]
                  :: !all_rows)
              points;
            let best = Experiment.best_under_area_cap points in
            Option.iter
              (fun (b : Experiment.sweep_point) ->
                winners :=
                  {
                    period_label = label;
                    period;
                    method_name = Tuning_method.short_name tuning;
                    parameter = b.Experiment.parameter;
                    reduction = b.Experiment.reduction;
                    area_delta = b.Experiment.area_delta;
                    sigma = design_sigma_of b.Experiment.run;
                    area = b.Experiment.run.Experiment.result.Synthesis.area;
                  }
                  :: !winners)
              best;
            (Tuning_method.short_name tuning, best))
          methods_with_sweeps
      in
      let bar f =
        List.map
          (fun (name, best) ->
            match best with
            | Some (b : Experiment.sweep_point) ->
              (name, Float.round (f b *. 1000.0) /. 10.0)
            | None -> (name ^ " (no point <10% area)", 0.0))
          entries
      in
      Report.bar_chart ~unit_label:"% sigma decrease"
        (bar (fun b -> b.Experiment.reduction));
      Report.bar_chart ~unit_label:"% area increase"
        (bar (fun b -> b.Experiment.area_delta));
      print_endline "  full sweep:";
      Report.table
        ~header:[ "method"; "parameter"; "sigma decrease"; "area increase"; "feasible" ]
        ~rows:(List.rev !all_rows))
    setup.Experiment.periods;
  Printf.printf
    "\n  Paper headline: sigma ceiling reaches -37%% sigma at +7%% area (high performance),\n\
    \  -32%% at +4%% (low); strength-based methods give ~-31%% at ~0%% area.\n";
  List.rev !winners

let table3_winners winners =
  Report.heading "Table 3 — winning constraint parameter per method and period";
  let rows =
    List.map
      (fun w ->
        [
          w.period_label;
          Printf.sprintf "%.2f" w.period;
          w.method_name;
          Printf.sprintf "%g" w.parameter;
          Report.pct w.reduction;
          Report.pct w.area_delta;
        ])
      winners
  in
  Report.table
    ~header:[ "constraint"; "period"; "method"; "parameter"; "sigma decrease"; "area increase" ]
    ~rows

let fig11_tradeoff (setup : Experiment.setup) =
  Report.heading "Fig 11 — sigma decrease vs area increase, sigma-ceiling sweep (high clock)";
  let period = List.assoc "high" setup.Experiment.periods in
  let points =
    Experiment.sweep setup ~period ~tuning:(ceiling_method 0.02) ~parameters:paper_ceilings
  in
  let rows =
    List.map
      (fun (p : Experiment.sweep_point) ->
        [
          Printf.sprintf "%g" p.Experiment.parameter;
          Report.pct p.Experiment.reduction;
          Report.pct p.Experiment.area_delta;
          (if p.Experiment.run.Experiment.result.Synthesis.feasible then "yes" else "NO");
        ])
      points
  in
  Report.table ~header:[ "ceiling (ns)"; "sigma decrease"; "area increase"; "feasible" ] ~rows;
  print_endline "  Tighter ceilings buy more sigma reduction at growing area cost (paper Fig 11)."

let fig12_depths (setup : Experiment.setup) =
  Report.heading "Fig 12 — path depths of worst paths per endpoint (high clock)";
  let period = List.assoc "high" setup.Experiment.periods in
  let ceiling = best_ceiling setup ~period in
  let base = Experiment.baseline setup ~period in
  let tuned = Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling) in
  let bucket paths =
    let hist = Path.depth_histogram paths in
    (* bucket by 5 to keep the profile readable *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (d, c) ->
        let b = d / 5 * 5 in
        Hashtbl.replace tbl b (c + Option.value (Hashtbl.find_opt tbl b) ~default:0))
      hist;
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl [] |> List.sort compare
  in
  Report.sub_heading "baseline";
  Report.int_histogram (bucket base.Experiment.paths);
  Report.sub_heading (Printf.sprintf "sigma ceiling %g" ceiling);
  Report.int_histogram (bucket tuned.Experiment.paths);
  let mean_depth paths =
    let ds = List.map Path.depth paths in
    float_of_int (List.fold_left ( + ) 0 ds) /. float_of_int (max 1 (List.length ds))
  in
  let bd = mean_depth base.Experiment.paths and td = mean_depth tuned.Experiment.paths in
  Printf.printf
    "  mean depth: baseline %.2f -> tuned %.2f (%s; the paper saw deepening when\n\
    \  restriction forces recreating functions from simpler cells)\n"
    bd td
    (if td > bd then "deeper, as in the paper"
     else "shallower here: the winning ceiling resizes more than it decomposes")

let fig13_sigma_depth (setup : Experiment.setup) =
  Report.heading "Fig 13 — path sigma vs path depth (high clock)";
  let period = List.assoc "high" setup.Experiment.periods in
  let show label (run : Experiment.run) =
    Report.sub_heading label;
    let xs = Array.of_list (List.map (fun p -> float_of_int (Path.depth p)) run.Experiment.paths) in
    let ys =
      Array.of_list
        (List.map (fun p -> (Convolve.of_path p).Dist.sigma) run.Experiment.paths)
    in
    Report.binned_scatter ~x_label:"depth" ~y_label:"sigma (ns)" xs ys
  in
  let ceiling = best_ceiling setup ~period in
  show "baseline" (Experiment.baseline setup ~period);
  show
    (Printf.sprintf "sigma ceiling %g" ceiling)
    (Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling));
  print_endline
    "  No strict depth->sigma relation: cell choice, not count, dictates path sigma (paper)."

let fig14_mean3sigma (setup : Experiment.setup) =
  Report.heading "Fig 14 — mean + 3 sigma per path vs effective clock (high clock)";
  let period = List.assoc "high" setup.Experiment.periods in
  let effective = period -. 0.3 in
  let show label (run : Experiment.run) =
    let stats =
      List.map
        (fun p ->
          let d = Convolve.of_path p in
          (Path.depth p, d.Dist.mean, Dist.quantile_3sigma d))
        run.Experiment.paths
    in
    let worst3 = List.fold_left (fun acc (_, _, q) -> Float.max acc q) 0.0 stats in
    let failing = List.length (List.filter (fun (_, _, q) -> q > effective) stats) in
    Report.sub_heading label;
    Report.table
      ~header:[ "depth range"; "paths"; "max mean (ns)"; "max mean+3sigma (ns)" ]
      ~rows:
        (List.filter_map
           (fun (lo, hi) ->
             let in_range = List.filter (fun (d, _, _) -> d >= lo && d <= hi) stats in
             if in_range = [] then None
             else
               Some
                 [
                   Printf.sprintf "%d-%d" lo hi;
                   string_of_int (List.length in_range);
                   Printf.sprintf "%.3f"
                     (List.fold_left (fun acc (_, m, _) -> Float.max acc m) 0.0 in_range);
                   Printf.sprintf "%.3f"
                     (List.fold_left (fun acc (_, _, q) -> Float.max acc q) 0.0 in_range);
                 ])
           [ (1, 3); (4, 7); (8, 15); (16, 30); (31, 45); (46, 70) ]);
    Printf.printf "  worst mean+3sigma %.3f ns vs effective clock %.3f ns; %d paths above it\n"
      worst3 effective failing;
    worst3
  in
  let ceiling = best_ceiling setup ~period in
  let b = show "baseline" (Experiment.baseline setup ~period) in
  let t =
    show
      (Printf.sprintf "sigma ceiling %g" ceiling)
      (Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling))
  in
  Printf.printf "  worst-case value: %.3f -> %.3f ns (paper: 2.23 -> 2.19)\n" b t

let mc_paths (setup : Experiment.setup) =
  let period = List.assoc "high" setup.Experiment.periods in
  let base = Experiment.baseline setup ~period in
  List.filter_map
    (fun (label, depth) ->
      Option.map (fun p -> (label, p)) (Experiment.find_path_of_depth base ~depth))
    [ ("short", 3); ("medium", 18); ("long", 57) ]

let fig15_corners (setup : Experiment.setup) =
  Report.heading "Fig 15 — path Monte Carlo across corners (N=200)";
  let cfg = Path_mc.default_config in
  List.iter
    (fun (label, path) ->
      Report.sub_heading (Printf.sprintf "%s path (%d cells)" label (Path.depth path));
      let sweep = Path_mc.corner_sweep cfg ~seed:(setup.Experiment.seed + 17) path in
      let typical =
        List.assoc Corner.typical
          (List.map (fun (c, r) -> (c, r)) sweep)
      in
      let rows =
        List.map
          (fun ((corner : Corner.t), (r : Path_mc.result)) ->
            [
              Corner.name corner;
              Printf.sprintf "%.3f" r.Path_mc.mean;
              Printf.sprintf "%.4f" r.Path_mc.sigma;
              Printf.sprintf "%.3f" (r.Path_mc.mean /. typical.Path_mc.mean);
              Printf.sprintf "%.3f" (r.Path_mc.sigma /. Float.max 1e-12 typical.Path_mc.sigma);
            ])
          sweep
      in
      Report.table
        ~header:[ "corner"; "mean (ns)"; "sigma (ns)"; "mean/typ"; "sigma/typ" ]
        ~rows)
    (mc_paths setup);
  print_endline
    "  Mean and sigma scale by the same factor across corners, so tuning transfers to\n\
    \  other corners (paper Section VII-C)."

let fig16_local_share (setup : Experiment.setup) =
  Report.heading "Fig 16 — local vs global+local variation share (N=200)";
  let cfg = Path_mc.default_config in
  let paper_share = [ ("short", 0.65); ("medium", 0.37); ("long", 0.06) ] in
  let rows =
    List.map
      (fun (label, path) ->
        let share = Path_mc.local_share cfg ~seed:(setup.Experiment.seed + 23) path in
        [
          label;
          string_of_int (Path.depth path);
          Report.pct share;
          Report.pct (List.assoc label paper_share);
        ])
      (mc_paths setup)
  in
  Report.table
    ~header:[ "path"; "depth"; "local variance share"; "paper" ]
    ~rows;
  print_endline "  Local variation dominates short paths and decays with depth."

let extension_power (setup : Experiment.setup) =
  Report.heading "Extension — power cost of robustness (high clock)";
  let module Power = Vartune_sta.Power in
  let period = List.assoc "high" setup.Experiment.periods in
  let ceiling = best_ceiling setup ~period in
  let base = Experiment.baseline setup ~period in
  let tuned = Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling) in
  let row label (run : Experiment.run) =
    let r =
      Power.estimate run.Experiment.result.Synthesis.timing
        run.Experiment.result.Synthesis.netlist
    in
    [
      label;
      Printf.sprintf "%.3f" r.Power.switching_mw;
      Printf.sprintf "%.3f" r.Power.internal_mw;
      Printf.sprintf "%.3f" r.Power.leakage_mw;
      Printf.sprintf "%.3f" r.Power.total_mw;
    ]
  in
  Report.table
    ~header:[ "design"; "switching (mW)"; "internal (mW)"; "leakage (mW)"; "total (mW)" ]
    ~rows:[ row "baseline" base; row (Printf.sprintf "sigma ceiling %g" ceiling) tuned ];
  print_endline
    "  Robustness costs dynamic and leakage power along with area — the paper's\n\
    \  trade-off extends beyond the area axis it reports."

let extension_yield (setup : Experiment.setup) =
  Report.heading "Extension — parametric timing yield vs clock period";
  let module Yield = Vartune_stats.Yield in
  let period = List.assoc "high" setup.Experiment.periods in
  let ceiling = best_ceiling setup ~period in
  let base = Experiment.baseline setup ~period in
  let tuned = Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling) in
  let dists (run : Experiment.run) = List.map Convolve.of_path run.Experiment.paths in
  let base_dists = dists base and tuned_dists = dists tuned in
  let effective p = p -. 0.3 in
  let rows =
    List.map
      (fun f ->
        let p = Float.round (period *. f *. 100.0) /. 100.0 in
        [
          Printf.sprintf "%.2f" p;
          Report.pct (Yield.parametric_yield base_dists ~period:(effective p));
          Report.pct (Yield.parametric_yield tuned_dists ~period:(effective p));
        ])
      [ 0.98; 1.0; 1.02; 1.05; 1.1; 1.2 ]
  in
  Report.table ~header:[ "clock (ns)"; "baseline yield"; "tuned yield" ] ~rows;
  let p99 d = Yield.period_for_yield d ~target:0.99 ~lo:(period /. 2.0) ~hi:(period *. 2.0) in
  Printf.printf "  clock for 99%% parametric yield: baseline %.3f ns -> tuned %.3f ns\n"
    (p99 base_dists) (p99 tuned_dists);
  print_endline
    "  Lower sigma converts into yield at the same clock, or a faster clock at the\n\
    \  same yield — the paper's Section III motivation, quantified."

let extension_hold (setup : Experiment.setup) =
  Report.heading "Extension — hold checks under tuning";
  let module Timing = Vartune_sta.Timing in
  let period = List.assoc "high" setup.Experiment.periods in
  let ceiling = best_ceiling setup ~period in
  let base = Experiment.baseline setup ~period in
  let tuned = Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling) in
  let stats (run : Experiment.run) =
    let t = run.Experiment.result.Synthesis.timing in
    (List.length (Timing.hold_endpoints t), Timing.worst_hold_slack t)
  in
  let bn, bs = stats base and tn, ts = stats tuned in
  Report.table
    ~header:[ "design"; "hold checks"; "worst hold slack (ns)" ]
    ~rows:
      [
        [ "baseline"; string_of_int bn; Printf.sprintf "%+.4f" bs ];
        [ Printf.sprintf "sigma ceiling %g" ceiling; string_of_int tn; Printf.sprintf "%+.4f" ts ];
      ];
  print_endline
    "  Restriction windows forbid slow operating points only, so min-delay paths and\n\
    \  hold margins survive tuning (they typically improve as cells get faster)."

let futurework_layout (setup : Experiment.setup) =
  Report.heading
    "Future work — does the sigma reduction survive placement and clock tree synthesis?";
  let module Placement = Vartune_place.Placement in
  let module Cts = Vartune_place.Cts in
  let module Timing = Vartune_sta.Timing in
  let period = List.assoc "high" setup.Experiment.periods in
  let ceiling = best_ceiling setup ~period in
  let base = Experiment.baseline setup ~period in
  let tuned = Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling) in
  let analyse label (run : Experiment.run) =
    let nl = run.Experiment.result.Synthesis.netlist in
    let placement = Placement.place nl in
    let cfg =
      { (Timing.default_config ~clock_period:period) with
        Timing.wire_caps = Some (Placement.wire_caps placement nl) }
    in
    let placed_timing = Timing.run cfg nl in
    let paths = Path.worst_per_endpoint placed_timing nl in
    let post = (Design_sigma.of_paths paths).Design_sigma.dist.Dist.sigma in
    let cts = Cts.synthesize placement nl ~library:setup.Experiment.statlib in
    let w, h = Placement.die placement in
    ( label,
      design_sigma_of run,
      post,
      Placement.total_wirelength placement nl,
      w *. h,
      cts )
  in
  let b = analyse "baseline" base in
  let t = analyse (Printf.sprintf "sigma ceiling %g" ceiling) tuned in
  let row (label, pre, post, wl, area, (cts : Cts.result)) =
    [
      label;
      Printf.sprintf "%.4f" pre;
      Printf.sprintf "%.4f" post;
      Printf.sprintf "%.0f" wl;
      Printf.sprintf "%.0f" area;
      Printf.sprintf "%d" cts.Cts.buffers;
      Printf.sprintf "%.4f" cts.Cts.skew;
    ]
  in
  Report.table
    ~header:
      [ "design"; "sigma pre-layout"; "sigma placed"; "wirelength (um)"; "die (um^2)";
        "CTS buffers"; "clock skew (ns)" ]
    ~rows:[ row b; row t ];
  let reduction pre post = if pre > 0.0 then (pre -. post) /. pre else 0.0 in
  let _, bpre, bpost, _, _, _ = b and _, tpre, tpost, _, _, _ = t in
  let pre_red = reduction bpre tpre and post_red = reduction bpost tpost in
  Printf.printf
    "  sigma reduction: %s pre-layout -> %s after placement-aware wire loads.\n"
    (Report.pct pre_red) (Report.pct post_red);
  if post_red > 0.0 then
    print_endline
      "  Within this model the answer to the paper's open question is yes: the tuned\n\
      \  design keeps an advantage once HPWL wire loads replace the fanout model."
  else
    print_endline
      "  Within this model the advantage does NOT survive layout at this operating\n\
      \  point — wire loads push cells outside their tuned windows, which is exactly\n\
      \  why the paper flags post-layout validation as future work."

let ablation_guard_band (setup : Experiment.setup) =
  Report.heading "Ablation — guard band implied by path sigma (Section III motivation)";
  let period = List.assoc "high" setup.Experiment.periods in
  let ceiling = best_ceiling setup ~period in
  let base = Experiment.baseline setup ~period in
  let tuned = Experiment.tuned setup ~period ~tuning:(ceiling_method ceiling) in
  (* the guard band must cover 3x the sigma of the most variable path *)
  let implied_guard (run : Experiment.run) =
    List.fold_left
      (fun acc p -> Float.max acc (3.0 *. (Convolve.of_path p).Dist.sigma))
      0.0 run.Experiment.paths
  in
  let gb = implied_guard base and gt = implied_guard tuned in
  Report.table
    ~header:[ "design"; "worst 3-sigma (ns)"; "usable clock at equal yield (ns)" ]
    ~rows:
      [
        [ "baseline"; Printf.sprintf "%.4f" gb; Printf.sprintf "%.3f" (period +. gb) ];
        [ Printf.sprintf "sigma ceiling %g" ceiling;
          Printf.sprintf "%.4f" gt;
          Printf.sprintf "%.3f" (period +. gt) ];
      ];
  Printf.printf
    "  Tuning shrinks the local-variation guard band by %s — 'a lower clock\n\
    \  uncertainty means the desired clock period can be decreased' (Section III).\n"
    (Report.pct (if gb > 0.0 then (gb -. gt) /. gb else 0.0))

let ablation_mapping_style (setup : Experiment.setup) =
  Report.heading "Ablation — technology-mapping style (Area vs Delay covering)";
  let module Mapper = Vartune_synth.Mapper in
  let period = List.assoc "medium" setup.Experiment.periods in
  let cons = Constraints.make ~clock_period:period () in
  let row style label =
    let result = Synthesis.run ~style cons setup.Experiment.statlib setup.Experiment.design in
    let paths = Path.worst_per_endpoint result.Synthesis.timing result.Synthesis.netlist in
    let ds = Design_sigma.of_paths paths in
    [
      label;
      Printf.sprintf "%d" result.Synthesis.instances;
      Printf.sprintf "%.0f" result.Synthesis.area;
      Printf.sprintf "%+.3f" result.Synthesis.worst_slack;
      Printf.sprintf "%.4f" ds.Design_sigma.dist.Dist.sigma;
    ]
  in
  Report.table
    ~header:[ "initial covering"; "cells"; "area (um^2)"; "worst slack (ns)"; "design sigma (ns)" ]
    ~rows:
      [
        row Mapper.Area "Area (complex cells, FA fusion)";
        row Mapper.Delay "Delay (NAND/NOR + INV networks)";
      ];
  print_endline
    "  Area-style covering is the default; the sizer decomposes complex cells on\n\
    \  critical paths, converging toward the Delay-style mix only where timing needs it."

let ablation_rho (setup : Experiment.setup) =
  Report.heading "Ablation — correlation assumption in path convolution (eqs 8-10)";
  let period = List.assoc "high" setup.Experiment.periods in
  let base = Experiment.baseline setup ~period in
  let rows =
    List.map
      (fun rho ->
        let dists = List.map (Convolve.of_path_rho ~rho) base.Experiment.paths in
        let d = Design_sigma.of_dists dists in
        [ Printf.sprintf "%.1f" rho; Printf.sprintf "%.4f" d.Dist.sigma ])
      [ 0.0; 0.1; 0.3 ]
  in
  Report.table ~header:[ "rho"; "design sigma (ns)" ] ~rows;
  print_endline
    "  rho=0 (paper's assumption) is the optimistic end; modest correlation inflates sigma."

let ablation_variability_metric (setup : Experiment.setup) =
  Report.heading "Ablation — coefficient-of-variation ceiling (the metric Section III rejects)";
  let period = List.assoc "high" setup.Experiment.periods in
  let base = Experiment.baseline setup ~period in
  (* restriction table from a variability (sigma/mean) ceiling *)
  let variability_table ceiling =
    let table = Restrict.empty_table () in
    List.iter
      (fun (cell : Cell.t) ->
        List.iter
          (fun (p : Pin.t) ->
            let sigmas = List.filter_map Arc.worst_sigma p.Pin.arcs in
            let means = List.map Arc.worst_delay p.Pin.arcs in
            match (sigmas, means) with
            | [], _ | _, [] -> ()
            | _ ->
              let sigma = Slope.max_equivalent_by_index sigmas in
              let mean = Slope.max_equivalent_by_index means in
              let cov = Lut.map2 (fun s m -> if m > 1e-12 then s /. m else 0.0) sigma mean in
              let mask = Binary_lut.of_ceiling cov ~ceiling in
              let status =
                match Rectangle.naive_largest mask with
                | None -> Restrict.Unusable
                | Some rect ->
                  let slews = Lut.slews cov and loads = Lut.loads cov in
                  Restrict.Window
                    {
                      Restrict.slew_min = slews.(rect.Rectangle.row_lo);
                      slew_max = slews.(rect.Rectangle.row_hi);
                      load_min = loads.(rect.Rectangle.col_lo);
                      load_max = loads.(rect.Rectangle.col_hi);
                    }
              in
              Restrict.set table ~cell:cell.Cell.name ~pin:p.Pin.name status)
          (Cell.output_pins cell))
      (Library.cells setup.Experiment.statlib);
    table
  in
  let rows =
    List.map
      (fun ceiling ->
        let cons =
          Constraints.make ~clock_period:period ~restrictions:(variability_table ceiling) ()
        in
        let result = Synthesis.run cons setup.Experiment.statlib setup.Experiment.design in
        let paths = Path.worst_per_endpoint result.Synthesis.timing result.Synthesis.netlist in
        let ds = Design_sigma.of_paths paths in
        let reduction =
          (design_sigma_of base -. ds.Design_sigma.dist.Dist.sigma) /. design_sigma_of base
        in
        let area_delta =
          (result.Synthesis.area -. base.Experiment.result.Synthesis.area)
          /. base.Experiment.result.Synthesis.area
        in
        [
          Printf.sprintf "%g" ceiling;
          Report.pct reduction;
          Report.pct area_delta;
          (if result.Synthesis.feasible then "yes" else "NO");
        ])
      [ 0.25; 0.2; 0.15 ]
  in
  Report.table
    ~header:[ "variability ceiling"; "sigma decrease"; "area increase"; "feasible" ]
    ~rows;
  print_endline
    "  A variability bound keeps slow-but-proportional regions and cuts fast ones —\n\
    \  weaker sigma reduction per area than the sigma ceiling, as Section III predicts."

let run_all setup =
  fig1_metric ();
  fig2_statlib setup;
  fig3_bilinear ();
  fig4_inv_surfaces setup;
  fig5_drive6 setup;
  fig6_rectangle setup;
  fig7_all_luts setup;
  table1_periods setup;
  table2_parameters ();
  fig8_period_area setup;
  let winners = fig10_method_sweep setup in
  table3_winners winners;
  fig9_cell_use setup;
  fig11_tradeoff setup;
  fig12_depths setup;
  fig13_sigma_depth setup;
  fig14_mean3sigma setup;
  fig15_corners setup;
  fig16_local_share setup;
  extension_power setup;
  extension_yield setup;
  extension_hold setup;
  futurework_layout setup;
  ablation_guard_band setup;
  ablation_mapping_style setup;
  ablation_rho setup;
  ablation_variability_metric setup
