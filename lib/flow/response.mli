(** The total response to a {!Request.t}.

    Every execution path — success, typed pipeline failure, internal
    error — lands here: [code] carries the existing sysexits
    classification (0 on success, 65/70/74/75 per
    {!Experiment.failure}), [output] the exact bytes the equivalent CLI
    subcommand prints to stdout, [recipes] the content-addressed store
    recipe ids the computation was keyed by, and [artifacts] any
    deliverables the caller may want to land on disk (e.g. the
    [verilog] netlist).  [dedup] is set by the serve layer when the
    response was produced by another in-flight identical request.

    Wire format mirrors {!Request}: one line of JSON with the same
    ["vartune"] version field and bump policy. *)

type t = {
  id : int option;  (** echo of the request's correlation id *)
  kind : string;  (** {!Request.kind_string} of the request *)
  code : int;  (** 0 or a sysexits code (65/70/74/75) *)
  elapsed_s : float;  (** wall time spent executing the request *)
  dedup : bool;  (** served from a coalesced in-flight computation *)
  recipes : string list;  (** store recipe ids underlying the result *)
  meta : (string * string) list;  (** small facts, e.g. [("cells","304")] *)
  output : string;  (** exact CLI stdout bytes of the computation *)
  artifacts : (string * string) list;  (** name -> contents deliverables *)
  error : string option;  (** operator-facing message when [code <> 0] *)
  retry_after_s : float option;
      (** on a code-75 overload shed: a deterministic hint of how long
          the client should back off before retrying; omitted from the
          wire line when absent, so pre-existing responses are
          byte-identical *)
}

val ok :
  ?id:int ->
  ?recipes:string list ->
  ?meta:(string * string) list ->
  ?artifacts:(string * string) list ->
  kind:string ->
  elapsed_s:float ->
  string ->
  t
(** [ok ~kind ~elapsed_s output] — a successful response. *)

val fail :
  ?id:int ->
  ?retry_after_s:float ->
  kind:string ->
  elapsed_s:float ->
  code:int ->
  string ->
  t
(** [fail ~kind ~elapsed_s ~code msg] — a failed response; [output] is
    empty.  [retry_after_s] accompanies overload sheds (code 75). *)

val to_line : t -> string
(** Canonical one-line JSON encoding, no trailing newline. *)

val of_line : string -> (t, string) result
(** Inverse of {!to_line} (structurally equal, floats bit-exact). *)
