module Journal = Vartune_journal.Journal
module Store = Vartune_store.Store
module Tuning_method = Vartune_tuning.Tuning_method
module Statistical = Vartune_statlib.Statistical
module Characterize = Vartune_charlib.Characterize
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Printer = Vartune_liberty.Printer
module Synthesis = Vartune_synth.Synthesis
module Path = Vartune_sta.Path
module Design_sigma = Vartune_stats.Design_sigma
module Path_mc = Vartune_monte.Path_mc

let src = Logs.Src.create "vartune.run" ~doc:"journaled run supervision"

module Log = (val Logs.src_log src : Logs.LOG)

type kind =
  | Statlib
  | Experiment of {
      mc_samples : int;
      period : float option;
      tuning : Tuning_method.t;
    }

type params = { seed : int; samples : int; kind : kind; output : string option }

let journal_path run_dir = Filename.concat run_dir "journal.vtj"
let state_dir run_dir = Filename.concat run_dir "state"

let run_line label (run : Experiment.run) =
  let r = run.Experiment.result in
  Printf.sprintf "%-24s feasible=%b slack=%+.3f area=%.0f um^2 cells=%d sigma=%.4f ns"
    label r.Synthesis.feasible r.Synthesis.worst_slack r.Synthesis.area
    r.Synthesis.instances
    run.Experiment.design_sigma.Design_sigma.dist.Vartune_stats.Dist.sigma

(* The pipeline body: identical stage order, stage parameters and
   output lines whether plain, journaled, interrupted or resumed — the
   bit-identity contract is "same [params], same bytes". *)
let run_pipeline ?store ?ckpt ~emit params =
  let check_stop () = Option.iter Journal.check_stop ckpt in
  match params.kind with
  | Statlib ->
    Statistical.build ?store ?ckpt Characterize.default_config ~mismatch:Mismatch.default
      ~seed:params.seed ~n:params.samples ()
  | Experiment { mc_samples; period; tuning } ->
    let setup =
      Experiment.prepare ~samples:params.samples ~seed:params.seed ?store ?ckpt ()
    in
    emit (Printf.sprintf "minimum clock period: %.2f ns" setup.Experiment.min_period);
    let period = Option.value period ~default:setup.Experiment.min_period in
    check_stop ();
    let base = Experiment.baseline setup ~period in
    emit (run_line "baseline" base);
    check_stop ();
    let parameters = [ 0.01; 0.02; 0.05 ] in
    let points = Experiment.sweep setup ~period ~tuning ~parameters in
    emit (Printf.sprintf "sweep (%s):" (Tuning_method.to_string tuning));
    List.iter
      (fun (p : Experiment.sweep_point) ->
        emit
          (Printf.sprintf "  parameter %.4g  sigma %s  area %s" p.Experiment.parameter
             (Report.pct p.Experiment.reduction)
             (Report.pct p.Experiment.area_delta)))
      points;
    Option.iter
      (fun c ->
        Journal.record c
          (Journal.Sweep_done
             {
               tuning = Tuning_method.to_string tuning;
               period;
               points = List.length points;
             }))
      ckpt;
    check_stop ();
    let mc_path =
      let paths = base.Experiment.paths in
      List.nth paths (List.length paths / 2)
    in
    let mc =
      Path_mc.simulate
        { Path_mc.default_config with n = mc_samples }
        ~seed:params.seed mc_path
    in
    emit
      (Printf.sprintf "path MC (depth %d, N=%d): mean %.4f ns  sigma %.4f ns"
         (Path.depth mc_path) mc_samples mc.Path_mc.mean mc.Path_mc.sigma);
    setup.Experiment.statlib

(* ------------------------------------------------------------------ *)
(* Journaled runs                                                      *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Only flips an atomic — async-signal safe.  The pipeline notices at
   the next block-round or stage boundary, checkpoints and raises
   [Journal.Interrupted]; a second signal during the wind-down changes
   nothing (the stop is already requested), so the run always exits
   through the sealing path rather than mid-write. *)
let install_signal_handlers ctx =
  List.iter
    (fun signal ->
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> Journal.request_stop ctx))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let kind_string = function Statlib -> "statlib" | Experiment _ -> "experiment"

let run_started params =
  let mc_samples, period, tuning =
    match params.kind with
    | Statlib -> (0, None, "")
    | Experiment { mc_samples; period; tuning } ->
      (mc_samples, period, Tuning_method.to_string tuning)
  in
  Journal.Run_started
    {
      seed = params.seed;
      samples = params.samples;
      kind = kind_string params.kind;
      mc_samples;
      period;
      tuning;
      output = params.output;
    }

let params_of_steps steps =
  let started =
    List.find_map
      (function
        | Journal.Run_started { seed; samples; kind; mc_samples; period; tuning; output }
          -> Some (seed, samples, kind, mc_samples, period, tuning, output)
        | _ -> None)
      steps
  in
  match started with
  | None -> raise (Journal.Corrupt "journal has no run-started record")
  | Some (seed, samples, kind_name, mc_samples, period, tuning_name, output) ->
    let kind =
      match kind_name with
      | "statlib" -> Statlib
      | "experiment" -> (
        match Tuning_method.of_string tuning_name with
        | Some tuning -> Experiment { mc_samples; period; tuning }
        | None ->
          raise
            (Journal.Corrupt
               (Printf.sprintf "journal records unknown tuning method %S" tuning_name)))
      | other ->
        raise (Journal.Corrupt (Printf.sprintf "journal records unknown run kind %S" other))
    in
    { seed; samples; kind; output }

(* Runs the pipeline under an open journal context, then lands the
   run-directory artifacts and seals the journal.  Output lines go to
   stdout as they happen and to [report.txt] on completion; the report
   deliberately contains no absolute paths, so reports of an
   interrupted-and-resumed run and an uninterrupted reference diff
   clean. *)
let supervise ~run_dir ?store ctx params =
  let report = Buffer.create 512 in
  let emit line =
    print_string line;
    print_newline ();
    Buffer.add_string report line;
    Buffer.add_char report '\n'
  in
  match run_pipeline ?store ~ckpt:ctx ~emit params with
  | statlib ->
    Printer.write_file (Filename.concat run_dir "statlib.lib") statlib;
    emit (Printf.sprintf "wrote statlib.lib (%d cells)" (Library.size statlib));
    Option.iter
      (fun path ->
        Printer.write_file path statlib;
        emit (Printf.sprintf "wrote %s (%d cells)" path (Library.size statlib)))
      params.output;
    let oc = open_out (Filename.concat run_dir "report.txt") in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Buffer.contents report));
    Journal.seal ctx.Journal.journal ~reason:"completed";
    Log.info (fun m -> m "run completed; artifacts in %s" run_dir)
  | exception Journal.Interrupted msg ->
    Journal.seal ctx.Journal.journal ~reason:"interrupted";
    Log.info (fun m -> m "run interrupted; resume with: vartune resume %s" run_dir);
    raise (Journal.Interrupted msg)
  | exception exn ->
    Journal.seal ctx.Journal.journal ~reason:("failed: " ^ Printexc.to_string exn);
    raise exn

let execute ~run_dir ?store params =
  mkdir_p run_dir;
  let journal = Journal.create (journal_path run_dir) in
  let state = Store.open_dir (state_dir run_dir) in
  let ctx = Journal.make_ctx ~journal ~state () in
  install_signal_handlers ctx;
  Journal.record ctx (run_started params);
  supervise ~run_dir ?store ctx params

let resume ~run_dir ?store () =
  let path = journal_path run_dir in
  if not (Sys.file_exists path) then
    raise (Journal.Corrupt (Printf.sprintf "no journal at %s" path));
  let steps = Journal.replay path in
  let params = params_of_steps steps in
  let journal = Journal.open_append path in
  let state = Store.open_dir (state_dir run_dir) in
  let ctx = Journal.make_ctx ~journal ~state ~replayed:steps () in
  install_signal_handlers ctx;
  Journal.record ctx (Journal.Resumed { replayed = List.length steps });
  Log.info (fun m ->
      m "resuming %s run from %d journaled steps" (kind_string params.kind)
        (List.length steps));
  supervise ~run_dir ?store ctx params
