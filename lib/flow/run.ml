module Journal = Vartune_journal.Journal
module Store = Vartune_store.Store
module Tuning_method = Vartune_tuning.Tuning_method
module Statistical = Vartune_statlib.Statistical
module Characterize = Vartune_charlib.Characterize
module Mismatch = Vartune_process.Mismatch
module Library = Vartune_liberty.Library
module Printer = Vartune_liberty.Printer
module Parser = Vartune_liberty.Parser
module Restrict = Vartune_tuning.Restrict
module Synthesis = Vartune_synth.Synthesis
module Timing_report = Vartune_sta.Timing_report
module Power = Vartune_sta.Power
module Verilog = Vartune_netlist.Verilog
module Path = Vartune_sta.Path
module Design_sigma = Vartune_stats.Design_sigma
module Path_mc = Vartune_monte.Path_mc

let src = Logs.Src.create "vartune.run" ~doc:"journaled run supervision"

module Log = (val Logs.src_log src : Logs.LOG)

type kind =
  | Statlib
  | Experiment of {
      mc_samples : int;
      period : float option;
      tuning : Tuning_method.t;
    }

type params = { seed : int; samples : int; kind : kind; output : string option }

let journal_path run_dir = Filename.concat run_dir "journal.vtj"
let state_dir run_dir = Filename.concat run_dir "state"

(* The parameter ladder of the experiment pipeline's sweep stage — the
   only sweep shape the fixed-field journal Run_started record can
   describe, so only requests using it are journal-able. *)
let std_parameters = [ 0.01; 0.02; 0.05 ]

let run_line label (run : Experiment.run) =
  let r = run.Experiment.result in
  Printf.sprintf "%-24s feasible=%b slack=%+.3f area=%.0f um^2 cells=%d sigma=%.4f ns"
    label r.Synthesis.feasible r.Synthesis.worst_slack r.Synthesis.area
    r.Synthesis.instances
    run.Experiment.design_sigma.Design_sigma.dist.Vartune_stats.Dist.sigma

(* ------------------------------------------------------------------ *)
(* Request <-> legacy params                                           *)
(* ------------------------------------------------------------------ *)

let request_of_params params =
  let base = { Request.seed = params.seed; samples = params.samples } in
  match params.kind with
  | Statlib -> Request.Statlib base
  | Experiment { mc_samples; period; tuning } ->
    Request.Sweep
      { base; tuning; period; parameters = std_parameters;
        mc_samples = Some mc_samples }

(* [None] when the request is not journal-able: the journal's fixed
   Run_started record can only describe statlib builds and the standard
   experiment pipeline. *)
let params_of_request ?output req =
  match req with
  | Request.Statlib { Request.seed; samples } ->
    Some { seed; samples; kind = Statlib; output }
  | Request.Sweep { base = { Request.seed; samples }; tuning; period; parameters;
                    mc_samples = Some mc_samples }
    when parameters = std_parameters ->
    Some { seed; samples; kind = Experiment { mc_samples; period; tuning }; output }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                  *)
(* ------------------------------------------------------------------ *)

type evaled = {
  out : string;
  library : Library.t option;
  artifacts : (string * string) list;
  recipes : string list;
  meta : (string * string) list;
}

let statlib_recipe { Request.seed; samples } =
  Store.Key.id
    (Statistical.store_key Characterize.default_config ~mismatch:Mismatch.default ~seed
       ~n:samples ())

let build_statlib ?store ?ckpt { Request.seed; samples } =
  Statistical.build ?store ?ckpt Characterize.default_config ~mismatch:Mismatch.default
    ~seed ~n:samples ()

(* The pipeline body behind every request kind: identical stage order,
   stage parameters and output lines whether plain, served, journaled,
   interrupted or resumed — the bit-identity contract is "same request,
   same bytes".  Lines go through [emit] (without trailing newline) as
   they happen and accumulate — with trailing newlines — into
   [evaled.out], which is exactly what the equivalent CLI subcommand
   prints to stdout. *)
let eval ?store ?ckpt ?(emit = ignore) req =
  let buf = Buffer.create 512 in
  let line l =
    emit l;
    Buffer.add_string buf l;
    Buffer.add_char buf '\n'
  in
  let raw s = Buffer.add_string buf s in
  let check_stop () = Option.iter Journal.check_stop ckpt in
  let done_ ?library ?(artifacts = []) ?(recipes = []) ?(meta = []) () =
    { out = Buffer.contents buf; library; artifacts; recipes; meta }
  in
  let cells lib = [ ("cells", string_of_int (Library.size lib)) ] in
  match req with
  | Request.Report _ ->
    (* needs Run_report, which sits above this module *)
    invalid_arg "Run.eval: report requests are evaluated by Run_request.exec"
  | Request.Parse { file } ->
    let lib = Parser.parse_file file in
    line
      (Printf.sprintf "%s: %d cells, corner %s, statistical=%b, total area %.0f um^2"
         (Library.name lib) (Library.size lib) (Library.corner lib)
         (Statistical.is_statistical lib) (Library.total_area lib));
    done_ ~library:lib ~meta:(cells lib) ()
  | Request.Characterize ->
    let lib = Characterize.nominal ?store Characterize.default_config in
    raw (Printer.to_string lib);
    done_ ~library:lib ~meta:(cells lib) ()
  | Request.Statlib base ->
    let lib = build_statlib ?store ?ckpt base in
    raw (Printer.to_string lib);
    done_ ~library:lib ~recipes:[ statlib_recipe base ] ~meta:(cells lib) ()
  | Request.Tune { base; tuning } ->
    let lib = build_statlib ?store ?ckpt base in
    let table = Tuning_method.restrictions tuning lib in
    line (Printf.sprintf "method: %s" (Tuning_method.to_string tuning));
    line
      (Printf.sprintf "LUT-entry removal across the library: %s"
         (Report.pct (Restrict.restriction_fraction table lib)));
    List.iter
      (fun (cell, pin, status) ->
        match status with
        | Restrict.Unrestricted -> ()
        | Restrict.Unusable -> line (Printf.sprintf "%-10s %-3s UNUSABLE" cell pin)
        | Restrict.Window w ->
          line
            (Printf.sprintf "%-10s %-3s slew [%.4g, %.4g] ns  load [%.5g, %.5g] pF" cell
               pin w.Restrict.slew_min w.Restrict.slew_max w.Restrict.load_min
               w.Restrict.load_max))
      (Restrict.restricted_pins table);
    done_ ~recipes:[ statlib_recipe base ] ~meta:(cells lib) ()
  | Request.Min_period _ ->
    let setup = Experiment.prepare_request ?store ?ckpt req in
    line (Printf.sprintf "minimum clock period: %.2f ns" setup.Experiment.min_period);
    List.iter
      (fun (label, p) -> line (Printf.sprintf "  %-8s %.2f ns" label p))
      setup.Experiment.periods;
    done_ ~recipes:(Experiment.recipe_ids setup) ()
  | Request.Design_sigma { period; tuning; timing_report; power; verilog; _ } ->
    let setup = Experiment.prepare_request ?store ?ckpt req in
    let period = Option.value period ~default:setup.Experiment.min_period in
    let base_run = Experiment.baseline setup ~period in
    line (run_line "baseline" base_run);
    let final =
      match tuning with
      | None -> base_run
      | Some tuning ->
        let tuned = Experiment.tuned setup ~period ~tuning in
        line (run_line (Tuning_method.to_string tuning) tuned);
        line
          (Printf.sprintf "sigma decrease %s at area increase %s"
             (Report.pct (Experiment.sigma_reduction ~baseline:base_run ~tuned))
             (Report.pct (Experiment.area_increase ~baseline:base_run ~tuned)));
        tuned
    in
    let result = final.Experiment.result in
    if timing_report then
      raw (Timing_report.report result.Synthesis.timing result.Synthesis.netlist);
    if power then
      raw
        (Format.asprintf "%a@." Power.pp
           (Power.estimate result.Synthesis.timing result.Synthesis.netlist));
    let artifacts =
      if verilog then [ ("verilog", Verilog.to_string result.Synthesis.netlist) ] else []
    in
    done_ ~artifacts ~recipes:(Experiment.recipe_ids setup) ()
  | Request.Sweep { base; tuning; period; parameters; mc_samples } ->
    let setup = Experiment.prepare_request ?store ?ckpt req in
    line (Printf.sprintf "minimum clock period: %.2f ns" setup.Experiment.min_period);
    let period = Option.value period ~default:setup.Experiment.min_period in
    check_stop ();
    let base_run = Experiment.baseline setup ~period in
    line (run_line "baseline" base_run);
    check_stop ();
    let points = Experiment.sweep setup ~period ~tuning ~parameters in
    line (Printf.sprintf "sweep (%s):" (Tuning_method.to_string tuning));
    List.iter
      (fun (p : Experiment.sweep_point) ->
        line
          (Printf.sprintf "  parameter %.4g  sigma %s  area %s" p.Experiment.parameter
             (Report.pct p.Experiment.reduction)
             (Report.pct p.Experiment.area_delta)))
      points;
    Option.iter
      (fun c ->
        Journal.record c
          (Journal.Sweep_done
             {
               tuning = Tuning_method.to_string tuning;
               period;
               points = List.length points;
             }))
      ckpt;
    check_stop ();
    Option.iter
      (fun mc_samples ->
        let mc_path =
          let paths = base_run.Experiment.paths in
          List.nth paths (List.length paths / 2)
        in
        let mc =
          Path_mc.simulate
            { Path_mc.default_config with n = mc_samples }
            ~seed:base.Request.seed mc_path
        in
        line
          (Printf.sprintf "path MC (depth %d, N=%d): mean %.4f ns  sigma %.4f ns"
             (Path.depth mc_path) mc_samples mc.Path_mc.mean mc.Path_mc.sigma))
      mc_samples;
    done_ ~library:setup.Experiment.statlib ~recipes:(Experiment.recipe_ids setup) ()

(* Legacy entry point, kept as a shim over [eval] for this PR. *)
let run_pipeline ?store ?ckpt ~emit params =
  match (eval ?store ?ckpt ~emit (request_of_params params)).library with
  | Some lib -> lib
  | None -> assert false (* statlib and sweep requests always carry one *)

(* ------------------------------------------------------------------ *)
(* Journaled runs                                                      *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Only flips an atomic — async-signal safe.  The pipeline notices at
   the next block-round or stage boundary, checkpoints and raises
   [Journal.Interrupted]; a second signal during the wind-down changes
   nothing (the stop is already requested), so the run always exits
   through the sealing path rather than mid-write. *)
let install_signal_handlers ctx =
  List.iter
    (fun signal ->
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> Journal.request_stop ctx))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let kind_string = function Statlib -> "statlib" | Experiment _ -> "experiment"

let run_started params =
  let mc_samples, period, tuning =
    match params.kind with
    | Statlib -> (0, None, "")
    | Experiment { mc_samples; period; tuning } ->
      (mc_samples, period, Tuning_method.to_string tuning)
  in
  Journal.Run_started
    {
      seed = params.seed;
      samples = params.samples;
      kind = kind_string params.kind;
      mc_samples;
      period;
      tuning;
      output = params.output;
    }

let params_of_steps steps =
  let started =
    List.find_map
      (function
        | Journal.Run_started { seed; samples; kind; mc_samples; period; tuning; output }
          -> Some (seed, samples, kind, mc_samples, period, tuning, output)
        | _ -> None)
      steps
  in
  match started with
  | None -> raise (Journal.Corrupt "journal has no run-started record")
  | Some (seed, samples, kind_name, mc_samples, period, tuning_name, output) ->
    let kind =
      match kind_name with
      | "statlib" -> Statlib
      | "experiment" -> (
        match Tuning_method.of_string tuning_name with
        | Some tuning -> Experiment { mc_samples; period; tuning }
        | None ->
          raise
            (Journal.Corrupt
               (Printf.sprintf "journal records unknown tuning method %S" tuning_name)))
      | other ->
        raise (Journal.Corrupt (Printf.sprintf "journal records unknown run kind %S" other))
    in
    { seed; samples; kind; output }

(* Runs the pipeline under an open journal context, then lands the
   run-directory artifacts and seals the journal.  Output lines go to
   stdout as they happen and to [report.txt] on completion; the report
   deliberately contains no absolute paths, so reports of an
   interrupted-and-resumed run and an uninterrupted reference diff
   clean. *)
let supervise ~run_dir ?store ctx params =
  let report = Buffer.create 512 in
  let emit line =
    print_string line;
    print_newline ();
    Buffer.add_string report line;
    Buffer.add_char report '\n'
  in
  match eval ?store ~ckpt:ctx ~emit (request_of_params params) with
  | { library = Some statlib; _ } ->
    Printer.write_file (Filename.concat run_dir "statlib.lib") statlib;
    emit (Printf.sprintf "wrote statlib.lib (%d cells)" (Library.size statlib));
    Option.iter
      (fun path ->
        Printer.write_file path statlib;
        emit (Printf.sprintf "wrote %s (%d cells)" path (Library.size statlib)))
      params.output;
    let oc = open_out (Filename.concat run_dir "report.txt") in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Buffer.contents report));
    Journal.seal ctx.Journal.journal ~reason:"completed";
    Log.info (fun m -> m "run completed; artifacts in %s" run_dir)
  | { library = None; _ } -> assert false (* journal-able kinds carry a library *)
  | exception Journal.Interrupted msg ->
    Journal.seal ctx.Journal.journal ~reason:"interrupted";
    Log.info (fun m -> m "run interrupted; resume with: vartune resume %s" run_dir);
    raise (Journal.Interrupted msg)
  | exception exn ->
    Journal.seal ctx.Journal.journal ~reason:("failed: " ^ Printexc.to_string exn);
    raise exn

let execute ~run_dir ?store params =
  mkdir_p run_dir;
  let journal = Journal.create (journal_path run_dir) in
  let state = Store.open_dir (state_dir run_dir) in
  let ctx = Journal.make_ctx ~journal ~state () in
  install_signal_handlers ctx;
  Journal.record ctx (run_started params);
  supervise ~run_dir ?store ctx params

let execute_request ~run_dir ?store ?output req =
  match params_of_request ?output req with
  | Some params -> execute ~run_dir ?store params
  | None ->
    invalid_arg
      (Printf.sprintf
         "Run.execute_request: %S requests are not journal-able (only statlib and the \
          standard experiment sweep are)"
         (Request.kind_string req))

let resume ~run_dir ?store () =
  let path = journal_path run_dir in
  if not (Sys.file_exists path) then
    raise (Journal.Corrupt (Printf.sprintf "no journal at %s" path));
  let steps = Journal.replay path in
  let params = params_of_steps steps in
  let journal = Journal.open_append path in
  let state = Store.open_dir (state_dir run_dir) in
  let ctx = Journal.make_ctx ~journal ~state ~replayed:steps () in
  install_signal_handlers ctx;
  Journal.record ctx (Journal.Resumed { replayed = List.length steps });
  Log.info (fun m ->
      m "resuming %s run from %d journaled steps" (kind_string params.kind)
        (List.length steps));
  supervise ~run_dir ?store ctx params
