(** Request evaluation and journaled run supervision.

    {!eval} is the pipeline body behind every {!Request.t}: it produces
    the exact bytes the equivalent CLI subcommand prints — plus the
    library, deliverable artifacts, store recipe ids and small metadata
    — whether the request arrives from a subcommand shim, the serve
    daemon, or a journaled run.  {!Run_request.exec} wraps it in the
    total {!Response.t} envelope.

    A {e journaled run} lives in a run directory:

    {v
    <run>/journal.vtj   append-only step journal (Vartune_journal)
    <run>/state/        private artifact store for checkpoints
    <run>/statlib.lib   the statistical library, written on completion
    <run>/report.txt    everything the run printed, written on completion
    v}

    [execute_request] starts one, installing SIGINT/SIGTERM handlers
    that request a cooperative stop: the pipeline finishes the current
    round, checkpoints its partial state to [state/], journals the
    checkpoint and raises {!Vartune_journal.Journal.Interrupted}, which
    the CLI maps to exit 75 (EX_TEMPFAIL).  [resume] replays the
    journal, reconstructs the run's request from the [Run_started]
    step, re-validates every journaled artifact against the store by
    recipe key (a corrupt entry is evicted and recomputed, never
    trusted) and continues.  The resumed output — stdout, [report.txt],
    [statlib.lib] — is bit-identical to an uninterrupted run at any
    [--jobs] and any checkpoint cadence. *)

type kind =
  | Statlib  (** build the statistical library and stop *)
  | Experiment of {
      mc_samples : int;
      period : float option;  (** [None]: the measured minimum *)
      tuning : Vartune_tuning.Tuning_method.t;
    }  (** the full experiment pipeline (the [experiment] subcommand) *)

type params = {
  seed : int;
  samples : int;
  kind : kind;
  output : string option;  (** [-o]: extra copy of the library *)
}

val std_parameters : float list
(** The experiment sweep's constraint-parameter ladder
    ([0.01; 0.02; 0.05]) — the only sweep shape the fixed-field journal
    record can describe, hence the only journal-able one. *)

val request_of_params : params -> Request.t
(** The {!Request.t} a legacy [params] record denotes: [Statlib] maps
    to {!Request.Statlib}, [Experiment] to a {!Request.Sweep} over
    {!std_parameters} with its Monte-Carlo stage. *)

val params_of_request : ?output:string -> Request.t -> params option
(** Inverse of {!request_of_params} on its image; [None] for request
    kinds (or sweep shapes) the journal cannot record. *)

val run_line : string -> Experiment.run -> string
(** One synthesis-result summary line, shared by [synth], [experiment]
    and journaled runs so their outputs stay diffable. *)

type evaled = {
  out : string;
      (** exact stdout bytes of the equivalent plain CLI subcommand *)
  library : Vartune_liberty.Library.t option;
      (** the built library, for [-o] delivery and run-dir artifacts *)
  artifacts : (string * string) list;  (** name -> contents (e.g. [verilog]) *)
  recipes : string list;  (** store recipe ids underlying the result *)
  meta : (string * string) list;  (** small facts, e.g. [("cells","304")] *)
}

val eval :
  ?store:Vartune_store.Store.t ->
  ?ckpt:Vartune_journal.Journal.ctx ->
  ?emit:(string -> unit) ->
  Request.t ->
  evaled
(** Evaluates one request: identical stage order, stage parameters and
    output bytes whether plain, served, journaled, interrupted or
    resumed.  Progress lines additionally go through [emit] (without
    trailing newline) as they happen.  With [ckpt] (a journaled run)
    every stage checkpoints and honours stop requests.  Raises
    [Invalid_argument] on {!Request.Report}, which is evaluated by
    {!Run_request.exec} (it needs the report layer above this module). *)

val execute_request :
  run_dir:string ->
  ?store:Vartune_store.Store.t ->
  ?output:string ->
  Request.t ->
  unit
(** Runs a journal-able request journaled under [run_dir] (created if
    missing); [output] is the [-o] extra library copy.  Raises
    [Journal.Interrupted] after a graceful, checkpointed stop — the
    journal is sealed ["interrupted"] and [vartune resume] continues
    the run — and [Invalid_argument] if {!params_of_request} is [None]
    for the request. *)

val resume : run_dir:string -> ?store:Vartune_store.Store.t -> unit -> unit
(** Resumes an interrupted journaled run.  Raises
    [Journal.Corrupt] if the journal is missing, truncated or fails a
    checksum — a damaged journal is a clean typed error (exit 65),
    never a wrong result. *)

val journal_path : string -> string
(** [<run>/journal.vtj]. *)

(** {2 Deprecated entry points}

    One-line wrappers over {!eval} / {!execute_request}, kept for this
    PR only. *)

val run_pipeline :
  ?store:Vartune_store.Store.t ->
  ?ckpt:Vartune_journal.Journal.ctx ->
  emit:(string -> unit) ->
  params ->
  Vartune_liberty.Library.t
[@@ocaml.deprecated "use eval with a Request.t instead"]

val execute :
  run_dir:string -> ?store:Vartune_store.Store.t -> params -> unit
[@@ocaml.deprecated "use execute_request with a Request.t instead"]
