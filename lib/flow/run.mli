(** Journaled run supervision: graceful shutdown and crash-safe resume.

    A {e journaled run} lives in a run directory:

    {v
    <run>/journal.vtj   append-only step journal (Vartune_journal)
    <run>/state/        private artifact store for checkpoints
    <run>/statlib.lib   the statistical library, written on completion
    <run>/report.txt    everything the run printed, written on completion
    v}

    [execute] starts one, installing SIGINT/SIGTERM handlers that
    request a cooperative stop: the pipeline finishes the current round,
    checkpoints its partial state to [state/], journals the checkpoint
    and raises {!Vartune_journal.Journal.Interrupted}, which the CLI
    maps to exit 75 (EX_TEMPFAIL).  [resume] replays the journal,
    reconstructs the run's parameters from the [Run_started] step,
    re-validates every journaled artifact against the store by recipe
    key (a corrupt entry is evicted and recomputed, never trusted) and
    continues.  The resumed output — stdout, [report.txt],
    [statlib.lib] — is bit-identical to an uninterrupted run at any
    [--jobs] and any checkpoint cadence. *)

type kind =
  | Statlib  (** build the statistical library and stop *)
  | Experiment of {
      mc_samples : int;
      period : float option;  (** [None]: the measured minimum *)
      tuning : Vartune_tuning.Tuning_method.t;
    }  (** the full experiment pipeline (the [experiment] subcommand) *)

type params = {
  seed : int;
  samples : int;
  kind : kind;
  output : string option;  (** [-o]: extra copy of the library *)
}

val run_line : string -> Experiment.run -> string
(** One synthesis-result summary line, shared by [synth], [experiment]
    and journaled runs so their outputs stay diffable. *)

val run_pipeline :
  ?store:Vartune_store.Store.t ->
  ?ckpt:Vartune_journal.Journal.ctx ->
  emit:(string -> unit) ->
  params ->
  Vartune_liberty.Library.t
(** The pipeline body shared by journaled and plain runs: builds the
    statistical library and — for {!Experiment} — runs baseline,
    sweep and path-level Monte Carlo, reporting each line through
    [emit] (without trailing newline).  Returns the statistical
    library.  With [ckpt] every stage checkpoints and honours stop
    requests as described above. *)

val execute :
  run_dir:string -> ?store:Vartune_store.Store.t -> params -> unit
(** Runs [params] journaled under [run_dir] (created if missing).
    Raises [Journal.Interrupted] after a graceful, checkpointed stop —
    the journal is sealed ["interrupted"] and [vartune resume]
    continues the run. *)

val resume : run_dir:string -> ?store:Vartune_store.Store.t -> unit -> unit
(** Resumes an interrupted journaled run.  Raises
    [Journal.Corrupt] if the journal is missing, truncated or fails a
    checksum — a damaged journal is a clean typed error (exit 65),
    never a wrong result. *)

val journal_path : string -> string
(** [<run>/journal.vtj]. *)
