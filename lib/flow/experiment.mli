(** Experiment orchestration for the paper's evaluation (Section VII).

    A {!setup} bundles everything the experiments share: the statistical
    library (built once from N Monte-Carlo characterisation samples), the
    evaluation design, and the clock-period ladder derived from the
    measured minimum period the way the paper's Table 1 derives its
    constraints from 2.41 ns.

    Synthesis runs are memoised behind the opaque {!memo} handle: an
    in-process table absorbs repeat requests within a setup, and — when
    {!prepare} was given a store — the persistent artifact store serves
    warm processes the same runs bit-identically.  Neither layer is
    observable in results: cold, warm and store-less executions produce
    byte-identical reports at any pool size. *)

type run = {
  label : string;
  period : float;
  result : Vartune_synth.Synthesis.result;
  paths : Vartune_sta.Path.t list;  (** worst path per endpoint *)
  design_sigma : Vartune_stats.Design_sigma.t;
}

type memo
(** Opaque synthesis-run memo: a per-setup in-memory table plus an
    optional persistent store binding.  Safe to share across pool
    workers. *)

type setup = {
  char_config : Vartune_charlib.Characterize.config;
  mismatch : Vartune_process.Mismatch.t;
  seed : int;
  samples : int;
  design : Vartune_rtl.Ir.t;
  design_fp : int;  (** {!Vartune_rtl.Ir.fingerprint} of [design] *)
  statlib : Vartune_liberty.Library.t;
  min_period : float;
  periods : (string * float) list;
  (** labelled ladder: high / close-to-max / medium / low performance *)
  memo : memo;
}

val prepare_request :
  ?mcu_config:Vartune_rtl.Microcontroller.config ->
  ?store:Vartune_store.Store.t ->
  ?ckpt:Vartune_journal.Journal.ctx ->
  ?reuse:bool ->
  ?specs:Vartune_stdcell.Spec.t list ->
  Request.t ->
  setup
(** Builds the statistical library (seed and sample count from the
    request's {!Request.base}; defaults 42/50 for request kinds that
    carry none) across the default pool's domains, elaborates the
    microcontroller and measures the minimum period.  With [store], the
    statistical library, the measured minimum period and every
    subsequent synthesis run are fetched from / saved to the persistent
    artifact store.  [~reuse:false] (default [true]) ignores [store]
    entirely — nothing is read or written — for cold-timing
    comparisons.  [specs] restricts the characterised catalog (default
    {!Vartune_stdcell.Catalog.specs}); it must still cover every family
    the technology mapper emits.

    With [ckpt] (a journaled run), the statistical library builds
    resumably (see {!Vartune_statlib.Statistical.build}), the run's
    private state store joins the cache layers of every artifact, each
    landed artifact is journaled, and a pending stop request raises
    [Journal.Interrupted] at the next safe point. *)

val recipe_ids : setup -> string list
(** The content-addressed store recipe ids underlying a setup — the
    statistical library's key and the minimum-period measurement's key
    — carried into {!Response.t.recipes} so a client can audit what a
    served result was keyed by. *)

val prepare :
  ?samples:int ->
  ?seed:int ->
  ?mcu_config:Vartune_rtl.Microcontroller.config ->
  ?store:Vartune_store.Store.t ->
  ?ckpt:Vartune_journal.Journal.ctx ->
  ?reuse:bool ->
  ?specs:Vartune_stdcell.Spec.t list ->
  unit ->
  setup
[@@ocaml.deprecated "use prepare_request with a Request.t instead"]
(** Builds the statistical library (default 50 samples, seed 42) across
    the default pool's domains, elaborates the microcontroller and
    measures the minimum period.  With [store], the statistical library,
    the measured minimum period and every subsequent synthesis run are
    fetched from / saved to the persistent artifact store.
    [~reuse:false] (default [true]) ignores [store] entirely — nothing
    is read or written — for cold-timing comparisons.  [specs] restricts
    the characterised catalog (default {!Vartune_stdcell.Catalog.specs});
    it must still cover every family the technology mapper emits.

    With [ckpt] (a journaled run), the statistical library builds
    resumably (see {!Vartune_statlib.Statistical.build}), the run's
    private state store joins the cache layers of every artifact, each
    landed artifact is journaled, and a pending stop request raises
    [Journal.Interrupted] at the next safe point. *)

val fresh_memo : setup -> setup
(** The same setup with an empty, store-detached memo — runs recompute
    from scratch, for timing comparisons that must not hit earlier
    runs' entries (in memory or on disk). *)

val baseline : setup -> period:float -> run
(** Synthesis with the untuned statistical library.  Results are memoised
    per period within a setup. *)

val tuned : setup -> period:float -> tuning:Vartune_tuning.Tuning_method.t -> run
(** Synthesis with the given method's restrictions installed. *)

val sigma_reduction : baseline:run -> tuned:run -> float
(** Relative design-sigma decrease, e.g. [0.37] for -37 %. *)

val area_increase : baseline:run -> tuned:run -> float
(** Relative area increase, e.g. [0.07] for +7 %. *)

type sweep_point = {
  parameter : float;
  run : run;
  reduction : float;  (** vs the baseline at the same period *)
  area_delta : float;
}

val sweep :
  ?pool:Vartune_util.Pool.t ->
  setup ->
  period:float ->
  tuning:Vartune_tuning.Tuning_method.t ->
  parameters:float list ->
  sweep_point list
(** One tuning method across its constraint-parameter sweep (Table 2).
    The points are synthesised in parallel on the pool (default
    {!Vartune_util.Pool.default}) and returned in parameter order; the
    result is independent of the pool size. *)

val best_under_area_cap :
  ?cap:float -> sweep_point list -> sweep_point option
(** The paper's Fig. 10 selection rule: highest sigma reduction among
    feasible points with area increase below [cap] (default 10 %); falls
    back to the smallest area increase if none qualify. *)

val paper_period_labels : float -> (string * float) list
(** Scales the paper's Table 1 ladder (2.41 / 2.5 / 4 / 10 ns) to a
    measured minimum period. *)

val find_path_of_depth :
  run -> depth:int -> Vartune_sta.Path.t option
(** The extracted path whose depth is closest to [depth] — used to pick
    the short/medium/long paths of Figs. 15–16. *)

(** {2 Failure classification}

    The hardened layers keep most faults out of the control flow: the
    store degrades to no-store, the pool restarts crashed workers.
    What still escapes is classified here so the CLI can exit with a
    typed, sysexits.h-style status instead of a backtrace. *)

type failure =
  | Data_error of string
      (** malformed input data (Liberty lexer/parser errors) — exit 65 *)
  | Io_error of string
      (** unrecoverable I/O (raw [Sys_error]/[Unix_error], corrupt
          artifact escaping the store) — exit 74 *)
  | Worker_error of string
      (** pool workers kept dying or stalled ({!Vartune_util.Pool.Worker_failure})
          — exit 75, worth retrying *)
  | Interrupted of string
      (** a graceful, checkpointed stop ({!Vartune_journal.Journal.Interrupted})
          — exit 75; [vartune resume] continues the run *)
  | Internal_error of string
      (** a bug, e.g. an injected fault escaping its hardened layer —
          exit 70 *)

val classify_exn : exn -> failure option
(** [None] means the exception is not one of the pipeline's typed
    failures and should propagate (and exit 125 via the CLI guard). *)

val exit_code : failure -> int
(** 65 / 74 / 75 / 70 per the constructor docs above. *)

val failure_message : failure -> string
(** One-line operator-facing description. *)
