(** Plain-text rendering of tables and figures.

    Every experiment prints through these helpers so the bench output
    reads like the paper's tables/figures, with paper-reported values
    alongside measured ones where applicable. *)

val table : header:string list -> rows:string list list -> unit
(** Aligned ASCII table on stdout. *)

val bar_chart : ?width:int -> ?unit_label:string -> (string * float) list -> unit
(** Horizontal bars scaled to the maximum value. *)

val surface : Vartune_liberty.Lut.t -> unit
(** A LUT as a shaded character grid (slew rows × load columns), dark =
    low, plus the numeric range — the textual cousin of the paper's
    surface plots. *)

val int_histogram : ?width:int -> (int * int) list -> unit
(** [(bucket, count)] pairs as a vertical profile. *)

val binned_scatter :
  ?bins:int -> x_label:string -> y_label:string -> float array -> float array -> unit
(** [binned_scatter ~x_label ~y_label xs ys]: scatter data reduced to
    per-bin mean/max rows. *)

val pct : float -> string
(** [0.371] → ["37.1%"]. *)

val ns : float -> string
(** [2.41] → ["2.410 ns"]. *)

val heading : string -> unit
(** Underlined section heading. *)

val sub_heading : string -> unit
