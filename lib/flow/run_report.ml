(* The `vartune report` back end: one human-readable (or JSON) run
   report assembled from whichever sources are at hand — an exported
   Chrome trace (span profile, domain utilization, GC attribution), a
   metrics JSON file (counters and histogram quantiles), and/or a
   journaled run directory (step timeline, checkpoint count, progress
   and ETA from the version-2 record timestamps). *)

module Obs = Vartune_obs.Obs
module Json = Vartune_obs.Json
module Profile = Vartune_obs.Profile
module Journal = Vartune_journal.Journal

type timeline = {
  steps : Journal.timed list;
  samples : int;  (* target sample count from Run_started; 0 if absent *)
  samples_done : int;  (* highest Block_done hi *)
  blocks : int;
  checkpoints : int;
  sealed : string option;
  elapsed_s : float;
}

type t = {
  profile : Profile.t option;
  metrics_raw : string option;  (* original metrics file, already JSON *)
  metrics : Json.t option;
  timeline : timeline option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ( let* ) = Result.bind

let timeline_of_steps steps =
  let first = match steps with [] -> 0L | s :: _ -> s.Journal.at_ns in
  let last = List.fold_left (fun _ s -> s.Journal.at_ns) first steps in
  let samples =
    List.find_map
      (function Journal.{ step = Run_started { samples; _ }; _ } -> Some samples | _ -> None)
      steps
    |> Option.value ~default:0
  in
  List.fold_left
    (fun acc s ->
      match s.Journal.step with
      | Journal.Block_done { hi; _ } ->
        { acc with blocks = acc.blocks + 1; samples_done = max acc.samples_done hi }
      | Journal.Checkpoint _ -> { acc with checkpoints = acc.checkpoints + 1 }
      | Journal.Sealed { reason } -> { acc with sealed = Some reason }
      | _ -> acc)
    {
      steps;
      samples;
      samples_done = 0;
      blocks = 0;
      checkpoints = 0;
      sealed = None;
      elapsed_s = Int64.to_float (Int64.sub last first) /. 1e9;
    }
    steps

(* Any input may be missing, but at least one must be given.  Raises
   {!Journal.Corrupt} (exit 65 through the CLI guard) on a damaged
   journal; trace and metrics problems come back as [Error]. *)
let build ?trace ?metrics ?run_dir () =
  match (trace, metrics, run_dir) with
  | None, None, None -> Error "nothing to report on: give a trace, a metrics file or --run-dir"
  | _ ->
    let* profile =
      match trace with
      | None -> Ok None
      | Some path -> (
        match Profile.of_trace_file path with
        | Ok p -> Ok (Some p)
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
    in
    let* metrics_raw, metrics =
      match metrics with
      | None -> Ok (None, None)
      | Some path -> (
        let raw = read_file path in
        match Json.parse raw with
        | Ok j -> Ok (Some raw, Some j)
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
    in
    let timeline =
      Option.map
        (fun dir -> timeline_of_steps (Journal.replay_timed (Run.journal_path dir)))
        run_dir
    in
    Ok { profile; metrics_raw; metrics; timeline }

(* Same sniffing the CLI uses for positional files: a JSON document
   with [traceEvents] is a trace, one with [counters] is a metrics
   file. *)
let classify_file path =
  match Json.parse (read_file path) with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok json ->
    if Json.member "traceEvents" json <> None then Ok `Trace
    else if Json.member "counters" json <> None then begin
      (* Reject metrics documents stamped with a schema we don't
         understand; absent [schema] means pre-versioning output and
         stays accepted. *)
      match Json.member "schema" json with
      | Some (Json.Number v)
        when int_of_float v <> Obs.metrics_schema_version ->
        Error
          (Printf.sprintf "%s: unsupported metrics schema version %d (expected %d)"
             path (int_of_float v) Obs.metrics_schema_version)
      | _ -> Ok `Metrics
    end
    else Error (Printf.sprintf "%s: neither a trace (traceEvents) nor a metrics (counters) file" path)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let heading buf title =
  Buffer.add_string buf (Printf.sprintf "== %s %s\n" title (String.make (max 0 (66 - String.length title)) '='))

let metrics_text buf json =
  let section name render =
    match Json.member name json with
    | Some (Json.Object kvs) when kvs <> [] ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" name);
      List.iter (fun (k, v) -> render k v) kvs
    | _ -> ()
  in
  section "counters" (fun k v ->
      match Json.to_float v with
      | Some f -> Buffer.add_string buf (Printf.sprintf "  %-40s %.0f\n" k f)
      | None -> ());
  section "gauges" (fun k v ->
      match Json.to_float v with
      | Some f -> Buffer.add_string buf (Printf.sprintf "  %-40s %g\n" k f)
      | None -> ());
  section "histograms" (fun k v ->
      let f name = Option.bind (Json.member name v) Json.to_float in
      match (f "count", f "mean") with
      | Some count, Some mean ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s count=%.0f mean=%g%s\n" k count mean
             (match (f "p50", f "p99") with
             | Some p50, Some p99 -> Printf.sprintf " p50=%g p99=%g" p50 p99
             | _ -> ""))
      | _ -> ())

let timeline_text buf tl =
  let first = match tl.steps with [] -> 0L | s :: _ -> s.Journal.at_ns in
  List.iter
    (fun (s : Journal.timed) ->
      Buffer.add_string buf
        (Printf.sprintf "  %+9.3fs  %s\n"
           (Int64.to_float (Int64.sub s.Journal.at_ns first) /. 1e9)
           (Journal.step_to_string s.Journal.step)))
    tl.steps;
  let progress =
    if tl.samples > 0 then
      Printf.sprintf "samples %d/%d (%.0f%%), " tl.samples_done tl.samples
        (100.0 *. float_of_int tl.samples_done /. float_of_int tl.samples)
    else ""
  in
  Buffer.add_string buf
    (Printf.sprintf "  %d blocks, %d checkpoints, %selapsed %.3f s\n" tl.blocks
       tl.checkpoints progress tl.elapsed_s);
  match tl.sealed with
  | Some reason -> Buffer.add_string buf (Printf.sprintf "  sealed: %s\n" reason)
  | None ->
    (* unsealed journal: the run is live (or died without sealing);
       extrapolate the remaining samples at the recorded rate *)
    if tl.samples_done > 0 && tl.samples > tl.samples_done && tl.elapsed_s > 0.0 then begin
      let rate = float_of_int tl.samples_done /. tl.elapsed_s in
      Buffer.add_string buf
        (Printf.sprintf "  unsealed (run in progress?); ETA %.1f s for %d remaining samples\n"
           (float_of_int (tl.samples - tl.samples_done) /. rate)
           (tl.samples - tl.samples_done))
    end
    else Buffer.add_string buf "  unsealed (run in progress?)\n"

let to_text t =
  let buf = Buffer.create 4096 in
  Option.iter
    (fun p ->
      heading buf "profile";
      Buffer.add_string buf (Profile.to_text p))
    t.profile;
  Option.iter
    (fun m ->
      heading buf "metrics";
      metrics_text buf m)
    t.metrics;
  Option.iter
    (fun tl ->
      heading buf "journal";
      timeline_text buf tl)
    t.timeline;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n\"profile\": ";
  (match t.profile with
  | Some p -> Buffer.add_string buf (String.trim (Profile.to_json p))
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\n\"metrics\": ";
  (match t.metrics_raw with
  | Some raw -> Buffer.add_string buf (String.trim raw)
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\n\"journal\": ";
  (match t.timeline with
  | None -> Buffer.add_string buf "null"
  | Some tl ->
    let first = match tl.steps with [] -> 0L | s :: _ -> s.Journal.at_ns in
    Buffer.add_string buf "{\n  \"steps\": [\n";
    List.iteri
      (fun i (s : Journal.timed) ->
        Buffer.add_string buf
          (Printf.sprintf "    {\"at_s\": %s, \"step\": %S}%s\n"
             (Obs.float_json (Int64.to_float (Int64.sub s.Journal.at_ns first) /. 1e9))
             (Journal.step_to_string s.Journal.step)
             (if i = List.length tl.steps - 1 then "" else ",")))
      tl.steps;
    Buffer.add_string buf
      (Printf.sprintf
         "  ],\n  \"samples\": %d,\n  \"samples_done\": %d,\n  \"blocks\": %d,\n  \
          \"checkpoints\": %d,\n  \"elapsed_s\": %s,\n  \"sealed\": %s\n}"
         tl.samples tl.samples_done tl.blocks tl.checkpoints
         (Obs.float_json tl.elapsed_s)
         (match tl.sealed with Some r -> Printf.sprintf "%S" r | None -> "null")));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
