module Request = Vartune_flow.Request
module Obs = Vartune_obs.Obs

let src = Logs.Src.create "vartune.admission" ~doc:"bounded admission control"

module Log = (val Logs.src_log src : Logs.LOG)

type reason = Queue_full | Deadline_expired | Draining

let reason_message = function
  | Queue_full -> "overloaded: admission queue is full"
  | Deadline_expired -> "deadline expired before the request could run"
  | Draining -> "draining: request shed before execution"

type 'a outcome =
  | Value of 'a
  | Failed of exn
  | Shed of { reason : reason; retry_after_s : float }

type 'a job = {
  job_mu : Mutex.t;
  job_cond : Condition.t;
  mutable result : 'a outcome option;
}

type 'a entry = {
  work : unit -> 'a;
  job : 'a job;
  deadline_ns : int64 option;
  enqueued_ns : int64;
}

type 'a t = {
  mu : Mutex.t;
  cond : Condition.t;  (* signalled on enqueue and on stop *)
  interactive : 'a entry Queue.t;
  batch : 'a entry Queue.t;
  queue_cap : int;
  n_workers : int;
  mutable stopping : bool;
  mutable n_active : int;
  mutable workers : Thread.t list;
  n_sheds : int Atomic.t;
  n_deadline_drops : int Atomic.t;
}

(* Obs counters are no-ops while telemetry is disabled, so the handle
   keeps its own always-on atomics (what GET health reports) and
   mirrors every event into these for GET metrics. *)
let sheds_counter = Obs.Counter.make "serve.sheds"
let deadline_counter = Obs.Counter.make "serve.deadline_drops"

let fresh_job () =
  { job_mu = Mutex.create (); job_cond = Condition.create (); result = None }

let publish job outcome =
  Mutex.lock job.job_mu;
  job.result <- Some outcome;
  Condition.broadcast job.job_cond;
  Mutex.unlock job.job_mu

let await job =
  Mutex.lock job.job_mu;
  let rec wait () =
    match job.result with
    | Some outcome -> outcome
    | None ->
      Condition.wait job.job_cond job.job_mu;
      wait ()
  in
  let outcome = wait () in
  Mutex.unlock job.job_mu;
  outcome

let depth_locked t = Queue.length t.interactive + Queue.length t.batch

(* Deterministic back-off hint: a function of queue pressure only —
   same load, same hint — scaled so an idle daemon suggests 50 ms and a
   deeply backed-up one caps at 5 s. *)
let hint_of_pressure ~queued ~running ~workers =
  let pressure = float_of_int (queued + running) /. float_of_int (max 1 workers) in
  Float.min 5.0 (0.05 *. Float.max 1.0 pressure)

let retry_hint_locked t =
  hint_of_pressure ~queued:(depth_locked t) ~running:t.n_active ~workers:t.n_workers

let gauge_depth_locked t = Obs.gauge "serve.queue_depth" (float_of_int (depth_locked t))

let count_shed t = Atomic.incr t.n_sheds; Obs.Counter.incr sheds_counter

let count_deadline_drop t =
  Atomic.incr t.n_deadline_drops;
  Obs.Counter.incr deadline_counter

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let rec worker_loop t =
  Mutex.lock t.mu;
  let rec take () =
    if not (Queue.is_empty t.interactive) then Some (Queue.pop t.interactive)
    else if not (Queue.is_empty t.batch) then Some (Queue.pop t.batch)
    else if t.stopping then None
    else begin
      Condition.wait t.cond t.mu;
      take ()
    end
  in
  match take () with
  | None -> Mutex.unlock t.mu
  | Some e ->
    t.n_active <- t.n_active + 1;
    let hint = retry_hint_locked t in
    gauge_depth_locked t;
    Mutex.unlock t.mu;
    let now = Obs.now_ns () in
    Obs.observe "serve.queue_wait_ms"
      (Int64.to_float (Int64.sub now e.enqueued_ns) /. 1e6);
    (match e.deadline_ns with
    | Some d when now > d ->
      (* second deadline check: the wait in the queue outlived it *)
      count_deadline_drop t;
      publish e.job (Shed { reason = Deadline_expired; retry_after_s = hint })
    | _ ->
      let outcome = try Value (e.work ()) with exn -> Failed exn in
      publish e.job outcome);
    Mutex.lock t.mu;
    t.n_active <- t.n_active - 1;
    Mutex.unlock t.mu;
    worker_loop t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ~workers ~queue_cap =
  if workers < 1 then invalid_arg "Admission.create: workers must be >= 1";
  if queue_cap < 1 then invalid_arg "Admission.create: queue_cap must be >= 1";
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      interactive = Queue.create ();
      batch = Queue.create ();
      queue_cap;
      n_workers = workers;
      stopping = false;
      n_active = 0;
      workers = [];
      n_sheds = Atomic.make 0;
      n_deadline_drops = Atomic.make 0;
    }
  in
  t.workers <- List.init workers (fun _ -> Thread.create worker_loop t);
  t

let submit t ~priority ?deadline_ns work =
  let job = fresh_job () in
  let now = Obs.now_ns () in
  Mutex.lock t.mu;
  let hint = retry_hint_locked t in
  let refuse reason =
    Mutex.unlock t.mu;
    (match reason with
    | Deadline_expired -> count_deadline_drop t
    | Queue_full | Draining -> count_shed t);
    publish job (Shed { reason; retry_after_s = hint })
  in
  (if t.stopping then refuse Draining
   else
     match deadline_ns with
     | Some d when now > d -> refuse Deadline_expired
     | _ ->
       if depth_locked t >= t.queue_cap then refuse Queue_full
       else begin
         let queue =
           match (priority : Request.priority) with
           | Request.Interactive -> t.interactive
           | Request.Batch -> t.batch
         in
         Queue.push { work; job; deadline_ns; enqueued_ns = now } queue;
         gauge_depth_locked t;
         Condition.signal t.cond;
         Mutex.unlock t.mu
       end);
  job

let stop t =
  Mutex.lock t.mu;
  if t.stopping && t.workers = [] then Mutex.unlock t.mu
  else begin
    t.stopping <- true;
    let hint = retry_hint_locked t in
    let queued = ref [] in
    let drain q = Queue.iter (fun e -> queued := e :: !queued) q; Queue.clear q in
    drain t.interactive;
    drain t.batch;
    gauge_depth_locked t;
    Condition.broadcast t.cond;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.mu;
    let queued = List.rev !queued in
    List.iter
      (fun e ->
        count_shed t;
        publish e.job (Shed { reason = Draining; retry_after_s = hint }))
      queued;
    if queued <> [] then
      Log.info (fun m -> m "drain: shed %d queued request(s)" (List.length queued));
    List.iter Thread.join workers
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let with_lock t f =
  Mutex.lock t.mu;
  let v = f t in
  Mutex.unlock t.mu;
  v

let depth t = with_lock t depth_locked
let active t = with_lock t (fun t -> t.n_active)
let retry_hint t = with_lock t retry_hint_locked
let sheds t = Atomic.get t.n_sheds
let deadline_drops t = Atomic.get t.n_deadline_drops
