module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Run_request = Vartune_flow.Run_request
module Store = Vartune_store.Store
module Obs = Vartune_obs.Obs
module Json = Vartune_obs.Json
module Profile = Vartune_obs.Profile

let src = Logs.Src.create "vartune.serve" ~doc:"unix-socket evaluation service"

module Log = (val Logs.src_log src : Logs.LOG)

type config = { socket : string; store : Store.t option; backlog : int }

type stats = { requests : int; dedup_hits : int; errors : int; active : int }

type handle = {
  config : config;
  listener : Unix.file_descr;
  stopping : bool Atomic.t;
  n_requests : int Atomic.t;
  n_dedup : int Atomic.t;
  n_errors : int Atomic.t;
  n_active : int Atomic.t;
  flight : Response.t Single_flight.t;
  mutable accept_thread : Thread.t option;
}

(* How often blocked loops re-check the stop flag; bounds both accept
   latency on shutdown and the busy-wait cost while idle. *)
let poll_interval_s = 0.2

(* ------------------------------------------------------------------ *)
(* Socket lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

(* A leftover socket file from a crashed daemon must not block restart,
   but a live daemon must: probe by connecting.  A successful connect
   means someone is serving; a refused/absent one means the file is
   stale and safe to replace. *)
let bind_socket ~backlog path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "%s: a daemon is already serving" path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  end;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listener (Unix.ADDR_UNIX path);
     Unix.listen listener backlog
   with exn ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise exn);
  listener

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

(* The exporters pretty-print; the wire speaks one line per reply. *)
let compact_json s =
  match Json.parse s with Ok j -> Json.to_string j | Error _ -> String.trim s

let stats_of h =
  {
    requests = Atomic.get h.n_requests;
    dedup_hits = Atomic.get h.n_dedup;
    errors = Atomic.get h.n_errors;
    active = Atomic.get h.n_active;
  }

let health_json h =
  let s = stats_of h in
  Printf.sprintf
    "{\"status\":%S,\"requests\":%d,\"dedup_hits\":%d,\"errors\":%d,\"active\":%d}"
    (if Atomic.get h.stopping then "draining" else "ok")
    s.requests s.dedup_hits s.errors s.active

let handle_line h line =
  match line with
  | "GET metrics" -> compact_json (Obs.metrics_json ())
  | "GET profile" -> compact_json (Profile.to_json (Profile.of_events (Obs.events ())))
  | "GET health" -> health_json h
  | line -> (
    match Request.of_line line with
    | Error err ->
      Atomic.incr h.n_errors;
      Response.to_line
        (Response.fail ~kind:"error" ~elapsed_s:0.0 ~code:65 (Request.error_message err))
    | Ok (id, req) ->
      Atomic.incr h.n_requests;
      let resp, dedup =
        Single_flight.run h.flight ~key:(Request.key req) (fun () ->
            Run_request.exec ?store:h.config.store req)
      in
      if dedup then Atomic.incr h.n_dedup;
      if resp.Response.code <> 0 then Atomic.incr h.n_errors;
      Response.to_line { resp with Response.id; dedup })

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = { fd : Unix.file_descr; mutable pending : string }

(* Line reader over the raw fd (no buffered channel, so the stop flag
   is honoured between lines): returns [None] on peer EOF or drain. *)
let rec next_line h conn =
  match String.index_opt conn.pending '\n' with
  | Some i ->
    let line = String.sub conn.pending 0 i in
    conn.pending <-
      String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
    Some line
  | None ->
    if Atomic.get h.stopping then None
    else (
      match Unix.select [ conn.fd ] [] [] poll_interval_s with
      | [], _, _ -> next_line h conn
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line h conn
      | _ ->
        let bytes = Bytes.create 4096 in
        let n = Unix.read conn.fd bytes 0 (Bytes.length bytes) in
        if n = 0 then None
        else begin
          conn.pending <- conn.pending ^ Bytes.sub_string bytes 0 n;
          next_line h conn
        end)

let write_all fd s =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write_substring fd s off len in
      go (off + n) (len - n)
    end
  in
  go 0 (String.length s)

let serve_conn h fd =
  let conn = { fd; pending = "" } in
  let rec loop () =
    match next_line h conn with
    | None -> ()
    | Some line ->
      Atomic.incr h.n_active;
      let reply =
        Fun.protect
          ~finally:(fun () -> Atomic.decr h.n_active)
          (fun () -> handle_line h line)
      in
      write_all fd (reply ^ "\n");
      loop ()
  in
  (try loop ()
   with Unix.Unix_error _ | Sys_error _ | End_of_file ->
     (* a dropped connection only costs that connection *)
     ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)
(* ------------------------------------------------------------------ *)

(* Runs until the stop flag flips, then joins every connection thread —
   in-flight requests finish and are answered before this returns
   (graceful drain). *)
let accept_loop h =
  let rec loop threads =
    if Atomic.get h.stopping then threads
    else (
      match Unix.select [ h.listener ] [] [] poll_interval_s with
      | [], _, _ -> loop threads
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop threads
      | _ -> (
        match Unix.accept h.listener with
        | fd, _ -> loop (Thread.create (serve_conn h) fd :: threads)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          loop threads))
  in
  let threads = loop [] in
  List.iter Thread.join threads;
  let s = stats_of h in
  Log.info (fun m ->
      m "drained: %d requests served, %d dedup hits, %d errors" s.requests s.dedup_hits
        s.errors)

let make_handle config listener =
  {
    config;
    listener;
    stopping = Atomic.make false;
    n_requests = Atomic.make 0;
    n_dedup = Atomic.make 0;
    n_errors = Atomic.make 0;
    n_active = Atomic.make 0;
    flight = Single_flight.create ();
    accept_thread = None;
  }

let cleanup h =
  (try Unix.close h.listener with Unix.Unix_error _ -> ());
  try Unix.unlink h.config.socket with Unix.Unix_error _ | Sys_error _ -> ()

let start config =
  let h = make_handle config (bind_socket ~backlog:config.backlog config.socket) in
  Log.info (fun m -> m "serving on %s" config.socket);
  h.accept_thread <- Some (Thread.create accept_loop h);
  h

let stop h =
  Atomic.set h.stopping true;
  Option.iter Thread.join h.accept_thread;
  h.accept_thread <- None;
  cleanup h

let stats = stats_of

let run config =
  let h = make_handle config (bind_socket ~backlog:config.backlog config.socket) in
  List.iter
    (fun signal ->
      try
        Sys.set_signal signal
          (Sys.Signal_handle (fun _ -> Atomic.set h.stopping true))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  Log.info (fun m -> m "serving on %s (SIGINT/SIGTERM drains gracefully)" config.socket);
  accept_loop h;
  cleanup h
