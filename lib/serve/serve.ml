module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Run_request = Vartune_flow.Run_request
module Store = Vartune_store.Store
module Obs = Vartune_obs.Obs
module Json = Vartune_obs.Json
module Profile = Vartune_obs.Profile

let src = Logs.Src.create "vartune.serve" ~doc:"unix-socket evaluation service"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  socket : string;
  store : Store.t option;
  backlog : int;
  workers : int;
  queue_cap : int;
  max_conns : int;
}

type stats = {
  requests : int;
  dedup_hits : int;
  errors : int;
  active : int;
  queued : int;
  sheds : int;
  deadline_drops : int;
  slow_client_drops : int;
}

type handle = {
  config : config;
  listener : Unix.file_descr;
  stopping : bool Atomic.t;
  n_requests : int Atomic.t;
  n_dedup : int Atomic.t;
  n_errors : int Atomic.t;
  n_conns : int Atomic.t;
  n_conn_sheds : int Atomic.t;
  n_slow_drops : int Atomic.t;
  adm : Response.t Admission.t;
  flight : Response.t Single_flight.t;
  mutable accept_thread : Thread.t option;
}

(* How often blocked loops re-check the stop flag; bounds both accept
   latency on shutdown and the busy-wait cost while idle. *)
let poll_interval_s = 0.2

(* A reply the peer has not drained within this window marks it a slow
   client: the connection is dropped rather than pinning a thread. *)
let send_timeout_s = 10.0

(* Longest accepted request line.  Far above any legitimate request
   (the wire speaks one compact JSON object per line) and small enough
   that a misbehaving peer cannot balloon the per-connection buffer. *)
let max_line_bytes = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Socket lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

(* A leftover socket file from a crashed daemon must not block restart,
   but a live daemon must: probe by connecting.  A successful connect
   means someone is serving; a refused/absent one means the file is
   stale and safe to replace.  Any other probe error (EACCES, a
   non-socket file, ...) is an I/O failure naming the path — exit 74
   through the CLI guard, never a raw backtrace. *)
let bind_socket ~backlog path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close probe with Unix.Unix_error _ -> ());
        raise
          (Sys_error
             (Printf.sprintf "%s: cannot probe existing socket: %s" path
                (Unix.error_message err)))
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "%s: a daemon is already serving" path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  end;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listener (Unix.ADDR_UNIX path);
     Unix.listen listener backlog
   with exn ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise exn);
  listener

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

(* The exporters pretty-print; the wire speaks one line per reply. *)
let compact_json s =
  match Json.parse s with Ok j -> Json.to_string j | Error _ -> String.trim s

let stats_of h =
  {
    requests = Atomic.get h.n_requests;
    dedup_hits = Atomic.get h.n_dedup;
    errors = Atomic.get h.n_errors;
    active = Admission.active h.adm;
    queued = Admission.depth h.adm;
    sheds = Admission.sheds h.adm + Atomic.get h.n_conn_sheds;
    deadline_drops = Admission.deadline_drops h.adm;
    slow_client_drops = Atomic.get h.n_slow_drops;
  }

let health_json h =
  let s = stats_of h in
  Printf.sprintf
    "{\"status\":%S,\"requests\":%d,\"dedup_hits\":%d,\"errors\":%d,\"active\":%d,\"queued\":%d,\"sheds\":%d,\"deadline_drops\":%d,\"slow_client_drops\":%d}"
    (if Atomic.get h.stopping then "draining" else "ok")
    s.requests s.dedup_hits s.errors s.active s.queued s.sheds s.deadline_drops
    s.slow_client_drops

(* Evaluates one admitted request through the same single-flight cell
   as before; only the leader occupies a queue slot, concurrent
   duplicates block on its outcome and answer with [dedup = true].
   Admission refusals become total code-75 responses carrying the
   deterministic back-off hint. *)
let eval_request h (env : Request.envelope) =
  let req = env.Request.req in
  let kind = Request.kind_string req in
  let priority =
    match env.Request.priority with
    | Some p -> p
    | None -> Request.default_priority req
  in
  let deadline_ns =
    Option.map
      (fun d -> Int64.add (Obs.now_ns ()) (Int64.of_float (d *. 1e9)))
      env.Request.deadline_s
  in
  let resp, dedup =
    Single_flight.run h.flight ~key:(Request.key req) (fun () ->
        let job =
          Admission.submit h.adm ~priority ?deadline_ns (fun () ->
              Run_request.exec ?store:h.config.store req)
        in
        match Admission.await job with
        | Admission.Value resp -> resp
        | Admission.Shed { reason; retry_after_s } ->
          Response.fail ~retry_after_s ~kind ~elapsed_s:0.0 ~code:75
            (Admission.reason_message reason)
        | Admission.Failed exn ->
          (* Run_request.exec is total; anything escaping it is a bug *)
          Response.fail ~kind ~elapsed_s:0.0 ~code:70
            (Printf.sprintf "internal error: %s" (Printexc.to_string exn)))
  in
  if dedup then Atomic.incr h.n_dedup;
  if resp.Response.code <> 0 then Atomic.incr h.n_errors;
  Response.to_line { resp with Response.id = env.Request.id; dedup }

let handle_line h line =
  match line with
  (* GETs are answered inline on the connection thread, never queued,
     so health and metrics stay responsive under overload. *)
  | "GET metrics" -> compact_json (Obs.metrics_json ())
  | "GET profile" -> compact_json (Profile.to_json (Profile.of_events (Obs.events ())))
  | "GET health" -> health_json h
  | line -> (
    match Request.of_line line with
    | Error err ->
      Atomic.incr h.n_errors;
      Response.to_line
        (Response.fail ~kind:"error" ~elapsed_s:0.0 ~code:65 (Request.error_message err))
    | Ok env ->
      Atomic.incr h.n_requests;
      eval_request h env)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  partial : Buffer.t;  (* bytes of the current line, no newline inside *)
  ready : string Queue.t;  (* complete lines not yet handled *)
}

exception Oversized_line
exception Slow_client

(* Splits a received chunk into complete lines (landing in [ready]) and
   a partial tail (accumulating in [partial] — a Buffer, so repeated
   chunks append in amortised O(n), not the O(n^2) of string concat). *)
let feed conn chunk =
  let n = String.length chunk in
  let rec go start =
    if start < n then
      match String.index_from_opt chunk start '\n' with
      | None -> Buffer.add_substring conn.partial chunk start (n - start)
      | Some i ->
        Buffer.add_substring conn.partial chunk start (i - start);
        Queue.push (Buffer.contents conn.partial) conn.ready;
        Buffer.clear conn.partial;
        go (i + 1)
  in
  go 0;
  (* a complete line always passes through [partial] before its newline
     arrives, so capping the buffer bounds every line *)
  if Buffer.length conn.partial > max_line_bytes then raise Oversized_line

(* Line reader over the raw fd (no buffered channel, so the stop flag
   is honoured between lines): returns [None] on peer EOF or drain.
   Raises [Oversized_line] when a single line exceeds the cap. *)
let rec next_line h conn =
  match Queue.take_opt conn.ready with
  | Some line -> Some line
  | None ->
    if Atomic.get h.stopping then None
    else (
      match Unix.select [ conn.fd ] [] [] poll_interval_s with
      | [], _, _ -> next_line h conn
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line h conn
      | _ ->
        let bytes = Bytes.create 4096 in
        let n = Unix.read conn.fd bytes 0 (Bytes.length bytes) in
        if n = 0 then None
        else begin
          feed conn (Bytes.sub_string bytes 0 n);
          next_line h conn
        end)

(* Bounded sender: a peer that stops draining its socket for
   [send_timeout_s] is dropped ([Slow_client]) instead of pinning this
   connection thread forever. *)
let write_all fd s =
  let rec go off remaining =
    if remaining > 0 then
      match Unix.select [] [ fd ] [] send_timeout_s with
      | _, [], _ -> raise Slow_client
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
      | _ ->
        let n = Unix.write_substring fd s off remaining in
        go (off + n) (remaining - n)
  in
  go 0 (String.length s)

let serve_conn h fd =
  let conn = { fd; partial = Buffer.create 256; ready = Queue.create () } in
  let rec loop () =
    match next_line h conn with
    | None -> ()
    | Some line ->
      write_all fd (handle_line h line ^ "\n");
      loop ()
  in
  (try loop () with
  | Oversized_line ->
    (* typed refusal, then the connection is dropped: an unbounded line
       must not balloon the buffer, and resynchronising mid-line is
       guesswork *)
    Atomic.incr h.n_errors;
    let reply =
      Response.to_line
        (Response.fail ~kind:"error" ~elapsed_s:0.0 ~code:65
           (Printf.sprintf "request line exceeds %d bytes" max_line_bytes))
    in
    (try write_all fd (reply ^ "\n") with
    | Slow_client | Unix.Unix_error _ | Sys_error _ -> ())
  | Slow_client ->
    Atomic.incr h.n_slow_drops;
    Obs.incr "serve.slow_client_drops";
    Log.warn (fun m -> m "dropping slow client (reply unread for %.0fs)" send_timeout_s)
  | Unix.Unix_error _ | Sys_error _ | End_of_file ->
    (* a dropped connection only costs that connection *)
    ());
  Atomic.decr h.n_conns;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Over the connection cap: answer the first line with a typed 75 so
   the client backs off, then close.  The reply is best-effort — the
   refusal must never pin a thread. *)
let refuse_conn h fd =
  let conn = { fd; partial = Buffer.create 64; ready = Queue.create () } in
  (try
     match next_line h conn with
     | None -> ()
     | Some _ ->
       Atomic.incr h.n_conn_sheds;
       Obs.incr "serve.sheds";
       let reply =
         Response.to_line
           (Response.fail
              ~retry_after_s:(Admission.retry_hint h.adm)
              ~kind:"error" ~elapsed_s:0.0 ~code:75
              (Printf.sprintf "overloaded: connection limit (%d) reached"
                 h.config.max_conns))
       in
       write_all fd (reply ^ "\n")
   with Oversized_line | Slow_client | Unix.Unix_error _ | Sys_error _ | End_of_file ->
     ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)
(* ------------------------------------------------------------------ *)

(* Runs until the stop flag flips, then drains: admission stops (sheds
   every queued-but-unstarted request with a typed 75, lets in-flight
   work finish) and every connection thread is joined — so all replies,
   including the sheds, are written before the listener closes and the
   socket file disappears. *)
let accept_loop h =
  let rec loop threads =
    if Atomic.get h.stopping then threads
    else (
      match Unix.select [ h.listener ] [] [] poll_interval_s with
      | [], _, _ -> loop threads
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop threads
      | _ -> (
        match Unix.accept h.listener with
        | fd, _ ->
          if Atomic.get h.n_conns >= h.config.max_conns then
            loop (Thread.create (refuse_conn h) fd :: threads)
          else begin
            Atomic.incr h.n_conns;
            loop (Thread.create (serve_conn h) fd :: threads)
          end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          loop threads))
  in
  let threads = loop [] in
  Admission.stop h.adm;
  List.iter Thread.join threads;
  let s = stats_of h in
  Log.info (fun m ->
      m "drained: %d requests served, %d dedup hits, %d errors, %d sheds" s.requests
        s.dedup_hits s.errors s.sheds)

let make_handle config listener =
  {
    config;
    listener;
    stopping = Atomic.make false;
    n_requests = Atomic.make 0;
    n_dedup = Atomic.make 0;
    n_errors = Atomic.make 0;
    n_conns = Atomic.make 0;
    n_conn_sheds = Atomic.make 0;
    n_slow_drops = Atomic.make 0;
    adm = Admission.create ~workers:config.workers ~queue_cap:config.queue_cap;
    flight = Single_flight.create ();
    accept_thread = None;
  }

let cleanup h =
  (try Unix.close h.listener with Unix.Unix_error _ -> ());
  try Unix.unlink h.config.socket with Unix.Unix_error _ | Sys_error _ -> ()

(* A reply written to a peer that already vanished must surface as
   [EPIPE] on the writing thread, not terminate the whole daemon. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let start config =
  ignore_sigpipe ();
  let h = make_handle config (bind_socket ~backlog:config.backlog config.socket) in
  Log.info (fun m ->
      m "serving on %s (%d workers, queue cap %d)" config.socket config.workers
        config.queue_cap);
  h.accept_thread <- Some (Thread.create accept_loop h);
  h

let stop h =
  Atomic.set h.stopping true;
  Option.iter Thread.join h.accept_thread;
  h.accept_thread <- None;
  cleanup h

let stats = stats_of

let run config =
  ignore_sigpipe ();
  let h = make_handle config (bind_socket ~backlog:config.backlog config.socket) in
  List.iter
    (fun signal ->
      try
        Sys.set_signal signal
          (Sys.Signal_handle (fun _ -> Atomic.set h.stopping true))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  Log.info (fun m ->
      m "serving on %s (%d workers, queue cap %d; SIGINT/SIGTERM drains gracefully)"
        config.socket config.workers config.queue_cap);
  accept_loop h;
  cleanup h
