(** The [vartune serve] daemon: a long-running unix-socket evaluation
    service over the typed request vocabulary.

    Each connection is served by its own thread, but execution is
    admission-controlled: request lines are submitted to a bounded
    two-class priority queue ({!Admission}) feeding a fixed pool of
    [workers] threads — interactive kinds ([report]/[parse]/
    [characterize], or an explicit ["priority":"interactive"]) run
    ahead of queued batch work, FIFO within a class.  When the queue is
    full, a deadline has already expired, or the daemon is draining,
    the request is refused immediately with a typed code-75
    {!Vartune_flow.Response} carrying a deterministic [retry_after_s]
    back-off hint — overload degrades into fast typed refusals, never
    unbounded latency or memory.

    Admitted requests are evaluated through the same
    {!Vartune_flow.Run_request.exec} entry point the CLI subcommands
    use (so served results are bit-identical to batch runs).  Pipeline
    work lands on the process-wide {!Vartune_util.Pool} with its usual
    per-request chunked dispatch; the optional store is shared across
    requests as a persistent cross-request cache, and identical
    in-flight requests are coalesced by {!Single_flight} keyed on
    {!Vartune_flow.Request.key} — concurrent duplicates block on one
    computation (occupying one queue slot) and are answered with
    [dedup = true].

    Live endpoints: the plain-text lines [GET metrics], [GET profile]
    and [GET health] are each answered with one line of JSON —
    {!Vartune_obs.Obs.metrics_json}, the {!Vartune_obs.Profile} of the
    live span stream, and the daemon's own counters (including queue
    depth, sheds, deadline drops and slow-client drops).  GETs are
    answered inline on the connection thread, never queued, so health
    stays responsive under overload.

    Connection hygiene: request lines are capped at 1 MiB (an
    oversized line earns a typed code-65 reply and the connection is
    dropped), replies a peer does not drain within the send timeout
    drop the connection (counted in [slow_client_drops]), and
    connections beyond [max_conns] are answered with a typed code-75
    refusal and closed.

    Shutdown is graceful: on SIGINT/SIGTERM ({!run}) or {!stop} the
    daemon stops accepting connections, lets in-flight requests finish
    and answers them, sheds every queued-but-unstarted request with a
    typed code-75 before the socket file disappears, and returns — the
    CLI maps the drain to exit 75 (EX_TEMPFAIL), the same
    "interrupted, retry later" status a journaled run uses. *)

type config = {
  socket : string;  (** unix-socket path; a stale file is replaced *)
  store : Vartune_store.Store.t option;
      (** shared cross-request artifact cache *)
  backlog : int;  (** listen(2) backlog, e.g. 16 *)
  workers : int;  (** executing worker threads ([--serve-workers]) *)
  queue_cap : int;
      (** queued-request bound, both classes combined ([--queue-cap]) *)
  max_conns : int;  (** concurrent-connection bound ([--max-conns]) *)
}

type stats = {
  requests : int;  (** request lines accepted (GETs excluded) *)
  dedup_hits : int;  (** answers coalesced onto another in-flight request *)
  errors : int;  (** responses with a non-zero code, plus unparsable lines *)
  active : int;  (** requests currently executing on a worker *)
  queued : int;  (** requests admitted but not yet started *)
  sheds : int;
      (** typed 75 refusals: queue full, draining, connection cap *)
  deadline_drops : int;  (** requests dropped because their deadline passed *)
  slow_client_drops : int;  (** connections dropped for not draining replies *)
}

type handle

val start : config -> handle
(** Binds the socket and serves on background threads — the in-process
    form used by tests and the bench harness.  Raises [Failure] if a
    live daemon already owns the socket, [Sys_error] when the probe of
    an existing socket file fails unexpectedly (exit 74 through the CLI
    guard), [Unix.Unix_error] on other bind failures. *)

val stop : handle -> unit
(** Requests a graceful drain: waits for in-flight requests to finish,
    sheds queued-but-unstarted ones with typed 75 replies, then closes
    the listener and removes the socket file. *)

val stats : handle -> stats

val run : config -> unit
(** The CLI form: serves on the calling thread until SIGINT/SIGTERM,
    then drains and returns (the [serve] subcommand exits 75). *)
