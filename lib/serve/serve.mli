(** The [vartune serve] daemon: a long-running unix-socket evaluation
    service over the typed request vocabulary.

    Each connection is served by its own thread; requests are
    newline-JSON {!Vartune_flow.Request} lines answered with one
    {!Vartune_flow.Response} line each, evaluated through the same
    {!Vartune_flow.Run_request.exec} entry point the CLI subcommands
    use (so served results are bit-identical to batch runs).  Pipeline
    work lands on the process-wide {!Vartune_util.Pool} with its usual
    per-request chunked dispatch; the optional store is shared across
    requests as a persistent cross-request cache, and identical
    in-flight requests are coalesced by {!Single_flight} keyed on
    {!Vartune_flow.Request.key} — concurrent duplicates block on one
    computation and are answered with [dedup = true].

    Live endpoints: the plain-text lines [GET metrics], [GET profile]
    and [GET health] are each answered with one line of JSON —
    {!Vartune_obs.Obs.metrics_json}, the {!Vartune_obs.Profile} of the
    live span stream, and the daemon's own counters.

    Shutdown is graceful: on SIGINT/SIGTERM ({!run}) or {!stop} the
    daemon stops accepting connections, lets in-flight requests finish,
    answers them, and returns — the CLI maps the drain to exit 75
    (EX_TEMPFAIL), the same "interrupted, retry later" status a
    journaled run uses. *)

type config = {
  socket : string;  (** unix-socket path; a stale file is replaced *)
  store : Vartune_store.Store.t option;
      (** shared cross-request artifact cache *)
  backlog : int;  (** listen(2) backlog, e.g. 16 *)
}

type stats = {
  requests : int;  (** request lines accepted (GETs excluded) *)
  dedup_hits : int;  (** answers coalesced onto another in-flight request *)
  errors : int;  (** responses with a non-zero code, plus unparsable lines *)
  active : int;  (** requests currently executing *)
}

type handle

val start : config -> handle
(** Binds the socket and serves on background threads — the in-process
    form used by tests and the bench harness.  Raises [Failure] if a
    live daemon already owns the socket, [Unix.Unix_error] on other
    bind failures. *)

val stop : handle -> unit
(** Requests a graceful drain, waits for in-flight requests to finish,
    closes the listener and removes the socket file. *)

val stats : handle -> stats

val run : config -> unit
(** The CLI form: serves on the calling thread until SIGINT/SIGTERM,
    then drains and returns (the [serve] subcommand exits 75). *)
