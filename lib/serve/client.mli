(** Blocking client for the {!Serve} daemon: one request line out, one
    response line back, over a unix socket. *)

type t

val connect : string -> t
(** Connects to the daemon's socket path.  Raises [Unix.Unix_error]
    (e.g. [ECONNREFUSED]) when no daemon is serving. *)

val close : t -> unit

val request : ?id:int -> t -> Vartune_flow.Request.t -> (Vartune_flow.Response.t, string) result
(** Sends one request and waits for its response line.  [Error] carries
    a response-decoding problem; transport failures raise
    ([End_of_file] when the daemon drained mid-request,
    [Unix.Unix_error]/[Sys_error] on socket errors). *)

val get : t -> string -> string
(** [get t "metrics"] sends the live-endpoint line [GET metrics] and
    returns the one-line JSON reply.  Endpoints: [metrics], [profile],
    [health]. *)
