(** Blocking client for the {!Serve} daemon: one request line out, one
    response line back, over a unix socket. *)

type t

val connect : string -> t
(** Connects to the daemon's socket path.  Raises [Unix.Unix_error]
    (e.g. [ECONNREFUSED]) when no daemon is serving. *)

val close : t -> unit

val request :
  ?id:int ->
  ?priority:Vartune_flow.Request.priority ->
  ?deadline_s:float ->
  t ->
  Vartune_flow.Request.t ->
  (Vartune_flow.Response.t, string) result
(** Sends one request and waits for its response line.  [priority] and
    [deadline_s] ride in the request envelope (omitted when absent, so
    the wire line is byte-identical to the pre-envelope protocol).
    [Error] carries a response-decoding problem; transport failures
    raise ([End_of_file] when the daemon drained mid-request,
    [Unix.Unix_error]/[Sys_error] on socket errors). *)

val get : t -> string -> string
(** [get t "metrics"] sends the live-endpoint line [GET metrics] and
    returns the one-line JSON reply.  Endpoints: [metrics], [profile],
    [health]. *)

(** {2 Retry / backoff discipline}

    Overload sheds (code 75 with a [retry_after_s] hint) are transient
    by construction; {!request_retrying} absorbs them with the same
    ladder shape as the store's transient-fault policy: a bounded
    number of retries with seeded jittered exponential backoff, never
    sooner than the daemon's hint. *)

type retry_policy = {
  attempts : int;  (** maximum retries after the first send *)
  base_backoff_s : float;  (** ladder base; doubles per attempt *)
  seed : int;  (** jitter seed — same seed, same waits *)
}

val default_policy : retry_policy
(** 3 attempts over a 0.5 ms base, seed 0 — the store's ladder. *)

val backoff_s : retry_policy -> attempt:int -> hint:float option -> float
(** The wait before retry [attempt] (0-based): the jittered ladder
    value, floored at the daemon's [hint].  Exposed for tests and the
    load generator's accounting. *)

val request_retrying :
  ?id:int ->
  ?priority:Vartune_flow.Request.priority ->
  ?deadline_s:float ->
  ?policy:retry_policy ->
  t ->
  Vartune_flow.Request.t ->
  (Vartune_flow.Response.t, string) result * int
(** Like {!request}, but overload sheds are retried on the same
    connection up to [policy.attempts] times.  Returns the final
    outcome — which is still a code-75 response when every retry was
    shed — and the number of retries performed.  Transport failures
    raise as in {!request}; decode errors are not retried. *)
