(** Bounded admission control for the serve daemon.

    A two-class priority queue (interactive ahead of batch, FIFO within
    a class) feeding a fixed pool of worker threads.  Capacity is
    bounded: when the queue is full, the daemon is draining, or a
    request's deadline has already passed, {!submit} refuses
    immediately with a typed {!outcome.Shed} carrying a deterministic
    [retry_after_s] hint — overload degrades into fast refusals instead
    of unbounded latency and memory.

    Deadlines are checked twice: at admission (a request that is
    already worthless never occupies a queue slot) and again at dequeue
    (a request whose deadline lapsed while queued is dropped without
    being executed).

    Telemetry: [serve.queue_depth] (gauge), [serve.sheds] and
    [serve.deadline_drops] (counters, disjoint — a deadline drop is not
    also a shed), [serve.queue_wait_ms] (histogram) via
    {!Vartune_obs.Obs}.  The same numbers are always available from
    {!depth}/{!active}/{!sheds}/{!deadline_drops} even when telemetry
    is disabled, which is what [GET health] reports. *)

type reason =
  | Queue_full  (** the bounded queue was at capacity *)
  | Deadline_expired  (** the deadline passed before execution started *)
  | Draining  (** the daemon is shutting down; queued work is refused *)

val reason_message : reason -> string
(** Operator-facing message for a code-75 response. *)

type 'a outcome =
  | Value of 'a  (** the work ran and returned *)
  | Failed of exn  (** the work raised (re-raised or mapped by the caller) *)
  | Shed of { reason : reason; retry_after_s : float }
      (** refused without running; [retry_after_s] is a deterministic
          back-off hint scaled by queue pressure at decision time *)

type 'a job
(** A future for one submitted piece of work. *)

type 'a t

val create : workers:int -> queue_cap:int -> 'a t
(** Starts [workers] worker threads over a queue bounded at
    [queue_cap] entries (both classes combined).  Raises
    [Invalid_argument] unless both are >= 1. *)

val submit :
  'a t ->
  priority:Vartune_flow.Request.priority ->
  ?deadline_ns:int64 ->
  (unit -> 'a) ->
  'a job
(** Admits (or refuses) one piece of work.  Never blocks: on refusal
    the returned job is already resolved to {!outcome.Shed}.
    [deadline_ns] is an absolute {!Vartune_obs.Obs.now_ns} instant. *)

val await : 'a job -> 'a outcome
(** Blocks until the job's outcome is published. *)

val stop : 'a t -> unit
(** Drain: stops admitting, sheds every queued-but-unstarted job with
    {!reason.Draining}, lets in-flight work finish, and joins the
    workers.  Idempotent. *)

val depth : 'a t -> int
(** Queued entries (both classes), excluding in-flight work. *)

val active : 'a t -> int
(** Entries currently executing on a worker. *)

val sheds : 'a t -> int
(** Jobs refused with [Queue_full] or [Draining] since {!create}. *)

val deadline_drops : 'a t -> int
(** Jobs dropped because their deadline expired (at admission or at
    dequeue) since {!create}. *)

val retry_hint : 'a t -> float
(** The deterministic [retry_after_s] the next shed would carry:
    [min 5.0 (0.05 * max 1.0 ((depth + active) / workers))]. *)
