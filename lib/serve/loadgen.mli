(** Load generator for the {!Serve} daemon ([vartune loadgen]).

    Opens [concurrency] connections and drives [requests] requests
    through them from a round-robin template mix.  Consecutive indices
    hit the {e same} template ([concurrency] repeats per template
    before advancing), so concurrent workers overlap on identical
    requests and exercise the daemon's single-flight deduplication on
    purpose.  Latencies are recorded in the shared {!Vartune_obs.Obs.Buckets}
    log-bucket layout, so the reported p50/p90/p99 are the same
    deterministic quantile estimate the metrics endpoint uses. *)

type config = {
  socket : string;
  requests : int;  (** total requests across all connections *)
  concurrency : int;  (** parallel connections *)
  mix : Vartune_flow.Request.t list;  (** request templates, cycled *)
}

type result = {
  sent : int;
  ok : int;  (** responses with code 0 *)
  failed : int;  (** non-zero codes, decode failures, dropped connections *)
  dedup_hits : int;  (** responses answered with [dedup = true] *)
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  min_ms : float;
  max_ms : float;
}

val default_mix : seed:int -> samples:int -> Vartune_flow.Request.t list
(** The standard cheap-kind mix: statlib, characterize, tune and a live
    report — deliberately no synthesis-heavy kinds, so a fixed request
    count finishes in seconds on a warm store. *)

val run : config -> result

val result_to_json : result -> string
(** One-line JSON with the BENCH_serve.json field vocabulary
    (throughput, latency quantiles, dedup hit rate). *)

val dedup_hit_rate : result -> float
(** [dedup_hits / sent], 0 when nothing was sent. *)

(** {2 Overload mode}

    Drives a seeded burst larger than the daemon's queue capacity —
    every 4th request interactive (a live report), the rest batch
    statlib builds with per-index seeds so single-flight cannot
    coalesce them — through the client's retry/backoff loop, and
    accounts per class: admitted-latency quantiles, sheds that
    survived every retry, deadline drops, and retries absorbed.  The
    assertion the overload bench makes is that p99 of {e admitted}
    interactive requests stays bounded while batch overload is shed,
    not absorbed. *)

type overload_config = {
  o_socket : string;
  burst : int;  (** requests in the burst; pick > the daemon's queue cap *)
  o_concurrency : int;  (** parallel connections *)
  o_seed : int;  (** base seed; batch request [i] uses [o_seed + i] *)
  o_samples : int;  (** samples per batch statlib build — keep small *)
  retry : Client.retry_policy;
}

type class_stats = {
  c_sent : int;
  c_ok : int;
  c_shed : int;  (** final reply was still a code-75 shed after retries *)
  c_deadline_dropped : int;
  c_failed : int;  (** other non-zero codes, decode errors, transport drops *)
  c_retries : int;  (** retries absorbed by the client's backoff loop *)
  c_p50_ms : float;  (** quantiles over admitted (code-0) replies only *)
  c_p90_ms : float;
  c_p99_ms : float;
  c_max_ms : float;
}

type overload_result = {
  interactive : class_stats;
  batch : class_stats;
  o_elapsed_s : float;
  replies : int;  (** total replies received — one per non-lost request *)
  code70 : int;  (** internal-error replies; must be 0 *)
}

val run_overload : overload_config -> overload_result

val overload_result_to_json : overload_result -> string
(** One-line JSON with the BENCH_overload.json field vocabulary. *)
