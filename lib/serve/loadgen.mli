(** Load generator for the {!Serve} daemon ([vartune loadgen]).

    Opens [concurrency] connections and drives [requests] requests
    through them from a round-robin template mix.  Consecutive indices
    hit the {e same} template ([concurrency] repeats per template
    before advancing), so concurrent workers overlap on identical
    requests and exercise the daemon's single-flight deduplication on
    purpose.  Latencies are recorded in the shared {!Vartune_obs.Obs.Buckets}
    log-bucket layout, so the reported p50/p90/p99 are the same
    deterministic quantile estimate the metrics endpoint uses. *)

type config = {
  socket : string;
  requests : int;  (** total requests across all connections *)
  concurrency : int;  (** parallel connections *)
  mix : Vartune_flow.Request.t list;  (** request templates, cycled *)
}

type result = {
  sent : int;
  ok : int;  (** responses with code 0 *)
  failed : int;  (** non-zero codes, decode failures, dropped connections *)
  dedup_hits : int;  (** responses answered with [dedup = true] *)
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  min_ms : float;
  max_ms : float;
}

val default_mix : seed:int -> samples:int -> Vartune_flow.Request.t list
(** The standard cheap-kind mix: statlib, characterize, tune and a live
    report — deliberately no synthesis-heavy kinds, so a fixed request
    count finishes in seconds on a warm store. *)

val run : config -> result

val result_to_json : result -> string
(** One-line JSON with the BENCH_serve.json field vocabulary
    (throughput, latency quantiles, dedup hit rate). *)

val dedup_hit_rate : result -> float
(** [dedup_hits / sent], 0 when nothing was sent. *)
