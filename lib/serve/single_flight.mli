(** Single-flight deduplication of identical in-flight computations.

    [run t ~key f] coalesces concurrent calls with equal [key]: the
    first caller (the {e leader}) computes [f ()]; callers arriving
    while it is still running (the {e followers}) block and receive the
    leader's result — one computation, N answers.  The entry is removed
    once the leader finishes, so a call arriving {e after} completion
    computes afresh (and typically hits the artifact store instead;
    the two layers compose into "at most one computation at a time,
    at most one computation ever when a store is attached").

    If [f] raises, every coalesced caller re-raises the same exception
    and nothing is cached — a failed flight leaves no trace. *)

type 'a t

val create : unit -> 'a t

val run : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [run t ~key f] is [(result, dedup)]: [dedup] is [false] for the
    leader that actually computed and [true] for coalesced followers. *)

val in_flight : 'a t -> int
(** Number of keys currently being computed. *)
