module Request = Vartune_flow.Request
module Response = Vartune_flow.Response

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let request ?id ?priority ?deadline_s t req =
  send_line t (Request.to_line ?id ?priority ?deadline_s req);
  Response.of_line (input_line t.ic)

let get t endpoint =
  send_line t ("GET " ^ endpoint);
  input_line t.ic

(* ------------------------------------------------------------------ *)
(* Retry / backoff discipline                                          *)
(* ------------------------------------------------------------------ *)

(* The same ladder shape as the store's transient-fault policy: a
   bounded number of retries with exponential backoff and a
   deterministic jitter — derived from the policy seed and the attempt
   index, never the wall clock — to decorrelate concurrent retriers.
   The daemon's [retry_after_s] hint is honoured as a floor: the client
   never comes back sooner than the server asked. *)

type retry_policy = { attempts : int; base_backoff_s : float; seed : int }

let default_policy = { attempts = 3; base_backoff_s = 0.0005; seed = 0 }

(* splitmix64 finaliser, self-contained like the fault engine's. *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let jitter ~seed ~attempt =
  let h =
    mix64
      (Int64.add
         (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (attempt + 1)))
         (Int64.of_int seed))
  in
  Int64.to_float (Int64.logand h 0xffL) /. 255.0

let backoff_s policy ~attempt ~hint =
  let ladder =
    policy.base_backoff_s
    *. (2.0 ** float_of_int attempt)
    *. (1.0 +. jitter ~seed:policy.seed ~attempt)
  in
  Float.max ladder (Option.value hint ~default:0.0)

(* A response is retryable exactly when the daemon said so: code 75
   with a [retry_after_s] hint (an overload shed).  Drain 75s carry a
   hint too, but by then the socket is going away, so the resend raises
   a transport error the caller already handles. *)
let request_retrying ?id ?priority ?deadline_s ?(policy = default_policy) t req =
  let rec go attempt retries =
    match request ?id ?priority ?deadline_s t req with
    | Error _ as e -> (e, retries)
    | Ok resp
      when resp.Response.code = 75
           && resp.Response.retry_after_s <> None
           && attempt < policy.attempts ->
      Unix.sleepf (backoff_s policy ~attempt ~hint:resp.Response.retry_after_s);
      go (attempt + 1) (retries + 1)
    | Ok _ as ok -> (ok, retries)
  in
  go 0 0
