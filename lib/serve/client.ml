module Request = Vartune_flow.Request
module Response = Vartune_flow.Response

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let request ?id t req =
  send_line t (Request.to_line ?id req);
  Response.of_line (input_line t.ic)

let get t endpoint =
  send_line t ("GET " ^ endpoint);
  input_line t.ic
