type 'a cell = {
  m : Mutex.t;
  c : Condition.t;
  mutable outcome : ('a, exn) result option;
}

type 'a t = { lock : Mutex.t; pending : (string, 'a cell) Hashtbl.t }

let create () = { lock = Mutex.create (); pending = Hashtbl.create 16 }

let in_flight t = Mutex.protect t.lock (fun () -> Hashtbl.length t.pending)

let run t ~key f =
  let role =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.pending key with
        | Some cell -> `Follow cell
        | None ->
          let cell = { m = Mutex.create (); c = Condition.create (); outcome = None } in
          Hashtbl.add t.pending key cell;
          `Lead cell)
  in
  match role with
  | `Lead cell ->
    let outcome = try Ok (f ()) with exn -> Error exn in
    (* unregister before publishing: a caller that arrives after this
       point leads its own flight, one registered before it always
       finds the published outcome *)
    Mutex.protect t.lock (fun () -> Hashtbl.remove t.pending key);
    Mutex.protect cell.m (fun () ->
        cell.outcome <- Some outcome;
        Condition.broadcast cell.c);
    (match outcome with Ok v -> (v, false) | Error exn -> raise exn)
  | `Follow cell -> (
    let outcome =
      Mutex.protect cell.m (fun () ->
          while cell.outcome = None do
            Condition.wait cell.c cell.m
          done;
          Option.get cell.outcome)
    in
    match outcome with Ok v -> (v, true) | Error exn -> raise exn)
