module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Obs = Vartune_obs.Obs
module Json = Vartune_obs.Json
module Tuning_method = Vartune_tuning.Tuning_method

type config = {
  socket : string;
  requests : int;
  concurrency : int;
  mix : Request.t list;
}

type result = {
  sent : int;
  ok : int;
  failed : int;
  dedup_hits : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  min_ms : float;
  max_ms : float;
}

let default_mix ~seed ~samples =
  let base = { Request.seed; samples } in
  let tuning =
    {
      Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
      criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02;
    }
  in
  [
    Request.Statlib base;
    Request.Characterize;
    Request.Tune { base; tuning };
    Request.Report { trace = None; metrics = None; run_dir = None; json = true };
  ]

(* One shared latency accumulator in the Obs.Buckets layout; a mutex is
   plenty at request granularity. *)
type acc = {
  lock : Mutex.t;
  counts : int array;
  mutable total : int;
  mutable min_ms : float;
  mutable max_ms : float;
  mutable ok : int;
  mutable failed : int;
  mutable dedup : int;
}

let run config =
  if config.requests <= 0 || config.concurrency <= 0 || config.mix = [] then
    invalid_arg "Loadgen.run: requests, concurrency and mix must be non-empty";
  let templates = Array.of_list config.mix in
  let acc =
    {
      lock = Mutex.create ();
      counts = Array.make Obs.Buckets.count 0;
      total = 0;
      min_ms = infinity;
      max_ms = neg_infinity;
      ok = 0;
      failed = 0;
      dedup = 0;
    }
  in
  let next = Atomic.make 0 in
  let worker () =
    let client = Client.connect config.socket in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < config.requests then begin
        (* [concurrency] consecutive indices share a template so the
           parallel workers overlap on identical requests *)
        let req =
          templates.(i / config.concurrency mod Array.length templates)
        in
        let t0 = Obs.now_ns () in
        let observed =
          match Client.request ~id:i client req with
          | Ok resp ->
            let ms = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6 in
            Some (resp, ms)
          | Error _ -> None
          | exception (End_of_file | Unix.Unix_error _ | Sys_error _) -> None
        in
        Mutex.protect acc.lock (fun () ->
            match observed with
            | None -> acc.failed <- acc.failed + 1
            | Some (resp, ms) ->
              acc.counts.(Obs.Buckets.index ms) <- acc.counts.(Obs.Buckets.index ms) + 1;
              acc.total <- acc.total + 1;
              acc.min_ms <- Float.min acc.min_ms ms;
              acc.max_ms <- Float.max acc.max_ms ms;
              if resp.Response.code = 0 then acc.ok <- acc.ok + 1
              else acc.failed <- acc.failed + 1;
              if resp.Response.dedup then acc.dedup <- acc.dedup + 1);
        loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init config.concurrency (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let quantile q =
    if acc.total = 0 then 0.0
    else
      Obs.Buckets.quantile ~counts:acc.counts ~total:acc.total ~min_v:acc.min_ms
        ~max_v:acc.max_ms q
  in
  let sent = acc.ok + acc.failed in
  {
    sent;
    ok = acc.ok;
    failed = acc.failed;
    dedup_hits = acc.dedup;
    elapsed_s;
    throughput_rps = (if elapsed_s > 0.0 then float_of_int sent /. elapsed_s else 0.0);
    p50_ms = quantile 0.5;
    p90_ms = quantile 0.9;
    p99_ms = quantile 0.99;
    min_ms = (if acc.total = 0 then 0.0 else acc.min_ms);
    max_ms = (if acc.total = 0 then 0.0 else acc.max_ms);
  }

let dedup_hit_rate r =
  if r.sent = 0 then 0.0 else float_of_int r.dedup_hits /. float_of_int r.sent

let result_to_json r =
  Printf.sprintf
    "{\"requests\":%d,\"ok\":%d,\"failed\":%d,\"dedup_hits\":%d,\"dedup_hit_rate\":%s,\"elapsed_s\":%s,\"throughput_rps\":%s,\"p50_ms\":%s,\"p90_ms\":%s,\"p99_ms\":%s,\"min_ms\":%s,\"max_ms\":%s}"
    r.sent r.ok r.failed r.dedup_hits
    (Json.float_string (dedup_hit_rate r))
    (Json.float_string r.elapsed_s)
    (Json.float_string r.throughput_rps)
    (Json.float_string r.p50_ms) (Json.float_string r.p90_ms)
    (Json.float_string r.p99_ms) (Json.float_string r.min_ms)
    (Json.float_string r.max_ms)
