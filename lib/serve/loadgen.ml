module Request = Vartune_flow.Request
module Response = Vartune_flow.Response
module Obs = Vartune_obs.Obs
module Json = Vartune_obs.Json
module Tuning_method = Vartune_tuning.Tuning_method

type config = {
  socket : string;
  requests : int;
  concurrency : int;
  mix : Request.t list;
}

type result = {
  sent : int;
  ok : int;
  failed : int;
  dedup_hits : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  min_ms : float;
  max_ms : float;
}

let default_mix ~seed ~samples =
  let base = { Request.seed; samples } in
  let tuning =
    {
      Tuning_method.population = Vartune_tuning.Cluster.Per_cell;
      criterion = Vartune_tuning.Threshold.Sigma_ceiling 0.02;
    }
  in
  [
    Request.Statlib base;
    Request.Characterize;
    Request.Tune { base; tuning };
    Request.Report { trace = None; metrics = None; run_dir = None; json = true };
  ]

(* One shared latency accumulator in the Obs.Buckets layout; a mutex is
   plenty at request granularity. *)
type acc = {
  lock : Mutex.t;
  counts : int array;
  mutable total : int;
  mutable min_ms : float;
  mutable max_ms : float;
  mutable ok : int;
  mutable failed : int;
  mutable dedup : int;
}

let run config =
  if config.requests <= 0 || config.concurrency <= 0 || config.mix = [] then
    invalid_arg "Loadgen.run: requests, concurrency and mix must be non-empty";
  let templates = Array.of_list config.mix in
  let acc =
    {
      lock = Mutex.create ();
      counts = Array.make Obs.Buckets.count 0;
      total = 0;
      min_ms = infinity;
      max_ms = neg_infinity;
      ok = 0;
      failed = 0;
      dedup = 0;
    }
  in
  let next = Atomic.make 0 in
  let worker () =
    let client = Client.connect config.socket in
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < config.requests then begin
        (* [concurrency] consecutive indices share a template so the
           parallel workers overlap on identical requests *)
        let req =
          templates.(i / config.concurrency mod Array.length templates)
        in
        let t0 = Obs.now_ns () in
        let observed =
          match Client.request ~id:i client req with
          | Ok resp ->
            let ms = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6 in
            Some (resp, ms)
          | Error _ -> None
          | exception (End_of_file | Unix.Unix_error _ | Sys_error _) -> None
        in
        Mutex.protect acc.lock (fun () ->
            match observed with
            | None -> acc.failed <- acc.failed + 1
            | Some (resp, ms) ->
              acc.counts.(Obs.Buckets.index ms) <- acc.counts.(Obs.Buckets.index ms) + 1;
              acc.total <- acc.total + 1;
              acc.min_ms <- Float.min acc.min_ms ms;
              acc.max_ms <- Float.max acc.max_ms ms;
              if resp.Response.code = 0 then acc.ok <- acc.ok + 1
              else acc.failed <- acc.failed + 1;
              if resp.Response.dedup then acc.dedup <- acc.dedup + 1);
        loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init config.concurrency (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let quantile q =
    if acc.total = 0 then 0.0
    else
      Obs.Buckets.quantile ~counts:acc.counts ~total:acc.total ~min_v:acc.min_ms
        ~max_v:acc.max_ms q
  in
  let sent = acc.ok + acc.failed in
  {
    sent;
    ok = acc.ok;
    failed = acc.failed;
    dedup_hits = acc.dedup;
    elapsed_s;
    throughput_rps = (if elapsed_s > 0.0 then float_of_int sent /. elapsed_s else 0.0);
    p50_ms = quantile 0.5;
    p90_ms = quantile 0.9;
    p99_ms = quantile 0.99;
    min_ms = (if acc.total = 0 then 0.0 else acc.min_ms);
    max_ms = (if acc.total = 0 then 0.0 else acc.max_ms);
  }

let dedup_hit_rate r =
  if r.sent = 0 then 0.0 else float_of_int r.dedup_hits /. float_of_int r.sent

(* ------------------------------------------------------------------ *)
(* Overload mode                                                       *)
(* ------------------------------------------------------------------ *)

type overload_config = {
  o_socket : string;
  burst : int;
  o_concurrency : int;
  o_seed : int;
  o_samples : int;
  retry : Client.retry_policy;
}

type class_stats = {
  c_sent : int;
  c_ok : int;
  c_shed : int;  (** final reply was still a code-75 shed after retries *)
  c_deadline_dropped : int;
  c_failed : int;  (** other non-zero codes, decode errors, transport drops *)
  c_retries : int;  (** retries absorbed by the client's backoff loop *)
  c_p50_ms : float;
  c_p90_ms : float;
  c_p99_ms : float;
  c_max_ms : float;
}

type overload_result = {
  interactive : class_stats;
  batch : class_stats;
  o_elapsed_s : float;
  replies : int;
  code70 : int;
}

type class_acc = {
  ca_counts : int array;  (* latency buckets over admitted (code-0) replies *)
  mutable ca_total : int;
  mutable ca_min : float;
  mutable ca_max : float;
  mutable ca_sent : int;
  mutable ca_ok : int;
  mutable ca_shed : int;
  mutable ca_deadline : int;
  mutable ca_failed : int;
  mutable ca_retries : int;
}

let class_acc () =
  {
    ca_counts = Array.make Obs.Buckets.count 0;
    ca_total = 0;
    ca_min = infinity;
    ca_max = neg_infinity;
    ca_sent = 0;
    ca_ok = 0;
    ca_shed = 0;
    ca_deadline = 0;
    ca_failed = 0;
    ca_retries = 0;
  }

let class_stats_of a =
  let quantile q =
    if a.ca_total = 0 then 0.0
    else
      Obs.Buckets.quantile ~counts:a.ca_counts ~total:a.ca_total ~min_v:a.ca_min
        ~max_v:a.ca_max q
  in
  {
    c_sent = a.ca_sent;
    c_ok = a.ca_ok;
    c_shed = a.ca_shed;
    c_deadline_dropped = a.ca_deadline;
    c_failed = a.ca_failed;
    c_retries = a.ca_retries;
    c_p50_ms = quantile 0.5;
    c_p90_ms = quantile 0.9;
    c_p99_ms = quantile 0.99;
    c_max_ms = (if a.ca_total = 0 then 0.0 else a.ca_max);
  }

(* A deadline drop comes back as the same typed 75 as a queue-full
   shed; the operator message tells them apart. *)
let is_deadline_message = function
  | None -> false
  | Some msg ->
    let needle = "deadline" in
    let n = String.length needle and m = String.length msg in
    let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
    scan 0

let run_overload config =
  if config.burst <= 0 || config.o_concurrency <= 0 then
    invalid_arg "Loadgen.run_overload: burst and concurrency must be positive";
  let lock = Mutex.create () in
  let inter = class_acc () and batch = class_acc () in
  let replies = ref 0 and code70 = ref 0 in
  let next = Atomic.make 0 in
  (* Every 4th request is interactive (a live report); the rest are
     batch statlib builds with per-index seeds, so single-flight cannot
     coalesce the burst and the queue genuinely fills. *)
  let request_for i =
    if i mod 4 = 0 then
      ( Request.Report { trace = None; metrics = None; run_dir = None; json = true },
        Request.Interactive )
    else
      ( Request.Statlib { Request.seed = config.o_seed + i; samples = config.o_samples },
        Request.Batch )
  in
  let worker () =
    match Client.connect config.o_socket with
    | exception (Unix.Unix_error _ | Sys_error _) ->
      (* connection refused: this thread sends nothing; the indices it
         would have claimed are accounted as failed after the join *)
      ()
    | client ->
    Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < config.burst then begin
        let req, priority = request_for i in
        let t0 = Obs.now_ns () in
        let outcome =
          match
            Client.request_retrying ~id:i ~priority ~policy:config.retry client req
          with
          | (Ok resp, retries) ->
            let ms = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6 in
            `Reply (resp, ms, retries)
          | (Error _, retries) -> `Lost retries
          | exception (End_of_file | Unix.Unix_error _ | Sys_error _) -> `Lost 0
        in
        Mutex.protect lock (fun () ->
            let a =
              match priority with
              | Request.Interactive -> inter
              | Request.Batch -> batch
            in
            a.ca_sent <- a.ca_sent + 1;
            match outcome with
            | `Lost retries ->
              a.ca_failed <- a.ca_failed + 1;
              a.ca_retries <- a.ca_retries + retries
            | `Reply (resp, ms, retries) ->
              incr replies;
              a.ca_retries <- a.ca_retries + retries;
              (match resp.Response.code with
              | 0 ->
                a.ca_ok <- a.ca_ok + 1;
                a.ca_counts.(Obs.Buckets.index ms) <-
                  a.ca_counts.(Obs.Buckets.index ms) + 1;
                a.ca_total <- a.ca_total + 1;
                a.ca_min <- Float.min a.ca_min ms;
                a.ca_max <- Float.max a.ca_max ms
              | 75 ->
                if is_deadline_message resp.Response.error then
                  a.ca_deadline <- a.ca_deadline + 1
                else a.ca_shed <- a.ca_shed + 1
              | 70 ->
                incr code70;
                a.ca_failed <- a.ca_failed + 1
              | _ -> a.ca_failed <- a.ca_failed + 1));
        loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init config.o_concurrency (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  (* every request must appear in the accounting exactly once: indices
     no worker claimed (all connections refused) are failures, not a
     silent shrink of the burst *)
  let rec account_unsent () =
    let i = Atomic.fetch_and_add next 1 in
    if i < config.burst then begin
      let _, priority = request_for i in
      let a =
        match priority with Request.Interactive -> inter | Request.Batch -> batch
      in
      a.ca_sent <- a.ca_sent + 1;
      a.ca_failed <- a.ca_failed + 1;
      account_unsent ()
    end
  in
  account_unsent ();
  {
    interactive = class_stats_of inter;
    batch = class_stats_of batch;
    o_elapsed_s = Unix.gettimeofday () -. t0;
    replies = !replies;
    code70 = !code70;
  }

let class_stats_json c =
  Printf.sprintf
    "{\"sent\":%d,\"ok\":%d,\"shed\":%d,\"deadline_dropped\":%d,\"failed\":%d,\"retries\":%d,\"p50_ms\":%s,\"p90_ms\":%s,\"p99_ms\":%s,\"max_ms\":%s}"
    c.c_sent c.c_ok c.c_shed c.c_deadline_dropped c.c_failed c.c_retries
    (Json.float_string c.c_p50_ms)
    (Json.float_string c.c_p90_ms)
    (Json.float_string c.c_p99_ms)
    (Json.float_string c.c_max_ms)

let overload_result_to_json r =
  Printf.sprintf
    "{\"interactive\":%s,\"batch\":%s,\"elapsed_s\":%s,\"replies\":%d,\"code70\":%d,\"sheds\":%d}"
    (class_stats_json r.interactive)
    (class_stats_json r.batch)
    (Json.float_string r.o_elapsed_s)
    r.replies r.code70
    (r.interactive.c_shed + r.batch.c_shed)

let result_to_json r =
  Printf.sprintf
    "{\"requests\":%d,\"ok\":%d,\"failed\":%d,\"dedup_hits\":%d,\"dedup_hit_rate\":%s,\"elapsed_s\":%s,\"throughput_rps\":%s,\"p50_ms\":%s,\"p90_ms\":%s,\"p99_ms\":%s,\"min_ms\":%s,\"max_ms\":%s}"
    r.sent r.ok r.failed r.dedup_hits
    (Json.float_string (dedup_hit_rate r))
    (Json.float_string r.elapsed_s)
    (Json.float_string r.throughput_rps)
    (Json.float_string r.p50_ms) (Json.float_string r.p90_ms)
    (Json.float_string r.p99_ms) (Json.float_string r.min_ms)
    (Json.float_string r.max_ms)
