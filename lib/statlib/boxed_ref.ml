(* Frozen copy of the seed (pre-flattening) boxed Welford accumulator.

   [Statistical] now accumulates into flat SoA float arrays through
   [Vartune_util.Kernel]; this module keeps the original per-entry
   Grid.get/set implementation alive as an executable specification.
   Tests assert bit-identical output between the two paths, and bench
   Part 7 times both to attribute the flattening win.  Nothing in the
   pipeline calls this module. *)

module Grid = Vartune_util.Grid
module Pool = Vartune_util.Pool
module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Pin = Vartune_liberty.Pin
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library

type acc = { template : Lut.t; mutable count : int; mean : Grid.t; m2 : Grid.t }

let acc_create lut =
  let rows, cols = Lut.dims lut in
  { template = lut; count = 0; mean = Grid.create ~rows ~cols 0.0; m2 = Grid.create ~rows ~cols 0.0 }

let acc_update acc lut =
  if not (Lut.same_axes acc.template lut) then
    invalid_arg "Statistical: sample library has mismatched table axes";
  acc.count <- acc.count + 1;
  let n = float_of_int acc.count in
  let rows, cols = Lut.dims lut in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let x = Lut.get lut i j in
      let m = Grid.get acc.mean i j in
      let delta = x -. m in
      let m' = m +. (delta /. n) in
      Grid.set acc.mean i j m';
      Grid.set acc.m2 i j (Grid.get acc.m2 i j +. (delta *. (x -. m')))
    done
  done

(* Chan et al. pairwise combination of two Welford partials, entry-wise
   over the grids. *)
let acc_merge a b =
  if not (Lut.same_axes a.template b.template) then
    invalid_arg "Statistical: sample library has mismatched table axes";
  if b.count > 0 then begin
    if a.count = 0 then begin
      a.count <- b.count;
      let rows, cols = Lut.dims a.template in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          Grid.set a.mean i j (Grid.get b.mean i j);
          Grid.set a.m2 i j (Grid.get b.m2 i j)
        done
      done
    end
    else begin
      let na = float_of_int a.count and nb = float_of_int b.count in
      let n = na +. nb in
      let rows, cols = Lut.dims a.template in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          let ma = Grid.get a.mean i j and mb = Grid.get b.mean i j in
          let delta = mb -. ma in
          Grid.set a.mean i j (ma +. (delta *. (nb /. n)));
          Grid.set a.m2 i j
            (Grid.get a.m2 i j +. Grid.get b.m2 i j
            +. (delta *. delta *. (na *. nb /. n)))
        done
      done;
      a.count <- a.count + b.count
    end
  end

let acc_mean acc =
  Lut.make ~slews:(Lut.slews acc.template) ~loads:(Lut.loads acc.template) ~values:acc.mean

let acc_sigma acc =
  let values =
    if acc.count < 2 then Grid.map (fun _ -> 0.0) acc.m2
    else
      Grid.map
        (fun m2 ->
          let v = m2 /. float_of_int (acc.count - 1) in
          sqrt (if v < 0.0 then 0.0 else v))
        acc.m2
  in
  Lut.make ~slews:(Lut.slews acc.template) ~loads:(Lut.loads acc.template) ~values

type arc_acc = {
  proto : Arc.t;
  rise_delay : acc;
  fall_delay : acc;
  rise_transition : acc;
  fall_transition : acc;
}

let arc_acc_create (a : Arc.t) =
  {
    proto = a;
    rise_delay = acc_create a.rise_delay;
    fall_delay = acc_create a.fall_delay;
    rise_transition = acc_create a.rise_transition;
    fall_transition = acc_create a.fall_transition;
  }

let arc_acc_update acc (a : Arc.t) =
  if a.related_pin <> acc.proto.related_pin then
    invalid_arg "Statistical: sample library has mismatched arc order";
  acc_update acc.rise_delay a.rise_delay;
  acc_update acc.fall_delay a.fall_delay;
  acc_update acc.rise_transition a.rise_transition;
  acc_update acc.fall_transition a.fall_transition

let arc_acc_merge a b =
  if b.proto.Arc.related_pin <> a.proto.Arc.related_pin then
    invalid_arg "Statistical: sample library has mismatched arc order";
  acc_merge a.rise_delay b.rise_delay;
  acc_merge a.fall_delay b.fall_delay;
  acc_merge a.rise_transition b.rise_transition;
  acc_merge a.fall_transition b.fall_transition

let arc_acc_finish acc =
  Arc.make ~related_pin:acc.proto.related_pin ~sense:acc.proto.sense
    ~rise_delay:(acc_mean acc.rise_delay)
    ~fall_delay:(acc_mean acc.fall_delay)
    ~rise_transition:(acc_mean acc.rise_transition)
    ~fall_transition:(acc_mean acc.fall_transition)
    ~rise_delay_sigma:(acc_sigma acc.rise_delay)
    ~fall_delay_sigma:(acc_sigma acc.fall_delay)
    ?internal_power:acc.proto.internal_power ()

type cell_acc = { proto_cell : Cell.t; arcs : arc_acc array }

let cell_acc_create (c : Cell.t) =
  { proto_cell = c; arcs = Array.of_list (List.map arc_acc_create (Cell.arcs c)) }

let cell_acc_update acc (c : Cell.t) =
  if c.name <> acc.proto_cell.name then
    invalid_arg "Statistical: sample library has mismatched cell order";
  let arcs = Array.of_list (Cell.arcs c) in
  if Array.length arcs <> Array.length acc.arcs then
    invalid_arg "Statistical: sample library has mismatched arc count";
  Array.iteri (fun i a -> arc_acc_update acc.arcs.(i) a) arcs

let cell_acc_merge a b =
  if b.proto_cell.Cell.name <> a.proto_cell.Cell.name then
    invalid_arg "Statistical: sample library has mismatched cell order";
  if Array.length b.arcs <> Array.length a.arcs then
    invalid_arg "Statistical: sample library has mismatched arc count";
  Array.iteri (fun i arc -> arc_acc_merge a.arcs.(i) arc) b.arcs

let cell_acc_finish acc =
  let merged = Array.map arc_acc_finish acc.arcs in
  let cursor = ref 0 in
  let take n =
    let slice = Array.sub merged !cursor n in
    cursor := !cursor + n;
    Array.to_list slice
  in
  let c = acc.proto_cell in
  let pins =
    List.map
      (fun (p : Pin.t) ->
        if Pin.is_output p then
          Pin.output ~name:p.name ?max_capacitance:p.max_capacitance
            ~arcs:(take (List.length p.arcs)) ()
        else p)
      c.pins
  in
  Cell.make ~name:c.name ~family:c.family ~drive_strength:c.drive_strength ~kind:c.kind
    ~area:c.area ~pins ~setup_time:c.setup_time ~hold_time:c.hold_time
    ?clock_pin:c.clock_pin ~leakage:c.leakage ()

(* Same fixed block partition as [Statistical.merge_chunk]. *)
let merge_chunk = 4

type chunk_acc = { first_name : string; first_corner : string; cell_accs : cell_acc array }

let accumulate_chunk gen ~lo ~hi =
  let first = gen lo in
  let cell_accs = Array.of_list (List.map cell_acc_create (Library.cells first)) in
  let feed lib =
    let cells = Array.of_list (Library.cells lib) in
    if Array.length cells <> Array.length cell_accs then
      invalid_arg "Statistical: sample library has mismatched cell count";
    Array.iteri (fun i c -> cell_acc_update cell_accs.(i) c) cells
  in
  feed first;
  for index = lo + 1 to hi - 1 do
    feed (gen index)
  done;
  { first_name = Library.name first; first_corner = Library.corner first; cell_accs }

let chunk_merge a b =
  if Array.length b.cell_accs <> Array.length a.cell_accs then
    invalid_arg "Statistical: sample library has mismatched cell count";
  Array.iteri (fun i c -> cell_acc_merge a.cell_accs.(i) c) b.cell_accs;
  a

let of_stream ?pool ~n gen =
  if n <= 0 then invalid_arg "Statistical.of_stream: n must be positive";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let nchunks = (n + merge_chunk - 1) / merge_chunk in
  let chunks =
    Pool.map_chunked pool
      (fun c ->
        let lo = c * merge_chunk in
        accumulate_chunk gen ~lo ~hi:(min n (lo + merge_chunk)))
      (List.init nchunks Fun.id)
  in
  let merged =
    match chunks with
    | [] -> assert false
    | head :: rest -> List.fold_left chunk_merge head rest
  in
  let cells = Array.to_list (Array.map cell_acc_finish merged.cell_accs) in
  Library.make ~name:(merged.first_name ^ "_stat") ~corner:merged.first_corner ~cells

let of_libraries = function
  | [] -> invalid_arg "Statistical.of_libraries: empty list"
  | libs ->
    let arr = Array.of_list libs in
    of_stream ~n:(Array.length arr) (fun i -> arr.(i))
