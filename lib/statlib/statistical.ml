module Grid = Vartune_util.Grid
module Pool = Vartune_util.Pool
module Kernel = Vartune_util.Kernel
module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Pin = Vartune_liberty.Pin
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library
module Obs = Vartune_obs.Obs

let c_samples = Obs.Counter.make "statlib.samples"
let c_entries = Obs.Counter.make "statlib.lut_entries_merged"

(* ------------------------------------------------------------------ *)
(* Flat SoA layout                                                     *)
(* ------------------------------------------------------------------ *)

(* A sample library's statistics live in ONE flat float array per
   accumulator role (mean, m2, sample scratch), not in per-entry or
   per-table records.  The [layout] is the structural skeleton derived
   from a chunk's first sample: for flattened arc [a] (cells in library
   order, arcs in [Cell.arcs] order), the four tables occupy the block

     [offset.(a) ... offset.(a) + 4 * size.(a))

   in sub-block order rise_delay, fall_delay, rise_transition,
   fall_transition, each sub-block the row-major table surface.  The
   entry-wise Welford update and Chan merge (paper Section IV) then run
   once over the whole array through Vartune_util.Kernel — contiguous,
   unboxed, no per-entry structure. *)
type layout = {
  proto_cells : Cell.t array;  (* structure: names, pins, leakage, ... *)
  arc_protos : Arc.t array;  (* flattened arc order; axes + power protos *)
  cell_first_arc : int array;  (* cell -> first index into arc_protos *)
  cell_arc_count : int array;
  offset : int array;  (* arc -> start of its 4-table block *)
  size : int array;  (* arc -> entries in ONE table (rows * cols) *)
  total : int;  (* length of the flat arrays *)
}

let layout_of_library lib =
  let proto_cells = Array.of_list (Library.cells lib) in
  let ncells = Array.length proto_cells in
  let cell_first_arc = Array.make ncells 0 in
  let cell_arc_count = Array.make ncells 0 in
  let arcs = ref [] in
  let narcs = ref 0 in
  Array.iteri
    (fun ci c ->
      let cell_arcs = Cell.arcs c in
      cell_first_arc.(ci) <- !narcs;
      cell_arc_count.(ci) <- List.length cell_arcs;
      narcs := !narcs + List.length cell_arcs;
      List.iter (fun a -> arcs := a :: !arcs) cell_arcs)
    proto_cells;
  let arc_protos = Array.of_list (List.rev !arcs) in
  let offset = Array.make (Array.length arc_protos) 0 in
  let size = Array.make (Array.length arc_protos) 0 in
  let total = ref 0 in
  Array.iteri
    (fun ai (a : Arc.t) ->
      let rows, cols = Lut.dims a.rise_delay in
      offset.(ai) <- !total;
      size.(ai) <- rows * cols;
      total := !total + (4 * rows * cols))
    arc_protos;
  { proto_cells; arc_protos; cell_first_arc; cell_arc_count; offset; size; total = !total }

(* Copy one sample library's surfaces into [buf] (length [total]),
   validating its structure against the layout with the same checks —
   and the same error messages — the boxed accumulator made per
   update.  Every entry of [buf] is overwritten (the arc blocks tile
   [0, total)), so one scratch buffer serves a whole sample stream. *)
let flatten_into layout lib buf =
  let cells = Array.of_list (Library.cells lib) in
  if Array.length cells <> Array.length layout.proto_cells then
    invalid_arg "Statistical: sample library has mismatched cell count";
  let blit_table (proto : Lut.t) (table : Lut.t) pos =
    if not (Lut.same_axes proto table) then
      invalid_arg "Statistical: sample library has mismatched table axes";
    let data = Grid.unsafe_data (Lut.values table) in
    Array.blit data 0 buf pos (Array.length data)
  in
  Array.iteri
    (fun ci (c : Cell.t) ->
      if c.name <> layout.proto_cells.(ci).Cell.name then
        invalid_arg "Statistical: sample library has mismatched cell order";
      let arcs = Array.of_list (Cell.arcs c) in
      if Array.length arcs <> layout.cell_arc_count.(ci) then
        invalid_arg "Statistical: sample library has mismatched arc count";
      let first = layout.cell_first_arc.(ci) in
      Array.iteri
        (fun k (a : Arc.t) ->
          let ai = first + k in
          let proto = layout.arc_protos.(ai) in
          if a.related_pin <> proto.Arc.related_pin then
            invalid_arg "Statistical: sample library has mismatched arc order";
          let off = layout.offset.(ai) and sz = layout.size.(ai) in
          blit_table proto.Arc.rise_delay a.rise_delay off;
          blit_table proto.Arc.fall_delay a.fall_delay (off + sz);
          blit_table proto.Arc.rise_transition a.rise_transition (off + (2 * sz));
          blit_table proto.Arc.fall_transition a.fall_transition (off + (3 * sz)))
        arcs)
    cells

(* Structural agreement of two chunk layouts, checked in the order the
   boxed per-cell merge checked (count, cell order, arc count, arc
   order, axes) so a malformed stream raises the identical message. *)
let check_layouts_agree a b =
  if Array.length b.proto_cells <> Array.length a.proto_cells then
    invalid_arg "Statistical: sample library has mismatched cell count";
  Array.iteri
    (fun ci (ca : Cell.t) ->
      let cb = b.proto_cells.(ci) in
      if cb.Cell.name <> ca.Cell.name then
        invalid_arg "Statistical: sample library has mismatched cell order";
      if b.cell_arc_count.(ci) <> a.cell_arc_count.(ci) then
        invalid_arg "Statistical: sample library has mismatched arc count";
      let first = a.cell_first_arc.(ci) in
      for k = 0 to a.cell_arc_count.(ci) - 1 do
        let pa = a.arc_protos.(first + k) and pb = b.arc_protos.(b.cell_first_arc.(ci) + k) in
        if pb.Arc.related_pin <> pa.Arc.related_pin then
          invalid_arg "Statistical: sample library has mismatched arc order";
        if
          not
            (Lut.same_axes pa.Arc.rise_delay pb.Arc.rise_delay
            && Lut.same_axes pa.Arc.fall_delay pb.Arc.fall_delay
            && Lut.same_axes pa.Arc.rise_transition pb.Arc.rise_transition
            && Lut.same_axes pa.Arc.fall_transition pb.Arc.fall_transition)
        then invalid_arg "Statistical: sample library has mismatched table axes"
      done)
    a.proto_cells

(* ------------------------------------------------------------------ *)
(* Chunked Welford accumulation                                        *)
(* ------------------------------------------------------------------ *)

(* Samples per worker task.  The block partition of [0, n) is fixed by
   this constant — never by the job count — so the chunked merge below
   produces bit-identical libraries at any parallelism, including the
   jobs = 1 serial fallback. *)
let merge_chunk = 4

type chunk_acc = {
  first_name : string;
  first_corner : string;
  layout : layout;
  mutable count : int;
  mean : float array;
  m2 : float array;
}

let accumulate_chunk gen ~lo ~hi =
  Obs.span "statlib.chunk"
    ~attrs:(fun () -> [ ("lo", string_of_int lo); ("hi", string_of_int hi) ])
    (fun () ->
      let first = gen lo in
      let layout = layout_of_library first in
      let mean = Array.make layout.total 0.0 in
      let m2 = Array.make layout.total 0.0 in
      (* One reusable scratch buffer: each sample library streams
         through it and is dead before the next is generated — the
         chunk never holds more than one sample's surfaces beyond the
         running statistics. *)
      let scratch = Array.make layout.total 0.0 in
      let acc = { first_name = Library.name first; first_corner = Library.corner first;
                  layout; count = 0; mean; m2 } in
      let feed lib =
        flatten_into layout lib scratch;
        acc.count <- acc.count + 1;
        Kernel.Welford.update ~n:acc.count ~mean ~m2 scratch
      in
      feed first;
      for index = lo + 1 to hi - 1 do
        feed (gen index)
      done;
      Obs.Counter.add c_samples (hi - lo);
      Obs.Counter.add c_entries ((hi - lo) * layout.total);
      acc)

(* Chan et al. pairwise combination: [a] is the left (lower-index)
   sample block and absorbs [b], one kernel pass over the whole flat
   surface.  The zero-count copy stays a plain blit, exactly as the
   boxed accumulator special-cased it. *)
let chunk_merge a b =
  check_layouts_agree a.layout b.layout;
  if b.count > 0 then begin
    if a.count = 0 then begin
      Array.blit b.mean 0 a.mean 0 a.layout.total;
      Array.blit b.m2 0 a.m2 0 a.layout.total;
      a.count <- b.count
    end
    else begin
      Kernel.Welford.merge ~na:a.count ~nb:b.count ~mean_a:a.mean ~m2_a:a.m2 ~mean_b:b.mean
        ~m2_b:b.m2;
      a.count <- a.count + b.count
    end
  end;
  a

(* ------------------------------------------------------------------ *)
(* Rebuilding the library from the flat statistics                     *)
(* ------------------------------------------------------------------ *)

let finish_arc chunk ai =
  let layout = chunk.layout in
  let proto = layout.arc_protos.(ai) in
  let off = layout.offset.(ai) and sz = layout.size.(ai) in
  let rows, cols = Lut.dims proto.Arc.rise_delay in
  let slews = Lut.slews proto.Arc.rise_delay and loads = Lut.loads proto.Arc.rise_delay in
  let mean_lut k =
    Lut.make ~slews ~loads
      ~values:(Grid.of_flat ~rows ~cols (Array.sub chunk.mean (off + (k * sz)) sz))
  in
  let sigma_lut k =
    let dst = Array.make sz 0.0 in
    Kernel.Welford.sigma_into ~n:chunk.count
      ~m2:(Array.sub chunk.m2 (off + (k * sz)) sz)
      ~dst;
    Lut.make ~slews ~loads ~values:(Grid.of_flat ~rows ~cols dst)
  in
  Arc.make ~related_pin:proto.Arc.related_pin ~sense:proto.Arc.sense
    ~rise_delay:(mean_lut 0) ~fall_delay:(mean_lut 1) ~rise_transition:(mean_lut 2)
    ~fall_transition:(mean_lut 3) ~rise_delay_sigma:(sigma_lut 0)
    ~fall_delay_sigma:(sigma_lut 1) ?internal_power:proto.Arc.internal_power ()

let finish_cell chunk ci =
  (* Rebuild the cell, swapping each output pin's arcs for the merged
     ones.  Arc order is the concatenation order of Cell.arcs. *)
  let layout = chunk.layout in
  let first = layout.cell_first_arc.(ci) in
  let merged = Array.init layout.cell_arc_count.(ci) (fun k -> finish_arc chunk (first + k)) in
  let cursor = ref 0 in
  let take n =
    let slice = Array.sub merged !cursor n in
    cursor := !cursor + n;
    Array.to_list slice
  in
  let c = layout.proto_cells.(ci) in
  let pins =
    List.map
      (fun (p : Pin.t) ->
        if Pin.is_output p then
          Pin.output ~name:p.name ?max_capacitance:p.max_capacitance
            ~arcs:(take (List.length p.arcs)) ()
        else p)
      c.Cell.pins
  in
  Cell.make ~name:c.Cell.name ~family:c.Cell.family ~drive_strength:c.Cell.drive_strength
    ~kind:c.Cell.kind ~area:c.Cell.area ~pins ~setup_time:c.Cell.setup_time
    ~hold_time:c.Cell.hold_time ?clock_pin:c.Cell.clock_pin ~leakage:c.Cell.leakage ()

let finish_library chunk =
  let cells =
    List.init (Array.length chunk.layout.proto_cells) (fun ci -> finish_cell chunk ci)
  in
  Library.make ~name:(chunk.first_name ^ "_stat") ~corner:chunk.first_corner ~cells

(* ------------------------------------------------------------------ *)
(* Streaming merge                                                     *)
(* ------------------------------------------------------------------ *)

let of_stream ?pool ~n gen =
  if n <= 0 then invalid_arg "Statistical.of_stream: n must be positive";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Obs.span "statlib.build"
    ~attrs:(fun () -> [ ("samples", string_of_int n) ])
    (fun () ->
      let nchunks = (n + merge_chunk - 1) / merge_chunk in
      (* map_chunked batches block dispatch only: the [merge_chunk]
         partition and the fold below are what fix the result *)
      let chunks =
        Pool.map_chunked pool
          (fun c ->
            let lo = c * merge_chunk in
            accumulate_chunk gen ~lo ~hi:(min n (lo + merge_chunk)))
          (List.init nchunks Fun.id)
      in
      (* Ordered left-to-right pairwise merge: partials cover fixed index
         blocks, so this fold is scheduling-independent. *)
      let merged =
        Obs.span "statlib.merge"
          ~attrs:(fun () -> [ ("chunks", string_of_int nchunks) ])
          (fun () ->
            match chunks with
            | [] -> assert false
            | head :: rest -> List.fold_left chunk_merge head rest)
      in
      finish_library merged)

let of_libraries = function
  | [] -> invalid_arg "Statistical.of_libraries: empty list"
  | libs ->
    let arr = Array.of_list libs in
    of_stream ~n:(Array.length arr) (fun i -> arr.(i))

module Store = Vartune_store.Store
module Codec = Vartune_store.Codec
module Characterize = Vartune_charlib.Characterize
module Journal = Vartune_journal.Journal

let store_key config ~mismatch ~seed ~n ?specs () =
  let key =
    Characterize.add_config_to_key (Store.Key.v "statlib") config
    |> fun k ->
    Store.Key.float k "sigma_r" mismatch.Vartune_process.Mismatch.sigma_resistance
    |> fun k ->
    Store.Key.float k "sigma_i" mismatch.Vartune_process.Mismatch.sigma_intrinsic
    |> fun k ->
    Store.Key.int k "seed" seed |> fun k -> Store.Key.int k "samples" n
  in
  Characterize.add_specs_to_key key
    (Option.value specs ~default:Vartune_stdcell.Catalog.specs)

(* ------------------------------------------------------------------ *)
(* Checkpointed (resumable) builds                                     *)
(* ------------------------------------------------------------------ *)

(* Partial-state codec: the Welford statistics covering the first
   [blocks] sample blocks, saved to the run's state store at every
   checkpoint.  Floats travel as bit patterns, so a resumed merge
   continues from exactly the state an uninterrupted run would hold at
   the same block boundary — the final library is bit-identical.

   The byte stream is unchanged from the boxed-era codec (per table:
   count, then the mean grid, then the m2 grid, each grid as rows, cols
   and row-major floats), read and written directly from slices of the
   flat arrays — so checkpoints landed by older builds still decode,
   and warm store artifacts stay valid with no version bump.

   Only the mutable statistics are stored.  The structural skeleton
   (cells, pins, arcs, LUT axes, internal power) is rebuilt on decode
   from the proto library — sample 0, regenerated from the recorded
   seed — which is the same proto an uninterrupted left-to-right merge
   carries in its head chunk.  Any mismatch between stored statistics
   and the rebuilt skeleton raises [Codec.Corrupt], the store evicts
   the entry, and the resuming build falls back to an older checkpoint
   or a cold start: a corrupt checkpoint can cost time, never
   correctness. *)

let checkpoint_key ~id ~blocks =
  Store.Key.int (Store.Key.str (Store.Key.v "statlib_partial") "statlib" id) "blocks" blocks

(* One table surface of one accumulator role, as the boxed w_grid
   wrote it: dimensions then the row-major floats — here a direct
   slice walk of the flat array. *)
let w_surface b ~rows ~cols data pos =
  Codec.w_int b rows;
  Codec.w_int b cols;
  for k = pos to pos + (rows * cols) - 1 do
    Codec.w_float b (Array.unsafe_get data k)
  done

let r_surface_into r ~rows ~cols data pos =
  let stored_rows = Codec.r_int r in
  let stored_cols = Codec.r_int r in
  if stored_rows <> rows || stored_cols <> cols then
    raise (Codec.Corrupt "statlib partial: grid dimensions mismatch");
  for k = pos to pos + (rows * cols) - 1 do
    Array.unsafe_set data k (Codec.r_float r)
  done

let w_table_acc b chunk ~rows ~cols pos =
  Codec.w_int b chunk.count;
  w_surface b ~rows ~cols chunk.mean pos;
  w_surface b ~rows ~cols chunk.m2 pos

let r_table_acc_into ~expected_count r chunk ~rows ~cols pos =
  let count = Codec.r_int r in
  if count <> expected_count then
    raise
      (Codec.Corrupt
         (Printf.sprintf "statlib partial: accumulator count %d, expected %d" count
            expected_count));
  r_surface_into r ~rows ~cols chunk.mean pos;
  r_surface_into r ~rows ~cols chunk.m2 pos

let w_partial ~samples_done chunk b =
  let layout = chunk.layout in
  Codec.w_int b samples_done;
  Codec.w_string b chunk.first_name;
  Codec.w_string b chunk.first_corner;
  Codec.w_int b (Array.length layout.proto_cells);
  Array.iteri
    (fun ci (c : Cell.t) ->
      Codec.w_string b c.Cell.name;
      Codec.w_int b layout.cell_arc_count.(ci);
      let first = layout.cell_first_arc.(ci) in
      for k = 0 to layout.cell_arc_count.(ci) - 1 do
        let ai = first + k in
        let rows, cols = Lut.dims layout.arc_protos.(ai).Arc.rise_delay in
        let off = layout.offset.(ai) and sz = layout.size.(ai) in
        w_table_acc b chunk ~rows ~cols off;
        w_table_acc b chunk ~rows ~cols (off + sz);
        w_table_acc b chunk ~rows ~cols (off + (2 * sz));
        w_table_acc b chunk ~rows ~cols (off + (3 * sz))
      done)
    layout.proto_cells

let r_partial ~proto ~samples_done r =
  let stored = Codec.r_int r in
  if stored <> samples_done then
    raise
      (Codec.Corrupt
         (Printf.sprintf "statlib partial: covers %d samples, checkpoint says %d" stored
            samples_done));
  let first_name = Codec.r_string r in
  let first_corner = Codec.r_string r in
  if first_name <> Library.name proto || first_corner <> Library.corner proto then
    raise (Codec.Corrupt "statlib partial: proto library mismatch");
  let layout = layout_of_library proto in
  let chunk =
    {
      first_name;
      first_corner;
      layout;
      count = samples_done;
      mean = Array.make layout.total 0.0;
      m2 = Array.make layout.total 0.0;
    }
  in
  let ncells = Codec.r_int r in
  if ncells <> Array.length layout.proto_cells then
    raise (Codec.Corrupt "statlib partial: cell count mismatch");
  Array.iteri
    (fun ci (c : Cell.t) ->
      let name = Codec.r_string r in
      if name <> c.Cell.name then
        raise (Codec.Corrupt "statlib partial: cell order mismatch");
      let narcs = Codec.r_int r in
      if narcs <> layout.cell_arc_count.(ci) then
        raise (Codec.Corrupt "statlib partial: arc count mismatch");
      let first = layout.cell_first_arc.(ci) in
      for k = 0 to layout.cell_arc_count.(ci) - 1 do
        let ai = first + k in
        let rows, cols = Lut.dims layout.arc_protos.(ai).Arc.rise_delay in
        let off = layout.offset.(ai) and sz = layout.size.(ai) in
        r_table_acc_into ~expected_count:samples_done r chunk ~rows ~cols off;
        r_table_acc_into ~expected_count:samples_done r chunk ~rows ~cols (off + sz);
        r_table_acc_into ~expected_count:samples_done r chunk ~rows ~cols (off + (2 * sz));
        r_table_acc_into ~expected_count:samples_done r chunk ~rows ~cols (off + (3 * sz))
      done)
    layout.proto_cells;
  chunk

let c_resumed_samples = Obs.Counter.make "journal.resumed_samples"

(* Round-based counterpart of [of_stream]: the same fixed block
   partition and the same left-to-right merge order — so the result is
   bit-identical to [of_stream] at any pool size and any checkpoint
   cadence — but accumulated in rounds of [max every_blocks jobs]
   blocks, with the running state saved to the run's state store and a
   [Checkpoint] step journaled between rounds.  A pending stop request
   is honoured right after a checkpoint lands, by raising
   [Journal.Interrupted]. *)
let of_stream_ckpt ~ckpt ~id ~pool ~n gen =
  if n <= 0 then invalid_arg "Statistical.of_stream: n must be positive";
  Obs.span "statlib.build"
    ~attrs:(fun () -> [ ("samples", string_of_int n) ])
    (fun () ->
      let nchunks = (n + merge_chunk - 1) / merge_chunk in
      let proto = lazy (gen 0) in
      let restore () =
        let rec try_checkpoint = function
          | [] -> (None, 0)
          | (blocks, samples_done) :: older ->
            if blocks < 1 || blocks > nchunks || samples_done <> min n (blocks * merge_chunk)
            then try_checkpoint older
            else (
              match
                Store.load ckpt.Journal.state
                  (checkpoint_key ~id ~blocks)
                  (r_partial ~proto:(Lazy.force proto) ~samples_done)
              with
              | Some chunk ->
                Obs.Counter.add c_resumed_samples samples_done;
                (Some chunk, blocks)
              | None -> try_checkpoint older)
        in
        try_checkpoint (Journal.checkpoints_for ckpt ~statlib:id)
      in
      let restored, start = restore () in
      let acc = ref restored in
      let done_blocks = ref start in
      let round = max ckpt.Journal.every_blocks (Pool.jobs pool) in
      while !done_blocks < nchunks do
        let upto = min nchunks (!done_blocks + round) in
        let idxs = List.init (upto - !done_blocks) (fun k -> !done_blocks + k) in
        let parts =
          Pool.map_chunked pool
            (fun c ->
              let lo = c * merge_chunk in
              accumulate_chunk gen ~lo ~hi:(min n (lo + merge_chunk)))
            idxs
        in
        (* Ordered left-to-right merge, exactly as [of_stream]. *)
        Obs.span "statlib.merge"
          ~attrs:(fun () -> [ ("chunks", string_of_int (List.length parts)) ])
          (fun () ->
            match !acc with
            | None -> (
              match parts with
              | [] -> assert false
              | head :: rest -> acc := Some (List.fold_left chunk_merge head rest))
            | Some a -> acc := Some (List.fold_left chunk_merge a parts));
        List.iter
          (fun c ->
            let lo = c * merge_chunk in
            Journal.record ckpt
              (Journal.Block_done { statlib = id; lo; hi = min n (lo + merge_chunk) }))
          idxs;
        done_blocks := upto;
        if upto < nchunks then begin
          let samples_done = min n (upto * merge_chunk) in
          let chunk = Option.get !acc in
          let key = checkpoint_key ~id ~blocks:upto in
          Store.save ckpt.Journal.state key (w_partial ~samples_done chunk);
          Journal.record ckpt
            (Journal.Checkpoint
               { statlib = id; blocks = upto; samples_done; key = Store.Key.id key });
          if Journal.stop_requested ckpt then
            raise
              (Journal.Interrupted
                 (Printf.sprintf "statistical library checkpointed at %d/%d samples"
                    samples_done n))
        end
      done;
      finish_library (Option.get !acc))

let build ?pool ?store ?ckpt config ~mismatch ~seed ~n ?specs () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let gen index =
    Vartune_charlib.Sampler.sample_library config ~mismatch ~seed ~index ?specs ()
  in
  let key = store_key config ~mismatch ~seed ~n ?specs () in
  let id = Store.Key.id key in
  let specs_used = Option.value specs ~default:Vartune_stdcell.Catalog.specs in
  let stores =
    (match store with Some s -> [ s ] | None -> [])
    @ match ckpt with Some c -> [ c.Journal.state ] | None -> []
  in
  let rec first_hit = function
    | [] -> None
    | s :: rest -> (
      match
        Option.bind (Store.load s key Codec.r_library)
          (Characterize.validated_library ~what:"statistical" ~specs:specs_used)
      with
      | Some lib -> Some lib
      | None -> first_hit rest)
  in
  match first_hit stores with
  | Some lib ->
    Option.iter (fun c -> Journal.record c (Journal.Statlib_built { key = id })) ckpt;
    lib
  | None ->
    let lib =
      match ckpt with
      | None -> of_stream ~pool ~n gen
      | Some ckpt -> of_stream_ckpt ~ckpt ~id ~pool ~n gen
    in
    List.iter (fun s -> Store.save s key (fun b -> Codec.w_library b lib)) stores;
    Option.iter (fun c -> Journal.record c (Journal.Statlib_built { key = id })) ckpt;
    lib

let is_statistical lib =
  List.for_all
    (fun c -> List.for_all Arc.has_sigma (Cell.arcs c))
    (List.filter (fun c -> Cell.arcs c <> []) (Library.cells lib))
