module Grid = Vartune_util.Grid
module Pool = Vartune_util.Pool
module Lut = Vartune_liberty.Lut
module Arc = Vartune_liberty.Arc
module Pin = Vartune_liberty.Pin
module Cell = Vartune_liberty.Cell
module Library = Vartune_liberty.Library
module Obs = Vartune_obs.Obs

let c_samples = Obs.Counter.make "statlib.samples"
let c_entries = Obs.Counter.make "statlib.lut_entries_merged"

(* ------------------------------------------------------------------ *)
(* Welford accumulation over LUT entries                               *)
(* ------------------------------------------------------------------ *)

type acc = { template : Lut.t; mutable count : int; mean : Grid.t; m2 : Grid.t }

let acc_create lut =
  let rows, cols = Lut.dims lut in
  { template = lut; count = 0; mean = Grid.create ~rows ~cols 0.0; m2 = Grid.create ~rows ~cols 0.0 }

let acc_update acc lut =
  if not (Lut.same_axes acc.template lut) then
    invalid_arg "Statistical: sample library has mismatched table axes";
  acc.count <- acc.count + 1;
  let n = float_of_int acc.count in
  let rows, cols = Lut.dims lut in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let x = Lut.get lut i j in
      let m = Grid.get acc.mean i j in
      let delta = x -. m in
      let m' = m +. (delta /. n) in
      Grid.set acc.mean i j m';
      Grid.set acc.m2 i j (Grid.get acc.m2 i j +. (delta *. (x -. m')))
    done
  done;
  Obs.Counter.add c_entries (rows * cols)

(* Chan et al. pairwise combination of two Welford partials, entry-wise
   over the grids.  [a] is the left (lower-index) sample block and
   absorbs [b].  Same formula as Vartune_util.Stat.Welford.merge. *)
let acc_merge a b =
  if not (Lut.same_axes a.template b.template) then
    invalid_arg "Statistical: sample library has mismatched table axes";
  if b.count > 0 then begin
    if a.count = 0 then begin
      a.count <- b.count;
      let rows, cols = Lut.dims a.template in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          Grid.set a.mean i j (Grid.get b.mean i j);
          Grid.set a.m2 i j (Grid.get b.m2 i j)
        done
      done
    end
    else begin
      let na = float_of_int a.count and nb = float_of_int b.count in
      let n = na +. nb in
      let rows, cols = Lut.dims a.template in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          let ma = Grid.get a.mean i j and mb = Grid.get b.mean i j in
          let delta = mb -. ma in
          Grid.set a.mean i j (ma +. (delta *. (nb /. n)));
          Grid.set a.m2 i j
            (Grid.get a.m2 i j +. Grid.get b.m2 i j
            +. (delta *. delta *. (na *. nb /. n)))
        done
      done;
      a.count <- a.count + b.count
    end
  end

let acc_mean acc =
  Lut.make ~slews:(Lut.slews acc.template) ~loads:(Lut.loads acc.template) ~values:acc.mean

let acc_sigma acc =
  (* Cancellation in the streaming update / pairwise merge can leave a
     tiny negative m2 (think -1e-18) on near-constant entries; clamp it
     so sigma is 0 there instead of NaN.  Genuine NaN still propagates:
     only negatives are clamped. *)
  let values =
    if acc.count < 2 then Grid.map (fun _ -> 0.0) acc.m2
    else
      Grid.map
        (fun m2 ->
          let v = m2 /. float_of_int (acc.count - 1) in
          sqrt (if v < 0.0 then 0.0 else v))
        acc.m2
  in
  Lut.make ~slews:(Lut.slews acc.template) ~loads:(Lut.loads acc.template) ~values

(* ------------------------------------------------------------------ *)
(* Structural accumulators mirroring the library shape                 *)
(* ------------------------------------------------------------------ *)

type arc_acc = {
  proto : Arc.t;
  rise_delay : acc;
  fall_delay : acc;
  rise_transition : acc;
  fall_transition : acc;
}

let arc_acc_create (a : Arc.t) =
  {
    proto = a;
    rise_delay = acc_create a.rise_delay;
    fall_delay = acc_create a.fall_delay;
    rise_transition = acc_create a.rise_transition;
    fall_transition = acc_create a.fall_transition;
  }

let arc_acc_update acc (a : Arc.t) =
  if a.related_pin <> acc.proto.related_pin then
    invalid_arg "Statistical: sample library has mismatched arc order";
  acc_update acc.rise_delay a.rise_delay;
  acc_update acc.fall_delay a.fall_delay;
  acc_update acc.rise_transition a.rise_transition;
  acc_update acc.fall_transition a.fall_transition

let arc_acc_merge a b =
  if b.proto.Arc.related_pin <> a.proto.Arc.related_pin then
    invalid_arg "Statistical: sample library has mismatched arc order";
  acc_merge a.rise_delay b.rise_delay;
  acc_merge a.fall_delay b.fall_delay;
  acc_merge a.rise_transition b.rise_transition;
  acc_merge a.fall_transition b.fall_transition

let arc_acc_finish acc =
  Arc.make ~related_pin:acc.proto.related_pin ~sense:acc.proto.sense
    ~rise_delay:(acc_mean acc.rise_delay)
    ~fall_delay:(acc_mean acc.fall_delay)
    ~rise_transition:(acc_mean acc.rise_transition)
    ~fall_transition:(acc_mean acc.fall_transition)
    ~rise_delay_sigma:(acc_sigma acc.rise_delay)
    ~fall_delay_sigma:(acc_sigma acc.fall_delay)
    ?internal_power:acc.proto.internal_power ()

type cell_acc = { proto_cell : Cell.t; arcs : arc_acc array }

let cell_acc_create (c : Cell.t) = { proto_cell = c; arcs = Array.of_list (List.map arc_acc_create (Cell.arcs c)) }

let cell_acc_update acc (c : Cell.t) =
  if c.name <> acc.proto_cell.name then
    invalid_arg "Statistical: sample library has mismatched cell order";
  let arcs = Array.of_list (Cell.arcs c) in
  if Array.length arcs <> Array.length acc.arcs then
    invalid_arg "Statistical: sample library has mismatched arc count";
  Array.iteri (fun i a -> arc_acc_update acc.arcs.(i) a) arcs

let cell_acc_merge a b =
  if b.proto_cell.Cell.name <> a.proto_cell.Cell.name then
    invalid_arg "Statistical: sample library has mismatched cell order";
  if Array.length b.arcs <> Array.length a.arcs then
    invalid_arg "Statistical: sample library has mismatched arc count";
  Array.iteri (fun i arc -> arc_acc_merge a.arcs.(i) arc) b.arcs

let cell_acc_finish acc =
  (* Rebuild the cell, swapping each output pin's arcs for the merged
     ones.  Arc order is the concatenation order of Cell.arcs. *)
  let merged = Array.map arc_acc_finish acc.arcs in
  let cursor = ref 0 in
  let take n =
    let slice = Array.sub merged !cursor n in
    cursor := !cursor + n;
    Array.to_list slice
  in
  let c = acc.proto_cell in
  let pins =
    List.map
      (fun (p : Pin.t) ->
        if Pin.is_output p then
          Pin.output ~name:p.name ?max_capacitance:p.max_capacitance
            ~arcs:(take (List.length p.arcs)) ()
        else p)
      c.pins
  in
  Cell.make ~name:c.name ~family:c.family ~drive_strength:c.drive_strength ~kind:c.kind
    ~area:c.area ~pins ~setup_time:c.setup_time ~hold_time:c.hold_time
    ?clock_pin:c.clock_pin ~leakage:c.leakage ()

(* Samples per worker task.  The block partition of [0, n) is fixed by
   this constant — never by the job count — so the chunked merge below
   produces bit-identical libraries at any parallelism, including the
   jobs = 1 serial fallback. *)
let merge_chunk = 4

type chunk_acc = { first_name : string; first_corner : string; cell_accs : cell_acc array }

let accumulate_chunk gen ~lo ~hi =
  Obs.span "statlib.chunk"
    ~attrs:(fun () -> [ ("lo", string_of_int lo); ("hi", string_of_int hi) ])
    (fun () ->
      let first = gen lo in
      let cell_accs = Array.of_list (List.map cell_acc_create (Library.cells first)) in
      let feed lib =
        let cells = Array.of_list (Library.cells lib) in
        if Array.length cells <> Array.length cell_accs then
          invalid_arg "Statistical: sample library has mismatched cell count";
        Array.iteri (fun i c -> cell_acc_update cell_accs.(i) c) cells
      in
      feed first;
      for index = lo + 1 to hi - 1 do
        feed (gen index)
      done;
      Obs.Counter.add c_samples (hi - lo);
      { first_name = Library.name first; first_corner = Library.corner first; cell_accs })

let chunk_merge a b =
  if Array.length b.cell_accs <> Array.length a.cell_accs then
    invalid_arg "Statistical: sample library has mismatched cell count";
  Array.iteri (fun i c -> cell_acc_merge a.cell_accs.(i) c) b.cell_accs;
  a

let of_stream ?pool ~n gen =
  if n <= 0 then invalid_arg "Statistical.of_stream: n must be positive";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Obs.span "statlib.build"
    ~attrs:(fun () -> [ ("samples", string_of_int n) ])
    (fun () ->
      let nchunks = (n + merge_chunk - 1) / merge_chunk in
      (* map_chunked batches block dispatch only: the [merge_chunk]
         partition and the fold below are what fix the result *)
      let chunks =
        Pool.map_chunked pool
          (fun c ->
            let lo = c * merge_chunk in
            accumulate_chunk gen ~lo ~hi:(min n (lo + merge_chunk)))
          (List.init nchunks Fun.id)
      in
      (* Ordered left-to-right pairwise merge: partials cover fixed index
         blocks, so this fold is scheduling-independent. *)
      let merged =
        Obs.span "statlib.merge"
          ~attrs:(fun () -> [ ("chunks", string_of_int nchunks) ])
          (fun () ->
            match chunks with
            | [] -> assert false
            | head :: rest -> List.fold_left chunk_merge head rest)
      in
      let cells = Array.to_list (Array.map cell_acc_finish merged.cell_accs) in
      Library.make ~name:(merged.first_name ^ "_stat") ~corner:merged.first_corner ~cells)

let of_libraries = function
  | [] -> invalid_arg "Statistical.of_libraries: empty list"
  | libs ->
    let arr = Array.of_list libs in
    of_stream ~n:(Array.length arr) (fun i -> arr.(i))

module Store = Vartune_store.Store
module Codec = Vartune_store.Codec
module Characterize = Vartune_charlib.Characterize
module Journal = Vartune_journal.Journal

let store_key config ~mismatch ~seed ~n ?specs () =
  let key =
    Characterize.add_config_to_key (Store.Key.v "statlib") config
    |> fun k ->
    Store.Key.float k "sigma_r" mismatch.Vartune_process.Mismatch.sigma_resistance
    |> fun k ->
    Store.Key.float k "sigma_i" mismatch.Vartune_process.Mismatch.sigma_intrinsic
    |> fun k ->
    Store.Key.int k "seed" seed |> fun k -> Store.Key.int k "samples" n
  in
  Characterize.add_specs_to_key key
    (Option.value specs ~default:Vartune_stdcell.Catalog.specs)

(* ------------------------------------------------------------------ *)
(* Checkpointed (resumable) builds                                     *)
(* ------------------------------------------------------------------ *)

(* Partial-state codec: the Welford accumulators covering the first
   [blocks] sample blocks, saved to the run's state store at every
   checkpoint.  Floats travel as bit patterns, so a resumed merge
   continues from exactly the state an uninterrupted run would hold at
   the same block boundary — the final library is bit-identical.

   Only the mutable statistics are stored.  The structural skeleton
   (cells, pins, arcs, LUT axes, internal power) is rebuilt on decode
   from the proto library — sample 0, regenerated from the recorded
   seed — which is the same proto an uninterrupted left-to-right merge
   carries in its head chunk.  Any mismatch between stored statistics
   and the rebuilt skeleton raises [Codec.Corrupt], the store evicts
   the entry, and the resuming build falls back to an older checkpoint
   or a cold start: a corrupt checkpoint can cost time, never
   correctness. *)

let checkpoint_key ~id ~blocks =
  Store.Key.int (Store.Key.str (Store.Key.v "statlib_partial") "statlib" id) "blocks" blocks

let w_grid b g =
  Codec.w_int b (Grid.rows g);
  Codec.w_int b (Grid.cols g);
  for i = 0 to Grid.rows g - 1 do
    for j = 0 to Grid.cols g - 1 do
      Codec.w_float b (Grid.get g i j)
    done
  done

let r_grid_into r g =
  let rows = Codec.r_int r in
  let cols = Codec.r_int r in
  if rows <> Grid.rows g || cols <> Grid.cols g then
    raise (Codec.Corrupt "statlib partial: grid dimensions mismatch");
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Grid.set g i j (Codec.r_float r)
    done
  done

let w_acc b acc =
  Codec.w_int b acc.count;
  w_grid b acc.mean;
  w_grid b acc.m2

let r_acc_into ~expected_count r acc =
  let count = Codec.r_int r in
  if count <> expected_count then
    raise
      (Codec.Corrupt
         (Printf.sprintf "statlib partial: accumulator count %d, expected %d" count
            expected_count));
  acc.count <- count;
  r_grid_into r acc.mean;
  r_grid_into r acc.m2

let w_partial ~samples_done chunk b =
  Codec.w_int b samples_done;
  Codec.w_string b chunk.first_name;
  Codec.w_string b chunk.first_corner;
  Codec.w_int b (Array.length chunk.cell_accs);
  Array.iter
    (fun ca ->
      Codec.w_string b ca.proto_cell.Cell.name;
      Codec.w_int b (Array.length ca.arcs);
      Array.iter
        (fun aa ->
          w_acc b aa.rise_delay;
          w_acc b aa.fall_delay;
          w_acc b aa.rise_transition;
          w_acc b aa.fall_transition)
        ca.arcs)
    chunk.cell_accs

let r_partial ~proto ~samples_done r =
  let stored = Codec.r_int r in
  if stored <> samples_done then
    raise
      (Codec.Corrupt
         (Printf.sprintf "statlib partial: covers %d samples, checkpoint says %d" stored
            samples_done));
  let first_name = Codec.r_string r in
  let first_corner = Codec.r_string r in
  if first_name <> Library.name proto || first_corner <> Library.corner proto then
    raise (Codec.Corrupt "statlib partial: proto library mismatch");
  let cell_accs = Array.of_list (List.map cell_acc_create (Library.cells proto)) in
  let ncells = Codec.r_int r in
  if ncells <> Array.length cell_accs then
    raise (Codec.Corrupt "statlib partial: cell count mismatch");
  Array.iter
    (fun ca ->
      let name = Codec.r_string r in
      if name <> ca.proto_cell.Cell.name then
        raise (Codec.Corrupt "statlib partial: cell order mismatch");
      let narcs = Codec.r_int r in
      if narcs <> Array.length ca.arcs then
        raise (Codec.Corrupt "statlib partial: arc count mismatch");
      Array.iter
        (fun aa ->
          r_acc_into ~expected_count:samples_done r aa.rise_delay;
          r_acc_into ~expected_count:samples_done r aa.fall_delay;
          r_acc_into ~expected_count:samples_done r aa.rise_transition;
          r_acc_into ~expected_count:samples_done r aa.fall_transition)
        ca.arcs)
    cell_accs;
  { first_name; first_corner; cell_accs }

let c_resumed_samples = Obs.Counter.make "journal.resumed_samples"

(* Round-based counterpart of [of_stream]: the same fixed block
   partition and the same left-to-right merge order — so the result is
   bit-identical to [of_stream] at any pool size and any checkpoint
   cadence — but accumulated in rounds of [max every_blocks jobs]
   blocks, with the running state saved to the run's state store and a
   [Checkpoint] step journaled between rounds.  A pending stop request
   is honoured right after a checkpoint lands, by raising
   [Journal.Interrupted]. *)
let of_stream_ckpt ~ckpt ~id ~pool ~n gen =
  if n <= 0 then invalid_arg "Statistical.of_stream: n must be positive";
  Obs.span "statlib.build"
    ~attrs:(fun () -> [ ("samples", string_of_int n) ])
    (fun () ->
      let nchunks = (n + merge_chunk - 1) / merge_chunk in
      let proto = lazy (gen 0) in
      let restore () =
        let rec try_checkpoint = function
          | [] -> (None, 0)
          | (blocks, samples_done) :: older ->
            if blocks < 1 || blocks > nchunks || samples_done <> min n (blocks * merge_chunk)
            then try_checkpoint older
            else (
              match
                Store.load ckpt.Journal.state
                  (checkpoint_key ~id ~blocks)
                  (r_partial ~proto:(Lazy.force proto) ~samples_done)
              with
              | Some chunk ->
                Obs.Counter.add c_resumed_samples samples_done;
                (Some chunk, blocks)
              | None -> try_checkpoint older)
        in
        try_checkpoint (Journal.checkpoints_for ckpt ~statlib:id)
      in
      let restored, start = restore () in
      let acc = ref restored in
      let done_blocks = ref start in
      let round = max ckpt.Journal.every_blocks (Pool.jobs pool) in
      while !done_blocks < nchunks do
        let upto = min nchunks (!done_blocks + round) in
        let idxs = List.init (upto - !done_blocks) (fun k -> !done_blocks + k) in
        let parts =
          Pool.map_chunked pool
            (fun c ->
              let lo = c * merge_chunk in
              accumulate_chunk gen ~lo ~hi:(min n (lo + merge_chunk)))
            idxs
        in
        (* Ordered left-to-right merge, exactly as [of_stream]. *)
        Obs.span "statlib.merge"
          ~attrs:(fun () -> [ ("chunks", string_of_int (List.length parts)) ])
          (fun () ->
            match !acc with
            | None -> (
              match parts with
              | [] -> assert false
              | head :: rest -> acc := Some (List.fold_left chunk_merge head rest))
            | Some a -> acc := Some (List.fold_left chunk_merge a parts));
        List.iter
          (fun c ->
            let lo = c * merge_chunk in
            Journal.record ckpt
              (Journal.Block_done { statlib = id; lo; hi = min n (lo + merge_chunk) }))
          idxs;
        done_blocks := upto;
        if upto < nchunks then begin
          let samples_done = min n (upto * merge_chunk) in
          let chunk = Option.get !acc in
          let key = checkpoint_key ~id ~blocks:upto in
          Store.save ckpt.Journal.state key (w_partial ~samples_done chunk);
          Journal.record ckpt
            (Journal.Checkpoint
               { statlib = id; blocks = upto; samples_done; key = Store.Key.id key });
          if Journal.stop_requested ckpt then
            raise
              (Journal.Interrupted
                 (Printf.sprintf "statistical library checkpointed at %d/%d samples"
                    samples_done n))
        end
      done;
      let merged = Option.get !acc in
      let cells = Array.to_list (Array.map cell_acc_finish merged.cell_accs) in
      Library.make ~name:(merged.first_name ^ "_stat") ~corner:merged.first_corner ~cells)

let build ?pool ?store ?ckpt config ~mismatch ~seed ~n ?specs () =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let gen index =
    Vartune_charlib.Sampler.sample_library config ~mismatch ~seed ~index ?specs ()
  in
  let key = store_key config ~mismatch ~seed ~n ?specs () in
  let id = Store.Key.id key in
  let specs_used = Option.value specs ~default:Vartune_stdcell.Catalog.specs in
  let stores =
    (match store with Some s -> [ s ] | None -> [])
    @ match ckpt with Some c -> [ c.Journal.state ] | None -> []
  in
  let rec first_hit = function
    | [] -> None
    | s :: rest -> (
      match
        Option.bind (Store.load s key Codec.r_library)
          (Characterize.validated_library ~what:"statistical" ~specs:specs_used)
      with
      | Some lib -> Some lib
      | None -> first_hit rest)
  in
  match first_hit stores with
  | Some lib ->
    Option.iter (fun c -> Journal.record c (Journal.Statlib_built { key = id })) ckpt;
    lib
  | None ->
    let lib =
      match ckpt with
      | None -> of_stream ~pool ~n gen
      | Some ckpt -> of_stream_ckpt ~ckpt ~id ~pool ~n gen
    in
    List.iter (fun s -> Store.save s key (fun b -> Codec.w_library b lib)) stores;
    Option.iter (fun c -> Journal.record c (Journal.Statlib_built { key = id })) ckpt;
    lib

let is_statistical lib =
  List.for_all
    (fun c -> List.for_all Arc.has_sigma (Cell.arcs c))
    (List.filter (fun c -> Cell.arcs c <> []) (Library.cells lib))
