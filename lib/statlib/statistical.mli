(** Statistical library construction (Section IV, Fig. 2 of the paper).

    N Monte-Carlo sample libraries are merged entry-by-entry: each LUT
    entry of the result holds the mean of that entry across the samples,
    and a parallel sigma table holds the standard deviation.  The result
    is a normal library file "with identical tables as a nominal library
    but which contains local variation statistics instead". *)

val of_libraries : Vartune_liberty.Library.t list -> Vartune_liberty.Library.t
(** Merges a non-empty list of structurally identical libraries.  Delay
    tables become (mean, sigma) pairs; transition tables are averaged.
    Raises [Invalid_argument] on an empty list or structural mismatch. *)

val of_stream : n:int -> (int -> Vartune_liberty.Library.t) -> Vartune_liberty.Library.t
(** Streaming merge: [of_stream ~n gen] folds over [gen 0 .. gen (n-1)]
    with Welford accumulation, never holding more than one sample library
    plus the accumulator.  Equivalent to
    [of_libraries (List.init n gen)]. *)

val build :
  Vartune_charlib.Characterize.config ->
  mismatch:Vartune_process.Mismatch.t ->
  seed:int ->
  n:int ->
  ?specs:Vartune_stdcell.Spec.t list ->
  unit ->
  Vartune_liberty.Library.t
(** Characterise-and-merge convenience: N mismatch samples of the catalog
    streamed into one statistical library. *)

val is_statistical : Vartune_liberty.Library.t -> bool
(** Whether every non-trivial arc carries sigma tables. *)
