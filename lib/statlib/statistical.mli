(** Statistical library construction (Section IV, Fig. 2 of the paper).

    N Monte-Carlo sample libraries are merged entry-by-entry: each LUT
    entry of the result holds the mean of that entry across the samples,
    and a parallel sigma table holds the standard deviation.  The result
    is a normal library file "with identical tables as a nominal library
    but which contains local variation statistics instead". *)

val of_libraries : Vartune_liberty.Library.t list -> Vartune_liberty.Library.t
(** Merges a non-empty list of structurally identical libraries.  Delay
    tables become (mean, sigma) pairs; transition tables are averaged.
    Raises [Invalid_argument] on an empty list or structural mismatch. *)

val of_stream :
  ?pool:Vartune_util.Pool.t ->
  n:int ->
  (int -> Vartune_liberty.Library.t) ->
  Vartune_liberty.Library.t
(** Chunked merge: [of_stream ~n gen] partitions [gen 0 .. gen (n-1)]
    into fixed contiguous sample blocks, streams each block through a
    Welford accumulator on a [pool] worker (default {!Vartune_util.Pool.default}),
    and combines the per-block partials left-to-right with the pairwise
    mean/M2 merge of Chan et al.  The block partition depends only on
    [n], so the result is bit-for-bit identical at any pool size —
    including the serial jobs = 1 fallback.  Equivalent (within the
    accumulation scheme) to [of_libraries (List.init n gen)]; [gen] must
    be safe to call from worker domains.  No more than one block of
    sample libraries per worker is live at a time. *)

val build :
  ?pool:Vartune_util.Pool.t ->
  ?store:Vartune_store.Store.t ->
  ?ckpt:Vartune_journal.Journal.ctx ->
  Vartune_charlib.Characterize.config ->
  mismatch:Vartune_process.Mismatch.t ->
  seed:int ->
  n:int ->
  ?specs:Vartune_stdcell.Spec.t list ->
  unit ->
  Vartune_liberty.Library.t
(** Characterise-and-merge convenience: N mismatch samples of the catalog
    characterised across the pool's domains and merged into one
    statistical library.  Deterministic in [(seed, n)] regardless of the
    pool size, because each sample index draws from its own
    {!Vartune_util.Rng.stream}-derived generator.  With [store], the
    merged library is fetched from / saved to the persistent artifact
    store under {!store_key} — a hit skips characterisation entirely and
    is bit-identical to the cold computation.

    With [ckpt], the merge runs in rounds of
    [max ckpt.every_blocks (Pool.jobs pool)] sample blocks: after each
    non-final round the running Welford partials are saved to the run's
    state store under {!checkpoint_key} and a [Checkpoint] step is
    journaled, and a pending stop request ({!Vartune_journal.Journal.request_stop})
    is honoured by raising [Journal.Interrupted] — only ever {e after} a
    checkpoint has landed.  On resume, the newest journaled checkpoint
    whose stored partial still decodes cleanly seeds the merge; a
    corrupt or missing partial silently falls back to an older
    checkpoint or a cold start.  The block partition and the
    left-to-right merge order are unchanged, so interrupted-and-resumed
    output is bit-identical to an uninterrupted run at any job count
    and any checkpoint cadence. *)

val checkpoint_key : id:string -> blocks:int -> Vartune_store.Store.Key.t
(** State-store key of the Welford partial covering the first [blocks]
    sample blocks of the statistical library whose {!store_key} recipe
    id is [id].  Exposed for tests that corrupt checkpoints on disk. *)

val store_key :
  Vartune_charlib.Characterize.config ->
  mismatch:Vartune_process.Mismatch.t ->
  seed:int ->
  n:int ->
  ?specs:Vartune_stdcell.Spec.t list ->
  unit ->
  Vartune_store.Store.Key.t
(** The statistical-library fingerprint: characterisation config,
    mismatch sigmas, seed, sample count and catalog shape.  Changing any
    one forces a store miss.  Exposed so downstream stages (synthesis
    runs, sweeps) can chain it into their own keys. *)

val is_statistical : Vartune_liberty.Library.t -> bool
(** Whether every non-trivial arc carries sigma tables. *)
