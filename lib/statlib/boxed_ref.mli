(** Frozen seed implementation of the statistical merge.

    The boxed per-entry Welford accumulator exactly as it shipped before
    the numeric core was flattened onto [Vartune_util.Kernel] float
    arrays.  It exists so tests can assert bit-identical agreement
    between the flat path and this executable specification, and so
    bench Part 7 can report the flat/boxed speedup on the same machine
    in the same run.  Not used by the pipeline. *)

val of_stream :
  ?pool:Vartune_util.Pool.t ->
  n:int ->
  (int -> Vartune_liberty.Library.t) ->
  Vartune_liberty.Library.t
(** Same contract as {!Statistical.of_stream}: fixed [merge_chunk = 4]
    block partition, ordered left-to-right Chan merge, bit-identical
    output at any pool size. *)

val of_libraries : Vartune_liberty.Library.t list -> Vartune_liberty.Library.t
(** Same contract as {!Statistical.of_libraries}. *)
