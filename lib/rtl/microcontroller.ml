type config = {
  xlen : int;
  reg_count : int;
  mul_width : int;
  irq_lines : int;
  bus_slaves : int;
}

let default_config = { xlen = 32; reg_count = 32; mul_width = 16; irq_lines = 8; bus_slaves = 4 }

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

(* Carry-save array multiplier: rows of partial products are reduced with
   3:2 compressors, one final ripple adder resolves the redundant form.
   This is the design's deepest combinational structure. *)
let csa_multiply g a b =
  let wa = Array.length a and wb = Array.length b in
  let width = wa + wb in
  let zero = Word.const g ~width 0 in
  let row k =
    Array.init width (fun i ->
        let j = i - k in
        if j < 0 || j >= wa then Ir.const0 g else Ir.and2 g a.(j) b.(k))
  in
  let shift_left_one w =
    Array.init width (fun i -> if i = 0 then Ir.const0 g else w.(i - 1))
  in
  let rec reduce sum carry k =
    if k >= wb then (sum, carry)
    else begin
      let r = row k in
      let sum' = Array.init width (fun i -> Ir.xor3 g sum.(i) carry.(i) r.(i)) in
      let carry' = shift_left_one (Array.init width (fun i -> Ir.maj3 g sum.(i) carry.(i) r.(i))) in
      reduce sum' carry' (k + 1)
    end
  in
  let sum, carry = reduce (row 0) zero 1 in
  fst (Word.add_fast g sum carry)

let sign_extend ~width w =
  let sign = w.(Array.length w - 1) in
  Array.init width (fun i -> if i < Array.length w then w.(i) else sign)

let zero_extend g ~width w =
  Array.init width (fun i -> if i < Array.length w then w.(i) else Ir.const0 g)

let slice w lo len = Array.sub w lo len

let generate ?(config = default_config) () =
  let { xlen; reg_count; mul_width; irq_lines; bus_slaves } = config in
  let g = Ir.create ~name:"mcu32" in
  let sel_bits = log2 reg_count in

  (* ---------------- external interface ---------------- *)
  let hrdata = Word.inputs g ~prefix:"hrdata" ~width:xlen in
  let hready = Ir.input g "hready" in
  let irq = Array.init irq_lines (fun i -> Ir.input g (Printf.sprintf "irq[%d]" i)) in

  (* ---------------- fetch / instruction register ---------------- *)
  let fetch_en = hready in
  let ir = Word.reg g ~enable:fetch_en ~name:"ir" hrdata in

  (* instruction fields (RISC-ish fixed encoding) *)
  let opcode = slice ir 0 5 in
  let rd_sel = slice ir 5 sel_bits in
  let rs1_sel = slice ir 11 sel_bits in
  let rs2_sel = slice ir 17 sel_bits in
  let funct = slice ir 23 3 in
  let imm12 = slice ir 20 12 in

  (* ---------------- decode ---------------- *)
  let op_lines = Word.decoder g opcode in
  let op i = op_lines.(i land (Array.length op_lines - 1)) in
  let is_alu_reg = op 0 and is_alu_imm = op 1 in
  let is_load = op 2 and is_store = op 3 in
  let is_branch = op 4 and is_jump = op 5 in
  let is_mul = op 6 and is_mac = op 7 in
  let is_csr = op 8 in
  let alu_src_imm = Ir.or2 g is_alu_imm (Ir.or2 g is_load is_store) in
  let reg_write =
    Word.reduce_or g [| is_alu_reg; is_alu_imm; is_load; is_mul; is_mac; is_jump; is_csr |]
  in

  (* ---------------- register file ---------------- *)
  (* Single-cycle core: read -> ALU -> writeback closes within the cycle,
     so the register flops are forward-declared and their D side is wired
     after the datapath is built. *)
  let rd_lines = Word.decoder g rd_sel in
  let registers =
    Array.init reg_count (fun r ->
        Array.init xlen (fun i ->
            Ir.ff_forward g ~name:(Printf.sprintf "x%d[%d]" r i) ()))
  in
  (* read ports: one-hot AND-OR networks, as a synthesis tool would
     build them (NAND/NOR-rich after decomposition) *)
  let read_port sel = Word.one_hot_mux g ~onehot:(Word.decoder g sel) (Array.to_list registers) in
  let rs1_val = read_port rs1_sel in
  let rs2_val = read_port rs2_sel in
  let imm = sign_extend ~width:xlen imm12 in

  (* ---------------- ALU ---------------- *)
  let operand_b = Word.mux g ~sel:alu_src_imm rs2_val imm in
  let sub_mode = funct.(0) in
  let b_eff = Word.mux g ~sel:sub_mode operand_b (Word.lognot g operand_b) in
  let adder_out, carry = Word.add_fast g ~carry_in:sub_mode rs1_val b_eff in
  let and_out = Word.logand g rs1_val operand_b in
  let or_out = Word.logor g rs1_val operand_b in
  let xor_out = Word.logxor g rs1_val operand_b in
  let shamt = slice operand_b 0 (log2 xlen) in
  let sll_out = Word.barrel_shift_left g rs1_val ~amount:shamt in
  let srl_out = Word.barrel_shift_right g rs1_val ~amount:shamt in
  let slt = Ir.not_ g carry in
  let slt_out = zero_extend g ~width:xlen [| slt |] in
  let pass_b = operand_b in
  let alu_out =
    Word.mux_tree g ~sel:funct
      [ adder_out; and_out; or_out; xor_out; sll_out; srl_out; slt_out; pass_b ]
  in

  (* ---------------- multiplier / MAC ---------------- *)
  let mul_a = slice rs1_val 0 mul_width in
  let mul_b = slice rs2_val 0 mul_width in
  let product = csa_multiply g mul_a mul_b in
  let product_x = zero_extend g ~width:xlen product in
  let acc = Array.init xlen (fun i -> Ir.ff_forward g ~name:(Printf.sprintf "acc[%d]" i) ()) in
  let mac_out, _ = Word.add_fast g product_x acc in
  Array.iteri
    (fun i bit -> Ir.set_ff_data g acc.(i) (Ir.mux2 g ~a:acc.(i) ~b:bit ~s:is_mac))
    mac_out;

  (* ---------------- branch and PC ---------------- *)
  let eq = Word.equal g rs1_val operand_b in
  let lt = Word.less_than g rs1_val operand_b in
  let cond = Ir.mux2 g ~a:eq ~b:lt ~s:funct.(1) in
  let cond = Ir.xor2 g cond funct.(2) in
  let take_branch = Ir.and2 g is_branch cond in
  let pc = Array.init xlen (fun _ -> Ir.ff_forward g ()) in
  let pc_plus4 = fst (Word.add_fast g pc (Word.const g ~width:xlen 4)) in
  let branch_target = fst (Word.add_fast g pc (sign_extend ~width:xlen imm12)) in
  let jump_target = adder_out in

  (* interrupt controller: masked pending requests, priority encoded *)
  let irq_mask = Word.reg g ~enable:is_csr ~name:"irq_mask" (slice alu_out 0 irq_lines) in
  let pending = Array.mapi (fun i line -> Ir.and2 g line irq_mask.(i)) irq in
  let irq_index, irq_valid = Word.priority_encode g pending in
  let vector_base = Word.const g ~width:xlen 0x40 in
  let irq_vector =
    fst (Word.add g vector_base (zero_extend g ~width:xlen irq_index))
  in

  let pc_seq = Word.mux g ~sel:take_branch pc_plus4 branch_target in
  let pc_ctl = Word.mux g ~sel:is_jump pc_seq jump_target in
  let pc_next = Word.mux g ~sel:irq_valid pc_ctl irq_vector in
  Array.iteri (fun i bit -> Ir.set_ff_data g pc.(i) (Ir.mux2 g ~a:pc.(i) ~b:bit ~s:hready)) pc_next;

  (* ---------------- writeback ---------------- *)
  let wb_sel = [| Ir.or2 g is_load is_csr; Ir.or2 g is_mul is_mac |] in
  let mul_or_mac = Word.mux g ~sel:is_mac product_x mac_out in
  let wb_next =
    Word.mux_tree g ~sel:wb_sel [ alu_out; hrdata; mul_or_mac; mul_or_mac ]
  in
  (* close the register-file write loop *)
  Array.iteri
    (fun r q ->
      let we = Ir.and2 g reg_write rd_lines.(r) in
      Array.iteri
        (fun i qbit -> Ir.set_ff_data g qbit (Ir.mux2 g ~a:qbit ~b:wb_next.(i) ~s:we))
        q)
    registers;

  (* ---------------- AHB-like bus fabric ---------------- *)
  let data_access = Ir.or2 g is_load is_store in
  let haddr = Word.mux g ~sel:data_access pc adder_out in
  let haddr_r = Word.reg g ~enable:hready ~name:"haddr" haddr in
  let slave_bits = log2 bus_slaves in
  let hsel = Word.decoder g (slice haddr_r (xlen - slave_bits) slave_bits) in
  let hwrite = (Word.reg g [| is_store |]).(0) in
  let hwdata = Word.reg g ~enable:hready ~name:"hwdata" rs2_val in
  (* per-slave write buffers: slaves latch bus writes locally *)
  let slave_bufs =
    Array.init bus_slaves (fun s ->
        let we = Ir.and2 g hwrite hsel.(s) in
        Word.reg g ~enable:we ~name:(Printf.sprintf "slv%d" s) hwdata)
  in

  (* ---------------- SRAM interface glue ---------------- *)
  let sram_addr = Word.reg g ~enable:hready ~name:"sram_addr" (slice haddr_r 0 15) in
  let byte_en = Word.decoder g (slice haddr_r 0 2) in
  let sram_wdata =
    Array.init xlen (fun i ->
        let lane = byte_en.(i / 8) in
        Ir.mux2 g ~a:hrdata.(i) ~b:hwdata.(i) ~s:(Ir.and2 g lane hwrite))
  in
  let sram_wdata_r = Word.reg g ~name:"sram_wdata" sram_wdata in

  (* ---------------- outputs ---------------- *)
  Word.outputs g ~prefix:"haddr" haddr_r;
  Word.outputs g ~prefix:"hwdata" hwdata;
  Ir.output g "hwrite" hwrite;
  Array.iteri (fun s line -> Ir.output g (Printf.sprintf "hsel[%d]" s) line) hsel;
  Word.outputs g ~prefix:"sram_a" sram_addr;
  Word.outputs g ~prefix:"sram_d" sram_wdata_r;
  Array.iteri
    (fun s buf -> Ir.output g (Printf.sprintf "slv%d_q" s) (Word.reduce_or g buf))
    slave_bufs;
  Ir.output g "irq_taken" irq_valid;
  g
