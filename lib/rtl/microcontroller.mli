(** Synthetic 32-bit microcontroller — the evaluation design.

    Stands in for the paper's "widely used microprocessor design" (32-bit
    CPU, AHB bus, 32KB SRAM, ~20k gates).  The generator produces a
    single-issue core with a register file, ALU with barrel shifter, an
    array multiplier with carry-save reduction (the deep paths), a PC and
    branch unit, an AHB-like bus fabric with address decoding and write
    buffers, SRAM interface glue and an interrupt controller.  Path-depth
    statistics — many shallow control paths, a tail of deep arithmetic
    paths — mirror the paper's Fig. 12/14 profile. *)

type config = {
  xlen : int;  (** datapath width *)
  reg_count : int;  (** architectural registers (power of two) *)
  mul_width : int;  (** multiplier operand width *)
  irq_lines : int;
  bus_slaves : int;  (** power of two *)
}

val default_config : config
(** 32-bit, 32 registers, 16×16 multiplier, 8 IRQs, 4 bus slaves —
    elaborates to roughly 20k gate equivalents. *)

val generate : ?config:config -> unit -> Ir.t
(** Elaborates the core to a generic gate network. *)
