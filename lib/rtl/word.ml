type word = Ir.node_id array

let const g ~width value =
  Array.init width (fun i ->
      if (value lsr i) land 1 = 1 then Ir.const1 g else Ir.const0 g)

let inputs g ~prefix ~width =
  Array.init width (fun i -> Ir.input g (Printf.sprintf "%s[%d]" prefix i))

let outputs g ~prefix w =
  Array.iteri (fun i bit -> Ir.output g (Printf.sprintf "%s[%d]" prefix i) bit) w

let check_same_width a b =
  if Array.length a <> Array.length b then invalid_arg "Word: width mismatch"

let lognot g a = Array.map (Ir.not_ g) a

let map2 f a b =
  check_same_width a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let logand g = map2 (Ir.and2 g)
let logor g = map2 (Ir.or2 g)
let logxor g = map2 (Ir.xor2 g)

let add g ?carry_in a b =
  check_same_width a b;
  let carry_in = Option.value carry_in ~default:(Ir.const0 g) in
  let width = Array.length a in
  let sum = Array.make width (Ir.const0 g) in
  let carry = ref carry_in in
  for i = 0 to width - 1 do
    sum.(i) <- Ir.xor3 g a.(i) b.(i) !carry;
    carry := Ir.maj3 g a.(i) b.(i) !carry
  done;
  (sum, !carry)

let increment g a = fst (add g ~carry_in:(Ir.const1 g) a (const g ~width:(Array.length a) 0))

let mux g ~sel a b = map2 (fun x y -> Ir.mux2 g ~a:x ~b:y ~s:sel) a b

let add_fast g ?carry_in ?(group = 4) a b =
  check_same_width a b;
  let width = Array.length a in
  let carry_in = Option.value carry_in ~default:(Ir.const0 g) in
  if width <= group then add g ~carry_in a b
  else begin
    let sum = Array.make width (Ir.const0 g) in
    let rec groups lo carry =
      if lo >= width then carry
      else begin
        let len = min group (width - lo) in
        let ga = Array.sub a lo len and gb = Array.sub b lo len in
        (* both speculative results, selected by the incoming carry *)
        let sum0, cout0 = add g ~carry_in:(Ir.const0 g) ga gb in
        let sum1, cout1 = add g ~carry_in:(Ir.const1 g) ga gb in
        for i = 0 to len - 1 do
          sum.(lo + i) <- Ir.mux2 g ~a:sum0.(i) ~b:sum1.(i) ~s:carry
        done;
        let cout = Ir.mux2 g ~a:cout0 ~b:cout1 ~s:carry in
        groups (lo + len) cout
      end
    in
    let cout = groups 0 carry_in in
    (sum, cout)
  end

(* Subtraction feeds the ALU's compare paths; carry-select keeps them
   shallow. *)
let sub g a b = add_fast g ~carry_in:(Ir.const1 g) a (lognot g b)

let one_hot_mux g ~onehot words =
  let words = Array.of_list words in
  if Array.length onehot <> Array.length words then
    invalid_arg "Word.one_hot_mux: select/input count mismatch";
  if Array.length words = 0 then invalid_arg "Word.one_hot_mux: no inputs";
  let width = Array.length words.(0) in
  Array.init width (fun bit ->
      let terms = Array.mapi (fun k sel -> Ir.and2 g sel words.(k).(bit)) onehot in
      (* balanced OR tree *)
      let rec level = function
        | [] -> Ir.const0 g
        | [ x ] -> x
        | xs ->
          let rec pair = function
            | [] -> []
            | [ x ] -> [ x ]
            | p :: q :: tl -> Ir.or2 g p q :: pair tl
          in
          level (pair xs)
      in
      level (Array.to_list terms))

let rec mux_tree g ~sel words =
  match (Array.length sel, words) with
  | _, [] -> invalid_arg "Word.mux_tree: no inputs"
  | 0, w :: _ -> w
  | _, [ w ] -> w
  | _, _ ->
    let s = sel.(0) in
    let rest_sel = Array.sub sel 1 (Array.length sel - 1) in
    let rec pair = function
      | [] -> []
      | [ last ] -> [ last ]
      | a :: b :: tl -> mux g ~sel:s a b :: pair tl
    in
    mux_tree g ~sel:rest_sel (pair words)

let shift_stage g dir word s k =
  let width = Array.length word in
  Array.init width (fun i ->
      let from = match dir with `Left -> i - k | `Right -> i + k in
      let shifted = if from < 0 || from >= width then Ir.const0 g else word.(from) in
      Ir.mux2 g ~a:word.(i) ~b:shifted ~s)

let barrel g dir word ~amount =
  let shifted = ref word in
  Array.iteri (fun idx s -> shifted := shift_stage g dir !shifted s (1 lsl idx)) amount;
  !shifted

let barrel_shift_left g word ~amount = barrel g `Left word ~amount
let barrel_shift_right g word ~amount = barrel g `Right word ~amount

let reduce f = function
  | [||] -> invalid_arg "Word.reduce: empty word"
  | bits ->
    (* balanced tree keeps logic depth logarithmic *)
    let rec level = function
      | [] -> assert false
      | [ x ] -> x
      | xs ->
        let rec pair = function
          | [] -> []
          | [ x ] -> [ x ]
          | a :: b :: tl -> f a b :: pair tl
        in
        level (pair xs)
    in
    level (Array.to_list bits)

let reduce_or g w = reduce (Ir.or2 g) w
let reduce_and g w = reduce (Ir.and2 g) w
let is_zero g w = Ir.not_ g (reduce_or g w)
let equal g a b = is_zero g (logxor g a b)

let less_than g a b =
  (* a < b iff a - b borrows, i.e. carry out of a + ~b + 1 is 0 *)
  let _, carry = sub g a b in
  Ir.not_ g carry

let multiply g a b =
  let wa = Array.length a and wb = Array.length b in
  let width = wa + wb in
  let extend row shift =
    Array.init width (fun i ->
        let j = i - shift in
        if j < 0 || j >= wa then Ir.const0 g else row.(j))
  in
  let rows =
    List.init wb (fun k -> extend (Array.map (fun abit -> Ir.and2 g abit b.(k)) a) k)
  in
  match rows with
  | [] -> const g ~width 0
  | first :: rest ->
    List.fold_left (fun acc row -> fst (add g acc row)) first rest

let decoder g sel =
  let width = Array.length sel in
  let inverted = Array.map (Ir.not_ g) sel in
  Array.init (1 lsl width) (fun k ->
      let literals =
        Array.init width (fun i -> if (k lsr i) land 1 = 1 then sel.(i) else inverted.(i))
      in
      reduce_and g literals)

let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

let priority_encode g requests =
  let n = Array.length requests in
  if n = 0 then invalid_arg "Word.priority_encode: no requests";
  let width = max 1 (ceil_log2 n) in
  (* grant_i = req_i and none of the lower-indexed requests *)
  let blocked = ref (Ir.const0 g) in
  let grants =
    Array.map
      (fun req ->
        let grant = Ir.and2 g req (Ir.not_ g !blocked) in
        blocked := Ir.or2 g !blocked req;
        grant)
      requests
  in
  let index =
    Array.init width (fun bit ->
        let contributing =
          Array.to_list grants
          |> List.mapi (fun i grant -> if (i lsr bit) land 1 = 1 then Some grant else None)
          |> List.filter_map Fun.id
        in
        match contributing with
        | [] -> Ir.const0 g
        | bits -> reduce_or g (Array.of_list bits))
  in
  (index, !blocked)

let reg g ?enable ?name d =
  let bit_name i = Option.map (fun n -> Printf.sprintf "%s[%d]" n i) name in
  match enable with
  | None -> Array.mapi (fun i bit -> Ir.ff g ?name:(bit_name i) ~d:bit ()) d
  | Some en ->
    (* Recirculating register: q' = en ? d : q.  The flop is forward-
       declared so its own output can feed the recirculation mux. *)
    Array.mapi
      (fun i bit ->
        let q = Ir.ff_forward g ?name:(bit_name i) () in
        Ir.set_ff_data g q (Ir.mux2 g ~a:q ~b:bit ~s:en);
        q)
      d
