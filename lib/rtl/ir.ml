module Vec = Vartune_util.Vec

type node_id = int

type op =
  | Input of string
  | Const0
  | Const1
  | Not
  | Buf
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2
  | Xor3
  | Maj3
  | Ff of string

type node = { op : op; fanins : node_id array }

type t = {
  design_name : string;
  nodes : node Vec.t;
  cse : (op * node_id array, node_id) Hashtbl.t;
  mutable outs : (string * node_id) list;
  mutable ins : (string * node_id) list;
  mutable ff_counter : int;
  mutable c0 : node_id option;
  mutable c1 : node_id option;
}

let create ~name =
  {
    design_name = name;
    nodes = Vec.create ();
    cse = Hashtbl.create 4096;
    outs = [];
    ins = [];
    ff_counter = 0;
    c0 = None;
    c1 = None;
  }

let name t = t.design_name

let raw_add t op fanins = Vec.push t.nodes { op; fanins }

let hashconsed t op fanins =
  let key = (op, fanins) in
  match Hashtbl.find_opt t.cse key with
  | Some id -> id
  | None ->
    let id = raw_add t op fanins in
    Hashtbl.add t.cse key id;
    id

let input t port =
  let id = raw_add t (Input port) [||] in
  t.ins <- (port, id) :: t.ins;
  id

let const0 t =
  match t.c0 with
  | Some id -> id
  | None ->
    let id = raw_add t Const0 [||] in
    t.c0 <- Some id;
    id

let const1 t =
  match t.c1 with
  | Some id -> id
  | None ->
    let id = raw_add t Const1 [||] in
    t.c1 <- Some id;
    id

let op_of t id = (Vec.get t.nodes id).op
let fanins t id = (Vec.get t.nodes id).fanins

let is_const0 t id = op_of t id = Const0
let is_const1 t id = op_of t id = Const1

let sort2 a b = if a <= b then [| a; b |] else [| b; a |]

let sort3 a b c =
  let arr = [| a; b; c |] in
  Array.sort compare arr;
  arr

let rec not_ t a =
  if is_const0 t a then const1 t
  else if is_const1 t a then const0 t
  else
    match op_of t a with
    | Not -> (fanins t a).(0)
    | Input _ | Const0 | Const1 | Buf | And2 | Or2 | Xor2 | Xnor2 | Mux2 | Xor3 | Maj3
    | Ff _ ->
      hashconsed t Not [| a |]

and buf t a = hashconsed t Buf [| a |]

and and2 t a b =
  if a = b then a
  else if is_const0 t a || is_const0 t b then const0 t
  else if is_const1 t a then b
  else if is_const1 t b then a
  else hashconsed t And2 (sort2 a b)

and or2 t a b =
  if a = b then a
  else if is_const1 t a || is_const1 t b then const1 t
  else if is_const0 t a then b
  else if is_const0 t b then a
  else hashconsed t Or2 (sort2 a b)

and xor2 t a b =
  if a = b then const0 t
  else if is_const0 t a then b
  else if is_const0 t b then a
  else if is_const1 t a then not_ t b
  else if is_const1 t b then not_ t a
  else hashconsed t Xor2 (sort2 a b)

and xnor2 t a b =
  if a = b then const1 t
  else if is_const0 t a then not_ t b
  else if is_const0 t b then not_ t a
  else if is_const1 t a then b
  else if is_const1 t b then a
  else hashconsed t Xnor2 (sort2 a b)

and mux2 t ~a ~b ~s =
  if is_const0 t s then a
  else if is_const1 t s then b
  else if a = b then a
  else if is_const0 t a && is_const1 t b then s
  else if is_const1 t a && is_const0 t b then not_ t s
  else hashconsed t Mux2 [| a; b; s |]

and xor3 t a b c =
  if is_const0 t a then xor2 t b c
  else if is_const0 t b then xor2 t a c
  else if is_const0 t c then xor2 t a b
  else hashconsed t Xor3 (sort3 a b c)

and maj3 t a b c =
  if a = b then a
  else if a = c then a
  else if b = c then b
  else if is_const0 t a then and2 t b c
  else if is_const0 t b then and2 t a c
  else if is_const0 t c then and2 t a b
  else if is_const1 t a then or2 t b c
  else if is_const1 t b then or2 t a c
  else if is_const1 t c then or2 t a b
  else hashconsed t Maj3 (sort3 a b c)

let nand2 t a b = not_ t (and2 t a b)
let nor2 t a b = not_ t (or2 t a b)

let ff t ?name ~d () =
  t.ff_counter <- t.ff_counter + 1;
  let ff_name = Option.value name ~default:(Printf.sprintf "ff_%d" t.ff_counter) in
  raw_add t (Ff ff_name) [| d |]

let unconnected = -1

let ff_forward t ?name () =
  t.ff_counter <- t.ff_counter + 1;
  let ff_name = Option.value name ~default:(Printf.sprintf "ff_%d" t.ff_counter) in
  raw_add t (Ff ff_name) [| unconnected |]

let set_ff_data t ff_id d =
  let node = Vec.get t.nodes ff_id in
  match node.op with
  | Ff _ ->
    if node.fanins.(0) <> unconnected then
      invalid_arg "Ir.set_ff_data: flip-flop already connected";
    node.fanins.(0) <- d
  | Input _ | Const0 | Const1 | Not | Buf | And2 | Or2 | Xor2 | Xnor2 | Mux2 | Xor3
  | Maj3 ->
    invalid_arg "Ir.set_ff_data: not a flip-flop"

let ff_data_connected t ff_id =
  let node = Vec.get t.nodes ff_id in
  match node.op with
  | Ff _ -> node.fanins.(0) <> unconnected
  | Input _ | Const0 | Const1 | Not | Buf | And2 | Or2 | Xor2 | Xnor2 | Mux2 | Xor3
  | Maj3 ->
    invalid_arg "Ir.ff_data_connected: not a flip-flop"

let output t port id = t.outs <- (port, id) :: t.outs
let node_count t = Vec.length t.nodes
let outputs t = List.rev t.outs
let inputs t = List.rev t.ins

let iter_nodes t ~f = Vec.iteri (fun id node -> f id node.op node.fanins) t.nodes

let fingerprint t =
  (* FNV-1a over the full structure: every node's op and fanins plus the
     output bindings.  Two designs collide only if they are structurally
     identical (modulo 62-bit hash collisions) — unlike node_count, which
     conflates any two configurations of equal size. *)
  let h = ref 0x3bf29ce484222325 (* FNV offset basis truncated to 62 bits *) in
  let mix v = h := (!h lxor v) * 0x100000001b3 land max_int in
  iter_nodes t ~f:(fun id op fanins ->
      mix id;
      mix (Hashtbl.hash op);
      Array.iter mix fanins);
  List.iter
    (fun (port, id) ->
      mix (Hashtbl.hash port);
      mix id)
    (outputs t);
  !h

let op_tag = function
  | Input _ -> "input"
  | Const0 | Const1 -> "const"
  | Not -> "not"
  | Buf -> "buf"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Mux2 -> "mux2"
  | Xor3 -> "xor3"
  | Maj3 -> "maj3"
  | Ff _ -> "ff"

let stats t =
  let counts = Hashtbl.create 16 in
  iter_nodes t ~f:(fun _ op _ ->
      let tag = op_tag op in
      Hashtbl.replace counts tag (1 + Option.value (Hashtbl.find_opt counts tag) ~default:0));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
