(** Word-level combinators over the generic gate IR.

    A word is an array of node ids, least-significant bit first. *)

type word = Ir.node_id array

val const : Ir.t -> width:int -> int -> word
(** Two's-complement constant. *)

val inputs : Ir.t -> prefix:string -> width:int -> word

val outputs : Ir.t -> prefix:string -> word -> unit

val lognot : Ir.t -> word -> word
val logand : Ir.t -> word -> word -> word
val logor : Ir.t -> word -> word -> word
val logxor : Ir.t -> word -> word -> word

val add : Ir.t -> ?carry_in:Ir.node_id -> word -> word -> word * Ir.node_id
(** Ripple-carry adder built from Xor3/Maj3 pairs; returns (sum, carry
    out). *)

val add_fast : Ir.t -> ?carry_in:Ir.node_id -> ?group:int -> word -> word -> word * Ir.node_id
(** Carry-select adder: ripple groups of [group] bits (default 4)
    computed for both carry polarities, selected by the incoming group
    carry.  Logic depth is O(width/group + group) instead of O(width). *)

val one_hot_mux : Ir.t -> onehot:Ir.node_id array -> word list -> word
(** AND-OR selection network over one-hot select lines — the structure a
    synthesis tool builds for register-file read ports. *)

val sub : Ir.t -> word -> word -> word * Ir.node_id
(** [a - b]; the second component is the *borrow-free* flag (carry out). *)

val increment : Ir.t -> word -> word

val mux : Ir.t -> sel:Ir.node_id -> word -> word -> word
(** Bitwise 2:1 mux: [sel ? second : first]. *)

val mux_tree : Ir.t -> sel:word -> word list -> word
(** N-way mux over a power-of-two (padded) list of words, selector LSB
    first. *)

val barrel_shift_left : Ir.t -> word -> amount:word -> word
(** Logical left shift by a log2-width selector word. *)

val barrel_shift_right : Ir.t -> word -> amount:word -> word

val equal : Ir.t -> word -> word -> Ir.node_id
val is_zero : Ir.t -> word -> Ir.node_id
val less_than : Ir.t -> word -> word -> Ir.node_id
(** Unsigned [a < b]. *)

val reduce_or : Ir.t -> word -> Ir.node_id
val reduce_and : Ir.t -> word -> Ir.node_id

val multiply : Ir.t -> word -> word -> word
(** Unsigned array multiplier; result width is the sum of the operand
    widths. *)

val reg : Ir.t -> ?enable:Ir.node_id -> ?name:string -> word -> word
(** Registers a word; with [enable], bits recirculate when disabled. *)

val decoder : Ir.t -> word -> Ir.node_id array
(** Full binary decoder: [2^width] one-hot lines. *)

val priority_encode : Ir.t -> Ir.node_id array -> word * Ir.node_id
(** Lowest-index-wins priority encoder; returns (index word, any-valid). *)
