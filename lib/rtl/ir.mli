(** Technology-independent gate network.

    Elaborated RTL becomes a DAG of single-output generic nodes.  Adders
    appear as [Xor3]/[Maj3] pairs over the same three fanins, which the
    technology mapper may fuse into full-adder cells; everything else maps
    one node to one (or a few) library cells.

    The graph hash-conses combinational nodes, so logically identical
    subterms are shared. *)

type node_id = int

type op =
  | Input of string
  | Const0
  | Const1
  | Not
  | Buf
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2  (** fanins [a; b; s]: output = s ? b : a *)
  | Xor3  (** adder sum *)
  | Maj3  (** adder carry *)
  | Ff of string  (** D flip-flop; fanin [d]; the node is the Q output *)

type t

val create : name:string -> t
val name : t -> string

val input : t -> string -> node_id
val const0 : t -> node_id
val const1 : t -> node_id
val not_ : t -> node_id -> node_id
val buf : t -> node_id -> node_id
val and2 : t -> node_id -> node_id -> node_id
val or2 : t -> node_id -> node_id -> node_id
val xor2 : t -> node_id -> node_id -> node_id
val xnor2 : t -> node_id -> node_id -> node_id
val nand2 : t -> node_id -> node_id -> node_id
val nor2 : t -> node_id -> node_id -> node_id
val mux2 : t -> a:node_id -> b:node_id -> s:node_id -> node_id
val xor3 : t -> node_id -> node_id -> node_id -> node_id
val maj3 : t -> node_id -> node_id -> node_id -> node_id

val ff : t -> ?name:string -> d:node_id -> unit -> node_id
(** A flip-flop; never hash-consed. *)

val ff_forward : t -> ?name:string -> unit -> node_id
(** A flip-flop whose D input is supplied later with {!set_ff_data} —
    needed for feedback structures such as enabled registers. *)

val set_ff_data : t -> node_id -> node_id -> unit
(** [set_ff_data t ff d] connects the D input of a forward-declared
    flip-flop.  Raises [Invalid_argument] if [ff] is not a flip-flop or is
    already connected. *)

val ff_data_connected : t -> node_id -> bool

val output : t -> string -> node_id -> unit
(** Declares a primary output. *)

val op_of : t -> node_id -> op
val fanins : t -> node_id -> node_id array
val node_count : t -> int
val outputs : t -> (string * node_id) list
val inputs : t -> (string * node_id) list

val iter_nodes : t -> f:(node_id -> op -> node_id array -> unit) -> unit
(** Visits every node in creation (topological) order. *)

val fingerprint : t -> int
(** Structural hash over every node (op, fanins) and the output bindings.
    Designs that differ anywhere in the graph get different fingerprints
    (up to hash collisions), making it a safe memoisation key where the
    node count alone is not. *)

val stats : t -> (string * int) list
(** Node count per op tag. *)
