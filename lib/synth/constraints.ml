module Timing = Vartune_sta.Timing
module Restrict = Vartune_tuning.Restrict
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin

type t = {
  clock_period : float;
  guard_band : float;
  input_slew : float;
  clock_slew : float;
  output_load : float;
  max_fanout : int;
  max_transition : float;
  restrictions : Restrict.table option;
  max_iterations : int;
  area_recovery : bool;
}

let make ~clock_period ?(guard_band = 0.3) ?(input_slew = 0.05) ?(clock_slew = 0.04)
    ?(output_load = 0.004) ?(max_fanout = 16) ?(max_transition = 1.0) ?restrictions
    ?(max_iterations = 48) ?(area_recovery = true) () =
  { clock_period; guard_band; input_slew; clock_slew; output_load; max_fanout;
    max_transition; restrictions; max_iterations; area_recovery }

let timing_config t =
  {
    Timing.clock_period = t.clock_period;
    guard_band = t.guard_band;
    input_slew = t.input_slew;
    clock_slew = t.clock_slew;
    output_load = t.output_load;
    wire_cap_base = 0.0002;
    wire_cap_per_sink = 0.00015;
    wire_caps = None;
  }

let allows t ~cell ~slew ~load =
  match t.restrictions with
  | None -> true
  | Some table ->
    List.for_all
      (fun (p : Pin.t) ->
        Restrict.allows table ~cell:cell.Cell.name ~pin:p.name ~slew ~load)
      (Cell.output_pins cell)

let usable t cell =
  match t.restrictions with
  | None -> true
  | Some table -> Restrict.usable_cell table cell

let fold_windows t cell ~init ~f =
  match t.restrictions with
  | None -> init
  | Some table ->
    List.fold_left
      (fun acc (p : Pin.t) ->
        match Restrict.find table ~cell:cell.Cell.name ~pin:p.name with
        | Restrict.Unrestricted -> acc
        | Restrict.Unusable -> f acc 0.0 0.0
        | Restrict.Window w -> f acc w.Restrict.load_max w.Restrict.slew_max)
      init (Cell.output_pins cell)

let window_load_max t cell =
  fold_windows t cell ~init:infinity ~f:(fun acc load_max _ -> Float.min acc load_max)

let window_slew_max t cell =
  fold_windows t cell ~init:infinity ~f:(fun acc _ slew_max -> Float.min acc slew_max)
