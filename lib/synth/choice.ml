module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell

let family_ladder lib ~family =
  match Library.family_members lib family with
  | [] -> failwith (Printf.sprintf "Choice: library has no family %s" family)
  | members -> members

let fits cons (cell : Cell.t) ~load ~slew =
  load <= Cell.max_load cell && Constraints.allows cons ~cell ~slew ~load

let pick cons lib ~family ~load ~slew =
  let ladder = family_ladder lib ~family in
  let usable = List.filter (Constraints.usable cons) ladder in
  let candidates = if usable = [] then ladder else usable in
  match List.find_opt (fun c -> fits cons c ~load ~slew) candidates with
  | Some c -> c
  | None -> List.nth candidates (List.length candidates - 1)

let upsize cons lib (cell : Cell.t) ~load ~slew =
  family_ladder lib ~family:cell.family
  |> List.find_opt (fun (c : Cell.t) ->
         c.drive_strength > cell.drive_strength
         && Constraints.usable cons c
         && fits cons c ~load ~slew)

let downsize cons lib (cell : Cell.t) ~load ~slew =
  family_ladder lib ~family:cell.family
  |> List.filter (fun (c : Cell.t) ->
         c.drive_strength < cell.drive_strength
         && Constraints.usable cons c
         && fits cons c ~load ~slew)
  |> List.rev
  |> function
  | [] -> None
  | c :: _ -> Some c
