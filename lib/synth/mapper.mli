(** Technology mapping: generic gate network → mapped netlist.

    The mapper covers IR nodes with library cells using local pattern
    matching:

    - AND/OR trees collapse into up-to-4-input gates;
    - inverters absorb into NAND/NOR/XNOR/inverting-mux covers
      (De Morgan double bubbles become plain NAND/NOR, single bubbles
      become the B-variant cells);
    - Xor3/Maj3 pairs over the same fanins fuse into full-adder cells
      ([Area] style) or stay as dedicated XOR3/MAJ3 cells ([Delay]
      style).

    Initial drive strengths are chosen from fanout estimates; the sizer
    refines them.  Cells marked unusable by tuning restrictions are
    avoided whenever a usable alternative exists. *)

type style = Area | Delay

val map :
  ?style:style -> Constraints.t -> Vartune_liberty.Library.t -> Vartune_rtl.Ir.t ->
  Vartune_netlist.Netlist.t
(** Maps the network.  The result passes {!Vartune_netlist.Check.validate}. *)
