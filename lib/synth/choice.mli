(** Drive-strength selection within a cell family, honouring electrical
    limits and tuning windows. *)

val family_ladder :
  Vartune_liberty.Library.t -> family:string -> Vartune_liberty.Cell.t list
(** Drive-sorted members of a family.  Raises [Failure] if the family is
    absent from the library. *)

val pick :
  Constraints.t ->
  Vartune_liberty.Library.t ->
  family:string ->
  load:float ->
  slew:float ->
  Vartune_liberty.Cell.t
(** Smallest drive meeting: library [max_capacitance >= load], window
    admits [(slew, load)].  Falls back to the largest usable drive (the
    least-violating choice) when nothing fits, and to the largest drive
    outright when tuning marked the whole family unusable — synthesis
    must keep the netlist functional. *)

val fits :
  Constraints.t -> Vartune_liberty.Cell.t -> load:float -> slew:float -> bool
(** Whether a specific cell satisfies drive limit and window at the
    operating point. *)

val upsize :
  Constraints.t ->
  Vartune_liberty.Library.t ->
  Vartune_liberty.Cell.t ->
  load:float ->
  slew:float ->
  Vartune_liberty.Cell.t option
(** Next usable drive strictly above the current cell's, admitting the
    operating point; [None] at the top of the ladder. *)

val downsize :
  Constraints.t ->
  Vartune_liberty.Library.t ->
  Vartune_liberty.Cell.t ->
  load:float ->
  slew:float ->
  Vartune_liberty.Cell.t option
(** Next usable drive strictly below, still fitting the operating
    point. *)
