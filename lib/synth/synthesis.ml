module Netlist = Vartune_netlist.Netlist
module Check = Vartune_netlist.Check
module Timing = Vartune_sta.Timing
module Obs = Vartune_obs.Obs

let src = Logs.Src.create "vartune.synth" ~doc:"synthesis driver"

module Log = (val Logs.src_log src : Logs.LOG)

let c_runs = Obs.Counter.make "synth.runs"

type result = {
  netlist : Netlist.t;
  timing : Timing.t;
  feasible : bool;
  worst_slack : float;
  area : float;
  instances : int;
  sizer : Sizer.report;
}

let run ?style ?incremental cons lib ir =
  Obs.span "synth.run"
    ~attrs:(fun () -> [ ("period", string_of_float cons.Constraints.clock_period) ])
  @@ fun () ->
  Obs.Counter.incr c_runs;
  let nl = Obs.span "synth.map" (fun () -> Mapper.map ?style cons lib ir) in
  Check.validate_exn nl;
  let timing, sizer =
    Obs.span "synth.size" (fun () -> Sizer.optimize ?incremental cons lib nl)
  in
  let worst_slack = Timing.worst_slack timing in
  let result =
    {
      netlist = nl;
      timing;
      feasible = worst_slack >= 0.0;
      worst_slack;
      area = Netlist.total_area nl;
      instances = Netlist.instance_count nl;
      sizer;
    }
  in
  Log.debug (fun m ->
      m "synth %s: period=%.3f slack=%.3f area=%.0f cells=%d" (Netlist.name nl)
        cons.Constraints.clock_period worst_slack result.area result.instances);
  result

let min_period ?(lo = 0.5) ?(hi = 20.0) ?(tolerance = 0.02) ?incremental lib ir =
  Obs.span "synth.min_period" @@ fun () ->
  (* Technology mapping consults only drive ladders and load limits
     (never the clock period) when no tuning restrictions are installed,
     so the probes below all start from the same mapped netlist: map
     once, snapshot, and re-import per bisection probe instead of
     re-mapping from the IR each time. *)
  let cons_at period = Constraints.make ~clock_period:period ~area_recovery:false () in
  let base = Obs.span "synth.map" (fun () -> Mapper.map (cons_at hi) lib ir) in
  Check.validate_exn base;
  let repr = Netlist.export base in
  let feasible_at period =
    Obs.span "synth.run"
      ~attrs:(fun () -> [ ("period", string_of_float period) ])
    @@ fun () ->
    Obs.Counter.incr c_runs;
    let nl = Netlist.import repr in
    let timing, _ =
      Obs.span "synth.size" (fun () ->
          Sizer.optimize ?incremental (cons_at period) lib nl)
    in
    Timing.worst_slack timing >= 0.0
  in
  if not (feasible_at hi) then hi
  else begin
    let rec bisect lo hi =
      (* invariant: hi feasible, lo infeasible *)
      if hi -. lo <= tolerance then hi
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if feasible_at mid then bisect lo mid else bisect mid hi
      end
    in
    if feasible_at lo then lo else bisect lo hi
  end
