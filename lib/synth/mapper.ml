module Ir = Vartune_rtl.Ir
module Netlist = Vartune_netlist.Netlist
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell

type style = Area | Delay

(* A cover assigns one or two library cells to a visible IR node.  Pins
   reference IR nodes whose nets feed the cell. *)
type shape =
  | Tie of string  (* family *)
  | Gate of { family : string; pins : (string * Ir.node_id) list }
  | Gate_inv of { family : string; pins : (string * Ir.node_id) list }
    (* gate followed by an inverter; used by Delay style for AND/OR *)
  | Adder of { pins : (string * Ir.node_id) list; carry : Ir.node_id }
    (* full adder rooted at the sum node; [carry] is the fused Maj3 *)
  | Flop of { d : Ir.node_id }

let letters = [| "A"; "B"; "C"; "D" |]

let letter_pins nodes = List.mapi (fun i n -> (letters.(i), n)) nodes

let wide_family base n = Printf.sprintf "%s%d" base n

(* ------------------------------------------------------------------ *)
(* Cover selection                                                      *)
(* ------------------------------------------------------------------ *)

type cover_state = {
  graph : Ir.t;
  refs : int array;
  absorbed : bool array;
  covers : (Ir.node_id, shape) Hashtbl.t;
  fused_carry : (Ir.node_id, Ir.node_id) Hashtbl.t;  (* carry node -> sum root *)
  style : style;
}

(* Nodes reachable from a primary output (through FF data inputs) — dead
   speculative logic must not become dangling instances. *)
let liveness graph =
  let live = Array.make (Ir.node_count graph) false in
  let rec visit n =
    if n >= 0 && not live.(n) then begin
      live.(n) <- true;
      Array.iter visit (Ir.fanins graph n)
    end
  in
  List.iter (fun (_, n) -> visit n) (Ir.outputs graph);
  live

let count_refs graph live =
  let refs = Array.make (Ir.node_count graph) 0 in
  Ir.iter_nodes graph ~f:(fun id _ fanins ->
      if live.(id) then Array.iter (fun f -> if f >= 0 then refs.(f) <- refs.(f) + 1) fanins);
  List.iter (fun (_, n) -> refs.(n) <- refs.(n) + 1) (Ir.outputs graph);
  refs

(* Collapse a same-op tree below [node] into at most [limit] leaves,
   returning the leaves and the interior nodes consumed. *)
let collect_tree st op node ~limit =
  let expandable n =
    Ir.op_of st.graph n = op && st.refs.(n) = 1 && not st.absorbed.(n)
  in
  let rec expand leaves interior =
    if List.length leaves >= limit then (leaves, interior)
    else
      match List.find_opt expandable leaves with
      | None -> (leaves, interior)
      | Some n ->
        if List.length leaves - 1 + 2 > limit then (leaves, interior)
        else begin
          let fi = Ir.fanins st.graph n in
          let leaves' =
            List.concat_map (fun l -> if l = n then [ fi.(0); fi.(1) ] else [ l ]) leaves
          in
          expand leaves' (n :: interior)
        end
  in
  let fi = Ir.fanins st.graph node in
  expand [ fi.(0); fi.(1) ] []

let mark_absorbed st nodes = List.iter (fun n -> st.absorbed.(n) <- true) nodes

let is_single_use_not st n = Ir.op_of st.graph n = Ir.Not && st.refs.(n) = 1 && not st.absorbed.(n)

let not_fanin st n = (Ir.fanins st.graph n).(0)

(* Cover an AND/OR rooted at [node]. [negated] = the cover's consumer wants
   the complement (a Not parent is absorbing). *)
let cover_and_or st node op ~negated =
  let base_pos, base_neg, bubble_family =
    match op with
    | Ir.And2 -> ("AN", "ND", "NR2B")
    | Ir.Or2 -> ("OR", "NR", "ND2B")
    | Ir.Input _ | Ir.Const0 | Ir.Const1 | Ir.Not | Ir.Buf | Ir.Xor2 | Ir.Xnor2
    | Ir.Mux2 | Ir.Xor3 | Ir.Maj3 | Ir.Ff _ ->
      assert false
  in
  let leaves, interior = collect_tree st op node ~limit:4 in
  let n = List.length leaves in
  if n = 2 && not negated then begin
    (* bubble patterns on plain 2-input gates *)
    match leaves with
    | [ x; y ] when is_single_use_not st x && is_single_use_not st y ->
      (* De Morgan: and(!x,!y) = nor(x,y); or(!x,!y) = nand(x,y) *)
      mark_absorbed st (interior @ [ x; y ]);
      let demorgan = match op with Ir.And2 -> "NR2" | _ -> "ND2" in
      Gate { family = demorgan; pins = letter_pins [ not_fanin st x; not_fanin st y ] }
    | [ x; y ] when is_single_use_not st y ->
      mark_absorbed st (interior @ [ y ]);
      Gate { family = bubble_family; pins = [ ("A", x); ("B", not_fanin st y) ] }
    | [ x; y ] when is_single_use_not st x ->
      mark_absorbed st (interior @ [ x ]);
      Gate { family = bubble_family; pins = [ ("A", y); ("B", not_fanin st x) ] }
    | _ ->
      mark_absorbed st interior;
      (match st.style with
      | Area -> Gate { family = wide_family base_pos 2; pins = letter_pins leaves }
      | Delay -> Gate_inv { family = wide_family base_neg 2; pins = letter_pins leaves })
  end
  else begin
    mark_absorbed st interior;
    if negated then Gate { family = wide_family base_neg n; pins = letter_pins leaves }
    else
      match st.style with
      | Area -> Gate { family = wide_family base_pos n; pins = letter_pins leaves }
      | Delay -> Gate_inv { family = wide_family base_neg n; pins = letter_pins leaves }
  end

let assign_covers graph style =
  let live = liveness graph in
  let refs = count_refs graph live in
  let st =
    {
      graph;
      refs;
      absorbed = Array.make (Ir.node_count graph) false;
      covers = Hashtbl.create (Ir.node_count graph);
      fused_carry = Hashtbl.create 256;
      style;
    }
  in
  (* Xor3 lookup for full-adder fusion *)
  let xor3_by_fanins = Hashtbl.create 256 in
  Ir.iter_nodes graph ~f:(fun id op fanins ->
      if op = Ir.Xor3 then Hashtbl.replace xor3_by_fanins (Array.to_list fanins) id);
  (* Parents before children: descending id order (fanins have smaller
     ids for combinational nodes). *)
  for id = Ir.node_count graph - 1 downto 0 do
    if
      live.(id)
      && (not st.absorbed.(id))
      && (not (Hashtbl.mem st.fused_carry id))
      && not (Hashtbl.mem st.covers id)
    then begin
      let cover =
        match Ir.op_of graph id with
        | Ir.Input _ -> None
        | Ir.Const0 -> Some (Tie "TIE0")
        | Ir.Const1 -> Some (Tie "TIE1")
        | Ir.Ff _ -> Some (Flop { d = (Ir.fanins graph id).(0) })
        | Ir.Buf -> Some (Gate { family = "BUF"; pins = [ ("A", (Ir.fanins graph id).(0)) ] })
        | Ir.Not -> begin
          let f = (Ir.fanins graph id).(0) in
          let absorbable = st.refs.(f) = 1 && not st.absorbed.(f) in
          match Ir.op_of graph f with
          | Ir.And2 when absorbable ->
            st.absorbed.(f) <- true;
            Some (cover_and_or st f Ir.And2 ~negated:true)
          | Ir.Or2 when absorbable ->
            st.absorbed.(f) <- true;
            Some (cover_and_or st f Ir.Or2 ~negated:true)
          | Ir.Xor2 when absorbable ->
            st.absorbed.(f) <- true;
            Some (Gate { family = "XN2"; pins = letter_pins (Array.to_list (Ir.fanins graph f)) })
          | Ir.Xnor2 when absorbable ->
            st.absorbed.(f) <- true;
            Some (Gate { family = "XO2"; pins = letter_pins (Array.to_list (Ir.fanins graph f)) })
          | Ir.Mux2 when absorbable ->
            st.absorbed.(f) <- true;
            let fi = Ir.fanins graph f in
            Some (Gate { family = "MU2I"; pins = [ ("A", fi.(0)); ("B", fi.(1)); ("S", fi.(2)) ] })
          | Ir.Input _ | Ir.Const0 | Ir.Const1 | Ir.Not | Ir.Buf | Ir.And2 | Ir.Or2
          | Ir.Xor2 | Ir.Xnor2 | Ir.Mux2 | Ir.Xor3 | Ir.Maj3 | Ir.Ff _ ->
            Some (Gate { family = "INV"; pins = [ ("A", f) ] })
        end
        | Ir.And2 -> Some (cover_and_or st id Ir.And2 ~negated:false)
        | Ir.Or2 -> Some (cover_and_or st id Ir.Or2 ~negated:false)
        | Ir.Xor2 -> Some (Gate { family = "XO2"; pins = letter_pins (Array.to_list (Ir.fanins graph id)) })
        | Ir.Xnor2 -> Some (Gate { family = "XN2"; pins = letter_pins (Array.to_list (Ir.fanins graph id)) })
        | Ir.Mux2 ->
          let fi = Ir.fanins graph id in
          Some (Gate { family = "MU2"; pins = [ ("A", fi.(0)); ("B", fi.(1)); ("S", fi.(2)) ] })
        | Ir.Xor3 ->
          let fi = Ir.fanins graph id in
          Some (Gate { family = "XO3"; pins = letter_pins (Array.to_list fi) })
        | Ir.Maj3 -> begin
          let fi = Ir.fanins graph id in
          let adder_pins = [ ("A", fi.(0)); ("B", fi.(1)); ("CI", fi.(2)) ] in
          match
            (style, Hashtbl.find_opt xor3_by_fanins (Array.to_list fi))
          with
          | Area, Some sum_id
            when live.(sum_id)
                 && (not st.absorbed.(sum_id))
                 && not (Hashtbl.mem st.covers sum_id) ->
            (* fuse: the sum node will carry the Adder cover *)
            Hashtbl.replace st.fused_carry id sum_id;
            Hashtbl.replace st.covers sum_id (Adder { pins = adder_pins; carry = id });
            None
          | (Area | Delay), _ -> Some (Gate { family = "MAJ3"; pins = adder_pins })
        end
      in
      match cover with
      | Some shape -> Hashtbl.replace st.covers id shape
      | None -> ()
    end
  done;
  st

(* ------------------------------------------------------------------ *)
(* Netlist construction                                                 *)
(* ------------------------------------------------------------------ *)

let map ?(style = Area) cons lib graph =
  let st = assign_covers graph style in
  let nl = Netlist.create ~name:(Ir.name graph) in
  let clock = Netlist.add_net nl ~net_name:"clk" () in
  Netlist.set_clock nl clock;
  let nets = Hashtbl.create (Ir.node_count graph) in
  let net_of id =
    match Hashtbl.find_opt nets id with
    | Some n -> n
    | None ->
      let n = Netlist.add_net nl () in
      Hashtbl.replace nets id n;
      n
  in
  (* nets for primary inputs *)
  List.iter
    (fun (_, id) ->
      let n = net_of id in
      Netlist.mark_primary_input nl n)
    (Ir.inputs graph);
  (* estimate loads from fanout counts; refined by the sizer *)
  let unit_cap =
    match Library.find_opt lib "INV_1" with
    | Some inv -> Cell.input_capacitance inv "A"
    | None -> 0.001
  in
  let est_load id = (float_of_int (max 1 st.refs.(id)) *. 1.8 *. unit_cap) +. 0.0004 in
  let est_slew = 0.1 in
  let pick family ~load = Choice.pick cons lib ~family ~load ~slew:est_slew in
  let emit id shape =
    match shape with
    | Tie family ->
      let cell = pick family ~load:(est_load id) in
      ignore
        (Netlist.add_instance nl
           ~inst_name:(Netlist.fresh_name nl ~prefix:"tie")
           ~cell ~inputs:[] ~outputs:[ ("Z", net_of id) ])
    | Gate { family; pins } ->
      let cell = pick family ~load:(est_load id) in
      let inputs = List.map (fun (p, n) -> (p, net_of n)) pins in
      let out_pin =
        match Cell.output_pins cell with
        | p :: _ -> p.Vartune_liberty.Pin.name
        | [] -> "Z"
      in
      ignore
        (Netlist.add_instance nl
           ~inst_name:(Netlist.fresh_name nl ~prefix:(String.lowercase_ascii family))
           ~cell ~inputs
           ~outputs:[ (out_pin, net_of id) ])
    | Gate_inv { family; pins } ->
      let mid = Netlist.add_net nl () in
      let gate_cell = pick family ~load:(2.2 *. unit_cap) in
      let inputs = List.map (fun (p, n) -> (p, net_of n)) pins in
      ignore
        (Netlist.add_instance nl
           ~inst_name:(Netlist.fresh_name nl ~prefix:(String.lowercase_ascii family))
           ~cell:gate_cell ~inputs ~outputs:[ ("Z", mid) ]);
      let inv_cell = pick "INV" ~load:(est_load id) in
      ignore
        (Netlist.add_instance nl
           ~inst_name:(Netlist.fresh_name nl ~prefix:"inv")
           ~cell:inv_cell ~inputs:[ ("A", mid) ] ~outputs:[ ("Z", net_of id) ])
    | Adder { pins; carry } ->
      let load = Float.max (est_load id) (est_load carry) in
      let cell = pick "FA1" ~load in
      let inputs = List.map (fun (p, n) -> (p, net_of n)) pins in
      ignore
        (Netlist.add_instance nl
           ~inst_name:(Netlist.fresh_name nl ~prefix:"fa")
           ~cell ~inputs
           ~outputs:[ ("S", net_of id); ("CO", net_of carry) ])
    | Flop { d } ->
      let cell = pick "DFF" ~load:(est_load id) in
      let ck = Option.value cell.Cell.clock_pin ~default:"CK" in
      ignore
        (Netlist.add_instance nl
           ~inst_name:(Netlist.fresh_name nl ~prefix:"dff")
           ~cell
           ~inputs:[ ("D", net_of d); (ck, clock) ]
           ~outputs:[ ("Q", net_of id) ])
  in
  (* all nets first (covers may reference forward FF outputs), then
     instances *)
  Hashtbl.iter (fun id _ -> ignore (net_of id)) st.covers;
  Hashtbl.iter (fun carry _ -> ignore (net_of carry)) st.fused_carry;
  Hashtbl.iter emit st.covers;
  List.iter (fun (_, id) -> Netlist.mark_primary_output nl (net_of id)) (Ir.outputs graph);
  nl
