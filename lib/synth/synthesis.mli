(** Synthesis driver: map, optimise, report.

    Mirrors the paper's flow: the design is synthesised against a
    (statistical) library under a clock constraint, optionally with
    tuning restrictions installed, and judged on feasibility (positive
    slack), area and — downstream — design sigma. *)

type result = {
  netlist : Vartune_netlist.Netlist.t;
  timing : Vartune_sta.Timing.t;
  feasible : bool;  (** non-negative worst slack *)
  worst_slack : float;
  area : float;  (** total cell area, µm² *)
  instances : int;
  sizer : Sizer.report;
}

val run :
  ?style:Mapper.style ->
  Constraints.t ->
  Vartune_liberty.Library.t ->
  Vartune_rtl.Ir.t ->
  result

val min_period :
  ?lo:float ->
  ?hi:float ->
  ?tolerance:float ->
  Vartune_liberty.Library.t ->
  Vartune_rtl.Ir.t ->
  float
(** Smallest feasible clock period, by bisection on {!run} feasibility
    (the paper reduces the clock until synthesis fails to close). *)
