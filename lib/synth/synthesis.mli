(** Synthesis driver: map, optimise, report.

    Mirrors the paper's flow: the design is synthesised against a
    (statistical) library under a clock constraint, optionally with
    tuning restrictions installed, and judged on feasibility (positive
    slack), area and — downstream — design sigma. *)

type result = {
  netlist : Vartune_netlist.Netlist.t;
  timing : Vartune_sta.Timing.t;
  feasible : bool;  (** non-negative worst slack *)
  worst_slack : float;
  area : float;  (** total cell area, µm² *)
  instances : int;
  sizer : Sizer.report;
}

val run :
  ?style:Mapper.style ->
  ?incremental:bool ->
  Constraints.t ->
  Vartune_liberty.Library.t ->
  Vartune_rtl.Ir.t ->
  result
(** [incremental] (default [true]) is passed to {!Sizer.optimize}; it
    trades analysis cost only, never results. *)

val min_period :
  ?lo:float ->
  ?hi:float ->
  ?tolerance:float ->
  ?incremental:bool ->
  Vartune_liberty.Library.t ->
  Vartune_rtl.Ir.t ->
  float
(** Smallest feasible clock period, by bisection on synthesis
    feasibility (the paper reduces the clock until synthesis fails to
    close).  The design is mapped once — mapping is clock-independent
    without tuning restrictions — and each probe re-imports the mapped
    netlist and re-runs sizing ({!Sizer.optimize} [?incremental]) at the
    probe period. *)
