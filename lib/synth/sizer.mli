(** Post-mapping netlist optimisation.

    Iterates static timing with local moves:

    - {b electrical repair}: upsize or buffer drivers whose load exceeds
      the cell's drive limit (or its tuning window's load bound), split
      high-fanout nets with buffer trees;
    - {b timing recovery}: upsize cells on violating paths; when a cell
      is already at (or blocked from) its top drive, decompose complex
      cells into faster simple-cell networks (full adders into
      XOR3+MAJ3, AND/OR into NAND/NOR+INV, muxes into inverting muxes) —
      the mechanism behind the paper's observation that tight timing
      yields a larger variety of simple cells;
    - {b window repair}: when tuning restricts a cell to a slew window,
      upsize the driver of any input whose slew exceeds it;
    - {b area recovery}: downsize off-critical cells while their path
      slack allows. *)

type report = {
  iterations : int;
  resized : int;
  buffered : int;
  decomposed : int;
  downsized : int;
  window_violations : int;  (** remaining hard window violations *)
}

val worst_input_slew :
  Vartune_sta.Timing.t -> Vartune_netlist.Netlist.t -> Vartune_netlist.Netlist.instance ->
  float
(** Worst slew over the instance's data inputs (clock pin excluded);
    falls back to the analysis input slew for source-only cells. *)

val count_window_violations :
  Constraints.t -> Vartune_sta.Timing.t -> Vartune_netlist.Netlist.t -> int

val optimize :
  ?incremental:bool ->
  Constraints.t -> Vartune_liberty.Library.t -> Vartune_netlist.Netlist.t ->
  Vartune_sta.Timing.t * report
(** Runs the full loop and returns the final timing analysis.

    With [incremental] (the default) the analysis between move rounds is
    refreshed with {!Vartune_sta.Timing.retime} over the cells actually
    swapped — O(affected cone) instead of O(design) — falling back to a
    full run after structural edits (buffering, decomposition).  Retime
    is bit-identical to a full run, so [~incremental:false] changes cost
    only; it exists for benchmarking the speedup. *)
