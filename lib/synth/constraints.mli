(** Synthesis constraints.

    Besides the usual clock/electrical rules this carries the paper's
    contribution: optional per-output-pin (slew, load) windows produced
    by library tuning, which the mapper and sizer treat as hard limits on
    cell choice. *)

type t = {
  clock_period : float;  (** ns *)
  guard_band : float;  (** clock uncertainty, ns (paper: 300 ps) *)
  input_slew : float;
  clock_slew : float;
  output_load : float;  (** external load on primary outputs, pF *)
  max_fanout : int;  (** buffering threshold *)
  max_transition : float;  (** global slew limit, ns *)
  restrictions : Vartune_tuning.Restrict.table option;
  max_iterations : int;  (** timing-optimisation iteration budget *)
  area_recovery : bool;  (** downsize off-critical cells when slack allows *)
}

val make :
  clock_period:float ->
  ?guard_band:float ->
  ?input_slew:float ->
  ?clock_slew:float ->
  ?output_load:float ->
  ?max_fanout:int ->
  ?max_transition:float ->
  ?restrictions:Vartune_tuning.Restrict.table ->
  ?max_iterations:int ->
  ?area_recovery:bool ->
  unit ->
  t

val timing_config : t -> Vartune_sta.Timing.config

val allows :
  t -> cell:Vartune_liberty.Cell.t -> slew:float -> load:float -> bool
(** Whether every output-pin window of [cell] admits the operating point.
    True when no restrictions are installed. *)

val usable : t -> Vartune_liberty.Cell.t -> bool
(** False iff tuning marked some output pin of the cell unusable. *)

val window_load_max : t -> Vartune_liberty.Cell.t -> float
(** Tightest load upper bound across the cell's output-pin windows;
    [infinity] when unrestricted. *)

val window_slew_max : t -> Vartune_liberty.Cell.t -> float
