module Netlist = Vartune_netlist.Netlist
module Timing = Vartune_sta.Timing
module Path = Vartune_sta.Path
module Library = Vartune_liberty.Library
module Cell = Vartune_liberty.Cell
module Pin = Vartune_liberty.Pin
module Arc = Vartune_liberty.Arc

type report = {
  iterations : int;
  resized : int;
  buffered : int;
  decomposed : int;
  downsized : int;
  window_violations : int;
}

type state = {
  cons : Constraints.t;
  lib : Library.t;
  nl : Netlist.t;
  incremental : bool;
  mutable resized : int;
  mutable buffered : int;
  mutable decomposed : int;
  mutable downsized : int;
  (* dirty-set for incremental retiming: cell swaps since the last
     analysis, and whether a structural edit forces a full re-run *)
  mutable touched : Netlist.inst_id list;
  mutable structural : bool;
}

let swapped st inst_id = st.touched <- inst_id :: st.touched

(* Refresh the timing analysis after a round of edits.  Cell swaps go
   through [Timing.retime] (O(affected cone)); structural edits —
   buffering, decomposition — rebuild the graph with a full run.  Both
   paths yield bit-identical analyses, so [incremental] only changes
   cost, never the optimisation trajectory. *)
let refresh st timing =
  if st.structural || not st.incremental then begin
    st.structural <- false;
    st.touched <- [];
    Timing.run (Timing.config timing) st.nl
  end
  else begin
    let changed = st.touched in
    st.touched <- [];
    Timing.retime timing ~changed
  end

let worst_input_slew timing nl (inst : Netlist.instance) =
  ignore nl;
  let clock_pin = inst.cell.Cell.clock_pin in
  List.fold_left
    (fun acc (pin, nid) ->
      if Some pin = clock_pin then acc else Float.max acc (Timing.net_slew timing nid))
    (Timing.config timing).Timing.input_slew
    inst.inputs

(* worst-case delay of a cell at an operating point, for local estimates *)
let cell_delay (cell : Cell.t) ~slew ~load =
  List.fold_left
    (fun acc arc -> Float.max acc (Arc.delay arc ~slew ~load))
    0.0 (Cell.arcs cell)

let count_window_violations cons timing nl =
  match cons.Constraints.restrictions with
  | None -> 0
  | Some _ ->
    Netlist.fold_instances nl ~init:0 ~f:(fun acc inst ->
        let slew = worst_input_slew timing nl inst in
        let violated =
          List.exists
            (fun (_, nid) ->
              not
                (Constraints.allows cons ~cell:inst.cell ~slew
                   ~load:(Timing.net_load timing nid)))
            inst.outputs
        in
        if violated then acc + 1 else acc)

(* ------------------------------------------------------------------ *)
(* Buffering                                                           *)
(* ------------------------------------------------------------------ *)

let chunk n xs =
  let rec go acc cur count = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if count = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (count + 1) rest
  in
  go [] [] 0 xs

(* Split a heavy net: sinks move onto new nets behind buffers. *)
let buffer_net st ~net_id ~groups =
  let nl = st.nl in
  let net = Netlist.net nl net_id in
  let sinks = net.Netlist.sinks in
  let n_sinks = List.length sinks in
  if n_sinks < 2 || groups < 1 then false
  else begin
    let per_group = max 1 ((n_sinks + groups - 1) / groups) in
    let batches = chunk per_group sinks in
    match batches with
    | [] | [ _ ] -> false
    | _ ->
      List.iter
        (fun batch ->
          let new_net = Netlist.add_net nl () in
          (* rewire before creating the buffer so the new net's sink list
             is exact when we size the buffer *)
          List.iter
            (fun (r : Netlist.pin_ref) ->
              Netlist.rewire_input nl ~inst:r.inst ~pin:r.pin new_net)
            batch;
          let load_est = float_of_int (List.length batch) *. 0.002 in
          let cell = Choice.pick st.cons st.lib ~family:"BUF" ~load:load_est ~slew:0.1 in
          ignore
            (Netlist.add_instance nl
               ~inst_name:(Netlist.fresh_name nl ~prefix:"buf")
               ~cell
               ~inputs:[ ("A", net_id) ]
               ~outputs:[ ("Z", new_net) ]);
          st.buffered <- st.buffered + 1)
        batches;
      st.structural <- true;
      true
  end

let fix_electrical st timing =
  let nl = st.nl in
  let edits = ref 0 in
  let max_fanout = st.cons.Constraints.max_fanout in
  Netlist.iter_instances nl ~f:(fun inst ->
      let slew = worst_input_slew timing nl inst in
      List.iter
        (fun (_, nid) ->
          let net = Netlist.net nl nid in
          let load = Timing.net_load timing nid in
          let fanout = List.length net.Netlist.sinks in
          let cap_limit =
            Float.min (Cell.max_load inst.cell) (Constraints.window_load_max st.cons inst.cell)
          in
          if load > cap_limit || fanout > max_fanout then begin
            (* Prefer a bigger driver; buffer when the ladder is exhausted
               or the fanout rule is violated outright. *)
            match
              if fanout > max_fanout then None
              else Choice.upsize st.cons st.lib inst.cell ~load ~slew
            with
            | Some bigger ->
              Netlist.set_cell nl inst.inst_id bigger;
              swapped st inst.inst_id;
              st.resized <- st.resized + 1;
              incr edits
            | None ->
              let groups =
                max
                  ((fanout + max_fanout - 1) / max_fanout)
                  (1 + int_of_float (load /. Float.max cap_limit 0.001))
              in
              if buffer_net st ~net_id:nid ~groups then incr edits
          end)
        inst.outputs)
  ;
  !edits

(* ------------------------------------------------------------------ *)
(* Decomposition of complex cells into simple-cell networks            *)
(* ------------------------------------------------------------------ *)

let replace_gate_with_chain st inst ~gate_family ~pins_map =
  (* [pins_map]: (family input pin, source net) list for the first gate;
     an inverter restores polarity onto the original output net. *)
  let nl = st.nl in
  let out_net = match inst.Netlist.outputs with [ (_, n) ] -> n | _ -> raise Exit in
  Netlist.remove_instance nl inst.inst_id;
  let mid = Netlist.add_net nl () in
  let gate_cell = Choice.pick st.cons st.lib ~family:gate_family ~load:0.002 ~slew:0.1 in
  ignore
    (Netlist.add_instance nl
       ~inst_name:(Netlist.fresh_name nl ~prefix:(String.lowercase_ascii gate_family))
       ~cell:gate_cell ~inputs:pins_map ~outputs:[ ("Z", mid) ]);
  let inv_cell = Choice.pick st.cons st.lib ~family:"INV" ~load:0.003 ~slew:0.1 in
  ignore
    (Netlist.add_instance nl
       ~inst_name:(Netlist.fresh_name nl ~prefix:"inv")
       ~cell:inv_cell ~inputs:[ ("A", mid) ] ~outputs:[ ("Z", out_net) ]);
  st.decomposed <- st.decomposed + 1;
  st.structural <- true;
  true

let decompose st (inst : Netlist.instance) =
  let nl = st.nl in
  let family = inst.cell.Cell.family in
  let input net_pin = List.assoc net_pin inst.inputs in
  try
    match family with
    | "FA1" -> begin
      let a = input "A" and b = input "B" and ci = input "CI" in
      match (List.assoc_opt "S" inst.outputs, List.assoc_opt "CO" inst.outputs) with
      | Some s_net, Some co_net ->
        Netlist.remove_instance nl inst.inst_id;
        let xo3 = Choice.pick st.cons st.lib ~family:"XO3" ~load:0.002 ~slew:0.1 in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Netlist.fresh_name nl ~prefix:"xo3")
             ~cell:xo3
             ~inputs:[ ("A", a); ("B", b); ("C", ci) ]
             ~outputs:[ ("Z", s_net) ]);
        let maj = Choice.pick st.cons st.lib ~family:"MAJ3" ~load:0.002 ~slew:0.1 in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Netlist.fresh_name nl ~prefix:"maj")
             ~cell:maj
             ~inputs:[ ("A", a); ("B", b); ("CI", ci) ]
             ~outputs:[ ("CO", co_net) ]);
        st.decomposed <- st.decomposed + 1;
        st.structural <- true;
        true
      | _ -> false
    end
    | "XO3" -> begin
      let a = input "A" and b = input "B" and c = input "C" in
      match inst.outputs with
      | [ (_, out_net) ] ->
        Netlist.remove_instance nl inst.inst_id;
        let mid = Netlist.add_net nl () in
        let xo2 = Choice.pick st.cons st.lib ~family:"XO2" ~load:0.002 ~slew:0.1 in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Netlist.fresh_name nl ~prefix:"xo2")
             ~cell:xo2
             ~inputs:[ ("A", a); ("B", b) ]
             ~outputs:[ ("Z", mid) ]);
        let xo2' = Choice.pick st.cons st.lib ~family:"XO2" ~load:0.003 ~slew:0.1 in
        ignore
          (Netlist.add_instance nl
             ~inst_name:(Netlist.fresh_name nl ~prefix:"xo2")
             ~cell:xo2'
             ~inputs:[ ("A", mid); ("B", c) ]
             ~outputs:[ ("Z", out_net) ]);
        st.decomposed <- st.decomposed + 1;
        st.structural <- true;
        true
      | _ -> false
    end
    | "AN2" | "AN3" | "AN4" ->
      let nand = "ND" ^ String.sub family 2 1 in
      replace_gate_with_chain st inst ~gate_family:nand ~pins_map:inst.inputs
    | "OR2" | "OR3" | "OR4" ->
      let nor = "NR" ^ String.sub family 2 1 in
      replace_gate_with_chain st inst ~gate_family:nor ~pins_map:inst.inputs
    | "MU2" -> replace_gate_with_chain st inst ~gate_family:"MU2I" ~pins_map:inst.inputs
    | _ -> false
  with Not_found | Exit -> false

(* ------------------------------------------------------------------ *)
(* Timing recovery                                                     *)
(* ------------------------------------------------------------------ *)

let improve_path st timing (path : Path.t) ~budget =
  let nl = st.nl in
  let moves = ref 0 in
  (* biggest contributors first *)
  let steps =
    List.sort (fun (a : Path.step) b -> Float.compare b.delay a.delay) path.Path.steps
  in
  List.iter
    (fun (step : Path.step) ->
      if !moves < budget then begin
        match Netlist.instance_opt nl step.inst with
        | None -> () (* already restructured this round *)
        | Some inst ->
          if inst.cell.Cell.name = step.cell.Cell.name then begin
            let slew = worst_input_slew timing nl inst in
            let load =
              List.fold_left
                (fun acc (_, nid) -> Float.max acc (Timing.net_load timing nid))
                0.0 inst.outputs
            in
            (* Upsizing only pays while the cell is underpowered for its
               load: past an effective fanout of ~4 per drive unit the
               bigger input capacitance just pushes the delay upstream. *)
            let cap_per_drive =
              match Cell.input_pins inst.cell with
              | p :: _ ->
                p.Pin.capacitance /. float_of_int inst.cell.Cell.drive_strength
              | [] -> 0.001
            in
            let target_drive = int_of_float (ceil (load /. (3.0 *. cap_per_drive))) in
            let underpowered = inst.cell.Cell.drive_strength < target_drive in
            let upsized =
              underpowered
              &&
              match Choice.upsize st.cons st.lib inst.cell ~load ~slew with
              | Some bigger ->
                Netlist.set_cell nl inst.inst_id bigger;
                swapped st inst.inst_id;
                st.resized <- st.resized + 1;
                true
              | None -> false
            in
            if upsized then incr moves else if decompose st inst then incr moves
          end
      end)
    steps;
  !moves

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

let recover_timing st timing =
  let violating =
    Timing.endpoints timing
    |> List.filter (fun (ep : Timing.endpoint_timing) -> ep.slack < 0.0)
    |> List.sort (fun (a : Timing.endpoint_timing) b -> Float.compare a.slack b.slack)
    |> take 96
  in
  let moves = ref 0 in
  List.iter
    (fun ep ->
      let path = Path.extract timing st.nl ep in
      moves := !moves + improve_path st timing path ~budget:6)
    violating;
  !moves

(* ------------------------------------------------------------------ *)
(* Window (slew) repair                                                *)
(* ------------------------------------------------------------------ *)

let repair_windows st timing =
  match st.cons.Constraints.restrictions with
  | None -> 0
  | Some _ ->
    let nl = st.nl in
    let edits = ref 0 in
    Netlist.iter_instances nl ~f:(fun inst ->
        let slew_limit = Constraints.window_slew_max st.cons inst.cell in
        if slew_limit < infinity then
          List.iter
            (fun (pin, nid) ->
              if Some pin <> inst.cell.Cell.clock_pin then begin
                let slew = Timing.net_slew timing nid in
                if slew > slew_limit then begin
                  (* sharpen the edge: upsize the driving cell *)
                  match (Netlist.net nl nid).Netlist.driver with
                  | None -> ()
                  | Some { inst = drv_id; pin = _ } -> begin
                    let drv = Netlist.instance nl drv_id in
                    let drv_slew = worst_input_slew timing nl drv in
                    let drv_load = Timing.net_load timing nid in
                    match Choice.upsize st.cons st.lib drv.cell ~load:drv_load ~slew:drv_slew with
                    | Some bigger ->
                      Netlist.set_cell nl drv_id bigger;
                      swapped st drv_id;
                      st.resized <- st.resized + 1;
                      incr edits
                    | None -> ()
                  end
                end
              end)
            inst.inputs)
    ;
    !edits

(* ------------------------------------------------------------------ *)
(* Area recovery                                                       *)
(* ------------------------------------------------------------------ *)

let recover_area st timing =
  let nl = st.nl in
  let moves = ref 0 in
  Netlist.iter_instances nl ~f:(fun inst ->
      if not (Cell.is_sequential inst.cell) then begin
        match inst.outputs with
        | [ (_, out_net) ] ->
          let slack = Timing.net_slack timing out_net in
          if slack > 0.05 then begin
            let slew = worst_input_slew timing nl inst in
            let load = Timing.net_load timing out_net in
            (* walk down the ladder as far as the local slack allows,
               keeping a 1.6x margin since slack is shared along the path *)
            let rec shrink spent =
              match Choice.downsize st.cons st.lib inst.cell ~load ~slew with
              | Some smaller ->
                let increase =
                  spent +. cell_delay smaller ~slew ~load -. cell_delay inst.cell ~slew ~load
                in
                if increase > 0.0 && increase *. 1.6 < slack then begin
                  Netlist.set_cell nl inst.inst_id smaller;
                  swapped st inst.inst_id;
                  st.downsized <- st.downsized + 1;
                  incr moves;
                  shrink increase
                end
              | None -> ()
            in
            shrink 0.0
          end
        | _ -> ()
      end);
  !moves

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let optimize ?(incremental = true) cons lib nl =
  let st =
    { cons; lib; nl; incremental; resized = 0; buffered = 0; decomposed = 0;
      downsized = 0; touched = []; structural = false }
  in
  let tconfig = Constraints.timing_config cons in
  let timing = ref (Timing.run tconfig nl) in
  let iterations = ref 0 in
  let continue_loop = ref true in
  while !continue_loop && !iterations < cons.Constraints.max_iterations do
    incr iterations;
    let e1 = fix_electrical st !timing in
    let e2 = repair_windows st !timing in
    if e1 + e2 > 0 then timing := refresh st !timing;
    let slack = Timing.worst_slack !timing in
    if slack >= 0.0 then continue_loop := false
    else begin
      let moves = recover_timing st !timing in
      if moves = 0 then continue_loop := false
      else timing := refresh st !timing
    end
  done;
  (* settle remaining electrical/window issues introduced by the last moves *)
  let rec settle n =
    if n > 0 then begin
      let e = fix_electrical st !timing + repair_windows st !timing in
      if e > 0 then begin
        timing := refresh st !timing;
        settle (n - 1)
      end
    end
  in
  settle 4;
  (* Area recovery is gated per net by local slack, so it also applies at
     tight clocks where only the critical region lacks margin — matching
     how commercial synthesis shrinks off-critical logic. *)
  if cons.Constraints.area_recovery then begin
    let rec recover n =
      if n > 0 then begin
        let moves = recover_area st !timing in
        if moves > 0 then begin
          timing := refresh st !timing;
          if Timing.worst_slack !timing >= 0.0 then recover (n - 1)
        end
      end
    in
    recover 3;
    (* area recovery must never cost feasibility: restore timing fully *)
    let rec restore n =
      if n > 0 && Timing.worst_slack !timing < 0.0 then begin
        let moves = recover_timing st !timing in
        timing := refresh st !timing;
        if moves > 0 then restore (n - 1)
      end
    in
    restore 8;
    settle 2
  end;
  let report =
    {
      iterations = !iterations;
      resized = st.resized;
      buffered = st.buffered;
      decomposed = st.decomposed;
      downsized = st.downsized;
      window_violations = count_window_violations cons !timing nl;
    }
  in
  (!timing, report)
