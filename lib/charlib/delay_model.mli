(** Analytic CMOS gate delay model — the project's stand-in for SPICE.

    The model is logical-effort flavoured:

    {v
    delay = corner * [ out_f * (tau*p*(1+di) + R0*(1+dr)*load)
                       + k_slew * slew * (1 + vt_slew_gain * di) ]
    v}

    where [R0 = r_unit / drive], [di]/[dr] are the local-mismatch samples
    of the intrinsic (threshold-linked) delay and drive resistance, and
    [out_f] is the per-output factor of multi-output cells.  The
    [vt_slew_gain] term models the physical fact that threshold-voltage
    mismatch converts input slew directly into switching-time spread, so
    slow edges amplify local variation.

    Because the corner factor multiplies the whole expression, mean and
    sigma scale together across corners — the property the paper verifies
    in Section VII-C. *)

type params = {
  tau : float;  (** intrinsic delay unit, ns *)
  r_unit : float;  (** drive-1 output resistance, ns/pF *)
  k_slew : float;  (** input-slew to delay coefficient *)
  vt_slew_gain : float;  (** mismatch amplification of the slew term *)
  t_slew_base : float;  (** minimum output transition, ns *)
  k_trans : float;  (** R·C to output-transition coefficient *)
  k_trans_slew : float;  (** input-slew leak into output transition *)
  self_load : float;  (** parasitic output cap per drive unit, in c_unit *)
}

val default : params

type edge = Rise | Fall

val drive_resistance : params -> drive:int -> float

val stage_count : Vartune_stdcell.Spec.t -> int
(** Inversion stages of a cell family; complex multi-stage cells average
    independent per-stage mismatch, lowering their relative sigma. *)

val delay :
  params ->
  Vartune_stdcell.Spec.t ->
  drive:int ->
  output:string ->
  edge:edge ->
  corner_factor:float ->
  sample:Vartune_process.Mismatch.sample ->
  slew:float ->
  load:float ->
  float
(** Propagation delay in ns at the given operating point. *)

val transition :
  params ->
  Vartune_stdcell.Spec.t ->
  drive:int ->
  output:string ->
  edge:edge ->
  corner_factor:float ->
  sample:Vartune_process.Mismatch.sample ->
  slew:float ->
  load:float ->
  float
(** Output transition time in ns. *)

val internal_energy :
  params ->
  Vartune_stdcell.Spec.t ->
  drive:int ->
  slew:float ->
  load:float ->
  float
(** Internal (short-circuit + internal-node) energy per output transition,
    fJ.  Grows with drive (bigger internal nodes) and with input slew
    (longer short-circuit overlap). *)

val leakage :
  Vartune_stdcell.Spec.t -> drive:int -> float
(** Static leakage power, nW: scales with device count and width. *)

val delay_sigma :
  params ->
  Vartune_stdcell.Spec.t ->
  mismatch:Vartune_process.Mismatch.t ->
  drive:int ->
  output:string ->
  edge:edge ->
  corner_factor:float ->
  slew:float ->
  load:float ->
  float
(** Closed-form standard deviation of {!delay} under the mismatch model —
    the analytic ground truth against which the Monte-Carlo statistical
    library is validated. *)
