(** Library characterisation (Section II of the paper).

    Expands the cell catalog into a liberty library: every (family, drive)
    pair becomes a cell whose timing arcs carry 2-D LUTs tabulated over a
    shared slew axis and a per-drive load axis. *)

type config = {
  params : Delay_model.params;
  corner : Vartune_process.Corner.t;
  slew_axis : float array;  (** shared input-slew axis, ns *)
  load_fractions : float array;
  (** load axis as fractions of each cell's max capacitance *)
}

val default_config : config
(** Typical corner, 8×8 grids: slews 0.01–1.0 ns, loads 1/64–1 of the
    cell's drive limit. *)

val load_axis : config -> Vartune_stdcell.Spec.t -> drive:int -> float array
(** Absolute load axis of one cell, pF. *)

val cell :
  config ->
  ?sample_for:(Vartune_stdcell.Spec.t -> drive:int -> Vartune_process.Mismatch.sample) ->
  Vartune_stdcell.Spec.t ->
  drive:int ->
  Vartune_liberty.Cell.t
(** Characterises one cell.  [sample_for] supplies the local-variation
    sample applied to all of the cell's arcs (defaults to no variation). *)

val library :
  config ->
  ?name:string ->
  ?sample_for:(Vartune_stdcell.Spec.t -> drive:int -> Vartune_process.Mismatch.sample) ->
  Vartune_stdcell.Spec.t list ->
  Vartune_liberty.Library.t
(** Characterises a whole catalog.  The default name is the corner tag. *)

val nominal :
  ?specs:Vartune_stdcell.Spec.t list ->
  ?store:Vartune_store.Store.t ->
  config ->
  Vartune_liberty.Library.t
(** The nominal (no-variation) library of the full catalog.  With
    [store], the library is fetched from / saved to the persistent
    artifact store under a key derived from the full characterisation
    config and catalog shape.  A stored entry whose cell count does not
    match the specs (see {!validated_library}) is discarded and
    recomputed. *)

val expected_cells : Vartune_stdcell.Spec.t list -> int
(** Number of cells a library characterised from [specs] must contain
    (one per family × drive). *)

val validated_library :
  what:string ->
  specs:Vartune_stdcell.Spec.t list ->
  Vartune_liberty.Library.t ->
  Vartune_liberty.Library.t option
(** Structural sanity check for libraries served by the artifact store:
    [None] (with a warning naming [what]) when the cell count
    contradicts [specs] — the entry passed its checksum but is
    logically corrupt, so the caller must recompute.  Part of the
    store's never-serve-a-corrupt-artifact contract. *)

(** {1 Store fingerprints} *)

val add_config_to_key : Vartune_store.Store.Key.t -> config -> Vartune_store.Store.Key.t
(** Appends every characterisation input — delay-model parameters,
    corner, slew axis, load fractions — to a store key, so any config
    change invalidates dependent artifacts. *)

val add_specs_to_key :
  Vartune_store.Store.Key.t -> Vartune_stdcell.Spec.t list -> Vartune_store.Store.Key.t
(** Appends the catalog shape (families and drive lists). *)
